// Package repro reproduces Zaparanuks, Jovic, and Hauswirth, "Accuracy
// of Performance Counter Measurements" (ISPASS 2009) as a Go library.
//
// The paper quantifies the measurement error that user-level
// performance-counter infrastructures — perfctr, perfmon2, and PAPI —
// introduce into hardware event counts on three IA32 processors. This
// module rebuilds the entire experimental apparatus as a deterministic
// simulation: the processors and their PMUs, a Linux-2.6.22-like kernel
// with both counter extensions, the six measurement stacks of the
// paper's Figure 2, the micro-benchmarks with analytically known counts,
// and the statistical analyses — so every table and figure of the paper
// can be regenerated (see package internal/experiments and the
// benchmarks in bench_test.go).
//
// # Quick start
//
//	sys, err := repro.NewSystem(repro.K8, repro.StackPHpc)
//	if err != nil { ... }
//	m, err := sys.Measure(repro.Request{
//	        Bench:   repro.LoopBenchmark(100000),
//	        Pattern: repro.StartRead,
//	        Mode:    repro.ModeUser,
//	})
//	fmt.Println("measured:", m.Deltas[0], "expected:", m.Expected)
//
// # Reproducing the paper
//
//	out, err := repro.RunExperiment("fig4", os.Stdout, repro.Quick)
//
// regenerates Figure 4 (the perfctr TSC study); RunExperiment accepts
// every ID in ExperimentIDs.
//
// # Concurrency
//
// All mutable state lives inside a System (its simulated processor,
// kernel, and infrastructure); the package-level tables (processor
// models, events, the experiment registry) are immutable after init.
// Consequently distinct Systems may be used from different goroutines
// freely, and RunExperiment is safe to call concurrently — each run
// builds its own systems. A single System is NOT safe for concurrent
// use; serialize access or pool several (see internal/service, which
// does exactly that behind cmd/pcserved).
//
// Measurements are deterministic: a System's results are a pure
// function of its configuration and the request (including its seed),
// and System.Reset rewinds a used system to its just-booted state so
// pooled systems measure byte-identically to fresh ones.
//
// # Serving measurements
//
// Command pcserved exposes this apparatus as a long-running JSON
// service with sharded system pools, a calibration cache, and request
// coalescing; cmd/pcload replays mixed workloads against it. See the
// repository README for wire examples.
package repro

import (
	"fmt"
	"io"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/kernel"
	"repro/internal/stack"
)

// Processor identifies one of the study's three processors (Table 1).
type Processor string

// The processors of the study.
const (
	// PD is the Pentium D 925 (NetBurst, 3.0 GHz, 18 programmable
	// counters).
	PD Processor = "PD"
	// CD is the Core 2 Duo E6600 (Core, 2.4 GHz, 2 programmable + 3
	// fixed counters).
	CD Processor = "CD"
	// K8 is the Athlon 64 X2 4200+ (K8, 2.2 GHz, 4 programmable
	// counters).
	K8 Processor = "K8"
)

// Processors lists the study's processors in the paper's order.
func Processors() []Processor { return []Processor{PD, CD, K8} }

// Stack codes of the six measurement infrastructures (Figure 2).
const (
	// StackPM is libpfm directly on perfmon2.
	StackPM = "pm"
	// StackPC is libperfctr directly on perfctr.
	StackPC = "pc"
	// StackPLpm is the PAPI low-level API over perfmon2.
	StackPLpm = "PLpm"
	// StackPLpc is the PAPI low-level API over perfctr.
	StackPLpc = "PLpc"
	// StackPHpm is the PAPI high-level API over perfmon2.
	StackPHpm = "PHpm"
	// StackPHpc is the PAPI high-level API over perfctr.
	StackPHpc = "PHpc"
)

// Stacks lists the stack codes in the paper's Figure 6 order.
func Stacks() []string { return append([]string(nil), stack.Codes...) }

// Re-exported measurement vocabulary. These alias the internal core
// types so that values round-trip freely between the facade and the
// packages beneath it.
type (
	// Pattern is a counter access pattern (Table 2).
	Pattern = core.Pattern
	// MeasureMode selects the counted privilege modes.
	MeasureMode = core.MeasureMode
	// Benchmark is a micro-benchmark with known ground truth.
	Benchmark = core.Benchmark
	// Request describes one measurement.
	Request = core.Request
	// Measurement is a measurement outcome.
	Measurement = core.Measurement
	// Event is a countable micro-architectural event.
	Event = cpu.Event
	// OptLevel is a gcc optimization level.
	OptLevel = compiler.OptLevel
	// Governor is a CPU frequency policy.
	Governor = kernel.Governor
)

// Re-exported pattern, mode, event, optimization, and governor values.
const (
	StartRead = core.StartRead
	StartStop = core.StartStop
	ReadRead  = core.ReadRead
	ReadStop  = core.ReadStop

	ModeUser       = core.ModeUser
	ModeUserKernel = core.ModeUserKernel
	ModeKernel     = core.ModeKernel

	EventInstructions = cpu.EventInstrRetired
	EventCycles       = cpu.EventCoreCycles
	EventBrMisp       = cpu.EventBrMispRetired

	O0 = compiler.O0
	O1 = compiler.O1
	O2 = compiler.O2
	O3 = compiler.O3

	GovernorPerformance = kernel.Performance
	GovernorPowersave   = kernel.Powersave
	GovernorOndemand    = kernel.Ondemand
)

// Benchmark constructors, re-exported.
var (
	// NullBenchmark is the zero-instruction benchmark (Section 3.4).
	NullBenchmark = core.NullBenchmark
	// LoopBenchmark is the paper's 1+3*MAX instruction loop (Figure 3).
	LoopBenchmark = core.LoopBenchmark
	// ArrayBenchmark is a memory-walking loop (1+4*iters instructions).
	ArrayBenchmark = core.ArrayBenchmark
)

// Option configures NewSystem.
type Option func(*stack.Options)

// WithTSC controls whether perfctr includes the TSC in its counter
// selection (default true; disabling it forces syscall reads — the
// Figure 4 study).
func WithTSC(on bool) Option {
	return func(o *stack.Options) { o.WithTSC = on }
}

// WithGovernor selects the CPU frequency policy (default performance,
// the study's configuration).
func WithGovernor(g Governor) Option {
	return func(o *stack.Options) { o.Governor = g }
}

// Runner is an execution engine (see internal/engine). Engines differ
// only in throughput: the interpreter steps every simulated
// instruction, the compiled engine bulk-applies precompiled basic-block
// summaries, and a conformance suite guarantees byte-identical
// measurements from both.
type Runner = cpu.Runner

// Engine constructors, re-exported. NewSystem without WithEngine uses a
// process-wide compiled engine with a shared compile cache.
var (
	// NewInterpreterEngine returns the canonical per-instruction engine.
	NewInterpreterEngine = func() Runner { return engine.NewInterpreter() }
	// NewCompiledEngine returns a block-dispatch engine with a private
	// compile cache.
	NewCompiledEngine = func() Runner { return engine.NewCompiled(nil) }
)

// WithEngine pins the system's execution engine (default: the shared
// compiled engine).
func WithEngine(r Runner) Option {
	return func(o *stack.Options) { o.Engine = r }
}

// System is a bootable measurement system: one simulated processor, a
// kernel with the stack's counter extension, and the chosen
// infrastructure.
type System struct {
	inner *stack.System
}

// NewSystem boots a measurement system for a processor and stack code.
func NewSystem(p Processor, stackCode string, opts ...Option) (*System, error) {
	m, err := cpu.ModelByTag(string(p))
	if err != nil {
		return nil, err
	}
	o := stack.DefaultOptions
	for _, opt := range opts {
		opt(&o)
	}
	s, err := stack.New(m, stackCode, o)
	if err != nil {
		return nil, err
	}
	return &System{inner: s}, nil
}

// Stack returns the system's stack code.
func (s *System) Stack() string { return s.inner.Code }

// Processor returns the system's processor.
func (s *System) Processor() Processor { return Processor(s.inner.Kernel.Model().Tag) }

// Measure performs one measurement.
func (s *System) Measure(req Request) (*Measurement, error) {
	return s.inner.Measure(req)
}

// MeasureN runs req n times (seeds seedBase..seedBase+n-1) and returns
// the per-run error of the first counter.
func (s *System) MeasureN(req Request, n int, seedBase uint64) ([]int64, error) {
	return s.inner.MeasureN(req, n, seedBase)
}

// Reset rewinds the system to its just-booted state: clock, TSC,
// counter values, frequency policy, and thread table. After Reset the
// system measures byte-identically to a freshly built one, so pools can
// recycle systems across requests (see internal/service).
func (s *System) Reset() { s.inner.Reset() }

// Calibration is an estimated fixed measurement error (Section 8).
type Calibration = core.Calibration

// Calibrate estimates the fixed error of a (pattern, mode, opt)
// configuration on this system by repeated null-benchmark runs — the
// paper's own calibration method. The system is Reset first, so the
// estimate is deterministic in (system configuration, runs, seed) —
// independent of what the system measured before — which lets services
// cache it.
func (s *System) Calibrate(pattern Pattern, mode MeasureMode, opt OptLevel, runs int, seed uint64) (Calibration, error) {
	s.inner.Reset()
	return core.CalibrateNull(s.inner.Kernel, s.inner.Infra, pattern, mode, opt, runs, seed)
}

// ProcessStartupCost returns the modeled instruction cost of creating
// and tearing down a process on this system — the overhead that
// whole-process tools like perfex include in their counts (Section 9).
func (s *System) ProcessStartupCost() int64 {
	return s.inner.Kernel.ProcessStartupCost()
}

// FrequencyGHz returns the system's current clock frequency, which the
// governor may change over time under the ondemand policy.
func (s *System) FrequencyGHz() float64 {
	return s.inner.Kernel.FrequencyGHz()
}

// Sweep vocabulary, re-exported: build systems with NewSystem, wrap
// them in SweepSystem via System.ForSweep, and run factorial accuracy
// studies whose records feed stats.ANOVA or CSV directly.
type (
	// SweepConfig describes a factorial accuracy study.
	SweepConfig = core.SweepConfig
	// SweepSystem is one system under study.
	SweepSystem = core.SweepSystem
	// SweepRecord is one measurement with its factor levels.
	SweepRecord = core.SweepRecord
)

// Sweep runs a factorial accuracy study (see core.Sweep).
var Sweep = core.Sweep

// ForSweep adapts the system for use in a SweepConfig.
func (s *System) ForSweep() SweepSystem {
	return SweepSystem{Kernel: s.inner.Kernel, Infra: s.inner.Infra}
}

// ExperimentConfig scales a paper experiment.
type ExperimentConfig = experiments.Config

// Experiment-scale presets.
var (
	// Full reproduces the published scale (Figure 1 alone runs >170000
	// measurements).
	Full = experiments.DefaultConfig
	// Quick is a reduced scale for smoke runs and tests.
	Quick = experiments.QuickConfig
)

// ExperimentIDs lists the reproducible experiments in the paper's order.
func ExperimentIDs() []string { return experiments.IDs() }

// ExperimentTitle returns the human-readable title of an experiment.
func ExperimentTitle(id string) string { return experiments.Title(id) }

// RunExperiment executes a paper experiment and renders it to w. It
// returns the structured result for further inspection or JSON
// serialization.
func RunExperiment(id string, w io.Writer, cfg ExperimentConfig) (experiments.Result, error) {
	res, err := experiments.Run(id, cfg)
	if err != nil {
		return nil, err
	}
	if w != nil {
		fmt.Fprintf(w, "== %s: %s ==\n\n", id, experiments.Title(id))
		if err := res.Render(w); err != nil {
			return nil, err
		}
	}
	return res, nil
}
