// Command pcaccuracy regenerates the paper's tables and figures.
//
// Usage:
//
//	pcaccuracy -list
//	pcaccuracy -experiment fig4
//	pcaccuracy -experiment all -runs 24
//	pcaccuracy -experiment table3 -json > table3.json
//
// Experiment IDs follow the paper's artifact numbering (table1, table2,
// fig1, fig4..fig12, anova, guidelines, wholeprocess); "fig6" includes
// Table 3. At the default -runs the full Figure 1 sweep performs more
// than 170000 measurements and takes on the order of a minute.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/experiments"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list available experiments")
		expID  = flag.String("experiment", "", "experiment ID, or 'all'")
		runs   = flag.Int("runs", repro.Full.Runs, "repetitions per configuration cell")
		seed   = flag.Uint64("seed", repro.Full.Seed, "experiment seed")
		asJSON = flag.Bool("json", false, "emit the structured result as JSON instead of text")
		csvDir = flag.String("csv", "", "directory for raw-observation CSV files (figures with samples)")
	)
	flag.Parse()

	if *list {
		for _, id := range repro.ExperimentIDs() {
			fmt.Printf("%-13s %s\n", id, repro.ExperimentTitle(id))
		}
		return
	}
	if *expID == "" {
		fmt.Fprintln(os.Stderr, "pcaccuracy: -experiment required (or -list); see -help")
		os.Exit(2)
	}

	cfg := repro.ExperimentConfig{Runs: *runs, Seed: *seed}
	ids := []string{*expID}
	if *expID == "all" {
		ids = repro.ExperimentIDs()
	}
	// "table3" is a convenience alias: Table 3 is produced by fig6.
	for i, id := range ids {
		if id == "table3" {
			ids[i] = "fig6"
		}
	}

	for _, id := range ids {
		if err := runOne(id, cfg, *asJSON, *csvDir); err != nil {
			fmt.Fprintf(os.Stderr, "pcaccuracy: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}

func runOne(id string, cfg repro.ExperimentConfig, asJSON bool, csvDir string) error {
	var out *os.File
	if !asJSON {
		out = os.Stdout
	}
	res, err := repro.RunExperiment(id, renderTarget(out), cfg)
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return err
		}
	} else {
		fmt.Println()
	}
	if csvDir != "" {
		if exp, ok := res.(experiments.CSVExporter); ok {
			path := filepath.Join(csvDir, id+".csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := exp.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "pcaccuracy: wrote %s\n", path)
		}
	}
	return nil
}

// renderTarget keeps a nil *os.File from becoming a non-nil io.Writer.
func renderTarget(f *os.File) io.Writer {
	if f == nil {
		return nil
	}
	return f
}
