// Command pcserved serves the measurement apparatus over HTTP: a
// long-running, concurrent front end to the simulated systems of the
// paper, backed by internal/service's sharded worker pools, calibration
// cache, and request coalescing.
//
// Endpoints:
//
//	POST   /measure              api.MeasureRequest    -> api.MeasureResponse
//	POST   /analyze              api.AnalyzeRequest    -> api.AnalyzeResponse
//	POST   /plan                 api.PlanRequest       -> api.PlanResponse
//	POST   /infer                api.InferRequest      -> api.InferResponse
//	POST   /experiment           api.ExperimentRequest -> api.ExperimentResponse
//	POST   /sessions             api.SessionRequest    -> api.SessionCreated
//	GET    /sessions/{id}        -> api.SessionSnapshot
//	GET    /sessions/{id}/stream -> NDJSON api.StreamEvent lines
//	DELETE /sessions/{id}        -> 204
//	POST   /campaigns            api.CampaignRequest   -> api.CampaignCreated
//	GET    /campaigns/{id}       -> api.CampaignSnapshot
//	GET    /campaigns/{id}/stream -> NDJSON api.CampaignEvent lines
//	DELETE /campaigns/{id}       -> 204
//	GET    /healthz              -> api.HealthResponse
//	GET    /metrics              -> Prometheus text exposition
//	GET    /debug/pprof/*        -> net/http/pprof (behind -pprof)
//
// Responses to /measure, /analyze, and /plan are deterministic:
// identical requests receive byte-identical bodies, no matter how they
// interleave with other traffic. Measurements execute on one of two
// conformance-tested engines — the block-dispatch compiled engine by
// default, or the per-instruction interpreter when a request pins
// "engine":"interpreter" — with byte-identical results either way;
// /healthz reports per-engine run counts and the compile cache next to
// the calibration cache. See docs/ENGINE.md. Every measurement response carries an
// accuracy annotation (a corrected estimate with a confidence
// interval); the batched /analyze endpoint evaluates the full error
// model — overhead subtraction, multiplexing extrapolation, sampling
// quantization, and paired duet measurement. See docs/ACCURACY.md.
//
// The /plan endpoint is the planning layer: callers state an accuracy
// goal and the planner derives a multiplexing schedule and replication
// count that meets it, executes the schedule, and fuses the partial
// observations into estimates never wider than the naive ones. See
// docs/PLANNING.md.
//
// The /infer endpoint is the cross-event inference layer: batched
// joint estimation over the algebraic invariants tying events together
// (internal/bayes), returning posterior estimates whose intervals
// never widen versus the inputs, plus per-invariant consistency
// residuals. See docs/INFERENCE.md.
//
// The /sessions endpoints open continuous monitoring sessions:
// long-lived observers that stream corrected samples, window
// summaries, and drift events over NDJSON. See docs/MONITORING.md.
//
// The /campaigns endpoints run adversarial counter-validation
// campaigns: sweeps of randomized generated programs with analytically
// known ground truth, driven through the measurement, inference, and
// planning paths to attack the service's own models; every failed
// check streams out as an NDJSON finding. See docs/CAMPAIGNS.md.
//
// Observability: every request runs under a telemetry trace feeding
// per-endpoint and per-stage metrics at GET /metrics (Prometheus text
// exposition, derived from the same snapshot as /healthz); requests
// with "trace": true get their span trace echoed in the response, with
// canonical keys and coalescing unchanged. See docs/OBSERVABILITY.md.
//
// Usage:
//
//	pcserved -addr :7090 -workers 4 -calruns 31
//	curl -s localhost:7090/measure -d '{"processor":"K8","stack":"pc","bench":"loop:100000","pattern":"rr","runs":5,"calibrate":true}'
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/plan"
	"repro/internal/service"
	"repro/internal/telemetry"
)

func main() {
	var (
		addr         = flag.String("addr", ":7090", "listen address")
		workers      = flag.Int("workers", 4, "systems pooled per (processor, stack) shard")
		calruns      = flag.Int("calruns", 31, "runs per calibration estimate")
		maxexp       = flag.Int("maxexp", 2, "maximum concurrent experiments")
		maxsessions  = flag.Int("maxsessions", 16, "maximum concurrent monitoring sessions")
		sessionidle  = flag.Duration("sessionidle", 2*time.Minute, "evict monitoring sessions idle this long")
		maxcampaigns = flag.Int("maxcampaigns", 4, "maximum concurrent validation campaigns")
		campaignidle = flag.Duration("campaignidle", 2*time.Minute, "evict validation campaigns idle this long")
		pprofOn      = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	svc := service.New(service.Config{
		WorkersPerShard:          *workers,
		CalibrationRuns:          *calruns,
		MaxConcurrentExperiments: *maxexp,
	})
	reg := monitor.NewRegistry(svc, monitor.Config{
		MaxSessions: *maxsessions,
		IdleTimeout: *sessionidle,
	})
	planner := plan.New(svc)
	creg := campaign.NewRegistry(campaign.Services{
		Measure: svc.Measure,
		Infer:   svc.Infer,
		Plan:    planner.Do,
	}, campaign.Config{
		MaxCampaigns: *maxcampaigns,
		IdleTimeout:  *campaignidle,
	})
	srv := &http.Server{
		Addr:    *addr,
		Handler: newHandler(svc, reg, creg, planner, handlerConfig{pprof: *pprofOn}),
		// A hostile or stalled client must not hold a connection open
		// while it dribbles in headers or a request body.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
		// WriteTimeout stays 0 deliberately: /sessions/{id}/stream holds
		// its response open for the session's whole lifetime, and a
		// server-wide write deadline would sever every live stream. The
		// non-streaming handlers respond in bounded time anyway; if a
		// per-handler write deadline is ever needed, set it in the
		// handler via http.ResponseController, not here.
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		// Drain order matters: closing the registries first ends every
		// session and campaign with a drained end event, so open NDJSON
		// streams terminate cleanly and Shutdown's wait for in-flight
		// requests can finish instead of hanging on live streams.
		creg.Close()
		reg.Close()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()

	log.Printf("pcserved: listening on %s (workers/shard=%d, calruns=%d)", *addr, *workers, *calruns)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("pcserved: %v", err)
	}
	// ListenAndServe returns as soon as Shutdown begins; wait for the
	// drain to finish so in-flight requests complete.
	stop()
	<-drained
	log.Printf("pcserved: drained, exiting")
}

// handlerConfig carries front-end options that are not services.
type handlerConfig struct {
	// pprof mounts net/http/pprof under /debug/pprof/ (the -pprof
	// flag). Off by default: profiling endpoints expose internals and
	// cost CPU while sampling, so production opts in explicitly.
	pprof bool
}

// router is the route-registration surface shared by the raw mux and
// the instrumenting wrapper, so route files register the same way
// whether or not they are measured.
type router interface {
	HandleFunc(pattern string, handler func(http.ResponseWriter, *http.Request))
}

// instrumentedRouter registers every handler wrapped in the
// per-endpoint telemetry middleware, labeled by route pattern.
type instrumentedRouter struct {
	mux *http.ServeMux
	ts  *telemetrySet
}

func (ir instrumentedRouter) HandleFunc(pattern string, h func(http.ResponseWriter, *http.Request)) {
	ir.mux.HandleFunc(pattern, ir.ts.instrument(endpointLabel(pattern), h))
}

// endpointLabel derives the metric label from a route pattern: the
// path template with the method dropped ("POST /measure" becomes
// "/measure"). Wildcards stay as templates ("/sessions/{id}"), so
// label cardinality is bounded by the route table, never by URLs.
func endpointLabel(pattern string) string {
	if _, path, ok := strings.Cut(pattern, " "); ok {
		return path
	}
	return pattern
}

// newHandler wires the service, session and campaign registries, and
// planner into an HTTP mux. Split out of main so tests can drive the
// exact production routing in-process. Every route is registered
// through the telemetry middleware; /metrics serves the accumulated
// exposition plus the same Stats snapshot /healthz renders as JSON.
func newHandler(svc *service.Service, reg *monitor.Registry, creg *campaign.Registry, planner *plan.Planner, cfg handlerConfig) http.Handler {
	mux := http.NewServeMux()
	ts := newTelemetrySet()
	ir := instrumentedRouter{mux: mux, ts: ts}
	registerSessionRoutes(ir, reg)
	registerCampaignRoutes(ir, creg)
	ir.HandleFunc("POST /measure", handleJSON(statusFor, http.StatusOK,
		func(r *http.Request, req api.MeasureRequest) (*api.MeasureResponse, error) {
			return svc.Measure(r.Context(), req)
		}))
	ir.HandleFunc("POST /analyze", handleJSON(statusFor, http.StatusOK,
		func(r *http.Request, req api.AnalyzeRequest) (*api.AnalyzeResponse, error) {
			return svc.Analyze(r.Context(), req)
		}))
	ir.HandleFunc("POST /plan", handleJSON(statusFor, http.StatusOK,
		func(r *http.Request, req api.PlanRequest) (*api.PlanResponse, error) {
			return planner.Do(r.Context(), req)
		}))
	ir.HandleFunc("POST /infer", handleJSON(statusFor, http.StatusOK,
		func(r *http.Request, req api.InferRequest) (*api.InferResponse, error) {
			return svc.Infer(r.Context(), req)
		}))
	ir.HandleFunc("POST /experiment", handleJSON(statusFor, http.StatusOK,
		func(r *http.Request, req api.ExperimentRequest) (*api.ExperimentResponse, error) {
			return svc.Experiment(r.Context(), req)
		}))
	ir.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// The service owns pool and cache state; the session and campaign
		// registries are the front end's, so their live counts are
		// overlaid here — from the same one-lock snapshots /metrics uses.
		h := svc.Health()
		h.ActiveSessions, _ = reg.Stats()
		h.ActiveCampaigns, _ = creg.Stats()
		writeJSON(w, http.StatusOK, h)
	})
	ir.HandleFunc("GET /metrics", ts.serveMetrics(svc, reg, creg, planner))
	if cfg.pprof {
		// Explicit registrations rather than the package's init-time
		// DefaultServeMux side effects: the flag, not the import, decides
		// exposure. Index serves the named-profile subpaths (heap,
		// goroutine, ...) under the trailing slash.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// handleJSON is the one shape every JSON endpoint shares: decode the
// body (a malformed body is always the client's fault), run the
// handler, map its error to a status with the given policy, and write
// either the api.Error body or the response at the success code. One
// helper means every endpoint emits the same error shape.
func handleJSON[Req, Resp any](status func(error) int, code int, do func(*http.Request, Req) (Resp, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tr := telemetry.FromContext(r.Context())
		pstart := tr.Clock()
		var req Req
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		tr.AddSince(telemetry.SpanParse, pstart)
		resp, err := do(r, req)
		if err != nil {
			writeError(w, status(err), err)
			return
		}
		// The encode span cannot appear in the response it times — the
		// body is sealed before the span ends — so it feeds the stage
		// histogram only (docs/OBSERVABILITY.md).
		estart := tr.Clock()
		writeJSON(w, code, resp)
		tr.AddSince(telemetry.SpanEncode, estart)
	}
}

// statusFor maps service errors to HTTP statuses: invalid requests are
// the client's fault, everything else the server's.
func statusFor(err error) int {
	var unsupported *core.ErrUnsupportedPattern
	switch {
	case errors.Is(err, api.ErrBadRequest),
		errors.As(err, &unsupported),
		errors.Is(err, service.ErrUnknownExperiment):
		return http.StatusBadRequest
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// writeJSON writes v as the JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError writes the service's JSON error body.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, api.Error{Error: err.Error()})
}
