// Command pcserved serves the measurement apparatus over HTTP: a
// long-running, concurrent front end to the simulated systems of the
// paper, backed by internal/service's sharded worker pools, calibration
// cache, and request coalescing.
//
// Endpoints:
//
//	POST /measure     api.MeasureRequest    -> api.MeasureResponse
//	POST /analyze     api.AnalyzeRequest    -> api.AnalyzeResponse
//	POST /experiment  api.ExperimentRequest -> api.ExperimentResponse
//	GET  /healthz     -> api.HealthResponse
//
// Responses to /measure and /analyze are deterministic: identical
// requests receive byte-identical bodies, no matter how they interleave
// with other traffic. Every measurement response carries an accuracy
// annotation (a corrected estimate with a confidence interval); the
// batched /analyze endpoint evaluates the full error model — overhead
// subtraction, multiplexing extrapolation, sampling quantization, and
// paired duet measurement. See docs/ACCURACY.md.
//
// Usage:
//
//	pcserved -addr :7090 -workers 4 -calruns 31
//	curl -s localhost:7090/measure -d '{"processor":"K8","stack":"pc","bench":"loop:100000","pattern":"rr","runs":5,"calibrate":true}'
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", ":7090", "listen address")
		workers = flag.Int("workers", 4, "systems pooled per (processor, stack) shard")
		calruns = flag.Int("calruns", 31, "runs per calibration estimate")
		maxexp  = flag.Int("maxexp", 2, "maximum concurrent experiments")
	)
	flag.Parse()

	svc := service.New(service.Config{
		WorkersPerShard:          *workers,
		CalibrationRuns:          *calruns,
		MaxConcurrentExperiments: *maxexp,
	})
	srv := &http.Server{Addr: *addr, Handler: newHandler(svc)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()

	log.Printf("pcserved: listening on %s (workers/shard=%d, calruns=%d)", *addr, *workers, *calruns)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("pcserved: %v", err)
	}
	// ListenAndServe returns as soon as Shutdown begins; wait for the
	// drain to finish so in-flight requests complete.
	stop()
	<-drained
	log.Printf("pcserved: drained, exiting")
}

// newHandler wires the service into an HTTP mux. Split out of main so
// tests can drive the exact production routing in-process.
func newHandler(svc *service.Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /measure", func(w http.ResponseWriter, r *http.Request) {
		var req api.MeasureRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		resp, err := svc.Measure(r.Context(), req)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /analyze", func(w http.ResponseWriter, r *http.Request) {
		var req api.AnalyzeRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		resp, err := svc.Analyze(r.Context(), req)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /experiment", func(w http.ResponseWriter, r *http.Request) {
		var req api.ExperimentRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		resp, err := svc.Experiment(r.Context(), req)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Health())
	})
	return mux
}

// statusFor maps service errors to HTTP statuses: invalid requests are
// the client's fault, everything else the server's.
func statusFor(err error) int {
	var unsupported *core.ErrUnsupportedPattern
	switch {
	case errors.Is(err, api.ErrBadRequest),
		errors.As(err, &unsupported),
		errors.Is(err, service.ErrUnknownExperiment):
		return http.StatusBadRequest
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// writeJSON writes v as the JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError writes the service's JSON error body.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, api.Error{Error: err.Error()})
}
