// Command pcserved serves the measurement apparatus over HTTP: a
// long-running, concurrent front end to the simulated systems of the
// paper, backed by internal/service's sharded worker pools, calibration
// cache, and request coalescing. The route table, registries, and
// telemetry middleware live in internal/server; this command adds
// flags, the listener, and signal-driven graceful drain.
//
// Endpoints:
//
//	POST   /measure              api.MeasureRequest    -> api.MeasureResponse
//	POST   /analyze              api.AnalyzeRequest    -> api.AnalyzeResponse
//	POST   /plan                 api.PlanRequest       -> api.PlanResponse
//	POST   /infer                api.InferRequest      -> api.InferResponse
//	POST   /experiment           api.ExperimentRequest -> api.ExperimentResponse
//	POST   /sessions             api.SessionRequest    -> api.SessionCreated
//	GET    /sessions/{id}        -> api.SessionSnapshot
//	GET    /sessions/{id}/stream -> NDJSON api.StreamEvent lines
//	DELETE /sessions/{id}        -> 204
//	POST   /campaigns            api.CampaignRequest   -> api.CampaignCreated
//	GET    /campaigns/{id}       -> api.CampaignSnapshot
//	GET    /campaigns/{id}/stream -> NDJSON api.CampaignEvent lines
//	DELETE /campaigns/{id}       -> 204
//	GET    /healthz              -> api.HealthResponse
//	GET    /metrics              -> Prometheus text exposition
//	GET    /debug/pprof/*        -> net/http/pprof (behind -pprof)
//
// Responses to /measure, /analyze, and /plan are deterministic:
// identical requests receive byte-identical bodies, no matter how they
// interleave with other traffic. Measurements execute on one of two
// conformance-tested engines — the block-dispatch compiled engine by
// default, or the per-instruction interpreter when a request pins
// "engine":"interpreter" — with byte-identical results either way;
// /healthz reports per-engine run counts and the compile cache next to
// the calibration cache. See docs/ENGINE.md. Every measurement response carries an
// accuracy annotation (a corrected estimate with a confidence
// interval); the batched /analyze endpoint evaluates the full error
// model — overhead subtraction, multiplexing extrapolation, sampling
// quantization, and paired duet measurement. See docs/ACCURACY.md.
//
// The /plan endpoint is the planning layer: callers state an accuracy
// goal and the planner derives a multiplexing schedule and replication
// count that meets it, executes the schedule, and fuses the partial
// observations into estimates never wider than the naive ones. See
// docs/PLANNING.md.
//
// The /infer endpoint is the cross-event inference layer: batched
// joint estimation over the algebraic invariants tying events together
// (internal/bayes), returning posterior estimates whose intervals
// never widen versus the inputs, plus per-invariant consistency
// residuals. See docs/INFERENCE.md.
//
// The /sessions endpoints open continuous monitoring sessions:
// long-lived observers that stream corrected samples, window
// summaries, and drift events over NDJSON. See docs/MONITORING.md.
//
// The /campaigns endpoints run adversarial counter-validation
// campaigns: sweeps of randomized generated programs with analytically
// known ground truth, driven through the measurement, inference, and
// planning paths to attack the service's own models; every failed
// check streams out as an NDJSON finding. See docs/CAMPAIGNS.md.
//
// Observability: every request runs under a telemetry trace feeding
// per-endpoint and per-stage metrics at GET /metrics (Prometheus text
// exposition, derived from the same snapshot as /healthz); requests
// with "trace": true get their span trace echoed in the response, with
// canonical keys and coalescing unchanged. See docs/OBSERVABILITY.md.
//
// Because responses are deterministic, a fleet of pcserved nodes is
// byte-identical to one node; cmd/pcfront consistent-hashes canonical
// request keys across such a fleet. See docs/CLUSTER.md.
//
// Usage:
//
//	pcserved -addr :7090 -workers 4 -calruns 31
//	curl -s localhost:7090/measure -d '{"processor":"K8","stack":"pc","bench":"loop:100000","pattern":"rr","runs":5,"calibrate":true}'
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/monitor"
	"repro/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":7090", "listen address")
		workers      = flag.Int("workers", 4, "systems pooled per (processor, stack) shard")
		calruns      = flag.Int("calruns", 31, "runs per calibration estimate")
		maxexp       = flag.Int("maxexp", 2, "maximum concurrent experiments")
		maxsessions  = flag.Int("maxsessions", 16, "maximum concurrent monitoring sessions")
		sessionidle  = flag.Duration("sessionidle", 2*time.Minute, "evict monitoring sessions idle this long")
		maxcampaigns = flag.Int("maxcampaigns", 4, "maximum concurrent validation campaigns")
		campaignidle = flag.Duration("campaignidle", 2*time.Minute, "evict validation campaigns idle this long")
		pprofOn      = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	node := server.New(server.Config{
		Workers:         *workers,
		CalibrationRuns: *calruns,
		MaxExperiments:  *maxexp,
		Monitor: monitor.Config{
			MaxSessions: *maxsessions,
			IdleTimeout: *sessionidle,
		},
		Campaign: campaign.Config{
			MaxCampaigns: *maxcampaigns,
			IdleTimeout:  *campaignidle,
		},
		Pprof: *pprofOn,
	})
	readHeader, read, idle := server.Timeouts()
	srv := &http.Server{
		Addr:    *addr,
		Handler: node.Handler(),
		// A hostile or stalled client must not hold a connection open
		// while it dribbles in headers or a request body.
		ReadHeaderTimeout: readHeader,
		ReadTimeout:       read,
		IdleTimeout:       idle,
		// WriteTimeout stays 0 deliberately: /sessions/{id}/stream holds
		// its response open for the session's whole lifetime, and a
		// server-wide write deadline would sever every live stream. The
		// non-streaming handlers respond in bounded time anyway; if a
		// per-handler write deadline is ever needed, set it in the
		// handler via http.ResponseController, not here.
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		// node.Close ends every session and campaign with a drained end
		// event first, so Shutdown's wait for in-flight requests can
		// finish instead of hanging on live streams.
		node.Close()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()

	log.Printf("pcserved: listening on %s (workers/shard=%d, calruns=%d)", *addr, *workers, *calruns)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("pcserved: %v", err)
	}
	// ListenAndServe returns as soon as Shutdown begins; wait for the
	// drain to finish so in-flight requests complete.
	stop()
	<-drained
	log.Printf("pcserved: drained, exiting")
}
