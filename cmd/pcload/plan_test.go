package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/plan"
	"repro/internal/service"
)

// newPlanBackend serves /plan from a real planner, mirroring pcserved.
func newPlanBackend(t *testing.T) *httptest.Server {
	t.Helper()
	svc := service.New(service.Config{WorkersPerShard: 2, CalibrationRuns: 5})
	planner := plan.New(svc)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /plan", func(w http.ResponseWriter, r *http.Request) {
		var req api.PlanRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := planner.Do(r.Context(), req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestBuildPlanPlans(t *testing.T) {
	items, err := buildPlanPlans("K8/pc,CD/pc", 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 12 {
		t.Fatalf("items = %d, want 12", len(items))
	}
	// Every request is issued as an identical pair so the determinism
	// cross-check has duplicates to compare.
	for i := 0; i+1 < len(items); i += 2 {
		a, _ := json.Marshal(items[i].req)
		b, _ := json.Marshal(items[i+1].req)
		if string(a) != string(b) {
			t.Errorf("pair %d not identical:\n%s\nvs\n%s", i/2, a, b)
		}
	}
	// The rotation must include both dedicated and multiplexed variants.
	var dedicated, multiplexed int
	for _, item := range items {
		if len(item.req.Measure.Events) <= 2 {
			dedicated++
		} else {
			multiplexed++
		}
	}
	if dedicated == 0 || multiplexed == 0 {
		t.Errorf("variant rotation incomplete: dedicated=%d multiplexed=%d", dedicated, multiplexed)
	}

	if _, err := buildPlanPlans("garbage", 4); err == nil {
		t.Error("bad mix accepted")
	}
}

func TestRunPlanAgainstBackend(t *testing.T) {
	srv := newPlanBackend(t)
	var out bytes.Buffer
	if err := runPlan(&out, srv.URL, "K8/pc", 12, 4); err != nil {
		t.Fatalf("runPlan: %v\noutput:\n%s", err, out.String())
	}
	report := out.String()
	for _, want := range []string{"plans:       12 (0 failed)", "attained:    12/12", "narrowing:", "determinism:"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	if strings.Contains(report, "DETERMINISM VIOLATION") {
		t.Errorf("determinism violation reported:\n%s", report)
	}
}

func TestRunPlanRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := runPlan(&out, "http://x", "K8/pc", 4, 0); err == nil {
		t.Error("-c 0 accepted; would hang forever")
	}
	if err := runPlan(&out, "http://x", "K8/pc", -1, 2); err == nil {
		t.Error("negative -plans accepted")
	}
	if err := runPlan(&out, "http://x", "garbage", 4, 2); err == nil {
		t.Error("bad mix accepted")
	}
}
