package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/bayes"
)

// inferItem is one /infer request to fire, tagged with its
// configuration key and whether the variant was built inconsistent on
// purpose (its invariant residual must be flagged).
type inferItem struct {
	key          string
	req          api.InferRequest
	inconsistent bool
}

// inferOutcome records one completed /infer call and the assertions
// the workload makes about it: every posterior interval at most its
// prior, and the consistency verdict matching the variant.
type inferOutcome struct {
	key        string
	latency    time.Duration
	status     int
	err        error
	body       string // request=>response for the determinism cross-check
	widened    int    // events whose posterior interval exceeded the prior
	events     int
	tightening float64
	consistent bool
	wantFlag   bool // variant was built inconsistent: a residual must fire
	flagged    bool
}

// buildInferItems expands the mix into n infer requests cycling the
// variants — measured inputs under the built-in library, raw inputs
// under an explicit sum constraint, and a deliberately inconsistent
// raw pair whose invariant residual must fire. Every request is issued
// twice (i/2) so identical pairs exercise the determinism cross-check
// and in-flight coalescing, like every other pcload workload.
func buildInferItems(mixSpec string, n int) ([]inferItem, error) {
	configs, err := parseMix(mixSpec)
	if err != nil {
		return nil, err
	}
	items := make([]inferItem, 0, n)
	for i := 0; i < n; i++ {
		cfg := configs[(i/2)%len(configs)]
		variant := (i / (2 * len(configs))) % 3
		it := inferItem{key: fmt.Sprintf("%s/%s/v%d", cfg.Processor, cfg.Stack, variant)}
		switch variant {
		case 0:
			// Measured: two events of one configuration, the built-in
			// library ties them (superscalar width, non-negativity).
			measure := func(event string) api.InferInput {
				return api.InferInput{Measure: &api.MeasureRequest{
					Processor: cfg.Processor, Stack: cfg.Stack,
					Bench: "loop:500000", Pattern: "ar", Runs: 4,
					Events: []string{event},
				}}
			}
			it.req = api.InferRequest{Items: []api.InferItem{{
				Inputs: []api.InferInput{
					measure("INSTR_RETIRED"),
					measure("CPU_CLK_UNHALTED"),
				},
			}}}
		case 1:
			// Raw with an explicit equality: the BayesPerf-style sum
			// decomposition, consistent by construction.
			it.req = api.InferRequest{Items: []api.InferItem{{
				Inputs: []api.InferInput{
					{Event: "TOTAL", Mean: 1485, Variance: 900},
					{Event: "A", Mean: 1008, Variance: 400},
					{Event: "B", Mean: 503, Variance: 625},
				},
				Constraints: []api.InferConstraint{{
					Name: "decompose",
					Terms: []bayes.Term{
						{Event: "TOTAL", Coef: 1}, {Event: "A", Coef: -1}, {Event: "B", Coef: -1},
					},
					Op: bayes.OpEq, RHS: 0,
				}},
			}}}
		case 2:
			// Deliberately inconsistent: ITLB misses far above i-cache
			// misses cannot happen on the simulated ISA, so the library's
			// residual must flag it (and the posterior must reconcile).
			it.inconsistent = true
			it.req = api.InferRequest{Items: []api.InferItem{{
				Processor: cfg.Processor,
				Inputs: []api.InferInput{
					{Event: "ITLB_MISS", Mean: 4000, Variance: 100},
					{Event: "ICACHE_MISS", Mean: 40, Variance: 100},
				},
			}}}
		}
		items = append(items, it)
	}
	return items, nil
}

// runInfer drives the /infer workload: n requests (issued as identical
// pairs) across c workers, then asserts determinism, the
// posterior<=prior CI guarantee, and the consistency verdicts.
func runInfer(w io.Writer, addr, mixSpec string, n, c int) error {
	if c <= 0 {
		return fmt.Errorf("-c must be positive (got %d)", c)
	}
	if n < 0 {
		return fmt.Errorf("-infers must be non-negative (got %d)", n)
	}
	items, err := buildInferItems(mixSpec, n)
	if err != nil {
		return err
	}

	work := make(chan inferItem)
	results := make(chan inferOutcome, len(items))
	client := &http.Client{Timeout: 120 * time.Second}

	var wg sync.WaitGroup
	for i := 0; i < c; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for item := range work {
				results <- fireInfer(client, addr, item)
			}
		}()
	}
	start := time.Now()
	for _, item := range items {
		work <- item
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)
	close(results)

	return reportInfer(w, results, elapsed)
}

// fireInfer sends one /infer request and evaluates its assertions.
func fireInfer(client *http.Client, addr string, item inferItem) inferOutcome {
	body, err := json.Marshal(item.req)
	if err != nil {
		return inferOutcome{key: item.key, err: err}
	}
	start := time.Now()
	resp, err := client.Post(addr+"/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		return inferOutcome{key: item.key, err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	out := inferOutcome{
		key:      item.key,
		latency:  time.Since(start),
		status:   resp.StatusCode,
		err:      err,
		wantFlag: item.inconsistent,
	}
	if err != nil || resp.StatusCode != http.StatusOK {
		return out
	}
	out.body = string(body) + "=>" + string(data)
	var ir api.InferResponse
	if err := json.Unmarshal(data, &ir); err != nil {
		out.err = err
		return out
	}
	out.consistent = true
	for _, res := range ir.Results {
		out.tightening += res.Tightening
		if !res.Consistent {
			out.consistent = false
		}
		for _, r := range res.Residuals {
			if r.Violated {
				out.flagged = true
			}
		}
		for i, post := range res.Posterior {
			prior := res.Prior[i]
			priorHalf := (prior.Hi - prior.Lo) / 2
			postHalf := (post.Hi - post.Lo) / 2
			if postHalf > priorHalf*(1+1e-9) {
				out.widened++
			}
			out.events++
		}
	}
	return out
}

// reportInfer prints throughput, latency, tightening, and the
// determinism cross-check, failing on any violated assertion.
func reportInfer(w io.Writer, results <-chan inferOutcome, elapsed time.Duration) error {
	var (
		all                  []time.Duration
		failures, total      int
		widened, events      int
		tighteningSum        float64
		flaggedOK, flagMiss  int
		cleanOK, cleanFalse  int
		byRequest            = make(map[string]string)
		divergent, responses int
	)
	for res := range results {
		total++
		if res.err != nil || res.status != http.StatusOK {
			failures++
			continue
		}
		responses++
		all = append(all, res.latency)
		widened += res.widened
		events += res.events
		tighteningSum += res.tightening
		if res.wantFlag {
			if res.flagged && !res.consistent {
				flaggedOK++
			} else {
				flagMiss++
			}
		} else {
			if res.consistent {
				cleanOK++
			} else {
				cleanFalse++
			}
		}
		reqBody, respBody, _ := strings.Cut(res.body, "=>")
		if prev, ok := byRequest[reqBody]; ok && prev != respBody {
			divergent++
		} else {
			byRequest[reqBody] = respBody
		}
	}

	fmt.Fprintf(w, "infers:      %d (%d failed)\n", total, failures)
	fmt.Fprintf(w, "elapsed:     %v\n", elapsed.Round(time.Millisecond))
	if len(all) > 0 && elapsed > 0 {
		fmt.Fprintf(w, "throughput:  %.1f infers/s\n", float64(len(all))/elapsed.Seconds())
	}
	fmt.Fprintf(w, "latency:     %s\n", summarizeLatency(all))
	if responses > 0 {
		fmt.Fprintf(w, "tightening:  %.1f%% mean posterior-vs-prior interval reduction\n",
			100*tighteningSum/float64(responses))
		fmt.Fprintf(w, "residuals:   %d/%d planted inconsistencies flagged, %d/%d clean items clean\n",
			flaggedOK, flaggedOK+flagMiss, cleanOK, cleanOK+cleanFalse)
	}
	if divergent > 0 {
		fmt.Fprintf(w, "DETERMINISM VIOLATION: %d identical infers got different bodies\n", divergent)
		return fmt.Errorf("%d divergent infer responses", divergent)
	}
	fmt.Fprintf(w, "determinism: %d distinct infers, all responses consistent\n", len(byRequest))
	if widened > 0 {
		return fmt.Errorf("%d events reported a posterior interval wider than the prior", widened)
	}
	if flagMiss > 0 {
		return fmt.Errorf("%d planted inconsistencies escaped the residual check", flagMiss)
	}
	if cleanFalse > 0 {
		return fmt.Errorf("%d consistent items were flagged inconsistent", cleanFalse)
	}
	if failures > 0 {
		return fmt.Errorf("%d infers failed", failures)
	}
	return nil
}
