package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/plan"
	"repro/internal/service"
)

// newFullBackend serves all four request/response endpoints from one
// real service, mirroring pcserved for the -mixed and -trace
// workloads.
func newFullBackend(t *testing.T) *httptest.Server {
	t.Helper()
	svc := service.New(service.Config{WorkersPerShard: 2, CalibrationRuns: 5})
	planner := plan.New(svc)
	mux := http.NewServeMux()
	serve := func(handler func(r *http.Request, body []byte) (any, error)) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			body := new(bytes.Buffer)
			if _, err := body.ReadFrom(r.Body); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			resp, err := handler(r, body.Bytes())
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(resp)
		}
	}
	mux.HandleFunc("POST /measure", serve(func(r *http.Request, body []byte) (any, error) {
		var req api.MeasureRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		return svc.Measure(r.Context(), req)
	}))
	mux.HandleFunc("POST /analyze", serve(func(r *http.Request, body []byte) (any, error) {
		var req api.AnalyzeRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		return svc.Analyze(r.Context(), req)
	}))
	mux.HandleFunc("POST /plan", serve(func(r *http.Request, body []byte) (any, error) {
		var req api.PlanRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		return planner.Do(r.Context(), req)
	}))
	mux.HandleFunc("POST /infer", serve(func(r *http.Request, body []byte) (any, error) {
		var req api.InferRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, err
		}
		return svc.Infer(r.Context(), req)
	}))
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestBuildMixedPlan(t *testing.T) {
	items, err := buildMixedPlan("K8/pc,CD/pc", 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 16 {
		t.Fatalf("items = %d, want 16", len(items))
	}
	counts := make(map[string]int)
	for _, it := range items {
		counts[it.endpoint()]++
	}
	for _, ep := range []string{"/measure", "/analyze", "/plan", "/infer"} {
		if counts[ep] != 4 {
			t.Errorf("endpoint %s got %d items, want 4 (of %v)", ep, counts[ep], counts)
		}
	}
	if _, err := buildMixedPlan("garbage", 8, 2); err == nil {
		t.Error("bad mix accepted")
	}
}

// TestRunMixedAgainstBackend checks the per-endpoint percentile
// satellite: a mixed workload reports one latency line per endpoint in
// addition to the pooled summary.
func TestRunMixedAgainstBackend(t *testing.T) {
	srv := newFullBackend(t)
	var out bytes.Buffer
	if err := runMixed(&out, srv.URL, "K8/pc,CD/pc", 16, 4, 2); err != nil {
		t.Fatalf("runMixed: %v\noutput:\n%s", err, out.String())
	}
	report := out.String()
	for _, want := range []string{
		"latency:", "/measure:", "/analyze:", "/plan:", "/infer:", "determinism:",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	if strings.Contains(report, "DETERMINISM VIOLATION") {
		t.Errorf("determinism violation reported:\n%s", report)
	}
}

// TestRunMixedRejectsBadFlags mirrors the other workloads' flag
// validation.
func TestRunMixedRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := runMixed(&out, "http://x", "K8/pc", 4, 0, 1); err == nil {
		t.Error("-c 0 accepted; would hang forever")
	}
	if err := runMixed(&out, "http://x", "garbage", 4, 2, 1); err == nil {
		t.Error("bad mix accepted")
	}
}

// TestRunTraceAgainstBackend drives the -trace workload end to end:
// every pair must pass the span-presence and strip-identity checks
// against a real service.
func TestRunTraceAgainstBackend(t *testing.T) {
	srv := newFullBackend(t)
	var out bytes.Buffer
	if err := runTrace(&out, srv.URL, "K8/pc,CD/pc", 16, 4, 2); err != nil {
		t.Fatalf("runTrace: %v\noutput:\n%s", err, out.String())
	}
	report := out.String()
	for _, want := range []string{
		"pairs:       16 (0 failed)", "spans:", "/measure:", "/infer:",
		"trace:       all pairs byte-identical",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestRunTraceRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := runTrace(&out, "http://x", "K8/pc", 4, 0, 1); err == nil {
		t.Error("-c 0 accepted; would hang forever")
	}
	if err := runTrace(&out, "http://x", "garbage", 4, 2, 1); err == nil {
		t.Error("bad mix accepted")
	}
}
