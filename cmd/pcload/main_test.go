package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/monitor"
	"repro/internal/service"
)

// newBackend serves /measure from a real service, mirroring pcserved's
// wire behavior closely enough for the client.
func newBackend(t *testing.T) *httptest.Server {
	t.Helper()
	svc := service.New(service.Config{WorkersPerShard: 2, CalibrationRuns: 9})
	mux := http.NewServeMux()
	mux.HandleFunc("POST /measure", func(w http.ResponseWriter, r *http.Request) {
		var req api.MeasureRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := svc.Measure(r.Context(), req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("POST /analyze", func(w http.ResponseWriter, r *http.Request) {
		var req api.AnalyzeRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := svc.Analyze(r.Context(), req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	})
	// Session routes, mirroring pcserved's wire behavior for the
	// -monitor workload.
	reg := monitor.NewRegistry(svc, monitor.Config{SweepInterval: -1})
	t.Cleanup(reg.Close)
	mux.HandleFunc("POST /sessions", func(w http.ResponseWriter, r *http.Request) {
		var req api.SessionRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		sess, err := reg.Open(r.Context(), req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusCreated)
		json.NewEncoder(w).Encode(api.SessionCreated{ID: sess.ID, Config: sess.Config()})
	})
	mux.HandleFunc("GET /sessions/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		sess, err := reg.Get(r.PathValue("id"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		sess.Subscribe()
		defer sess.Unsubscribe()
		flusher := w.(http.Flusher)
		i := 0
		for {
			lines, next, wait, done := sess.Events(i)
			i = next
			if len(lines) > 0 {
				for _, line := range lines {
					w.Write(line)
					w.Write([]byte("\n"))
				}
				flusher.Flush()
				continue
			}
			if done {
				return
			}
			select {
			case <-wait:
			case <-r.Context().Done():
				return
			}
		}
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestBuildPlan(t *testing.T) {
	plan, err := buildPlan("K8/pc,CD/PHpm", 40, 3, 4, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 40 {
		t.Fatalf("plan size = %d, want 40", len(plan))
	}
	colds := 0
	for _, item := range plan {
		if item.cold {
			colds++
		}
		if strings.HasPrefix(item.req.Stack, "PH") && (item.req.Pattern == "rr" || item.req.Pattern == "ro") {
			t.Errorf("PH stack assigned unsupported pattern %s", item.req.Pattern)
		}
		if !item.req.Calibrate {
			t.Error("calibrate flag not propagated")
		}
	}
	// Cold marks follow the server's calibration identity: one per
	// distinct (config, pattern) pair in the plan. K8/pc cycles all
	// four patterns; CD/PHpm's rr/ro are clamped to ar, leaving ar/ao.
	if colds != 6 {
		t.Errorf("cold requests = %d, want one per (config, pattern) = 6", colds)
	}

	if _, err := buildPlan("garbage", 10, 1, 1, false, false); err == nil {
		t.Error("bad mix accepted")
	}
}

func TestBuildPlanAnalyze(t *testing.T) {
	plan, err := buildPlan("K8/pc", 8, 2, 4, false, true)
	if err != nil {
		t.Fatal(err)
	}
	var duets, mpxs, samps int
	for _, item := range plan {
		if item.analyze == nil || len(item.analyze.Items) != 1 {
			t.Fatalf("analyze plan item not wrapped: %+v", item)
		}
		ai := item.analyze.Items[0]
		if ai.Duet != nil {
			duets++
		}
		if ai.MpxCounters > 0 {
			mpxs++
		}
		if ai.SamplingPeriod > 0 {
			samps++
		}
	}
	if duets == 0 || mpxs == 0 || samps == 0 {
		t.Errorf("analyze rotation incomplete: duets=%d mpx=%d sampling=%d", duets, mpxs, samps)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "http://x", "K8/pc", 4, 0, 1, 1, false, false); err == nil {
		t.Error("-c 0 accepted; would hang forever")
	}
	if err := run(&out, "http://x", "K8/pc", 4, 2, 1, 0, false, false); err == nil {
		t.Error("-seeds 0 accepted; would panic")
	}
}

func TestRunAgainstBackend(t *testing.T) {
	srv := newBackend(t)
	var out bytes.Buffer
	if err := run(&out, srv.URL, "K8/pc,K8/pm,CD/pc,CD/PHpm", 32, 4, 2, 4, true, false); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	report := out.String()
	for _, want := range []string{"throughput:", "latency:", "determinism:", "cold (", "warm ("} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	if strings.Contains(report, "DETERMINISM VIOLATION") {
		t.Errorf("determinism violation reported:\n%s", report)
	}
}

func TestRunAnalyzeAgainstBackend(t *testing.T) {
	srv := newBackend(t)
	var out bytes.Buffer
	// 16 requests cycle the full model rotation (plain, duet, mpx,
	// sampling) on two shards; the determinism cross-check applies to
	// /analyze bodies exactly as to /measure.
	if err := run(&out, srv.URL, "K8/pc,CD/pc", 16, 4, 2, 4, false, true); err != nil {
		t.Fatalf("run -analyze: %v\noutput:\n%s", err, out.String())
	}
	report := out.String()
	if strings.Contains(report, "DETERMINISM VIOLATION") {
		t.Errorf("determinism violation reported:\n%s", report)
	}
	if !strings.Contains(report, "determinism:") {
		t.Errorf("report missing determinism line:\n%s", report)
	}
}

func TestReportLatencyLine(t *testing.T) {
	d := []time.Duration{4 * time.Millisecond, 1 * time.Millisecond, 3 * time.Millisecond, 2 * time.Millisecond}
	got := summarizeLatency(d).String()
	if !strings.Contains(got, "p50=2ms") || !strings.Contains(got, "max=4ms") {
		t.Errorf("summary = %q", got)
	}
}

func TestRunMonitorAgainstBackend(t *testing.T) {
	srv := newBackend(t)
	var out bytes.Buffer
	// Four sessions = two identical pairs; the cross-check must see
	// every pair stream the same series.
	if err := runMonitor(&out, srv.URL, "K8/pc,CD/pc", 4, 24, 8, 2); err != nil {
		t.Fatalf("runMonitor: %v\noutput:\n%s", err, out.String())
	}
	report := out.String()
	for _, want := range []string{"sessions:    4 (0 failed, 0 ended early)", "samples:     96 streamed", "open:", "stream:", "determinism: 2 distinct configs"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	if strings.Contains(report, "DETERMINISM VIOLATION") {
		t.Errorf("determinism violation reported:\n%s", report)
	}
}

func TestRunMonitorRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := runMonitor(&out, "http://x", "K8/pc", 4, 8, 4, 0); err == nil {
		t.Error("-c 0 accepted; would hang forever")
	}
	if err := runMonitor(&out, "http://x", "K8/pc", 0, 8, 4, 2); err == nil {
		t.Error("-sessions 0 accepted")
	}
	if err := runMonitor(&out, "http://x", "garbage", 2, 8, 4, 2); err == nil {
		t.Error("bad mix accepted")
	}
}
