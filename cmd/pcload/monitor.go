package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
)

// sessionJob is one monitoring session to open and consume.
type sessionJob struct {
	req api.SessionRequest
}

// sessionOutcome records one fully consumed session stream.
type sessionOutcome struct {
	// configKey groups sessions that must stream identical series: the
	// SessionKey of the server's normalized-config echo, so client-side
	// default guessing can't split a group.
	configKey string
	open      time.Duration // POST /sessions latency
	stream    time.Duration // first byte to end event
	samples   int
	windows   int
	drifts    int
	series    string // concatenated sample lines
	endReason string
	err       error
}

// runMonitor opens sessions in identical-configuration pairs,
// consumes every stream to completion with c concurrent consumers,
// and cross-checks that sessions sharing a configuration streamed
// byte-identical sample series.
func runMonitor(w io.Writer, addr, mixSpec string, sessions, steps, window, c int) error {
	if c <= 0 {
		return fmt.Errorf("-c must be positive (got %d)", c)
	}
	if sessions <= 0 {
		return fmt.Errorf("-sessions must be positive (got %d)", sessions)
	}
	if sessions%2 != 0 {
		sessions++ // pairs: every config is opened twice
	}
	configs, err := parseMix(mixSpec)
	if err != nil {
		return err
	}

	benches := []string{"loop:1000", "loop:10000", "null", "array:500"}
	jobs := make([]sessionJob, sessions)
	for i := range jobs {
		pair := i / 2 // both members of a pair share everything
		m := configs[pair%len(configs)]
		m.Bench = benches[pair%len(benches)]
		m.Seed = uint64(1 + pair)
		jobs[i] = sessionJob{req: api.SessionRequest{
			Measure:    m,
			Steps:      steps,
			WindowSize: window,
		}}
	}

	work := make(chan sessionJob)
	results := make(chan sessionOutcome, len(jobs))
	client := &http.Client{} // no timeout: streams are long-lived
	var wg sync.WaitGroup
	for i := 0; i < c; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range work {
				results <- consumeSession(client, addr, job)
			}
		}()
	}
	start := time.Now()
	for _, job := range jobs {
		work <- job
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)
	close(results)

	return reportMonitor(w, results, elapsed)
}

// consumeSession opens one session and reads its stream to the end
// event.
func consumeSession(client *http.Client, addr string, job sessionJob) sessionOutcome {
	body, err := json.Marshal(job.req)
	if err != nil {
		return sessionOutcome{err: err}
	}
	openStart := time.Now()
	resp, err := client.Post(addr+"/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		return sessionOutcome{err: err}
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return sessionOutcome{err: err}
	}
	if resp.StatusCode != http.StatusCreated {
		return sessionOutcome{err: fmt.Errorf("POST /sessions: status %d: %s", resp.StatusCode, data)}
	}
	var created api.SessionCreated
	if err := json.Unmarshal(data, &created); err != nil {
		return sessionOutcome{err: err}
	}
	out := sessionOutcome{configKey: created.Config.SessionKey(), open: time.Since(openStart)}

	streamStart := time.Now()
	sresp, err := client.Get(fmt.Sprintf("%s/sessions/%s/stream", addr, created.ID))
	if err != nil {
		out.err = err
		return out
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		out.err = fmt.Errorf("GET stream: status %d", sresp.StatusCode)
		return out
	}
	var series strings.Builder
	sc := bufio.NewScanner(sresp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		var ev api.StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			out.err = fmt.Errorf("bad stream line %q: %w", sc.Bytes(), err)
			return out
		}
		switch ev.Type {
		case api.StreamSample:
			out.samples++
			series.Write(sc.Bytes())
			series.WriteByte('\n')
		case api.StreamWindow:
			out.windows++
		case api.StreamDrift:
			out.drifts++
		case api.StreamEnd:
			out.endReason = ev.Reason
		}
	}
	if err := sc.Err(); err != nil {
		out.err = err
		return out
	}
	if out.endReason == "" {
		out.err = fmt.Errorf("stream closed without an end event")
		return out
	}
	out.stream = time.Since(streamStart)
	out.series = series.String()
	return out
}

// reportMonitor prints the monitoring workload report and the
// determinism cross-check over paired sessions.
func reportMonitor(w io.Writer, results <-chan sessionOutcome, elapsed time.Duration) error {
	var (
		opens, streams  []time.Duration
		total, failures int
		samples, drifts int
		unfinished      int
		bySeries        = make(map[string]string) // config -> first series
		divergent       int
	)
	for res := range results {
		total++
		if res.err != nil {
			failures++
			fmt.Fprintf(w, "session error: %v\n", res.err)
			continue
		}
		opens = append(opens, res.open)
		streams = append(streams, res.stream)
		samples += res.samples
		drifts += res.drifts
		if res.endReason != api.SessionDone {
			// A truncated stream (deleted, evicted, drained) is a
			// lifecycle outcome, not a determinism signal; only complete
			// series are cross-checked.
			unfinished++
			continue
		}
		if prev, ok := bySeries[res.configKey]; ok && prev != res.series {
			divergent++
		} else {
			bySeries[res.configKey] = res.series
		}
	}

	fmt.Fprintf(w, "sessions:    %d (%d failed, %d ended early)\n", total, failures, unfinished)
	fmt.Fprintf(w, "elapsed:     %v\n", elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "samples:     %d streamed, %d drift events\n", samples, drifts)
	fmt.Fprintf(w, "open:        %s\n", summarizeLatency(opens))
	fmt.Fprintf(w, "stream:      %s\n", summarizeLatency(streams))
	if divergent > 0 {
		fmt.Fprintf(w, "DETERMINISM VIOLATION: %d sessions streamed a different series than their pair\n", divergent)
		return fmt.Errorf("%d divergent session series", divergent)
	}
	fmt.Fprintf(w, "determinism: %d distinct configs, all paired series identical\n", len(bySeries))
	if failures > 0 {
		return fmt.Errorf("%d sessions failed", failures)
	}
	return nil
}
