package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/api"
)

// campaignJob is one validation campaign to open and consume.
type campaignJob struct {
	req api.CampaignRequest
}

// campaignOutcome records one fully consumed campaign stream.
type campaignOutcome struct {
	// configKey groups campaigns that must stream identical events: the
	// Key of the server's normalized-config echo, so client-side default
	// guessing can't split a group.
	configKey string
	open      time.Duration // POST /campaigns latency
	stream    time.Duration // first byte to end event
	programs  int
	findings  int
	body      string // the whole NDJSON stream
	endReason string
	err       error
}

// runCampaign opens validation campaigns in identical-configuration
// pairs, consumes every NDJSON stream to completion with c concurrent
// consumers, and cross-checks that paired campaigns streamed
// byte-identical event series — the determinism contract extended to
// the adversarial validation layer. Any finding is a failure: the
// stock models must survive their own campaigns.
func runCampaign(w io.Writer, addr, mixSpec string, campaigns, programs, c int) error {
	if c <= 0 {
		return fmt.Errorf("-c must be positive (got %d)", c)
	}
	if campaigns <= 0 {
		return fmt.Errorf("-campaigns must be positive (got %d)", campaigns)
	}
	if programs <= 0 {
		return fmt.Errorf("-programs must be positive (got %d)", programs)
	}
	if campaigns%2 != 0 {
		campaigns++ // pairs: every configuration is opened twice
	}
	configs, err := parseMix(mixSpec)
	if err != nil {
		return err
	}

	jobs := make([]campaignJob, campaigns)
	for i := range jobs {
		pair := i / 2 // both members of a pair share everything
		m := configs[pair%len(configs)]
		jobs[i] = campaignJob{req: api.CampaignRequest{
			Seed:       uint64(1 + pair),
			Programs:   programs,
			Processors: []string{m.Processor},
			Stack:      m.Stack,
			Runs:       4,
			Scale:      2,
			InferEvery: 2,
			PlanEvery:  4,
		}}
	}

	work := make(chan campaignJob)
	results := make(chan campaignOutcome, len(jobs))
	client := &http.Client{} // no timeout: streams are long-lived
	var wg sync.WaitGroup
	for i := 0; i < c; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range work {
				results <- consumeCampaign(client, addr, job)
			}
		}()
	}
	start := time.Now()
	for _, job := range jobs {
		work <- job
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)
	close(results)

	return reportCampaign(w, results, elapsed)
}

// consumeCampaign opens one campaign and reads its stream to the end
// event.
func consumeCampaign(client *http.Client, addr string, job campaignJob) campaignOutcome {
	body, err := json.Marshal(job.req)
	if err != nil {
		return campaignOutcome{err: err}
	}
	openStart := time.Now()
	resp, err := client.Post(addr+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		return campaignOutcome{err: err}
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return campaignOutcome{err: err}
	}
	if resp.StatusCode != http.StatusCreated {
		return campaignOutcome{err: fmt.Errorf("POST /campaigns: status %d: %s", resp.StatusCode, data)}
	}
	var created api.CampaignCreated
	if err := json.Unmarshal(data, &created); err != nil {
		return campaignOutcome{err: err}
	}
	out := campaignOutcome{configKey: created.Config.Key(), open: time.Since(openStart)}

	streamStart := time.Now()
	sresp, err := client.Get(fmt.Sprintf("%s/campaigns/%s/stream", addr, created.ID))
	if err != nil {
		out.err = err
		return out
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		out.err = fmt.Errorf("GET stream: status %d", sresp.StatusCode)
		return out
	}
	var stream bytes.Buffer
	sc := bufio.NewScanner(sresp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		var ev api.CampaignEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			out.err = fmt.Errorf("bad stream line %q: %w", sc.Bytes(), err)
			return out
		}
		stream.Write(sc.Bytes())
		stream.WriteByte('\n')
		switch ev.Type {
		case api.CampaignEventProgram:
			out.programs++
		case api.CampaignEventFinding:
			out.findings++
		case api.CampaignEventEnd:
			out.endReason = ev.Reason
		}
	}
	if err := sc.Err(); err != nil {
		out.err = err
		return out
	}
	if out.endReason == "" {
		out.err = fmt.Errorf("stream closed without an end event")
		return out
	}
	out.stream = time.Since(streamStart)
	out.body = stream.String()
	return out
}

// reportCampaign prints the campaign workload report, the determinism
// cross-check over paired campaigns, and the finding count (nonzero
// findings fail the run: the server's stock models are under attack
// and must hold).
func reportCampaign(w io.Writer, results <-chan campaignOutcome, elapsed time.Duration) error {
	var (
		opens, streams     []time.Duration
		total, failures    int
		programs, findings int
		unfinished         int
		byStream           = make(map[string]string) // config key -> first stream
		divergent          int
	)
	for res := range results {
		total++
		if res.err != nil {
			failures++
			fmt.Fprintf(w, "campaign error: %v\n", res.err)
			continue
		}
		opens = append(opens, res.open)
		streams = append(streams, res.stream)
		programs += res.programs
		findings += res.findings
		if res.endReason != api.SessionDone {
			// A truncated stream (deleted, evicted, drained) is a
			// lifecycle outcome, not a determinism signal; only complete
			// streams are cross-checked.
			unfinished++
			continue
		}
		if prev, ok := byStream[res.configKey]; ok && prev != res.body {
			divergent++
		} else {
			byStream[res.configKey] = res.body
		}
	}

	fmt.Fprintf(w, "campaigns:   %d (%d failed, %d ended early)\n", total, failures, unfinished)
	fmt.Fprintf(w, "elapsed:     %v\n", elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "programs:    %d swept, %d findings\n", programs, findings)
	fmt.Fprintf(w, "open:        %s\n", summarizeLatency(opens))
	fmt.Fprintf(w, "stream:      %s\n", summarizeLatency(streams))
	if divergent > 0 {
		fmt.Fprintf(w, "DETERMINISM VIOLATION: %d campaigns streamed different events than their pair\n", divergent)
		return fmt.Errorf("%d divergent campaign streams", divergent)
	}
	fmt.Fprintf(w, "determinism: %d distinct configs, all paired streams identical\n", len(byStream))
	if findings > 0 {
		fmt.Fprintf(w, "MODEL REFUTED: campaigns produced %d findings against the server's models\n", findings)
		return fmt.Errorf("%d campaign findings", findings)
	}
	if failures > 0 {
		return fmt.Errorf("%d campaigns failed", failures)
	}
	return nil
}
