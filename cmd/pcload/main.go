// Command pcload replays a mixed measurement workload against a
// running pcserved and reports throughput, latency percentiles, and —
// because pcserved's responses are deterministic — a cross-check that
// every configuration returned one consistent body.
//
// The default mix drives four shards (K8/pc, K8/pm, CD/pc, CD/PHpm)
// concurrently with a spread of benchmarks and seeds. With -calibrate,
// every request asks for calibration, and the report splits each
// configuration's first request (cold: pays for calibration) from the
// rest (warm: served from the calibration cache), making the cache's
// effect visible from the client side.
//
// With -analyze, requests go to the batched /analyze endpoint instead,
// rotating through the error models (plain counting, duet pairing,
// multiplexed estimation, sampling) so a load run exercises the whole
// accuracy layer; the determinism cross-check applies unchanged.
//
// With -monitor, the workload shifts from request/response to
// continuous monitoring: pcload opens -sessions streaming sessions in
// identical-configuration pairs, consumes every NDJSON stream to its
// end event, and cross-checks that paired sessions streamed
// byte-identical sample series — the determinism contract extended to
// the stateful session layer.
//
// With -plan, requests go to the planning layer: accuracy-targeted
// /plan requests issued in identical pairs, asserting that identical
// plans return byte-identical bodies, that every fused interval is at
// most its naive multiplexed interval, and that plans attain their
// CI-width targets under load.
//
// With -infer, requests go to the constraint-graph inference layer:
// /infer requests issued in identical pairs — measured inputs under
// the built-in invariant library, raw inputs under explicit
// constraints, and deliberately inconsistent inputs — asserting
// byte-identical responses, posterior intervals never wider than the
// priors, and residual verdicts matching each variant.
//
// With -engine, every configuration in the mix is measured twice —
// once pinned to the interpreter engine and once to the compiled
// engine — concurrently, and the responses must be byte-identical
// (after clearing the echoed engine selector): the in-process
// cross-engine conformance suite, exercised over the wire against a
// live server.
//
// With -campaign, the workload turns the server against itself:
// pcload opens -campaigns adversarial counter-validation campaigns
// (POST /campaigns) in identical-configuration pairs, each sweeping
// -programs generated programs through the measurement, inference,
// and planning layers, consumes every NDJSON stream to its end event,
// and fails the run if paired campaigns diverge byte-for-byte or if
// any campaign produces a finding — the stock models must survive
// their own attack suite. See docs/CAMPAIGNS.md.
//
// With -mixed, every request rotates through /measure, /analyze,
// /plan, and /infer, and the report splits latency percentiles per
// endpoint (one pooled line plus one p50/p90/p99 line per endpoint),
// so the cheap endpoints don't hide the expensive ones.
//
// With -trace, every configuration is driven as a traced+untraced
// pair across all four endpoints: the traced response must carry a
// span block drawn from the telemetry catalogue, the untraced one must
// not, and the two bodies must be byte-identical once the trace block
// is stripped — the client-side check of the observability contract
// (docs/OBSERVABILITY.md).
//
// With -cluster, -addr names a pcfront cluster front end instead of a
// single node: the mixed rotation is driven through the proxy, then
// every distinct request is re-issued once against the -direct node
// and the bodies compared byte for byte — the cluster contract (an
// N-node fleet is byte-identical to one node) proven from the client
// side, including under node kill and restart. The report adds the
// routing view (attempts, hedge and retry rates, and the per-backend
// winner distribution from the X-Pcfront-* headers, the fleet state
// from the front's /healthz) and the encode-stage share of the direct
// node's /measure p99, the measurement behind the pooled-encoder
// decision in docs/CLUSTER.md.
//
// -cluster and -trace compose: together they drive the mixed rotation
// as stitched-trace checks through the proxy. Every traced response
// must carry one coherent tree — the front's route and forward spans
// on top (drawn from the cluster-tier span catalogue), the backend's
// own trace nested underneath shape-identical to a direct traced
// answer from the -direct node — and stripping the trace block must
// leave the body byte-identical across traced/untraced and
// front/direct. See docs/OBSERVABILITY.md.
//
// Usage:
//
//	pcload -addr http://localhost:7090 -n 200 -c 8 -calibrate
//	pcload -addr http://localhost:7090 -mix "K8/pc,CD/PLpm" -n 100 -c 4
//	pcload -addr http://localhost:7090 -n 100 -c 4 -analyze
//	pcload -addr http://localhost:7090 -monitor -sessions 8 -steps 64
//	pcload -addr http://localhost:7090 -plan -plans 24 -c 4
//	pcload -addr http://localhost:7090 -infer -infers 24 -c 4
//	pcload -addr http://localhost:7090 -engine -n 64 -c 8
//	pcload -addr http://localhost:7090 -campaign -campaigns 6 -programs 4
//	pcload -addr http://localhost:7090 -mixed -n 64 -c 8
//	pcload -addr http://localhost:7090 -trace -n 32 -c 4
//	pcload -addr http://localhost:7080 -cluster -direct http://localhost:7090 -n 64 -c 8
//	pcload -addr http://localhost:7080 -cluster -trace -direct http://localhost:7090 -n 32 -c 4
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
)

func main() {
	var (
		addr      = flag.String("addr", "http://localhost:7090", "pcserved base URL")
		n         = flag.Int("n", 200, "total requests to send")
		c         = flag.Int("c", 8, "concurrent client workers")
		mixSpec   = flag.String("mix", "K8/pc,K8/pm,CD/pc,CD/PHpm", "comma-separated processor/stack pairs")
		runs      = flag.Int("runs", 3, "measurement runs per request")
		calibrate = flag.Bool("calibrate", false, "request calibration on every measurement")
		seeds     = flag.Int("seeds", 8, "distinct seeds per configuration (spread defeats coalescing)")
		analyze   = flag.Bool("analyze", false, "drive /analyze instead of /measure: rotate plain, duet, multiplexed, and sampling items")
		monitor   = flag.Bool("monitor", false, "drive /sessions instead of /measure: open paired streaming sessions and cross-check their series")
		sessions  = flag.Int("sessions", 4, "monitoring sessions to open with -monitor (rounded up to pairs)")
		steps     = flag.Int("steps", 32, "samples per monitoring session with -monitor")
		window    = flag.Int("window", 8, "samples per window with -monitor")
		planMode  = flag.Bool("plan", false, "drive /plan instead of /measure: accuracy-targeted plans, asserting determinism, fused-interval narrowing, and CI-target attainment")
		plans     = flag.Int("plans", 12, "plan requests to send with -plan (issued as identical pairs)")
		inferMode = flag.Bool("infer", false, "drive /infer instead of /measure: constraint-graph inference, asserting determinism, posterior<=prior intervals, and residual verdicts")
		infers    = flag.Int("infers", 18, "infer requests to send with -infer (issued as identical pairs)")
		engine    = flag.Bool("engine", false, "drive /measure in engine pairs: every configuration pinned to the interpreter and the compiled engine, asserting byte-identical responses")
		campMode  = flag.Bool("campaign", false, "drive /campaigns instead of /measure: paired adversarial counter-validation campaigns, asserting byte-identical streams and zero findings")
		campaigns = flag.Int("campaigns", 6, "campaigns to open with -campaign (rounded up to pairs)")
		programs  = flag.Int("programs", 4, "generated programs per campaign with -campaign")
		mixed     = flag.Bool("mixed", false, "rotate every request through /measure, /analyze, /plan, and /infer; the report splits latency percentiles per endpoint")
		traceMode = flag.Bool("trace", false, "drive traced+untraced request pairs across all endpoints, asserting span presence and byte-identity once the trace block is stripped")
		clusterOn = flag.Bool("cluster", false, "treat -addr as a pcfront cluster: drive the mixed rotation through it and cross-check every response byte-identical to the -direct node")
		directURL = flag.String("direct", "", "direct pcserved base URL the -cluster cross-check compares against")
	)
	flag.Parse()

	var err error
	modes := 0
	for _, on := range []bool{*monitor, *planMode, *analyze, *inferMode, *engine, *campMode, *mixed, *traceMode, *clusterOn} {
		if on {
			modes++
		}
	}
	switch {
	case modes == 2 && *clusterOn && *traceMode:
		err = runClusterTrace(os.Stdout, *addr, *directURL, *mixSpec, *n, *c, *runs)
	case modes > 1:
		err = fmt.Errorf("-analyze, -monitor, -plan, -infer, -engine, -campaign, -mixed, -trace, and -cluster are mutually exclusive workloads (except -cluster -trace)")
	case *clusterOn:
		err = runCluster(os.Stdout, *addr, *directURL, *mixSpec, *n, *c, *runs)
	case *mixed:
		err = runMixed(os.Stdout, *addr, *mixSpec, *n, *c, *runs)
	case *traceMode:
		err = runTrace(os.Stdout, *addr, *mixSpec, *n, *c, *runs)
	case *campMode:
		err = runCampaign(os.Stdout, *addr, *mixSpec, *campaigns, *programs, *c)
	case *monitor:
		err = runMonitor(os.Stdout, *addr, *mixSpec, *sessions, *steps, *window, *c)
	case *planMode:
		err = runPlan(os.Stdout, *addr, *mixSpec, *plans, *c)
	case *inferMode:
		err = runInfer(os.Stdout, *addr, *mixSpec, *infers, *c)
	case *engine:
		err = runEngine(os.Stdout, *addr, *mixSpec, *n, *c, *runs, *seeds)
	default:
		err = run(os.Stdout, *addr, *mixSpec, *n, *c, *runs, *seeds, *calibrate, *analyze)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pcload:", err)
		os.Exit(1)
	}
}

// workItem is one request to fire, tagged with its configuration key.
type workItem struct {
	key  string
	req  api.MeasureRequest
	cold bool // first request of its configuration in this plan
	// analyze, plan, and infer, when set, redirect the item to that
	// endpoint instead of posting req to /measure. At most one is set.
	analyze *api.AnalyzeRequest
	plan    *api.PlanRequest
	infer   *api.InferRequest
}

// endpoint returns the path the item posts to.
func (it workItem) endpoint() string {
	switch {
	case it.analyze != nil:
		return "/analyze"
	case it.plan != nil:
		return "/plan"
	case it.infer != nil:
		return "/infer"
	}
	return "/measure"
}

// payload returns the request body the item posts.
func (it workItem) payload() any {
	switch {
	case it.analyze != nil:
		return it.analyze
	case it.plan != nil:
		return it.plan
	case it.infer != nil:
		return it.infer
	}
	return it.req
}

// outcome records one completed request.
type outcome struct {
	key      string
	endpoint string
	cold     bool
	latency  time.Duration
	body     string
	status   int
	err      error
}

func run(w io.Writer, addr, mixSpec string, n, c, runs, seeds int, calibrate, analyze bool) error {
	if c <= 0 {
		return fmt.Errorf("-c must be positive (got %d)", c)
	}
	if seeds <= 0 {
		return fmt.Errorf("-seeds must be positive (got %d)", seeds)
	}
	if n < 0 {
		return fmt.Errorf("-n must be non-negative (got %d)", n)
	}
	plan, err := buildPlan(mixSpec, n, runs, seeds, calibrate, analyze)
	if err != nil {
		return err
	}
	results, elapsed := executePlan(addr, plan, c)
	if err := report(w, results, elapsed, calibrate); err != nil {
		return err
	}
	// The serialization-share measurement behind the pooled-encoder
	// decision (docs/CLUSTER.md), computed from the server's own stage
	// histograms now that this run has populated them.
	reportEncodeShare(w, addr)
	return nil
}

// executePlan fires a work plan through c concurrent workers and
// returns the closed results channel plus the wall-clock elapsed time.
// Shared by the default, -mixed, and -trace workloads.
func executePlan(addr string, plan []workItem, c int) (<-chan outcome, time.Duration) {
	work := make(chan workItem)
	results := make(chan outcome, len(plan))
	client := &http.Client{Timeout: 60 * time.Second}

	var wg sync.WaitGroup
	for i := 0; i < c; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for item := range work {
				results <- fire(client, addr, item)
			}
		}()
	}

	start := time.Now()
	for _, item := range plan {
		work <- item
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)
	close(results)
	return results, elapsed
}

// parseMix parses a -mix spec — comma-separated PROC/stack pairs —
// into measure-request stubs carrying only the configuration identity.
// Shared by every workload builder so the mix format and its errors
// have one definition.
func parseMix(mixSpec string) ([]api.MeasureRequest, error) {
	var configs []api.MeasureRequest
	for _, pair := range strings.Split(mixSpec, ",") {
		proc, stk, ok := strings.Cut(strings.TrimSpace(pair), "/")
		if !ok {
			return nil, fmt.Errorf("bad mix entry %q (want PROC/stack, e.g. K8/pc)", pair)
		}
		configs = append(configs, api.MeasureRequest{Processor: proc, Stack: stk})
	}
	if len(configs) == 0 {
		return nil, fmt.Errorf("empty mix")
	}
	return configs, nil
}

// buildPlan expands the mix into n requests: for each configuration, a
// rotation of benchmarks and seeds. The first request of each
// configuration is marked cold.
func buildPlan(mixSpec string, n, runs, seeds int, calibrate, analyze bool) ([]workItem, error) {
	configs, err := parseMix(mixSpec)
	if err != nil {
		return nil, err
	}
	for i := range configs {
		configs[i].Runs = runs
		configs[i].Calibrate = calibrate
	}

	benches := []string{"loop:1000", "loop:10000", "null", "array:500"}
	patterns := []string{"ar", "ao", "rr", "ro"}
	plan := make([]workItem, 0, n)
	seen := make(map[string]bool)
	for i := 0; i < n; i++ {
		req := configs[i%len(configs)]
		req.Bench = benches[(i/len(configs))%len(benches)]
		req.Pattern = patterns[(i/(len(configs)*len(benches)))%len(patterns)]
		// The PAPI high-level stacks cannot express read-without-reset
		// patterns; keep their slice of the mix on ar/ao.
		if strings.HasPrefix(req.Stack, "PH") && (req.Pattern == "rr" || req.Pattern == "ro") {
			req.Pattern = "ar"
		}
		req.Seed = uint64(1 + i%seeds)
		key := fmt.Sprintf("%s/%s", req.Processor, req.Stack)
		// Cold means "first request that needs this calibration": the
		// server caches calibrations per (shard, pattern, mode, opt),
		// and within this plan mode and opt are constant. Under high
		// concurrency a few cold-labeled items may race warm ones, so
		// the split is approximate; the service benchmarks isolate the
		// exact cache effect.
		calKey := key + "/" + req.Pattern
		item := workItem{key: key, req: req, cold: !seen[calKey]}
		if analyze {
			item.analyze = analyzeWrap(req, i)
		}
		plan = append(plan, item)
		seen[calKey] = true
	}
	return plan, nil
}

// analyzeWrap turns a measure request into a one-item /analyze batch,
// rotating through the error models so a load run exercises all of
// them: plain counting, duet pairing against the null benchmark,
// multiplexed estimation, and the sampling model.
func analyzeWrap(req api.MeasureRequest, i int) *api.AnalyzeRequest {
	item := api.AnalyzeItem{Measure: req}
	switch i % 4 {
	case 1:
		duet := req
		duet.Bench = "null"
		item.Duet = &duet
	case 2:
		item.Measure.Events = []string{"INSTR_RETIRED", "CPU_CLK_UNHALTED"}
		item.MpxCounters = 1
	case 3:
		item.SamplingPeriod = 10_000
	}
	return &api.AnalyzeRequest{Items: []api.AnalyzeItem{item}}
}

// fire sends one request and records its outcome.
func fire(client *http.Client, addr string, item workItem) outcome {
	path := item.endpoint()
	body, err := json.Marshal(item.payload())
	if err != nil {
		return outcome{key: item.key, endpoint: path, err: err}
	}
	start := time.Now()
	resp, err := client.Post(addr+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return outcome{key: item.key, endpoint: path, cold: item.cold, err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	out := outcome{
		key:      item.key,
		endpoint: path,
		cold:     item.cold,
		latency:  time.Since(start),
		status:   resp.StatusCode,
		err:      err,
	}
	if err == nil && resp.StatusCode == http.StatusOK {
		// Identity for the determinism cross-check: identical request
		// bodies must produce identical response bodies.
		out.body = string(body) + "=>" + string(data)
	}
	return out
}

// report prints throughput, latency percentiles, the cold/warm split,
// and the determinism cross-check.
func report(w io.Writer, results <-chan outcome, elapsed time.Duration, calibrate bool) error {
	var (
		all, warm, cold []time.Duration
		failures        int
		total           int
		byRequest       = make(map[string]string) // request body -> response body
		byEndpoint      = make(map[string][]time.Duration)
		divergent       int
	)
	for res := range results {
		total++
		if res.err != nil || res.status != http.StatusOK {
			failures++
			continue
		}
		all = append(all, res.latency)
		byEndpoint[res.endpoint] = append(byEndpoint[res.endpoint], res.latency)
		if res.cold {
			cold = append(cold, res.latency)
		} else {
			warm = append(warm, res.latency)
		}
		reqBody, respBody, _ := strings.Cut(res.body, "=>")
		if prev, ok := byRequest[reqBody]; ok && prev != respBody {
			divergent++
		} else {
			byRequest[reqBody] = respBody
		}
	}

	fmt.Fprintf(w, "requests:    %d (%d failed)\n", total, failures)
	fmt.Fprintf(w, "elapsed:     %v\n", elapsed.Round(time.Millisecond))
	if len(all) > 0 && elapsed > 0 {
		fmt.Fprintf(w, "throughput:  %.1f req/s\n", float64(len(all))/elapsed.Seconds())
	}
	fmt.Fprintf(w, "latency:     %s\n", summarizeLatency(all))
	// A mixed workload pools endpoints with very different costs; split
	// the percentiles per endpoint so neither hides the other.
	if len(byEndpoint) > 1 {
		endpoints := make([]string, 0, len(byEndpoint))
		for ep := range byEndpoint {
			endpoints = append(endpoints, ep)
		}
		sort.Strings(endpoints)
		for _, ep := range endpoints {
			fmt.Fprintf(w, "  %-10s %s (n=%d)\n", ep+":", summarizeLatency(byEndpoint[ep]), len(byEndpoint[ep]))
		}
	}
	if calibrate && len(cold) > 0 && len(warm) > 0 {
		fmt.Fprintf(w, "cold (first per config, runs calibration): %s\n", summarizeLatency(cold))
		fmt.Fprintf(w, "warm (calibration cache hit):              %s\n", summarizeLatency(warm))
	}
	if divergent > 0 {
		fmt.Fprintf(w, "DETERMINISM VIOLATION: %d identical requests got different bodies\n", divergent)
		return fmt.Errorf("%d divergent responses", divergent)
	}
	fmt.Fprintf(w, "determinism: %d distinct requests, all responses consistent\n", len(byRequest))
	if failures > 0 {
		return fmt.Errorf("%d requests failed", failures)
	}
	return nil
}
