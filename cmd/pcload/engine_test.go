package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/api"
)

func TestBuildEnginePairs(t *testing.T) {
	pairs, err := buildEnginePairs("K8/pc,CD/pc", 16, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 16 {
		t.Fatalf("pairs = %d, want 16", len(pairs))
	}
	for _, p := range pairs {
		if p.req.Engine != "" {
			t.Errorf("pair %s carries engine %q; pinning happens per shot", p.key, p.req.Engine)
		}
	}
	if _, err := buildEnginePairs("garbage", 4, 1, 1); err == nil {
		t.Error("bad mix accepted")
	}
	if _, err := buildEnginePairs("K8/pc", 4, 1, 0); err == nil {
		t.Error("zero seeds accepted")
	}
}

// TestRunEngineAgainstBackend drives the cross-engine workload against
// a real service: every interpreter/compiled pair must come back
// byte-identical under concurrent load.
func TestRunEngineAgainstBackend(t *testing.T) {
	srv := newBackend(t)
	var out bytes.Buffer
	if err := runEngine(&out, srv.URL, "K8/pc,CD/pc", 12, 4, 2, 4); err != nil {
		t.Fatalf("runEngine: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "engine pairs, interpreter and compiled byte-identical") {
		t.Fatalf("missing conformance line:\n%s", out.String())
	}
}

// TestFireEngineClearsEcho checks the normalization that makes the two
// engines' responses comparable: the echoed selector must not leak into
// the compared body.
func TestFireEngineClearsEcho(t *testing.T) {
	srv := newBackend(t)
	pair := enginePair{key: "k", req: api.MeasureRequest{
		Processor: "K8", Stack: "pc", Bench: "loop:1000", Runs: 1,
	}}
	out := fireEngine(srv.Client(), srv.URL, pair, api.EngineInterpreter)
	if out.err != nil || out.status != 200 {
		t.Fatalf("fireEngine: err=%v status=%d", out.err, out.status)
	}
	if strings.Contains(out.body, api.EngineInterpreter) {
		t.Fatalf("normalized body still names the engine:\n%s", out.body)
	}
}
