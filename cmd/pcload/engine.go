package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/api"
)

// enginePair is one measurement configuration fired twice — once pinned
// to each execution engine — for the cross-engine conformance check
// over the wire.
type enginePair struct {
	key string
	req api.MeasureRequest // engine left empty; set per shot
}

// engineOutcome records one completed engine-pinned request. body is
// the response with the echoed engine selector cleared, so the two
// engines' responses compare byte-identically when the measurements do.
type engineOutcome struct {
	key     string
	engine  string
	latency time.Duration
	status  int
	err     error
	body    string
}

// buildEnginePairs expands the mix into n configurations cycling
// benchmarks, patterns, and seeds — the same rotation as the measure
// workload, minus calibration (identical across engines by
// construction, and slow).
func buildEnginePairs(mixSpec string, n, runs, seeds int) ([]enginePair, error) {
	configs, err := parseMix(mixSpec)
	if err != nil {
		return nil, err
	}
	if seeds <= 0 {
		return nil, fmt.Errorf("-seeds must be positive (got %d)", seeds)
	}
	benches := []string{"loop:1000", "loop:10000", "null", "array:500"}
	patterns := []string{"ar", "ao", "rr", "ro"}
	pairs := make([]enginePair, 0, n)
	for i := 0; i < n; i++ {
		req := configs[i%len(configs)]
		req.Runs = runs
		req.Bench = benches[(i/len(configs))%len(benches)]
		req.Pattern = patterns[(i/(len(configs)*len(benches)))%len(patterns)]
		if len(req.Stack) > 1 && req.Stack[:2] == "PH" && (req.Pattern == "rr" || req.Pattern == "ro") {
			req.Pattern = "ar"
		}
		req.Seed = uint64(1 + i%seeds)
		pairs = append(pairs, enginePair{
			key: fmt.Sprintf("%s/%s/%s/%s/s%d", req.Processor, req.Stack, req.Bench, req.Pattern, req.Seed),
			req: req,
		})
	}
	return pairs, nil
}

// runEngine drives the cross-engine conformance workload: every
// configuration is measured once on the interpreter and once on the
// compiled engine, concurrently, and the two responses must be
// byte-identical once the echoed engine selector is cleared.
func runEngine(w io.Writer, addr, mixSpec string, n, c, runs, seeds int) error {
	if c <= 0 {
		return fmt.Errorf("-c must be positive (got %d)", c)
	}
	if n < 0 {
		return fmt.Errorf("-n must be non-negative (got %d)", n)
	}
	pairs, err := buildEnginePairs(mixSpec, n, runs, seeds)
	if err != nil {
		return err
	}

	type shot struct {
		pair   enginePair
		engine string
	}
	work := make(chan shot)
	results := make(chan engineOutcome, 2*len(pairs))
	client := &http.Client{Timeout: 60 * time.Second}

	var wg sync.WaitGroup
	for i := 0; i < c; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range work {
				results <- fireEngine(client, addr, s.pair, s.engine)
			}
		}()
	}
	start := time.Now()
	for _, p := range pairs {
		// Interleave the two engines of a pair immediately so they race
		// on the same shard's workers under load.
		work <- shot{pair: p, engine: api.EngineInterpreter}
		work <- shot{pair: p, engine: api.EngineCompiled}
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)
	close(results)

	return reportEngine(w, results, elapsed)
}

// fireEngine sends one engine-pinned measurement and normalizes the
// response for comparison: the echoed request's engine selector is the
// only field allowed to differ between the pair, so it is cleared.
func fireEngine(client *http.Client, addr string, pair enginePair, engine string) engineOutcome {
	req := pair.req
	req.Engine = engine
	body, err := json.Marshal(req)
	if err != nil {
		return engineOutcome{key: pair.key, engine: engine, err: err}
	}
	start := time.Now()
	resp, err := client.Post(addr+"/measure", "application/json", bytes.NewReader(body))
	if err != nil {
		return engineOutcome{key: pair.key, engine: engine, err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	out := engineOutcome{
		key:     pair.key,
		engine:  engine,
		latency: time.Since(start),
		status:  resp.StatusCode,
		err:     err,
	}
	if err != nil || resp.StatusCode != http.StatusOK {
		return out
	}
	var mr api.MeasureResponse
	if err := json.Unmarshal(data, &mr); err != nil {
		out.err = err
		return out
	}
	mr.Request.Engine = ""
	norm, err := json.Marshal(mr)
	if err != nil {
		out.err = err
		return out
	}
	out.body = string(norm)
	return out
}

// reportEngine prints throughput and latency and fails on any pair
// whose engines disagreed.
func reportEngine(w io.Writer, results <-chan engineOutcome, elapsed time.Duration) error {
	var (
		all             []time.Duration
		failures, total int
		byKey           = make(map[string]map[string]string) // key -> engine -> body
		divergent       []string
	)
	for res := range results {
		total++
		if res.err != nil || res.status != http.StatusOK {
			failures++
			continue
		}
		all = append(all, res.latency)
		if byKey[res.key] == nil {
			byKey[res.key] = make(map[string]string)
		}
		// Identical configurations repeat across pairs only with equal
		// bodies, so last-write-wins is safe; the comparison below is
		// between engines, not repetitions.
		byKey[res.key][res.engine] = res.body
	}
	pairs := 0
	for key, engines := range byKey {
		i, okI := engines[api.EngineInterpreter]
		c, okC := engines[api.EngineCompiled]
		if !okI || !okC {
			continue
		}
		pairs++
		if i != c {
			divergent = append(divergent, key)
		}
	}

	fmt.Fprintf(w, "requests:    %d (%d failed)\n", total, failures)
	fmt.Fprintf(w, "elapsed:     %v\n", elapsed.Round(time.Millisecond))
	if len(all) > 0 && elapsed > 0 {
		fmt.Fprintf(w, "throughput:  %.1f req/s\n", float64(len(all))/elapsed.Seconds())
	}
	fmt.Fprintf(w, "latency:     %s\n", summarizeLatency(all))
	if len(divergent) > 0 {
		fmt.Fprintf(w, "ENGINE CONFORMANCE VIOLATION: %d configurations measured differently per engine\n", len(divergent))
		for _, key := range divergent {
			fmt.Fprintf(w, "  %s\n", key)
		}
		return fmt.Errorf("%d configurations diverged between engines", len(divergent))
	}
	fmt.Fprintf(w, "conformance: %d engine pairs, interpreter and compiled byte-identical\n", pairs)
	if failures > 0 {
		return fmt.Errorf("%d requests failed", failures)
	}
	return nil
}
