package main

import (
	"fmt"
	"sort"
	"time"
)

// latencySummary is a latency sample sorted once at construction, so
// every percentile read afterwards is O(1) — the report paths used to
// copy and re-sort the slice at each call site.
type latencySummary struct {
	sorted []time.Duration
}

// summarizeLatency copies and sorts the sample. The input is not
// modified.
func summarizeLatency(d []time.Duration) latencySummary {
	sorted := append([]time.Duration(nil), d...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return latencySummary{sorted: sorted}
}

// N returns the sample size.
func (s latencySummary) N() int { return len(s.sorted) }

// Percentile returns the p-quantile (0 <= p <= 1) by nearest-rank on
// the sorted sample; an empty sample yields 0. A single-sample summary
// returns that sample for every p.
func (s latencySummary) Percentile(p float64) time.Duration {
	if len(s.sorted) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return s.sorted[int(p*float64(len(s.sorted)-1))]
}

// Max returns the largest sample, 0 when empty.
func (s latencySummary) Max() time.Duration {
	if len(s.sorted) == 0 {
		return 0
	}
	return s.sorted[len(s.sorted)-1]
}

// String renders the p50/p90/p99/max line of the reports.
func (s latencySummary) String() string {
	if len(s.sorted) == 0 {
		return "n/a"
	}
	return fmt.Sprintf("p50=%v p90=%v p99=%v max=%v",
		s.Percentile(0.50).Round(time.Microsecond),
		s.Percentile(0.90).Round(time.Microsecond),
		s.Percentile(0.99).Round(time.Microsecond),
		s.Max().Round(time.Microsecond))
}
