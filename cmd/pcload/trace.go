package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/telemetry"
)

// traceOutcome records one traced+untraced pair and the contract
// checks made on it.
type traceOutcome struct {
	endpoint string
	latency  time.Duration // the traced request's latency
	spans    int
	err      error
}

// withTrace returns the item's payload with the trace flag set —
// the only difference from the untraced twin.
func withTrace(item workItem) any {
	switch {
	case item.analyze != nil:
		req := *item.analyze
		req.Trace = true
		return &req
	case item.plan != nil:
		req := *item.plan
		req.Trace = true
		return &req
	case item.infer != nil:
		req := *item.infer
		req.Trace = true
		return &req
	}
	req := item.req
	req.Trace = true
	return req
}

// stripTraceBlock unmarshals a response body, removes the top-level
// "trace" key, and re-marshals the rest. Go's map marshaling sorts
// keys, so two bodies that agree on everything but the trace block
// compare equal byte-for-byte after this.
func stripTraceBlock(body []byte) (stripped string, trace *api.TraceInfo, err error) {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(body, &m); err != nil {
		return "", nil, fmt.Errorf("unmarshal response: %w", err)
	}
	if raw, ok := m["trace"]; ok {
		trace = new(api.TraceInfo)
		if err := json.Unmarshal(raw, trace); err != nil {
			return "", nil, fmt.Errorf("unmarshal trace block: %w", err)
		}
		delete(m, "trace")
	}
	out, err := json.Marshal(m)
	if err != nil {
		return "", nil, err
	}
	return string(out), trace, nil
}

// fireTracePair posts the item untraced and traced, then checks the
// observability contract: no trace block without opt-in, a catalogued
// span block with opt-in, and byte-identical bodies once the block is
// stripped.
func fireTracePair(client *http.Client, addr string, item workItem, catalogue map[string]bool) traceOutcome {
	out := traceOutcome{endpoint: item.endpoint()}
	post := func(payload any) ([]byte, error) {
		body, err := json.Marshal(payload)
		if err != nil {
			return nil, err
		}
		resp, err := client.Post(addr+item.endpoint(), "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("%s: status %d: %s", item.endpoint(), resp.StatusCode, data)
		}
		return data, nil
	}

	plain, err := post(item.payload())
	if err != nil {
		out.err = err
		return out
	}
	start := time.Now()
	traced, err := post(withTrace(item))
	out.latency = time.Since(start)
	if err != nil {
		out.err = err
		return out
	}

	plainStripped, plainTrace, err := stripTraceBlock(plain)
	if err != nil {
		out.err = err
		return out
	}
	if plainTrace != nil {
		out.err = fmt.Errorf("%s: untraced response carries a trace block", item.endpoint())
		return out
	}
	tracedStripped, traceBlock, err := stripTraceBlock(traced)
	if err != nil {
		out.err = err
		return out
	}
	if traceBlock == nil || len(traceBlock.Spans) == 0 {
		out.err = fmt.Errorf("%s: traced response has no spans", item.endpoint())
		return out
	}
	out.spans = len(traceBlock.Spans)
	for _, sp := range traceBlock.Spans {
		if !catalogue[sp.Name] {
			out.err = fmt.Errorf("%s: span %q not in the telemetry catalogue", item.endpoint(), sp.Name)
			return out
		}
		if sp.DurationNs < 0 {
			out.err = fmt.Errorf("%s: span %q has negative duration", item.endpoint(), sp.Name)
			return out
		}
	}
	if tracedStripped != plainStripped {
		out.err = fmt.Errorf("%s: TRACE VIOLATION: bodies differ beyond the trace block", item.endpoint())
	}
	return out
}

// runTrace drives the -trace workload: n traced+untraced pairs
// rotating through /measure, /analyze, /plan, and /infer across c
// workers, failing the run if any pair violates the observability
// contract.
func runTrace(w io.Writer, addr, mixSpec string, n, c, runs int) error {
	if c <= 0 {
		return fmt.Errorf("-c must be positive (got %d)", c)
	}
	if n < 0 {
		return fmt.Errorf("-n must be non-negative (got %d)", n)
	}
	plan, err := buildMixedPlan(mixSpec, n, runs)
	if err != nil {
		return err
	}
	catalogue := make(map[string]bool)
	for _, name := range telemetry.SpanNames() {
		catalogue[name] = true
	}

	work := make(chan workItem)
	results := make(chan traceOutcome, len(plan))
	client := &http.Client{Timeout: 60 * time.Second}
	var wg sync.WaitGroup
	for i := 0; i < c; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for item := range work {
				results <- fireTracePair(client, addr, item, catalogue)
			}
		}()
	}
	start := time.Now()
	for _, item := range plan {
		work <- item
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)
	close(results)

	var (
		total, failures, spans int
		firstErr               error
		byEndpoint             = make(map[string][]time.Duration)
	)
	for res := range results {
		total++
		if res.err != nil {
			failures++
			if firstErr == nil {
				firstErr = res.err
			}
			continue
		}
		spans += res.spans
		byEndpoint[res.endpoint] = append(byEndpoint[res.endpoint], res.latency)
	}

	fmt.Fprintf(w, "pairs:       %d (%d failed)\n", total, failures)
	fmt.Fprintf(w, "elapsed:     %v\n", elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "spans:       %d across all traced responses\n", spans)
	endpoints := make([]string, 0, len(byEndpoint))
	for ep := range byEndpoint {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)
	for _, ep := range endpoints {
		fmt.Fprintf(w, "  %-10s %s (n=%d, traced)\n", ep+":", summarizeLatency(byEndpoint[ep]), len(byEndpoint[ep]))
	}
	if failures > 0 {
		return fmt.Errorf("%d trace pairs failed, first: %w", failures, firstErr)
	}
	fmt.Fprintf(w, "trace:       all pairs byte-identical after stripping the trace block\n")
	return nil
}
