package main

import (
	"fmt"
	"io"

	"repro/internal/api"
	"repro/internal/bayes"
)

// buildMixedPlan expands the mix into n requests rotating through all
// four request/response endpoints — /measure, /analyze, /plan, /infer
// — so one load run covers the whole serving surface and the report's
// per-endpoint latency split has something to split. Payloads are kept
// modest: the mixed workload measures the endpoints' relative costs,
// not their extremes.
func buildMixedPlan(mixSpec string, n, runs int) ([]workItem, error) {
	configs, err := parseMix(mixSpec)
	if err != nil {
		return nil, err
	}
	benches := []string{"loop:1000", "loop:5000", "array:500"}
	plan := make([]workItem, 0, n)
	for i := 0; i < n; i++ {
		cfg := configs[(i/4)%len(configs)]
		req := api.MeasureRequest{
			Processor: cfg.Processor, Stack: cfg.Stack,
			Bench: benches[(i/(4*len(configs)))%len(benches)],
			Runs:  runs,
			Seed:  uint64(1 + i/(4*len(configs)*len(benches))),
		}
		item := workItem{key: cfg.Processor + "/" + cfg.Stack}
		switch i % 4 {
		case 0:
			item.req = req
		case 1:
			item.analyze = &api.AnalyzeRequest{Items: []api.AnalyzeItem{{
				Measure: req, MpxCounters: 2,
			}}}
		case 2:
			preq := req
			preq.Events = []string{"INSTR_RETIRED", "CPU_CLK_UNHALTED"}
			preq.Runs = 0 // the plan decides its own run counts
			item.plan = &api.PlanRequest{
				Measure:        preq,
				TargetRelWidth: 0.25,
				PilotRuns:      2,
				MaxRuns:        8,
			}
		case 3:
			// Raw-input inference: cheap by construction, no measuring.
			item.infer = &api.InferRequest{Items: []api.InferItem{{
				Inputs: []api.InferInput{
					{Event: "TOTAL", Mean: 1485, Variance: 900},
					{Event: "A", Mean: 1008, Variance: 400},
					{Event: "B", Mean: 503, Variance: 625},
				},
				Constraints: []api.InferConstraint{{
					Name: "decompose",
					Terms: []bayes.Term{
						{Event: "TOTAL", Coef: 1}, {Event: "A", Coef: -1}, {Event: "B", Coef: -1},
					},
					Op: bayes.OpEq, RHS: 0,
				}},
			}}}
		}
		plan = append(plan, item)
	}
	return plan, nil
}

// runMixed drives the mixed workload: n requests rotating through all
// four endpoints across c workers, reported with the per-endpoint
// latency split. The determinism cross-check applies per request body,
// endpoint-agnostic, exactly as in the default workload.
func runMixed(w io.Writer, addr, mixSpec string, n, c, runs int) error {
	if c <= 0 {
		return fmt.Errorf("-c must be positive (got %d)", c)
	}
	if n < 0 {
		return fmt.Errorf("-n must be non-negative (got %d)", n)
	}
	plan, err := buildMixedPlan(mixSpec, n, runs)
	if err != nil {
		return err
	}
	results, elapsed := executePlan(addr, plan, c)
	return report(w, results, elapsed, false)
}
