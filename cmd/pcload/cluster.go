package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
)

// runCluster drives a pcfront cluster and proves the cluster contract
// from the client side: every response body must be byte-identical to
// a direct single-node answer. The workload is the mixed rotation
// (/measure, /analyze, /plan, /infer) fired at the front; then every
// distinct request is fired once at the -direct node and the bodies
// compared byte for byte. The report adds the routing view (attempts,
// hedges, fleet state from the front's /healthz) and the encode-stage
// share of the direct node's /measure p99 — the measurement behind the
// pooled-encoder decision in docs/CLUSTER.md.
func runCluster(w io.Writer, frontAddr, directAddr, mixSpec string, n, c, runs int) error {
	if directAddr == "" {
		return fmt.Errorf("-cluster needs -direct, the single pcserved node to cross-check against")
	}
	if c <= 0 {
		return fmt.Errorf("-c must be positive (got %d)", c)
	}
	if n < 0 {
		return fmt.Errorf("-n must be non-negative (got %d)", n)
	}
	plan, err := buildMixedPlan(mixSpec, n, runs)
	if err != nil {
		return err
	}

	outcomes, elapsed := executeCluster(frontAddr, plan, c)

	// Direct reference pass: one request per distinct body. The direct
	// node computes each answer independently; determinism is what makes
	// it the oracle for the whole fleet.
	distinct := make(map[string]string) // request body -> endpoint
	for _, out := range outcomes {
		if out.err == nil {
			distinct[string(out.reqBody)] = out.endpoint
		}
	}
	reference := directReference(directAddr, distinct, c)

	var (
		failures, divergent, multiAttempt, hedged, retried int
		byEndpoint                                         = make(map[string][]time.Duration)
		byBackend                                          = make(map[string]int)
		attemptDist                                        = make(map[int]int)
		all                                                []time.Duration
	)
	for _, out := range outcomes {
		if out.err != nil || out.status != http.StatusOK {
			failures++
			continue
		}
		all = append(all, out.latency)
		byEndpoint[out.endpoint] = append(byEndpoint[out.endpoint], out.latency)
		if out.attempts > 1 {
			multiAttempt++
		}
		if out.hedged {
			hedged++
		} else if out.attempts > 1 {
			retried++
		}
		if out.backend != "" {
			byBackend[out.backend]++
		}
		attemptDist[out.attempts]++
		ref, ok := reference[string(out.reqBody)]
		if !ok {
			failures++
			continue
		}
		if !bytes.Equal(out.body, ref) {
			divergent++
		}
	}

	fmt.Fprintf(w, "cluster:     front=%s direct=%s\n", frontAddr, directAddr)
	fmt.Fprintf(w, "requests:    %d (%d failed)\n", len(outcomes), failures)
	fmt.Fprintf(w, "elapsed:     %v\n", elapsed.Round(time.Millisecond))
	if len(all) > 0 && elapsed > 0 {
		fmt.Fprintf(w, "throughput:  %.1f req/s\n", float64(len(all))/elapsed.Seconds())
	}
	fmt.Fprintf(w, "latency:     %s\n", summarizeLatency(all))
	endpoints := make([]string, 0, len(byEndpoint))
	for ep := range byEndpoint {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)
	for _, ep := range endpoints {
		fmt.Fprintf(w, "  %-10s %s (n=%d)\n", ep+":", summarizeLatency(byEndpoint[ep]), len(byEndpoint[ep]))
	}
	fmt.Fprintf(w, "routing:     %d multi-attempt, %d hedge-won (from response headers)\n", multiAttempt, hedged)
	if len(all) > 0 {
		fmt.Fprintf(w, "hedge rate:  %.1f%% (%d/%d); retry rate: %.1f%% (%d/%d)\n",
			100*float64(hedged)/float64(len(all)), hedged, len(all),
			100*float64(retried)/float64(len(all)), retried, len(all))
	}
	// Per-backend distribution of winning responses, and how many
	// attempts requests took — both from the X-Pcfront-* headers, so this
	// is the client's view of the routing policy, not the front's.
	if len(byBackend) > 0 {
		names := make([]string, 0, len(byBackend))
		for name := range byBackend {
			names = append(names, name)
		}
		sort.Strings(names)
		parts := make([]string, len(names))
		for i, name := range names {
			parts[i] = fmt.Sprintf("%s=%d", name, byBackend[name])
		}
		fmt.Fprintf(w, "backends:    %s (winner per response)\n", strings.Join(parts, " "))
	}
	if len(attemptDist) > 0 {
		counts := make([]int, 0, len(attemptDist))
		for a := range attemptDist {
			counts = append(counts, a)
		}
		sort.Ints(counts)
		parts := make([]string, len(counts))
		for i, a := range counts {
			parts[i] = fmt.Sprintf("%dx%d", attemptDist[a], a)
		}
		fmt.Fprintf(w, "attempts:    %s (requests x attempts)\n", strings.Join(parts, " "))
	}
	reportFleet(w, frontAddr)

	if divergent > 0 {
		fmt.Fprintf(w, "CLUSTER DIVERGENCE: %d responses differ from the direct node\n", divergent)
		return fmt.Errorf("%d responses diverged from the direct node", divergent)
	}
	fmt.Fprintf(w, "byte-identity: %d distinct requests, every cluster response byte-identical to direct\n", len(distinct))
	reportEncodeShare(w, directAddr)
	if failures > 0 {
		return fmt.Errorf("%d requests failed", failures)
	}
	return nil
}

// clusterOutcome is one front-routed request with the proxy's routing
// metadata read back from the response headers.
type clusterOutcome struct {
	endpoint string
	reqBody  []byte
	body     []byte
	status   int
	latency  time.Duration
	attempts int
	hedged   bool
	backend  string
	err      error
}

// executeCluster fires the plan at the front through c workers,
// capturing complete bodies (success or error — error bodies are part
// of the byte-identity contract too) and the X-Pcfront-* headers.
func executeCluster(frontAddr string, plan []workItem, c int) ([]clusterOutcome, time.Duration) {
	client := &http.Client{Timeout: 60 * time.Second}
	work := make(chan workItem)
	results := make(chan clusterOutcome, len(plan))
	var wg sync.WaitGroup
	for i := 0; i < c; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for item := range work {
				results <- fireCluster(client, frontAddr, item)
			}
		}()
	}
	start := time.Now()
	for _, item := range plan {
		work <- item
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)
	close(results)
	out := make([]clusterOutcome, 0, len(plan))
	for res := range results {
		out = append(out, res)
	}
	return out, elapsed
}

func fireCluster(client *http.Client, addr string, item workItem) clusterOutcome {
	path := item.endpoint()
	reqBody, err := json.Marshal(item.payload())
	if err != nil {
		return clusterOutcome{endpoint: path, err: err}
	}
	start := time.Now()
	resp, err := client.Post(addr+path, "application/json", bytes.NewReader(reqBody))
	if err != nil {
		return clusterOutcome{endpoint: path, reqBody: reqBody, err: err}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	attempts, _ := strconv.Atoi(resp.Header.Get(api.HeaderAttempts))
	return clusterOutcome{
		endpoint: path,
		reqBody:  reqBody,
		body:     body,
		status:   resp.StatusCode,
		latency:  time.Since(start),
		attempts: attempts,
		hedged:   resp.Header.Get(api.HeaderHedged) == "true",
		backend:  resp.Header.Get(api.HeaderBackend),
		err:      err,
	}
}

// directReference fires each distinct request once at the direct node
// and returns its body per request body.
func directReference(addr string, distinct map[string]string, c int) map[string][]byte {
	type job struct{ body, endpoint string }
	client := &http.Client{Timeout: 60 * time.Second}
	work := make(chan job)
	var mu sync.Mutex
	out := make(map[string][]byte, len(distinct))
	var wg sync.WaitGroup
	for i := 0; i < c; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range work {
				resp, err := client.Post(addr+j.endpoint, "application/json", strings.NewReader(j.body))
				if err != nil {
					continue
				}
				data, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					continue
				}
				mu.Lock()
				out[j.body] = data
				mu.Unlock()
			}
		}()
	}
	for body, endpoint := range distinct {
		work <- job{body: body, endpoint: endpoint}
	}
	close(work)
	wg.Wait()
	return out
}

// reportFleet prints the front's view of its backends (states, hedge
// and retry engagement) from GET /healthz. Best-effort: a scrape
// failure is reported, never fatal.
func reportFleet(w io.Writer, frontAddr string) {
	resp, err := http.Get(frontAddr + "/healthz")
	if err != nil {
		fmt.Fprintf(w, "fleet:       (healthz unreachable: %v)\n", err)
		return
	}
	defer resp.Body.Close()
	var h api.ClusterHealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		fmt.Fprintf(w, "fleet:       (bad healthz body: %v)\n", err)
		return
	}
	states := make([]string, len(h.Nodes))
	for i, n := range h.Nodes {
		states[i] = fmt.Sprintf("%s=%s(%dreq,%derr)", n.Name, n.State, n.Requests, n.Errors)
	}
	fmt.Fprintf(w, "fleet:       %s; status=%s hedged=%d hedge-wins=%d retried=%d\n",
		strings.Join(states, " "), h.Status, h.Hedged, h.HedgeWins, h.Retried)
}

// reportEncodeShare scrapes a pcserved node's /metrics and reports the
// encode stage's p99 as a share of the /measure endpoint's p99 — the
// measurement the pooled-encoder decision rests on (docs/CLUSTER.md:
// ship one only if serialization exceeds ~10% of the request budget).
// Best-effort: a node without traffic or an unreachable /metrics just
// reports why.
func reportEncodeShare(w io.Writer, addr string) {
	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		fmt.Fprintf(w, "encode share: (metrics unreachable: %v)\n", err)
		return
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		fmt.Fprintf(w, "encode share: (reading metrics: %v)\n", err)
		return
	}
	encodeP99, eok := promHistogramP99(text, "pcserved_stage_duration_seconds_bucket", `stage="encode"`)
	measureP99, mok := promHistogramP99(text, "pcserved_http_request_duration_seconds_bucket", `endpoint="/measure"`)
	if !eok || !mok || measureP99 <= 0 {
		fmt.Fprintf(w, "encode share: (no /measure traffic recorded on %s)\n", addr)
		return
	}
	share := encodeP99 / measureP99
	verdict := "below the ~10% pooled-encoder threshold; stock encoding stays"
	if share > 0.10 {
		verdict = "above the ~10% threshold; consider the pooled encoder (docs/CLUSTER.md)"
	}
	fmt.Fprintf(w, "encode share: encode p99 %.3gs / measure p99 %.3gs = %.1f%% — %s\n",
		encodeP99, measureP99, share*100, verdict)
}

// promHistogramP99 computes an upper-bound p99 from a Prometheus
// histogram's cumulative buckets in text exposition: the smallest
// bucket boundary covering 99% of observations, linearly interpolated
// within the bucket. Matches lines of the given family whose label set
// contains labelPair.
func promHistogramP99(text []byte, family, labelPair string) (float64, bool) {
	type bucket struct {
		le    float64
		count float64
	}
	var buckets []bucket
	for _, line := range strings.Split(string(text), "\n") {
		if !strings.HasPrefix(line, family+"{") {
			continue
		}
		labels, value, ok := cutPromLine(line, family)
		if !ok || !strings.Contains(labels, labelPair) {
			continue
		}
		leStr, ok := promLabel(labels, "le")
		if !ok {
			continue
		}
		le, err := parsePromFloat(leStr)
		if err != nil {
			continue
		}
		count, err := strconv.ParseFloat(value, 64)
		if err != nil {
			continue
		}
		buckets = append(buckets, bucket{le: le, count: count})
	}
	if len(buckets) == 0 {
		return 0, false
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	total := buckets[len(buckets)-1].count // +Inf bucket is cumulative total
	if total == 0 {
		return 0, false
	}
	target := 0.99 * total
	prevLe, prevCount := 0.0, 0.0
	for _, b := range buckets {
		if b.count >= target {
			if b.le > 1e300 { // the +Inf bucket: no upper bound to interpolate to
				return prevLe, true
			}
			if b.count == prevCount {
				return b.le, true
			}
			frac := (target - prevCount) / (b.count - prevCount)
			return prevLe + frac*(b.le-prevLe), true
		}
		prevLe, prevCount = b.le, b.count
	}
	return buckets[len(buckets)-1].le, true
}

// cutPromLine splits `family{labels} value` into its labels and value.
func cutPromLine(line, family string) (labels, value string, ok bool) {
	rest := strings.TrimPrefix(line, family+"{")
	end := strings.Index(rest, "}")
	if end < 0 {
		return "", "", false
	}
	return rest[:end], strings.TrimSpace(rest[end+1:]), true
}

// promLabel extracts one label's value from a serialized label set.
func promLabel(labels, name string) (string, bool) {
	for _, part := range strings.Split(labels, ",") {
		k, v, ok := strings.Cut(part, "=")
		if ok && k == name {
			return strings.Trim(v, `"`), true
		}
	}
	return "", false
}

// parsePromFloat parses a bucket boundary, accepting "+Inf".
func parsePromFloat(s string) (float64, error) {
	if s == "+Inf" {
		return 1e308, nil
	}
	return strconv.ParseFloat(s, 64)
}
