package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/telemetry"
)

// clusterTraceOutcome records one stitched-trace check against a
// pcfront cluster.
type clusterTraceOutcome struct {
	endpoint string
	spans    int // front spans in the stitched tree
	err      error
}

// fireClusterTracePair drives the cluster-tracing contract for one
// item: a traced and an untraced request through the front, plus a
// traced request to the direct node, asserting that
//
//   - the stitched tree carries the front's route and forward spans,
//     every one drawn from the front span catalogue, with the origin
//     naming the proxy;
//   - the backend subtree is present, catalogued, and shape-identical
//     to the direct node's own trace — the proxied trace is the direct
//     trace with the cluster tier stacked on top, nothing rewritten;
//   - stripping the trace block yields bodies byte-identical across
//     traced/untraced and front/direct — tracing never perturbs the
//     answer, and the cluster contract survives the trace rewrite.
func fireClusterTracePair(client *http.Client, frontAddr, directAddr string, item workItem, frontCat, nodeCat map[string]bool) clusterTraceOutcome {
	out := clusterTraceOutcome{endpoint: item.endpoint()}
	post := func(addr string, payload any) ([]byte, error) {
		body, err := json.Marshal(payload)
		if err != nil {
			return nil, err
		}
		resp, err := client.Post(addr+item.endpoint(), "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("%s: status %d: %s", item.endpoint(), resp.StatusCode, data)
		}
		return data, nil
	}
	fail := func(format string, args ...any) clusterTraceOutcome {
		out.err = fmt.Errorf("%s: "+format, append([]any{item.endpoint()}, args...)...)
		return out
	}

	plain, err := post(frontAddr, item.payload())
	if err != nil {
		out.err = err
		return out
	}
	traced, err := post(frontAddr, withTrace(item))
	if err != nil {
		out.err = err
		return out
	}
	direct, err := post(directAddr, withTrace(item))
	if err != nil {
		out.err = err
		return out
	}

	plainStripped, plainTrace, err := stripTraceBlock(plain)
	if err != nil {
		out.err = err
		return out
	}
	if plainTrace != nil {
		return fail("untraced response through the front carries a trace block")
	}
	tracedStripped, stitched, err := stripTraceBlock(traced)
	if err != nil {
		out.err = err
		return out
	}
	if stitched == nil || len(stitched.Spans) == 0 {
		return fail("traced response has no stitched spans")
	}
	directStripped, directTrace, err := stripTraceBlock(direct)
	if err != nil {
		out.err = err
		return out
	}
	if directTrace == nil {
		return fail("direct traced response has no trace block")
	}

	if stitched.Origin == "" {
		return fail("stitched tree names no origin")
	}
	route, forward := 0, 0
	for _, sp := range stitched.Spans {
		if !frontCat[sp.Name] {
			return fail("front span %q not in the cluster-tier catalogue", sp.Name)
		}
		switch sp.Name {
		case telemetry.SpanRoute:
			route++
		case telemetry.SpanForward:
			forward++
		}
	}
	if route == 0 || forward == 0 {
		return fail("stitched tree missing route/forward spans (%d route, %d forward)", route, forward)
	}
	out.spans = len(stitched.Spans)

	if len(stitched.Backend) == 0 {
		return fail("stitched tree has no backend subtree")
	}
	var sub api.TraceInfo
	if err := json.Unmarshal(stitched.Backend, &sub); err != nil {
		return fail("backend subtree does not decode: %v", err)
	}
	if len(sub.Spans) == 0 {
		return fail("backend subtree has no spans")
	}
	for _, sp := range sub.Spans {
		if !nodeCat[sp.Name] {
			return fail("backend span %q not in the node catalogue", sp.Name)
		}
	}
	if sub.Shape() != directTrace.Shape() {
		return fail("CLUSTER TRACE VIOLATION: backend subtree shape %q, direct trace shape %q",
			sub.Shape(), directTrace.Shape())
	}

	if tracedStripped != plainStripped {
		return fail("CLUSTER TRACE VIOLATION: traced/untraced bodies differ beyond the trace block")
	}
	if plainStripped != directStripped {
		return fail("CLUSTER TRACE VIOLATION: front body diverges from the direct node")
	}
	return out
}

// runClusterTrace drives the -cluster -trace workload: the mixed
// rotation fired as stitched-trace checks through a pcfront cluster,
// cross-checked span-by-span and byte-by-byte against the -direct
// node.
func runClusterTrace(w io.Writer, frontAddr, directAddr, mixSpec string, n, c, runs int) error {
	if directAddr == "" {
		return fmt.Errorf("-cluster -trace needs -direct, the single pcserved node to cross-check against")
	}
	if c <= 0 {
		return fmt.Errorf("-c must be positive (got %d)", c)
	}
	if n < 0 {
		return fmt.Errorf("-n must be non-negative (got %d)", n)
	}
	plan, err := buildMixedPlan(mixSpec, n, runs)
	if err != nil {
		return err
	}
	frontCat, nodeCat := make(map[string]bool), make(map[string]bool)
	for _, name := range telemetry.FrontSpanNames() {
		frontCat[name] = true
	}
	for _, name := range telemetry.SpanNames() {
		nodeCat[name] = true
	}

	work := make(chan workItem)
	results := make(chan clusterTraceOutcome, len(plan))
	client := &http.Client{Timeout: 60 * time.Second}
	var wg sync.WaitGroup
	for i := 0; i < c; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for item := range work {
				results <- fireClusterTracePair(client, frontAddr, directAddr, item, frontCat, nodeCat)
			}
		}()
	}
	start := time.Now()
	for _, item := range plan {
		work <- item
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)
	close(results)

	var total, failures, spans int
	var firstErr error
	for res := range results {
		total++
		if res.err != nil {
			failures++
			if firstErr == nil {
				firstErr = res.err
			}
			continue
		}
		spans += res.spans
	}
	fmt.Fprintf(w, "cluster trace: front=%s direct=%s\n", frontAddr, directAddr)
	fmt.Fprintf(w, "checks:      %d (%d failed)\n", total, failures)
	fmt.Fprintf(w, "elapsed:     %v\n", elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "front spans: %d across all stitched trees\n", spans)
	if failures > 0 {
		return fmt.Errorf("%d cluster trace checks failed, first: %w", failures, firstErr)
	}
	fmt.Fprintf(w, "stitching:   every tree carries route+forward spans and a backend subtree shape-identical to the direct node\n")
	return nil
}
