package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/campaign"
	"repro/internal/plan"
	"repro/internal/service"
)

// newCampaignBackend serves /campaigns from a real campaign registry
// over a real service, mirroring pcserved's wiring.
func newCampaignBackend(t *testing.T) *httptest.Server {
	t.Helper()
	svc := service.New(service.Config{WorkersPerShard: 2, CalibrationRuns: 5})
	planner := plan.New(svc)
	creg := campaign.NewRegistry(campaign.Services{
		Measure: svc.Measure,
		Infer:   svc.Infer,
		Plan:    planner.Do,
	}, campaign.Config{SweepInterval: -1})
	t.Cleanup(creg.Close)

	mux := http.NewServeMux()
	mux.HandleFunc("POST /campaigns", func(w http.ResponseWriter, r *http.Request) {
		var req api.CampaignRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		camp, err := creg.Open(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusCreated)
		json.NewEncoder(w).Encode(api.CampaignCreated{ID: camp.ID, Config: camp.Config()})
	})
	mux.HandleFunc("GET /campaigns/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		camp, err := creg.Get(r.PathValue("id"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		flusher, _ := w.(http.Flusher)
		camp.Subscribe()
		defer camp.Unsubscribe()
		i := 0
		for {
			lines, next, wait, done := camp.Events(i)
			i = next
			if len(lines) > 0 {
				for _, line := range lines {
					w.Write(line)
					w.Write([]byte("\n"))
				}
				if flusher != nil {
					flusher.Flush()
				}
				continue
			}
			if done {
				return
			}
			select {
			case <-wait:
			case <-r.Context().Done():
				return
			}
		}
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestRunCampaignAgainstBackend(t *testing.T) {
	srv := newCampaignBackend(t)
	var out bytes.Buffer
	if err := runCampaign(&out, srv.URL, "K8/pc", 4, 2, 2); err != nil {
		t.Fatalf("runCampaign: %v\noutput:\n%s", err, out.String())
	}
	report := out.String()
	for _, want := range []string{
		"campaigns:   4 (0 failed, 0 ended early)",
		"programs:    8 swept, 0 findings",
		"determinism: 2 distinct configs, all paired streams identical",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	for _, banned := range []string{"DETERMINISM VIOLATION", "MODEL REFUTED"} {
		if strings.Contains(report, banned) {
			t.Errorf("report contains %q:\n%s", banned, report)
		}
	}
}

func TestRunCampaignRoundsToPairs(t *testing.T) {
	srv := newCampaignBackend(t)
	var out bytes.Buffer
	if err := runCampaign(&out, srv.URL, "K8/pc", 3, 2, 2); err != nil {
		t.Fatalf("runCampaign: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "campaigns:   4 ") {
		t.Errorf("odd -campaigns not rounded up to pairs:\n%s", out.String())
	}
}

func TestRunCampaignRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := runCampaign(&out, "http://x", "K8/pc", 4, 2, 0); err == nil {
		t.Error("-c 0 accepted; would hang forever")
	}
	if err := runCampaign(&out, "http://x", "K8/pc", 0, 2, 2); err == nil {
		t.Error("-campaigns 0 accepted")
	}
	if err := runCampaign(&out, "http://x", "K8/pc", 4, 0, 2); err == nil {
		t.Error("-programs 0 accepted")
	}
	if err := runCampaign(&out, "http://x", "garbage", 4, 2, 2); err == nil {
		t.Error("bad mix accepted")
	}
}
