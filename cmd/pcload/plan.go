package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
)

// planItem is one /plan request to fire, tagged with its configuration
// key for the determinism cross-check.
type planItem struct {
	key string
	req api.PlanRequest
}

// planOutcome records one completed /plan call and the two assertions
// the workload makes about it: the fused interval of every event must
// be at most the naive one, and the plan must attain its target.
type planOutcome struct {
	key       string
	latency   time.Duration
	status    int
	err       error
	body      string // request=>response for the determinism cross-check
	attained  bool
	widened   int // events whose fused interval exceeded the naive one
	narrowing float64
	events    int
	rounds    int
	totalRuns int
}

// buildPlanPlans expands the mix into n plan requests cycling a set of
// accuracy-targeted variants. Every variant uses events whose counts
// are either large (so the relative target is attainable within the
// budget) or exactly zero (attained trivially), keeping the attainment
// assertion sound under load.
func buildPlanPlans(mixSpec string, n int) ([]planItem, error) {
	type variant struct {
		bench    string
		events   []string
		counters int
	}
	variants := []variant{
		// Multiplexed: 3 events on 2 counters, anchor-pinned groups.
		{"array:1000000", []string{"INSTR_RETIRED", "CPU_CLK_UNHALTED", "DCACHE_MISS"}, 2},
		// Dedicated: fits the hardware, exercises calibration reuse.
		{"loop:2000000", []string{"INSTR_RETIRED", "CPU_CLK_UNHALTED"}, 0},
		// Multiplexed, wider set: 4 events on 2 counters.
		{"array:2000000", []string{"INSTR_RETIRED", "CPU_CLK_UNHALTED", "DCACHE_MISS", "BR_MISP_RETIRED"}, 2},
	}
	configs, err := parseMix(mixSpec)
	if err != nil {
		return nil, err
	}
	plan := make([]planItem, 0, n)
	for i := 0; i < n; i++ {
		// i/2: every request is issued twice, so identical pairs exercise
		// the determinism cross-check (and in-flight coalescing) exactly
		// like pcload's other workloads.
		v := variants[(i/2)%len(variants)]
		cfg := configs[(i/(2*len(variants)))%len(configs)]
		req := api.PlanRequest{
			Measure: api.MeasureRequest{
				Processor: cfg.Processor, Stack: cfg.Stack,
				Bench:  v.bench,
				Events: v.events,
			},
			TargetRelWidth: 0.1,
			Counters:       v.counters,
			PilotRuns:      2,
			MaxRuns:        16,
		}
		plan = append(plan, planItem{key: cfg.Processor + "/" + cfg.Stack, req: req})
	}
	return plan, nil
}

// runPlan drives the /plan workload: n requests (issued as identical
// pairs) across c workers, then asserts determinism, fused-interval
// narrowing, and CI-target attainment.
func runPlan(w io.Writer, addr, mixSpec string, n, c int) error {
	if c <= 0 {
		return fmt.Errorf("-c must be positive (got %d)", c)
	}
	if n < 0 {
		return fmt.Errorf("-plans must be non-negative (got %d)", n)
	}
	plan, err := buildPlanPlans(mixSpec, n)
	if err != nil {
		return err
	}

	work := make(chan planItem)
	results := make(chan planOutcome, len(plan))
	client := &http.Client{Timeout: 120 * time.Second}

	var wg sync.WaitGroup
	for i := 0; i < c; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for item := range work {
				results <- firePlan(client, addr, item)
			}
		}()
	}
	start := time.Now()
	for _, item := range plan {
		work <- item
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)
	close(results)

	return reportPlan(w, results, elapsed)
}

// firePlan sends one /plan request and evaluates its assertions.
func firePlan(client *http.Client, addr string, item planItem) planOutcome {
	body, err := json.Marshal(item.req)
	if err != nil {
		return planOutcome{key: item.key, err: err}
	}
	start := time.Now()
	resp, err := client.Post(addr+"/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		return planOutcome{key: item.key, err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	out := planOutcome{
		key:     item.key,
		latency: time.Since(start),
		status:  resp.StatusCode,
		err:     err,
	}
	if err != nil || resp.StatusCode != http.StatusOK {
		return out
	}
	out.body = string(body) + "=>" + string(data)
	var pr api.PlanResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		out.err = err
		return out
	}
	out.attained = pr.Attained
	out.rounds = pr.Rounds
	out.totalRuns = pr.TotalRuns
	for _, est := range pr.Estimates {
		naiveHalf := (est.Naive.Hi - est.Naive.Lo) / 2
		fusedHalf := (est.Fused.Hi - est.Fused.Lo) / 2
		if fusedHalf > naiveHalf*(1+1e-9) {
			out.widened++
		}
		out.narrowing += est.Narrowing
		out.events++
	}
	return out
}

// reportPlan prints throughput, latency, attainment, and the
// determinism cross-check, failing on any violated assertion.
func reportPlan(w io.Writer, results <-chan planOutcome, elapsed time.Duration) error {
	var (
		all                []time.Duration
		failures, total    int
		attained, missed   int
		widened, events    int
		narrowingSum       float64
		runsSum, roundsMax int
		byRequest          = make(map[string]string)
		divergent          int
	)
	for res := range results {
		total++
		if res.err != nil || res.status != http.StatusOK {
			failures++
			continue
		}
		all = append(all, res.latency)
		if res.attained {
			attained++
		} else {
			missed++
		}
		widened += res.widened
		events += res.events
		narrowingSum += res.narrowing
		runsSum += res.totalRuns
		roundsMax = max(roundsMax, res.rounds)
		reqBody, respBody, _ := strings.Cut(res.body, "=>")
		if prev, ok := byRequest[reqBody]; ok && prev != respBody {
			divergent++
		} else {
			byRequest[reqBody] = respBody
		}
	}

	fmt.Fprintf(w, "plans:       %d (%d failed)\n", total, failures)
	fmt.Fprintf(w, "elapsed:     %v\n", elapsed.Round(time.Millisecond))
	if len(all) > 0 && elapsed > 0 {
		fmt.Fprintf(w, "throughput:  %.1f plans/s\n", float64(len(all))/elapsed.Seconds())
	}
	fmt.Fprintf(w, "latency:     %s\n", summarizeLatency(all))
	ok := total - failures
	if ok > 0 {
		fmt.Fprintf(w, "attained:    %d/%d plans met their CI target (max rounds %d, %.1f runs/plan)\n",
			attained, ok, roundsMax, float64(runsSum)/float64(ok))
	}
	if events > 0 {
		fmt.Fprintf(w, "narrowing:   %.1f%% mean fused-vs-naive interval reduction\n", 100*narrowingSum/float64(events))
	}
	if divergent > 0 {
		fmt.Fprintf(w, "DETERMINISM VIOLATION: %d identical plans got different bodies\n", divergent)
		return fmt.Errorf("%d divergent plan responses", divergent)
	}
	fmt.Fprintf(w, "determinism: %d distinct plans, all responses consistent\n", len(byRequest))
	if widened > 0 {
		return fmt.Errorf("%d events reported a fused interval wider than the naive one", widened)
	}
	if missed > 0 {
		return fmt.Errorf("%d plans missed an attainable CI target", missed)
	}
	if failures > 0 {
		return fmt.Errorf("%d plans failed", failures)
	}
	return nil
}
