package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/monitor"
	"repro/internal/server"
)

// newClusterFleet spins n real pcserved nodes and a pcfront over them,
// returning the front URL, the direct URL of node 0, and the backend
// servers (for mid-run kills).
func newClusterFleet(t *testing.T, n int) (front, direct string, backends []*httptest.Server) {
	t.Helper()
	urls := make([]string, n)
	backends = make([]*httptest.Server, n)
	for i := range backends {
		node := server.New(server.Config{
			Workers:         2,
			CalibrationRuns: 5,
			Monitor:         monitor.Config{SweepInterval: -1},
			Campaign:        campaign.Config{SweepInterval: -1},
		})
		t.Cleanup(node.Close)
		backends[i] = httptest.NewServer(node.Handler())
		t.Cleanup(backends[i].Close)
		urls[i] = backends[i].URL
	}
	f, err := cluster.NewFront(cluster.Config{
		Backends:      urls,
		ProbeInterval: -1,
		HedgeAfter:    -1,
		FailAfter:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	fsrv := httptest.NewServer(f.Handler())
	t.Cleanup(fsrv.Close)
	return fsrv.URL, urls[0], backends
}

// TestRunCluster drives the -cluster workload against a real 3-node
// fleet: zero failures, every body byte-identical to the direct node.
func TestRunCluster(t *testing.T) {
	front, direct, _ := newClusterFleet(t, 3)
	var buf bytes.Buffer
	if err := runCluster(&buf, front, direct, "K8/pc,CD/pc", 16, 4, 2); err != nil {
		t.Fatalf("runCluster: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"(0 failed)",
		"byte-identity:",
		"fleet:",
		"encode share:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestRunClusterSurvivesNodeKill kills one backend before the run: the
// front must fail over with zero failed requests and the bodies must
// still match the direct node byte for byte.
func TestRunClusterSurvivesNodeKill(t *testing.T) {
	front, direct, backends := newClusterFleet(t, 3)
	backends[1].Close() // not the direct node — the oracle must survive
	var buf bytes.Buffer
	if err := runCluster(&buf, front, direct, "K8/pc", 12, 4, 2); err != nil {
		t.Fatalf("runCluster with a dead node: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "(0 failed)") {
		t.Errorf("expected zero failures after node kill:\n%s", buf.String())
	}
}

// TestRunClusterValidation: the mode needs its oracle.
func TestRunClusterValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := runCluster(&buf, "http://x", "", "K8/pc", 4, 2, 2); err == nil {
		t.Fatal("runCluster without -direct succeeded")
	}
	if err := runCluster(&buf, "http://x", "http://y", "K8/pc", 4, 0, 2); err == nil {
		t.Fatal("runCluster with zero workers succeeded")
	}
}

// TestPromHistogramP99 checks the bucket interpolation against a
// hand-built exposition.
func TestPromHistogramP99(t *testing.T) {
	text := []byte(strings.Join([]string{
		`fam_bucket{stage="encode",le="0.001"} 90`,
		`fam_bucket{stage="encode",le="0.01"} 100`,
		`fam_bucket{stage="encode",le="+Inf"} 100`,
		`fam_bucket{stage="other",le="+Inf"} 5`,
	}, "\n"))
	p99, ok := promHistogramP99(text, "fam_bucket", `stage="encode"`)
	if !ok {
		t.Fatal("no histogram found")
	}
	// target = 99 of 100; bucket (0.001, 0.01] holds counts 90..100, so
	// p99 interpolates 90% into it.
	want := 0.001 + 0.9*(0.01-0.001)
	if p99 < want-1e-9 || p99 > want+1e-9 {
		t.Fatalf("p99 = %v, want %v", p99, want)
	}
	if _, ok := promHistogramP99(text, "fam_bucket", `stage="missing"`); ok {
		t.Fatal("matched a label set that does not exist")
	}
}
