package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/service"
)

// newInferBackend serves /infer from a real service, mirroring
// pcserved.
func newInferBackend(t *testing.T) *httptest.Server {
	t.Helper()
	svc := service.New(service.Config{WorkersPerShard: 2, CalibrationRuns: 5})
	mux := http.NewServeMux()
	mux.HandleFunc("POST /infer", func(w http.ResponseWriter, r *http.Request) {
		var req api.InferRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := svc.Infer(r.Context(), req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestBuildInferItems(t *testing.T) {
	items, err := buildInferItems("K8/pc,CD/pc", 18)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 18 {
		t.Fatalf("items = %d, want 18", len(items))
	}
	// Identical pairs for the determinism cross-check.
	for i := 0; i+1 < len(items); i += 2 {
		a, _ := json.Marshal(items[i].req)
		b, _ := json.Marshal(items[i+1].req)
		if string(a) != string(b) {
			t.Errorf("pair %d not identical:\n%s\nvs\n%s", i/2, a, b)
		}
	}
	// All three variants rotate in, including the planted inconsistency.
	var measured, raw, inconsistent int
	for _, item := range items {
		switch {
		case item.inconsistent:
			inconsistent++
		case item.req.Items[0].Inputs[0].Measure != nil:
			measured++
		default:
			raw++
		}
	}
	if measured == 0 || raw == 0 || inconsistent == 0 {
		t.Errorf("variant rotation incomplete: measured=%d raw=%d inconsistent=%d",
			measured, raw, inconsistent)
	}

	if _, err := buildInferItems("garbage", 4); err == nil {
		t.Error("bad mix accepted")
	}
}

func TestRunInferAgainstBackend(t *testing.T) {
	srv := newInferBackend(t)
	var out bytes.Buffer
	if err := runInfer(&out, srv.URL, "K8/pc", 18, 4); err != nil {
		t.Fatalf("runInfer: %v\noutput:\n%s", err, out.String())
	}
	report := out.String()
	for _, want := range []string{"infers:      18 (0 failed)", "tightening:", "residuals:", "determinism:"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	if strings.Contains(report, "DETERMINISM VIOLATION") {
		t.Errorf("determinism violation reported:\n%s", report)
	}
}

func TestRunInferRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := runInfer(&out, "http://x", "K8/pc", 4, 0); err == nil {
		t.Error("-c 0 accepted; would hang forever")
	}
	if err := runInfer(&out, "http://x", "K8/pc", -1, 2); err == nil {
		t.Error("negative -infers accepted")
	}
	if err := runInfer(&out, "http://x", "garbage", 4, 2); err == nil {
		t.Error("bad mix accepted")
	}
}
