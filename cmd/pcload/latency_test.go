package main

import (
	"testing"
	"time"
)

func TestLatencySummaryEmpty(t *testing.T) {
	s := summarizeLatency(nil)
	if s.N() != 0 {
		t.Errorf("N = %d, want 0", s.N())
	}
	if got := s.Percentile(0.5); got != 0 {
		t.Errorf("p50 of empty = %v, want 0", got)
	}
	if got := s.Max(); got != 0 {
		t.Errorf("max of empty = %v, want 0", got)
	}
	if got := s.String(); got != "n/a" {
		t.Errorf("String of empty = %q, want n/a", got)
	}
}

func TestLatencySummarySingleSample(t *testing.T) {
	s := summarizeLatency([]time.Duration{42 * time.Millisecond})
	for _, p := range []float64{0, 0.5, 0.9, 0.99, 1} {
		if got := s.Percentile(p); got != 42*time.Millisecond {
			t.Errorf("p%.0f = %v, want 42ms", p*100, got)
		}
	}
	if s.Max() != 42*time.Millisecond {
		t.Errorf("max = %v, want 42ms", s.Max())
	}
}

func TestLatencySummaryPercentiles(t *testing.T) {
	// 1..100 ms shuffled: nearest-rank percentiles are exact.
	var d []time.Duration
	for i := 100; i >= 1; i-- {
		d = append(d, time.Duration(i)*time.Millisecond)
	}
	orig := append([]time.Duration(nil), d...)
	s := summarizeLatency(d)
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{0, 1 * time.Millisecond},
		{0.50, 50 * time.Millisecond},
		{0.90, 90 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
		{1, 100 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := s.Percentile(tc.p); got != tc.want {
			t.Errorf("p%g = %v, want %v", tc.p*100, got, tc.want)
		}
	}
	// The input slice is untouched.
	for i := range d {
		if d[i] != orig[i] {
			t.Fatalf("summarizeLatency mutated its input at %d", i)
		}
	}
	// Out-of-range p clamps instead of panicking.
	if got := s.Percentile(-1); got != 1*time.Millisecond {
		t.Errorf("p<0 = %v, want min", got)
	}
	if got := s.Percentile(2); got != 100*time.Millisecond {
		t.Errorf("p>1 = %v, want max", got)
	}
}
