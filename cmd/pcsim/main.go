// Command pcsim runs a micro-benchmark on a simulated measurement
// system and reports the measured counts, the analytical ground truth,
// and the measurement error — an interactive window into the apparatus
// behind the paper's experiments.
//
// Usage:
//
//	pcsim -cpu K8 -stack pc -bench loop:100000 -pattern rr -mode user -runs 5
//	pcsim -cpu CD -stack PHpm -bench null -pattern ar -mode user+kernel
//	pcsim -cpu PD -stack pc -notsc -bench loop:1000 -pattern rr
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
	"repro/internal/api"
)

func main() {
	var (
		cpuTag    = flag.String("cpu", "K8", "processor: PD, CD, or K8")
		stackID   = flag.String("stack", "pc", "stack: pm, pc, PLpm, PLpc, PHpm, PHpc")
		benchSpec = flag.String("bench", "loop:100000", "benchmark: null, loop:N, or array:N")
		patCode   = flag.String("pattern", "ar", "pattern: ar, ao, rr, ro")
		modeStr   = flag.String("mode", "user", "mode: user, user+kernel, kernel")
		optLvl    = flag.Int("O", 2, "gcc optimization level 0-3")
		runs      = flag.Int("runs", 5, "number of measurement runs")
		notsc     = flag.Bool("notsc", false, "disable the perfctr TSC (forces syscall reads)")
		cycles    = flag.Bool("cycles", false, "count cycles instead of instructions")
		seed      = flag.Uint64("seed", 1, "base seed")
	)
	flag.Parse()

	if err := run(os.Stdout, *cpuTag, *stackID, *benchSpec, *patCode, *modeStr, *optLvl, *runs, *notsc, *cycles, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "pcsim:", err)
		os.Exit(1)
	}
}

// run performs the measurements and writes the report to w; routing
// all output through the writer keeps the command testable and its
// report reusable from other front ends.
func run(w io.Writer, cpuTag, stackID, benchSpec, patCode, modeStr string, optLvl, runs int, notsc, cycles bool, seed uint64) error {
	bench, err := parseBench(benchSpec)
	if err != nil {
		return err
	}
	pattern, err := parsePattern(patCode)
	if err != nil {
		return err
	}
	mode, err := parseMode(modeStr)
	if err != nil {
		return err
	}
	if optLvl < 0 || optLvl > 3 {
		return fmt.Errorf("optimization level %d out of range 0-3", optLvl)
	}

	sys, err := repro.NewSystem(repro.Processor(cpuTag), stackID, repro.WithTSC(!notsc))
	if err != nil {
		return err
	}

	ev := repro.EventInstructions
	if cycles {
		ev = repro.EventCycles
	}

	fmt.Fprintf(w, "system:    %s on %s (TSC %v)\n", stackID, cpuTag, !notsc)
	fmt.Fprintf(w, "benchmark: %s  pattern: %s  mode: %s  -O%d\n\n", bench, pattern, mode, optLvl)
	fmt.Fprintf(w, "%4s  %12s  %12s  %10s  %6s\n", "run", "measured", "expected", "error", "ticks")
	for i := 0; i < runs; i++ {
		m, err := sys.Measure(repro.Request{
			Bench:   bench,
			Pattern: pattern,
			Mode:    mode,
			Events:  []repro.Event{ev},
			Opt:     repro.OptLevel(optLvl),
			Seed:    seed + uint64(i),
		})
		if err != nil {
			return err
		}
		expected := m.Expected
		errv := m.Deltas[0] - expected
		if cycles {
			fmt.Fprintf(w, "%4d  %12d  %12s  %10s  %6d\n", i, m.Deltas[0], "n/a", "n/a", m.TimerTicks)
			continue
		}
		if mode == repro.ModeKernel {
			expected = 0
			errv = m.Deltas[0]
		}
		fmt.Fprintf(w, "%4d  %12d  %12d  %+10d  %6d\n", i, m.Deltas[0], expected, errv, m.TimerTicks)
	}
	return nil
}

// The benchmark, pattern, and mode vocabularies are shared with the
// measurement service's wire format (internal/api), so pcsim specs work
// verbatim in pcserved requests.

func parseBench(spec string) (*repro.Benchmark, error) {
	return api.ParseBench(spec)
}

func parsePattern(code string) (repro.Pattern, error) {
	return api.ParsePattern(code)
}

func parseMode(s string) (repro.MeasureMode, error) {
	return api.ParseMode(s)
}
