// Command pcsim runs a micro-benchmark on a simulated measurement
// system and reports the measured counts, the analytical ground truth,
// and the measurement error — an interactive window into the apparatus
// behind the paper's experiments.
//
// Usage:
//
//	pcsim -cpu K8 -stack pc -bench loop:100000 -pattern rr -mode user -runs 5
//	pcsim -cpu CD -stack PHpm -bench null -pattern ar -mode user+kernel
//	pcsim -cpu PD -stack pc -notsc -bench loop:1000 -pattern rr
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
)

func main() {
	var (
		cpuTag    = flag.String("cpu", "K8", "processor: PD, CD, or K8")
		stackID   = flag.String("stack", "pc", "stack: pm, pc, PLpm, PLpc, PHpm, PHpc")
		benchSpec = flag.String("bench", "loop:100000", "benchmark: null, loop:N, or array:N")
		patCode   = flag.String("pattern", "ar", "pattern: ar, ao, rr, ro")
		modeStr   = flag.String("mode", "user", "mode: user, user+kernel, kernel")
		optLvl    = flag.Int("O", 2, "gcc optimization level 0-3")
		runs      = flag.Int("runs", 5, "number of measurement runs")
		notsc     = flag.Bool("notsc", false, "disable the perfctr TSC (forces syscall reads)")
		cycles    = flag.Bool("cycles", false, "count cycles instead of instructions")
		seed      = flag.Uint64("seed", 1, "base seed")
	)
	flag.Parse()

	if err := run(*cpuTag, *stackID, *benchSpec, *patCode, *modeStr, *optLvl, *runs, *notsc, *cycles, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "pcsim:", err)
		os.Exit(1)
	}
}

func run(cpuTag, stackID, benchSpec, patCode, modeStr string, optLvl, runs int, notsc, cycles bool, seed uint64) error {
	bench, err := parseBench(benchSpec)
	if err != nil {
		return err
	}
	pattern, err := parsePattern(patCode)
	if err != nil {
		return err
	}
	mode, err := parseMode(modeStr)
	if err != nil {
		return err
	}
	if optLvl < 0 || optLvl > 3 {
		return fmt.Errorf("optimization level %d out of range 0-3", optLvl)
	}

	sys, err := repro.NewSystem(repro.Processor(cpuTag), stackID, repro.WithTSC(!notsc))
	if err != nil {
		return err
	}

	ev := repro.EventInstructions
	if cycles {
		ev = repro.EventCycles
	}

	fmt.Printf("system:    %s on %s (TSC %v)\n", stackID, cpuTag, !notsc)
	fmt.Printf("benchmark: %s  pattern: %s  mode: %s  -O%d\n\n", bench, pattern, mode, optLvl)
	fmt.Printf("%4s  %12s  %12s  %10s  %6s\n", "run", "measured", "expected", "error", "ticks")
	for i := 0; i < runs; i++ {
		m, err := sys.Measure(repro.Request{
			Bench:   bench,
			Pattern: pattern,
			Mode:    mode,
			Events:  []repro.Event{ev},
			Opt:     repro.OptLevel(optLvl),
			Seed:    seed + uint64(i),
		})
		if err != nil {
			return err
		}
		expected := m.Expected
		errv := m.Deltas[0] - expected
		if cycles {
			fmt.Printf("%4d  %12d  %12s  %10s  %6d\n", i, m.Deltas[0], "n/a", "n/a", m.TimerTicks)
			continue
		}
		if mode == repro.ModeKernel {
			expected = 0
			errv = m.Deltas[0]
		}
		fmt.Printf("%4d  %12d  %12d  %+10d  %6d\n", i, m.Deltas[0], expected, errv, m.TimerTicks)
	}
	return nil
}

func parseBench(spec string) (*repro.Benchmark, error) {
	name, arg, _ := strings.Cut(spec, ":")
	switch name {
	case "null":
		return repro.NullBenchmark(), nil
	case "loop", "array":
		n, err := strconv.ParseInt(arg, 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad benchmark size %q", arg)
		}
		if name == "loop" {
			return repro.LoopBenchmark(n), nil
		}
		return repro.ArrayBenchmark(n), nil
	}
	return nil, fmt.Errorf("unknown benchmark %q (want null, loop:N, array:N)", spec)
}

func parsePattern(code string) (repro.Pattern, error) {
	for _, p := range []repro.Pattern{repro.StartRead, repro.StartStop, repro.ReadRead, repro.ReadStop} {
		if p.Code() == code {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown pattern %q (want ar, ao, rr, ro)", code)
}

func parseMode(s string) (repro.MeasureMode, error) {
	switch s {
	case "user":
		return repro.ModeUser, nil
	case "user+kernel", "uk":
		return repro.ModeUserKernel, nil
	case "kernel", "os":
		return repro.ModeKernel, nil
	}
	return 0, fmt.Errorf("unknown mode %q", s)
}
