package main

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro"
)

func TestParseBench(t *testing.T) {
	b, err := parseBench("null")
	if err != nil || b.ExpectedInstr != 0 {
		t.Errorf("null: %v, %v", b, err)
	}
	b, err = parseBench("loop:1000")
	if err != nil || b.ExpectedInstr != 3001 {
		t.Errorf("loop: %v, %v", b, err)
	}
	b, err = parseBench("array:10")
	if err != nil || b.ExpectedInstr != 41 {
		t.Errorf("array: %v, %v", b, err)
	}
	for _, bad := range []string{"loop:x", "loop:-5", "loop", "wat:3", ""} {
		if _, err := parseBench(bad); err == nil {
			t.Errorf("parseBench(%q) accepted", bad)
		}
	}
}

func TestParsePattern(t *testing.T) {
	for code, want := range map[string]repro.Pattern{
		"ar": repro.StartRead, "ao": repro.StartStop,
		"rr": repro.ReadRead, "ro": repro.ReadStop,
	} {
		got, err := parsePattern(code)
		if err != nil || got != want {
			t.Errorf("parsePattern(%q) = %v, %v", code, got, err)
		}
	}
	if _, err := parsePattern("xx"); err == nil {
		t.Error("bad pattern accepted")
	}
}

func TestParseMode(t *testing.T) {
	for s, want := range map[string]repro.MeasureMode{
		"user": repro.ModeUser, "user+kernel": repro.ModeUserKernel,
		"uk": repro.ModeUserKernel, "kernel": repro.ModeKernel, "os": repro.ModeKernel,
	} {
		got, err := parseMode(s)
		if err != nil || got != want {
			t.Errorf("parseMode(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := parseMode("supervisor"); err == nil {
		t.Error("bad mode accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "K8", "pc", "loop:1000", "rr", "user", 2, 2, false, false, 1); err != nil {
		t.Errorf("run failed: %v", err)
	}
	report := out.String()
	for _, want := range []string{"system:", "benchmark:", "measured", "3001"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	if err := run(io.Discard, "CD", "PHpm", "null", "ar", "user+kernel", 0, 1, false, false, 1); err != nil {
		t.Errorf("run failed: %v", err)
	}
	if err := run(io.Discard, "PD", "pc", "loop:1000", "rr", "user", 2, 1, false, true, 1); err != nil {
		t.Errorf("cycles run failed: %v", err)
	}
	if err := run(io.Discard, "K8", "pc", "null", "ar", "kernel", 1, 1, true, false, 1); err != nil {
		t.Errorf("kernel-mode run failed: %v", err)
	}
	// Error paths.
	if err := run(io.Discard, "K8", "pc", "loop:1000", "rr", "user", 9, 1, false, false, 1); err == nil {
		t.Error("bad opt level accepted")
	}
	if err := run(io.Discard, "ZZ", "pc", "loop:1000", "rr", "user", 2, 1, false, false, 1); err == nil {
		t.Error("bad cpu accepted")
	}
	// PAPI high level cannot express read-read.
	if err := run(io.Discard, "K8", "PHpc", "loop:10", "rr", "user", 2, 1, false, false, 1); err == nil {
		t.Error("rr on PHpc should fail")
	}
}

// TestRunDeterministicOutput pins the writer-routed report: identical
// invocations produce byte-identical reports.
func TestRunDeterministicOutput(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(&a, "K8", "pc", "loop:1000", "rr", "user", 2, 3, false, false, 7); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, "K8", "pc", "loop:1000", "rr", "user", 2, 3, false, false, 7); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("reports differ:\n%s\n%s", a.String(), b.String())
	}
}
