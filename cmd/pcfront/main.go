// Command pcfront is the cluster coordinator: a proxy that
// consistent-hashes canonical request keys (api.RequestKey — the exact
// identity internal/service coalesces on) across a fleet of pcserved
// backends. Identical requests land on the same node, so cluster-wide
// request coalescing and calibration-cache affinity fall out of
// routing; and because every node answers a normalized request with a
// byte-identical body, any node is a correct fallback for retries and
// tail-latency hedging.
//
// Endpoints (the pcserved surface, proxied):
//
//	POST   /measure /analyze /plan /infer /experiment
//	                               keyed: ring-routed, retried, hedged
//	POST   /sessions /campaigns    keyed, never hedged (stateful create)
//	GET    /sessions/{id}[/stream], DELETE /sessions/{id}
//	GET    /campaigns/{id}[/stream], DELETE /campaigns/{id}
//	                               pinned to the owning node; streams
//	                               pass through NDJSON with per-chunk
//	                               flush
//
// plus the proxy's own:
//
//	GET  /healthz                  -> api.ClusterHealthResponse (503 when
//	                                  no backend can serve)
//	GET  /cluster                  -> same body, 200 always useful for
//	                                  fleet inspection
//	POST /cluster/drain/{node}     mark a node draining; ?wait=30s blocks
//	                                  until its in-flight work ends
//	POST /cluster/undrain/{node}   return it to the ring
//	GET  /metrics                  -> pcfront_* Prometheus exposition
//	GET  /cluster/healthz          -> api.ClusterStatusResponse: the
//	                                  front's routing view joined with
//	                                  every node's own /healthz report
//	GET  /cluster/metrics          -> federated exposition: pcfront's own
//	                                  families plus every healthy
//	                                  backend's /metrics merged (counters
//	                                  summed fleet-wide, gauges per node
//	                                  under a backend label)
//
// Responses report the routing decision in X-Pcfront-* headers only;
// bodies are byte-identical to a direct single-node answer. The one
// exception is opt-in: a request with "trace": true gets its trace
// block rewritten into the stitched cluster tree — the front's route,
// forward, retry, and hedge spans with the backend's own trace nested
// verbatim underneath — and the same tree echoed in the
// X-Pc-Trace-Spans response header (the only trace channel on error
// bodies, which are never rewritten). See docs/CLUSTER.md and
// docs/OBSERVABILITY.md.
//
// Usage:
//
//	pcfront -addr :7080 -backends http://127.0.0.1:7090,http://127.0.0.1:7091,http://127.0.0.1:7092
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":7080", "listen address")
		backends    = flag.String("backends", "", "comma-separated pcserved base URLs (required)")
		vnodes      = flag.Int("vnodes", 64, "ring points per backend")
		probe       = flag.Duration("probe", time.Second, "liveness-probe interval (negative disables)")
		hedgeafter  = flag.Duration("hedgeafter", 50*time.Millisecond, "hedge a silent primary after this long (negative disables)")
		retrybudget = flag.Float64("retrybudget", 64, "token budget shared by 5xx retries and hedges")
		retryrate   = flag.Float64("retryrate", 0.2, "budget tokens credited per request")
		name        = flag.String("name", "pcfront", "instance name reported in the forwarded-hop header")
	)
	flag.Parse()
	if *backends == "" {
		log.Fatal("pcfront: -backends is required")
	}

	front, err := cluster.NewFront(cluster.Config{
		Backends:      strings.Split(*backends, ","),
		VNodes:        *vnodes,
		ProbeInterval: *probe,
		HedgeAfter:    *hedgeafter,
		RetryBudget:   *retrybudget,
		RetryRate:     *retryrate,
		Name:          *name,
	})
	if err != nil {
		log.Fatalf("pcfront: %v", err)
	}
	readHeader, read, idle := server.Timeouts()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           front.Handler(),
		ReadHeaderTimeout: readHeader,
		ReadTimeout:       read,
		IdleTimeout:       idle,
		// WriteTimeout stays 0 for the same reason as pcserved's: stream
		// pass-throughs hold their response open for the stream's whole
		// lifetime.
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
		front.Close()
	}()

	log.Printf("pcfront: listening on %s, fronting %s", *addr, *backends)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("pcfront: %v", err)
	}
	stop()
	<-drained
	log.Printf("pcfront: drained, exiting")
}
