package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestRunReportsWholeProcessError(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "K8", "loop:1000", 1); err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, want := range []string{
		"whole-process measurement on K8",
		"ground truth):  3001",
		"process startup/teardown",
		"relative error:",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	for _, c := range []struct{ cpu, bench string }{
		{"K8", "loop:x"},
		{"K8", "wat:5"},
		{"K8", "loop"},
		{"ZZ", "loop:10"},
	} {
		if err := run(io.Discard, c.cpu, c.bench, 1); err == nil {
			t.Errorf("run(%q, %q) accepted", c.cpu, c.bench)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(&a, "CD", "array:500", 3); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, "CD", "array:500", 3); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("reports differ:\n%s\n%s", a.String(), b.String())
	}
}
