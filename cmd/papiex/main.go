// Command papiex emulates the standalone whole-process measurement
// tools discussed in the paper's Section 9 (perfex, pfmon, papiex):
// it "launches" a benchmark as a separate process with counters running
// from before exec to after exit, so loader and teardown instructions
// land inside the measurement — producing the enormous relative errors
// (over 60000% for small benchmarks) that make such tools unusable for
// fine-grained measurement.
//
// Usage:
//
//	papiex -cpu K8 -bench loop:1000
//	papiex -cpu PD -bench loop:100000000   # long benchmarks amortize it
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro"
)

func main() {
	var (
		cpuTag    = flag.String("cpu", "K8", "processor: PD, CD, or K8")
		benchSpec = flag.String("bench", "loop:1000", "benchmark: loop:N or array:N")
		seed      = flag.Uint64("seed", 1, "seed")
	)
	flag.Parse()
	if err := run(os.Stdout, *cpuTag, *benchSpec, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "papiex:", err)
		os.Exit(1)
	}
}

// run performs the whole-process measurement and writes the report to
// w, so tests can assert on the exact output.
func run(w io.Writer, cpuTag, benchSpec string, seed uint64) error {
	name, arg, _ := strings.Cut(benchSpec, ":")
	n, err := strconv.ParseInt(arg, 10, 64)
	if err != nil || n < 0 {
		return fmt.Errorf("bad benchmark %q", benchSpec)
	}
	var bench *repro.Benchmark
	switch name {
	case "loop":
		bench = repro.LoopBenchmark(n)
	case "array":
		bench = repro.ArrayBenchmark(n)
	default:
		return fmt.Errorf("unknown benchmark %q", benchSpec)
	}

	sys, err := repro.NewSystem(repro.Processor(cpuTag), repro.StackPC)
	if err != nil {
		return err
	}
	m, err := sys.Measure(repro.Request{
		Bench:   bench,
		Pattern: repro.StartRead,
		Mode:    repro.ModeUserKernel,
		Seed:    seed,
	})
	if err != nil {
		return err
	}
	startup := sys.ProcessStartupCost()
	measured := m.Deltas[0] + startup
	errPct := 100 * float64(measured-bench.ExpectedInstr) / float64(bench.ExpectedInstr)

	fmt.Fprintf(w, "papiex-style whole-process measurement on %s\n\n", cpuTag)
	fmt.Fprintf(w, "benchmark instructions (ground truth):  %d\n", bench.ExpectedInstr)
	fmt.Fprintf(w, "process startup/teardown included:      %d\n", startup)
	fmt.Fprintf(w, "reported count:                         %d\n", measured)
	fmt.Fprintf(w, "relative error:                         %.1f%%\n\n", errPct)
	fmt.Fprintln(w, "For fine-grained measurements, instrument the code region")
	fmt.Fprintln(w, "directly (see cmd/pcsim) instead of measuring whole processes.")
	return nil
}
