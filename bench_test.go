// Benchmarks regenerating every table and figure of the paper. Each
// BenchmarkTableN/BenchmarkFigN target runs the corresponding
// experiment from internal/experiments and reports the headline numbers
// as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. The Ablation benchmarks exercise
// the design choices called out in DESIGN.md Section 7.
package repro_test

import (
	"fmt"
	"io"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/stack"
	"repro/internal/stats"
)

// benchConfig scales experiments so each bench iteration stays in the
// seconds range; the full published scale is available through
// cmd/pcaccuracy -runs 72.
var benchConfig = experiments.Config{Runs: 8, Seed: 2008}

// runExperiment executes one experiment per bench iteration and returns
// the last result for metric extraction.
func runExperiment(b *testing.B, id string, cfg experiments.Config) experiments.Result {
	b.Helper()
	var res experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

func BenchmarkTable1(b *testing.B) {
	res := runExperiment(b, "table1", benchConfig)
	if err := res.Render(io.Discard); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkTable2(b *testing.B) {
	res := runExperiment(b, "table2", benchConfig)
	if err := res.Render(io.Discard); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkFig1(b *testing.B) {
	cfg := benchConfig
	cfg.Runs = 2 // the full factorial is large; 2 runs/cell ~ 5760 measurements
	res := runExperiment(b, "fig1", cfg).(*experiments.Fig1Result)
	sum, err := stats.Summarize(stats.Float64s(res.User))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(sum.IQR(), "user-IQR-instr")
	b.ReportMetric(float64(res.Measurements), "measurements")
}

func BenchmarkFig4(b *testing.B) {
	res := runExperiment(b, "fig4", benchConfig).(*experiments.Fig4Result)
	b.ReportMetric(res.MedianRROn, "rr-tsc-on-median")
	b.ReportMetric(res.MedianRROff, "rr-tsc-off-median")
}

func BenchmarkFig5(b *testing.B) {
	res := runExperiment(b, "fig5", benchConfig).(*experiments.Fig5Result)
	b.ReportMetric(res.PerRegisterRR["pm"], "pm-instr-per-reg")
	b.ReportMetric(res.PerRegisterRR["pc"], "pc-instr-per-reg")
}

func BenchmarkFig6Table3(b *testing.B) {
	res := runExperiment(b, "fig6", benchConfig).(*experiments.Fig6Result)
	for _, row := range res.Table {
		if row.Tool == "pm" && row.Mode == "user+kernel" {
			b.ReportMetric(row.Median, "pm-uk-median")
		}
		if row.Tool == "pc" && row.Mode == "user+kernel" {
			b.ReportMetric(row.Median, "pc-uk-median")
		}
	}
}

func BenchmarkANOVA(b *testing.B) {
	res := runExperiment(b, "anova", benchConfig).(*experiments.ANOVAResult)
	b.ReportMetric(float64(len(res.Significant)), "significant-factors")
	b.ReportMetric(float64(len(res.Insignificant)), "insignificant-factors")
}

func BenchmarkFig7(b *testing.B) {
	cfg := benchConfig
	cfg.Runs = 4
	res := runExperiment(b, "fig7", cfg).(*experiments.Fig7Result)
	for _, s := range res.Slopes {
		if s.Infra == "pc" && s.Processor == "CD" {
			b.ReportMetric(s.Slope, "pc-CD-slope")
		}
		if s.Infra == "pm" && s.Processor == "K8" {
			b.ReportMetric(s.Slope, "pm-K8-slope")
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	cfg := benchConfig
	cfg.Runs = 4
	res := runExperiment(b, "fig8", cfg).(*experiments.Fig8Result)
	b.ReportMetric(res.MaxAbsSlope, "max-abs-user-slope")
}

func BenchmarkFig9(b *testing.B) {
	res := runExperiment(b, "fig9", benchConfig).(*experiments.Fig9Result)
	b.ReportMetric(res.Slope, "kernel-instr-per-iter")
}

func BenchmarkFig10(b *testing.B) {
	res := runExperiment(b, "fig10", benchConfig).(*experiments.Fig10Result)
	pd := res.CyclesPerIterRange["PD"]
	b.ReportMetric(pd[0], "PD-min-cyc-per-iter")
	b.ReportMetric(pd[1], "PD-max-cyc-per-iter")
}

func BenchmarkFig11(b *testing.B) {
	res := runExperiment(b, "fig11", benchConfig).(*experiments.Fig11Result)
	b.ReportMetric(float64(len(res.GroupSlopes)), "cyc-per-iter-groups")
}

func BenchmarkFig12(b *testing.B) {
	res := runExperiment(b, "fig12", benchConfig).(*experiments.Fig12Result)
	minR2 := 1.0
	for _, c := range res.Cells {
		if c.R2 < minR2 {
			minR2 = c.R2
		}
	}
	b.ReportMetric(minR2, "min-cell-R2")
}

func BenchmarkGuidelines(b *testing.B) {
	res := runExperiment(b, "guidelines", benchConfig).(*experiments.GuidelinesResult)
	b.ReportMetric(res.GovernorCV["ondemand"], "ondemand-CV")
	b.ReportMetric(res.GovernorCV["performance"], "performance-CV")
}

func BenchmarkWholeProcess(b *testing.B) {
	res := runExperiment(b, "wholeprocess", benchConfig).(*experiments.WholeProcessResult)
	b.ReportMetric(res.ErrorPercent, "error-percent")
}

// --- extension experiments (paper Sections 7 and 9 follow-ups) ---

func BenchmarkExtSampling(b *testing.B) {
	res := runExperiment(b, "sampling", benchConfig).(*experiments.SamplingResult)
	last := res.Rows[len(res.Rows)-1]
	b.ReportMetric(last.RelativeError, "finest-period-rel-err")
	b.ReportMetric(float64(last.PerturbInstr), "finest-period-perturb-instr")
}

func BenchmarkExtMultiplex(b *testing.B) {
	res := runExperiment(b, "multiplex", benchConfig).(*experiments.MultiplexResult)
	for _, row := range res.Rows {
		switch row.Workload {
		case "stationary":
			b.ReportMetric(row.RelativeError, "stationary-rel-err")
		case "two-phase":
			b.ReportMetric(row.RelativeError, "phased-rel-err")
		}
	}
}

func BenchmarkExtEvents(b *testing.B) {
	res := runExperiment(b, "events", benchConfig).(*experiments.EventPlacementResult)
	b.ReportMetric(res.InstrSpread, "instr-spread")
	b.ReportMetric(res.Spread["CPU_CLK_UNHALTED"], "cycle-spread")
}

func BenchmarkExtCalibration(b *testing.B) {
	res := runExperiment(b, "calibration", benchConfig).(*experiments.CalibrationResult)
	worstNull, worstProbe := 0.0, 0.0
	for _, row := range res.Rows {
		if row.NullResidual > worstNull {
			worstNull = row.NullResidual
		}
		if row.ProbeResidual > worstProbe {
			worstProbe = row.ProbeResidual
		}
	}
	b.ReportMetric(worstNull, "worst-null-residual")
	b.ReportMetric(worstProbe, "worst-probe-residual")
}

// --- simulator micro-benchmarks ---

// BenchmarkMeasureNull times one complete null-benchmark measurement
// (system reuse, fresh seed each run).
func BenchmarkMeasureNull(b *testing.B) {
	sys, err := repro.NewSystem(repro.K8, repro.StackPM)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := sys.Measure(repro.Request{
			Bench:   repro.NullBenchmark(),
			Pattern: repro.ReadRead,
			Mode:    repro.ModeUser,
			Seed:    uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeasureLoop1M times a one-million-iteration loop measurement
// (exercising the analytic fast-forward path).
func BenchmarkMeasureLoop1M(b *testing.B) {
	sys, err := repro.NewSystem(repro.CD, repro.StackPC)
	if err != nil {
		b.Fatal(err)
	}
	bench := repro.LoopBenchmark(1_000_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := sys.Measure(repro.Request{
			Bench:   bench,
			Pattern: repro.StartRead,
			Mode:    repro.ModeUserKernel,
			Seed:    uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benches (DESIGN.md Section 7) ---

// BenchmarkAblationStepwiseVsBulk verifies that the loop fast-forward
// is count-exact against full interpretation and reports the counted
// instructions of both as metrics (they must be equal).
func BenchmarkAblationStepwiseVsBulk(b *testing.B) {
	const iters = 200_000
	run := func(stepwise bool) int64 {
		c := cpu.NewCore(cpu.Athlon64X2)
		if err := c.PMU.Configure(0, cpu.CounterConfig{Event: cpu.EventInstrRetired, User: true, OS: true}); err != nil {
			b.Fatal(err)
		}
		c.PMU.Enable(1)
		bld := isa.NewBuilder("loop", 0x4000)
		bld.Emit(isa.ALU())
		bld.Loop(iters, func(body *isa.Builder) {
			body.Emit(isa.ALU(), isa.ALU(), isa.Branch(0, true))
			if stepwise {
				// An RDTSC without capture makes the body non-plain,
				// forcing full interpretation.
				body.Emit(isa.RDTSC(isa.NoSlot))
			}
		})
		bld.Emit(isa.Halt())
		if err := c.Run(bld.Build()); err != nil {
			b.Fatal(err)
		}
		v, _ := c.PMU.Value(0)
		if stepwise {
			v -= iters // remove the RDTSC per iteration
		}
		return v
	}
	var bulk, step int64
	for i := 0; i < b.N; i++ {
		bulk = run(false)
		step = run(true)
	}
	if bulk != step {
		b.Fatalf("bulk count %d != stepwise count %d", bulk, step)
	}
	b.ReportMetric(float64(bulk), "instr-counted")
}

// BenchmarkAblationTSCFastRead quantifies the value of perfctr's
// TSC-gated fast read path (the Section 8 guideline): the read-read
// error with and without it.
func BenchmarkAblationTSCFastRead(b *testing.B) {
	measure := func(tsc bool) float64 {
		sys, err := repro.NewSystem(repro.CD, repro.StackPC, repro.WithTSC(tsc))
		if err != nil {
			b.Fatal(err)
		}
		errs, err := sys.MeasureN(repro.Request{
			Bench:   repro.NullBenchmark(),
			Pattern: repro.ReadRead,
			Mode:    repro.ModeUserKernel,
		}, 15, 3)
		if err != nil {
			b.Fatal(err)
		}
		return stats.MedianInt64(errs)
	}
	var on, off float64
	for i := 0; i < b.N; i++ {
		on = measure(true)
		off = measure(false)
	}
	b.ReportMetric(on, "tsc-on-median")
	b.ReportMetric(off, "tsc-off-median")
}

// BenchmarkAblationInterruptSkew disables the per-tick attribution
// rounding and shows the user-mode duration slope collapsing to zero —
// the mechanism claimed for Figure 8.
func BenchmarkAblationInterruptSkew(b *testing.B) {
	slopeWith := func(skewMax int) float64 {
		model := *cpu.Core2Duo // copy; never mutate the shared models
		model.TickSkewMax = skewMax
		sys, err := stack.New(&model, "pc", stack.DefaultOptions)
		if err != nil {
			b.Fatal(err)
		}
		var xs, ys []float64
		for _, l := range []int64{100_000, 500_000, 1_000_000} {
			for r := 0; r < 30; r++ {
				m, err := core.Measure(sys.Kernel, sys.Infra, core.Request{
					Bench:   core.LoopBenchmark(l),
					Pattern: core.StartRead,
					Mode:    core.ModeUser,
					Seed:    uint64(l) + uint64(r)*17,
				})
				if err != nil {
					b.Fatal(err)
				}
				xs = append(xs, float64(l))
				ys = append(ys, float64(m.Error(0, core.ModeUser)))
			}
		}
		fit, err := stats.LinearFit(xs, ys)
		if err != nil {
			b.Fatal(err)
		}
		return fit.Slope
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = slopeWith(cpu.Core2Duo.TickSkewMax)
		without = slopeWith(0)
	}
	// Without skew the only slope left is regression noise from the
	// constant per-call jitter — well under 1e-6 — while the skewed
	// slope matches Figure 8's few-millionths magnitude.
	if abs(without) > 1e-6 {
		b.Fatalf("user slope without skew = %v, want < 1e-6 (noise only)", without)
	}
	if abs(with) < 2*abs(without) {
		b.Fatalf("skewed slope %v not separated from noise floor %v", with, without)
	}
	b.ReportMetric(with, "user-slope-with-skew")
	b.ReportMetric(without, "user-slope-no-skew")
}

// BenchmarkAblationPlacement disables the fetch-window straddle penalty
// and shows Figure 11's bimodality disappearing: all (pattern, opt)
// cells collapse to a single cycles/iteration group.
func BenchmarkAblationPlacement(b *testing.B) {
	groups := func(straddle float64) int {
		model := *cpu.Athlon64X2
		model.StraddleCycles = straddle
		sys, err := stack.New(&model, "pm", stack.DefaultOptions)
		if err != nil {
			b.Fatal(err)
		}
		seen := map[int64]bool{}
		for _, pat := range core.AllPatterns {
			for _, opt := range []int{0, 1, 2, 3} {
				m, err := core.Measure(sys.Kernel, sys.Infra, core.Request{
					Bench:   core.LoopBenchmark(1_000_000),
					Pattern: pat,
					Mode:    core.ModeUserKernel,
					Events:  []cpu.Event{cpu.EventCoreCycles},
					Opt:     compilerOpt(opt),
					Seed:    7,
				})
				if err != nil {
					b.Fatal(err)
				}
				cpi := m.Deltas[0] / 1_000_000 // integer cycles per iteration
				seen[cpi] = true
			}
		}
		return len(seen)
	}
	var with, without int
	for i := 0; i < b.N; i++ {
		with = groups(cpu.Athlon64X2.StraddleCycles)
		without = groups(0)
	}
	if with < 2 {
		b.Fatalf("straddle penalty produced %d group(s), want bimodality", with)
	}
	if without != 1 {
		b.Fatalf("no-straddle ablation produced %d groups, want 1", without)
	}
	b.ReportMetric(float64(with), "groups-with-straddle")
	b.ReportMetric(float64(without), "groups-no-straddle")
}

func compilerOpt(o int) (l repro.OptLevel) { return repro.OptLevel(o) }

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

var _ = fmt.Sprintf // keep fmt for debugging edits
