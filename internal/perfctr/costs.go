package perfctr

// Cost model: dynamic instruction counts of the libperfctr call paths and
// the perfctr kernel extension, calibrated against the paper's
// measurements (see DESIGN.md Section 6).
//
// User-mode costs of the fast read path are per-processor: real
// libperfctr ships architecture-specific read loops (p4/k7/k8 variants),
// and the paper's Figure 4 reports different fast-read errors on the
// Core 2 Duo (median 109.5) than Figure 5 does on the K8 (median 84).
// Kernel path lengths are written for the Core 2 Duo and scaled by the
// model's KernelCost factor, reproducing the cross-processor spread in
// Table 3.

// fastReadCost describes the user-mode fast read path enabled by the
// TSC: a per-counter RDPMC loop followed by a TSC-based resync check.
type fastReadCost struct {
	Pre     int // call prologue before the first RDPMC
	PerCtr  int // glue between counter reads
	TSCTail int // TSC read and resync check after the last counter
	Post    int // epilogue after the resync
}

// fastRead gives the per-processor fast-read path lengths.
var fastRead = map[string]fastReadCost{
	"K8": {Pre: 30, PerCtr: 13, TSCTail: 24, Post: 28},
	"CD": {Pre: 42, PerCtr: 15, TSCTail: 36, Post: 28},
	"PD": {Pre: 70, PerCtr: 48, TSCTail: 60, Post: 28},
}

// Slow (syscall) read path, used when the TSC is disabled: perfctr then
// cannot resync its virtualized counts in user mode and must ask the
// kernel (the Figure 4 mechanism). Most of the path is user-mode
// marshaling in libperfctr (the paper's Figure 4 right panel shows
// TSC-off read errors above 1000 even when counting user mode only).
const (
	slowReadUserPre    = 650
	slowReadUserPost   = 650
	slowReadUserPerCtr = 26  // per-counter request/result marshaling
	slowReadKernelPre  = 200 // entry to the capture of the first counter
	slowReadKernelPost = 200 // after the last capture to sysexit
	slowReadPerCtr     = 14  // kernel work between counter captures
)

// Control syscall (vperfctr_control): programs the selection, resets,
// and starts the counters. The enable lands late in the handler, so only
// the exit path is inside the ar/ao measurement window.
const (
	ctlUserPre      = 30
	ctlUserPost     = 25
	ctlKernelPre    = 360 // entry, copyin, per-counter programming
	ctlKernelPerCtr = 12  // per-counter programming before the enable
	ctlKernelPost   = 94  // after the enable to sysexit
	ctlPostPerCtr   = 4   // per-counter state write-back after enable
)

// Stop syscall (vperfctr_stop / suspend).
const (
	stopUserPre    = 25
	stopUserPost   = 30
	stopKernelPre  = 82 // entry to the disable
	stopKernelPost = 300
)

// jitterMax bounds the variable extra work of kernel paths (cache and
// branch variation in the real kernel); user wrappers vary much less.
const (
	kernelJitterMax = 14
	userJitterMax   = 2
)

// Per-tick accounting work the perfctr extension adds to the kernel's
// timer interrupt, per processor. Together with the kernel's base tick
// cost this reproduces the paper's Figure 7 slopes (pc column):
// PD ~0.0030, CD ~0.00204, K8 ~0.0013 extra user+kernel instructions per
// loop iteration.
var tickWork = map[string]int{
	"PD": 1000,
	"CD": 1300,
	"K8": 480,
}

// skewBias is perfctr's contribution to the per-tick user/kernel
// attribution rounding (Figure 8: slopes scatter around zero and differ
// by infrastructure).
const skewBias = -2.5
