package perfctr

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/kernel"
)

func newCtx(t *testing.T, m *cpu.Model, tsc bool) (*kernel.Kernel, *Perfctr) {
	t.Helper()
	k := kernel.New(m)
	p, err := New(k, tsc)
	if err != nil {
		t.Fatal(err)
	}
	return k, p
}

func TestIdentity(t *testing.T) {
	_, p := newCtx(t, cpu.Athlon64X2, true)
	if p.Name() != "pc" || p.Backend() != "pc" {
		t.Error("identity wrong")
	}
	if !p.WithTSC() {
		t.Error("TSC flag lost")
	}
	if !p.SupportsReadWithoutReset() {
		t.Error("perfctr reads must not reset")
	}
}

func TestSetupConfiguresAndDisables(t *testing.T) {
	k, p := newCtx(t, cpu.Athlon64X2, true)
	specs := []core.CounterSpec{
		{Event: cpu.EventInstrRetired, User: true, OS: true},
		{Event: cpu.EventCoreCycles, User: true, OS: false},
	}
	if err := p.Setup(specs); err != nil {
		t.Fatal(err)
	}
	if p.NumCounters() != 2 {
		t.Errorf("NumCounters = %d", p.NumCounters())
	}
	// Counters must start disabled: user work counts nothing.
	prog := isa.NewBuilder("w", 0x1000).ALUBlock(100).Emit(isa.Halt()).Build()
	if err := k.Core.Run(prog); err != nil {
		t.Fatal(err)
	}
	if v, _ := k.Core.PMU.Value(0); v != 0 {
		t.Errorf("counter counted while disabled: %d", v)
	}
}

func TestSetupTooMany(t *testing.T) {
	_, p := newCtx(t, cpu.Core2Duo, true)
	specs := make([]core.CounterSpec, 3)
	for i := range specs {
		specs[i] = core.CounterSpec{Event: cpu.EventInstrRetired, User: true}
	}
	var tm *core.ErrTooManyCounters
	if err := p.Setup(specs); !errors.As(err, &tm) {
		t.Errorf("err = %v, want ErrTooManyCounters", err)
	}
}

func TestFastReadEmitsNoSyscall(t *testing.T) {
	_, p := newCtx(t, cpu.Athlon64X2, true)
	if err := p.Setup([]core.CounterSpec{{Event: cpu.EventInstrRetired, User: true}}); err != nil {
		t.Fatal(err)
	}
	b := isa.NewBuilder("read", 0x1000)
	p.EmitRead(b, core.PhaseC0)
	prog := b.Emit(isa.Halt()).Build()
	for _, in := range prog.Code {
		if in.Op == isa.OpSyscall {
			t.Fatal("fast read must not contain a syscall")
		}
	}
	// It must contain an RDTSC (the TSC resync that makes it possible).
	found := false
	for _, in := range prog.Code {
		if in.Op == isa.OpRDTSC {
			found = true
		}
	}
	if !found {
		t.Error("fast read must read the TSC")
	}
}

func TestSlowReadUsesSyscall(t *testing.T) {
	_, p := newCtx(t, cpu.Athlon64X2, false)
	if err := p.Setup([]core.CounterSpec{{Event: cpu.EventInstrRetired, User: true}}); err != nil {
		t.Fatal(err)
	}
	b := isa.NewBuilder("read", 0x1000)
	p.EmitRead(b, core.PhaseC1)
	prog := b.Emit(isa.Halt()).Build()
	found := false
	for _, in := range prog.Code {
		if in.Op == isa.OpSyscall {
			found = true
		}
	}
	if !found {
		t.Error("TSC-off read must be a syscall")
	}
}

func TestReadCapturesAllCounters(t *testing.T) {
	k, p := newCtx(t, cpu.Athlon64X2, true)
	specs := []core.CounterSpec{
		{Event: cpu.EventInstrRetired, User: true, OS: true},
		{Event: cpu.EventInstrRetired, User: true, OS: true},
		{Event: cpu.EventInstrRetired, User: true, OS: true},
	}
	if err := p.Setup(specs); err != nil {
		t.Fatal(err)
	}
	b := isa.NewBuilder("m", 0x1000)
	p.EmitPrepare(b)
	p.EmitRead(b, core.PhaseC1)
	b.Emit(isa.Halt())
	if err := k.Core.Run(b.Build()); err != nil {
		t.Fatal(err)
	}
	slots := map[int]bool{}
	for _, c := range k.Core.Captures {
		slots[c.Slot] = true
	}
	for i := 3; i < 6; i++ { // phase C1 slots for 3 counters
		if !slots[i] {
			t.Errorf("slot %d not captured; got %v", i, slots)
		}
	}
}

func TestStopFreezesCounts(t *testing.T) {
	k, p := newCtx(t, cpu.Athlon64X2, true)
	if err := p.Setup([]core.CounterSpec{{Event: cpu.EventInstrRetired, User: true, OS: true}}); err != nil {
		t.Fatal(err)
	}
	b := isa.NewBuilder("m", 0x1000)
	p.EmitPrepare(b)
	b.ALUBlock(50)
	p.EmitStop(b)
	b.ALUBlock(500) // not counted
	p.EmitRead(b, core.PhaseC1)
	b.Emit(isa.Halt())
	if err := k.Core.Run(b.Build()); err != nil {
		t.Fatal(err)
	}
	var v int64 = -1
	for _, c := range k.Core.Captures {
		if c.Slot == 1 { // phase C1 slot for 1 counter
			v = c.Value
		}
	}
	if v < 0 {
		t.Fatal("no capture")
	}
	// The frozen count covers post-enable + 50 ALU + pre-disable: far
	// less than it would be had the 500 ALUs been counted.
	if v > 400 {
		t.Errorf("stop did not freeze counts: %d", v)
	}
	if v < 50 {
		t.Errorf("count implausibly small: %d", v)
	}
}

func TestTeardown(t *testing.T) {
	k, p := newCtx(t, cpu.Athlon64X2, true)
	if err := p.Setup([]core.CounterSpec{{Event: cpu.EventInstrRetired, User: true}}); err != nil {
		t.Fatal(err)
	}
	p.Teardown()
	if k.Core.VirtualRead != nil || k.Core.OnMSR != nil {
		t.Error("teardown left hooks installed")
	}
	if p.NumCounters() != 0 {
		t.Error("teardown left counters configured")
	}
}

func TestVirtualizationAcrossSwitches(t *testing.T) {
	k, p := newCtx(t, cpu.Athlon64X2, true)
	if err := p.Setup([]core.CounterSpec{{Event: cpu.EventInstrRetired, User: true, OS: true}}); err != nil {
		t.Fatal(err)
	}
	k.Core.PMU.Enable(1)
	prog := isa.NewBuilder("w", 0x1000).ALUBlock(99).Emit(isa.Halt()).Build()
	if err := k.Core.Run(prog); err != nil {
		t.Fatal(err)
	}
	before := p.VSet().Read(0)

	// Another thread runs work; thread 1's virtual count must not move.
	t2 := k.SpawnThread()
	if err := k.SwitchTo(t2); err != nil {
		t.Fatal(err)
	}
	if err := k.Core.Run(prog); err != nil {
		t.Fatal(err)
	}
	v1, err := p.VSet().ReadThread(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != before {
		t.Errorf("thread 1 virtual count changed: %d -> %d", before, v1)
	}
}

func TestPerArchFastReadCosts(t *testing.T) {
	// The per-arch fast read tables must exist for all three processors
	// and be ordered PD > CD > K8 (NetBurst's read loop is the longest).
	for _, tag := range []string{"PD", "CD", "K8"} {
		if _, ok := fastRead[tag]; !ok {
			t.Fatalf("no fast read costs for %s", tag)
		}
	}
	if !(fastRead["PD"].Pre > fastRead["CD"].Pre && fastRead["CD"].Pre > fastRead["K8"].Pre) {
		t.Error("fast read cost ordering violated")
	}
}
