// Package perfctr models the perfctr kernel extension (Mikael
// Pettersson's Linux patch, version 2.6.29 in the study) and its
// user-space library libperfctr.
//
// perfctr's distinguishing feature is its fast user-mode read path:
// virtualized per-thread counts are mapped into user space and resynced
// with RDPMC plus a TSC read, so a read needs no system call — but only
// when the TSC is enabled in the counter selection. With the TSC
// disabled, reads fall back to a syscall, which is why the paper finds
// that *disabling* the extra TSC counter makes measurements drastically
// worse (Figure 4, Section 8 guidelines).
package perfctr

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/vcounter"
)

// Syscall numbers of the modeled vperfctr interface.
const (
	sysControl = 100 // program + reset + start
	sysStart   = 101 // start without reset
	sysStop    = 102
	sysReadA   = 103 // slow read, captures into phase-c0 slots
	sysReadB   = 104 // slow read, captures into phase-c1 slots
)

// extName identifies the extension to the kernel's syscall registry.
const extName = "perfctr"

// Perfctr is a measurement context on the perfctr stack. It implements
// core.Infrastructure as the paper's "pc" configuration.
type Perfctr struct {
	k       *kernel.Kernel
	withTSC bool
	vset    *vcounter.Set
	specs   []core.CounterSpec
	mask    uint64
}

// New installs the perfctr extension into the kernel and returns the
// libperfctr context. withTSC selects whether the TSC is included in the
// counter selection, enabling the fast user-mode read path.
func New(k *kernel.Kernel, withTSC bool) (*Perfctr, error) {
	p := &Perfctr{k: k, withTSC: withTSC}
	k.InstallTickWork(tickWork[k.Model().Tag], skewBias)
	k.AddSwitchHook(p)
	if err := p.installHandlers(0); err != nil {
		return nil, err
	}
	return p, nil
}

// Save implements kernel.SwitchHook by delegating to the live virtual
// counter set, if a measurement context exists.
func (p *Perfctr) Save(tid int) {
	if p.vset != nil {
		p.vset.Save(tid)
	}
}

// Restore implements kernel.SwitchHook.
func (p *Perfctr) Restore(tid int) {
	if p.vset != nil {
		p.vset.Restore(tid)
	}
}

// WithTSC reports whether the TSC is part of the counter selection.
func (p *Perfctr) WithTSC() bool { return p.withTSC }

// Name returns the stack code "pc".
func (p *Perfctr) Name() string { return "pc" }

// Backend returns "pc".
func (p *Perfctr) Backend() string { return "pc" }

// NumCounters returns the configured counter count.
func (p *Perfctr) NumCounters() int { return len(p.specs) }

// kscale scales a Core 2 Duo kernel path length to this processor.
func (p *Perfctr) kscale(n int) int {
	v := int(float64(n)*p.k.Model().KernelCost + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}

// Setup programs the requested counters and regenerates the kernel
// handlers for the new selection. Counters are left disabled at zero;
// the per-thread virtual state is rebuilt.
func (p *Perfctr) Setup(specs []core.CounterSpec) error {
	m := p.k.Model()
	if len(specs) > m.NumProgrammable {
		return &core.ErrTooManyCounters{Requested: len(specs), Available: m.NumProgrammable, Model: m.Name}
	}
	pmu := p.k.Core.PMU
	for i, s := range specs {
		if err := pmu.Configure(i, cpu.CounterConfig{Event: s.Event, User: s.User, OS: s.OS}); err != nil {
			return fmt.Errorf("perfctr: %v", err)
		}
	}
	p.specs = append(p.specs[:0], specs...)
	p.mask = (uint64(1) << uint(len(specs))) - 1
	pmu.Disable(p.mask)
	pmu.Reset(p.mask)

	p.vset = vcounter.New(pmu, len(specs), p.k.CurrentThread())
	p.k.Core.VirtualRead = p.vset.Read
	p.k.Core.OnMSR = func(action isa.MSRAction, mask uint64) {
		if action == isa.MSRReset {
			p.vset.ResetAccum(mask)
		}
	}
	return p.installHandlers(len(specs))
}

// installHandlers (re)builds the kernel-side syscall handlers for a
// selection of n counters.
func (p *Perfctr) installHandlers(n int) error {
	type handler struct {
		nr   int
		prog *isa.Program
	}
	handlers := []handler{
		{sysControl, p.buildControl(n, true)},
		{sysStart, p.buildControl(n, false)},
		{sysStop, p.buildStop()},
		{sysReadA, p.buildSlowRead(n, core.PhaseC0)},
		{sysReadB, p.buildSlowRead(n, core.PhaseC1)},
	}
	for _, h := range handlers {
		if err := p.k.UpdateSyscall(h.nr, extName, h.prog); err != nil {
			return err
		}
	}
	return nil
}

// buildControl models the vperfctr control handler: per-counter
// programming, optional reset, enable, and the exit path. Only the
// instructions after the enabling WRMSR land inside an ar/ao window.
func (p *Perfctr) buildControl(n int, reset bool) *isa.Program {
	b := isa.NewBuilder("perfctr_sys_control", 0xffff_a000_0000)
	b.ALUBlock(p.kscale(ctlKernelPre + ctlKernelPerCtr*n))
	b.Emit(isa.VarWork(kernelJitterMax, 10))
	if reset {
		b.Emit(isa.WRMSR(isa.MSRReset, p.maskFor(n)))
	}
	b.Emit(isa.WRMSR(isa.MSREnable, p.maskFor(n)))
	b.ALUBlock(p.kscale(ctlKernelPost + ctlPostPerCtr*maxInt(n-1, 0)))
	b.Emit(isa.VarWork(kernelJitterMax, 11))
	b.Emit(isa.SysRet())
	return b.Build()
}

// buildStop models vperfctr suspend: a short entry, the disable, and a
// longer bookkeeping tail that is already outside the window.
func (p *Perfctr) buildStop() *isa.Program {
	b := isa.NewBuilder("perfctr_sys_stop", 0xffff_a100_0000)
	b.ALUBlock(p.kscale(stopKernelPre))
	b.Emit(isa.WRMSR(isa.MSRDisable, p.mask))
	b.ALUBlock(p.kscale(stopKernelPost))
	b.Emit(isa.VarWork(kernelJitterMax, 12))
	b.Emit(isa.SysRet())
	return b.Build()
}

// buildSlowRead models the syscall read used when the TSC is off: the
// kernel walks the counter state and captures each counter in turn.
func (p *Perfctr) buildSlowRead(n int, phase core.Phase) *isa.Program {
	b := isa.NewBuilder(fmt.Sprintf("perfctr_sys_read_%d", phase), 0xffff_a200_0000)
	b.ALUBlock(p.kscale(slowReadKernelPre))
	b.Emit(isa.VarWork(kernelJitterMax, 13))
	for i := 0; i < n; i++ {
		if i > 0 {
			b.ALUBlock(p.kscale(slowReadPerCtr))
		}
		b.Emit(isa.RDPMC(i, phase.SlotFor(i, n)))
	}
	b.ALUBlock(p.kscale(slowReadKernelPost))
	b.Emit(isa.VarWork(kernelJitterMax, 14))
	b.Emit(isa.SysRet())
	return b.Build()
}

// maskFor returns the enable mask for n counters.
func (p *Perfctr) maskFor(n int) uint64 {
	if n <= 0 {
		return 0
	}
	return (uint64(1) << uint(n)) - 1
}

// EmitPrepare emits the libperfctr "reset and start" call: a single
// control syscall.
func (p *Perfctr) EmitPrepare(b *isa.Builder) {
	b.ALUBlock(ctlUserPre)
	b.Emit(isa.Syscall(sysControl))
	b.ALUBlock(ctlUserPost)
	b.Emit(isa.VarWork(userJitterMax, 20))
}

// EmitStart emits a start without reset (the rr/ro patterns).
func (p *Perfctr) EmitStart(b *isa.Builder) {
	b.ALUBlock(ctlUserPre)
	b.Emit(isa.Syscall(sysStart))
	b.ALUBlock(ctlUserPost)
	b.Emit(isa.VarWork(userJitterMax, 21))
}

// EmitStop emits the suspend call.
func (p *Perfctr) EmitStop(b *isa.Builder) {
	b.ALUBlock(stopUserPre)
	b.Emit(isa.Syscall(sysStop))
	b.ALUBlock(stopUserPost)
	b.Emit(isa.VarWork(userJitterMax, 22))
}

// EmitRead emits a read of all configured counters. With the TSC enabled
// this is the fast pure-user-mode path (per-counter RDPMC plus a TSC
// resync); without it, a syscall.
func (p *Perfctr) EmitRead(b *isa.Builder, phase core.Phase) {
	n := len(p.specs)
	if p.withTSC {
		fc := fastRead[p.k.Model().Tag]
		b.ALUBlock(fc.Pre)
		for i := 0; i < n; i++ {
			if i > 0 {
				b.ALUBlock(fc.PerCtr)
			}
			b.Emit(isa.RDPMC(i, phase.SlotFor(i, n)))
		}
		b.Emit(isa.RDTSC(isa.NoSlot))
		b.ALUBlock(fc.TSCTail - 1) // the RDTSC is part of the tail
		b.Emit(isa.VarWork(userJitterMax, 23))
		b.ALUBlock(fc.Post)
		return
	}
	perCtr := slowReadUserPerCtr * maxInt(n-1, 0)
	b.ALUBlock(slowReadUserPre + perCtr)
	if phase == core.PhaseC0 {
		b.Emit(isa.Syscall(sysReadA))
	} else {
		b.Emit(isa.Syscall(sysReadB))
	}
	b.ALUBlock(slowReadUserPost + perCtr)
	b.Emit(isa.VarWork(userJitterMax, 24))
}

// SupportsReadWithoutReset reports true: libperfctr reads do not reset.
func (p *Perfctr) SupportsReadWithoutReset() bool { return true }

// Teardown disables and clears the configured counters.
func (p *Perfctr) Teardown() {
	if p.mask != 0 {
		p.k.Core.PMU.Disable(p.mask)
		p.k.Core.PMU.Reset(p.mask)
	}
	p.k.Core.VirtualRead = nil
	p.k.Core.OnMSR = nil
	p.specs = nil
	p.mask = 0
}

// VSet exposes the virtual counter set for multi-thread tests.
func (p *Perfctr) VSet() *vcounter.Set { return p.vset }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
