package monitor

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/service"
)

// fakeClock is an injectable clock for deterministic idle accounting.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// newTestRegistry builds a registry with a small service, a fake
// clock, and the janitor disabled so tests drive Sweep directly.
func newTestRegistry(t *testing.T, cfg Config) (*Registry, *fakeClock) {
	t.Helper()
	clock := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	svc := service.New(service.Config{WorkersPerShard: 2, CalibrationRuns: 5})
	cfg.SweepInterval = -1
	cfg.Now = clock.Now
	reg := NewRegistry(svc, cfg)
	t.Cleanup(reg.Close)
	return reg, clock
}

// session configuration used throughout: small but with several
// windows' worth of samples.
func testConfig() api.SessionRequest {
	return api.SessionRequest{
		Measure:    api.MeasureRequest{Processor: "K8", Stack: "pc", Bench: "loop:1000", Pattern: "rr"},
		Steps:      32,
		WindowSize: 8,
	}
}

// consume drains a session's event log, returning every line and the
// end event's reason.
func consume(t *testing.T, sess *Session) (lines [][]byte, reason string) {
	t.Helper()
	sess.Subscribe()
	defer sess.Unsubscribe()
	i := 0
	deadline := time.After(30 * time.Second)
	for {
		ls, next, wait, done := sess.Events(i)
		i = next
		if len(ls) > 0 {
			lines = append(lines, ls...)
			continue
		}
		if done {
			break
		}
		select {
		case <-wait:
		case <-deadline:
			t.Fatalf("timed out waiting for session events (have %d)", i)
		}
	}
	var last api.StreamEvent
	if err := json.Unmarshal(lines[len(lines)-1], &last); err != nil {
		t.Fatalf("unmarshal last event: %v", err)
	}
	if last.Type != api.StreamEnd {
		t.Fatalf("last event is %q, want end", last.Type)
	}
	return lines, last.Reason
}

// filterType returns the lines of one event type.
func filterType(t *testing.T, lines [][]byte, typ string) [][]byte {
	t.Helper()
	var out [][]byte
	for _, ln := range lines {
		var ev api.StreamEvent
		if err := json.Unmarshal(ln, &ev); err != nil {
			t.Fatalf("unmarshal %q: %v", ln, err)
		}
		if ev.Type == typ {
			out = append(out, ln)
		}
	}
	return out
}

// TestIdenticalSessionsStreamIdenticalSeries is the acceptance
// criterion: two sessions with the same normalized configuration
// produce byte-identical NDJSON sample series.
func TestIdenticalSessionsStreamIdenticalSeries(t *testing.T) {
	reg, _ := newTestRegistry(t, Config{})
	a, err := reg.Open(context.Background(), testConfig())
	if err != nil {
		t.Fatalf("open a: %v", err)
	}
	b, err := reg.Open(context.Background(), testConfig())
	if err != nil {
		t.Fatalf("open b: %v", err)
	}
	linesA, reasonA := consume(t, a)
	linesB, reasonB := consume(t, b)
	if reasonA != api.SessionDone || reasonB != api.SessionDone {
		t.Fatalf("end reasons = %q, %q, want done", reasonA, reasonB)
	}
	samplesA := filterType(t, linesA, api.StreamSample)
	samplesB := filterType(t, linesB, api.StreamSample)
	if len(samplesA) != 32 || len(samplesB) != 32 {
		t.Fatalf("sample counts = %d, %d, want 32", len(samplesA), len(samplesB))
	}
	for i := range samplesA {
		if !bytes.Equal(samplesA[i], samplesB[i]) {
			t.Fatalf("sample %d diverges:\n  a: %s\n  b: %s", i, samplesA[i], samplesB[i])
		}
	}
	// Window and drift events are deterministic too: the full logs
	// must match byte for byte (both sessions ended the same way).
	if len(linesA) != len(linesB) {
		t.Fatalf("log lengths = %d, %d", len(linesA), len(linesB))
	}
	for i := range linesA {
		if !bytes.Equal(linesA[i], linesB[i]) {
			t.Fatalf("event %d diverges:\n  a: %s\n  b: %s", i, linesA[i], linesB[i])
		}
	}
}

// TestInjectedStepChangeFlagsDrift is the acceptance criterion: a step
// change in the corrected estimate is flagged within 2 windows.
func TestInjectedStepChangeFlagsDrift(t *testing.T) {
	const injectStep = 18 // mid-window: window 2 is mixed, window 3 fully shifted
	cfg := testConfig()
	cfg.Steps = 48
	cfg.Inject = &api.InjectSpec{AfterStep: injectStep, Offset: 1_000_000}
	reg, _ := newTestRegistry(t, Config{})
	sess, err := reg.Open(context.Background(), cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	lines, reason := consume(t, sess)
	if reason != api.SessionDone {
		t.Fatalf("end reason = %q, want done", reason)
	}
	drifts := filterType(t, lines, api.StreamDrift)
	if len(drifts) == 0 {
		t.Fatal("injected step change produced no drift event")
	}
	var ev api.StreamEvent
	if err := json.Unmarshal(drifts[0], &ev); err != nil {
		t.Fatal(err)
	}
	injWindow := injectStep / cfg.WindowSize
	if ev.Drift.Window > injWindow+2 {
		t.Errorf("drift flagged at window %d, want within 2 of window %d", ev.Drift.Window, injWindow)
	}
	// The triggering window may straddle the injection step, so its
	// mean shift is a fraction of the full offset — but far above any
	// jitter the simulator produces.
	if ev.Drift.Shift < 100_000 {
		t.Errorf("drift shift = %v, want a large positive step", ev.Drift.Shift)
	}
	// The snapshot agrees with the stream.
	snap := sess.Snapshot()
	if len(snap.Drifts) != len(drifts) {
		t.Errorf("snapshot has %d drifts, stream %d", len(snap.Drifts), len(drifts))
	}
	if snap.State != api.SessionDone || snap.Total != 48 {
		t.Errorf("snapshot state/total = %s/%d, want done/48", snap.State, snap.Total)
	}
}

// TestStableSeriesFlagsNoDrift guards the quantization slack: a
// steady configuration must not fire drift events on integer jitter.
func TestStableSeriesFlagsNoDrift(t *testing.T) {
	cfg := testConfig()
	cfg.Steps = 64
	reg, _ := newTestRegistry(t, Config{})
	sess, err := reg.Open(context.Background(), cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	lines, _ := consume(t, sess)
	if drifts := filterType(t, lines, api.StreamDrift); len(drifts) != 0 {
		t.Errorf("stable series fired %d drift events: %s", len(drifts), drifts[0])
	}
}

func TestIdleEviction(t *testing.T) {
	reg, clock := newTestRegistry(t, Config{IdleTimeout: time.Minute})
	sess, err := reg.Open(context.Background(), testConfig())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	consume(t, sess) // session runs to completion and is now idle

	if n := reg.Sweep(); n != 0 {
		t.Fatalf("fresh session evicted (%d)", n)
	}
	clock.Advance(2 * time.Minute)
	if n := reg.Sweep(); n != 1 {
		t.Fatalf("Sweep evicted %d sessions, want 1", n)
	}
	if _, err := reg.Get(sess.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after eviction: %v, want ErrNotFound", err)
	}
	if reg.Len() != 0 {
		t.Errorf("registry still holds %d sessions", reg.Len())
	}
}

func TestAttachedStreamPreventsEviction(t *testing.T) {
	reg, clock := newTestRegistry(t, Config{IdleTimeout: time.Minute})
	sess, err := reg.Open(context.Background(), testConfig())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	sess.Subscribe()
	defer sess.Unsubscribe()
	clock.Advance(time.Hour)
	if n := reg.Sweep(); n != 0 {
		t.Errorf("Sweep evicted %d subscribed sessions, want 0", n)
	}
}

// TestDeleteWithAttachedStream deletes a still-producing session while
// a stream is attached: the stream must end cleanly with a deleted
// end event, and the sampler goroutine must exit.
func TestDeleteWithAttachedStream(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := testConfig()
	cfg.Steps = 10_000
	cfg.IntervalMS = 5 // paced: still producing when we delete
	reg, _ := newTestRegistry(t, Config{})
	sess, err := reg.Open(context.Background(), cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	type result struct {
		reason  string
		samples int
	}
	got := make(chan result, 1)
	go func() {
		lines, reason := consume(t, sess)
		got <- result{reason, len(filterType(t, lines, api.StreamSample))}
	}()

	// Let a few samples through, then delete mid-stream.
	waitFor(t, func() bool { return sess.Snapshot().Total >= 3 })
	if err := reg.Delete(sess.ID); err != nil {
		t.Fatalf("delete: %v", err)
	}
	res := <-got
	if res.reason != api.SessionDeleted {
		t.Errorf("stream end reason = %q, want deleted", res.reason)
	}
	if res.samples == 0 || res.samples >= cfg.Steps {
		t.Errorf("stream delivered %d samples, want a partial series", res.samples)
	}
	if err := reg.Delete(sess.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("second delete: %v, want ErrNotFound", err)
	}
	assertNoGoroutineLeak(t, before)
}

// TestDrainClosesStreams shuts the registry down under open streams:
// every stream ends with a drained end event and no goroutine leaks.
func TestDrainClosesStreams(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := testConfig()
	cfg.Steps = 10_000
	cfg.IntervalMS = 5
	reg, _ := newTestRegistry(t, Config{})

	var sessions []*Session
	for i := 0; i < 2; i++ {
		sess, err := reg.Open(context.Background(), cfg)
		if err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
		sessions = append(sessions, sess)
	}
	reasons := make(chan string, len(sessions))
	for _, sess := range sessions {
		go func(sess *Session) {
			_, reason := consume(t, sess)
			reasons <- reason
		}(sess)
	}
	waitFor(t, func() bool {
		for _, sess := range sessions {
			if sess.Snapshot().Total < 2 {
				return false
			}
		}
		return true
	})

	reg.Close()
	for range sessions {
		if reason := <-reasons; reason != api.SessionDrained {
			t.Errorf("stream end reason = %q, want drained", reason)
		}
	}
	// Close is idempotent and the registry rejects new sessions.
	reg.Close()
	if _, err := reg.Open(context.Background(), testConfig()); !errors.Is(err, ErrClosed) {
		t.Errorf("Open after Close: %v, want ErrClosed", err)
	}
	assertNoGoroutineLeak(t, before)
}

func TestSessionLimit(t *testing.T) {
	cfg := testConfig()
	cfg.Steps = 10_000
	cfg.IntervalMS = 5
	reg, _ := newTestRegistry(t, Config{MaxSessions: 1})
	if _, err := reg.Open(context.Background(), cfg); err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := reg.Open(context.Background(), cfg); !errors.Is(err, ErrTooManySessions) {
		t.Errorf("second open: %v, want ErrTooManySessions", err)
	}
}

// TestFinishedSessionsDoNotCountAgainstLimit: the limit bounds pinned
// workers, so a completed (but still queryable) session must not
// block new ones.
func TestFinishedSessionsDoNotCountAgainstLimit(t *testing.T) {
	reg, _ := newTestRegistry(t, Config{MaxSessions: 1})
	first, err := reg.Open(context.Background(), testConfig())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	consume(t, first) // runs to completion; worker released
	second, err := reg.Open(context.Background(), testConfig())
	if err != nil {
		t.Fatalf("open after first finished: %v", err)
	}
	consume(t, second)
	// Both stay queryable: finished sessions are retained, not leaked
	// into the active budget.
	if reg.Len() != 2 {
		t.Errorf("registry holds %d sessions, want 2", reg.Len())
	}
}

// TestRetainedSessionsStayBounded floods the registry with short
// sessions: the map must stay below the retention cap by displacing
// the least recently accessed finished sessions.
func TestRetainedSessionsStayBounded(t *testing.T) {
	reg, _ := newTestRegistry(t, Config{MaxSessions: 2})
	cfg := testConfig()
	cfg.Steps = 4 // quick
	for i := 0; i < 3*retainedPerActive; i++ {
		sess, err := reg.Open(context.Background(), cfg)
		if err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
		consume(t, sess)
	}
	if cap := 2 * retainedPerActive; reg.Len() > cap {
		t.Errorf("registry retains %d sessions, want <= %d", reg.Len(), cap)
	}
}

// TestLateAttachReplaysRetainedTail: a reader that starts before the
// log's retention window resumes from the oldest retained line
// instead of stalling or re-reading.
func TestLateAttachReplaysRetainedTail(t *testing.T) {
	cfg := testConfig()
	cfg.Steps = 64
	cfg.Capacity = 16 // logCap 2*16+16 = 48 < ~73 emitted lines
	cfg.WindowSize = 8
	reg, _ := newTestRegistry(t, Config{})
	sess, err := reg.Open(context.Background(), cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	// Attach only after the session finished, so the retention window
	// has certainly slid past the early lines.
	waitFor(t, func() bool { return sess.State() == api.SessionDone })
	lines, reason := consume(t, sess)
	if reason != api.SessionDone {
		t.Fatalf("end reason = %q", reason)
	}
	samples := filterType(t, lines, api.StreamSample)
	if len(samples) == 0 || len(samples) >= 64 {
		t.Errorf("late attach delivered %d samples, want a non-empty strict tail", len(samples))
	}
	var first api.StreamEvent
	if err := json.Unmarshal(samples[0], &first); err != nil {
		t.Fatal(err)
	}
	if first.Sample.Step == 0 {
		t.Error("tail replay starts at step 0; expected older lines to be dropped")
	}
	var last api.StreamEvent
	if err := json.Unmarshal(samples[len(samples)-1], &last); err != nil {
		t.Fatal(err)
	}
	if last.Sample.Step != 63 {
		t.Errorf("tail replay ends at step %d, want 63", last.Sample.Step)
	}
}

func TestOpenValidatesRequest(t *testing.T) {
	reg, _ := newTestRegistry(t, Config{})
	bad := testConfig()
	bad.WindowSize = 1
	if _, err := reg.Open(context.Background(), bad); !errors.Is(err, api.ErrBadRequest) {
		t.Errorf("Open(bad) = %v, want ErrBadRequest", err)
	}
}

// waitFor polls cond until true or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached before deadline")
}

// assertNoGoroutineLeak polls until the goroutine count returns to the
// baseline (allowing runtime helpers), failing with stacks otherwise.
func assertNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var n int
	for time.Now().Before(deadline) {
		n = runtime.NumGoroutine()
		if n <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	t.Errorf("goroutine leak: %d before, %d after\n%s", before, n, buf)
}
