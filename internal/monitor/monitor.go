// Package monitor is the continuous-monitoring subsystem of the
// measurement service: long-lived sessions that observe a
// configuration over virtual time instead of answering one-shot
// requests.
//
// The paper shows counter error is not a one-shot constant — placement
// (Section 6), multiplexing phase (Section 9), and sampling interact
// with *when* a measurement happens — so a production service must
// watch the corrected estimate continuously and notice when it moves.
// A Session does exactly that: it pins one pooled worker
// (service.Pin), ticks the simulated kernel through one measurement
// per virtual-time step, corrects each raw count with the cached
// calibration, appends the sample to a windowed ring store
// (internal/tsdb), and runs confidence-interval-overlap drift
// detection over the window summaries. The Registry owns the sessions:
// it creates them, evicts the idle, and drains them all on shutdown so
// attached streams end cleanly.
//
// Determinism carries over from the request path: a session's sample
// series is a pure function of its normalized configuration (worker
// Reset before sampling, seeds derived from the configured base), so
// two sessions with identical configurations produce byte-identical
// event lines — the property cmd/pcload's -monitor workload
// cross-checks over live NDJSON streams.
package monitor

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/service"
)

// Errors reported by the registry.
var (
	// ErrTooManySessions reports that MaxSessions sessions already exist.
	ErrTooManySessions = errors.New("monitor: too many sessions")
	// ErrClosed reports an operation on a drained registry.
	ErrClosed = errors.New("monitor: registry closed")
	// ErrNotFound reports an unknown session ID.
	ErrNotFound = errors.New("monitor: no such session")
)

// retainedPerActive scales MaxSessions into the bound on *finished*
// sessions kept queryable for snapshots and stream replay: when the
// map exceeds MaxSessions*retainedPerActive, the least recently
// accessed ended session is dropped to make room. Active sessions are
// never displaced (they number at most MaxSessions).
const retainedPerActive = 4

// Config sizes a registry.
type Config struct {
	// MaxSessions bounds *active* sessions — ones still producing, each
	// pinning a pooled worker — so the bound protects /measure traffic
	// from starvation. Finished sessions stay queryable without counting
	// against it (their retention is bounded separately and by idle
	// eviction). Zero means 16.
	MaxSessions int
	// IdleTimeout is how long a session may go without client activity
	// (snapshot, attached stream) before the janitor evicts it. Zero
	// means 2 minutes.
	IdleTimeout time.Duration
	// SweepInterval is the janitor's cadence. Zero means 15 seconds;
	// negative disables the janitor (tests drive Sweep directly).
	SweepInterval time.Duration
	// PinTimeout bounds how long opening a session may wait for a free
	// worker. Zero means 10 seconds.
	PinTimeout time.Duration
	// Now is the registry's clock; nil means time.Now. Tests inject a
	// fake clock to drive eviction deterministically.
	Now func() time.Time
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 16
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.SweepInterval == 0 {
		c.SweepInterval = 15 * time.Second
	}
	if c.PinTimeout <= 0 {
		c.PinTimeout = 10 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Registry owns the monitoring sessions of one service instance. It is
// safe for concurrent use.
type Registry struct {
	svc *service.Service
	cfg Config

	mu       sync.Mutex
	sessions map[string]*Session
	nextID   int
	closed   bool

	wg          sync.WaitGroup // sampler goroutines
	janitorStop chan struct{}
	janitorDone chan struct{}
}

// NewRegistry builds a registry over svc's worker pools and starts the
// idle-session janitor (unless disabled).
func NewRegistry(svc *service.Service, cfg Config) *Registry {
	r := &Registry{
		svc:      svc,
		cfg:      cfg.withDefaults(),
		sessions: make(map[string]*Session),
	}
	if r.cfg.SweepInterval > 0 {
		r.janitorStop = make(chan struct{})
		r.janitorDone = make(chan struct{})
		go r.janitor()
	}
	return r
}

// janitor periodically evicts idle sessions until Close.
func (r *Registry) janitor() {
	defer close(r.janitorDone)
	t := time.NewTicker(r.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			r.Sweep()
		case <-r.janitorStop:
			return
		}
	}
}

// Open creates a session for req, pins a worker for it, and starts its
// sampler. The returned session is already registered and streaming.
func (r *Registry) Open(ctx context.Context, req api.SessionRequest) (*Session, error) {
	norm, err := req.Normalized()
	if err != nil {
		return nil, err
	}

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	if r.activeLocked() >= r.cfg.MaxSessions {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w (limit %d)", ErrTooManySessions, r.cfg.MaxSessions)
	}
	r.nextID++
	id := fmt.Sprintf("s%d", r.nextID)
	r.mu.Unlock()

	// Pinning can wait on pool pressure and calibration can compute;
	// neither holds the registry lock, so other sessions are unaffected.
	pinCtx, cancel := context.WithTimeout(ctx, r.cfg.PinTimeout)
	defer cancel()
	w, err := r.svc.Pin(pinCtx, norm.Measure)
	if err != nil {
		return nil, fmt.Errorf("monitor: pinning worker: %w", err)
	}
	cal, err := w.Calibration(norm.Measure)
	if err != nil {
		w.Release()
		return nil, err
	}

	sess, err := newSession(id, norm, cal, r.cfg.Now)
	if err != nil {
		w.Release()
		return nil, err
	}

	r.mu.Lock()
	if r.closed || r.activeLocked() >= r.cfg.MaxSessions {
		closed := r.closed
		r.mu.Unlock()
		w.Release()
		if closed {
			return nil, ErrClosed
		}
		return nil, fmt.Errorf("%w (limit %d)", ErrTooManySessions, r.cfg.MaxSessions)
	}
	r.evictOverflowLocked()
	r.sessions[id] = sess
	r.wg.Add(1)
	r.mu.Unlock()

	go func() {
		defer r.wg.Done()
		defer w.Release()
		sess.run(w.System())
	}()
	return sess, nil
}

// activeLocked counts sessions still producing (and therefore still
// pinning a worker). Callers hold r.mu.
func (r *Registry) activeLocked() int {
	n := 0
	for _, sess := range r.sessions {
		if !sess.Ended() {
			n++
		}
	}
	return n
}

// evictOverflowLocked keeps the retained-session map bounded: when it
// is full, the least recently accessed *ended* sessions are forgotten
// to make room for one more. Callers hold r.mu.
func (r *Registry) evictOverflowLocked() {
	for len(r.sessions) >= r.cfg.MaxSessions*retainedPerActive {
		oldestID := ""
		var oldest time.Time
		for id, sess := range r.sessions {
			if !sess.Ended() {
				continue
			}
			if at := sess.lastAccessed(); oldestID == "" || at.Before(oldest) {
				oldestID, oldest = id, at
			}
		}
		if oldestID == "" {
			return // all active; activeLocked bound keeps this impossible
		}
		delete(r.sessions, oldestID)
	}
}

// Get returns a session by ID.
func (r *Registry) Get(id string) (*Session, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	sess, ok := r.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return sess, nil
}

// Delete removes a session: sampling stops, attached streams receive
// their remaining events plus an end event, and the ID is forgotten.
func (r *Registry) Delete(id string) error {
	r.mu.Lock()
	sess, ok := r.sessions[id]
	if ok {
		delete(r.sessions, id)
	}
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	sess.close(api.SessionDeleted, "")
	return nil
}

// Active returns how many sessions are currently producing (each
// pinning a pool worker) — the number /healthz reports.
func (r *Registry) Active() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.activeLocked()
}

// Len returns how many sessions are registered.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// Stats snapshots the registry's gauges under one lock acquisition:
// Active is sessions still producing (each pinning a worker), Retained
// is every registered session including ended ones kept for replay.
// One snapshot feeds both /healthz and /metrics so the views agree.
func (r *Registry) Stats() (active, retained int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.activeLocked(), len(r.sessions)
}

// IDs returns the registered session IDs in order.
func (r *Registry) IDs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := make([]string, 0, len(r.sessions))
	for id := range r.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Sweep evicts every session that has been idle (no snapshot and no
// attached stream) longer than IdleTimeout, and returns how many it
// evicted. The janitor calls this periodically; tests call it
// directly with an injected clock.
func (r *Registry) Sweep() int {
	now := r.cfg.Now()
	r.mu.Lock()
	var evict []*Session
	for id, sess := range r.sessions {
		if sess.idleSince(now) > r.cfg.IdleTimeout {
			evict = append(evict, sess)
			delete(r.sessions, id)
		}
	}
	r.mu.Unlock()
	for _, sess := range evict {
		sess.close(api.SessionEvicted, "")
	}
	return len(evict)
}

// Close drains the registry: the janitor stops, every session ends
// with a drained end event (so attached streams terminate cleanly),
// and Close blocks until every sampler goroutine has exited and
// released its worker. Idempotent. Sessions stay readable afterwards —
// snapshots and stream replays of already-produced events still work —
// but no new session can be opened.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	sessions := make([]*Session, 0, len(r.sessions))
	for _, sess := range r.sessions {
		sessions = append(sessions, sess)
	}
	r.mu.Unlock()

	if r.janitorStop != nil {
		close(r.janitorStop)
		<-r.janitorDone
	}
	for _, sess := range sessions {
		sess.close(api.SessionDrained, "")
	}
	r.wg.Wait()
}
