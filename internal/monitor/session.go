package monitor

import (
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/evlog"
	stackpkg "repro/internal/stack"
	"repro/internal/tsdb"
)

// quantizationSlack widens each window interval by half a count on
// both sides before the overlap test. Counter values are integers, so
// two windows whose means differ by less than one count are
// indistinguishable even when their dispersion intervals are
// degenerate points; the slack keeps a jitter-free series from firing
// spurious drift events.
const quantizationSlack = 0.5

// Session is one continuous monitoring run: a pinned worker measuring
// one configuration per virtual-time step, a windowed ring store of
// the corrected samples, and an append-only event log that snapshots
// and NDJSON streams read from. All mutable state is behind mu; the
// sampler goroutine is the only writer of samples.
type Session struct {
	// ID addresses the session on the wire.
	ID string

	cfg  api.SessionRequest
	cal  core.Calibration
	creq core.Request

	// stop ends the sampler early (delete, eviction, drain).
	stop     chan struct{}
	stopOnce sync.Once

	mu       sync.Mutex
	store    *tsdb.Store
	state    string
	failure  string
	baseline *tsdb.Window // drift-detection reference window
	drifts   []api.DriftInfo
	// log is the bounded NDJSON event log streams read from. Its
	// retention covers two rings' worth of samples, so streams that
	// attach while the full log is retained (any attach within Capacity
	// samples of the start — pcload attaches immediately) replay the
	// complete series; later attaches replay the tail.
	log *evlog.Log
}

// newSession builds a registered-but-not-yet-running session.
func newSession(id string, cfg api.SessionRequest, cal core.Calibration, now func() time.Time) (*Session, error) {
	store, err := tsdb.New(tsdb.Config{
		Capacity:   cfg.Capacity,
		WindowSize: cfg.WindowSize,
		Confidence: cfg.Confidence,
	})
	if err != nil {
		return nil, err
	}
	creq, err := cfg.Measure.Build()
	if err != nil {
		return nil, err
	}
	return &Session{
		ID:    id,
		cfg:   cfg,
		cal:   cal,
		creq:  creq,
		stop:  make(chan struct{}),
		store: store,
		state: api.SessionRunning,
		// Per Capacity samples the log gains at most one sample line
		// plus one window line per WindowSize >= 2 samples plus one
		// drift line per window, so 2x Capacity (and slack for the end
		// event) always covers a full sample ring.
		log: evlog.New(2*cfg.Capacity+16, now),
	}, nil
}

// run is the sampler: one measurement per step on the pinned system,
// paced by IntervalMS wall time but timestamped in virtual time. The
// system is Reset once up front — the same discipline as the request
// path — so the sample series is a pure function of the configuration.
func (s *Session) run(sys *stackpkg.System) {
	sys.Reset()
	var vt float64
	interval := time.Duration(s.cfg.IntervalMS) * time.Millisecond
	for step := 0; step < s.cfg.Steps; step++ {
		select {
		case <-s.stop:
			return // the closer already wrote the end event
		default:
		}
		s.creq.Seed = s.cfg.Measure.Seed + uint64(step)
		m, err := sys.Measure(s.creq)
		if err != nil {
			s.close(api.SessionFailed, err.Error())
			return
		}
		raw := float64(m.Deltas[0])
		if inj := s.cfg.Inject; inj != nil && step >= inj.AfterStep {
			raw += inj.Offset
		}
		vt += m.Cycles
		s.observe(tsdb.Sample{
			Step:  step,
			Time:  vt,
			Raw:   raw,
			Value: raw - s.cal.Offset,
		})
		if interval > 0 && step+1 < s.cfg.Steps {
			t := time.NewTimer(interval)
			select {
			case <-s.stop:
				t.Stop()
				return
			case <-t.C:
			}
		}
	}
	s.close(api.SessionDone, "")
}

// observe appends one sample to the store and the event log, emitting
// window and drift events as windows complete. Dropped silently if the
// session already ended (a closer won the race mid-measurement): the
// log appends atomically and refuses events after its end event.
func (s *Session) observe(p tsdb.Sample) {
	s.mu.Lock()
	if s.log.Ended() {
		s.mu.Unlock()
		return
	}
	w, completed := s.store.Append(p)
	sp := samplePoint(p)
	events := []any{api.StreamEvent{Type: api.StreamSample, Sample: &sp}}
	if completed {
		wi := windowInfo(w)
		events = append(events, api.StreamEvent{Type: api.StreamWindow, Window: &wi})
		if drift, ok := s.detectLocked(w); ok {
			s.drifts = append(s.drifts, drift)
			events = append(events, api.StreamEvent{Type: api.StreamDrift, Drift: &drift})
		}
	}
	s.mu.Unlock()
	s.log.Append(events...)
}

// detectLocked runs the drift rule on a completed window: the first
// window becomes the baseline; a later window whose (slack-widened)
// confidence interval fails to overlap the baseline's is a drift
// event, and becomes the new baseline so a persistent shift fires
// once, not once per window.
func (s *Session) detectLocked(w tsdb.Window) (api.DriftInfo, bool) {
	if s.baseline == nil {
		base := w
		s.baseline = &base
		return api.DriftInfo{}, false
	}
	b := *s.baseline
	if overlap(b, w) {
		return api.DriftInfo{}, false
	}
	base := w
	s.baseline = &base
	return api.DriftInfo{
		Step:       w.LastStep,
		FromWindow: b.Index,
		Window:     w.Index,
		Shift:      w.Est.Corrected - b.Est.Corrected,
		Baseline:   api.EstimateInfoFrom(s.cfg.Measure.Events[0], b.Est),
		Current:    api.EstimateInfoFrom(s.cfg.Measure.Events[0], w.Est),
	}, true
}

// overlap reports whether two windows' slack-widened confidence
// intervals intersect.
func overlap(a, b tsdb.Window) bool {
	return a.Est.CI.Lo-quantizationSlack <= b.Est.CI.Hi+quantizationSlack &&
		b.Est.CI.Lo-quantizationSlack <= a.Est.CI.Hi+quantizationSlack
}

// close ends the session with a final end event carrying the reason.
// Idempotent: the first closer (sampler completion, delete, eviction,
// drain, failure) wins — the log's End gate decides the race — and
// later calls are no-ops.
func (s *Session) close(state, failure string) {
	if !s.log.End(api.StreamEvent{Type: api.StreamEnd, Reason: state, Error: failure}) {
		return
	}
	s.mu.Lock()
	s.state = state
	s.failure = failure
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stop) })
}

// Events exposes the event log's replay-then-follow read; see
// evlog.Log.Events.
func (s *Session) Events(i int) (lines [][]byte, next int, wait <-chan struct{}, done bool) {
	return s.log.Events(i)
}

// Subscribe registers an attached stream; subscribed sessions are
// never evicted as idle.
func (s *Session) Subscribe() { s.log.Subscribe() }

// Unsubscribe detaches a stream.
func (s *Session) Unsubscribe() { s.log.Unsubscribe() }

// idleSince returns how long the session has been without client
// activity. A session with an attached stream is never idle; a
// session nobody watches is idle from its last access even while its
// sampler still produces — eviction is what reclaims the pinned
// worker of an abandoned session.
func (s *Session) idleSince(now time.Time) time.Duration {
	return s.log.IdleSince(now)
}

// Config returns the normalized session configuration.
func (s *Session) Config() api.SessionRequest { return s.cfg }

// Ended reports whether the session has stopped producing (its end
// event is written and its worker released or releasing).
func (s *Session) Ended() bool { return s.log.Ended() }

// lastAccessed returns the last client-activity time.
func (s *Session) lastAccessed() time.Time { return s.log.LastAccess() }

// State returns the current session state.
func (s *Session) State() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Snapshot reports the session's current state and retained rings.
func (s *Session) Snapshot() api.SessionSnapshot {
	s.log.Touch()
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := api.SessionSnapshot{
		ID:     s.ID,
		Config: s.cfg,
		State:  s.state,
		Total:  s.store.Total(),
		Drifts: append([]api.DriftInfo(nil), s.drifts...),
		Calibration: &api.CalibrationInfo{
			Offset:   s.cal.Offset,
			Strategy: s.cal.Strategy,
			Samples:  s.cal.Samples,
		},
	}
	for _, p := range s.store.Samples() {
		snap.Samples = append(snap.Samples, samplePoint(p))
	}
	for _, w := range s.store.Windows() {
		snap.Windows = append(snap.Windows, windowInfo(w))
	}
	return snap
}

// samplePoint converts a store sample to its wire form.
func samplePoint(p tsdb.Sample) api.SamplePoint {
	return api.SamplePoint{Step: p.Step, Time: p.Time, Raw: p.Raw, Value: p.Value}
}

// windowInfo converts a window summary to its wire form.
func windowInfo(w tsdb.Window) api.WindowInfo {
	return api.WindowInfo{
		Index:     w.Index,
		FirstStep: w.FirstStep,
		LastStep:  w.LastStep,
		Start:     w.Start,
		End:       w.End,
		Min:       w.Min,
		Max:       w.Max,
		Estimate:  api.EstimateInfoFrom("", w.Est),
	}
}
