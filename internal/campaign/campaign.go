// Package campaign is the adversarial counter-validation subsystem:
// sweeps of randomized generated programs (internal/campaign/gen), each
// with an analytically known ground-truth event vector, driven through
// the service's own measurement, inference, and planning paths to
// attack its models. Every broken promise — engines diverging,
// invariants refuted by joint inference, fusion widening an interval it
// may only tighten, confidence intervals missing the analytic truth
// beyond their advertised rate — streams out as a finding. A campaign
// over a correctly specified system produces zero findings, the
// property the CI smoke job and the stock-model tests pin.
//
// Determinism carries over from the request path: the sweep is a pure
// function of the normalized campaign request — program seeds derive
// from the campaign seed, checks run on a fixed cadence, and results
// are emitted in program order regardless of worker interleaving — so
// identical requests produce byte-identical NDJSON event streams, the
// property cmd/pcload's -campaign workload cross-checks over HTTP.
package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/bayes"
	"repro/internal/campaign/gen"
	"repro/internal/cpu"
	"repro/internal/evlog"
	"repro/internal/xrand"
)

// Check thresholds. The audits must tolerate the service's *advertised*
// slop (intervals miss at the nominal rate, float fusion carries
// rounding) while still catching model misspecification; these
// constants draw that line.
const (
	// MaxFindingsPerProgram caps the findings one program streams; the
	// program event still counts every finding. One broken invariant
	// fires on most programs of a sweep, and streaming thousands of
	// copies would bury the signal (and the log retention) in duplicates.
	MaxFindingsPerProgram = 16
	// coverageSlack widens each audited interval by half a count per
	// side: counts are integers, so truth within half a count of the
	// interval edge is indistinguishable from covered.
	coverageSlack = 0.5
	// grossMissSigma and grossMissFloor define a per-interval gross
	// miss: individual intervals are *allowed* to miss the truth at the
	// nominal rate, so a single miss is only a finding when the truth
	// sits implausibly far outside — beyond grossMissSigma standard
	// errors AND grossMissFloor counts. Ordinary misses are judged in
	// aggregate by the coverage-rate audit.
	grossMissSigma = 12.0
	grossMissFloor = 16.0
	// widthTol is the relative+absolute slack of the never-wider checks
	// (posterior vs prior, fused vs naive): fusion math is float, so
	// exact comparison would indict rounding, not the model.
	widthTol = 1e-9
	// minCoverageChecks gates the sweep-wide coverage-rate finding: the
	// four-sigma binomial bound is meaningless on a handful of trials.
	minCoverageChecks = 50
	// coverageSigmas is the binomial slack of the coverage-rate audit:
	// the observed miss rate must exceed the nominal rate by more than
	// this many binomial standard deviations to be a finding.
	coverageSigmas = 4.0
)

// Services are the request paths a campaign attacks. The campaign
// depends only on these functions — the server front end wires them to
// the service and planner — so campaign tests can interpose failures.
type Services struct {
	Measure func(ctx context.Context, req api.MeasureRequest) (*api.MeasureResponse, error)
	Infer   func(ctx context.Context, req api.InferRequest) (*api.InferResponse, error)
	Plan    func(ctx context.Context, req api.PlanRequest) (*api.PlanResponse, error)
}

// Campaign is one running (or finished) sweep: a worker pool driving
// the checks program by program, and an append-only event log that
// snapshots and NDJSON streams read from.
type Campaign struct {
	// ID addresses the campaign on the wire.
	ID string

	cfg  api.CampaignRequest
	svc  Services
	inv  func(*cpu.Model) bayes.Model
	conc int

	ctx    context.Context
	cancel context.CancelFunc

	mu            sync.Mutex
	state         string
	failure       string
	programs      int
	measurements  int
	findings      []api.CampaignFinding
	findingsTotal int
	covChecked    int
	covMisses     int

	// log is the event log streams read from. Its retention covers the
	// whole sweep (findings are capped per program), so any attach
	// replays the complete stream — the determinism tests compare full
	// replays.
	log *evlog.Log
}

// newCampaign builds a registered-but-not-yet-running campaign for a
// normalized request.
func newCampaign(id string, norm api.CampaignRequest, svc Services, cfg Config) *Campaign {
	ctx, cancel := context.WithCancel(context.Background())
	return &Campaign{
		ID:     id,
		cfg:    norm,
		svc:    svc,
		inv:    cfg.Invariants,
		conc:   cfg.Concurrency,
		ctx:    ctx,
		cancel: cancel,
		state:  api.SessionRunning,
		log:    evlog.New(norm.Programs*(MaxFindingsPerProgram+1)+16, cfg.Now),
	}
}

// progResult is one program's outcome, handed from a worker to the
// in-order emitter.
type progResult struct {
	prog     api.CampaignProgram
	findings []api.CampaignFinding
	err      error
}

// run executes the sweep: workers process programs concurrently, the
// emitter streams each program's events strictly in index order, so the
// stream is deterministic regardless of scheduling. Every result
// channel is buffered and every index receives exactly one send, so
// neither side can deadlock when the campaign is closed mid-sweep.
func (c *Campaign) run() {
	n := c.cfg.Programs
	results := make([]chan progResult, n)
	for i := range results {
		results[i] = make(chan progResult, 1)
	}
	sem := make(chan struct{}, c.conc)
	go func() {
		for i := 0; i < n; i++ {
			select {
			case <-c.ctx.Done():
				results[i] <- progResult{err: c.ctx.Err()}
				continue
			case sem <- struct{}{}:
			}
			go func(i int) {
				defer func() { <-sem }()
				results[i] <- c.runProgram(i)
			}(i)
		}
	}()

	for i := 0; i < n; i++ {
		res := <-results[i]
		if res.err != nil {
			c.close(api.SessionFailed, res.err.Error())
			return
		}
		events := make([]any, 0, len(res.findings)+1)
		for j := range res.findings {
			if j == MaxFindingsPerProgram {
				break
			}
			f := res.findings[j]
			events = append(events, api.CampaignEvent{Type: api.CampaignEventFinding, Finding: &f})
		}
		prog := res.prog
		prog.Findings = len(res.findings)
		events = append(events, api.CampaignEvent{Type: api.CampaignEventProgram, Program: &prog})
		c.mu.Lock()
		c.programs++
		c.measurements += prog.Measurements
		c.recordFindingsLocked(res.findings)
		c.covChecked += prog.Checked
		c.covMisses += prog.Checked - prog.Covered
		c.mu.Unlock()
		if !c.log.Append(events...) {
			return // closed mid-sweep; the closer wrote the end event
		}
	}

	cov := c.coverage()
	if f, bad := coverageFinding(cov); bad {
		c.mu.Lock()
		c.recordFindingsLocked([]api.CampaignFinding{f})
		c.mu.Unlock()
		c.log.Append(api.CampaignEvent{Type: api.CampaignEventFinding, Finding: &f})
	}
	sum := c.summary()
	c.log.Append(api.CampaignEvent{Type: api.CampaignEventSummary, Summary: &sum})
	c.close(api.SessionDone, "")
}

// recordFindingsLocked adds findings to the running totals and the
// snapshot's retained prefix. Callers hold c.mu.
func (c *Campaign) recordFindingsLocked(findings []api.CampaignFinding) {
	c.findingsTotal += len(findings)
	for _, f := range findings {
		if len(c.findings) >= api.MaxSnapshotFindings {
			break
		}
		c.findings = append(c.findings, f)
	}
}

// runProgram generates program i and drives every scheduled check over
// every selected processor, returning the program summary and findings.
func (c *Campaign) runProgram(i int) progResult {
	class := gen.Class(c.cfg.Classes[i%len(c.cfg.Classes)])
	seed := xrand.Mix(c.cfg.Seed, uint64(i))
	if seed == 0 {
		// Measurement normalization canonicalizes seed 0 to the default;
		// clamping here keeps the echoed requests equal to the issued ones.
		seed = 1
	}
	p, err := gen.New(class, seed, c.cfg.Scale)
	if err != nil {
		return progResult{err: fmt.Errorf("campaign: generating program %d: %w", i, err)}
	}
	prog := api.CampaignProgram{
		Index:         i,
		Spec:          p.Spec(),
		Class:         string(class),
		ExpectedInstr: int(p.ExpectedInstr()),
	}
	var findings []api.CampaignFinding
	finding := func(processor, check string, f api.CampaignFinding) {
		f.Program, f.Spec, f.Processor, f.Check = i, prog.Spec, processor, check
		findings = append(findings, f)
	}
	every := func(n int) bool { return n > 0 && i%n == 0 }
	instr, cycles := cpu.EventInstrRetired.String(), cpu.EventCoreCycles.String()

	for _, tag := range c.cfg.Processors {
		model, err := cpu.ModelByTag(tag)
		if err != nil {
			return progResult{err: fmt.Errorf("campaign: %w", err)}
		}
		base := api.MeasureRequest{
			Processor: tag,
			Stack:     c.cfg.Stack,
			Bench:     prog.Spec,
			Pattern:   c.cfg.Pattern,
			Events:    []string{instr, cycles},
			Runs:      c.cfg.Runs,
			Seed:      seed,
			Calibrate: true,
		}
		resp, err := c.svc.Measure(c.ctx, base)
		if err != nil {
			return progResult{err: fmt.Errorf("campaign: measuring %s on %s: %w", prog.Spec, tag, err)}
		}
		prog.Measurements++

		// Coverage audit: does the calibrated interval contain the
		// analytic ground truth? Misses tally toward the sweep-wide rate;
		// only an implausibly distant miss is a finding on its own.
		if est := resp.Accuracy; est != nil {
			prog.Checked++
			truth := float64(resp.Expected)
			if est.Lo-coverageSlack <= truth && truth <= est.Hi+coverageSlack {
				prog.Covered++
			} else {
				dist := math.Abs(est.Corrected - truth)
				sigma := math.Inf(1)
				if est.StdErr > 0 {
					sigma = dist / est.StdErr
				}
				if sigma > grossMissSigma && dist > grossMissFloor {
					finding(tag, api.CheckCIGrossMiss, api.CampaignFinding{
						Sigma: sigma,
						Detail: fmt.Sprintf("calibrated %s interval [%g, %g] misses the analytic count %g by %g counts (%.1f standard errors)",
							est.Event, est.Lo, est.Hi, truth, dist, sigma),
					})
				}
			}
		}

		// Engine divergence: the interpreter must reproduce the compiled
		// engine's response byte for byte (only the echoed engine differs).
		if every(c.cfg.EngineEvery) {
			alt := base
			alt.Engine = api.EngineInterpreter
			resp2, err := c.svc.Measure(c.ctx, alt)
			if err != nil {
				return progResult{err: fmt.Errorf("campaign: re-measuring %s on %s (interpreter): %w", prog.Spec, tag, err)}
			}
			prog.Measurements++
			if detail := engineDivergence(resp, resp2); detail != "" {
				finding(tag, api.CheckEngineDivergence, api.CampaignFinding{Detail: detail})
			}
		}

		// Inference cross-check: jointly infer the measured events under
		// the processor's invariants. A violated residual refutes the
		// model; a posterior interval wider than its prior refutes the
		// solver's own contract.
		if every(c.cfg.InferEvery) {
			if fs, err := c.checkInfer(base, model, instr, cycles); err != nil {
				return progResult{err: err}
			} else {
				for _, f := range fs {
					finding(tag, f.Check, f)
				}
			}
		}

		// Planner cross-check: a single-counter (forced multiplexed) plan
		// must fuse to intervals no wider than its naive per-group ones.
		if every(c.cfg.PlanEvery) {
			if fs, err := c.checkPlan(base, instr, cycles); err != nil {
				return progResult{err: err}
			} else {
				for _, f := range fs {
					finding(tag, f.Check, f)
				}
			}
		}
	}
	return progResult{prog: prog, findings: findings}
}

// checkInfer runs the joint inference over the program's measured
// events with the campaign's invariant set and returns any findings
// (Check set; location fields filled by the caller).
func (c *Campaign) checkInfer(base api.MeasureRequest, model *cpu.Model, instr, cycles string) ([]api.CampaignFinding, error) {
	mi, mc := base, base
	mi.Events = []string{instr}
	mc.Events = []string{cycles}
	mc.Calibrate = false // canonical: calibration estimates instruction overhead only
	item := api.InferItem{
		Inputs:     []api.InferInput{{Measure: &mi}, {Measure: &mc}},
		Processor:  model.Tag,
		Confidence: c.cfg.Confidence,
		// The invariants are passed explicitly (library disabled) so a
		// mis-specified set — the planted-refutation tests — takes the
		// same path as the stock library.
		NoLibrary:   true,
		Constraints: c.inv(model).Restrict([]string{instr, cycles}).Constraints,
	}
	resp, err := c.svc.Infer(c.ctx, api.InferRequest{Items: []api.InferItem{item}})
	if err != nil {
		return nil, fmt.Errorf("campaign: inferring %s on %s: %w", base.Bench, model.Tag, err)
	}
	if len(resp.Results) != 1 {
		return nil, fmt.Errorf("campaign: infer returned %d results, want 1", len(resp.Results))
	}
	res := resp.Results[0]
	var findings []api.CampaignFinding
	for _, r := range res.Residuals {
		if !r.Violated {
			continue
		}
		findings = append(findings, api.CampaignFinding{
			Check:      api.CheckInvariantRefuted,
			Constraint: r.Constraint,
			Sigma:      r.Sigma,
			Detail: fmt.Sprintf("invariant %q refuted by the measured events: residual %g (%.1f standard errors)",
				r.Constraint, r.Value, r.Sigma),
		})
	}
	for k, ev := range res.Events {
		pw := res.Prior[k].Hi - res.Prior[k].Lo
		qw := res.Posterior[k].Hi - res.Posterior[k].Lo
		if qw > pw*(1+widthTol)+widthTol {
			findings = append(findings, api.CampaignFinding{
				Check: api.CheckPosteriorWidened,
				Detail: fmt.Sprintf("posterior interval of %s (width %g) wider than its prior (width %g)",
					ev, qw, pw),
			})
		}
	}
	return findings, nil
}

// checkPlan runs a single-counter plan over the program's events and
// returns a finding for every fused interval wider than its naive one.
func (c *Campaign) checkPlan(base api.MeasureRequest, instr, cycles string) ([]api.CampaignFinding, error) {
	m := base
	m.Events = []string{instr, cycles}
	m.Runs, m.Calibrate = 0, false // owned by the planner
	resp, err := c.svc.Plan(c.ctx, api.PlanRequest{
		Measure:        m,
		TargetRelWidth: c.cfg.TargetRelWidth,
		Confidence:     c.cfg.Confidence,
		// One counter forces the multiplexed schedule, so fusion has real
		// work to do and the never-wider promise is non-trivially tested.
		Counters: 1,
	})
	if err != nil {
		return nil, fmt.Errorf("campaign: planning %s on %s: %w", base.Bench, base.Processor, err)
	}
	var findings []api.CampaignFinding
	for _, est := range resp.Estimates {
		nw := est.Naive.Hi - est.Naive.Lo
		fw := est.Fused.Hi - est.Fused.Lo
		if fw > nw*(1+widthTol)+widthTol {
			findings = append(findings, api.CampaignFinding{
				Check: api.CheckFusedWiderThanNaive,
				Detail: fmt.Sprintf("fused interval of %s (width %g) wider than the naive one (width %g)",
					est.Event, fw, nw),
			})
		}
	}
	return findings, nil
}

// engineDivergence compares two measurement responses that must be
// byte-identical up to the echoed engine selector, returning an empty
// string when they agree and a description when they do not.
func engineDivergence(compiled, interp *api.MeasureResponse) string {
	a, b := *compiled, *interp
	a.Request.Engine, b.Request.Engine = "", ""
	ja, erra := json.Marshal(a)
	jb, errb := json.Marshal(b)
	if erra != nil || errb != nil {
		return fmt.Sprintf("marshaling responses for comparison: %v, %v", erra, errb)
	}
	if bytes.Equal(ja, jb) {
		return ""
	}
	return fmt.Sprintf("compiled and interpreter responses differ: %s vs %s", ja, jb)
}

// coverageFinding turns a completed sweep's coverage audit into a
// finding when the observed miss rate exceeds the binomial bound.
func coverageFinding(cov api.CoverageInfo) (api.CampaignFinding, bool) {
	if cov.N < minCoverageChecks || cov.Rate <= cov.Bound {
		return api.CampaignFinding{}, false
	}
	return api.CampaignFinding{
		Program: -1, // sweep-wide: no single program to blame
		Check:   api.CheckCoverageRate,
		Sigma:   (cov.Rate - cov.Nominal) / math.Sqrt(cov.Nominal*(1-cov.Nominal)/float64(cov.N)),
		Detail: fmt.Sprintf("confidence intervals missed the analytic truth %d/%d times (rate %.4f, nominal %.4f, bound %.4f)",
			cov.Misses, cov.N, cov.Rate, cov.Nominal, cov.Bound),
	}, true
}

// coverage assembles the sweep-wide audit from the running tallies.
func (c *Campaign) coverage() api.CoverageInfo {
	c.mu.Lock()
	checked, misses := c.covChecked, c.covMisses
	c.mu.Unlock()
	nominal := 1 - c.cfg.Confidence
	cov := api.CoverageInfo{N: checked, Misses: misses, Nominal: nominal, Bound: 1}
	if checked > 0 {
		cov.Rate = float64(misses) / float64(checked)
		cov.Bound = nominal + coverageSigmas*math.Sqrt(nominal*(1-nominal)/float64(checked))
	}
	return cov
}

// summary assembles the sweep totals.
func (c *Campaign) summary() api.CampaignSummary {
	cov := c.coverage()
	c.mu.Lock()
	defer c.mu.Unlock()
	return api.CampaignSummary{
		Programs:     c.programs,
		Measurements: c.measurements,
		Findings:     c.findingsTotal,
		Coverage:     cov,
	}
}

// close ends the campaign with a final end event carrying the reason.
// Idempotent: the first closer (sweep completion, delete, eviction,
// drain, failure) wins — the log's End gate decides the race — and the
// campaign's context is cancelled so in-flight checks abort.
func (c *Campaign) close(state, failure string) {
	if !c.log.End(api.CampaignEvent{Type: api.CampaignEventEnd, Reason: state, Error: failure}) {
		return
	}
	c.mu.Lock()
	c.state = state
	c.failure = failure
	c.mu.Unlock()
	c.cancel()
}

// Events exposes the event log's replay-then-follow read; see
// evlog.Log.Events.
func (c *Campaign) Events(i int) (lines [][]byte, next int, wait <-chan struct{}, done bool) {
	return c.log.Events(i)
}

// Subscribe registers an attached stream; subscribed campaigns are
// never evicted as idle.
func (c *Campaign) Subscribe() { c.log.Subscribe() }

// Unsubscribe detaches a stream.
func (c *Campaign) Unsubscribe() { c.log.Unsubscribe() }

// idleSince returns how long the campaign has been without client
// activity; zero while a stream is attached.
func (c *Campaign) idleSince(now time.Time) time.Duration {
	return c.log.IdleSince(now)
}

// Config returns the normalized campaign configuration.
func (c *Campaign) Config() api.CampaignRequest { return c.cfg }

// Ended reports whether the campaign has stopped producing.
func (c *Campaign) Ended() bool { return c.log.Ended() }

// lastAccessed returns the last client-activity time.
func (c *Campaign) lastAccessed() time.Time { return c.log.LastAccess() }

// State returns the current campaign state.
func (c *Campaign) State() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// Snapshot reports the campaign's progress and retained findings.
func (c *Campaign) Snapshot() api.CampaignSnapshot {
	c.log.Touch()
	cov := c.coverage()
	c.mu.Lock()
	defer c.mu.Unlock()
	return api.CampaignSnapshot{
		ID:            c.ID,
		Config:        c.cfg,
		State:         c.state,
		Programs:      c.programs,
		Measurements:  c.measurements,
		Findings:      append([]api.CampaignFinding(nil), c.findings...),
		FindingsTotal: c.findingsTotal,
		Coverage:      cov,
	}
}
