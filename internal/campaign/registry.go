package campaign

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/bayes"
	"repro/internal/cpu"
)

// Errors reported by the registry.
var (
	// ErrTooManyCampaigns reports that MaxCampaigns campaigns already run.
	ErrTooManyCampaigns = errors.New("campaign: too many campaigns")
	// ErrClosed reports an operation on a drained registry.
	ErrClosed = errors.New("campaign: registry closed")
	// ErrNotFound reports an unknown campaign ID.
	ErrNotFound = errors.New("campaign: no such campaign")
)

// retainedPerActive scales MaxCampaigns into the bound on *finished*
// campaigns kept queryable for snapshots and stream replay: when the
// map exceeds MaxCampaigns*retainedPerActive, the least recently
// accessed ended campaign is dropped to make room.
const retainedPerActive = 4

// Config sizes a registry.
type Config struct {
	// MaxCampaigns bounds *active* campaigns — sweeps still issuing
	// requests into the shared worker pools. Zero means 4: campaigns are
	// heavy (hundreds of measurements each), so the default is tighter
	// than the session registry's.
	MaxCampaigns int
	// IdleTimeout is how long a campaign may go without client activity
	// (snapshot, attached stream) before the janitor evicts it. Zero
	// means 2 minutes.
	IdleTimeout time.Duration
	// SweepInterval is the janitor's cadence. Zero means 15 seconds;
	// negative disables the janitor (tests drive Sweep directly).
	SweepInterval time.Duration
	// Concurrency is how many programs one campaign checks in parallel
	// (results are still emitted in program order). Zero means 2.
	Concurrency int
	// Invariants supplies the constraint model the inference cross-check
	// attacks each processor with; nil means the built-in library
	// (bayes.Library). Tests inject mis-specified models to prove the
	// campaign catches them — the planted-refutation hook.
	Invariants func(*cpu.Model) bayes.Model
	// Now is the registry's clock; nil means time.Now.
	Now func() time.Time
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.MaxCampaigns <= 0 {
		c.MaxCampaigns = 4
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.SweepInterval == 0 {
		c.SweepInterval = 15 * time.Second
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 2
	}
	if c.Invariants == nil {
		c.Invariants = bayes.Library
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Registry owns the campaigns of one service instance. It is safe for
// concurrent use.
type Registry struct {
	svc Services
	cfg Config

	mu        sync.Mutex
	campaigns map[string]*Campaign
	nextID    int
	closed    bool

	wg          sync.WaitGroup // sweep goroutines
	janitorStop chan struct{}
	janitorDone chan struct{}
}

// NewRegistry builds a registry over the given request paths and starts
// the idle-campaign janitor (unless disabled).
func NewRegistry(svc Services, cfg Config) *Registry {
	r := &Registry{
		svc:       svc,
		cfg:       cfg.withDefaults(),
		campaigns: make(map[string]*Campaign),
	}
	if r.cfg.SweepInterval > 0 {
		r.janitorStop = make(chan struct{})
		r.janitorDone = make(chan struct{})
		go r.janitor()
	}
	return r
}

// janitor periodically evicts idle campaigns until Close.
func (r *Registry) janitor() {
	defer close(r.janitorDone)
	t := time.NewTicker(r.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			r.Sweep()
		case <-r.janitorStop:
			return
		}
	}
}

// Open normalizes req, registers a campaign for it, and starts its
// sweep. The returned campaign is already streaming.
func (r *Registry) Open(req api.CampaignRequest) (*Campaign, error) {
	norm, err := req.Normalized()
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	if r.activeLocked() >= r.cfg.MaxCampaigns {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w (limit %d)", ErrTooManyCampaigns, r.cfg.MaxCampaigns)
	}
	r.nextID++
	id := fmt.Sprintf("c%d", r.nextID)
	camp := newCampaign(id, norm, r.svc, r.cfg)
	r.evictOverflowLocked()
	r.campaigns[id] = camp
	r.wg.Add(1)
	r.mu.Unlock()

	go func() {
		defer r.wg.Done()
		camp.run()
	}()
	return camp, nil
}

// activeLocked counts campaigns still sweeping. Callers hold r.mu.
func (r *Registry) activeLocked() int {
	n := 0
	for _, camp := range r.campaigns {
		if !camp.Ended() {
			n++
		}
	}
	return n
}

// evictOverflowLocked keeps the retained-campaign map bounded: when it
// is full, the least recently accessed *ended* campaigns are forgotten
// to make room for one more. Callers hold r.mu.
func (r *Registry) evictOverflowLocked() {
	for len(r.campaigns) >= r.cfg.MaxCampaigns*retainedPerActive {
		oldestID := ""
		var oldest time.Time
		for id, camp := range r.campaigns {
			if !camp.Ended() {
				continue
			}
			if at := camp.lastAccessed(); oldestID == "" || at.Before(oldest) {
				oldestID, oldest = id, at
			}
		}
		if oldestID == "" {
			return // all active; the activeLocked bound keeps this impossible
		}
		delete(r.campaigns, oldestID)
	}
}

// Get returns a campaign by ID.
func (r *Registry) Get(id string) (*Campaign, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	camp, ok := r.campaigns[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return camp, nil
}

// Delete removes a campaign: the sweep stops, attached streams receive
// their remaining events plus an end event, and the ID is forgotten.
func (r *Registry) Delete(id string) error {
	r.mu.Lock()
	camp, ok := r.campaigns[id]
	if ok {
		delete(r.campaigns, id)
	}
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	camp.close(api.SessionDeleted, "")
	return nil
}

// Active returns how many campaigns are currently sweeping — the
// number /healthz reports.
func (r *Registry) Active() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.activeLocked()
}

// Len returns how many campaigns are registered.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.campaigns)
}

// Stats snapshots the registry's gauges under one lock acquisition:
// Active is campaigns still sweeping, Retained is every registered
// campaign including finished ones kept for replay. One snapshot feeds
// both /healthz and /metrics so the views agree.
func (r *Registry) Stats() (active, retained int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.activeLocked(), len(r.campaigns)
}

// IDs returns the registered campaign IDs in order.
func (r *Registry) IDs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := make([]string, 0, len(r.campaigns))
	for id := range r.campaigns {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Sweep evicts every campaign that has been idle (no snapshot and no
// attached stream) longer than IdleTimeout, and returns how many it
// evicted.
func (r *Registry) Sweep() int {
	now := r.cfg.Now()
	r.mu.Lock()
	var evict []*Campaign
	for id, camp := range r.campaigns {
		if camp.idleSince(now) > r.cfg.IdleTimeout {
			evict = append(evict, camp)
			delete(r.campaigns, id)
		}
	}
	r.mu.Unlock()
	for _, camp := range evict {
		camp.close(api.SessionEvicted, "")
	}
	return len(evict)
}

// Close drains the registry: the janitor stops, every campaign ends
// with a drained end event (so attached streams terminate cleanly), and
// Close blocks until every sweep goroutine has exited. Idempotent.
// Campaigns stay readable afterwards, but no new campaign can open.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	campaigns := make([]*Campaign, 0, len(r.campaigns))
	for _, camp := range r.campaigns {
		campaigns = append(campaigns, camp)
	}
	r.mu.Unlock()

	if r.janitorStop != nil {
		close(r.janitorStop)
		<-r.janitorDone
	}
	for _, camp := range campaigns {
		camp.close(api.SessionDrained, "")
	}
	r.wg.Wait()
}
