package gen

import (
	"repro/internal/cpu"
	"repro/internal/isa"
)

// Vector is the analytic ground-truth event vector of one bare-core
// execution of a generated program: no timer, no kernel, performance
// governor (FreqScale 1.0). Counts are float64 because cycle and
// d-cache accounting is fractional; every value lies on the simulator's
// exact-addition grid, so equality with a real run is exact, not
// approximate.
type Vector struct {
	Instr  float64
	Cycles float64
	Misp   float64
	ICache float64
	ITLB   float64
	DCache float64
}

// Event returns the vector component counting the given event. The
// second result is false for events the model never emits in a
// bare-core run (bus accesses).
func (v Vector) Event(ev cpu.Event) (float64, bool) {
	switch ev {
	case cpu.EventInstrRetired:
		return v.Instr, true
	case cpu.EventCoreCycles:
		return v.Cycles, true
	case cpu.EventBrMispRetired:
		return v.Misp, true
	case cpu.EventICacheMiss:
		return v.ICache, true
	case cpu.EventITLBMiss:
		return v.ITLB, true
	case cpu.EventDCacheMiss:
		return v.DCache, true
	}
	return 0, false
}

// Truth computes the exact event vector of Raw() on the given model by
// mirroring the core's execution semantics structurally: per-class
// retire costs, first-touch i-cache/i-TLB penalties, static branch
// prediction, the plain-loop analytic fast-forward, and the stepwise
// path for probe-laced bodies. Every cycle addend is a multiple of the
// CycleGrain grid, on which float64 addition is exact, so the grouped
// sums here are bit-identical to the simulator's sequential ones.
func (p *Program) Truth(m *cpu.Model) Vector {
	c := cpu.NewCore(m) // cost oracle only: ClassCost, IterCycles at FreqScale 1.0
	prog := p.Raw()
	var v Vector
	lines := make(map[uint64]struct{})
	pages := make(map[uint64]struct{})

	fetch := func(addr uint64) {
		line, page := addr>>6, addr>>12
		if _, ok := lines[line]; !ok {
			lines[line] = struct{}{}
			v.ICache++
			v.Cycles += m.ICacheMissPenalty
		}
		if _, ok := pages[page]; !ok {
			pages[page] = struct{}{}
			v.ITLB++
			v.Cycles += m.ITLBMissPenalty
		}
	}
	retire := func(n int64, cl cpu.Class) {
		v.Instr += float64(n)
		v.Cycles += float64(n) * c.ClassCost(cl)
	}

	pc := 0
	for pc < len(prog.Code) {
		in := prog.Code[pc]
		switch in.Op {
		case isa.OpHalt:
			// Halt retires without a fetch penalty (terminators skip it).
			retire(1, cpu.ClassALU)
			return v

		case isa.OpBranch:
			fetch(prog.Addr(pc))
			retire(1, cpu.ClassBranch)
			backward := in.A <= int64(pc)
			taken := in.B != 0
			if taken != backward {
				v.Misp++
				v.Cycles += m.MispredictPenalty
			}
			if taken {
				pc = int(in.A)
			} else {
				pc++
			}

		case isa.OpLoop:
			body := prog.Code[pc+1 : pc+1+int(in.B)]
			if iters := in.A; iters > 0 {
				bodyAddr := prog.Addr(pc + 1)
				if plain(body) {
					var bodyBytes uint64
					var bodyRetire int64
					memOps := 0
					for _, bi := range body {
						bodyBytes += uint64(bi.Size)
						bodyRetire += int64(bi.Retires())
						if bi.Op == isa.OpLoad || bi.Op == isa.OpStore {
							memOps++
						}
					}
					fetch(bodyAddr)
					v.Misp += 2
					v.Cycles += 2 * m.MispredictPenalty
					if memOps > 0 {
						v.DCache += float64(memOps) * float64(iters) / 8
					}
					v.Instr += float64(iters) * float64(bodyRetire)
					v.Cycles += float64(iters) * c.IterCycles(bodyAddr, bodyBytes, memOps)
				} else {
					// Stepwise: the first iteration pays the cold fetches
					// (accrued by fetch above as it touches each address);
					// every iteration pays class costs and per-iteration
					// mispredicts.
					var warmCycles float64
					var perIterInstr, perIterMisp int64
					for j, bi := range body {
						fetch(prog.Addr(pc + 1 + j))
						perIterInstr += int64(bi.Retires())
						if bi.Op == isa.OpBranch {
							warmCycles += c.ClassCost(cpu.ClassBranch)
							backward := bi.A <= int64(pc+1+j)
							if (bi.B != 0) != backward {
								perIterMisp++
								warmCycles += m.MispredictPenalty
							}
							continue
						}
						cl, _ := cpu.ClassOf(bi.Op)
						warmCycles += float64(bi.Retires()) * c.ClassCost(cl)
					}
					v.Instr += float64(iters) * float64(perIterInstr)
					v.Misp += float64(iters) * float64(perIterMisp)
					v.Cycles += float64(iters) * warmCycles
				}
			}
			pc += 1 + int(in.B)

		default:
			fetch(prog.Addr(pc))
			cl, _ := cpu.ClassOf(in.Op)
			retire(1, cl)
			pc++
		}
	}
	return v
}

// plain mirrors the simulator's fast-forward eligibility test.
func plain(body []isa.Instr) bool {
	for _, in := range body {
		switch in.Op {
		case isa.OpALU, isa.OpNop, isa.OpLoad, isa.OpStore, isa.OpBranch:
		default:
			return false
		}
	}
	return true
}
