// Package gen is the campaign program generator: a versioned, seeded
// source of randomized synthetic benchmarks whose ground-truth event
// counts are known analytically.
//
// The paper's micro-benchmarks (loop, array) are hand-written and
// narrow; the generator produces program shapes far off that path —
// branch tangles with skewed taken-probabilities, pointer-chase bodies
// sized to straddle i-cache lines and i-TLB pages, phase-shifting hot
// kernels, and PMU-probe-laced loops — while keeping every program
// analytically tractable: Truth computes the exact event vector a bare
// core produces, and ExpectedInstr the exact retired-instruction count,
// so campaign sweeps can audit measured confidence intervals against
// ground truth at scale.
//
// Determinism is a hard contract: a (version, class, seed, scale)
// tuple identifies one program, byte for byte, forever. Version bumps
// when the generation algorithm changes, so stored campaign findings
// remain reproducible against the generator that produced them.
package gen

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/xrand"
)

// Version is the generator algorithm version, part of every program's
// canonical spec. Any change to program construction must bump it.
const Version = 1

// Class names a generator program family.
type Class string

// The generator program families.
const (
	// ClassMix is general straight-line code: ALU runs, memory ops,
	// branches of every prediction outcome, and plain counted loops.
	ClassMix Class = "mix"
	// ClassBranch is a branch tangle with a per-program skewed taken
	// probability — the adversary for branch-event invariants.
	ClassBranch Class = "branch"
	// ClassChase is load-heavy code with oversized instruction
	// encodings, sized to straddle i-cache lines (and, at larger
	// scales, i-TLB pages), plus a memory-walking loop.
	ClassChase Class = "chase"
	// ClassPhase alternates two hot loop kernels at shifting code
	// placements — the Section 6 placement effect, repeatedly.
	ClassPhase Class = "phase"
	// ClassProbe laces code with RDPMC/RDTSC instructions (results
	// discarded), forcing loops down the stepwise execution path.
	ClassProbe Class = "probe"
)

// Classes lists the families in canonical order. Campaign sweeps cycle
// through this order, so it is part of the determinism contract.
var Classes = []Class{ClassMix, ClassBranch, ClassChase, ClassPhase, ClassProbe}

// ClassByName returns the class with the given name.
func ClassByName(name string) (Class, error) {
	for _, c := range Classes {
		if string(c) == name {
			return c, nil
		}
	}
	return "", fmt.Errorf("gen: unknown program class %q", name)
}

// classIndex returns the canonical index of c in Classes.
func classIndex(c Class) uint64 {
	for i, k := range Classes {
		if k == c {
			return uint64(i)
		}
	}
	return uint64(len(Classes))
}

// Scale bounds. Scale controls program size roughly linearly; the cap
// keeps the largest generated program small enough to measure quickly.
const (
	DefaultScale = 3
	MaxScale     = 64
)

// Base is the load address of standalone generated programs, matching
// the benchmark raw-program convention.
const Base = 0x4000

// Program is one generated benchmark: its identity (class, seed,
// scale) plus the generated body. The body is user-mode valid and
// fully deterministic — no VarWork, no syscalls, and counter probes
// only with discarded results — so its event counts are a pure
// function of (program, model, placement).
type Program struct {
	Class Class
	Seed  uint64
	Scale int
	// Code is the benchmark body, without a terminating Halt.
	Code []isa.Instr
}

// New generates the program identified by (class, seed, scale) under
// the current generator Version.
func New(class Class, seed uint64, scale int) (*Program, error) {
	if _, err := ClassByName(string(class)); err != nil {
		return nil, err
	}
	if scale < 1 || scale > MaxScale {
		return nil, fmt.Errorf("gen: scale %d out of range [1,%d]", scale, MaxScale)
	}
	r := xrand.New(xrand.Mix(Version, classIndex(class), seed, uint64(scale)))
	p := &Program{Class: class, Seed: seed, Scale: scale}
	switch class {
	case ClassMix:
		p.Code = genMix(r, scale)
	case ClassBranch:
		p.Code = genBranch(r, scale)
	case ClassChase:
		p.Code = genChase(r, scale)
	case ClassPhase:
		p.Code = genPhase(r, scale)
	case ClassProbe:
		p.Code = genProbe(r, scale)
	}
	if err := p.Raw().Validate(true); err != nil {
		return nil, fmt.Errorf("gen: generated program invalid: %w", err)
	}
	return p, nil
}

// Parse parses a canonical program spec, "gen:v1:<class>:<seed>[:<scale>]",
// and generates the program. The scale defaults to DefaultScale, and
// Spec always renders it explicitly, so Parse(Spec()) round-trips.
func Parse(spec string) (*Program, error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 4 && len(parts) != 5 {
		return nil, fmt.Errorf("gen: bad spec %q (want gen:v%d:<class>:<seed>[:<scale>])", spec, Version)
	}
	if parts[0] != "gen" {
		return nil, fmt.Errorf("gen: bad spec %q", spec)
	}
	if parts[1] != fmt.Sprintf("v%d", Version) {
		return nil, fmt.Errorf("gen: unsupported generator version %q (this build generates v%d)", parts[1], Version)
	}
	class, err := ClassByName(parts[2])
	if err != nil {
		return nil, err
	}
	seed, err := strconv.ParseUint(parts[3], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("gen: bad seed %q", parts[3])
	}
	scale := DefaultScale
	if len(parts) == 5 {
		scale, err = strconv.Atoi(parts[4])
		if err != nil {
			return nil, fmt.Errorf("gen: bad scale %q", parts[4])
		}
	}
	return New(class, seed, scale)
}

// Spec returns the canonical spec string identifying this program.
func (p *Program) Spec() string {
	return fmt.Sprintf("gen:v%d:%s:%d:%d", Version, p.Class, p.Seed, p.Scale)
}

// Raw returns the program as a standalone executable: body plus Halt at
// the benchmark base. This is the form Truth models and engine-exactness
// tests run.
func (p *Program) Raw() *isa.Program {
	code := make([]isa.Instr, 0, len(p.Code)+1)
	code = append(code, p.Code...)
	code = append(code, isa.Halt())
	return &isa.Program{Name: p.Spec(), Base: Base, Code: code}
}

// Benchmark adapts the program to the measurement pipeline. Branch
// targets are program-relative instruction indices, so Emit rebases
// them by the harness position. The benchmark name is the canonical
// spec, which is also its wire spelling.
func (p *Program) Benchmark() *core.Benchmark {
	code := p.Code
	return &core.Benchmark{
		Name: p.Spec(),
		Emit: func(b *isa.Builder) {
			off := b.Pos()
			for _, in := range code {
				if in.Op == isa.OpBranch {
					in.A += int64(off)
				}
				b.Emit(in)
			}
		},
		ExpectedInstr: p.ExpectedInstr(),
	}
}

// ExpectedInstr returns the exact retired-instruction count of the
// body (excluding the standalone Halt): the executed path only, so
// filler skipped by taken branches does not count. It is placement-
// and model-independent, which makes it the ground truth the campaign
// coverage audit checks measured CIs against.
func (p *Program) ExpectedInstr() int64 {
	return dynamicInstr(p.Code)
}

// dynamicInstr walks the executed path of straight-line code. Taken
// branches are forward by generator construction, so the walk is a
// single pass.
func dynamicInstr(code []isa.Instr) int64 {
	var total int64
	pc := 0
	for pc < len(code) {
		in := code[pc]
		switch in.Op {
		case isa.OpLoop:
			var bodyRetire int64
			for _, bi := range code[pc+1 : pc+1+int(in.B)] {
				bodyRetire += int64(bi.Retires())
			}
			total += in.A * bodyRetire
			pc += 1 + int(in.B)
		case isa.OpBranch:
			total++
			if in.B != 0 {
				pc = int(in.A)
			} else {
				pc++
			}
		default:
			total += int64(in.Retires())
			pc++
		}
	}
	return total
}

// CycleBudget returns a declared upper bound on the cycles one bare-core
// execution of Raw() takes on the given model. The bound is structural —
// derived from instruction counts and worst-case per-instruction costs,
// not from simulating the program — so the property test that every
// program finishes within budget is a real termination check.
func (p *Program) CycleBudget(m *cpu.Model) float64 {
	c := cpu.NewCore(m)
	maxCost := 0.0
	for _, cl := range []cpu.Class{cpu.ClassALU, cpu.ClassMem, cpu.ClassBranch, cpu.ClassRDPMC, cpu.ClassRDTSC} {
		if cost := c.ClassCost(cl); cost > maxCost {
			maxCost = cost
		}
	}
	raw := p.Raw()
	dyn := float64(p.ExpectedInstr() + 1) // + the Halt
	// Per retired instruction: worst class cost, plus the worst
	// per-iteration loop overhead (straddle, placement quirk, memory
	// term — all bounded by their model constants plus one cycle).
	budget := dyn * (maxCost + m.LoopBaseCycles + m.StraddleCycles + m.PlacementQuirkMax + 1)
	// Every retire could at worst mispredict; loops add two more each.
	budget += (dyn + 2*float64(len(raw.Code))) * m.MispredictPenalty
	// Cold front-end penalties: one per distinct line/page touched.
	bytes := float64(raw.ByteSize())
	budget += (bytes/64 + 2) * m.ICacheMissPenalty
	budget += (bytes/4096 + 2) * m.ITLBMissPenalty
	return budget
}

// sized occasionally randomizes an instruction's encoded size, feeding
// the placement model.
func sized(in isa.Instr, r *xrand.Rand) isa.Instr {
	if r.Intn(4) == 0 {
		in.Size = uint8(1 + r.Intn(15))
	}
	return in
}

// plainLoopBody builds a 3-5 instruction loop body of plain retiring
// ops closed by the conventional fall-through loop branch — eligible
// for the simulator's analytic fast-forward.
func plainLoopBody(r *xrand.Rand) []isa.Instr {
	n := 2 + r.Intn(3)
	body := make([]isa.Instr, 0, n+1)
	for i := 0; i < n; i++ {
		var in isa.Instr
		switch r.Intn(3) {
		case 0:
			in = isa.ALU()
		case 1:
			in = isa.Load()
		default:
			in = isa.Store()
		}
		in.Size = uint8(2 + r.Intn(5))
		body = append(body, in)
	}
	jne := isa.Branch(0, true)
	body = append(body, jne)
	return body
}

// genMix emits general straight-line code: the widest vocabulary.
func genMix(r *xrand.Rand, scale int) []isa.Instr {
	var code []isa.Instr
	sites := 16 + 8*scale
	for s := 0; s < sites; s++ {
		switch r.Intn(10) {
		case 0, 1, 2:
			for n := 1 + r.Intn(4); n > 0; n-- {
				code = append(code, sized(isa.ALU(), r))
			}
		case 3:
			code = append(code, sized(isa.Load(), r))
		case 4:
			code = append(code, sized(isa.Store(), r))
		case 5:
			code = append(code, isa.Nop())
		case 6:
			// Forward taken branch over filler: mispredicted (static
			// not-taken prediction for forward branches).
			k := 1 + r.Intn(3)
			code = append(code, isa.Branch(len(code)+1+k, true))
			for ; k > 0; k-- {
				code = append(code, isa.ALU())
			}
		case 7:
			// Forward not-taken: correctly predicted.
			code = append(code, isa.Branch(len(code)+1, false))
		case 8:
			// Backward target, not taken: mispredicts without looping.
			code = append(code, isa.Branch(r.Intn(len(code)+1), false))
		case 9:
			// Plain counted loop, occasionally with zero iterations.
			iters := int64(r.Intn(128))
			body := plainLoopBody(r)
			code = append(code, isa.Loop(iters, len(body)))
			code = append(code, body...)
		}
	}
	return code
}

// genBranch emits a branch tangle with a per-program skewed taken
// probability.
func genBranch(r *xrand.Rand, scale int) []isa.Instr {
	var code []isa.Instr
	pTaken := float64(1+r.Intn(9)) / 10 // 10%..90%, fixed per program
	sites := 12 + 8*scale
	for s := 0; s < sites; s++ {
		for n := r.Intn(3); n > 0; n-- {
			code = append(code, isa.ALU())
		}
		switch {
		case r.Float64() < pTaken:
			k := 1 + r.Intn(4)
			code = append(code, isa.Branch(len(code)+1+k, true))
			for ; k > 0; k-- {
				code = append(code, isa.Nop())
			}
		case r.Intn(4) == 0:
			code = append(code, isa.Branch(r.Intn(len(code)+1), false))
		default:
			code = append(code, isa.Branch(len(code)+1, false))
		}
	}
	return code
}

// genChase emits load-heavy code with oversized encodings so the
// footprint strides across i-cache lines — and past scale ~16, across
// i-TLB pages — then a memory-walking loop for d-cache events.
func genChase(r *xrand.Rand, scale int) []isa.Instr {
	var code []isa.Instr
	for seg := 0; seg < scale; seg++ {
		for j := 0; j < 18; j++ {
			ld := isa.Load()
			ld.Size = uint8(9 + r.Intn(7))
			code = append(code, ld)
		}
		for j := 0; j < 4; j++ {
			a := isa.ALU()
			a.Size = uint8(8 + r.Intn(8))
			code = append(code, a)
		}
	}
	iters := int64(32 * (1 + r.Intn(4)))
	ld := isa.Load()
	ld.Size = 3
	add := isa.ALU()
	add.Size = 3
	st := isa.Store()
	st.Size = 4
	jne := isa.Branch(0, true)
	body := []isa.Instr{ld, add, st, jne}
	code = append(code, isa.Loop(iters, len(body)))
	code = append(code, body...)
	return code
}

// genPhase alternates an ALU-hot and a memory-hot loop kernel, each at
// a fresh placement, so per-iteration costs shift between phases.
func genPhase(r *xrand.Rand, scale int) []isa.Instr {
	var code []isa.Instr
	for ph := 0; ph < 2*scale; ph++ {
		for n := r.Intn(4); n > 0; n-- {
			a := isa.ALU()
			a.Size = uint8(1 + r.Intn(8))
			code = append(code, a)
		}
		iters := int64(24 + r.Intn(100))
		var body []isa.Instr
		if ph%2 == 0 {
			a1 := isa.ALU()
			a1.Size = 3
			a2 := isa.ALU()
			a2.Size = 5
			jne := isa.Branch(0, true)
			body = []isa.Instr{a1, a2, jne}
		} else {
			ld := isa.Load()
			ld.Size = 3
			st := isa.Store()
			st.Size = 4
			a := isa.ALU()
			a.Size = 3
			jne := isa.Branch(0, true)
			body = []isa.Instr{ld, st, a, jne}
		}
		code = append(code, isa.Loop(iters, len(body)))
		code = append(code, body...)
	}
	return code
}

// genProbe laces code with discarded-result counter reads. Probe-laced
// loop bodies are not plain, forcing the stepwise execution path; a
// backward-target not-taken branch in a body mispredicts every
// iteration.
func genProbe(r *xrand.Rand, scale int) []isa.Instr {
	var code []isa.Instr
	sites := 8 + 6*scale
	for s := 0; s < sites; s++ {
		switch r.Intn(8) {
		case 0, 1:
			for n := 1 + r.Intn(3); n > 0; n-- {
				code = append(code, isa.ALU())
			}
		case 2:
			code = append(code, isa.RDPMC(r.Intn(2), isa.NoSlot))
		case 3:
			code = append(code, isa.RDTSC(isa.NoSlot))
		case 4:
			code = append(code, isa.Load())
		case 5:
			iters := int64(2 + r.Intn(12))
			var body []isa.Instr
			if r.Intn(2) == 0 {
				body = []isa.Instr{isa.ALU(), isa.RDPMC(0, isa.NoSlot)}
			} else {
				body = []isa.Instr{isa.RDTSC(isa.NoSlot), isa.Load(), isa.Branch(0, false)}
			}
			code = append(code, isa.Loop(iters, len(body)))
			code = append(code, body...)
		case 6:
			k := 1 + r.Intn(3)
			code = append(code, isa.Branch(len(code)+1+k, true))
			for ; k > 0; k-- {
				code = append(code, isa.ALU())
			}
		case 7:
			code = append(code, isa.Nop())
		}
	}
	return code
}
