package gen

import "repro/internal/isa"

// FuzzSyscall is the syscall number FromBytes programs invoke; harnesses
// running them must register a handler for it.
const FuzzSyscall = 7

// FromBytes decodes a byte string into a structurally valid program —
// the engine-conformance fuzz generator, promoted here so generated
// program shapes are defined exactly once. Unlike New's campaign
// programs, FromBytes output may be nondeterministic (VarWork),
// privilege-crossing (syscalls), or invalid at runtime (nested loops):
// its consumer compares two execution engines against each other, not
// against an analytic ground truth. The decoding is frozen — the engine
// fuzz corpus depends on it.
//
// The vocabulary: straight-line work, forward taken branches (backward
// taken branches could loop forever; backward prediction is still
// exercised through not-taken branches with backward targets), counted
// loops with straight bodies, the occasional invalid nested loop (both
// engines must fail identically), syscalls, VarWork, and PMU-visible
// reads.
func FromBytes(data []byte) *isa.Program {
	i := 0
	next := func() byte {
		if i >= len(data) {
			return 0
		}
		v := data[i]
		i++
		return v
	}

	var code []isa.Instr
	for op := 0; op < 48 && i < len(data); op++ {
		switch next() % 12 {
		case 0, 1:
			for n := 1 + int(next()%6); n > 0; n-- {
				code = append(code, isa.ALU())
			}
		case 2:
			code = append(code, isa.Load())
		case 3:
			code = append(code, isa.Store())
		case 4:
			// Forward taken branch over k filler instructions (dead code,
			// but still compiled — targets become block leaders).
			k := 1 + int(next()%4)
			code = append(code, isa.Branch(len(code)+1+k, true))
			for ; k > 0; k-- {
				code = append(code, isa.ALU())
			}
		case 5:
			// Not-taken branch with a backward target: statically
			// predicted taken, so it mispredicts — without looping.
			target := int(next()) % (len(code) + 1)
			code = append(code, isa.Branch(target, false))
		case 6:
			iters := int64(next()) * int64(next()) % 301
			body := 1 + int(next()%3)
			code = append(code, isa.Loop(iters, body))
			for n := body; n > 0; n-- {
				if next()%2 == 0 {
					code = append(code, isa.ALU())
				} else {
					code = append(code, isa.Load())
				}
			}
		case 7:
			code = append(code, isa.Syscall(FuzzSyscall))
		case 8:
			code = append(code, isa.VarWork(int(next()%32), int64(next())))
		case 9:
			code = append(code, isa.RDPMC(int(next()%2), int(next()%4)))
		case 10:
			code = append(code, isa.RDTSC(int(next()%4)))
		case 11:
			if next() == 255 {
				// Invalid at runtime: a loop whose body is another loop.
				// Structurally valid, so it reaches both engines, which
				// must report the identical error at the identical state.
				code = append(code, isa.Loop(3, 2), isa.Loop(2, 1), isa.ALU())
			} else {
				code = append(code, isa.Nop())
			}
		}
	}
	code = append(code, isa.Halt())
	return &isa.Program{Name: "fuzz", Base: 0x4000, Code: code}
}
