package gen

import (
	"reflect"
	"testing"

	"repro/internal/cpu"
	"repro/internal/engine"
)

// runEvents executes the program's raw form on a bare core (no timer,
// no kernel) through the interpreter with the given events configured
// user-mode, and returns the raw counter accumulators plus the final
// clock.
func runEvents(t *testing.T, m *cpu.Model, p *Program, events []cpu.Event) (raw []float64, cycles float64) {
	t.Helper()
	if len(events) > m.NumProgrammable {
		t.Fatalf("model %s has %d counters, want %d", m.Tag, m.NumProgrammable, len(events))
	}
	c := cpu.NewCore(m)
	var mask uint64
	for slot, ev := range events {
		if err := c.PMU.Configure(slot, cpu.CounterConfig{Event: ev, User: true}); err != nil {
			t.Fatal(err)
		}
		mask |= 1 << uint(slot)
	}
	c.PMU.Enable(mask)
	c.SeedRun(1)
	if err := engine.NewInterpreter().RunProgram(c, p.Raw()); err != nil {
		t.Fatalf("run %s on %s: %v", p.Spec(), m.Tag, err)
	}
	raw = make([]float64, len(events))
	for slot := range events {
		raw[slot] = c.PMU.Prog[slot].Raw()
	}
	return raw, c.Cycles
}

// allEvents is the full ground-truth vector, measured in pairs so it
// fits CD's two programmable counters.
var allEvents = []cpu.Event{
	cpu.EventInstrRetired, cpu.EventCoreCycles, cpu.EventBrMispRetired,
	cpu.EventICacheMiss, cpu.EventITLBMiss, cpu.EventDCacheMiss,
}

// TestTruthMatchesInterpreter is the generator's central property: the
// analytically computed ground-truth vector equals a bare-core
// interpreter run bit for bit, for every class, model, and a spread of
// seeds. The run is repeated per event pair because CD has only two
// programmable counters.
func TestTruthMatchesInterpreter(t *testing.T) {
	for _, class := range Classes {
		for _, m := range cpu.AllModels {
			for seed := uint64(0); seed < 8; seed++ {
				p, err := New(class, seed, DefaultScale)
				if err != nil {
					t.Fatal(err)
				}
				truth := p.Truth(m)
				for i := 0; i < len(allEvents); i += 2 {
					pair := allEvents[i : i+2]
					raw, cycles := runEvents(t, m, p, pair)
					for slot, ev := range pair {
						want, ok := truth.Event(ev)
						if !ok {
							t.Fatalf("no truth component for %s", ev)
						}
						if raw[slot] != want {
							t.Errorf("%s on %s: %s = %v, truth says %v",
								p.Spec(), m.Tag, ev, raw[slot], want)
						}
					}
					if cycles != truth.Cycles {
						t.Errorf("%s on %s: clock %v, truth says %v", p.Spec(), m.Tag, cycles, truth.Cycles)
					}
				}
			}
		}
	}
}

// TestTruthMatchesCompiled spot-checks that the compiled engine agrees
// with the truth vector too (full cross-engine coverage lives in the
// engine conformance fuzz).
func TestTruthMatchesCompiled(t *testing.T) {
	for _, class := range Classes {
		p, err := New(class, 42, DefaultScale)
		if err != nil {
			t.Fatal(err)
		}
		m := cpu.PentiumD
		truth := p.Truth(m)
		c := cpu.NewCore(m)
		if err := c.PMU.Configure(0, cpu.CounterConfig{Event: cpu.EventInstrRetired, User: true}); err != nil {
			t.Fatal(err)
		}
		c.PMU.Enable(1)
		c.SeedRun(1)
		if err := engine.NewCompiled(nil).RunProgram(c, p.Raw()); err != nil {
			t.Fatal(err)
		}
		if got := c.PMU.Prog[0].Raw(); got != truth.Instr {
			t.Errorf("%s compiled: instr %v, truth %v", p.Spec(), got, truth.Instr)
		}
		if c.Cycles != truth.Cycles {
			t.Errorf("%s compiled: cycles %v, truth %v", p.Spec(), c.Cycles, truth.Cycles)
		}
	}
}

// TestDeterminism: identical (class, seed, scale) tuples reproduce
// byte-identical programs; different seeds differ.
func TestDeterminism(t *testing.T) {
	for _, class := range Classes {
		a, err := New(class, 7, DefaultScale)
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(class, 7, DefaultScale)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Code, b.Code) {
			t.Errorf("%s: identical seeds produced different programs", class)
		}
		c, err := New(class, 8, DefaultScale)
		if err != nil {
			t.Fatal(err)
		}
		if reflect.DeepEqual(a.Code, c.Code) {
			t.Errorf("%s: different seeds produced identical programs", class)
		}
	}
}

// TestCycleBudget: every generated program terminates within its
// declared structural cycle budget on every model.
func TestCycleBudget(t *testing.T) {
	for _, class := range Classes {
		for _, m := range cpu.AllModels {
			for seed := uint64(0); seed < 8; seed++ {
				p, err := New(class, seed, DefaultScale)
				if err != nil {
					t.Fatal(err)
				}
				_, cycles := runEvents(t, m, p, []cpu.Event{cpu.EventInstrRetired})
				if budget := p.CycleBudget(m); cycles > budget {
					t.Errorf("%s on %s: ran %v cycles, budget %v", p.Spec(), m.Tag, cycles, budget)
				}
			}
		}
	}
}

// TestExpectedInstrMatchesRun: the placement-independent instruction
// ground truth equals what actually retires (body plus the Halt).
func TestExpectedInstrMatchesRun(t *testing.T) {
	for _, class := range Classes {
		p, err := New(class, 3, DefaultScale)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := runEvents(t, cpu.Athlon64X2, p, []cpu.Event{cpu.EventInstrRetired})
		if want := float64(p.ExpectedInstr() + 1); raw[0] != want {
			t.Errorf("%s: retired %v, expected %v", p.Spec(), raw[0], want)
		}
	}
}

// TestChaseStraddlesPages: at large scales the chase footprint crosses
// i-TLB pages, the capacity-straddling behavior the class exists for.
func TestChaseStraddlesPages(t *testing.T) {
	p, err := New(ClassChase, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if v := p.Truth(cpu.PentiumD); v.ITLB < 2 {
		t.Errorf("chase at scale 20 touched %v pages, want >= 2 (footprint %d bytes)",
			v.ITLB, p.Raw().ByteSize())
	}
}

// TestSpecRoundTrip: Parse(Spec()) regenerates the identical program,
// and scale-less specs default.
func TestSpecRoundTrip(t *testing.T) {
	p, err := New(ClassBranch, 99, 5)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Parse(p.Spec())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Errorf("Parse(%q) did not round-trip", p.Spec())
	}
	d, err := Parse("gen:v1:mix:4")
	if err != nil {
		t.Fatal(err)
	}
	if d.Scale != DefaultScale {
		t.Errorf("scale-less spec got scale %d, want %d", d.Scale, DefaultScale)
	}
	for _, bad := range []string{"gen", "gen:v2:mix:1:3", "gen:v1:nope:1:3", "gen:v1:mix:x:3", "gen:v1:mix:1:0", "gen:v1:mix:1:9999"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

// TestValidity: a broad seed sweep only ever produces user-mode-valid
// programs.
func TestValidity(t *testing.T) {
	for _, class := range Classes {
		for seed := uint64(0); seed < 50; seed++ {
			p, err := New(class, seed, 1+int(seed%MaxScale))
			if err != nil {
				t.Fatalf("%s seed %d: %v", class, seed, err)
			}
			if p.ExpectedInstr() <= 0 {
				t.Errorf("%s retires nothing", p.Spec())
			}
		}
	}
}
