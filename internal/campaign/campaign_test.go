package campaign

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/bayes"
	"repro/internal/cpu"
	"repro/internal/plan"
	"repro/internal/service"
)

// newServices wires a campaign to a real in-process service and
// planner, the same paths the server front end exposes.
func newServices() Services {
	svc := service.New(service.Config{WorkersPerShard: 2, CalibrationRuns: 5})
	return Services{Measure: svc.Measure, Infer: svc.Infer, Plan: plan.New(svc).Do}
}

// testConfig disables the janitor so tests control time.
func testConfig() Config { return Config{SweepInterval: -1} }

// collect replays and follows a campaign's stream until its end event,
// returning every NDJSON line.
func collect(t testing.TB, camp *Campaign) [][]byte {
	t.Helper()
	camp.Subscribe()
	defer camp.Unsubscribe()
	deadline := time.After(5 * time.Minute)
	var all [][]byte
	for i := 0; ; {
		lines, next, wait, done := camp.Events(i)
		all = append(all, lines...)
		i = next
		if len(lines) > 0 {
			continue
		}
		if done {
			return all
		}
		select {
		case <-wait:
		case <-deadline:
			t.Fatal("campaign did not finish in time")
		}
	}
}

// decode unmarshals a stream's lines.
func decode(t testing.TB, lines [][]byte) []api.CampaignEvent {
	t.Helper()
	events := make([]api.CampaignEvent, len(lines))
	for i, line := range lines {
		if err := json.Unmarshal(line, &events[i]); err != nil {
			t.Fatalf("line %d: %v\n%s", i, err, line)
		}
	}
	return events
}

// smallRequest is a quick sweep that still exercises every check: with
// six programs every class appears, the inference check runs on
// programs 0, 2, 4 and the planner check on programs 0 and 3.
func smallRequest() api.CampaignRequest {
	return api.CampaignRequest{
		Seed:     3,
		Programs: 6,
		Runs:     4,
		Scale:    2,

		InferEvery:  2,
		PlanEvery:   3,
		EngineEvery: 1,
	}
}

// TestCampaignStockClean is the system's self-consistency proof at
// campaign scale: over stock processor models, every adversarial check
// passes — the sweep completes with zero findings.
func TestCampaignStockClean(t *testing.T) {
	reg := NewRegistry(newServices(), testConfig())
	defer reg.Close()
	camp, err := reg.Open(smallRequest())
	if err != nil {
		t.Fatal(err)
	}
	events := decode(t, collect(t, camp))
	var programs int
	var summary *api.CampaignSummary
	for _, ev := range events {
		switch ev.Type {
		case api.CampaignEventFinding:
			t.Errorf("finding against stock models: %+v", *ev.Finding)
		case api.CampaignEventProgram:
			programs++
			if ev.Program.Checked == 0 || ev.Program.Checked != ev.Program.Covered {
				t.Errorf("program %d: covered %d of %d checks", ev.Program.Index, ev.Program.Covered, ev.Program.Checked)
			}
		case api.CampaignEventSummary:
			summary = ev.Summary
		}
	}
	if programs != 6 {
		t.Errorf("stream has %d program events, want 6", programs)
	}
	if summary == nil || summary.Findings != 0 {
		t.Errorf("summary = %+v, want zero findings", summary)
	}
	last := events[len(events)-1]
	if last.Type != api.CampaignEventEnd || last.Reason != api.SessionDone {
		t.Errorf("stream ends with %+v", last)
	}
	if st := camp.State(); st != api.SessionDone {
		t.Errorf("state = %s", st)
	}
}

// TestCampaignDeterminism: identical requests produce byte-identical
// NDJSON streams, independent of worker scheduling.
func TestCampaignDeterminism(t *testing.T) {
	reg := NewRegistry(newServices(), Config{SweepInterval: -1, Concurrency: 3})
	defer reg.Close()
	req := smallRequest()
	a, err := reg.Open(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := reg.Open(req)
	if err != nil {
		t.Fatal(err)
	}
	la, lb := collect(t, a), collect(t, b)
	if len(la) != len(lb) {
		t.Fatalf("streams differ in length: %d vs %d", len(la), len(lb))
	}
	for i := range la {
		if !bytes.Equal(la[i], lb[i]) {
			t.Fatalf("streams diverge at line %d:\n%s\n%s", i, la[i], lb[i])
		}
	}
	if a.Config().Key() != b.Config().Key() {
		t.Fatal("identical requests normalized to different keys")
	}
}

// TestCampaignPlantedRefutation is the campaign's power proof: against
// a deliberately mis-specified invariant set (a model claiming retire
// width 1, refuted by any program with IPC above 1) the sweep must
// produce invariant-refuted findings — and the same sweep against the
// stock library runs clean (TestCampaignStockClean).
func TestCampaignPlantedRefutation(t *testing.T) {
	cfg := testConfig()
	cfg.Invariants = func(m *cpu.Model) bayes.Model {
		bad := *m
		bad.RetireWidth = 1
		return bayes.Library(&bad)
	}
	reg := NewRegistry(newServices(), cfg)
	defer reg.Close()
	req := smallRequest()
	req.InferEvery = 1 // attack every program
	camp, err := reg.Open(req)
	if err != nil {
		t.Fatal(err)
	}
	events := decode(t, collect(t, camp))
	refuted := 0
	for _, ev := range events {
		if ev.Type == api.CampaignEventFinding && ev.Finding.Check == api.CheckInvariantRefuted {
			refuted++
			if ev.Finding.Constraint == "" || ev.Finding.Sigma <= bayes.ViolationSigma {
				t.Errorf("refutation finding lacks evidence: %+v", *ev.Finding)
			}
		}
	}
	if refuted == 0 {
		t.Fatal("campaign failed to refute a model with planted retire width 1")
	}
	if last := events[len(events)-1]; last.Reason != api.SessionDone {
		t.Errorf("campaign did not complete: %+v", last)
	}
	snap := camp.Snapshot()
	if snap.FindingsTotal != refuted {
		t.Errorf("snapshot counts %d findings, stream has %d", snap.FindingsTotal, refuted)
	}
	if len(snap.Findings) == 0 {
		t.Error("snapshot retains no findings")
	}
}

// TestCampaignCoverageAudit is the acceptance-scale audit: across
// hundreds of generated programs, calibrated confidence intervals must
// contain the analytic ground truth at their nominal rate (within the
// audit's binomial slack). The observed rate is logged for the record.
func TestCampaignCoverageAudit(t *testing.T) {
	if testing.Short() {
		t.Skip("500-program sweep")
	}
	reg := NewRegistry(newServices(), Config{SweepInterval: -1, Concurrency: 4})
	defer reg.Close()
	camp, err := reg.Open(api.CampaignRequest{
		Seed:       7,
		Programs:   500,
		Processors: []string{"K8"},
		Runs:       4,
		Scale:      2,
		// Coverage only: the cross-checks are audited elsewhere and would
		// triple the sweep's cost.
		InferEvery:  -1,
		PlanEvery:   -1,
		EngineEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	events := decode(t, collect(t, camp))
	var summary *api.CampaignSummary
	for _, ev := range events {
		if ev.Type == api.CampaignEventFinding {
			t.Errorf("finding against stock models: %+v", *ev.Finding)
		}
		if ev.Type == api.CampaignEventSummary {
			summary = ev.Summary
		}
	}
	if summary == nil {
		t.Fatal("no summary event")
	}
	cov := summary.Coverage
	if cov.N < 500 {
		t.Fatalf("audited %d intervals, want >= 500", cov.N)
	}
	t.Logf("coverage audit: %d/%d intervals missed the analytic truth (rate %.4f, nominal %.4f, bound %.4f)",
		cov.Misses, cov.N, cov.Rate, cov.Nominal, cov.Bound)
	if cov.Rate > cov.Bound {
		t.Errorf("miss rate %.4f exceeds the binomial bound %.4f", cov.Rate, cov.Bound)
	}
}

// TestRegistryLimits: the active bound rejects extra campaigns, and
// deletion ends a sweep early with a deleted end event.
func TestRegistryLimits(t *testing.T) {
	cfg := testConfig()
	cfg.MaxCampaigns = 1
	reg := NewRegistry(newServices(), cfg)
	defer reg.Close()
	req := api.CampaignRequest{Programs: 50, Runs: 4}
	camp, err := reg.Open(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Open(req); err == nil {
		t.Fatal("second campaign accepted over limit 1")
	}
	if _, err := reg.Open(api.CampaignRequest{Runs: 1}); err == nil {
		t.Fatal("invalid request accepted")
	}
	if err := reg.Delete(camp.ID); err != nil {
		t.Fatal(err)
	}
	if err := reg.Delete(camp.ID); err == nil {
		t.Fatal("double delete succeeded")
	}
	lines := collect(t, camp)
	var last api.CampaignEvent
	if err := json.Unmarshal(lines[len(lines)-1], &last); err != nil {
		t.Fatal(err)
	}
	if last.Type != api.CampaignEventEnd || last.Reason != api.SessionDeleted {
		t.Errorf("deleted campaign ends with %+v", last)
	}
	if reg.Len() != 0 {
		t.Errorf("registry retains %d campaigns after delete", reg.Len())
	}
}

// TestRegistrySweepEvictsIdle: the janitor's rule, driven directly with
// a fake clock — an idle finished campaign is evicted, an ended one
// with an attached stream is not.
func TestRegistrySweepEvictsIdle(t *testing.T) {
	now := time.Unix(0, 0)
	cfg := testConfig()
	cfg.Now = func() time.Time { return now }
	reg := NewRegistry(newServices(), cfg)
	defer reg.Close()
	camp, err := reg.Open(api.CampaignRequest{Programs: 1, Runs: 2, EngineEvery: -1, InferEvery: -1, PlanEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	collect(t, camp) // wait for completion (also touches the log at t=0)
	if n := reg.Sweep(); n != 0 {
		t.Fatalf("fresh campaign evicted (%d)", n)
	}
	camp.Subscribe()
	now = now.Add(time.Hour)
	if n := reg.Sweep(); n != 0 {
		t.Fatalf("subscribed campaign evicted (%d)", n)
	}
	camp.Unsubscribe()
	now = now.Add(time.Hour)
	if n := reg.Sweep(); n != 1 {
		t.Fatalf("idle campaign not evicted (%d)", n)
	}
	if _, err := reg.Get(camp.ID); err == nil {
		t.Fatal("evicted campaign still addressable")
	}
}

// TestRegistryCloseDrains: Close ends a running sweep with a drained
// end event and refuses new campaigns.
func TestRegistryCloseDrains(t *testing.T) {
	reg := NewRegistry(newServices(), testConfig())
	camp, err := reg.Open(api.CampaignRequest{Programs: MaxCampaignProgramsForTest, Runs: 4})
	if err != nil {
		t.Fatal(err)
	}
	reg.Close()
	lines := collect(t, camp)
	var last api.CampaignEvent
	if err := json.Unmarshal(lines[len(lines)-1], &last); err != nil {
		t.Fatal(err)
	}
	if last.Type != api.CampaignEventEnd || last.Reason != api.SessionDrained {
		t.Errorf("drained campaign ends with %+v", last)
	}
	if _, err := reg.Open(api.CampaignRequest{}); err == nil {
		t.Fatal("closed registry accepted a campaign")
	}
}

// MaxCampaignProgramsForTest sizes the drain test's sweep: long enough
// that Close lands mid-sweep on any machine.
const MaxCampaignProgramsForTest = 200

// BenchmarkCampaignSweep measures one full default-cadence campaign
// program (all processors, every check) end to end.
func BenchmarkCampaignSweep(b *testing.B) {
	reg := NewRegistry(newServices(), Config{SweepInterval: -1, Concurrency: 1})
	defer reg.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		camp, err := reg.Open(api.CampaignRequest{
			Seed:     uint64(i + 1),
			Programs: 1,
			Runs:     4,
			Scale:    2,
		})
		if err != nil {
			b.Fatal(err)
		}
		camp.Subscribe()
		for j := 0; ; {
			lines, next, wait, done := camp.Events(j)
			j = next
			if len(lines) > 0 {
				continue
			}
			if done {
				break
			}
			<-wait
		}
		camp.Unsubscribe()
		if st := camp.State(); st != api.SessionDone {
			b.Fatalf("campaign ended %s", st)
		}
	}
}
