package core

import (
	"testing"
	"testing/quick"

	"repro/internal/cpu"
	"repro/internal/isa"
)

func TestMeasureModeGating(t *testing.T) {
	for _, tc := range []struct {
		m        MeasureMode
		user, os bool
		name     string
	}{
		{ModeUser, true, false, "user"},
		{ModeUserKernel, true, true, "user+kernel"},
		{ModeKernel, false, true, "kernel"},
	} {
		u, o := tc.m.Gating()
		if u != tc.user || o != tc.os {
			t.Errorf("%v gating = (%v,%v)", tc.m, u, o)
		}
		if tc.m.String() != tc.name {
			t.Errorf("%v name = %q, want %q", tc.m, tc.m.String(), tc.name)
		}
	}
	if MeasureMode(9).String() == "" {
		t.Error("unknown mode must render")
	}
}

func TestSpec(t *testing.T) {
	s := Spec(cpu.EventInstrRetired, ModeKernel)
	if s.User || !s.OS || s.Event != cpu.EventInstrRetired {
		t.Errorf("Spec = %+v", s)
	}
}

func TestPhaseSlots(t *testing.T) {
	if PhaseC0.SlotFor(2, 4) != 2 {
		t.Error("c0 slot wrong")
	}
	if PhaseC1.SlotFor(2, 4) != 6 {
		t.Error("c1 slot wrong")
	}
}

func TestPatternCodes(t *testing.T) {
	want := map[Pattern][2]string{
		StartRead: {"ar", "start-read"},
		StartStop: {"ao", "start-stop"},
		ReadRead:  {"rr", "read-read"},
		ReadStop:  {"ro", "read-stop"},
	}
	for p, w := range want {
		if p.Code() != w[0] || p.String() != w[1] {
			t.Errorf("%d: got (%s,%s), want %v", p, p.Code(), p.String(), w)
		}
		back, err := PatternByCode(p.Code())
		if err != nil || back != p {
			t.Errorf("round trip failed for %s", p)
		}
	}
	if _, err := PatternByCode("xx"); err == nil {
		t.Error("bad code accepted")
	}
	if Pattern(9).Code() == "" || Pattern(9).String() == "" {
		t.Error("unknown pattern must render")
	}
}

func TestPatternProperties(t *testing.T) {
	if !ReadRead.ReadsAtC0() || !ReadStop.ReadsAtC0() {
		t.Error("rr/ro must read at c0")
	}
	if StartRead.ReadsAtC0() || StartStop.ReadsAtC0() {
		t.Error("ar/ao must not read at c0")
	}
	if !StartStop.StopsBeforeC1() || !ReadStop.StopsBeforeC1() {
		t.Error("ao/ro must stop before c1")
	}
	if StartRead.StopsBeforeC1() || ReadRead.StopsBeforeC1() {
		t.Error("ar/rr must not stop before c1")
	}
}

func TestNullBenchmark(t *testing.T) {
	nb := NullBenchmark()
	if nb.ExpectedInstr != 0 || nb.Iterations != 0 {
		t.Errorf("null bench: %+v", nb)
	}
	b := isa.NewBuilder("x", 0)
	nb.Emit(b)
	if b.Pos() != 0 {
		t.Error("null benchmark emitted instructions")
	}
	if nb.String() != "null" {
		t.Errorf("String = %q", nb.String())
	}
}

// TestLoopBenchmarkModel: the paper's analytical model ie = 1 + 3l must
// hold exactly for the emitted program.
func TestLoopBenchmarkModel(t *testing.T) {
	f := func(iters uint32) bool {
		l := int64(iters % 2_000_000)
		lb := LoopBenchmark(l)
		if lb.ExpectedInstr != 1+3*l {
			return false
		}
		b := isa.NewBuilder("bench", 0x1000)
		lb.Emit(b)
		b.Emit(isa.Halt())
		p := b.Build()
		return p.StaticRetired() == lb.ExpectedInstr+1 // +halt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLoopBenchmarkNegativeClamped(t *testing.T) {
	lb := LoopBenchmark(-5)
	if lb.ExpectedInstr != 1 || lb.Iterations != 0 {
		t.Errorf("negative iters: %+v", lb)
	}
}

func TestLoopBenchmarkString(t *testing.T) {
	if LoopBenchmark(42).String() != "loop(42)" {
		t.Errorf("String = %q", LoopBenchmark(42).String())
	}
}

func TestExpectedLoopInstr(t *testing.T) {
	if ExpectedLoopInstr(1_000_000) != 3_000_001 {
		t.Error("model mismatch")
	}
}

func TestErrTooManyCounters(t *testing.T) {
	e := &ErrTooManyCounters{Requested: 5, Available: 2, Model: "Core2 Duo E6600"}
	if e.Error() == "" {
		t.Error("empty error text")
	}
}

func TestErrUnsupportedPattern(t *testing.T) {
	e := &ErrUnsupportedPattern{Pattern: ReadRead, Infra: "PHpm"}
	if e.Error() == "" {
		t.Error("empty error text")
	}
}
