package core_test

import (
	"errors"
	"sort"
	"testing"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/stack"
)

func med(xs []int64) float64 {
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return float64(s[n/2])
	}
	return float64(s[n/2-1]+s[n/2]) / 2
}

func sys(t *testing.T, m *cpu.Model, code string) *stack.System {
	t.Helper()
	s, err := stack.New(m, code, stack.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// nullErrors runs the null benchmark n times across all optimization
// levels and returns the per-run error of counter 0.
func nullErrors(t *testing.T, s *stack.System, pat core.Pattern, mode core.MeasureMode, n int) []int64 {
	t.Helper()
	var all []int64
	for _, opt := range compiler.AllOptLevels {
		errs, err := s.MeasureN(core.Request{
			Bench: core.NullBenchmark(), Pattern: pat, Mode: mode, Opt: opt,
		}, n, uint64(opt)*1000+17)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, errs...)
	}
	return all
}

// TestTable3Calibration pins the paper's Table 3: the median
// null-benchmark error for each stack at its reported pattern, pooled
// over the three processors and four optimization levels. Tolerances are
// ±6% (±2 instructions for the small user-mode cells).
func TestTable3Calibration(t *testing.T) {
	rows := []struct {
		mode core.MeasureMode
		code string
		pat  core.Pattern
		want float64
	}{
		{core.ModeUserKernel, "pm", core.ReadRead, 726},
		{core.ModeUserKernel, "PLpm", core.StartRead, 742},
		{core.ModeUserKernel, "PHpm", core.StartRead, 844},
		{core.ModeUserKernel, "pc", core.StartRead, 163},
		{core.ModeUserKernel, "PLpc", core.StartRead, 251},
		{core.ModeUserKernel, "PHpc", core.StartRead, 339},
		{core.ModeUser, "pm", core.ReadRead, 37},
		{core.ModeUser, "PLpm", core.StartRead, 134},
		{core.ModeUser, "PHpm", core.StartRead, 236},
		{core.ModeUser, "pc", core.StartRead, 67},
		{core.ModeUser, "PLpc", core.StartRead, 152},
		{core.ModeUser, "PHpc", core.StartRead, 236},
	}
	for _, r := range rows {
		var all []int64
		for _, m := range cpu.AllModels {
			all = append(all, nullErrors(t, sys(t, m, r.code), r.pat, r.mode, 15)...)
		}
		got := med(all)
		tol := r.want * 0.06
		if tol < 2 {
			tol = 2
		}
		if got < r.want-tol || got > r.want+tol {
			t.Errorf("%s %s %s: median error = %v, want %v±%.0f",
				r.mode, r.code, r.pat.Code(), got, r.want, tol)
		}
	}
}

// TestAPILevelOrdering pins Figure 6's central finding: for every
// backend and mode, high-level PAPI > low-level PAPI > direct use.
func TestAPILevelOrdering(t *testing.T) {
	for _, backend := range []string{"pm", "pc"} {
		for _, mode := range []core.MeasureMode{core.ModeUser, core.ModeUserKernel} {
			medians := map[string]float64{}
			for _, prefix := range []string{"", "PL", "PH"} {
				code := prefix + backend
				var all []int64
				for _, m := range cpu.AllModels {
					all = append(all, nullErrors(t, sys(t, m, code), core.StartRead, mode, 10)...)
				}
				medians[code] = med(all)
			}
			if !(medians["PH"+backend] > medians["PL"+backend] && medians["PL"+backend] > medians[backend]) {
				t.Errorf("%s %v: ordering violated: %v", backend, mode, medians)
			}
		}
	}
}

// TestPerfmonBestForUserPerfctrBestForUserKernel pins the paper's
// Section 4.2 guidance: perfmon wins user-mode, perfctr wins
// user+kernel (comparing each stack's best reported pattern).
func TestPerfmonBestForUserPerfctrBestForUserKernel(t *testing.T) {
	medianFor := func(code string, pat core.Pattern, mode core.MeasureMode) float64 {
		var all []int64
		for _, m := range cpu.AllModels {
			all = append(all, nullErrors(t, sys(t, m, code), pat, mode, 10)...)
		}
		return med(all)
	}
	pmUser := medianFor("pm", core.ReadRead, core.ModeUser)
	pcUser := medianFor("pc", core.StartRead, core.ModeUser)
	if pmUser >= pcUser {
		t.Errorf("user mode: pm (%v) should beat pc (%v)", pmUser, pcUser)
	}
	pmUK := medianFor("pm", core.ReadRead, core.ModeUserKernel)
	pcUK := medianFor("pc", core.StartRead, core.ModeUserKernel)
	if pcUK >= pmUK {
		t.Errorf("user+kernel: pc (%v) should beat pm (%v)", pcUK, pmUK)
	}
	// The paper quantifies the u+k reduction at 77%; allow 65-85%.
	red := 1 - pcUK/pmUK
	if red < 0.65 || red > 0.85 {
		t.Errorf("pc vs pm u+k reduction = %.0f%%, want ~77%%", red*100)
	}
}

// TestFig4TSC pins Figure 4: on the Core 2 Duo with perfctr, disabling
// the TSC forces syscall reads and inflates the read-read error from
// ~109.5 to ~1698, while start-stop is unaffected.
func TestFig4TSC(t *testing.T) {
	newSys := func(tsc bool) *stack.System {
		s, err := stack.New(cpu.Core2Duo, "pc", stack.Options{WithTSC: tsc})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	rrOn := med(nullErrors(t, newSys(true), core.ReadRead, core.ModeUserKernel, 15))
	rrOff := med(nullErrors(t, newSys(false), core.ReadRead, core.ModeUserKernel, 15))
	if rrOn < 95 || rrOn > 125 {
		t.Errorf("rr TSC on = %v, want ~109.5", rrOn)
	}
	if rrOff < 1550 || rrOff > 1850 {
		t.Errorf("rr TSC off = %v, want ~1698", rrOff)
	}
	aoOn := med(nullErrors(t, newSys(true), core.StartStop, core.ModeUserKernel, 15))
	aoOff := med(nullErrors(t, newSys(false), core.StartStop, core.ModeUserKernel, 15))
	if diff := aoOff - aoOn; diff < -25 || diff > 25 {
		t.Errorf("start-stop should be unaffected by TSC: on=%v off=%v", aoOn, aoOff)
	}
}

// TestFig5RegisterScaling pins Figure 5 on the K8: each additional
// perfmon counter adds ~112 instructions to the read-read error
// (573 -> 909 from one to four registers), while perfctr's fast path
// adds ~13. In user mode, perfmon's error is flat at ~37.
func TestFig5RegisterScaling(t *testing.T) {
	errsFor := func(code string, n int, mode core.MeasureMode) float64 {
		s := sys(t, cpu.Athlon64X2, code)
		evs := make([]cpu.Event, n)
		for i := range evs {
			evs[i] = cpu.EventInstrRetired
		}
		var all []int64
		for _, opt := range compiler.AllOptLevels {
			errs, err := s.MeasureN(core.Request{
				Bench: core.NullBenchmark(), Pattern: core.ReadRead,
				Mode: mode, Events: evs, Opt: opt,
			}, 10, uint64(n)*100)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, errs...)
		}
		return med(all)
	}

	pm1 := errsFor("pm", 1, core.ModeUserKernel)
	pm4 := errsFor("pm", 4, core.ModeUserKernel)
	if pm1 < 540 || pm1 > 610 {
		t.Errorf("K8 pm rr 1 reg = %v, want ~573", pm1)
	}
	if pm4 < 860 || pm4 > 960 {
		t.Errorf("K8 pm rr 4 regs = %v, want ~909", pm4)
	}
	perReg := (pm4 - pm1) / 3
	if perReg < 95 || perReg > 130 {
		t.Errorf("pm per-register cost = %v, want ~112", perReg)
	}

	pc1 := errsFor("pc", 1, core.ModeUserKernel)
	pc4 := errsFor("pc", 4, core.ModeUserKernel)
	if pc1 < 75 || pc1 > 95 {
		t.Errorf("K8 pc rr 1 reg = %v, want ~84", pc1)
	}
	if (pc4-pc1)/3 < 9 || (pc4-pc1)/3 > 18 {
		t.Errorf("pc per-register cost = %v, want ~13", (pc4-pc1)/3)
	}

	// perfmon user-mode error is independent of the register count.
	pmU1 := errsFor("pm", 1, core.ModeUser)
	pmU4 := errsFor("pm", 4, core.ModeUser)
	if pmU1 < 35 || pmU1 > 40 || pmU4 < 35 || pmU4 > 40 {
		t.Errorf("K8 pm user rr = %v (1 reg), %v (4 regs), want ~37 flat", pmU1, pmU4)
	}
}

// TestPerfctrFastReadStaysInUserMode pins the Section 4.1 observation:
// with the TSC on, perfctr's read-read error is identical in user and
// user+kernel mode because the fast path never enters the kernel.
func TestPerfctrFastReadStaysInUserMode(t *testing.T) {
	s := sys(t, cpu.Athlon64X2, "pc")
	uk, err := s.MeasureN(core.Request{Bench: core.NullBenchmark(), Pattern: core.ReadRead, Mode: core.ModeUserKernel, Opt: compiler.O2}, 25, 5)
	if err != nil {
		t.Fatal(err)
	}
	u, err := s.MeasureN(core.Request{Bench: core.NullBenchmark(), Pattern: core.ReadRead, Mode: core.ModeUser, Opt: compiler.O2}, 25, 5)
	if err != nil {
		t.Fatal(err)
	}
	if med(uk) != med(u) {
		t.Errorf("pc rr: u+k median %v != user median %v", med(uk), med(u))
	}
}

// TestHighLevelPatternRestrictions: PAPI high level cannot express
// read-read or read-stop (its read resets the counters).
func TestHighLevelPatternRestrictions(t *testing.T) {
	for _, code := range []string{"PHpm", "PHpc"} {
		s := sys(t, cpu.Athlon64X2, code)
		for _, pat := range []core.Pattern{core.ReadRead, core.ReadStop} {
			_, err := s.Measure(core.Request{Bench: core.NullBenchmark(), Pattern: pat, Mode: core.ModeUser})
			var up *core.ErrUnsupportedPattern
			if !errors.As(err, &up) {
				t.Errorf("%s %s: err = %v, want ErrUnsupportedPattern", code, pat.Code(), err)
			}
		}
		for _, pat := range []core.Pattern{core.StartRead, core.StartStop} {
			if _, err := s.Measure(core.Request{Bench: core.NullBenchmark(), Pattern: pat, Mode: core.ModeUser}); err != nil {
				t.Errorf("%s %s: unexpected error %v", code, pat.Code(), err)
			}
		}
	}
}

// TestTooManyCounters: the Core 2 Duo has two programmable counters.
func TestTooManyCounters(t *testing.T) {
	s := sys(t, cpu.Core2Duo, "pm")
	_, err := s.Measure(core.Request{
		Bench: core.NullBenchmark(), Pattern: core.StartRead, Mode: core.ModeUser,
		Events: []cpu.Event{cpu.EventInstrRetired, cpu.EventInstrRetired, cpu.EventInstrRetired},
	})
	var tm *core.ErrTooManyCounters
	if !errors.As(err, &tm) {
		t.Fatalf("err = %v, want ErrTooManyCounters", err)
	}
	if tm.Requested != 3 || tm.Available != 2 {
		t.Errorf("error detail: %+v", tm)
	}
}

// TestLoopMeasurementAccuracy: measuring the loop benchmark must yield
// the analytical count plus the pattern's fixed error; the benchmark
// body itself is counted exactly.
func TestLoopMeasurementAccuracy(t *testing.T) {
	s := sys(t, cpu.Athlon64X2, "pm")
	for _, l := range []int64{0, 100, 10_000} {
		m, err := s.Measure(core.Request{Bench: core.LoopBenchmark(l), Pattern: core.ReadRead, Mode: core.ModeUser, Opt: compiler.O1, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		errv := m.Error(0, core.ModeUser)
		// Fixed user-mode rr error is ~37; the loop body must not add
		// user-mode error beyond interrupt skew (a few instructions).
		if errv < 30 || errv > 55 {
			t.Errorf("l=%d: user error = %d, want ~37", l, errv)
		}
	}
}

// TestOptLevelDoesNotAffectError is the paper's ANOVA finding: the
// compiler optimization level changes only out-of-window glue, so the
// deterministic error component is identical across O0-O3.
func TestOptLevelDoesNotAffectError(t *testing.T) {
	s := sys(t, cpu.Core2Duo, "pm")
	var medians []float64
	for _, opt := range compiler.AllOptLevels {
		errs, err := s.MeasureN(core.Request{Bench: core.NullBenchmark(), Pattern: core.ReadRead, Mode: core.ModeUser, Opt: opt}, 30, 900)
		if err != nil {
			t.Fatal(err)
		}
		medians = append(medians, med(errs))
	}
	for _, m := range medians[1:] {
		if m < medians[0]-2 || m > medians[0]+2 {
			t.Errorf("medians across opt levels differ: %v", medians)
		}
	}
}

// TestDeterminism: identical request + seed reproduces identical counts.
func TestDeterminism(t *testing.T) {
	s := sys(t, cpu.PentiumD, "PLpc")
	req := core.Request{Bench: core.LoopBenchmark(50_000), Pattern: core.StartStop, Mode: core.ModeUserKernel, Opt: compiler.O3, Seed: 99}
	m1, err := s.Measure(req)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s.Measure(req)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Deltas[0] != m2.Deltas[0] {
		t.Errorf("same seed, different counts: %d vs %d", m1.Deltas[0], m2.Deltas[0])
	}
}

// TestKernelOnlyCounting: the loop benchmark never enters the kernel,
// so kernel-only counts are pure measurement error plus tick handlers.
func TestKernelOnlyCounting(t *testing.T) {
	s := sys(t, cpu.Core2Duo, "pc")
	m, err := s.Measure(core.Request{Bench: core.NullBenchmark(), Pattern: core.StartRead, Mode: core.ModeKernel, Opt: compiler.O2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := m.Error(0, core.ModeKernel)
	// Null bench window: only the start syscall's post-enable kernel
	// path, ~95 instructions (no user instructions are counted).
	if e < 60 || e > 220 {
		t.Errorf("kernel-only null error = %d, want small kernel-path residue", e)
	}
}

// TestMeasureNLength checks the repetition helper.
func TestMeasureNLength(t *testing.T) {
	s := sys(t, cpu.Athlon64X2, "pm")
	errs, err := s.MeasureN(core.Request{Bench: core.NullBenchmark(), Pattern: core.StartStop, Mode: core.ModeUser}, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != 7 {
		t.Errorf("len = %d", len(errs))
	}
}

// TestBuildHarnessValidates: the assembled harness is a well-formed
// user program for every stack and pattern.
func TestBuildHarnessValidates(t *testing.T) {
	for _, code := range stack.Codes {
		s := sys(t, cpu.Athlon64X2, code)
		for _, pat := range core.AllPatterns {
			if !pat.SupportedBy(s.Infra) {
				continue
			}
			if err := s.Infra.Setup([]core.CounterSpec{core.Spec(cpu.EventInstrRetired, core.ModeUser)}); err != nil {
				t.Fatal(err)
			}
			p, err := core.BuildHarness(s.Infra, core.Request{Bench: core.LoopBenchmark(10), Pattern: pat, Opt: compiler.O0})
			if err != nil {
				t.Errorf("%s %s: %v", code, pat.Code(), err)
				continue
			}
			if err := p.Validate(true); err != nil {
				t.Errorf("%s %s: invalid harness: %v", code, pat.Code(), err)
			}
		}
	}
}
