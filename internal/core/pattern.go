package core

import "fmt"

// Pattern is one of the four counter access patterns of Table 2. Every
// pattern captures the counter value in c0 before the benchmark and c1
// after it; c-delta = c1 - c0 is the measured count, and its deviation
// from the benchmark's analytical count is the measurement error.
type Pattern uint8

const (
	// StartRead (ar): c0=0, reset, start ... c1=read.
	StartRead Pattern = iota
	// StartStop (ao): c0=0, reset, start ... stop, c1=read.
	StartStop
	// ReadRead (rr): start, c0=read ... c1=read.
	ReadRead
	// ReadStop (ro): start, c0=read ... stop, c1=read.
	ReadStop
)

// AllPatterns lists the patterns in Table 2's order.
var AllPatterns = []Pattern{StartRead, StartStop, ReadRead, ReadStop}

// Code returns the paper's two-letter pattern code.
func (p Pattern) Code() string {
	switch p {
	case StartRead:
		return "ar"
	case StartStop:
		return "ao"
	case ReadRead:
		return "rr"
	case ReadStop:
		return "ro"
	}
	return fmt.Sprintf("p%d", uint8(p))
}

// String returns the paper's long pattern name.
func (p Pattern) String() string {
	switch p {
	case StartRead:
		return "start-read"
	case StartStop:
		return "start-stop"
	case ReadRead:
		return "read-read"
	case ReadStop:
		return "read-stop"
	}
	return fmt.Sprintf("pattern(%d)", uint8(p))
}

// PatternByCode returns the pattern for a two-letter code.
func PatternByCode(code string) (Pattern, error) {
	for _, p := range AllPatterns {
		if p.Code() == code {
			return p, nil
		}
	}
	return 0, fmt.Errorf("core: unknown pattern code %q", code)
}

// ReadsAtC0 reports whether the pattern captures c0 with an explicit
// read (rr, ro) rather than relying on reset (ar, ao).
func (p Pattern) ReadsAtC0() bool { return p == ReadRead || p == ReadStop }

// StopsBeforeC1 reports whether counting is stopped before the final
// read (ao, ro).
func (p Pattern) StopsBeforeC1() bool { return p == StartStop || p == ReadStop }

// SupportedBy reports whether the infrastructure can express the
// pattern. The PAPI high-level API resets counters on every read, so it
// cannot implement read-read or read-stop (Table 2 footnote).
func (p Pattern) SupportedBy(infra Infrastructure) bool {
	if p.ReadsAtC0() {
		return infra.SupportsReadWithoutReset()
	}
	return true
}

// ErrUnsupportedPattern is returned when a pattern cannot be expressed
// on a given infrastructure.
type ErrUnsupportedPattern struct {
	Pattern Pattern
	Infra   string
}

// Error implements error.
func (e *ErrUnsupportedPattern) Error() string {
	return fmt.Sprintf("core: pattern %s unsupported on %s (read implies reset)", e.Pattern, e.Infra)
}
