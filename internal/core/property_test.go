package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/stack"
)

// quickCfg pins testing/quick to a fixed-seed source: the drawn inputs
// are reproducible run to run, so a boundary-case draw (e.g. interrupt
// skew landing exactly on a tolerance edge) cannot make the suite
// flake — it either always passes or always fails.
func quickCfg(maxCount int) *quick.Config {
	return &quick.Config{MaxCount: maxCount, Rand: rand.New(rand.NewSource(1))}
}

// TestPropertyLayerOrdering: for any (processor, backend, supported
// pattern, opt level, mode), wrapping the stack in PAPI layers never
// reduces the measurement error. This is Figure 6's finding as a
// universally quantified invariant.
func TestPropertyLayerOrdering(t *testing.T) {
	models := cpu.AllModels
	f := func(mi, bi, pi, oi, modi, seed8 uint8) bool {
		model := models[int(mi)%len(models)]
		backend := []string{"pm", "pc"}[int(bi)%2]
		pattern := core.AllPatterns[int(pi)%len(core.AllPatterns)]
		opt := compiler.AllOptLevels[int(oi)%4]
		mode := []core.MeasureMode{core.ModeUser, core.ModeUserKernel}[int(modi)%2]
		seed := uint64(seed8)

		med := func(code string) float64 {
			s, err := stack.New(model, code, stack.DefaultOptions)
			if err != nil {
				t.Fatal(err)
			}
			if !pattern.SupportedBy(s.Infra) {
				return -1
			}
			errs, err := s.MeasureN(core.Request{
				Bench: core.NullBenchmark(), Pattern: pattern, Mode: mode, Opt: opt,
			}, 9, seed)
			if err != nil {
				t.Fatal(err)
			}
			var sum float64
			for _, e := range errs {
				sum += float64(e)
			}
			return sum / float64(len(errs))
		}
		direct := med(backend)
		low := med("PL" + backend)
		high := med("PH" + backend)
		if high < 0 { // pattern unsupported at high level
			return low >= direct
		}
		return high > low && low > direct
	}
	if err := quick.Check(f, quickCfg(25)); err != nil {
		t.Error(err)
	}
}

// TestPropertyUserErrorDurationInvariant: the user-mode fixed error is
// independent of benchmark duration up to interrupt skew (a few
// instructions), for any stack and loop size.
func TestPropertyUserErrorDurationInvariant(t *testing.T) {
	f := func(codeIdx, seed8 uint8, sizeSel uint16) bool {
		code := stack.Codes[int(codeIdx)%len(stack.Codes)]
		size := int64(sizeSel)*37 + 1
		s, err := stack.New(cpu.Core2Duo, code, stack.DefaultOptions)
		if err != nil {
			t.Fatal(err)
		}
		short, err := core.Measure(s.Kernel, s.Infra, core.Request{
			Bench: core.LoopBenchmark(1), Pattern: core.StartRead,
			Mode: core.ModeUser, Seed: uint64(seed8),
		})
		if err != nil {
			t.Fatal(err)
		}
		long, err := core.Measure(s.Kernel, s.Infra, core.Request{
			Bench: core.LoopBenchmark(size), Pattern: core.StartRead,
			Mode: core.ModeUser, Seed: uint64(seed8) + 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		d := long.Error(0, core.ModeUser) - short.Error(0, core.ModeUser)
		return d >= -12 && d <= 12
	}
	if err := quick.Check(f, quickCfg(40)); err != nil {
		t.Error(err)
	}
}

// TestPropertyMeasuredNeverBelowTruth: in user+kernel mode the counted
// instructions can never be fewer than the benchmark's true count — the
// infrastructure only ever adds instructions.
func TestPropertyMeasuredNeverBelowTruth(t *testing.T) {
	f := func(codeIdx, patIdx, seed8 uint8, sizeSel uint16) bool {
		code := stack.Codes[int(codeIdx)%len(stack.Codes)]
		pattern := core.AllPatterns[int(patIdx)%len(core.AllPatterns)]
		s, err := stack.New(cpu.PentiumD, code, stack.DefaultOptions)
		if err != nil {
			t.Fatal(err)
		}
		if !pattern.SupportedBy(s.Infra) {
			return true
		}
		m, err := core.Measure(s.Kernel, s.Infra, core.Request{
			Bench:   core.LoopBenchmark(int64(sizeSel)),
			Pattern: pattern,
			Mode:    core.ModeUserKernel,
			Seed:    uint64(seed8),
		})
		if err != nil {
			t.Fatal(err)
		}
		return m.Deltas[0] >= m.Expected
	}
	if err := quick.Check(f, quickCfg(40)); err != nil {
		t.Error(err)
	}
}

// TestPropertyWindowAdditivity: the null-benchmark error plus the true
// loop count predicts the loop measurement within jitter and skew, for
// any loop size — the decomposition the paper's Sections 4 and 5 rest
// on (fixed access cost + benchmark + duration-dependent part; in user
// mode the duration part vanishes).
func TestPropertyWindowAdditivity(t *testing.T) {
	s, err := stack.New(cpu.Athlon64X2, "pm", stack.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	f := func(sizeSel uint16, seed8 uint8) bool {
		size := int64(sizeSel)
		null, err := core.Measure(s.Kernel, s.Infra, core.Request{
			Bench: core.NullBenchmark(), Pattern: core.ReadRead,
			Mode: core.ModeUser, Seed: uint64(seed8),
		})
		if err != nil {
			t.Fatal(err)
		}
		loop, err := core.Measure(s.Kernel, s.Infra, core.Request{
			Bench: core.LoopBenchmark(size), Pattern: core.ReadRead,
			Mode: core.ModeUser, Seed: uint64(seed8),
		})
		if err != nil {
			t.Fatal(err)
		}
		predicted := null.Deltas[0] + loop.Expected
		diff := loop.Deltas[0] - predicted
		return diff >= -10 && diff <= 10
	}
	if err := quick.Check(f, quickCfg(50)); err != nil {
		t.Error(err)
	}
}
