package core

import (
	"fmt"

	"repro/internal/compiler"
	"repro/internal/cpu"
	"repro/internal/engine"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/xrand"
)

// Request describes one measurement: what to run, how to access the
// counters, and what to count.
type Request struct {
	// Bench is the micro-benchmark to measure.
	Bench *Benchmark
	// Pattern is the counter access pattern (Table 2).
	Pattern Pattern
	// Mode selects user, user+kernel, or kernel-only counting.
	Mode MeasureMode
	// Events are the events to count, one counter each; when empty, a
	// single retired-instruction counter is used.
	Events []cpu.Event
	// Opt is the harness compilation level (Section 3.6).
	Opt compiler.OptLevel
	// Seed individualizes the run (timer phase, path jitter). Use
	// different seeds for repeated runs of the same configuration.
	Seed uint64
	// Runner is the execution engine driving the harness run; nil
	// selects the process default (the compiled engine). Both engines
	// produce byte-identical measurements — see internal/engine.
	Runner cpu.Runner
}

// withDefaults fills unset fields.
func (r Request) withDefaults() Request {
	if len(r.Events) == 0 {
		r.Events = []cpu.Event{cpu.EventInstrRetired}
	}
	return r
}

// Measurement is the outcome of one measured benchmark run.
type Measurement struct {
	// Deltas is c1-c0 per configured counter, in Events order.
	Deltas []int64
	// Expected is the benchmark's analytical retired-instruction count.
	Expected int64
	// Iterations echoes the benchmark's loop trip count.
	Iterations int64
	// TimerTicks is the number of timer interrupts delivered during the
	// whole harness run (not only the window).
	TimerTicks int
	// Cycles is the total harness run length in cycles.
	Cycles float64
}

// Error returns the instruction-count measurement error of counter i:
// the counted instructions minus the analytical ground truth. For
// kernel-only measurements the expected count is zero, since the
// benchmarks never enter the kernel (Figure 9's premise).
func (m *Measurement) Error(i int, mode MeasureMode) int64 {
	if mode == ModeKernel {
		return m.Deltas[i]
	}
	return m.Deltas[i] - m.Expected
}

// Measure performs one measurement of req on the infrastructure bound
// to kernel k. It configures the counters, assembles the harness
// program (glue + pattern calls + benchmark), runs it, and extracts the
// per-counter deltas from the capture log.
func Measure(k *kernel.Kernel, infra Infrastructure, req Request) (*Measurement, error) {
	req = req.withDefaults()
	if !req.Pattern.SupportedBy(infra) {
		return nil, &ErrUnsupportedPattern{Pattern: req.Pattern, Infra: infra.Name()}
	}

	specs := make([]CounterSpec, len(req.Events))
	for i, ev := range req.Events {
		specs[i] = Spec(ev, req.Mode)
	}
	if err := infra.Setup(specs); err != nil {
		return nil, err
	}

	prog, err := BuildHarness(infra, req)
	if err != nil {
		return nil, err
	}

	runner := req.Runner
	if runner == nil {
		runner = engine.Default()
	}
	k.Core.SeedRun(xrand.Mix(req.Seed, uint64(req.Pattern), uint64(req.Opt)))
	if err := runner.RunProgram(k.Core, prog); err != nil {
		return nil, fmt.Errorf("core: harness run failed: %w", err)
	}
	return extract(k.Core, infra.NumCounters(), req)
}

// BuildHarness assembles the complete measurement program: compiled
// harness glue, the pattern's infrastructure calls, and the benchmark
// between the capture points.
func BuildHarness(infra Infrastructure, req Request) (*isa.Program, error) {
	req = req.withDefaults()
	glue := compiler.Harness(infra.Name(), req.Pattern.Code(), req.Opt, infra.Backend())
	name := fmt.Sprintf("harness-%s-%s-%s-%s", infra.Name(), req.Pattern.Code(), req.Bench, req.Opt)
	b := isa.NewBuilder(name, glue.Base)

	b.ALUBlock(glue.PreInstr)

	if req.Pattern.ReadsAtC0() {
		infra.EmitStart(b)
		infra.EmitRead(b, PhaseC0)
	} else {
		infra.EmitPrepare(b)
	}

	req.Bench.Emit(b)

	if req.Pattern.StopsBeforeC1() {
		infra.EmitStop(b)
	}
	infra.EmitRead(b, PhaseC1)

	b.ALUBlock(glue.PostInstr)
	b.Emit(isa.Halt())

	p := b.Build()
	if err := p.Validate(true); err != nil {
		return nil, fmt.Errorf("core: bad harness: %w", err)
	}
	return p, nil
}

// extract computes per-counter deltas from the core's capture log.
func extract(c *cpu.Core, n int, req Request) (*Measurement, error) {
	c0 := make([]int64, n)
	c1 := make([]int64, n)
	seen0 := make([]bool, n)
	seen1 := make([]bool, n)
	for _, cap := range c.Captures {
		switch {
		case cap.Slot < 0 || cap.Slot >= 2*n:
			return nil, fmt.Errorf("core: capture slot %d out of range", cap.Slot)
		case cap.Slot < n:
			c0[cap.Slot] = cap.Value
			seen0[cap.Slot] = true
		default:
			c1[cap.Slot-n] = cap.Value
			seen1[cap.Slot-n] = true
		}
	}
	m := &Measurement{
		Deltas:     make([]int64, n),
		Expected:   req.Bench.ExpectedInstr,
		Iterations: req.Bench.Iterations,
		TimerTicks: c.TimerDeliveries,
		Cycles:     c.Cycles,
	}
	for i := 0; i < n; i++ {
		if !seen1[i] {
			return nil, fmt.Errorf("core: counter %d: no c1 capture (pattern %s)", i, req.Pattern)
		}
		if req.Pattern.ReadsAtC0() {
			if !seen0[i] {
				return nil, fmt.Errorf("core: counter %d: no c0 capture (pattern %s)", i, req.Pattern)
			}
			m.Deltas[i] = c1[i] - c0[i]
		} else {
			m.Deltas[i] = c1[i] // c0 = 0 by reset
		}
	}
	return m, nil
}

// MeasureN runs the same request n times with seeds seedBase..seedBase+n-1
// and returns the per-run error of counter 0 — the repeated-measurement
// shape used throughout the paper's box plots.
func MeasureN(k *kernel.Kernel, infra Infrastructure, req Request, n int, seedBase uint64) ([]int64, error) {
	errs := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		req.Seed = seedBase + uint64(i)
		m, err := Measure(k, infra, req)
		if err != nil {
			return nil, err
		}
		errs = append(errs, m.Error(0, req.Mode))
	}
	return errs, nil
}
