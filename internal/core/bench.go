package core

import (
	"fmt"

	"repro/internal/isa"
)

// Benchmark is a micro-benchmark with analytically known event counts
// (Section 3.4). Emit appends the benchmark's instructions to a program
// under construction; ExpectedInstr is the ground-truth retired
// instruction count used to compute the measurement error.
type Benchmark struct {
	// Name identifies the benchmark ("null", "loop").
	Name string
	// Emit appends the benchmark body.
	Emit func(b *isa.Builder)
	// ExpectedInstr is the exact instruction count the body retires.
	ExpectedInstr int64
	// Iterations is the loop trip count (0 for the null benchmark);
	// recorded so duration studies can regress error on it.
	Iterations int64
}

// String returns a short description.
func (bm *Benchmark) String() string {
	if bm.Iterations > 0 {
		return fmt.Sprintf("%s(%d)", bm.Name, bm.Iterations)
	}
	return bm.Name
}

// NullBenchmark returns the empty benchmark: zero instructions, so every
// counted event is measurement error (Section 4).
func NullBenchmark() *Benchmark {
	return &Benchmark{
		Name:          "null",
		Emit:          func(b *isa.Builder) {},
		ExpectedInstr: 0,
	}
}

// Loop body encoding: the paper's gcc inline assembly (Figure 3)
//
//	movl $0, %eax        ; 5 bytes, once
//	.loop: addl $1, %eax ; 3 bytes
//	cmpl $MAX, %eax      ; 5 bytes
//	jne .loop            ; 2 bytes
//
// retires 1 + 3*MAX instructions. Byte sizes matter: they determine
// whether the 10-byte body straddles a fetch-window boundary, the
// placement effect of Section 6.
const (
	loopInitBytes    = 5
	loopAddBytes     = 3
	loopCmpBytes     = 5
	loopJneBytes     = 2
	loopBodyBytes    = loopAddBytes + loopCmpBytes + loopJneBytes
	loopInstrPerIter = 3
)

// LoopBodyBytes is the encoded size of the loop body, exported for
// placement-model tests.
const LoopBodyBytes = loopBodyBytes

// LoopBenchmark returns the paper's loop micro-benchmark with the given
// iteration count: exactly 1 + 3*iters retired instructions
// (ie = 1 + 3l, Section 5).
func LoopBenchmark(iters int64) *Benchmark {
	if iters < 0 {
		iters = 0
	}
	return &Benchmark{
		Name: "loop",
		Emit: func(b *isa.Builder) {
			init := isa.ALU()
			init.Size = loopInitBytes
			b.Emit(init)
			b.Loop(iters, func(body *isa.Builder) {
				add := isa.ALU()
				add.Size = loopAddBytes
				cmp := isa.ALU()
				cmp.Size = loopCmpBytes
				jne := isa.Branch(0, true)
				jne.Size = loopJneBytes
				body.Emit(add, cmp, jne)
			})
		},
		ExpectedInstr: 1 + loopInstrPerIter*iters,
		Iterations:    iters,
	}
}

// ExpectedLoopInstr is the paper's analytical model ie = 1 + 3l.
func ExpectedLoopInstr(iters int64) int64 { return 1 + loopInstrPerIter*iters }

// RawProgram builds the benchmark as a bare program — body plus halt,
// no measurement harness. This is the form consumed by observers that
// watch the PMU directly rather than through a counter-access stack:
// the multiplexing and sampling models, and the planner's raw-domain
// reference runs. Counts measured on a raw program include no
// infrastructure overhead, so no calibration offset applies to them.
func (bm *Benchmark) RawProgram() *isa.Program {
	b := isa.NewBuilder("raw-"+bm.Name, 0x4000)
	bm.Emit(b)
	b.Emit(isa.Halt())
	return b.Build()
}

// ArrayBenchmark returns a loop that walks an array in memory — the
// third micro-benchmark of Korn, Teller, and Castillo's study discussed
// in the paper's related work, and the workload whose cycle count is
// sensitive to CPU frequency scaling (memory latency is fixed in wall
// time, so its cost in cycles tracks the clock). It retires exactly
// 1 + 4*iters instructions: load, add, cmp, jne per iteration.
func ArrayBenchmark(iters int64) *Benchmark {
	if iters < 0 {
		iters = 0
	}
	return &Benchmark{
		Name: "array",
		Emit: func(b *isa.Builder) {
			init := isa.ALU()
			init.Size = loopInitBytes
			b.Emit(init)
			b.Loop(iters, func(body *isa.Builder) {
				ld := isa.Load()
				ld.Size = 3
				add := isa.ALU()
				add.Size = loopAddBytes
				cmp := isa.ALU()
				cmp.Size = loopCmpBytes
				jne := isa.Branch(0, true)
				jne.Size = loopJneBytes
				body.Emit(ld, add, cmp, jne)
			})
		},
		ExpectedInstr: 1 + 4*iters,
		Iterations:    iters,
	}
}
