package core

import (
	"fmt"

	"repro/internal/compiler"
	"repro/internal/cpu"
	"repro/internal/kernel"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// SweepConfig describes a factorial accuracy study: every combination
// of the listed factors is measured Runs times. It is the programmable
// form of the sweeps behind the paper's figures — package experiments
// uses specialized variants; library users get this one.
type SweepConfig struct {
	// Systems are the prebuilt measurement systems to sweep (one per
	// processor x stack combination under study). Each system's
	// kernel/infrastructure pair is reused across its cells.
	Systems []SweepSystem
	// Bench builds the benchmark per cell; nil defaults to the null
	// benchmark.
	Bench func() *Benchmark
	// Patterns to measure; unsupported (pattern, stack) combinations
	// are skipped, as in the paper. Defaults to all four.
	Patterns []Pattern
	// Opts are the harness optimization levels; defaults to O0-O3.
	Opts []compiler.OptLevel
	// Registers are the counter-set sizes; defaults to {1}. Cells
	// exceeding a processor's counters are skipped.
	Registers []int
	// Modes are the counting modes; defaults to user and user+kernel.
	Modes []MeasureMode
	// Runs is the repetition count per cell (default 10).
	Runs int
	// Seed individualizes the sweep.
	Seed uint64
}

// SweepSystem names one kernel+infrastructure under test.
type SweepSystem struct {
	Kernel *kernel.Kernel
	Infra  Infrastructure
}

// SweepRecord is one measurement with its factor levels — directly
// consumable by stats.ANOVA and CSV export.
type SweepRecord struct {
	Processor string
	Stack     string
	Pattern   string
	Opt       string
	Registers int
	Mode      string
	Run       int
	// Error is the instruction-count measurement error of counter 0.
	Error int64
}

// Levels returns the record's factor labels in SweepFactors order.
func (r SweepRecord) Levels() []string {
	return []string{r.Processor, r.Stack, r.Pattern, r.Opt,
		fmt.Sprintf("%d", r.Registers), r.Mode}
}

// SweepFactors names the columns of SweepRecord.Levels.
var SweepFactors = []string{"processor", "infrastructure", "pattern", "optlevel", "registers", "mode"}

// withDefaults fills unset sweep fields.
func (c SweepConfig) withDefaults() SweepConfig {
	if c.Bench == nil {
		c.Bench = NullBenchmark
	}
	if len(c.Patterns) == 0 {
		c.Patterns = AllPatterns
	}
	if len(c.Opts) == 0 {
		c.Opts = compiler.AllOptLevels
	}
	if len(c.Registers) == 0 {
		c.Registers = []int{1}
	}
	if len(c.Modes) == 0 {
		c.Modes = []MeasureMode{ModeUser, ModeUserKernel}
	}
	if c.Runs <= 0 {
		c.Runs = 10
	}
	return c
}

// Sweep runs the factorial study and returns one record per
// measurement, in deterministic order.
func Sweep(cfg SweepConfig) ([]SweepRecord, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Systems) == 0 {
		return nil, fmt.Errorf("core: sweep needs at least one system")
	}
	var out []SweepRecord
	for si, sys := range cfg.Systems {
		model := sys.Kernel.Model()
		for _, pat := range cfg.Patterns {
			if !pat.SupportedBy(sys.Infra) {
				continue
			}
			for _, opt := range cfg.Opts {
				for _, regs := range cfg.Registers {
					if regs > model.NumProgrammable {
						continue
					}
					for _, mode := range cfg.Modes {
						events := make([]cpu.Event, regs)
						for i := range events {
							events[i] = cpu.EventInstrRetired
						}
						seed := xrand.Mix(cfg.Seed, uint64(si), uint64(pat), uint64(opt), uint64(regs), uint64(mode))
						for run := 0; run < cfg.Runs; run++ {
							m, err := Measure(sys.Kernel, sys.Infra, Request{
								Bench:   cfg.Bench(),
								Pattern: pat,
								Mode:    mode,
								Events:  events,
								Opt:     opt,
								Seed:    seed + uint64(run),
							})
							if err != nil {
								return nil, fmt.Errorf("core: sweep cell %s/%s/%s/%s/%d: %w",
									model.Tag, sys.Infra.Name(), pat.Code(), opt, regs, err)
							}
							out = append(out, SweepRecord{
								Processor: model.Tag,
								Stack:     sys.Infra.Name(),
								Pattern:   pat.Code(),
								Opt:       opt.String(),
								Registers: regs,
								Mode:      mode.String(),
								Run:       run,
								Error:     m.Error(0, mode),
							})
						}
					}
				}
			}
		}
	}
	return out, nil
}

// SweepObservations converts records of one mode into ANOVA
// observations over the paper's five factors (mode excluded — the
// paper analyzes the modes separately).
func SweepObservations(records []SweepRecord, mode MeasureMode) []stats.Observation {
	var obs []stats.Observation
	want := mode.String()
	for _, r := range records {
		if r.Mode != want {
			continue
		}
		obs = append(obs, stats.Observation{
			Levels: []string{r.Processor, r.Stack, r.Pattern, r.Opt, fmt.Sprintf("%d", r.Registers)},
			Y:      float64(r.Error),
		})
	}
	return obs
}
