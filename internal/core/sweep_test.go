package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/stats"
)

func sweepSystems(t *testing.T, codes ...string) []core.SweepSystem {
	t.Helper()
	var out []core.SweepSystem
	for _, code := range codes {
		s := sys(t, cpu.Athlon64X2, code)
		out = append(out, core.SweepSystem{Kernel: s.Kernel, Infra: s.Infra})
	}
	return out
}

func TestSweepBasic(t *testing.T) {
	recs, err := core.Sweep(core.SweepConfig{
		Systems: sweepSystems(t, "pm", "pc"),
		Runs:    3,
		Seed:    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 systems x 4 patterns x 4 opts x 1 reg x 2 modes x 3 runs.
	want := 2 * 4 * 4 * 1 * 2 * 3
	if len(recs) != want {
		t.Fatalf("records = %d, want %d", len(recs), want)
	}
	for _, r := range recs {
		if r.Processor != "K8" {
			t.Fatalf("processor = %q", r.Processor)
		}
		if r.Error < 0 && r.Mode == "user+kernel" {
			t.Errorf("negative u+k error: %+v", r)
		}
		if len(r.Levels()) != len(core.SweepFactors) {
			t.Fatal("levels/factors mismatch")
		}
	}
}

func TestSweepSkipsUnsupportedCells(t *testing.T) {
	recs, err := core.Sweep(core.SweepConfig{
		Systems:   sweepSystems(t, "PHpm"),
		Runs:      1,
		Registers: []int{1, 99}, // 99 exceeds every processor
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Pattern == "rr" || r.Pattern == "ro" {
			t.Errorf("PHpm must skip read patterns, got %+v", r)
		}
		if r.Registers == 99 {
			t.Errorf("oversized register cell not skipped: %+v", r)
		}
	}
	// ar, ao x 4 opts x 1 reg x 2 modes x 1 run.
	if want := 2 * 4 * 1 * 2 * 1; len(recs) != want {
		t.Errorf("records = %d, want %d", len(recs), want)
	}
}

func TestSweepEmptySystems(t *testing.T) {
	if _, err := core.Sweep(core.SweepConfig{}); err == nil || !strings.Contains(err.Error(), "at least one system") {
		t.Errorf("err = %v", err)
	}
}

func TestSweepDeterminism(t *testing.T) {
	run := func() []core.SweepRecord {
		recs, err := core.Sweep(core.SweepConfig{
			Systems: sweepSystems(t, "PLpc"),
			Runs:    2,
			Seed:    42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestSweepFeedsANOVA: the record stream plugs straight into the stats
// engine and reproduces the Section 4.3 verdict on a small design.
func TestSweepFeedsANOVA(t *testing.T) {
	recs, err := core.Sweep(core.SweepConfig{
		Systems: sweepSystems(t, "pm", "pc", "PLpm", "PLpc"),
		Runs:    4,
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	obs := core.SweepObservations(recs, core.ModeUserKernel)
	if len(obs) == 0 {
		t.Fatal("no observations")
	}
	table, err := stats.ANOVA(core.SweepFactors[:5], obs)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]bool{}
	for _, f := range table.Factors {
		byName[f.Name] = f.Significant
	}
	if !byName["infrastructure"] || !byName["pattern"] {
		t.Errorf("infrastructure/pattern must be significant: %s", table)
	}
	if byName["optlevel"] {
		t.Errorf("optlevel must not be significant: %s", table)
	}
	if byName["processor"] {
		t.Log("single-processor sweep: processor factor has one level (not significant), as expected")
	}
}
