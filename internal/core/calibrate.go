package core

import (
	"fmt"

	"repro/internal/compiler"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// Calibration is an estimate of a measurement configuration's fixed
// error, to be subtracted from subsequent measurements (the paper's
// Section 8 guideline).
type Calibration struct {
	// Offset is the estimated fixed error in events.
	Offset float64
	// Strategy names the estimation method.
	Strategy string
	// Samples is the number of calibration runs.
	Samples int
}

// Apply corrects a measured delta.
func (c Calibration) Apply(delta int64) float64 {
	return float64(delta) - c.Offset
}

// CalibrateNull estimates the fixed error with the paper's own method:
// repeated measurements of the null benchmark, whose true count is
// zero, summarized by the median.
func CalibrateNull(k *kernel.Kernel, infra Infrastructure, pattern Pattern, mode MeasureMode, opt compiler.OptLevel, runs int, seed uint64) (Calibration, error) {
	if runs <= 0 {
		return Calibration{}, fmt.Errorf("core: calibration needs runs > 0")
	}
	errs, err := MeasureN(k, infra, Request{
		Bench: NullBenchmark(), Pattern: pattern, Mode: mode, Opt: opt,
	}, runs, seed)
	if err != nil {
		return Calibration{}, err
	}
	return Calibration{
		Offset:   stats.MedianInt64(errs),
		Strategy: "null-benchmark",
		Samples:  runs,
	}, nil
}

// CalibrateNullProbe estimates the fixed error with Najafzadeh and
// Chaiken's proposal (discussed in the paper's Section 9): a null probe
// — two back-to-back reads — is injected at the *beginning of the
// measured code section*, so the read cost is measured in the same
// i-cache and branch-predictor context the real measurement will see,
// rather than in the synthetic context of a dedicated calibration
// binary. The probe's delta is the in-context cost of one read pair.
//
// The probe calibrates read-based patterns; for start/stop patterns the
// probe's read cost approximates the enable/readout halves.
func CalibrateNullProbe(k *kernel.Kernel, infra Infrastructure, mode MeasureMode, opt compiler.OptLevel, warmInstr int, runs int, seed uint64) (Calibration, error) {
	if runs <= 0 {
		return Calibration{}, fmt.Errorf("core: calibration needs runs > 0")
	}
	specs := []CounterSpec{Spec(cpu.EventInstrRetired, mode)}
	if err := infra.Setup(specs); err != nil {
		return Calibration{}, err
	}

	glue := compiler.Harness(infra.Name(), "probe", opt, infra.Backend())
	var deltas []int64
	for r := 0; r < runs; r++ {
		b := isa.NewBuilder("null-probe", glue.Base)
		b.ALUBlock(glue.PreInstr)
		infra.EmitStart(b)
		// Realistic context: the code that would precede the measured
		// section, warming the front end.
		b.ALUBlock(warmInstr)
		// The probe: two reads with nothing between them.
		infra.EmitRead(b, PhaseC0)
		infra.EmitRead(b, PhaseC1)
		b.ALUBlock(glue.PostInstr)
		b.Emit(isa.Halt())
		prog := b.Build()
		if err := prog.Validate(true); err != nil {
			return Calibration{}, err
		}
		k.Core.SeedRun(xrand.Mix(seed, uint64(r), 0x9a))
		if err := k.Core.Run(prog); err != nil {
			return Calibration{}, err
		}
		m, err := extract(k.Core, infra.NumCounters(), Request{
			Bench: NullBenchmark(), Pattern: ReadRead, Mode: mode,
		}.withDefaults())
		if err != nil {
			return Calibration{}, err
		}
		deltas = append(deltas, m.Deltas[0])
	}
	return Calibration{
		Offset:   stats.MedianInt64(deltas),
		Strategy: "null-probe",
		Samples:  runs,
	}, nil
}
