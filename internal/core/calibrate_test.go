package core_test

import (
	"math"
	"testing"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/cpu"
)

func TestCalibrateNull(t *testing.T) {
	s := sys(t, cpu.Athlon64X2, "pm")
	cal, err := core.CalibrateNull(s.Kernel, s.Infra, core.ReadRead, core.ModeUser, compiler.O2, 31, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Strategy != "null-benchmark" || cal.Samples != 31 {
		t.Errorf("calibration metadata: %+v", cal)
	}
	if cal.Offset < 35 || cal.Offset > 42 {
		t.Errorf("pm rr user calibration offset = %v, want ~37", cal.Offset)
	}

	// Applying the calibration to a loop measurement recovers the true
	// count within a few instructions.
	m, err := s.Measure(core.Request{
		Bench: core.LoopBenchmark(10_000), Pattern: core.ReadRead,
		Mode: core.ModeUser, Opt: compiler.O2, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	corrected := cal.Apply(m.Deltas[0])
	if d := math.Abs(corrected - float64(m.Expected)); d > 5 {
		t.Errorf("calibrated residual = %v, want <= 5", d)
	}
}

func TestCalibrateNullErrors(t *testing.T) {
	s := sys(t, cpu.Athlon64X2, "pm")
	if _, err := core.CalibrateNull(s.Kernel, s.Infra, core.ReadRead, core.ModeUser, compiler.O2, 0, 1); err == nil {
		t.Error("zero runs accepted")
	}
}

func TestCalibrateNullProbe(t *testing.T) {
	s := sys(t, cpu.Athlon64X2, "pc")
	cal, err := core.CalibrateNullProbe(s.Kernel, s.Infra, core.ModeUser, compiler.O2, 200, 31, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Strategy != "null-probe" {
		t.Errorf("strategy = %q", cal.Strategy)
	}
	// The probe measures the in-context read-pair cost; for pc with the
	// TSC fast path that is the rr fixed error, ~84 on K8.
	if cal.Offset < 75 || cal.Offset > 95 {
		t.Errorf("probe offset = %v, want ~84", cal.Offset)
	}

	m, err := s.Measure(core.Request{
		Bench: core.LoopBenchmark(5_000), Pattern: core.ReadRead,
		Mode: core.ModeUser, Opt: compiler.O2, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	corrected := cal.Apply(m.Deltas[0])
	if d := math.Abs(corrected - float64(m.Expected)); d > 6 {
		t.Errorf("probe-calibrated residual = %v, want <= 6", d)
	}
}

func TestCalibrateNullProbeErrors(t *testing.T) {
	s := sys(t, cpu.Athlon64X2, "pc")
	if _, err := core.CalibrateNullProbe(s.Kernel, s.Infra, core.ModeUser, compiler.O2, 100, 0, 1); err == nil {
		t.Error("zero runs accepted")
	}
}

// TestCalibrationStrategiesAgree: on this deterministic substrate both
// strategies estimate the same read-pair cost for read-based patterns.
func TestCalibrationStrategiesAgree(t *testing.T) {
	s := sys(t, cpu.Core2Duo, "pm")
	null, err := core.CalibrateNull(s.Kernel, s.Infra, core.ReadRead, core.ModeUser, compiler.O1, 21, 3)
	if err != nil {
		t.Fatal(err)
	}
	probe, err := core.CalibrateNullProbe(s.Kernel, s.Infra, core.ModeUser, compiler.O1, 300, 21, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(null.Offset - probe.Offset); d > 4 {
		t.Errorf("strategies disagree: null=%v probe=%v", null.Offset, probe.Offset)
	}
}
