// Package core implements the paper's contribution: a methodology for
// quantifying the measurement error of performance-counter access
// infrastructures.
//
// The methodology compares measured event counts against analytically
// known ground truth from two micro-benchmarks (Section 3.4):
//
//   - the null benchmark — zero instructions, so any count is error, and
//   - the loop benchmark — exactly 1 + 3*MAX instructions.
//
// Measurements follow one of four counter access patterns (Table 2),
// through one of six infrastructure stacks (Figure 2), counting in user
// or user+kernel mode, across compilers' optimization levels and counter
// register subsets. The package provides the benchmark definitions, the
// pattern window semantics, a single-measurement runner, and a factorial
// sweep engine; package experiments composes these into the paper's
// tables and figures.
package core

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
)

// MeasureMode selects which privilege modes a measurement counts
// (Section 2.5). The paper studies user and user+kernel counting, plus
// kernel-only counting for the Figure 9 cross-check.
type MeasureMode uint8

const (
	// ModeUser counts user-mode events only.
	ModeUser MeasureMode = iota
	// ModeUserKernel counts user plus kernel mode events.
	ModeUserKernel
	// ModeKernel counts kernel-mode events only (Figure 9).
	ModeKernel
)

// String returns the mode label used in the paper's figures.
func (m MeasureMode) String() string {
	switch m {
	case ModeUser:
		return "user"
	case ModeUserKernel:
		return "user+kernel"
	case ModeKernel:
		return "kernel"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Gating returns the per-counter privilege gates for the mode.
func (m MeasureMode) Gating() (user, os bool) {
	switch m {
	case ModeUser:
		return true, false
	case ModeKernel:
		return false, true
	default:
		return true, true
	}
}

// AllModes lists the measurement modes in presentation order.
var AllModes = []MeasureMode{ModeUser, ModeUserKernel, ModeKernel}

// CounterSpec requests one counter: the event and its privilege gating.
type CounterSpec struct {
	Event cpu.Event
	User  bool
	OS    bool
}

// Spec builds the CounterSpec for an event under a measurement mode.
func Spec(ev cpu.Event, m MeasureMode) CounterSpec {
	u, o := m.Gating()
	return CounterSpec{Event: ev, User: u, OS: o}
}

// Phase distinguishes the two capture points of a pattern: c0 before the
// benchmark and c1 after it. Capture slots are assigned per phase so the
// runner can pair them.
type Phase uint8

const (
	// PhaseC0 is the capture before the benchmark runs.
	PhaseC0 Phase = iota
	// PhaseC1 is the capture after the benchmark completes.
	PhaseC1
)

// SlotFor returns the capture slot for counter i of n in the phase.
func (p Phase) SlotFor(i, n int) int {
	if p == PhaseC0 {
		return i
	}
	return n + i
}

// Infrastructure is one counter-access stack from Figure 2: perfctr or
// perfmon2 used directly, or PAPI (low- or high-level) on top of either.
// Implementations emit the *instruction sequences* their real
// counterparts execute; the measurement error then arises mechanically
// from the instructions that land inside the measurement window.
type Infrastructure interface {
	// Name is the paper's stack code: pm, pc, PLpm, PLpc, PHpm, PHpc.
	Name() string
	// Backend is "pm" (perfmon2) or "pc" (perfctr).
	Backend() string

	// Setup programs the requested counters (events and privilege
	// gating) and leaves them disabled at zero, as the real stacks'
	// context-creation calls do before a measurement begins. It reports
	// an error if the processor cannot satisfy the request.
	Setup(specs []CounterSpec) error
	// NumCounters returns the number of counters configured by Setup.
	NumCounters() int

	// EmitPrepare emits the "reset, start" sequence of the ar/ao
	// patterns.
	EmitPrepare(b *isa.Builder)
	// EmitStart emits the bare "start" of the rr/ro patterns.
	EmitStart(b *isa.Builder)
	// EmitRead emits a read of all configured counters, capturing
	// counter i into phase.SlotFor(i, NumCounters()).
	EmitRead(b *isa.Builder, phase Phase)
	// EmitStop emits the "stop" call.
	EmitStop(b *isa.Builder)

	// SupportsReadWithoutReset reports whether a read leaves the counts
	// running. The PAPI high-level API resets on read, which rules out
	// the read-read and read-stop patterns (Table 2 footnote).
	SupportsReadWithoutReset() bool

	// Teardown releases the stack's kernel context between
	// configurations.
	Teardown()
}

// ErrTooManyCounters is returned by Setup when the request exceeds the
// processor's programmable counters.
type ErrTooManyCounters struct {
	Requested, Available int
	Model                string
}

// Error implements error.
func (e *ErrTooManyCounters) Error() string {
	return fmt.Sprintf("core: %d counters requested but %s has %d programmable",
		e.Requested, e.Model, e.Available)
}
