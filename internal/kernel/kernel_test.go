package kernel

import (
	"errors"
	"testing"

	"repro/internal/cpu"
	"repro/internal/isa"
)

func TestNewInstallsTick(t *testing.T) {
	for _, m := range cpu.AllModels {
		k := New(m)
		if k.Core.Timer.Handler == nil || !k.Core.Timer.Enabled {
			t.Errorf("%s: tick handler not installed", m.Tag)
		}
		wantPeriod := m.GHz * 1e9 / HZ
		if k.Core.Timer.Period != wantPeriod {
			t.Errorf("%s: period = %v, want %v", m.Tag, k.Core.Timer.Period, wantPeriod)
		}
		if k.Governor() != Performance {
			t.Errorf("%s: default governor = %v, want performance", m.Tag, k.Governor())
		}
	}
}

func TestRegisterSyscall(t *testing.T) {
	k := New(cpu.Athlon64X2)
	h := isa.NewBuilder("sys_a", 0xffff0000).ALUBlock(5).Emit(isa.SysRet()).Build()
	if err := k.RegisterSyscall(100, "perfctr", h); err != nil {
		t.Fatal(err)
	}
	if err := k.RegisterSyscall(100, "perfmon", h); !errors.Is(err, ErrSyscallTaken) {
		t.Errorf("conflict err = %v, want ErrSyscallTaken", err)
	}
	bad := isa.NewBuilder("bad", 0).ALUBlock(2).Build() // no terminator
	if err := k.RegisterSyscall(101, "x", bad); err == nil {
		t.Error("invalid handler accepted")
	}
	got := k.RegisteredSyscalls()
	if len(got) != 1 || got[0] != 100 {
		t.Errorf("RegisteredSyscalls = %v", got)
	}
}

func TestTickDeliversKernelInstructions(t *testing.T) {
	k := New(cpu.Core2Duo)
	c := k.Core
	if err := c.PMU.Configure(0, cpu.CounterConfig{Event: cpu.EventInstrRetired, User: false, OS: true}); err != nil {
		t.Fatal(err)
	}
	c.PMU.Enable(1)
	c.SeedRun(9)

	// 10M iterations at ~1-2 cycles/iter crosses at least 4 tick periods
	// (2.4e6 cycles each).
	b := isa.NewBuilder("loop", 0x4000)
	b.Emit(isa.ALU())
	b.Loop(10_000_000, func(body *isa.Builder) {
		body.Emit(isa.ALU(), isa.ALU(), isa.Branch(0, true))
	})
	b.Emit(isa.Halt())
	if err := c.Run(b.Build()); err != nil {
		t.Fatal(err)
	}
	if c.TimerDeliveries < 4 {
		t.Fatalf("deliveries = %d", c.TimerDeliveries)
	}
	kins, _ := c.PMU.Value(0)
	// Each CD tick is ~1900 base instructions plus jitter plus iret.
	perTick := float64(kins) / float64(c.TimerDeliveries)
	if perTick < 1850 || perTick > 2100 {
		t.Errorf("kernel instructions per tick = %v, want ~1900-2050", perTick)
	}
}

func TestInstallTickWorkChangesHandlerCost(t *testing.T) {
	measure := func(extra int) float64 {
		k := New(cpu.Athlon64X2)
		k.InstallTickWork(extra, 0)
		c := k.Core
		if err := c.PMU.Configure(0, cpu.CounterConfig{Event: cpu.EventInstrRetired, User: false, OS: true}); err != nil {
			t.Fatal(err)
		}
		c.PMU.Enable(1)
		c.SeedRun(5)
		b := isa.NewBuilder("loop", 0x4000)
		b.Emit(isa.ALU())
		b.Loop(8_000_000, func(body *isa.Builder) {
			body.Emit(isa.ALU(), isa.ALU(), isa.Branch(0, true))
		})
		b.Emit(isa.Halt())
		if err := c.Run(b.Build()); err != nil {
			t.Fatal(err)
		}
		v, _ := c.PMU.Value(0)
		return float64(v) / float64(c.TimerDeliveries)
	}
	base := measure(0)
	heavy := measure(1000)
	if heavy-base < 800 || heavy-base > 1200 {
		t.Errorf("tick work delta = %v, want ~1000", heavy-base)
	}
}

func TestGovernorFrequencies(t *testing.T) {
	k := New(cpu.PentiumD)
	if k.FrequencyGHz() != 3.0 {
		t.Errorf("performance freq = %v", k.FrequencyGHz())
	}
	k.SetGovernor(Powersave)
	if k.FrequencyGHz() != 1.5 {
		t.Errorf("powersave freq = %v", k.FrequencyGHz())
	}
	if k.Core.FreqScale != 0.5 {
		t.Errorf("FreqScale = %v, want 0.5", k.Core.FreqScale)
	}
	k.SetGovernor(Performance)
	if k.FrequencyGHz() != 3.0 || k.Core.FreqScale != 1.0 {
		t.Error("performance governor did not restore nominal frequency")
	}
}

func TestOndemandChangesFrequencyAcrossTicks(t *testing.T) {
	k := New(cpu.Core2Duo)
	k.SetGovernor(Ondemand)
	c := k.Core
	c.SeedRun(17)
	seen := map[float64]bool{}
	b := isa.NewBuilder("loop", 0x4000)
	b.Emit(isa.ALU())
	b.Loop(30_000_000, func(body *isa.Builder) {
		body.Emit(isa.ALU(), isa.ALU(), isa.Branch(0, true))
	})
	b.Emit(isa.Halt())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = c.Run(b.Build())
	}()
	<-done
	seen[k.FrequencyGHz()] = true
	// Run several measurements; ondemand must visit both P-states.
	for i := 0; i < 20; i++ {
		c.SeedRun(uint64(i))
		_ = c.Run(b.Build())
		seen[k.FrequencyGHz()] = true
	}
	if len(seen) < 2 {
		t.Errorf("ondemand never changed frequency: %v", seen)
	}
}

func TestGovernorString(t *testing.T) {
	if Performance.String() != "performance" || Powersave.String() != "powersave" || Ondemand.String() != "ondemand" {
		t.Error("governor names wrong")
	}
	if Governor(7).String() == "" {
		t.Error("unknown governor must render")
	}
}

type recordingHook struct {
	saves, restores []int
}

func (h *recordingHook) Save(tid int)    { h.saves = append(h.saves, tid) }
func (h *recordingHook) Restore(tid int) { h.restores = append(h.restores, tid) }

func TestContextSwitch(t *testing.T) {
	k := New(cpu.Athlon64X2)
	h := &recordingHook{}
	k.AddSwitchHook(h)

	if got := k.CurrentThread(); got != 1 {
		t.Fatalf("initial thread = %d", got)
	}
	t2 := k.SpawnThread()
	if t2 == 1 {
		t.Fatal("spawned thread reused ID 1")
	}
	if err := k.SwitchTo(t2); err != nil {
		t.Fatal(err)
	}
	if k.CurrentThread() != t2 {
		t.Error("switch did not change current thread")
	}
	if len(h.saves) != 1 || h.saves[0] != 1 {
		t.Errorf("saves = %v", h.saves)
	}
	if len(h.restores) != 1 || h.restores[0] != t2 {
		t.Errorf("restores = %v", h.restores)
	}
	if k.SwitchCount() != 1 {
		t.Errorf("switch count = %d", k.SwitchCount())
	}
	// Switching to the current thread is a no-op.
	if err := k.SwitchTo(t2); err != nil || k.SwitchCount() != 1 {
		t.Error("self-switch should be a no-op")
	}
	if err := k.SwitchTo(99); !errors.Is(err, ErrNoThread) {
		t.Errorf("switch to missing thread: %v", err)
	}
	if got := k.Threads(); len(got) != 2 || got[0] != 1 || got[1] != t2 {
		t.Errorf("Threads = %v", got)
	}
}

func TestContextSwitchCostCounted(t *testing.T) {
	k := New(cpu.Athlon64X2)
	c := k.Core
	if err := c.PMU.Configure(0, cpu.CounterConfig{Event: cpu.EventInstrRetired, User: false, OS: true}); err != nil {
		t.Fatal(err)
	}
	c.PMU.Enable(1)
	t2 := k.SpawnThread()
	before, _ := c.PMU.Value(0)
	if err := k.SwitchTo(t2); err != nil {
		t.Fatal(err)
	}
	after, _ := c.PMU.Value(0)
	if after-before < 1400 {
		t.Errorf("context switch counted only %d kernel instructions", after-before)
	}
}

func TestProcessStartupCost(t *testing.T) {
	for _, m := range cpu.AllModels {
		k := New(m)
		if k.ProcessStartupCost() < 1_000_000 {
			t.Errorf("%s: startup cost %d implausibly small", m.Tag, k.ProcessStartupCost())
		}
	}
}
