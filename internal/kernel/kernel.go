// Package kernel models the operating system of the study: a Linux
// 2.6.22-like kernel with a periodic tick, a syscall interface that
// counter-access extensions (perfctr, perfmon2) plug into, per-thread
// context-switch hooks for counter virtualization, and a CPU frequency
// governor.
//
// The kernel is the source of two of the paper's findings:
//
//   - the duration-dependent measurement error (Section 5) comes from
//     tick-handler instructions attributed to the running thread's
//     kernel-mode counts, and
//   - frequency scaling (Section 8, guidelines) perturbs cycle
//     measurements unless the governor is pinned.
package kernel

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/xrand"
)

// HZ is the kernel tick frequency, as configured in the study's kernel.
const HZ = 1000.0

// Governor selects the CPU frequency policy (Section 8: the paper
// recommends pinning the frequency with performance or powersave).
type Governor uint8

const (
	// Performance pins the highest frequency.
	Performance Governor = iota
	// Powersave pins the lowest frequency.
	Powersave
	// Ondemand changes frequency with observed load; it is the default
	// on many distributions and the guideline's warning case.
	Ondemand
)

// String returns the Linux governor name.
func (g Governor) String() string {
	switch g {
	case Performance:
		return "performance"
	case Powersave:
		return "powersave"
	case Ondemand:
		return "ondemand"
	}
	return fmt.Sprintf("governor(%d)", uint8(g))
}

// SwitchHook is implemented by kernel extensions that maintain per-thread
// counter state: Save captures the hardware counters into the outgoing
// thread's context, Restore loads the incoming thread's.
type SwitchHook interface {
	Save(tid int)
	Restore(tid int)
}

// baseTickCost gives the instruction count of the bare tick handler
// (timer bookkeeping, time accounting, scheduler tick) per processor.
// Dynamic counts differ across micro-architectures because the same
// kernel source compiles and executes differently (lock prefixes, entry
// stubs); magnitudes are calibrated against the paper's Figure 7 slopes.
var baseTickCost = map[string]int{
	"PD": 2400,
	"CD": 1900,
	"K8": 660,
}

// tickJitter is the maximum extra instructions a tick handler may
// execute (cache effects, occasional deferred work).
const tickJitter = 120

// contextSwitchCost approximates the instruction count of a context
// switch excluding extension save/restore work.
var contextSwitchCost = map[string]int{
	"PD": 2600,
	"CD": 1900,
	"K8": 1500,
}

// processStartupCost approximates the kernel+loader instructions of
// process creation, dynamic linking, and teardown. Whole-process
// measurement tools (perfex, pfmon, papiex) include this in their
// counts, which is why the paper's Section 9 reports errors of tens of
// thousands of percent for them.
var processStartupCost = map[string]int64{
	"PD": 3_400_000,
	"CD": 2_600_000,
	"K8": 2_900_000,
}

// Kernel is the simulated operating system bound to one core.
type Kernel struct {
	// Core is the processor this kernel runs on.
	Core *cpu.Core

	model    *cpu.Model
	governor Governor
	curGHz   float64
	rng      *xrand.Rand

	syscalls      map[int]string // registered numbers -> owner, for conflicts
	tickExtra     int            // extension per-tick accounting instructions
	tickBias      float64        // extension attribution skew bias
	hooks         []SwitchHook
	tickListeners []tickListener
	nextListener  int
	threads       map[int]bool
	current       int
	switchCount   int
}

// tickListener is one registered tick callback with its removal handle.
type tickListener struct {
	id int
	f  func()
}

// New boots a kernel on a fresh core for the given processor model,
// installs the tick handler, and pins the performance governor (the
// study's configuration, Section 3.2).
func New(model *cpu.Model) *Kernel {
	k := &Kernel{
		Core:     cpu.NewCore(model),
		model:    model,
		governor: Performance,
		curGHz:   model.GHz,
		rng:      xrand.New(xrand.Mix(uint64(model.Arch), 0xbeef)),
		syscalls: make(map[int]string),
		threads:  map[int]bool{1: true},
		current:  1,
	}
	k.rebuildTickHandler()
	k.Core.OnTick = k.fireTick
	return k
}

// fireTick runs after every timer interrupt: governor policy first,
// then registered listeners (multiplexers, profilers).
func (k *Kernel) fireTick() {
	if k.governor == Ondemand {
		k.ondemandTick()
	}
	for _, l := range k.tickListeners {
		l.f()
	}
}

// ResetState returns the kernel and its core to the just-booted state:
// clock and PMU rewound, frequency policy re-applied from its initial
// setting, the governor's random stream re-seeded, and the thread table
// reduced to the boot thread. Extension state (registered syscalls,
// tick work, switch hooks) is preserved — it is part of the system's
// configuration, not its execution history. Measurement services call
// this between requests so a pooled system behaves exactly like a
// freshly built one.
func (k *Kernel) ResetState() {
	k.Core.ResetClock()
	k.rng = xrand.New(xrand.Mix(uint64(k.model.Arch), 0xbeef))
	k.threads = map[int]bool{1: true}
	k.current = 1
	k.switchCount = 0
	k.SetGovernor(k.governor)
}

// AddTickListener registers a callback invoked after every timer tick,
// in registration order, and returns a handle for RemoveTickListener.
func (k *Kernel) AddTickListener(f func()) int {
	k.nextListener++
	k.tickListeners = append(k.tickListeners, tickListener{id: k.nextListener, f: f})
	return k.nextListener
}

// RemoveTickListener unregisters a tick callback. Transient consumers
// (multiplexers, profilers) must remove their listeners when done so a
// pooled system carries no observer from one request into the next.
func (k *Kernel) RemoveTickListener(id int) {
	for i, l := range k.tickListeners {
		if l.id == id {
			k.tickListeners = append(k.tickListeners[:i], k.tickListeners[i+1:]...)
			return
		}
	}
}

// Model returns the processor model.
func (k *Kernel) Model() *cpu.Model { return k.model }

// ErrSyscallTaken reports a syscall-number collision between extensions.
var ErrSyscallTaken = errors.New("kernel: syscall number already registered")

// RegisterSyscall installs handler at syscall number nr on behalf of
// owner (an extension name).
func (k *Kernel) RegisterSyscall(nr int, owner string, handler *isa.Program) error {
	if prev, ok := k.syscalls[nr]; ok {
		return fmt.Errorf("%w: %d (owner %s)", ErrSyscallTaken, nr, prev)
	}
	if err := handler.Validate(false); err != nil {
		return fmt.Errorf("kernel: invalid handler for syscall %d: %v", nr, err)
	}
	k.syscalls[nr] = owner
	k.Core.Syscalls[nr] = handler
	return nil
}

// UpdateSyscall installs or replaces the handler at nr. Replacement is
// allowed only for the owning extension; extensions regenerate their
// handlers when a measurement context is reconfigured (the handler code
// paths depend on how many counters are in use).
func (k *Kernel) UpdateSyscall(nr int, owner string, handler *isa.Program) error {
	if prev, ok := k.syscalls[nr]; ok && prev != owner {
		return fmt.Errorf("%w: %d (owner %s)", ErrSyscallTaken, nr, prev)
	}
	if err := handler.Validate(false); err != nil {
		return fmt.Errorf("kernel: invalid handler for syscall %d: %v", nr, err)
	}
	k.syscalls[nr] = owner
	k.Core.Syscalls[nr] = handler
	return nil
}

// RegisteredSyscalls returns the installed syscall numbers in order.
func (k *Kernel) RegisteredSyscalls() []int {
	nrs := make([]int, 0, len(k.syscalls))
	for nr := range k.syscalls {
		nrs = append(nrs, nr)
	}
	sort.Ints(nrs)
	return nrs
}

// InstallTickWork adds per-tick accounting work on behalf of a counter
// extension (perfctr and perfmon2 both hook the tick) and sets the
// extension's interrupt attribution bias.
func (k *Kernel) InstallTickWork(instr int, skewBias float64) {
	k.tickExtra = instr
	k.tickBias = skewBias
	k.rebuildTickHandler()
}

// AddSwitchHook registers per-thread counter save/restore callbacks.
func (k *Kernel) AddSwitchHook(h SwitchHook) {
	k.hooks = append(k.hooks, h)
}

// rebuildTickHandler regenerates the timer interrupt handler program.
func (k *Kernel) rebuildTickHandler() {
	b := isa.NewBuilder("tick", 0xffff_8000_0000)
	b.ALUBlock(baseTickCost[k.model.Tag] + k.tickExtra)
	b.Emit(isa.VarWork(tickJitter, 1))
	b.Emit(isa.IRet())
	k.Core.InstallTimer(HZ, b.Build())
	k.Core.Timer.SkewBias = k.tickBias
	k.applyFrequency()
}

// SetGovernor selects the frequency policy. Performance and powersave
// pin the frequency; ondemand lets it wander at each tick.
func (k *Kernel) SetGovernor(g Governor) {
	k.governor = g
	switch g {
	case Performance:
		k.curGHz = k.model.GHz
	case Powersave:
		k.curGHz = k.minGHz()
	case Ondemand:
		// Start low; ramps on the first busy tick.
		k.curGHz = k.minGHz()
	}
	k.applyFrequency()
}

// Governor returns the current policy.
func (k *Kernel) Governor() Governor { return k.governor }

// FrequencyGHz returns the current clock frequency.
func (k *Kernel) FrequencyGHz() float64 { return k.curGHz }

// minGHz is the lowest P-state, roughly half nominal on these parts.
func (k *Kernel) minGHz() float64 { return k.model.GHz / 2 }

// ondemandTick models the ondemand governor's frequency decisions: on
// each tick the frequency may step between the min and max P-states.
// The resulting mid-measurement transitions are the variability source
// the paper's Section 8 guideline warns about.
func (k *Kernel) ondemandTick() {
	if k.rng.Float64() < 0.35 {
		if k.curGHz == k.model.GHz {
			k.curGHz = k.minGHz()
		} else {
			k.curGHz = k.model.GHz
		}
		k.applyFrequency()
	}
}

// applyFrequency propagates the current frequency into the core: the
// tick period in cycles shrinks with the clock, and memory costs
// measured in cycles scale with it (the bus clock does not change —
// the effect the paper highlights).
func (k *Kernel) applyFrequency() {
	k.Core.Timer.Period = k.curGHz * 1e9 / HZ
	k.Core.FreqScale = k.curGHz / k.model.GHz
}

// Threads returns the IDs of existing threads in order.
func (k *Kernel) Threads() []int {
	ids := make([]int, 0, len(k.threads))
	for id := range k.threads {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// CurrentThread returns the running thread's ID.
func (k *Kernel) CurrentThread() int { return k.current }

// SpawnThread creates a new thread and returns its ID.
func (k *Kernel) SpawnThread() int {
	id := 1
	for k.threads[id] {
		id++
	}
	k.threads[id] = true
	return id
}

// ErrNoThread reports a context switch to a nonexistent thread.
var ErrNoThread = errors.New("kernel: no such thread")

// SwitchTo performs a context switch to thread tid: extension hooks save
// the outgoing thread's counter state and restore the incoming one's,
// and the switch path's kernel instructions are executed (and therefore
// counted by any enabled kernel-gated counters).
func (k *Kernel) SwitchTo(tid int) error {
	if !k.threads[tid] {
		return fmt.Errorf("%w: %d", ErrNoThread, tid)
	}
	if tid == k.current {
		return nil
	}
	for _, h := range k.hooks {
		h.Save(k.current)
	}
	k.runKernelWork(contextSwitchCost[k.model.Tag])
	for _, h := range k.hooks {
		h.Restore(tid)
	}
	k.current = tid
	k.switchCount++
	return nil
}

// SwitchCount returns the number of context switches performed.
func (k *Kernel) SwitchCount() int { return k.switchCount }

// runKernelWork retires n kernel-mode instructions outside any program
// context (used for switch paths invoked from the host side).
func (k *Kernel) runKernelWork(n int) {
	b := isa.NewBuilder("cswitch", 0xffff_9000_0000)
	b.ALUBlock(n)
	b.Emit(isa.SysRet())
	prog := b.Build()
	// Borrow the syscall mechanism: run the work as a transient handler.
	const transientNr = -1
	k.Core.Syscalls[transientNr] = prog
	trampoline := isa.NewBuilder("cswitch-entry", 0xff00).
		Emit(isa.Syscall(transientNr), isa.Halt()).Build()
	// Ignore error: the transient program is valid by construction.
	_ = k.Core.Run(trampoline)
	delete(k.Core.Syscalls, transientNr)
}

// ProcessStartupCost returns the modeled instruction cost of creating
// and tearing down a process on this kernel (used by the whole-process
// measurement tools to reproduce the Section 9 discussion).
func (k *Kernel) ProcessStartupCost() int64 {
	return processStartupCost[k.model.Tag]
}
