package api

import (
	"errors"
	"strings"
	"testing"
)

func validSession() SessionRequest {
	return SessionRequest{
		Measure: MeasureRequest{Processor: "K8", Stack: "pc", Bench: "loop:1000"},
	}
}

func TestSessionRequestDefaults(t *testing.T) {
	norm, err := validSession().Normalized()
	if err != nil {
		t.Fatalf("Normalized: %v", err)
	}
	if norm.Steps != DefaultSessionSteps {
		t.Errorf("Steps = %d, want %d", norm.Steps, DefaultSessionSteps)
	}
	if norm.WindowSize != DefaultWindowSize {
		t.Errorf("WindowSize = %d, want %d", norm.WindowSize, DefaultWindowSize)
	}
	if norm.Capacity != DefaultSessionCapacity {
		t.Errorf("Capacity = %d, want %d", norm.Capacity, DefaultSessionCapacity)
	}
	if norm.Confidence != 0.95 {
		t.Errorf("Confidence = %v, want 0.95", norm.Confidence)
	}
	if norm.Measure.Runs != 1 {
		t.Errorf("Measure.Runs = %d, want forced 1", norm.Measure.Runs)
	}
	if norm.Measure.Calibrate {
		t.Error("Measure.Calibrate survived normalization; calibration is implied")
	}
}

// TestSessionRequestCanonical pins the property the determinism
// cross-check relies on: requests that mean the same session share a
// canonical form and key.
func TestSessionRequestCanonical(t *testing.T) {
	a := validSession()
	b := validSession()
	b.Measure.Runs = 7         // forced to 1
	b.Measure.Calibrate = true // canonicalized away
	b.Steps = DefaultSessionSteps
	na, err := a.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	nb, err := b.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if na.SessionKey() != nb.SessionKey() {
		t.Errorf("keys differ:\n  %s\n  %s", na.SessionKey(), nb.SessionKey())
	}
}

func TestSessionKeyDistinguishesInjection(t *testing.T) {
	a := validSession()
	b := validSession()
	b.Inject = &InjectSpec{AfterStep: 4, Offset: 100}
	na, _ := a.Normalized()
	nb, _ := b.Normalized()
	if na.SessionKey() == nb.SessionKey() {
		t.Error("injection did not change the session key")
	}
}

func TestSessionRequestValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*SessionRequest)
		want string
	}{
		{"bad processor", func(r *SessionRequest) { r.Measure.Processor = "Z80" }, "processor"},
		{"steps over cap", func(r *SessionRequest) { r.Steps = MaxSessionSteps + 1 }, "steps"},
		{"negative steps", func(r *SessionRequest) { r.Steps = -1 }, "steps"},
		{"window too small", func(r *SessionRequest) { r.WindowSize = 1 }, "window"},
		{"window over cap", func(r *SessionRequest) { r.WindowSize = MaxWindowSize + 1 }, "window"},
		{"capacity below window", func(r *SessionRequest) { r.Capacity = 4; r.WindowSize = 8 }, "capacity"},
		{"capacity over cap", func(r *SessionRequest) { r.Capacity = MaxSessionCapacity + 1 }, "capacity"},
		{"bad confidence", func(r *SessionRequest) { r.Confidence = 0.3 }, "confidence"},
		{"negative interval", func(r *SessionRequest) { r.IntervalMS = -5 }, "interval"},
		{"interval over cap", func(r *SessionRequest) { r.IntervalMS = MaxSessionIntervalMS + 1 }, "interval"},
		{"inject before start", func(r *SessionRequest) { r.Inject = &InjectSpec{AfterStep: -1} }, "inject"},
		{"inject past end", func(r *SessionRequest) { r.Steps = 8; r.Inject = &InjectSpec{AfterStep: 8} }, "inject"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := validSession()
			tc.mut(&req)
			_, err := req.Normalized()
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if !errors.Is(err, ErrBadRequest) {
				t.Errorf("error %v does not wrap ErrBadRequest", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
