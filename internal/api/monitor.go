package api

import (
	"fmt"

	"repro/internal/accuracy"
)

// Limits and defaults of the session (continuous monitoring) endpoints.
const (
	// DefaultSessionSteps is the sample count when a session request
	// leaves Steps 0.
	DefaultSessionSteps = 64
	// MaxSessionSteps bounds the samples one session may produce; a
	// session pins a pooled worker for its whole lifetime, so the bound
	// keeps one client from monopolizing a shard forever.
	MaxSessionSteps = 100_000
	// DefaultWindowSize is the samples-per-window when unset.
	DefaultWindowSize = 8
	// MaxWindowSize bounds samples per window.
	MaxWindowSize = 1024
	// DefaultSessionCapacity is the sample-ring size when unset.
	DefaultSessionCapacity = 1024
	// MaxSessionCapacity bounds the sample-ring size.
	MaxSessionCapacity = 65_536
	// MaxSessionIntervalMS bounds the wall-clock pacing between samples.
	MaxSessionIntervalMS = 10_000
)

// InjectSpec is a synthetic step change: from AfterStep on, every raw
// count is shifted by Offset before correction. It simulates the
// regime changes continuous monitoring exists to catch (a placement
// change, a multiplexing phase shift) with a known ground truth, which
// is what makes drift detection testable end to end.
type InjectSpec struct {
	// AfterStep is the first step the shift applies to.
	AfterStep int `json:"afterStep"`
	// Offset is the count added to every raw sample from AfterStep on.
	Offset float64 `json:"offset"`
}

// SessionRequest opens a continuous monitoring session: a pinned
// worker measures the configuration once per virtual-time step,
// appends the corrected sample to a windowed ring store, and flags
// drift when a window's confidence interval stops overlapping the
// baseline window's.
type SessionRequest struct {
	// Measure is the configuration to monitor. Runs is forced to 1
	// (each step is one measurement) and Calibrate is implied: every
	// sample is overhead-corrected with the cached calibration.
	Measure MeasureRequest `json:"measure"`
	// Steps is how many samples the session produces (default
	// DefaultSessionSteps, capped at MaxSessionSteps).
	Steps int `json:"steps,omitempty"`
	// WindowSize is how many consecutive samples one window condenses
	// (default DefaultWindowSize; at least 2 so dispersion is
	// observable).
	WindowSize int `json:"windowSize,omitempty"`
	// Capacity is the sample-ring size (default DefaultSessionCapacity).
	Capacity int `json:"capacity,omitempty"`
	// Confidence is the two-sided level of window intervals (0 means
	// accuracy.DefaultConfidence).
	Confidence float64 `json:"confidence,omitempty"`
	// IntervalMS is the wall-clock pacing between samples in
	// milliseconds. It shapes delivery only: sample values and their
	// virtual timestamps are independent of wall time.
	IntervalMS int `json:"intervalMS,omitempty"`
	// Inject, when set, applies a synthetic step change (see InjectSpec).
	Inject *InjectSpec `json:"inject,omitempty"`
}

// Normalized validates the session request and makes every default
// explicit. Like MeasureRequest.Normalized, the result is canonical:
// requests that mean the same session normalize identically, which is
// what lets clients cross-check that identical configurations stream
// identical series.
func (r SessionRequest) Normalized() (SessionRequest, error) {
	// One measurement per step; the repetition plan lives in Steps.
	r.Measure.Runs = 1
	// Calibration is implied: samples are corrected, so the flag would
	// only split identical sessions into different canonical forms.
	r.Measure.Calibrate = false
	norm, err := r.Measure.Normalized()
	if err != nil {
		return r, err
	}
	r.Measure = norm

	if r.Steps == 0 {
		r.Steps = DefaultSessionSteps
	}
	if r.Steps < 0 || r.Steps > MaxSessionSteps {
		return r, badf("api: session steps %d out of range 1-%d", r.Steps, MaxSessionSteps)
	}
	if r.WindowSize == 0 {
		r.WindowSize = DefaultWindowSize
	}
	if r.WindowSize < 2 || r.WindowSize > MaxWindowSize {
		return r, badf("api: session window size %d out of range 2-%d", r.WindowSize, MaxWindowSize)
	}
	if r.Capacity == 0 {
		r.Capacity = DefaultSessionCapacity
	}
	if r.Capacity < r.WindowSize || r.Capacity > MaxSessionCapacity {
		return r, badf("api: session capacity %d out of range %d-%d", r.Capacity, r.WindowSize, MaxSessionCapacity)
	}
	if r.Confidence == 0 {
		r.Confidence = accuracy.DefaultConfidence
	}
	if r.Confidence < MinConfidence || r.Confidence > MaxConfidence {
		return r, badf("api: confidence %v out of range %v-%v", r.Confidence, MinConfidence, MaxConfidence)
	}
	if r.IntervalMS < 0 || r.IntervalMS > MaxSessionIntervalMS {
		return r, badf("api: session interval %dms out of range 0-%d", r.IntervalMS, MaxSessionIntervalMS)
	}
	if r.Inject != nil {
		if r.Inject.AfterStep < 0 || r.Inject.AfterStep >= r.Steps {
			return r, badf("api: inject afterStep %d out of range 0-%d", r.Inject.AfterStep, r.Steps-1)
		}
		inj := *r.Inject
		r.Inject = &inj
	}
	return r, nil
}

// Session states reported by snapshots and end events.
const (
	// SessionRunning: the sampler is still producing.
	SessionRunning = "running"
	// SessionDone: all Steps samples were produced.
	SessionDone = "done"
	// SessionDeleted: the session was deleted by a client.
	SessionDeleted = "deleted"
	// SessionEvicted: the registry evicted the session as idle.
	SessionEvicted = "evicted"
	// SessionDrained: the service shut down gracefully.
	SessionDrained = "drained"
	// SessionFailed: a measurement error ended the session early.
	SessionFailed = "failed"
)

// SessionCreated is the response of POST /sessions.
type SessionCreated struct {
	// ID addresses the session in GET/DELETE /sessions/{id}.
	ID string `json:"id"`
	// Config echoes the normalized session request.
	Config SessionRequest `json:"config"`
}

// SamplePoint is one corrected sample on the wire.
type SamplePoint struct {
	// Step is the 0-based sample index.
	Step int `json:"step"`
	// Time is the virtual timestamp (cumulative simulated cycles).
	Time float64 `json:"time"`
	// Raw is the uncorrected counter delta.
	Raw float64 `json:"raw"`
	// Value is the corrected estimate (raw minus calibrated overhead).
	Value float64 `json:"value"`
}

// WindowInfo is one window summary on the wire.
type WindowInfo struct {
	// Index is the 0-based window sequence number.
	Index int `json:"index"`
	// FirstStep and LastStep bound the covered samples.
	FirstStep int `json:"firstStep"`
	LastStep  int `json:"lastStep"`
	// Start and End are the covered virtual-time span.
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// Min and Max bound the corrected values.
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	// Estimate is the window mean with its confidence interval.
	Estimate EstimateInfo `json:"estimate"`
}

// DriftInfo reports a detected shift of the corrected estimate: the
// current window's confidence interval no longer overlaps the
// baseline window's.
type DriftInfo struct {
	// Step is the last sample step of the window that triggered the
	// event.
	Step int `json:"step"`
	// FromWindow and Window are the baseline and triggering window
	// indices.
	FromWindow int `json:"fromWindow"`
	Window     int `json:"window"`
	// Shift is the change of the corrected estimate (current mean
	// minus baseline mean).
	Shift float64 `json:"shift"`
	// Baseline and Current are the two non-overlapping estimates.
	Baseline EstimateInfo `json:"baseline"`
	Current  EstimateInfo `json:"current"`
}

// Stream event types of GET /sessions/{id}/stream.
const (
	// StreamSample carries one new sample.
	StreamSample = "sample"
	// StreamWindow carries one completed window summary.
	StreamWindow = "window"
	// StreamDrift carries one drift event.
	StreamDrift = "drift"
	// StreamEnd is the final event of every stream.
	StreamEnd = "end"
)

// StreamEvent is one NDJSON line of a session stream. Events are
// deterministic functions of the session configuration (the end
// event's Reason aside), so two sessions with identical normalized
// configurations stream byte-identical sample series.
type StreamEvent struct {
	Type   string       `json:"type"`
	Sample *SamplePoint `json:"sample,omitempty"`
	Window *WindowInfo  `json:"window,omitempty"`
	Drift  *DriftInfo   `json:"drift,omitempty"`
	// Reason qualifies end events: done, deleted, evicted, drained, or
	// failed.
	Reason string `json:"reason,omitempty"`
	// Error carries the failure message of a failed session's end event.
	Error string `json:"error,omitempty"`
}

// SessionSnapshot is the response of GET /sessions/{id}: the current
// state plus the retained rings.
type SessionSnapshot struct {
	ID     string         `json:"id"`
	Config SessionRequest `json:"config"`
	// State is one of the Session* states.
	State string `json:"state"`
	// Total is how many samples were produced so far; Samples retains
	// the newest Config.Capacity of them, oldest first.
	Total   int           `json:"total"`
	Samples []SamplePoint `json:"samples"`
	// Windows holds the retained window summaries, oldest first.
	Windows []WindowInfo `json:"windows"`
	// Drifts lists every drift event of the session so far.
	Drifts []DriftInfo `json:"drifts"`
	// Calibration reports the overhead estimate correcting every sample.
	Calibration *CalibrationInfo `json:"calibration,omitempty"`
}

// SessionKey returns the canonical identity of a normalized session
// configuration. Sessions are stateful instances, so the key is not
// used for coalescing; clients use it to group sessions that must
// stream identical series.
func (r SessionRequest) SessionKey() string {
	inject := ""
	if r.Inject != nil {
		inject = fmt.Sprintf("%d@%g", r.Inject.AfterStep, r.Inject.Offset)
	}
	return fmt.Sprintf("%s|n%d|w%d|cap%d|conf%v|inj[%s]",
		r.Measure.Key(), r.Steps, r.WindowSize, r.Capacity, r.Confidence, inject)
}
