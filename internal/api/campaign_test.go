package api

import (
	"reflect"
	"testing"
)

func TestCampaignRequestDefaults(t *testing.T) {
	norm, err := CampaignRequest{}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	want := CampaignRequest{
		Seed:           DefaultSeed,
		Programs:       DefaultCampaignPrograms,
		Processors:     []string{"PD", "CD", "K8"},
		Stack:          "pc",
		Pattern:        DefaultPattern,
		Classes:        []string{"mix", "branch", "chase", "phase", "probe"},
		Scale:          3,
		Runs:           DefaultInferRuns,
		InferEvery:     DefaultInferEvery,
		PlanEvery:      DefaultPlanEvery,
		EngineEvery:    DefaultEngineEvery,
		TargetRelWidth: DefaultCampaignTargetRelWidth,
		Confidence:     0.95,
	}
	if !reflect.DeepEqual(norm, want) {
		t.Fatalf("defaults:\n got %+v\nwant %+v", norm, want)
	}
}

// TestCampaignRequestCanonicalSets: processor and class selections are
// sets — different spellings of the same set share a key.
func TestCampaignRequestCanonicalSets(t *testing.T) {
	a, err := CampaignRequest{Processors: []string{"K8", "PD"}, Classes: []string{"probe", "mix"}}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	b, err := CampaignRequest{Processors: []string{"PD", "K8"}, Classes: []string{"mix", "probe"}}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() != b.Key() {
		t.Fatalf("set spellings split keys:\n%s\n%s", a.Key(), b.Key())
	}
	if !reflect.DeepEqual(a.Processors, []string{"PD", "K8"}) {
		t.Fatalf("processors not in canonical order: %v", a.Processors)
	}
	if !reflect.DeepEqual(a.Classes, []string{"mix", "probe"}) {
		t.Fatalf("classes not in canonical order: %v", a.Classes)
	}
}

// TestCampaignRequestCadence: the every-n-th knobs follow the MaxRefine
// convention — zero defaults, negatives canonicalize to -1 (disabled).
func TestCampaignRequestCadence(t *testing.T) {
	norm, err := CampaignRequest{InferEvery: -7, PlanEvery: -1, EngineEvery: 3}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if norm.InferEvery != -1 || norm.PlanEvery != -1 || norm.EngineEvery != 3 {
		t.Fatalf("cadence: infer %d, plan %d, engine %d", norm.InferEvery, norm.PlanEvery, norm.EngineEvery)
	}
}

func TestCampaignRequestRejects(t *testing.T) {
	bad := []CampaignRequest{
		{Programs: -1},
		{Programs: MaxCampaignPrograms + 1},
		{Processors: []string{"P6"}},
		{Processors: []string{"PD", "PD"}},
		{Stack: "nope"},
		{Pattern: "xx"},
		{Classes: []string{"nope"}},
		{Classes: []string{"mix", "mix"}},
		{Scale: -1},
		{Scale: 65},
		{Runs: 1},
		{Runs: MaxRuns + 1},
		{InferEvery: MaxCampaignPrograms + 1},
		{TargetRelWidth: 2},
		{Confidence: 0.1},
	}
	for _, req := range bad {
		if _, err := req.Normalized(); err == nil {
			t.Errorf("accepted %+v", req)
		}
	}
}
