package api

import (
	"fmt"

	"repro/internal/accuracy"
	"repro/internal/cpu"
)

// Limits and defaults of the /plan endpoint.
const (
	// DefaultPilotRuns is the pilot replication used to observe
	// dispersion before the planner commits to a replication count.
	DefaultPilotRuns = 4
	// MaxPilotRuns bounds the pilot so it cannot dwarf the plan itself.
	MaxPilotRuns = 32
	// DefaultPlanMaxRuns is the per-plan replication budget when the
	// request leaves MaxRuns zero.
	DefaultPlanMaxRuns = 256
	// MaxPlanRuns bounds the replication budget a request may ask for.
	MaxPlanRuns = 4096
	// DefaultMaxRefine is how many re-planning rounds a plan may add
	// after its first execution misses the target.
	DefaultMaxRefine = 2
	// MaxRefineBound bounds the refine budget.
	MaxRefineBound = 8
	// MinTargetRelWidth and MaxTargetRelWidth bound the requested
	// relative confidence-interval half-width. Below the minimum the
	// replication formula explodes quadratically; above 1 the target is
	// wider than the estimate itself and always attained.
	MinTargetRelWidth = 0.0005
	MaxTargetRelWidth = 1.0
)

// Plan modes.
const (
	// PlanModeDedicated schedules every event on its own hardware
	// counter in one calibrated counting configuration — chosen when the
	// event set fits the counters the plan may use.
	PlanModeDedicated = "dedicated"
	// PlanModeMultiplexed time-shares the counters across event groups
	// with the anchor event pinned into every group, and fuses the
	// per-group estimates.
	PlanModeMultiplexed = "multiplexed"
)

// PlanRequest asks the planner for the cheapest measurement schedule
// that estimates every requested event within a relative
// confidence-interval half-width target, and for the fused estimates
// the executed schedule produced.
type PlanRequest struct {
	// Measure is the base configuration: processor, stack, benchmark,
	// pattern, mode, opt, seed. Events may exceed the hardware counter
	// count (up to MaxMpxEvents); the first event is the anchor the
	// fusion constraint pivots on. Runs and Calibrate are owned by the
	// planner and canonicalized away.
	Measure MeasureRequest `json:"measure"`
	// TargetRelWidth is the accuracy goal: the confidence interval's
	// half-width divided by the estimate magnitude must not exceed it.
	// Required, in [MinTargetRelWidth, MaxTargetRelWidth].
	TargetRelWidth float64 `json:"targetRelWidth"`
	// Confidence is the two-sided level of every interval (0 means
	// accuracy.DefaultConfidence).
	Confidence float64 `json:"confidence,omitempty"`
	// Counters is how many hardware counters per worker the plan may
	// use (0 means all the model has).
	Counters int `json:"counters,omitempty"`
	// PilotRuns sizes the pilot execution the replication choice is
	// derived from (0 means DefaultPilotRuns).
	PilotRuns int `json:"pilotRuns,omitempty"`
	// MaxRuns is the replication budget per plan (0 means
	// DefaultPlanMaxRuns).
	MaxRuns int `json:"maxRuns,omitempty"`
	// MaxRefine bounds how many times the planner may re-plan with the
	// observed dispersion after missing the target (0 means
	// DefaultMaxRefine; negative disables refinement).
	MaxRefine int `json:"maxRefine,omitempty"`
	// Posterior opts in to cross-event posterior fusion: after the
	// schedule's own fusion, the constraint solver of internal/bayes
	// runs over the fused per-event estimates with the built-in
	// invariant library, so multiplexed schedules inherit cross-event
	// information. Posterior intervals are never wider than the fused
	// ones, and attainment is then judged on them.
	Posterior bool `json:"posterior,omitempty"`
	// Trace asks for a span trace on the response. Stripped by
	// Normalized (the canonical plan is trace-free), so traced and
	// untraced plans share one coalescing key.
	Trace bool `json:"trace,omitempty"`
}

// Normalized validates the request and makes every default explicit.
// The canonical form's Key is the coalescing identity of the plan.
func (r PlanRequest) Normalized() (PlanRequest, error) {
	if r.TargetRelWidth < MinTargetRelWidth || r.TargetRelWidth > MaxTargetRelWidth {
		return r, badf("api: target relative width %v out of range %v-%v",
			r.TargetRelWidth, MinTargetRelWidth, MaxTargetRelWidth)
	}
	if r.Confidence == 0 {
		r.Confidence = accuracy.DefaultConfidence
	}
	if r.Confidence < MinConfidence || r.Confidence > MaxConfidence {
		return r, badf("api: confidence %v out of range %v-%v", r.Confidence, MinConfidence, MaxConfidence)
	}
	model, err := cpu.ModelByTag(r.Measure.Processor)
	if err != nil {
		return r, badf("api: bad processor %q (want PD, CD, or K8)", r.Measure.Processor)
	}
	if r.Counters == 0 {
		r.Counters = model.NumProgrammable
	}
	if r.Counters < 1 || r.Counters > model.NumProgrammable {
		return r, badf("api: %d plan counters out of range 1-%d on %s",
			r.Counters, model.NumProgrammable, model.Tag)
	}
	if r.PilotRuns == 0 {
		r.PilotRuns = DefaultPilotRuns
	}
	if r.PilotRuns < 1 || r.PilotRuns > MaxPilotRuns {
		return r, badf("api: pilot runs %d out of range 1-%d", r.PilotRuns, MaxPilotRuns)
	}
	if r.MaxRuns == 0 {
		r.MaxRuns = DefaultPlanMaxRuns
	}
	if r.MaxRuns < r.PilotRuns || r.MaxRuns > MaxPlanRuns {
		return r, badf("api: max runs %d out of range %d-%d", r.MaxRuns, r.PilotRuns, MaxPlanRuns)
	}
	switch {
	case r.MaxRefine == 0:
		r.MaxRefine = DefaultMaxRefine
	case r.MaxRefine < 0:
		// Explicit "no refinement". Canonicalizes to -1, not 0: zero is
		// the unset spelling and would round-trip back to the default,
		// breaking normalization idempotence (caught by the api fuzz
		// tests). The executor treats any non-positive budget as zero
		// refine rounds.
		r.MaxRefine = -1
	case r.MaxRefine > MaxRefineBound:
		return r, badf("api: refine budget %d exceeds limit %d", r.MaxRefine, MaxRefineBound)
	}

	// The planner owns replication and calibration; canonicalize both
	// away so equivalent plans coalesce. The event list may exceed the
	// per-counter bound MeasureRequest.Normalized enforces — that is the
	// point of a multiplexing schedule — so it is validated here against
	// the looser MaxMpxEvents bound, exactly as /analyze does.
	r.Measure.Runs = 1
	r.Measure.Calibrate = false
	events := r.Measure.Events
	if len(events) == 0 {
		events = []string{DefaultEvent}
	}
	if len(events) > MaxMpxEvents {
		return r, badf("api: %d events exceed the plan limit %d", len(events), MaxMpxEvents)
	}
	canonical := make([]string, len(events))
	for i, name := range events {
		ev, err := cpu.EventByName(name)
		if err != nil {
			return r, badf("api: %v", err)
		}
		if !cpu.SupportsEvent(model.Arch, ev) {
			return r, badf("api: event %s not supported on %s", ev, model.Arch)
		}
		canonical[i] = ev.String()
	}
	r.Measure.Events = []string{DefaultEvent}
	norm, err := r.Measure.Normalized()
	if err != nil {
		return r, err
	}
	norm.Events = canonical
	r.Measure = norm
	// Tracing is observability, not planning: canonicalized away so the
	// plan key and echoed request stay trace-free (fuzz-verified).
	r.Trace = false
	return r, nil
}

// Mode returns the execution mode the normalized request implies:
// dedicated counting when the events fit the plan's counters,
// multiplexed otherwise.
func (r PlanRequest) Mode() string {
	if len(r.Measure.Events) <= r.Counters {
		return PlanModeDedicated
	}
	return PlanModeMultiplexed
}

// Key returns the canonical identity of a normalized plan request,
// used for coalescing identical in-flight plans.
func (r PlanRequest) Key() string {
	return fmt.Sprintf("plan|%s|w%v|conf%v|hw%d|p%d|m%d|ref%d|post%v",
		r.Measure.Key(), r.TargetRelWidth, r.Confidence, r.Counters,
		r.PilotRuns, r.MaxRuns, r.MaxRefine, r.Posterior)
}

// PlanGroup is one scheduled counter assignment: the events occupying
// hardware counters simultaneously, in slot order.
type PlanGroup struct {
	// Events lists the group's events by counter slot. In multiplexed
	// mode the first slot of every group carries the anchor.
	Events []string `json:"events"`
	// Multiplexed reports whether the group time-shares counters with
	// other groups (false for a dedicated schedule's single group).
	Multiplexed bool `json:"multiplexed"`
}

// PlanInfo is the deterministic measurement plan: what the planner
// decided before and during execution. Identical normalized requests
// produce byte-identical plans.
type PlanInfo struct {
	// Request echoes the normalized request planned.
	Request PlanRequest `json:"request"`
	// Mode is PlanModeDedicated or PlanModeMultiplexed.
	Mode string `json:"mode"`
	// Anchor names the event pinned into every multiplexed group (empty
	// in dedicated mode).
	Anchor string `json:"anchor,omitempty"`
	// Groups is the counter schedule.
	Groups []PlanGroup `json:"groups"`
	// PilotRuns is the pilot replication executed first.
	PilotRuns int `json:"pilotRuns"`
	// PlannedRuns is the replication the dispersion model chose from
	// the pilot (before any refinement).
	PlannedRuns int `json:"plannedRuns"`
}

// PlanEstimate is one event's outcome: the naive per-group multiplexed
// estimate and the fused estimate, with the attainment verdict.
type PlanEstimate struct {
	// Event names the estimated event.
	Event string `json:"event"`
	// Naive is the estimate the schedule yields without fusion — for a
	// multiplexed event, the time-interpolated per-group estimate with
	// the extrapolation error model applied (what /analyze reports).
	Naive EstimateInfo `json:"naive"`
	// Fused is the estimate after inverse-variance / anchor-constraint
	// fusion. Its interval is never wider than Naive's.
	Fused EstimateInfo `json:"fused"`
	// Posterior is the cross-event constraint-conditioned estimate,
	// present when the request opted in (PlanRequest.Posterior). Its
	// interval is never wider than Fused's.
	Posterior *EstimateInfo `json:"posterior,omitempty"`
	// Narrowing is 1 - fused/naive interval half-width (0 when the
	// naive interval is already degenerate).
	Narrowing float64 `json:"narrowing"`
	// RelWidth is the final interval's half-width divided by the
	// estimate magnitude — the quantity the target bounds (posterior
	// when requested, fused otherwise).
	RelWidth float64 `json:"relWidth"`
	// Attained reports RelWidth <= the request's target.
	Attained bool `json:"attained"`
}

// PlanResponse reports an executed measurement plan. Identical
// normalized requests receive byte-identical responses.
type PlanResponse struct {
	// Plan is the deterministic schedule and replication decision.
	Plan PlanInfo `json:"plan"`
	// Estimates holds one entry per requested event, in request order.
	Estimates []PlanEstimate `json:"estimates"`
	// Attained reports whether every event met the target.
	Attained bool `json:"attained"`
	// Rounds is how many plan-execute-fuse rounds ran (1 means the
	// first plan sufficed).
	Rounds int `json:"rounds"`
	// TotalRuns is the benchmark executions spent, including pilot and
	// reference runs — the cost the planner minimized against the
	// target.
	TotalRuns int `json:"totalRuns"`
	// Calibration reports the cached overhead estimate dedicated-mode
	// counting reused (absent in multiplexed mode, whose raw-program
	// estimates carry no harness overhead).
	Calibration *CalibrationInfo `json:"calibration,omitempty"`
	// Residuals reports the invariant-consistency verdicts of the
	// posterior-fusion step, present when the request opted in.
	Residuals []ResidualInfo `json:"residuals,omitempty"`
	// Trace is the opt-in span trace (request field "trace": true).
	// Strip it and the body is byte-identical to the untraced response;
	// it is attached to a per-caller copy, never the coalesced-shared
	// response.
	Trace *TraceInfo `json:"trace,omitempty"`
}
