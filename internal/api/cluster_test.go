package api

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// TestRequestKeyMatchesCoalescingKey: RequestKey must return exactly
// the key the service coalesces on — Normalized().Key() — for every
// wire request type, value or pointer. A divergence here would send
// pcfront's placement and the service's coalescing to different nodes.
func TestRequestKeyMatchesCoalescingKey(t *testing.T) {
	measure := MeasureRequest{Processor: "K8", Stack: "pc", Bench: "loop:1000", Pattern: "rr", Runs: 3}
	nm, err := measure.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	session := SessionRequest{Measure: measure, Steps: 8}
	ns, err := session.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	analyze := AnalyzeRequest{Items: []AnalyzeItem{{Measure: measure}}}
	na, err := analyze.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	plan := PlanRequest{Measure: MeasureRequest{Processor: "K8", Stack: "pc", Bench: "loop:400"}, TargetRelWidth: 0.2}
	np, err := plan.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	campaign := CampaignRequest{Programs: 2}
	nc, err := campaign.Normalized()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		req  any
		want string
	}{
		{"measure", measure, nm.Key()},
		{"measure pointer", &measure, nm.Key()},
		{"analyze", analyze, "analyze|" + na.Items[0].Key()},
		{"plan", plan, np.Key()},
		{"plan pointer", &plan, np.Key()},
		{"experiment", ExperimentRequest{ID: "e1", Runs: 3, Seed: 7}, "exp|e1|r3|s7"},
		{"session", session, ns.SessionKey()},
		{"campaign", campaign, "campaign|" + nc.Key()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := RequestKey(tc.req)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("RequestKey = %q, want %q", got, tc.want)
			}
		})
	}
}

// TestRequestKeyCanonicalization: requests that mean the same thing —
// defaults implicit vs explicit — share one key.
func TestRequestKeyCanonicalization(t *testing.T) {
	implicit := MeasureRequest{Processor: "K8", Stack: "pc", Bench: "loop:1000"}
	explicit := MeasureRequest{Processor: "K8", Stack: "pc", Bench: "loop:1000", Pattern: DefaultPattern, Runs: DefaultRuns}
	ki, err := RequestKey(implicit)
	if err != nil {
		t.Fatal(err)
	}
	ke, err := RequestKey(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if ki != ke {
		t.Fatalf("implicit and explicit defaults key differently:\n%q\n%q", ki, ke)
	}
}

// TestRequestKeyErrors: validation failures surface as ErrBadRequest,
// unknown types are rejected.
func TestRequestKeyErrors(t *testing.T) {
	if _, err := RequestKey(MeasureRequest{Processor: "NOPE"}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("invalid measure: err = %v, want ErrBadRequest", err)
	}
	if _, err := RequestKey(42); err == nil {
		t.Fatal("RequestKey(42) succeeded")
	}
}

// TestRequestKeyForPath: the body-decoding form agrees with the typed
// form on every endpoint, and rejects what it must.
func TestRequestKeyForPath(t *testing.T) {
	measure := MeasureRequest{Processor: "K8", Stack: "pc", Bench: "loop:1000", Pattern: "rr", Runs: 3}
	cases := []struct {
		path string
		req  any
	}{
		{"/measure", measure},
		{"/analyze", AnalyzeRequest{Items: []AnalyzeItem{{Measure: measure}}}},
		{"/plan", PlanRequest{Measure: MeasureRequest{Processor: "K8", Stack: "pc", Bench: "loop:400"}, TargetRelWidth: 0.2}},
		{"/infer", InferRequest{Items: []InferItem{{Processor: "K8", Inputs: []InferInput{
			{Event: "INSTR_RETIRED", Mean: 1000, Variance: 100},
			{Event: "CPU_CLK_UNHALTED", Mean: 2000, Variance: 400},
		}}}}},
		{"/experiment", ExperimentRequest{ID: "e1", Runs: 3, Seed: 7}},
		{"/sessions", SessionRequest{Measure: measure, Steps: 8}},
		{"/campaigns", CampaignRequest{Programs: 2}},
	}
	for _, tc := range cases {
		t.Run(strings.TrimPrefix(tc.path, "/"), func(t *testing.T) {
			body, err := json.Marshal(tc.req)
			if err != nil {
				t.Fatal(err)
			}
			fromBody, err := RequestKeyForPath(tc.path, body)
			if err != nil {
				t.Fatal(err)
			}
			fromType, err := RequestKey(tc.req)
			if err != nil {
				t.Fatal(err)
			}
			if fromBody != fromType {
				t.Fatalf("keys disagree:\nbody: %q\ntype: %q", fromBody, fromType)
			}
		})
	}

	if _, err := RequestKeyForPath("/measure", []byte(`{`)); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("malformed JSON: err = %v, want ErrBadRequest", err)
	}
	if _, err := RequestKeyForPath("/nonesuch", []byte(`{}`)); err == nil {
		t.Fatal("unknown path accepted")
	}
}

func TestClusterStatusFrom(t *testing.T) {
	front := ClusterHealthResponse{
		Status: "degraded",
		Nodes: []ClusterNode{
			{Name: "a:7001", State: NodeHealthy},
			{Name: "b:7002", State: NodeUnhealthy},
			{Name: "c:7003", State: NodeDraining},
		},
	}
	health := map[string]*HealthResponse{
		"a:7001": {Status: "ok"},
	}
	errs := map[string]string{
		"b:7002": "connection refused",
	}
	doc := ClusterStatusFrom(front, health, errs)
	if doc.Front.Status != "degraded" || len(doc.Backends) != 3 {
		t.Fatalf("doc: %+v", doc)
	}
	a := doc.Backends[0]
	if !a.Reachable || a.Health == nil || a.Health.Status != "ok" || a.Error != "" {
		t.Fatalf("row a: %+v", a)
	}
	b := doc.Backends[1]
	if b.Reachable || b.Health != nil || b.Error != "connection refused" {
		t.Fatalf("row b: %+v", b)
	}
	c := doc.Backends[2]
	if c.Reachable || c.Error != "unreachable" || c.Node.State != NodeDraining {
		t.Fatalf("row c: %+v", c)
	}
}
