package api

import (
	"strings"
	"testing"
)

func TestAnalyzeItemNormalizedDefaults(t *testing.T) {
	it := AnalyzeItem{Measure: MeasureRequest{Processor: "K8", Stack: "pc"}}
	norm, err := it.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Confidence != 0.95 {
		t.Errorf("Confidence = %v, want 0.95", norm.Confidence)
	}
	if norm.Measure.Bench != "null" || norm.Measure.Pattern != "ar" || norm.Measure.Runs != 1 {
		t.Errorf("measure defaults not applied: %+v", norm.Measure)
	}
	// Calibrate is canonicalized away: analysis always calibrates.
	it.Measure.Calibrate = true
	norm2, err := it.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if norm2.Key() != norm.Key() {
		t.Errorf("calibrate flag changed the item identity: %q vs %q", norm2.Key(), norm.Key())
	}
}

func TestAnalyzeItemMultiplexAllowsMoreEventsThanCounters(t *testing.T) {
	// CD has 2 programmable counters; 4 multiplexed events must pass.
	it := AnalyzeItem{
		Measure: MeasureRequest{
			Processor: "CD", Stack: "pc",
			Events: []string{"INSTR_RETIRED", "CPU_CLK_UNHALTED", "BR_MISP_RETIRED", "ICACHE_MISS"},
		},
		MpxCounters: 2,
	}
	norm, err := it.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if len(norm.Measure.Events) != 4 {
		t.Errorf("events = %v", norm.Measure.Events)
	}
	// Without multiplexing the same request must be rejected.
	it.MpxCounters = 0
	if _, err := it.Normalized(); err == nil {
		t.Error("4 dedicated events on a 2-counter model accepted")
	}
	// More rotation counters than the model has must be rejected.
	it.MpxCounters = 3
	if _, err := it.Normalized(); err == nil {
		t.Error("3 multiplex counters on a 2-counter model accepted")
	}
}

func TestAnalyzeItemDuetForcedAlignment(t *testing.T) {
	duet := MeasureRequest{Processor: "K8", Stack: "pc", Bench: "null", Runs: 99, Seed: 42}
	it := AnalyzeItem{
		Measure: MeasureRequest{Processor: "K8", Stack: "pc", Bench: "loop:1000", Runs: 5, Seed: 7},
		Duet:    &duet,
	}
	norm, err := it.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Duet.Runs != 5 || norm.Duet.Seed != 7 {
		t.Errorf("duet runs/seed not forced to primary's: %+v", norm.Duet)
	}
	// Cross-shard duet is rejected with a message naming both shards.
	bad := AnalyzeItem{
		Measure: MeasureRequest{Processor: "K8", Stack: "pc"},
		Duet:    &MeasureRequest{Processor: "K8", Stack: "pm"},
	}
	_, err = bad.Normalized()
	if err == nil || !strings.Contains(err.Error(), "share a shard") {
		t.Errorf("cross-shard duet: err = %v", err)
	}
}

func TestAnalyzeRequestBatchLimits(t *testing.T) {
	if _, err := (AnalyzeRequest{}).Normalized(); err == nil {
		t.Error("empty batch accepted")
	}
	big := AnalyzeRequest{Items: make([]AnalyzeItem, MaxAnalyzeItems+1)}
	for i := range big.Items {
		big.Items[i] = AnalyzeItem{Measure: MeasureRequest{Processor: "K8", Stack: "pc"}}
	}
	if _, err := big.Normalized(); err == nil {
		t.Error("oversized batch accepted")
	}
}

func TestAnalyzeItemKeyDistinguishesModels(t *testing.T) {
	base := AnalyzeItem{Measure: MeasureRequest{Processor: "K8", Stack: "pc"}}
	variants := []AnalyzeItem{
		base,
		{Measure: base.Measure, Confidence: 0.9},
		{Measure: base.Measure, MpxCounters: 1},
		{Measure: base.Measure, SamplingPeriod: 1000},
		{Measure: base.Measure, Duet: &MeasureRequest{Processor: "K8", Stack: "pc", Bench: "null"}},
	}
	seen := map[string]int{}
	for i, v := range variants {
		norm, err := v.Normalized()
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if prev, dup := seen[norm.Key()]; dup {
			t.Errorf("variants %d and %d share key %q", prev, i, norm.Key())
		}
		seen[norm.Key()] = i
	}
}
