package api

import (
	"errors"
	"testing"

	"repro/internal/core"
)

func TestNormalizedDefaults(t *testing.T) {
	norm, err := MeasureRequest{Processor: "K8", Stack: "pc"}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	want := MeasureRequest{
		Processor: "K8", Stack: "pc", Bench: "null", Pattern: "ar",
		Mode: "user", Events: []string{"INSTR_RETIRED"}, Runs: 1, Seed: 1,
	}
	if norm.Key() != want.Key() {
		t.Errorf("normalized = %+v, want %+v", norm, want)
	}
}

func TestNormalizedCanonicalizes(t *testing.T) {
	a, err := MeasureRequest{Processor: "CD", Stack: "pm", Bench: "loop:500", Mode: "uk"}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureRequest{Processor: "CD", Stack: "pm", Bench: "loop:500", Mode: "user+kernel", Runs: 1, Seed: 1}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() != b.Key() {
		t.Errorf("equivalent requests normalize to different keys:\n%s\n%s", a.Key(), b.Key())
	}
}

func TestNormalizedRejects(t *testing.T) {
	bad := []MeasureRequest{
		{Processor: "Z80", Stack: "pc"},
		{Processor: "K8", Stack: "nope"},
		{Processor: "K8", Stack: "pc", Bench: "loop:-1"},
		{Processor: "K8", Stack: "pc", Bench: "loop:999999999999"},
		{Processor: "K8", Stack: "pc", Pattern: "xx"},
		{Processor: "K8", Stack: "pc", Mode: "ring3"},
		{Processor: "K8", Stack: "pc", Events: []string{"UNICORNS"}},
		// CD has only 2 programmable counters.
		{Processor: "CD", Stack: "pc", Events: []string{"INSTR_RETIRED", "CPU_CLK_UNHALTED", "BR_MISP_RETIRED"}},
		{Processor: "K8", Stack: "pc", Opt: 4},
		{Processor: "K8", Stack: "pc", Runs: MaxRuns + 1},
	}
	for _, req := range bad {
		if _, err := req.Normalized(); !errors.Is(err, ErrBadRequest) {
			t.Errorf("Normalized(%+v) err = %v, want ErrBadRequest", req, err)
		}
	}
}

func TestShardAndCalibrationKeys(t *testing.T) {
	a, _ := MeasureRequest{Processor: "K8", Stack: "pc", Bench: "loop:10"}.Normalized()
	b, _ := MeasureRequest{Processor: "K8", Stack: "pc", Bench: "loop:999", Runs: 7, Seed: 5}.Normalized()
	if a.ShardKey() != b.ShardKey() {
		t.Errorf("same configuration, different shards: %s vs %s", a.ShardKey(), b.ShardKey())
	}
	if a.CalibrationKey() != b.CalibrationKey() {
		t.Errorf("benchmark leaked into calibration key: %s vs %s", a.CalibrationKey(), b.CalibrationKey())
	}
	c, _ := MeasureRequest{Processor: "K8", Stack: "pc", Bench: "loop:10", NoTSC: true}.Normalized()
	if a.ShardKey() == c.ShardKey() {
		t.Error("TSC setting not part of the shard key")
	}
	// On perfmon-backed stacks NoTSC is meaningless and must normalize
	// away, or equivalent requests would split across duplicate shards.
	pm1, _ := MeasureRequest{Processor: "K8", Stack: "pm", Bench: "loop:10"}.Normalized()
	pm2, _ := MeasureRequest{Processor: "K8", Stack: "pm", Bench: "loop:10", NoTSC: true}.Normalized()
	if pm1.Key() != pm2.Key() || pm1.ShardKey() != pm2.ShardKey() {
		t.Error("NoTSC not canonicalized away for a perfmon-backed stack")
	}
	d, _ := MeasureRequest{Processor: "K8", Stack: "pc", Bench: "loop:10", Pattern: "rr"}.Normalized()
	if a.CalibrationKey() == d.CalibrationKey() {
		t.Error("pattern not part of the calibration key")
	}
}

func TestBuildRoundTrip(t *testing.T) {
	norm, err := MeasureRequest{
		Processor: "PD", Stack: "PLpc", Bench: "array:64", Pattern: "ro",
		Mode: "kernel", Events: []string{"CPU_CLK_UNHALTED", "INSTR_RETIRED"}, Opt: 3,
	}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	creq, err := norm.Build()
	if err != nil {
		t.Fatal(err)
	}
	if creq.Bench.Name != "array" || creq.Bench.Iterations != 64 {
		t.Errorf("bench = %+v", creq.Bench)
	}
	if creq.Pattern != core.ReadStop || creq.Mode != core.ModeKernel {
		t.Errorf("pattern/mode = %v/%v", creq.Pattern, creq.Mode)
	}
	if len(creq.Events) != 2 || int(creq.Opt) != 3 {
		t.Errorf("events/opt = %v/%v", creq.Events, creq.Opt)
	}
}

func TestParseBench(t *testing.T) {
	b, err := ParseBench("loop:100")
	if err != nil || b.ExpectedInstr != 301 {
		t.Errorf("loop:100 = %+v, %v", b, err)
	}
	if _, err := ParseBench("fib:10"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}
