package api

import (
	"strings"
	"testing"

	"repro/internal/bayes"
)

// The fuzz targets pin the contract every coalescing and caching layer
// rests on: normalization is a *canonicalization* — if Normalized()
// accepts a request, normalizing its output must succeed, change
// nothing, and produce the same Key. A normalization that accepted a
// form it cannot reproduce would split identical requests across cache
// entries (or worse, collide different ones), so the round-trip
// property is fuzzed over the raw wire vocabulary rather than
// enumerated by hand.

func checkCanonical[T interface{ Key() string }](t *testing.T, norm T, renorm func(T) (T, error)) {
	t.Helper()
	again, err := renorm(norm)
	if err != nil {
		t.Fatalf("re-normalizing a normalized request failed: %v\nnormalized: %+v", err, norm)
	}
	if norm.Key() != again.Key() {
		t.Fatalf("normalization not idempotent:\n first: %s\nsecond: %s", norm.Key(), again.Key())
	}
}

// checkTraceCanonicalizedAway pins the observability contract: asking
// for a trace is presentation, not semantics. A request with Trace set
// must normalize to the same canonical form (same Key, Trace cleared)
// as its untraced twin, so traced and untraced callers share one
// coalescing flight and one cache entry.
func checkTraceCanonicalizedAway[T interface{ Key() string }](t *testing.T, raw, norm T,
	renorm func(T) (T, error), setTrace func(*T), getTrace func(T) bool) {
	t.Helper()
	traced := raw
	setTrace(&traced)
	tnorm, err := renorm(traced)
	if err != nil {
		t.Fatalf("setting trace broke normalization: %v", err)
	}
	if getTrace(tnorm) {
		t.Fatal("normalization left the trace flag set")
	}
	if tnorm.Key() != norm.Key() {
		t.Fatalf("trace flag changed canonical key:\nuntraced: %s\n  traced: %s",
			norm.Key(), tnorm.Key())
	}
}

func FuzzMeasureRequestNormalized(f *testing.F) {
	f.Add("K8", "pc", "loop:1000", "ar", "user", "INSTR_RETIRED", 0, 3, uint64(1), true, false)
	f.Add("PD", "PHpm", "null", "", "", "", 2, 0, uint64(0), false, true)
	f.Add("CD", "pm", "array:500", "rr", "uk", "CPU_CLK_UNHALTED", 3, 100, uint64(7), false, false)
	f.Add("K8", "PLpc", "loop:9", "ao", "kernel", "DCACHE_MISS", 1, 1, uint64(2), true, true)
	f.Fuzz(func(t *testing.T, proc, stack, bench, pattern, mode, event string,
		opt, runs int, seed uint64, calibrate, notsc bool) {
		req := MeasureRequest{
			Processor: proc, Stack: stack, Bench: bench, Pattern: pattern,
			Mode: mode, Opt: opt, Runs: runs, Seed: seed,
			Calibrate: calibrate, NoTSC: notsc,
		}
		if event != "" {
			req.Events = []string{event}
		}
		norm, err := req.Normalized()
		if err != nil {
			return // rejected input: nothing to canonicalize
		}
		checkCanonical(t, norm, MeasureRequest.Normalized)
		if norm.ShardKey() == "" || norm.CalibrationKey() == "" {
			t.Fatal("normalized request produced empty shard/calibration key")
		}
		checkTraceCanonicalizedAway(t, req, norm, MeasureRequest.Normalized,
			func(r *MeasureRequest) { r.Trace = true },
			func(r MeasureRequest) bool { return r.Trace })
		if _, err := norm.Build(); err != nil {
			t.Fatalf("normalized request does not build: %v", err)
		}
	})
}

func FuzzAnalyzeItemNormalized(f *testing.F) {
	f.Add("K8", "pc", "loop:1000", 0.95, 0, int64(0), false)
	f.Add("CD", "pm", "null", 0.0, 1, int64(10_000), true)
	f.Add("PD", "PHpc", "array:100", 0.99, 2, int64(100), false)
	f.Fuzz(func(t *testing.T, proc, stack, bench string, conf float64,
		mpx int, sampling int64, duet bool) {
		item := AnalyzeItem{
			Measure:        MeasureRequest{Processor: proc, Stack: stack, Bench: bench},
			Confidence:     conf,
			MpxCounters:    mpx,
			SamplingPeriod: sampling,
		}
		if duet {
			item.Duet = &MeasureRequest{Processor: proc, Stack: stack, Bench: "null"}
		}
		norm, err := item.Normalized()
		if err != nil {
			return
		}
		checkCanonical(t, norm, AnalyzeItem.Normalized)
	})
}

func FuzzPlanRequestNormalized(f *testing.F) {
	f.Add("K8", "pc", "loop:1000", 0.1, 0.95, 2, 2, 16, 0)
	f.Add("CD", "pm", "array:100", 0.05, 0.0, 0, 0, 0, -1)
	f.Add("PD", "pc", "null", 1.0, 0.5, 1, 32, 4096, 8)
	f.Fuzz(func(t *testing.T, proc, stack, bench string, target, conf float64,
		counters, pilot, maxRuns, refine int) {
		req := PlanRequest{
			Measure:        MeasureRequest{Processor: proc, Stack: stack, Bench: bench},
			TargetRelWidth: target,
			Confidence:     conf,
			Counters:       counters,
			PilotRuns:      pilot,
			MaxRuns:        maxRuns,
			MaxRefine:      refine,
		}
		norm, err := req.Normalized()
		if err != nil {
			return
		}
		checkCanonical(t, norm, PlanRequest.Normalized)
		if norm.Mode() != PlanModeDedicated && norm.Mode() != PlanModeMultiplexed {
			t.Fatalf("normalized plan has no mode: %+v", norm)
		}
		checkTraceCanonicalizedAway(t, req, norm, PlanRequest.Normalized,
			func(r *PlanRequest) { r.Trace = true },
			func(r PlanRequest) bool { return r.Trace })
	})
}

func FuzzInferItemNormalized(f *testing.F) {
	f.Add("K8", "INSTR_RETIRED", 1000.0, 100.0, "CPU_CLK_UNHALTED", 1.0, -1.0, "<=", 0.0, false, 0.95)
	f.Add("", "A", 1.0, 0.0, "A", 2.0, 0.5, "=", 3.0, true, 0.0)
	f.Add("CD", "X", -5.0, 25.0, "X", -1.0, 0.0, ">=", -1.0, false, 0.5)
	f.Fuzz(func(t *testing.T, proc, ev1 string, mean1, var1 float64,
		cev string, coef1, coef2 float64, op string, rhs float64,
		nolib bool, conf float64) {
		item := InferItem{
			Processor:  proc,
			NoLibrary:  nolib,
			Confidence: conf,
			Inputs: []InferInput{
				{Event: ev1, Mean: mean1, Variance: var1},
				{Event: "INSTR_RETIRED", Mean: 500, Variance: 25},
			},
			Constraints: []InferConstraint{{
				Terms: []bayes.Term{
					{Event: cev, Coef: coef1},
					{Event: "INSTR_RETIRED", Coef: coef2},
				},
				Op:  op,
				RHS: rhs,
			}},
		}
		norm, err := item.Normalized()
		if err != nil {
			return
		}
		checkCanonical(t, norm, InferItem.Normalized)
		if _, err := norm.Model(); err != nil {
			t.Fatalf("normalized item's model does not assemble: %v", err)
		}
	})
}

func FuzzCampaignRequestNormalized(f *testing.F) {
	f.Add(uint64(1), 16, "PD,CD,K8", "pc", "ar", "mix,branch", 3, 8, 4, 16, 1, 0.25, 0.95)
	f.Add(uint64(0), 0, "", "", "", "", 0, 0, 0, 0, 0, 0.0, 0.0)
	f.Add(uint64(7), 500, "K8", "pm", "rr", "probe", 64, 2, -1, -1, -1, 0.5, 0.999)
	f.Fuzz(func(t *testing.T, seed uint64, programs int, procs, stack, pattern, classes string,
		scale, runs, inferEvery, planEvery, engineEvery int, target, conf float64) {
		req := CampaignRequest{
			Seed: seed, Programs: programs, Stack: stack, Pattern: pattern,
			Scale: scale, Runs: runs, InferEvery: inferEvery, PlanEvery: planEvery,
			EngineEvery: engineEvery, TargetRelWidth: target, Confidence: conf,
		}
		if procs != "" {
			req.Processors = strings.Split(procs, ",")
		}
		if classes != "" {
			req.Classes = strings.Split(classes, ",")
		}
		norm, err := req.Normalized()
		if err != nil {
			return
		}
		checkCanonical(t, norm, CampaignRequest.Normalized)
		if len(norm.Processors) == 0 || len(norm.Classes) == 0 {
			t.Fatalf("normalized campaign has empty selection: %+v", norm)
		}
	})
}
