// Package api defines the wire types of the measurement service: the
// JSON requests and responses exchanged by cmd/pcserved and its
// clients, plus the parsing and normalization that turn wire strings
// (processor tags, stack codes, benchmark specs, pattern codes) into
// the simulator's vocabulary.
//
// Every request normalizes to a canonical form with all defaults made
// explicit; the canonical form's Key is the identity used for request
// coalescing and calibration caching, so two requests that mean the
// same measurement always share one execution.
//
// The analyze types (analyze.go) extend the vocabulary with the error
// model of internal/accuracy: batched analysis items whose results are
// corrected estimates with confidence intervals, and the accuracy
// annotation every measurement response carries.
package api

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/campaign/gen"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/stack"
)

// ErrBadRequest marks validation failures: the request is malformed and
// retrying it unchanged cannot succeed. Servers map it to HTTP 400.
var ErrBadRequest = errors.New("bad request")

// badf returns a validation error wrapping ErrBadRequest.
func badf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadRequest, fmt.Sprintf(format, args...))
}

// Defaults applied by MeasureRequest.Normalized.
const (
	// DefaultPattern is the start-read pattern, supported by every stack.
	DefaultPattern = "ar"
	// DefaultMode counts user-mode events only, the paper's main setting.
	DefaultMode = "user"
	// DefaultRuns is the repetition count when the request leaves it 0.
	DefaultRuns = 1
	// DefaultSeed is the base seed when the request leaves it 0.
	DefaultSeed = 1
	// MaxRuns bounds the repetitions a single request may ask for.
	MaxRuns = 10000
	// MaxBenchIterations bounds benchmark loop sizes so one request
	// cannot monopolize a worker.
	MaxBenchIterations = 100_000_000
)

// DefaultEvent is the event counted when the request names none.
const DefaultEvent = "INSTR_RETIRED"

// MeasureRequest asks the service for a repeated measurement of one
// configuration. String fields use the paper's codes: processor tags
// PD/CD/K8, stack codes pm/pc/PLpm/PLpc/PHpm/PHpc, benchmark specs
// null/loop:N/array:N, pattern codes ar/ao/rr/ro, and modes
// user/user+kernel/kernel.
type MeasureRequest struct {
	Processor string   `json:"processor"`
	Stack     string   `json:"stack"`
	Bench     string   `json:"bench"`
	Pattern   string   `json:"pattern,omitempty"`
	Mode      string   `json:"mode,omitempty"`
	Events    []string `json:"events,omitempty"`
	Opt       int      `json:"opt,omitempty"`
	Runs      int      `json:"runs,omitempty"`
	Seed      uint64   `json:"seed,omitempty"`
	// Calibrate asks the service to estimate (or fetch from its cache)
	// the configuration's fixed error and report calibrated errors.
	Calibrate bool `json:"calibrate,omitempty"`
	// NoTSC disables the perfctr TSC fast-read path (the Figure 4
	// study). Meaningless on perfmon-backed stacks.
	NoTSC bool `json:"notsc,omitempty"`
	// Engine selects the execution engine: "compiled" (the default) or
	// "interpreter". Engines are conformance-tested to produce
	// byte-identical measurements, so the choice never changes a result —
	// it exists for cross-checking and for pinning down engine bugs.
	Engine string `json:"engine,omitempty"`
	// Trace asks the service to echo a per-request span trace on the
	// response. Tracing is observability, not measurement: Normalized
	// strips the flag, so traced and untraced requests share one
	// canonical Key (and therefore coalesce together), and the echoed
	// request never reports it. See docs/OBSERVABILITY.md.
	Trace bool `json:"trace,omitempty"`
}

// Engine selector values for MeasureRequest.Engine.
const (
	// EngineInterpreter is the per-instruction reference engine.
	EngineInterpreter = "interpreter"
	// EngineCompiled is the block-dispatch engine (the default).
	EngineCompiled = "compiled"
)

// Normalized returns the request with every default made explicit and
// every field validated. The normalized form is canonical: requests
// that mean the same measurement normalize identically.
func (r MeasureRequest) Normalized() (MeasureRequest, error) {
	model, err := cpu.ModelByTag(r.Processor)
	if err != nil {
		return r, badf("api: bad processor %q (want PD, CD, or K8)", r.Processor)
	}
	if !validStack(r.Stack) {
		return r, badf("api: bad stack %q (want one of %s)", r.Stack, strings.Join(stack.Codes, ", "))
	}
	if strings.HasSuffix(r.Stack, "pm") {
		// The TSC fast-read path exists only in perfctr; on
		// perfmon-backed stacks NoTSC is meaningless, so canonicalize
		// it away — otherwise equivalent requests would land on
		// different shards and duplicate worker pools.
		r.NoTSC = false
	}
	if r.Bench == "" {
		r.Bench = "null"
	}
	bench, err := ParseBench(r.Bench)
	if err != nil {
		return r, badf("%v", err)
	}
	if bench.Iterations > MaxBenchIterations {
		return r, badf("api: benchmark size %d exceeds limit %d", bench.Iterations, MaxBenchIterations)
	}
	r.Bench = canonicalBenchSpec(bench)
	if r.Pattern == "" {
		r.Pattern = DefaultPattern
	}
	if _, err := core.PatternByCode(r.Pattern); err != nil {
		return r, badf("api: bad pattern %q (want ar, ao, rr, ro)", r.Pattern)
	}
	if r.Mode == "" {
		r.Mode = DefaultMode
	}
	mode, err := ParseMode(r.Mode)
	if err != nil {
		return r, badf("%v", err)
	}
	r.Mode = mode.String()
	if len(r.Events) == 0 {
		r.Events = []string{DefaultEvent}
	}
	if len(r.Events) > model.NumProgrammable {
		return r, badf("api: %d events exceed the %d programmable counters of %s",
			len(r.Events), model.NumProgrammable, model.Tag)
	}
	events := make([]string, len(r.Events))
	for i, name := range r.Events {
		ev, err := cpu.EventByName(name)
		if err != nil {
			return r, badf("api: %v", err)
		}
		if !cpu.SupportsEvent(model.Arch, ev) {
			return r, badf("api: event %s not supported on %s", ev, model.Arch)
		}
		events[i] = ev.String()
	}
	r.Events = events
	if r.Opt < 0 || r.Opt > 3 {
		return r, badf("api: optimization level %d out of range 0-3", r.Opt)
	}
	if r.Runs == 0 {
		r.Runs = DefaultRuns
	}
	if r.Runs < 0 || r.Runs > MaxRuns {
		return r, badf("api: runs %d out of range 1-%d", r.Runs, MaxRuns)
	}
	if r.Seed == 0 {
		r.Seed = DefaultSeed
	}
	switch r.Engine {
	case "", EngineInterpreter:
	case EngineCompiled:
		// The compiled engine is the default; canonicalizing it to ""
		// keeps the request key — and therefore coalescing and response
		// caches — shared with requests that never named an engine.
		// Engines produce byte-identical measurements, so sharing is safe.
		r.Engine = ""
	default:
		return r, badf("api: bad engine %q (want %s or %s)", r.Engine, EngineInterpreter, EngineCompiled)
	}
	// Tracing never changes what is measured, so it is canonicalized
	// away entirely: the service captures the caller's wish before
	// normalizing, and the canonical request — the coalescing identity
	// and the echoed body — is trace-free (fuzz-verified).
	r.Trace = false
	return r, nil
}

// Key returns the canonical identity of a normalized request. Two
// requests with equal keys produce byte-identical responses, so the key
// is safe to use for coalescing concurrent duplicates and for response
// caches.
func (r MeasureRequest) Key() string {
	key := fmt.Sprintf("%s|%s|%s|%s|%s|%s|O%d|r%d|s%d|c%v|t%v",
		r.Processor, r.Stack, r.Bench, r.Pattern, r.Mode,
		strings.Join(r.Events, ","), r.Opt, r.Runs, r.Seed, r.Calibrate, r.NoTSC)
	// The engine appears only when non-default, keeping keys (and any
	// stored responses) from before the engine field existed valid.
	if r.Engine != "" {
		key += "|e=" + r.Engine
	}
	return key
}

// ShardKey returns the identity of the system pool that can serve the
// request: processor, stack, and TSC setting. Requests with equal shard
// keys run on interchangeable systems.
func (r MeasureRequest) ShardKey() string {
	return fmt.Sprintf("%s/%s/tsc=%v", r.Processor, r.Stack, !r.NoTSC)
}

// CalibrationKey identifies the calibration a normalized request needs:
// everything that determines the fixed error except the benchmark and
// the repetition plan.
func (r MeasureRequest) CalibrationKey() string {
	return fmt.Sprintf("%s|%s|%s|O%d|t%v", r.ShardKey(), r.Pattern, r.Mode, r.Opt, r.NoTSC)
}

// Build translates the normalized request into the simulator's
// vocabulary: the benchmark, pattern, mode, events, and opt level of a
// core.Request (seed left to the executor).
func (r MeasureRequest) Build() (core.Request, error) {
	bench, err := ParseBench(r.Bench)
	if err != nil {
		return core.Request{}, err
	}
	pattern, err := core.PatternByCode(r.Pattern)
	if err != nil {
		return core.Request{}, err
	}
	mode, err := ParseMode(r.Mode)
	if err != nil {
		return core.Request{}, err
	}
	events := make([]cpu.Event, len(r.Events))
	for i, name := range r.Events {
		if events[i], err = cpu.EventByName(name); err != nil {
			return core.Request{}, err
		}
	}
	return core.Request{
		Bench:   bench,
		Pattern: pattern,
		Mode:    mode,
		Events:  events,
		Opt:     compiler.OptLevel(r.Opt),
	}, nil
}

// CalibrationInfo reports the calibration applied to a measurement.
type CalibrationInfo struct {
	// Offset is the estimated fixed error in events.
	Offset float64 `json:"offset"`
	// Strategy names the estimation method.
	Strategy string `json:"strategy"`
	// Samples is the number of calibration runs behind the estimate.
	Samples int `json:"samples"`
}

// Summary condenses the per-run errors of a measurement.
type Summary struct {
	Median float64 `json:"median"`
	Mean   float64 `json:"mean"`
	Min    int64   `json:"min"`
	Max    int64   `json:"max"`
}

// MeasureResponse reports a repeated measurement. Identical normalized
// requests receive byte-identical responses: nothing in the body
// depends on timing, worker identity, or cache state (cache hits are
// reported in headers, not the body).
type MeasureResponse struct {
	// Request echoes the normalized request served.
	Request MeasureRequest `json:"request"`
	// Expected is the benchmark's analytical ground-truth count.
	Expected int64 `json:"expected"`
	// Deltas holds the raw measured counts: one row per run, one column
	// per requested event.
	Deltas [][]int64 `json:"deltas"`
	// Errors is the per-run measurement error of the first counter.
	Errors []int64 `json:"errors"`
	// Summary condenses Errors.
	Summary Summary `json:"summary"`
	// Calibration reports the fixed-error estimate applied when the
	// request asked for calibration.
	Calibration *CalibrationInfo `json:"calibration,omitempty"`
	// CalibratedErrors is Errors minus the calibration offset.
	CalibratedErrors []float64 `json:"calibratedErrors,omitempty"`
	// Accuracy is the error-model annotation every response carries:
	// the corrected estimate of the first counter's count with its
	// confidence interval (overhead-corrected when the request asked
	// for calibration). The paper's thesis as a service contract: no
	// count leaves the service without an error estimate attached.
	Accuracy *EstimateInfo `json:"accuracy,omitempty"`
	// Trace is the opt-in span trace (request field "trace": true). It
	// is the one deliberately non-deterministic block of the response:
	// durations are wall time. Stripping it recovers the byte-identical
	// deterministic body, which is why it is attached to a per-caller
	// copy after coalescing, never to the shared response.
	Trace *TraceInfo `json:"trace,omitempty"`
}

// MaxExperimentRuns bounds ExperimentRequest.Runs. Experiments sweep
// whole factorial designs, so even modest per-cell counts are heavy;
// the published scale is 72.
const MaxExperimentRuns = 1000

// ExperimentRequest asks the service to run one paper experiment.
type ExperimentRequest struct {
	// ID is the experiment identifier ("fig1", "table3", ...).
	ID string `json:"id"`
	// Runs scales repetitions per cell (0 uses the quick preset;
	// capped at MaxExperimentRuns).
	Runs int `json:"runs,omitempty"`
	// Seed individualizes the experiment (0 uses the default).
	Seed uint64 `json:"seed,omitempty"`
}

// ExperimentResponse reports a completed experiment.
type ExperimentResponse struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	// Text is the rendered human-readable result.
	Text string `json:"text"`
}

// HealthResponse reports service liveness and pool state. Fields only
// accrete here: monitoring dashboards built against an older shape
// keep working (the old fields stay a subset).
type HealthResponse struct {
	Status string        `json:"status"`
	Shards []ShardHealth `json:"shards"`
	// Stats aggregates service counters since start.
	Stats ServiceStats `json:"stats"`
	// Calibrations is the calibration-cache size summed over shards.
	Calibrations int `json:"calibrations"`
	// CalibrationHitRate is hits/(hits+misses) of the calibration cache
	// since start (0 before the first lookup).
	CalibrationHitRate float64 `json:"calibrationHitRate"`
	// ActiveSessions is how many monitoring sessions are currently
	// producing (each pinning a worker). Filled by the server front end,
	// which owns the session registry.
	ActiveSessions int `json:"activeSessions"`
	// ActiveCampaigns is how many validation campaigns are currently
	// sweeping. Filled by the server front end, which owns the campaign
	// registry.
	ActiveCampaigns int `json:"activeCampaigns"`
	// Engines reports per-engine run counts and the compile cache shared
	// by every shard's compiled engine.
	Engines EngineHealth `json:"engines"`
}

// EngineHealth reports execution-engine state: how many program runs
// each engine served and the compile cache's occupancy and hit rate.
type EngineHealth struct {
	// InterpreterRuns and CompiledRuns count programs executed per
	// engine since start (top-level runs, not nested handler frames).
	InterpreterRuns int64 `json:"interpreterRuns"`
	CompiledRuns    int64 `json:"compiledRuns"`
	// CompileCacheSize and CompileCacheCapacity describe occupancy of
	// the shared compiled-program cache.
	CompileCacheSize     int `json:"compileCacheSize"`
	CompileCacheCapacity int `json:"compileCacheCapacity"`
	// CompileCacheHits, CompileCacheMisses, and CompileCacheEvictions
	// count cache lookups served warm, lookups that compiled, and
	// entries displaced by capacity.
	CompileCacheHits      int64 `json:"compileCacheHits"`
	CompileCacheMisses    int64 `json:"compileCacheMisses"`
	CompileCacheEvictions int64 `json:"compileCacheEvictions"`
	// CompileCacheHitRate is hits/(hits+misses) since start (0 before
	// the first lookup).
	CompileCacheHitRate float64 `json:"compileCacheHitRate"`
}

// ShardHealth describes one system pool.
type ShardHealth struct {
	// Key is the shard identity (processor/stack/tsc).
	Key string `json:"key"`
	// Workers is the pool size.
	Workers int `json:"workers"`
	// Idle is how many workers are currently checked in.
	Idle int `json:"idle"`
	// InUse is the pool occupancy: workers currently checked out to
	// requests, plans, or pinned sessions (Workers - Idle).
	InUse int `json:"inUse"`
	// Calibrations is how many distinct calibrations the shard cached.
	Calibrations int `json:"calibrations"`
}

// ServiceStats aggregates service-wide counters.
type ServiceStats struct {
	// Requests is the number of measure calls accepted.
	Requests uint64 `json:"requests"`
	// Analyzes is the number of analyze items accepted (batch items,
	// not batches).
	Analyzes uint64 `json:"analyzes"`
	// Infers is the number of infer items accepted (batch items, not
	// batches).
	Infers uint64 `json:"infers"`
	// Coalesced is how many calls were served by joining an identical
	// in-flight request instead of executing.
	Coalesced uint64 `json:"coalesced"`
	// CoalesceLeaders is how many calls executed as a flight leader
	// (followers joined them); Coalesced counts the followers.
	CoalesceLeaders uint64 `json:"coalesceLeaders"`
	// CalibrationHits and CalibrationMisses count calibration-cache
	// lookups that were served warm versus computed.
	CalibrationHits   uint64 `json:"calibrationHits"`
	CalibrationMisses uint64 `json:"calibrationMisses"`
	// PinnedWorkers is how many workers are currently checked out to
	// long-lived holders (monitoring sessions) rather than requests.
	PinnedWorkers uint64 `json:"pinnedWorkers"`
}

// Error is the service's JSON error body.
type Error struct {
	Error string `json:"error"`
}

// ParseBench parses a benchmark spec: null, loop:N, or array:N. It
// imposes no size limit — local tools may run paper-scale benchmarks of
// any size; the service-side cap (MaxBenchIterations) is applied by
// Normalized, where requests from untrusted clients arrive.
func ParseBench(spec string) (*core.Benchmark, error) {
	name, arg, _ := strings.Cut(spec, ":")
	switch name {
	case "null":
		return core.NullBenchmark(), nil
	case "loop", "array":
		n, err := strconv.ParseInt(arg, 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("api: bad benchmark size %q", arg)
		}
		if name == "loop" {
			return core.LoopBenchmark(n), nil
		}
		return core.ArrayBenchmark(n), nil
	case "gen":
		// Campaign-generated benchmark: gen:v1:<class>:<seed>[:<scale>].
		p, err := gen.Parse(spec)
		if err != nil {
			return nil, fmt.Errorf("api: %w", err)
		}
		return p.Benchmark(), nil
	}
	return nil, fmt.Errorf("api: unknown benchmark %q (want null, loop:N, array:N, gen:v1:class:seed:scale)", spec)
}

// canonicalBenchSpec renders a benchmark back to its wire spelling.
// Only the null benchmark spells bare: a zero-iteration loop/array
// must keep its ":0" or the canonical form would not re-parse (caught
// by the api fuzz tests). A generated benchmark's name is already its
// canonical spec, scale rendered explicitly.
func canonicalBenchSpec(b *core.Benchmark) string {
	if b.Name == "null" || strings.HasPrefix(b.Name, "gen:") {
		return b.Name
	}
	return fmt.Sprintf("%s:%d", b.Name, b.Iterations)
}

// ParsePattern parses a two-letter pattern code (ar, ao, rr, ro).
func ParsePattern(code string) (core.Pattern, error) {
	return core.PatternByCode(code)
}

// ParseMode parses a measurement mode: user, user+kernel (or uk),
// kernel (or os).
func ParseMode(s string) (core.MeasureMode, error) {
	switch s {
	case "user":
		return core.ModeUser, nil
	case "user+kernel", "uk":
		return core.ModeUserKernel, nil
	case "kernel", "os":
		return core.ModeKernel, nil
	}
	return 0, fmt.Errorf("api: unknown mode %q (want user, user+kernel, kernel)", s)
}

// validStack reports whether code names one of the six stacks.
func validStack(code string) bool {
	for _, c := range stack.Codes {
		if c == code {
			return true
		}
	}
	return false
}
