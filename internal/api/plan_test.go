package api

import (
	"errors"
	"strings"
	"testing"
)

func validPlan() PlanRequest {
	return PlanRequest{
		Measure: MeasureRequest{
			Processor: "K8", Stack: "pc", Bench: "loop:100000", Pattern: "rr",
			Events: []string{"INSTR_RETIRED", "CPU_CLK_UNHALTED", "BR_MISP_RETIRED",
				"ICACHE_MISS", "DCACHE_MISS"},
		},
		TargetRelWidth: 0.05,
		Counters:       2,
	}
}

func TestPlanNormalizedDefaults(t *testing.T) {
	norm, err := validPlan().Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Confidence != 0.95 || norm.PilotRuns != DefaultPilotRuns ||
		norm.MaxRuns != DefaultPlanMaxRuns || norm.MaxRefine != DefaultMaxRefine {
		t.Errorf("defaults not applied: %+v", norm)
	}
	if norm.Measure.Runs != 1 || norm.Measure.Calibrate {
		t.Errorf("planner-owned fields not canonicalized: %+v", norm.Measure)
	}
	if len(norm.Measure.Events) != 5 {
		t.Errorf("events = %v", norm.Measure.Events)
	}
	if norm.Mode() != PlanModeMultiplexed {
		t.Errorf("mode = %q, want multiplexed (5 events on 2 counters)", norm.Mode())
	}
}

func TestPlanNormalizedCountersDefault(t *testing.T) {
	r := validPlan()
	r.Counters = 0
	r.Measure.Events = []string{"INSTR_RETIRED", "CPU_CLK_UNHALTED"}
	norm, err := r.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	// K8 has 4 programmable counters; 2 events fit.
	if norm.Counters != 4 {
		t.Errorf("counters = %d, want the model's 4", norm.Counters)
	}
	if norm.Mode() != PlanModeDedicated {
		t.Errorf("mode = %q, want dedicated", norm.Mode())
	}
}

func TestPlanNormalizedNegativeRefineDisables(t *testing.T) {
	r := validPlan()
	r.MaxRefine = -3
	norm, err := r.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	// Canonical "no refinement" is -1 (0 is the unset spelling and
	// would re-normalize to the default, breaking idempotence).
	if norm.MaxRefine != -1 {
		t.Errorf("MaxRefine = %d, want -1", norm.MaxRefine)
	}
	again, err := norm.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if again.MaxRefine != -1 {
		t.Errorf("re-normalized MaxRefine = %d, want -1", again.MaxRefine)
	}
}

func TestPlanNormalizedRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*PlanRequest)
	}{
		{"missing target", func(r *PlanRequest) { r.TargetRelWidth = 0 }},
		{"target too tight", func(r *PlanRequest) { r.TargetRelWidth = 1e-6 }},
		{"target above one", func(r *PlanRequest) { r.TargetRelWidth = 1.5 }},
		{"bad confidence", func(r *PlanRequest) { r.Confidence = 0.2 }},
		{"bad processor", func(r *PlanRequest) { r.Measure.Processor = "Z80" }},
		{"counters above model", func(r *PlanRequest) { r.Counters = 9 }},
		{"negative counters", func(r *PlanRequest) { r.Counters = -1 }},
		{"pilot above bound", func(r *PlanRequest) { r.PilotRuns = MaxPilotRuns + 1 }},
		{"budget below pilot", func(r *PlanRequest) { r.PilotRuns = 8; r.MaxRuns = 4 }},
		{"budget above bound", func(r *PlanRequest) { r.MaxRuns = MaxPlanRuns + 1 }},
		{"refine above bound", func(r *PlanRequest) { r.MaxRefine = MaxRefineBound + 1 }},
		{"unknown event", func(r *PlanRequest) { r.Measure.Events = []string{"NOPE"} }},
		{"too many events", func(r *PlanRequest) {
			r.Measure.Events = make([]string, MaxMpxEvents+1)
			for i := range r.Measure.Events {
				r.Measure.Events[i] = "INSTR_RETIRED"
			}
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := validPlan()
			c.mutate(&r)
			if _, err := r.Normalized(); !errors.Is(err, ErrBadRequest) {
				t.Errorf("err = %v, want ErrBadRequest", err)
			}
		})
	}
}

func TestPlanKeyCanonical(t *testing.T) {
	a, err := validPlan().Normalized()
	if err != nil {
		t.Fatal(err)
	}
	// A request that spells the same plan differently (defaults left
	// implicit) must normalize to the same key.
	b := validPlan()
	b.Confidence = 0.95
	b.PilotRuns = DefaultPilotRuns
	bn, err := b.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() != bn.Key() {
		t.Errorf("equivalent plans keyed differently:\n%s\n%s", a.Key(), bn.Key())
	}
	// A different target is a different plan.
	c := validPlan()
	c.TargetRelWidth = 0.1
	cn, err := c.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() == cn.Key() {
		t.Errorf("distinct targets share a key: %s", a.Key())
	}
	if !strings.HasPrefix(a.Key(), "plan|") {
		t.Errorf("plan key not namespaced: %s", a.Key())
	}
}
