package api

import (
	"encoding/json"
	"sort"
	"strings"

	"repro/internal/telemetry"
)

// Cross-process trace propagation headers. pcfront sets HeaderTrace on
// the internal hop when the client opted into tracing; a backend seeing
// it echoes its span trace as compact JSON (a TraceInfo) in the
// HeaderTraceSpans response header. The header channel exists because
// the in-body trace block only rides success bodies: error responses
// and proxied bodies the front must not rewrite still need the span
// set to reach the stitcher.
const (
	// HeaderTrace marks a forwarded request as traced; its value is the
	// origin (pcfront instance) name.
	HeaderTrace = "X-Pc-Trace"
	// HeaderTraceSpans carries the responder's trace block as one line
	// of JSON. On a pcfront response it carries the stitched tree.
	HeaderTraceSpans = "X-Pc-Trace-Spans"
)

// SpanInfo is one finished span on the wire: a named stage of the
// request's execution with its offset from the request start and its
// duration, both in nanoseconds of monotonic time.
type SpanInfo struct {
	Name string `json:"name"`
	// StartNs is the span's start offset from the trace start.
	StartNs int64 `json:"startNs"`
	// DurationNs is the span's monotonic duration.
	DurationNs int64 `json:"durationNs"`
	// Annotations carries span notes (engine used, cache hit/miss,
	// worker shard, coalesce role) as ordered key/value pairs.
	Annotations map[string]string `json:"annotations,omitempty"`
}

// TraceInfo is the opt-in "trace" block echoed on /measure, /analyze,
// /plan, and /infer responses when the request set "trace": true. It
// rides outside the determinism contract: strip it and the remaining
// body is byte-identical to the untraced response.
type TraceInfo struct {
	// Coalesced marks the request a coalesce follower: it was served a
	// leader's response, so its spans record only its own wait, never a
	// replay of the leader's execution.
	Coalesced bool `json:"coalesced,omitempty"`
	// Origin names the process that assembled this block: empty for a
	// node answering directly, the pcfront instance name for a stitched
	// cluster trace.
	Origin string `json:"origin,omitempty"`
	// Spans lists finished spans in completion order.
	Spans []SpanInfo `json:"spans"`
	// Backend embeds the backend's echoed trace block verbatim when a
	// cluster front stitched this tree. Keeping the raw bytes — not a
	// re-decoded copy — is what makes the stitching invariant checkable:
	// stripping the front's own fields recovers the backend's trace
	// byte-for-byte.
	Backend json.RawMessage `json:"backend,omitempty"`
}

// TraceInfoFrom converts a telemetry trace to its wire form, or nil
// for a nil trace.
func TraceInfoFrom(t *telemetry.Trace) *TraceInfo {
	if t == nil {
		return nil
	}
	spans, coalesced := t.Snapshot()
	info := &TraceInfo{Coalesced: coalesced, Spans: make([]SpanInfo, len(spans))}
	for i, sd := range spans {
		si := SpanInfo{
			Name:       sd.Name,
			StartNs:    sd.Start.Nanoseconds(),
			DurationNs: sd.Duration.Nanoseconds(),
		}
		if len(sd.Annotations) > 0 {
			si.Annotations = make(map[string]string, len(sd.Annotations))
			for _, a := range sd.Annotations {
				si.Annotations[a.Key] = a.Value
			}
		}
		info.Spans[i] = si
	}
	return info
}

// Shape renders a trace's canonical structure: span names sorted and
// joined, with the backend subtree nested in angle brackets. Durations,
// offsets, and annotations are dropped, so two traces of the same
// request taken at different times (or against different nodes) compare
// equal exactly when they executed the same stages. This is the
// cross-request comparison pcload and CI use; byte-level identity is
// reserved for the one case it can hold — the stitched block embedding
// the backend's bytes verbatim.
func (t *TraceInfo) Shape() string {
	if t == nil {
		return ""
	}
	names := make([]string, len(t.Spans))
	for i, s := range t.Spans {
		names[i] = s.Name
	}
	sort.Strings(names)
	shape := "[" + strings.Join(names, " ") + "]"
	if len(t.Backend) > 0 {
		var sub TraceInfo
		if err := json.Unmarshal(t.Backend, &sub); err != nil {
			return shape + "<malformed>"
		}
		shape += "<" + sub.Shape() + ">"
	}
	return shape
}

// WantsTrace reports whether a raw request body addressed to path opts
// into tracing. Only the four trace-capable endpoints are probed; the
// decode looks at the one field and ignores the rest, so the front can
// answer this without understanding the body.
func WantsTrace(path string, body []byte) bool {
	switch path {
	case "/measure", "/analyze", "/plan", "/infer":
	default:
		return false
	}
	var probe struct {
		Trace bool `json:"trace"`
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		return false
	}
	return probe.Trace
}
