package api

import "repro/internal/telemetry"

// SpanInfo is one finished span on the wire: a named stage of the
// request's execution with its offset from the request start and its
// duration, both in nanoseconds of monotonic time.
type SpanInfo struct {
	Name string `json:"name"`
	// StartNs is the span's start offset from the trace start.
	StartNs int64 `json:"startNs"`
	// DurationNs is the span's monotonic duration.
	DurationNs int64 `json:"durationNs"`
	// Annotations carries span notes (engine used, cache hit/miss,
	// worker shard, coalesce role) as ordered key/value pairs.
	Annotations map[string]string `json:"annotations,omitempty"`
}

// TraceInfo is the opt-in "trace" block echoed on /measure, /analyze,
// /plan, and /infer responses when the request set "trace": true. It
// rides outside the determinism contract: strip it and the remaining
// body is byte-identical to the untraced response.
type TraceInfo struct {
	// Coalesced marks the request a coalesce follower: it was served a
	// leader's response, so its spans record only its own wait, never a
	// replay of the leader's execution.
	Coalesced bool `json:"coalesced,omitempty"`
	// Spans lists finished spans in completion order.
	Spans []SpanInfo `json:"spans"`
}

// TraceInfoFrom converts a telemetry trace to its wire form, or nil
// for a nil trace.
func TraceInfoFrom(t *telemetry.Trace) *TraceInfo {
	if t == nil {
		return nil
	}
	spans, coalesced := t.Snapshot()
	info := &TraceInfo{Coalesced: coalesced, Spans: make([]SpanInfo, len(spans))}
	for i, sd := range spans {
		si := SpanInfo{
			Name:       sd.Name,
			StartNs:    sd.Start.Nanoseconds(),
			DurationNs: sd.Duration.Nanoseconds(),
		}
		if len(sd.Annotations) > 0 {
			si.Annotations = make(map[string]string, len(sd.Annotations))
			for _, a := range sd.Annotations {
				si.Annotations[a.Key] = a.Value
			}
		}
		info.Spans[i] = si
	}
	return info
}
