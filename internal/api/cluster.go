// Cluster wire surface: the canonical routing key shared by the
// service's coalescing and pcfront's consistent hashing, the
// forwarded-hop metadata headers, and the cluster health shape.
//
// The whole cluster design rests on one fact: identical normalized
// requests produce byte-identical responses on any node, so routing is
// an efficiency decision (cache affinity, coalescing), never a
// correctness one. RequestKey is the single definition of "identical"
// — pcfront hashes exactly the key the service coalesces on, instead
// of re-deriving canonicalization in a second package.
package api

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Forwarded-request metadata. pcfront marks the internal hop with
// HeaderForwarded on the backend request, and reports its routing
// decision on the client response — headers, never the body, so the
// body stays byte-identical to a direct single-node answer.
const (
	// HeaderForwarded is set on requests pcfront forwards to a backend
	// (value: the pcfront instance name). Its presence lets a backend
	// distinguish cluster traffic from direct traffic, and a second
	// pcfront refuse to double-proxy.
	HeaderForwarded = "X-Pcfront-Forwarded"
	// HeaderBackend reports which backend served the response.
	HeaderBackend = "X-Pcfront-Backend"
	// HeaderAttempts reports how many backend attempts the request took
	// (1 = first try; retries and hedges count).
	HeaderAttempts = "X-Pcfront-Attempts"
	// HeaderHedged reports "true" when the winning response came from a
	// tail-latency hedge rather than the primary attempt.
	HeaderHedged = "X-Pcfront-Hedged"
	// HeaderRequestKey reports the canonical routing key pcfront hashed
	// (omitted when the request did not canonicalize).
	HeaderRequestKey = "X-Pcfront-Key"
)

// RequestKey returns the canonical identity of a request of any
// endpoint type: the exact string the service coalesces identical
// in-flight work on. pcfront hashes it to place the request on the
// fleet, so a request lands on the node already coalescing and
// caching its twin. Accepts values or pointers of the wire request
// types; a validation failure returns the request's error unchanged.
func RequestKey(req any) (string, error) {
	switch r := req.(type) {
	case MeasureRequest:
		n, err := r.Normalized()
		if err != nil {
			return "", err
		}
		return n.Key(), nil
	case *MeasureRequest:
		return RequestKey(*r)
	case AnalyzeRequest:
		n, err := r.Normalized()
		if err != nil {
			return "", err
		}
		keys := make([]string, len(n.Items))
		for i, it := range n.Items {
			keys[i] = it.Key()
		}
		return "analyze|" + strings.Join(keys, ";"), nil
	case *AnalyzeRequest:
		return RequestKey(*r)
	case PlanRequest:
		n, err := r.Normalized()
		if err != nil {
			return "", err
		}
		return n.Key(), nil
	case *PlanRequest:
		return RequestKey(*r)
	case InferRequest:
		n, err := r.Normalized()
		if err != nil {
			return "", err
		}
		keys := make([]string, len(n.Items))
		for i, it := range n.Items {
			keys[i] = it.Key()
		}
		return "inferreq|" + strings.Join(keys, ";"), nil
	case *InferRequest:
		return RequestKey(*r)
	case ExperimentRequest:
		// Experiments have no Key of their own (they are not coalesced);
		// the tuple below is their full identity.
		return fmt.Sprintf("exp|%s|r%d|s%d", r.ID, r.Runs, r.Seed), nil
	case *ExperimentRequest:
		return RequestKey(*r)
	case SessionRequest:
		n, err := r.Normalized()
		if err != nil {
			return "", err
		}
		return n.SessionKey(), nil
	case *SessionRequest:
		return RequestKey(*r)
	case CampaignRequest:
		n, err := r.Normalized()
		if err != nil {
			return "", err
		}
		return "campaign|" + n.Key(), nil
	case *CampaignRequest:
		return RequestKey(*r)
	}
	return "", fmt.Errorf("api: no canonical key for %T", req)
}

// RequestKeyForPath decodes a raw JSON request body addressed to one
// of the service's POST endpoints and returns its RequestKey. This is
// the form pcfront uses: it proxies bodies opaquely and only needs the
// canonical key to place them.
func RequestKeyForPath(path string, body []byte) (string, error) {
	key := func(req any) (string, error) {
		if err := json.Unmarshal(body, req); err != nil {
			return "", badf("api: decoding %s request: %v", path, err)
		}
		return RequestKey(req)
	}
	switch path {
	case "/measure":
		return key(&MeasureRequest{})
	case "/analyze":
		return key(&AnalyzeRequest{})
	case "/plan":
		return key(&PlanRequest{})
	case "/infer":
		return key(&InferRequest{})
	case "/experiment":
		return key(&ExperimentRequest{})
	case "/sessions":
		return key(&SessionRequest{})
	case "/campaigns":
		return key(&CampaignRequest{})
	}
	return "", fmt.Errorf("api: no keyed endpoint %q", path)
}

// Cluster node states reported by pcfront's /healthz.
const (
	// NodeHealthy marks a backend passing liveness probes and in the
	// hash ring.
	NodeHealthy = "healthy"
	// NodeUnhealthy marks a backend failing probes; it receives no new
	// requests until it recovers.
	NodeUnhealthy = "unhealthy"
	// NodeDraining marks a backend administratively removed from the
	// ring; in-flight work finishes, new work hashes elsewhere.
	NodeDraining = "draining"
)

// ClusterNode describes one backend's state as pcfront sees it.
type ClusterNode struct {
	// Name is the backend's short identity (host:port of its base URL).
	Name string `json:"name"`
	// URL is the backend's base URL.
	URL string `json:"url"`
	// State is NodeHealthy, NodeUnhealthy, or NodeDraining.
	State string `json:"state"`
	// Inflight is the number of proxied requests (streams included)
	// currently outstanding against the backend.
	Inflight int64 `json:"inflight"`
	// Requests, Errors, Hedges, and Retries count per-backend proxy
	// outcomes since pcfront start: attempts sent, attempts that failed
	// (transport error or 5xx), hedge attempts launched against the
	// backend, and retry attempts sent to it after another backend
	// failed.
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
	Hedges   uint64 `json:"hedges"`
	Retries  uint64 `json:"retries"`
}

// ClusterHealthResponse is pcfront's GET /healthz body: the proxy's
// own liveness plus the fleet as it sees it.
type ClusterHealthResponse struct {
	// Status is "ok" when every node is healthy, "degraded" when some
	// are not but at least one is, "unavailable" when none are.
	Status string `json:"status"`
	// Nodes lists every configured backend in configuration order.
	Nodes []ClusterNode `json:"nodes"`
	// Hedged and Retried count requests (not attempts) that engaged
	// hedging or retries since start; HedgeWins counts hedged requests
	// the hedge won.
	Hedged    uint64 `json:"hedged"`
	HedgeWins uint64 `json:"hedgeWins"`
	Retried   uint64 `json:"retried"`
	// Sessions and Campaigns count stream owners pcfront is tracking
	// (the pinned id -> node routes).
	Sessions  int `json:"sessions"`
	Campaigns int `json:"campaigns"`
}

// BackendStatus is one node's row in the fleet status document
// (pcfront's GET /cluster/healthz): the front's routing view of the
// node joined with the node's own /healthz report.
type BackendStatus struct {
	// Node is the front's view: ring/drain state and proxy counters.
	Node ClusterNode `json:"node"`
	// Reachable reports whether the node answered its /healthz scrape.
	Reachable bool `json:"reachable"`
	// Health is the node's own report, present when Reachable.
	Health *HealthResponse `json:"health,omitempty"`
	// Error describes the scrape failure when not Reachable.
	Error string `json:"error,omitempty"`
}

// ClusterStatusResponse is pcfront's GET /cluster/healthz body: the
// whole fleet as one document — the front's summary plus one row per
// backend.
type ClusterStatusResponse struct {
	Front    ClusterHealthResponse `json:"front"`
	Backends []BackendStatus       `json:"backends"`
}

// ClusterStatusFrom assembles the fleet document from the front's own
// health view and the per-node scrape results, keyed by node name. Like
// HealthFrom it is a pure snapshot-to-wire-shape function: rows come
// out in the front's configuration order, a node missing from health
// gets its scrape error (or "unreachable") instead of a report.
func ClusterStatusFrom(front ClusterHealthResponse, health map[string]*HealthResponse, errs map[string]string) ClusterStatusResponse {
	out := ClusterStatusResponse{
		Front:    front,
		Backends: make([]BackendStatus, len(front.Nodes)),
	}
	for i, n := range front.Nodes {
		row := BackendStatus{Node: n}
		if h, ok := health[n.Name]; ok {
			row.Reachable = true
			row.Health = h
		} else if msg, ok := errs[n.Name]; ok && msg != "" {
			row.Error = msg
		} else {
			row.Error = "unreachable"
		}
		out.Backends[i] = row
	}
	return out
}
