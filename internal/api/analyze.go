package api

import (
	"fmt"
	"strings"

	"repro/internal/accuracy"
	"repro/internal/cpu"
)

// Limits of the /analyze endpoint.
const (
	// MaxAnalyzeItems bounds the batch size of one analyze request.
	MaxAnalyzeItems = 64
	// MaxMpxEvents bounds the events a multiplexed item may estimate.
	// Multiplexing exists to exceed the hardware counter count, so the
	// cap is deliberately above every model's NumProgrammable.
	MaxMpxEvents = 16
	// MinSamplingPeriod and MaxSamplingPeriod bound the overflow period
	// of a sampling analysis; very short periods interrupt on nearly
	// every event and would let one item monopolize a worker.
	MinSamplingPeriod = 100
	MaxSamplingPeriod = 1_000_000_000
	// MinConfidence and MaxConfidence bound an item's requested
	// two-sided confidence level.
	MinConfidence = 0.5
	MaxConfidence = 0.999
)

// AnalyzeItem is one analysis in a batch: a measurement plus the error
// models to evaluate on it.
type AnalyzeItem struct {
	// Measure is the configuration to analyze. Its calibrate flag is
	// ignored: analysis always consults the calibration cache, because
	// overhead subtraction is one of the correction terms.
	Measure MeasureRequest `json:"measure"`
	// Confidence is the two-sided confidence level of every interval in
	// the result (0 means accuracy.DefaultConfidence, 0.95).
	Confidence float64 `json:"confidence,omitempty"`
	// MpxCounters, when positive, measures the events by multiplexing
	// them onto this many hardware counters instead of dedicated
	// counting; Events may then exceed the model's counter count (up to
	// MaxMpxEvents).
	MpxCounters int `json:"mpxCounters,omitempty"`
	// SamplingPeriod, when positive, additionally estimates the first
	// event's count with the sampling usage model at this overflow
	// period.
	SamplingPeriod int64 `json:"samplingPeriod,omitempty"`
	// Duet, when set, is the paired configuration B: the service
	// interleaves A and B run pairs on one pooled system and reports
	// the delta distribution of their counter-0 errors (only the first
	// event of each configuration is measured for the pairing). B must
	// live on the same shard (processor, stack, TSC) as Measure; its
	// runs and seed are forced to Measure's so pairs align one-to-one.
	Duet *MeasureRequest `json:"duet,omitempty"`
}

// AnalyzeRequest is the batch body of POST /analyze.
type AnalyzeRequest struct {
	Items []AnalyzeItem `json:"items"`
	// Trace asks for a span trace on the response. Stripped by
	// Normalized (the canonical batch is trace-free), so traced and
	// untraced items share coalescing keys.
	Trace bool `json:"trace,omitempty"`
}

// Normalized validates the item and makes every default explicit.
func (it AnalyzeItem) Normalized() (AnalyzeItem, error) {
	if it.Confidence == 0 {
		it.Confidence = accuracy.DefaultConfidence
	}
	if it.Confidence < MinConfidence || it.Confidence > MaxConfidence {
		return it, badf("api: confidence %v out of range %v-%v", it.Confidence, MinConfidence, MaxConfidence)
	}
	// Calibration is implied by analysis; canonicalize the flag away so
	// equivalent items coalesce.
	it.Measure.Calibrate = false

	if it.MpxCounters > 0 {
		// Multiplexed items may request more events than the model has
		// counters — that is the point of multiplexing — so the event
		// list is validated here against the looser MaxMpxEvents bound
		// and bypasses Normalized's per-counter check.
		model, err := cpu.ModelByTag(it.Measure.Processor)
		if err != nil {
			return it, badf("api: bad processor %q (want PD, CD, or K8)", it.Measure.Processor)
		}
		if it.MpxCounters > model.NumProgrammable {
			return it, badf("api: %d multiplex counters exceed the %d programmable counters of %s",
				it.MpxCounters, model.NumProgrammable, model.Tag)
		}
		events := it.Measure.Events
		if len(events) == 0 {
			events = []string{DefaultEvent}
		}
		if len(events) > MaxMpxEvents {
			return it, badf("api: %d events exceed the multiplex limit %d", len(events), MaxMpxEvents)
		}
		canonical := make([]string, len(events))
		for i, name := range events {
			ev, err := cpu.EventByName(name)
			if err != nil {
				return it, badf("api: %v", err)
			}
			if !cpu.SupportsEvent(model.Arch, ev) {
				return it, badf("api: event %s not supported on %s", ev, model.Arch)
			}
			canonical[i] = ev.String()
		}
		it.Measure.Events = []string{DefaultEvent}
		norm, err := it.Measure.Normalized()
		if err != nil {
			return it, err
		}
		norm.Events = canonical
		it.Measure = norm
	} else {
		norm, err := it.Measure.Normalized()
		if err != nil {
			return it, err
		}
		it.Measure = norm
	}
	if it.MpxCounters < 0 {
		return it, badf("api: multiplex counter count %d must not be negative", it.MpxCounters)
	}

	if it.SamplingPeriod != 0 &&
		(it.SamplingPeriod < MinSamplingPeriod || it.SamplingPeriod > MaxSamplingPeriod) {
		return it, badf("api: sampling period %d out of range %d-%d",
			it.SamplingPeriod, MinSamplingPeriod, MaxSamplingPeriod)
	}

	if it.Duet != nil {
		d := *it.Duet
		// Pairs must align one-to-one with the primary's runs.
		d.Runs = it.Measure.Runs
		d.Seed = it.Measure.Seed
		d.Calibrate = false
		norm, err := d.Normalized()
		if err != nil {
			return it, fmt.Errorf("%w (duet)", err)
		}
		if norm.ShardKey() != it.Measure.ShardKey() {
			return it, badf("api: duet pair must share a shard: %s vs %s",
				norm.ShardKey(), it.Measure.ShardKey())
		}
		it.Duet = &norm
	}
	return it, nil
}

// Key returns the canonical identity of a normalized item, used for
// coalescing identical in-flight analyses.
func (it AnalyzeItem) Key() string {
	duet := ""
	if it.Duet != nil {
		duet = it.Duet.Key()
	}
	return fmt.Sprintf("%s|conf%v|mpx%d|sp%d|duet[%s]",
		it.Measure.Key(), it.Confidence, it.MpxCounters, it.SamplingPeriod, duet)
}

// Normalized validates the batch and every item in it.
func (r AnalyzeRequest) Normalized() (AnalyzeRequest, error) {
	if len(r.Items) == 0 {
		return r, badf("api: analyze request has no items")
	}
	if len(r.Items) > MaxAnalyzeItems {
		return r, badf("api: %d items exceed the batch limit %d", len(r.Items), MaxAnalyzeItems)
	}
	items := make([]AnalyzeItem, len(r.Items))
	for i, it := range r.Items {
		norm, err := it.Normalized()
		if err != nil {
			return r, fmt.Errorf("item %d: %w", i, err)
		}
		items[i] = norm
	}
	return AnalyzeRequest{Items: items}, nil
}

// TermInfo is one named correction term on the wire.
type TermInfo struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// EstimateInfo is a corrected estimate with its confidence interval —
// the accuracy annotation attached to measurement responses and the
// unit of every /analyze result.
type EstimateInfo struct {
	// Event names the estimated event.
	Event string `json:"event,omitempty"`
	// Raw is the uncorrected point estimate.
	Raw float64 `json:"raw"`
	// Corrected is Raw with all correction terms applied; pure
	// uncertainty terms (mpx-extrapolation) shift nothing and only
	// widen the interval (see accuracy.Term).
	Corrected float64 `json:"corrected"`
	// Lo and Hi bound Corrected at Confidence.
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
	// Confidence is the interval's two-sided level.
	Confidence float64 `json:"confidence"`
	// StdErr is the standard error behind the interval.
	StdErr float64 `json:"stdErr"`
	// N is the observation count.
	N int `json:"n"`
	// Terms names the corrections applied.
	Terms []TermInfo `json:"terms,omitempty"`
}

// EstimateInfoFrom converts an accuracy.Estimate to its wire form.
func EstimateInfoFrom(event string, e accuracy.Estimate) EstimateInfo {
	info := EstimateInfo{
		Event:      event,
		Raw:        e.Raw,
		Corrected:  e.Corrected,
		Lo:         e.CI.Lo,
		Hi:         e.CI.Hi,
		Confidence: e.Confidence,
		StdErr:     e.StdErr,
		N:          e.N,
	}
	for _, t := range e.Terms {
		info.Terms = append(info.Terms, TermInfo{Name: t.Name, Value: t.Value})
	}
	return info
}

// DuetInfo reports a paired-measurement analysis on the wire.
type DuetInfo struct {
	// Request echoes the normalized paired configuration B.
	Request MeasureRequest `json:"request"`
	// Deltas is the per-pair counter-0 error difference A_i - B_i.
	Deltas []float64 `json:"deltas"`
	// Mean is the duet estimate of the error difference A - B.
	Mean float64 `json:"mean"`
	// Lo and Hi bound Mean at the item's confidence.
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
	// VarPaired and VarIndependent compare the paired delta variance
	// with Var(A)+Var(B), what two independent runs would have given.
	VarPaired      float64 `json:"varPaired"`
	VarIndependent float64 `json:"varIndependent"`
	// Cancellation is the fraction of independent-run variance the
	// pairing removed (1 - VarPaired/VarIndependent).
	Cancellation float64 `json:"cancellation"`
}

// AnalyzeResult is one item's analysis.
type AnalyzeResult struct {
	// Item echoes the normalized item served.
	Item AnalyzeItem `json:"item"`
	// Expected is the benchmark's analytical ground-truth count.
	Expected int64 `json:"expected"`
	// Counting is the counting-model estimate per event (absent for
	// multiplexed items, whose estimates are in Multiplexed).
	Counting []EstimateInfo `json:"counting,omitempty"`
	// Multiplexed is the time-interpolated estimate per event for items
	// with MpxCounters > 0.
	Multiplexed []EstimateInfo `json:"multiplexed,omitempty"`
	// Sampling is the sampling-model estimate of the first event for
	// items with SamplingPeriod > 0.
	Sampling *EstimateInfo `json:"sampling,omitempty"`
	// Calibration reports the cached overhead estimate the counting
	// corrections used.
	Calibration *CalibrationInfo `json:"calibration,omitempty"`
	// Duet reports the paired analysis for items with Duet set.
	Duet *DuetInfo `json:"duet,omitempty"`
}

// AnalyzeResponse is the batch response of POST /analyze, with Results
// in item order.
type AnalyzeResponse struct {
	Results []AnalyzeResult `json:"results"`
	// Trace is the opt-in span trace of the whole batch (request field
	// "trace": true); item spans carry an "item" annotation. Strip it
	// and the body is byte-identical to the untraced response.
	Trace *TraceInfo `json:"trace,omitempty"`
}

// String renders a compact one-line view of an estimate, used by CLI
// reports and docs examples.
func (e EstimateInfo) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %.1f", e.Event, e.Corrected)
	fmt.Fprintf(&b, " [%.1f, %.1f]@%g", e.Lo, e.Hi, e.Confidence)
	for _, t := range e.Terms {
		fmt.Fprintf(&b, " %s=%.1f", t.Name, t.Value)
	}
	return b.String()
}
