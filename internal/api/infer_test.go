package api

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/accuracy"
	"repro/internal/bayes"
)

func rawInput(event string, mean, variance float64) InferInput {
	return InferInput{Event: event, Mean: mean, Variance: variance}
}

func TestInferItemNormalizedDefaults(t *testing.T) {
	it := InferItem{
		Inputs: []InferInput{
			{Measure: &MeasureRequest{Processor: "K8", Stack: "pc", Bench: "loop:1000"}},
			rawInput("CPU_CLK_UNHALTED", 5000, 2500),
		},
	}
	norm, err := it.Normalized()
	if err != nil {
		t.Fatalf("Normalized: %v", err)
	}
	if norm.Confidence != accuracy.DefaultConfidence {
		t.Errorf("confidence = %v, want default", norm.Confidence)
	}
	m := norm.Inputs[0].Measure
	if m == nil || !m.Calibrate {
		t.Error("measured input must force calibration on")
	}
	if m.Runs != DefaultInferRuns {
		t.Errorf("runs = %d, want %d", m.Runs, DefaultInferRuns)
	}
	if norm.Inputs[0].Event != "INSTR_RETIRED" {
		t.Errorf("event = %q, want the measurement's first event", norm.Inputs[0].Event)
	}
	if norm.Processor != "K8" {
		t.Errorf("processor = %q, want inherited K8", norm.Processor)
	}

	// Idempotent: normalizing the normalized form is the identity.
	again, err := norm.Normalized()
	if err != nil {
		t.Fatalf("re-Normalized: %v", err)
	}
	if again.Key() != norm.Key() {
		t.Errorf("normalization not idempotent:\n%s\n%s", norm.Key(), again.Key())
	}
}

func TestInferItemNormalizedErrors(t *testing.T) {
	cases := []struct {
		name string
		item InferItem
	}{
		{"no inputs", InferItem{}},
		{"raw without event", InferItem{Inputs: []InferInput{{Mean: 1, Variance: 1}}}},
		{"negative variance", InferItem{Inputs: []InferInput{rawInput("X", 1, -1)}}},
		{"nan mean", InferItem{Inputs: []InferInput{rawInput("X", math.NaN(), 1)}}},
		{"bad event name", InferItem{Inputs: []InferInput{rawInput("a|b", 1, 1)}}},
		// The review's key-forgery repro: an event name embedding the
		// key's own delimiters ({ } = ± ;) could collide with a
		// different item's canonical key and be served its coalesced
		// response. The allowlist must reject it.
		{"key-forging event name", InferItem{Inputs: []InferInput{rawInput("X=1±2};r{Y", 3, 4)}}},
		{"overlong event name", InferItem{Inputs: []InferInput{rawInput(strings.Repeat("A", 65), 1, 1)}}},
		{"duplicate events", InferItem{Inputs: []InferInput{rawInput("X", 1, 1), rawInput("X", 2, 1)}}},
		{"mixed forms", InferItem{Inputs: []InferInput{{
			Event: "X", Mean: 1, Variance: 1,
			Measure: &MeasureRequest{Processor: "K8", Stack: "pc"},
		}}}},
		{"one-run measurement", InferItem{Inputs: []InferInput{{
			Measure: &MeasureRequest{Processor: "K8", Stack: "pc", Runs: 1},
		}}}},
		{"bad processor", InferItem{
			Processor: "Z80",
			Inputs:    []InferInput{rawInput("X", 1, 1)},
		}},
		{"constraint on missing event", InferItem{
			Inputs: []InferInput{rawInput("X", 1, 1)},
			Constraints: []InferConstraint{{
				Terms: []bayes.Term{{Event: "Y", Coef: 1}}, Op: bayes.OpLe, RHS: 0,
			}},
		}},
		{"bad constraint op", InferItem{
			Inputs: []InferInput{rawInput("X", 1, 1)},
			Constraints: []InferConstraint{{
				Terms: []bayes.Term{{Event: "X", Coef: 1}}, Op: "<", RHS: 0,
			}},
		}},
		{"bad confidence", InferItem{
			Confidence: 0.1,
			Inputs:     []InferInput{rawInput("X", 1, 1)},
		}},
	}
	for _, tc := range cases {
		if _, err := tc.item.Normalized(); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: got %v, want ErrBadRequest", tc.name, err)
		}
	}
}

func TestInferItemKeyDistinguishes(t *testing.T) {
	base := InferItem{
		Processor: "K8",
		Inputs:    []InferInput{rawInput("INSTR_RETIRED", 1000, 100)},
	}
	norm := func(it InferItem) InferItem {
		t.Helper()
		n, err := it.Normalized()
		if err != nil {
			t.Fatalf("Normalized: %v", err)
		}
		return n
	}
	keys := map[string]string{}
	add := func(name string, it InferItem) {
		k := norm(it).Key()
		for prev, pk := range keys {
			if pk == k {
				t.Errorf("%s and %s share a key: %s", name, prev, k)
			}
		}
		keys[name] = k
	}
	add("base", base)
	v := base
	v.Inputs = []InferInput{rawInput("INSTR_RETIRED", 1001, 100)}
	add("different mean", v)
	v = base
	v.Inputs = []InferInput{rawInput("INSTR_RETIRED", 1000, 101)}
	add("different variance", v)
	v = base
	v.NoLibrary = true
	add("library off", v)
	v = base
	v.Confidence = 0.99
	add("different confidence", v)
	v = base
	v.Constraints = []InferConstraint{{
		Terms: []bayes.Term{{Event: "INSTR_RETIRED", Coef: 1}}, Op: bayes.OpLe, RHS: 1e9,
	}}
	add("extra constraint", v)
}

func TestInferConstraintCanonicalizedOnWire(t *testing.T) {
	it := InferItem{
		Inputs: []InferInput{rawInput("A", 1, 1), rawInput("B", 2, 1)},
		Constraints: []InferConstraint{{
			Terms: []bayes.Term{{Event: "B", Coef: -1}, {Event: "A", Coef: -1}},
			Op:    bayes.OpGe, RHS: -10,
		}},
	}
	norm, err := it.Normalized()
	if err != nil {
		t.Fatalf("Normalized: %v", err)
	}
	c := norm.Constraints[0]
	if c.Op != bayes.OpLe || c.RHS != 10 {
		t.Errorf(">= not canonicalized: %+v", c)
	}
	if c.Terms[0].Event != "A" || c.Terms[0].Coef != 1 {
		t.Errorf("terms not sorted/negated: %+v", c.Terms)
	}
}

func TestInferItemModel(t *testing.T) {
	it := InferItem{
		Processor: "K8",
		Inputs: []InferInput{
			rawInput("INSTR_RETIRED", 1000, 100),
			rawInput("CPU_CLK_UNHALTED", 600, 100),
			rawInput("CUSTOM_TOTAL", 1600, 400),
		},
		Constraints: []InferConstraint{{
			Name: "total",
			Terms: []bayes.Term{
				{Event: "CUSTOM_TOTAL", Coef: 1},
				{Event: "INSTR_RETIRED", Coef: -1},
				{Event: "CPU_CLK_UNHALTED", Coef: -1},
			},
			Op: bayes.OpEq, RHS: 0,
		}},
	}
	norm, err := it.Normalized()
	if err != nil {
		t.Fatalf("Normalized: %v", err)
	}
	m, err := norm.Model()
	if err != nil {
		t.Fatalf("Model: %v", err)
	}
	// The library restricted to the two ISA events (superscalar-width +
	// two nonneg) plus the explicit constraint.
	if len(m.Constraints) != 4 {
		t.Errorf("model has %d constraints, want 4: %v", len(m.Constraints), m.Constraints)
	}
	norm.NoLibrary = true
	m2, err := norm.Model()
	if err != nil {
		t.Fatalf("Model (no library): %v", err)
	}
	if len(m2.Constraints) != 1 {
		t.Errorf("NoLibrary model has %d constraints, want 1", len(m2.Constraints))
	}
}

func TestInferRequestNormalized(t *testing.T) {
	if _, err := (InferRequest{}).Normalized(); !errors.Is(err, ErrBadRequest) {
		t.Errorf("empty batch: got %v, want ErrBadRequest", err)
	}
	items := make([]InferItem, MaxInferItems+1)
	for i := range items {
		items[i] = InferItem{Inputs: []InferInput{rawInput("X", 1, 1)}}
	}
	if _, err := (InferRequest{Items: items}).Normalized(); !errors.Is(err, ErrBadRequest) {
		t.Errorf("oversized batch: got %v, want ErrBadRequest", err)
	}
}
