package api

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestTraceInfoFrom(t *testing.T) {
	if TraceInfoFrom(nil) != nil {
		t.Fatal("nil trace did not convert to nil")
	}
	tr := telemetry.New()
	tr.Start(telemetry.SpanEngineRun).Annotate("engine", "compiled").End()
	tr.Add(telemetry.SpanEncode, time.Microsecond)
	info := TraceInfoFrom(tr)
	if len(info.Spans) != 2 || info.Spans[0].Name != telemetry.SpanEngineRun {
		t.Fatalf("spans: %+v", info.Spans)
	}
	if info.Spans[0].Annotations["engine"] != "compiled" {
		t.Fatalf("annotations: %+v", info.Spans[0].Annotations)
	}
}

func TestTraceShape(t *testing.T) {
	var nilInfo *TraceInfo
	if nilInfo.Shape() != "" {
		t.Fatalf("nil shape %q", nilInfo.Shape())
	}
	a := &TraceInfo{Spans: []SpanInfo{{Name: "encode"}, {Name: "parse"}, {Name: "engine-run"}}}
	b := &TraceInfo{Spans: []SpanInfo{
		{Name: "parse", StartNs: 5, DurationNs: 9},
		{Name: "engine-run", DurationNs: 100},
		{Name: "encode"},
	}}
	// Same stage set, different order/durations: equal shapes.
	if a.Shape() != b.Shape() {
		t.Fatalf("shapes differ: %q vs %q", a.Shape(), b.Shape())
	}
	if a.Shape() != "[encode engine-run parse]" {
		t.Fatalf("shape %q", a.Shape())
	}
	// Different stage multiset: different shapes.
	c := &TraceInfo{Spans: []SpanInfo{{Name: "parse"}, {Name: "parse"}, {Name: "encode"}}}
	if a.Shape() == c.Shape() {
		t.Fatalf("multiset not distinguished: %q", c.Shape())
	}
}

func TestTraceShapeNestsBackend(t *testing.T) {
	backend := &TraceInfo{Spans: []SpanInfo{{Name: "parse"}, {Name: "engine-run"}}}
	raw, err := json.Marshal(backend)
	if err != nil {
		t.Fatal(err)
	}
	front := &TraceInfo{
		Origin:  "front-1",
		Spans:   []SpanInfo{{Name: "route"}, {Name: "forward"}},
		Backend: raw,
	}
	want := "[forward route]<[engine-run parse]>"
	if got := front.Shape(); got != want {
		t.Fatalf("stitched shape %q, want %q", got, want)
	}
	bad := &TraceInfo{Spans: []SpanInfo{{Name: "route"}}, Backend: json.RawMessage("{")}
	if got := bad.Shape(); got != "[route]<malformed>" {
		t.Fatalf("malformed backend shape %q", got)
	}
}

func TestStitchedTracePreservesBackendBytes(t *testing.T) {
	// The stitched block must carry the backend's trace verbatim: decode
	// the stitched JSON and the Backend field is byte-identical to what
	// the backend emitted.
	backendJSON := []byte(`{"coalesced":true,"spans":[{"name":"parse","startNs":1,"durationNs":2}]}`)
	front := &TraceInfo{
		Origin:  "front-1",
		Spans:   []SpanInfo{{Name: "route"}},
		Backend: json.RawMessage(backendJSON),
	}
	wire, err := json.Marshal(front)
	if err != nil {
		t.Fatal(err)
	}
	var back TraceInfo
	if err := json.Unmarshal(wire, &back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Backend, backendJSON) {
		t.Fatalf("backend bytes changed:\n got %s\nwant %s", back.Backend, backendJSON)
	}
	if back.Origin != "front-1" {
		t.Fatalf("origin %q", back.Origin)
	}
}

func TestWantsTrace(t *testing.T) {
	for _, tc := range []struct {
		path string
		body string
		want bool
	}{
		{"/measure", `{"trace": true, "metric": "instructions"}`, true},
		{"/measure", `{"metric": "instructions"}`, false},
		{"/measure", `{"trace": false}`, false},
		{"/analyze", `{"trace": true}`, true},
		{"/plan", `{"trace": true}`, true},
		{"/infer", `{"trace": true}`, true},
		{"/sessions", `{"trace": true}`, false}, // not trace-capable
		{"/measure", `not json`, false},
		{"/measure", ``, false},
	} {
		if got := WantsTrace(tc.path, []byte(tc.body)); got != tc.want {
			t.Errorf("WantsTrace(%q, %q) = %v, want %v", tc.path, tc.body, got, tc.want)
		}
	}
}
