package api

import (
	"fmt"
	"strings"

	"repro/internal/accuracy"
	"repro/internal/campaign/gen"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/stack"
)

// Limits and defaults of the /campaigns endpoint.
const (
	// DefaultCampaignPrograms is the sweep size when the request leaves
	// it zero — small enough for an interactive round trip.
	DefaultCampaignPrograms = 16
	// MaxCampaignPrograms bounds one campaign's sweep so a single
	// request cannot monopolize the service for hours.
	MaxCampaignPrograms = 2000
	// DefaultInferEvery runs the inference cross-check on every 4th
	// program of the sweep.
	DefaultInferEvery = 4
	// DefaultPlanEvery runs the planner cross-check on every 16th
	// program of the sweep (plans are the most expensive check).
	DefaultPlanEvery = 16
	// DefaultEngineEvery re-measures every program on the reference
	// interpreter for the engine-divergence check.
	DefaultEngineEvery = 1
	// DefaultCampaignTargetRelWidth is the accuracy goal handed to the
	// planner cross-check when the request leaves it zero.
	DefaultCampaignTargetRelWidth = 0.25
)

// Campaign finding checks: which adversarial cross-check fired. Each
// finding names exactly one.
const (
	// CheckEngineDivergence: the compiled and interpreter engines
	// disagreed on a measurement that must be byte-identical.
	CheckEngineDivergence = "engine-divergence"
	// CheckInvariantRefuted: a processor-model invariant was violated by
	// the joint inference over measured events (standardized residual
	// beyond the violation threshold).
	CheckInvariantRefuted = "invariant-refuted"
	// CheckPosteriorWidened: constraint fusion widened an interval it
	// may only ever tighten.
	CheckPosteriorWidened = "posterior-widened"
	// CheckFusedWiderThanNaive: the planner's fused interval came out
	// wider than the naive per-group one it refines.
	CheckFusedWiderThanNaive = "fused-wider-than-naive"
	// CheckCIGrossMiss: a calibrated confidence interval missed the
	// analytic ground truth by a gross margin (individual intervals are
	// allowed to miss at the nominal rate; the aggregate rate is judged
	// by CheckCoverageRate).
	CheckCIGrossMiss = "ci-gross-miss"
	// CheckCoverageRate: across the whole sweep, confidence intervals
	// missed the analytic ground truth significantly more often than the
	// nominal rate allows.
	CheckCoverageRate = "coverage-rate"
)

// CampaignRequest asks the service to attack its own models: sweep
// randomized generated programs (each with an analytically known
// ground-truth event vector) through measurement, inference, and
// planning on every selected processor, and stream every check that
// fails as a finding. A campaign over a correctly specified system
// produces zero findings.
type CampaignRequest struct {
	// Seed individualizes the sweep: program i uses the derived seed
	// Mix(Seed, i). Zero means DefaultSeed.
	Seed uint64 `json:"seed,omitempty"`
	// Programs is how many programs the sweep generates (0 means
	// DefaultCampaignPrograms, capped at MaxCampaignPrograms).
	Programs int `json:"programs,omitempty"`
	// Processors selects the models under attack (default: all three,
	// canonicalized to the paper's PD, CD, K8 order).
	Processors []string `json:"processors,omitempty"`
	// Stack is the measurement stack every program runs on (default pc).
	Stack string `json:"stack,omitempty"`
	// Pattern is the start-read pattern (default DefaultPattern).
	Pattern string `json:"pattern,omitempty"`
	// Classes selects the generator classes drawn from, round-robin
	// (default: every class, in gen.Classes order).
	Classes []string `json:"classes,omitempty"`
	// Scale is the generator size knob (0 means gen.DefaultScale).
	Scale int `json:"scale,omitempty"`
	// Runs is the replication per measurement (0 means DefaultInferRuns;
	// at least 2, so intervals and inference have observable dispersion).
	Runs int `json:"runs,omitempty"`
	// InferEvery runs the inference cross-check on every n-th program
	// (0 means DefaultInferEvery; negative disables the check and
	// canonicalizes to -1).
	InferEvery int `json:"inferEvery,omitempty"`
	// PlanEvery runs the planner cross-check on every n-th program
	// (0 means DefaultPlanEvery; negative disables, canonicalized -1).
	PlanEvery int `json:"planEvery,omitempty"`
	// EngineEvery runs the engine-divergence check on every n-th program
	// (0 means DefaultEngineEvery; negative disables, canonicalized -1).
	EngineEvery int `json:"engineEvery,omitempty"`
	// TargetRelWidth is the accuracy goal of the planner cross-check
	// (0 means DefaultCampaignTargetRelWidth).
	TargetRelWidth float64 `json:"targetRelWidth,omitempty"`
	// Confidence is the level of every interval the campaign audits
	// (0 means accuracy.DefaultConfidence).
	Confidence float64 `json:"confidence,omitempty"`
}

// Normalized validates the request and makes every default explicit.
// The canonical form is the campaign's identity: requests meaning the
// same sweep normalize identically, and identical normalized requests
// produce byte-identical event streams.
func (r CampaignRequest) Normalized() (CampaignRequest, error) {
	if r.Seed == 0 {
		r.Seed = DefaultSeed
	}
	if r.Programs == 0 {
		r.Programs = DefaultCampaignPrograms
	}
	if r.Programs < 1 || r.Programs > MaxCampaignPrograms {
		return r, badf("api: campaign programs %d out of range 1-%d", r.Programs, MaxCampaignPrograms)
	}
	if len(r.Processors) == 0 {
		for _, m := range cpu.AllModels {
			r.Processors = append(r.Processors, m.Tag)
		}
	} else {
		seen := make(map[string]bool, len(r.Processors))
		for _, tag := range r.Processors {
			m, err := cpu.ModelByTag(tag)
			if err != nil {
				return r, badf("api: bad processor %q (want PD, CD, or K8)", tag)
			}
			if seen[m.Tag] {
				return r, badf("api: duplicate processor %q", m.Tag)
			}
			seen[m.Tag] = true
		}
		// Canonical order is the paper's model order, not request order:
		// the selection is a set, and two spellings of the same set must
		// share a key.
		var procs []string
		for _, m := range cpu.AllModels {
			if seen[m.Tag] {
				procs = append(procs, m.Tag)
			}
		}
		r.Processors = procs
	}
	if r.Stack == "" {
		r.Stack = "pc"
	}
	if !validStack(r.Stack) {
		return r, badf("api: bad stack %q (want one of %s)", r.Stack, strings.Join(stack.Codes, ", "))
	}
	if r.Pattern == "" {
		r.Pattern = DefaultPattern
	}
	if _, err := core.PatternByCode(r.Pattern); err != nil {
		return r, badf("api: bad pattern %q (want ar, ao, rr, ro)", r.Pattern)
	}
	if len(r.Classes) == 0 {
		for _, c := range gen.Classes {
			r.Classes = append(r.Classes, string(c))
		}
	} else {
		seen := make(map[gen.Class]bool, len(r.Classes))
		for _, name := range r.Classes {
			c, err := gen.ClassByName(name)
			if err != nil {
				return r, badf("api: %v", err)
			}
			if seen[c] {
				return r, badf("api: duplicate class %q", c)
			}
			seen[c] = true
		}
		var classes []string
		for _, c := range gen.Classes {
			if seen[c] {
				classes = append(classes, string(c))
			}
		}
		r.Classes = classes
	}
	if r.Scale == 0 {
		r.Scale = gen.DefaultScale
	}
	if r.Scale < 1 || r.Scale > gen.MaxScale {
		return r, badf("api: campaign scale %d out of range 1-%d", r.Scale, gen.MaxScale)
	}
	if r.Runs == 0 {
		r.Runs = DefaultInferRuns
	}
	if r.Runs < 2 || r.Runs > MaxRuns {
		return r, badf("api: campaign runs %d out of range 2-%d", r.Runs, MaxRuns)
	}
	var err error
	if r.InferEvery, err = canonEvery("inferEvery", r.InferEvery, DefaultInferEvery); err != nil {
		return r, err
	}
	if r.PlanEvery, err = canonEvery("planEvery", r.PlanEvery, DefaultPlanEvery); err != nil {
		return r, err
	}
	if r.EngineEvery, err = canonEvery("engineEvery", r.EngineEvery, DefaultEngineEvery); err != nil {
		return r, err
	}
	if r.TargetRelWidth == 0 {
		r.TargetRelWidth = DefaultCampaignTargetRelWidth
	}
	if r.TargetRelWidth < MinTargetRelWidth || r.TargetRelWidth > MaxTargetRelWidth {
		return r, badf("api: target relative width %v out of range %v-%v",
			r.TargetRelWidth, MinTargetRelWidth, MaxTargetRelWidth)
	}
	if r.Confidence == 0 {
		r.Confidence = accuracy.DefaultConfidence
	}
	if r.Confidence < MinConfidence || r.Confidence > MaxConfidence {
		return r, badf("api: confidence %v out of range %v-%v", r.Confidence, MinConfidence, MaxConfidence)
	}
	return r, nil
}

// canonEvery canonicalizes an every-n-th cadence knob: zero means the
// default, any negative value means "disabled" and canonicalizes to -1
// (zero is the unset spelling; keeping it would round-trip back to the
// default and break normalization idempotence).
func canonEvery(name string, v, def int) (int, error) {
	switch {
	case v == 0:
		return def, nil
	case v < 0:
		return -1, nil
	case v > MaxCampaignPrograms:
		return v, badf("api: %s %d exceeds the program cap %d", name, v, MaxCampaignPrograms)
	}
	return v, nil
}

// Key returns the canonical identity of a normalized campaign request.
// Equal keys mean byte-identical event streams.
func (r CampaignRequest) Key() string {
	return fmt.Sprintf("s%d|n%d|%s|%s|%s|%s|x%d|r%d|i%d|p%d|e%d|w%v|c%v",
		r.Seed, r.Programs, strings.Join(r.Processors, ","), r.Stack, r.Pattern,
		strings.Join(r.Classes, ","), r.Scale, r.Runs,
		r.InferEvery, r.PlanEvery, r.EngineEvery, r.TargetRelWidth, r.Confidence)
}

// CampaignCreated is the response of POST /campaigns: the assigned ID
// and the normalized configuration the sweep will run.
type CampaignCreated struct {
	ID     string          `json:"id"`
	Config CampaignRequest `json:"config"`
}

// Campaign stream event types, in the order a stream interleaves them:
// per-program findings precede the program's own event; the summary and
// the end event close the stream.
const (
	// CampaignEventFinding reports one failed cross-check.
	CampaignEventFinding = "finding"
	// CampaignEventProgram closes one program of the sweep: every
	// processor measured, every scheduled check run.
	CampaignEventProgram = "program"
	// CampaignEventSummary reports sweep totals before the end event.
	CampaignEventSummary = "summary"
	// CampaignEventEnd closes the stream; Reason carries the final
	// campaign state.
	CampaignEventEnd = "end"
)

// CampaignEvent is one NDJSON line of a campaign stream.
type CampaignEvent struct {
	Type    string           `json:"type"`
	Finding *CampaignFinding `json:"finding,omitempty"`
	Program *CampaignProgram `json:"program,omitempty"`
	Summary *CampaignSummary `json:"summary,omitempty"`
	// Reason and Error annotate the end event: the final state, and the
	// failure message when the campaign did not complete.
	Reason string `json:"reason,omitempty"`
	Error  string `json:"error,omitempty"`
}

// CampaignProgram summarizes one swept program after all its checks.
type CampaignProgram struct {
	// Index is the program's position in the sweep, 0-based.
	Index int `json:"index"`
	// Spec is the generator spec (gen:v1:class:seed:scale); the program
	// is fully reproducible from it.
	Spec string `json:"spec"`
	// Class is the generator class the program was drawn from.
	Class string `json:"class"`
	// ExpectedInstr is the analytic dynamic instruction count of the
	// program body (the Halt retires one more).
	ExpectedInstr int `json:"expectedInstr"`
	// Measurements is how many measurement requests the program cost
	// across processors and checks.
	Measurements int `json:"measurements"`
	// Checked and Covered are the program's coverage-audit tallies:
	// calibrated confidence intervals checked against the analytic
	// ground truth, and how many contained it.
	Checked int `json:"checked"`
	Covered int `json:"covered"`
	// Findings is how many findings the program produced (at most
	// the per-program cap; the rest are counted but not streamed).
	Findings int `json:"findings"`
}

// CampaignFinding is one failed cross-check: the campaign caught the
// system's models contradicting themselves or the analytic truth.
type CampaignFinding struct {
	// Program and Spec locate the offending program in the sweep.
	Program int    `json:"program"`
	Spec    string `json:"spec"`
	// Processor is the model under attack when the check fired (empty
	// for sweep-wide findings such as the coverage rate).
	Processor string `json:"processor,omitempty"`
	// Check names the cross-check that fired (the Check* constants).
	Check string `json:"check"`
	// Constraint spells the violated invariant, for invariant findings.
	Constraint string `json:"constraint,omitempty"`
	// Sigma is the standardized magnitude of the violation where the
	// check has one (residual sigmas, gross-miss distance).
	Sigma float64 `json:"sigma,omitempty"`
	// Detail is the human-readable account of what disagreed with what.
	Detail string `json:"detail"`
}

// CoverageInfo is the sweep-wide coverage audit: how often calibrated
// confidence intervals contained the analytic ground truth, against the
// nominal rate they advertise.
type CoverageInfo struct {
	// N is how many intervals were audited; Misses is how many did not
	// contain the ground truth.
	N      int `json:"n"`
	Misses int `json:"misses"`
	// Rate is the observed miss rate Misses/N (0 when N is 0).
	Rate float64 `json:"rate"`
	// Nominal is the advertised miss rate, 1 - Confidence.
	Nominal float64 `json:"nominal"`
	// Bound is the largest observed rate compatible with the nominal
	// one at the audit's binomial slack; Rate above Bound is a finding.
	Bound float64 `json:"bound"`
}

// CampaignSummary reports the totals of a completed sweep.
type CampaignSummary struct {
	// Programs is how many programs were swept.
	Programs int `json:"programs"`
	// Measurements is the total measurement requests issued.
	Measurements int `json:"measurements"`
	// Findings is the total findings (including any over the streaming
	// cap).
	Findings int `json:"findings"`
	// Coverage is the sweep-wide interval audit.
	Coverage CoverageInfo `json:"coverage"`
}

// CampaignSnapshot is the GET view of a campaign: configuration, state,
// progress, and the retained findings.
type CampaignSnapshot struct {
	ID     string          `json:"id"`
	Config CampaignRequest `json:"config"`
	// State is the campaign's lifecycle state; campaigns share the
	// session-state vocabulary (running, done, failed, deleted, evicted,
	// drained).
	State string `json:"state"`
	// Programs is how many programs have completed so far.
	Programs int `json:"programs"`
	// Measurements and Findings are running totals.
	Measurements int `json:"measurements"`
	// Findings holds the findings so far, capped at MaxSnapshotFindings;
	// FindingsTotal is the uncapped count.
	Findings      []CampaignFinding `json:"findings,omitempty"`
	FindingsTotal int               `json:"findingsTotal"`
	// Coverage is the audit over the programs completed so far.
	Coverage CoverageInfo `json:"coverage"`
}

// MaxSnapshotFindings bounds the findings a snapshot carries; the
// stream has every finding up to the per-program cap.
const MaxSnapshotFindings = 64
