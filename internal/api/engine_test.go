package api

import (
	"strings"
	"testing"
)

// TestEngineNormalization covers the selector's canonicalization: the
// compiled default normalizes away so request keys (and caches) are
// shared with engine-less requests.
func TestEngineNormalization(t *testing.T) {
	base := MeasureRequest{Processor: "K8", Stack: "pc", Bench: "null"}

	for _, tc := range []struct {
		in, want string
	}{
		{"", ""},
		{EngineCompiled, ""},
		{EngineInterpreter, EngineInterpreter},
	} {
		req := base
		req.Engine = tc.in
		norm, err := req.Normalized()
		if err != nil {
			t.Fatalf("engine %q: %v", tc.in, err)
		}
		if norm.Engine != tc.want {
			t.Errorf("engine %q normalized to %q, want %q", tc.in, norm.Engine, tc.want)
		}
	}

	req := base
	req.Engine = "jit"
	if _, err := req.Normalized(); err == nil {
		t.Error("bad engine accepted")
	}
}

// TestEngineKey checks that only the non-default engine appears in the
// canonical key, so compiled-pinned and engine-less requests coalesce.
func TestEngineKey(t *testing.T) {
	base := MeasureRequest{Processor: "K8", Stack: "pc", Bench: "null"}
	plain, err := base.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	compiled := base
	compiled.Engine = EngineCompiled
	normC, err := compiled.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if plain.Key() != normC.Key() {
		t.Errorf("compiled key %q differs from default key %q", normC.Key(), plain.Key())
	}
	if strings.Contains(plain.Key(), "|e=") {
		t.Errorf("default key %q names an engine", plain.Key())
	}

	interp := base
	interp.Engine = EngineInterpreter
	normI, err := interp.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(normI.Key(), "|e=interpreter") {
		t.Errorf("interpreter key %q lacks the engine suffix", normI.Key())
	}
	if normI.Key() == plain.Key() {
		t.Error("interpreter-pinned request coalesces with the default")
	}
}
