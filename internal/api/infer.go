package api

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/accuracy"
	"repro/internal/bayes"
	"repro/internal/cpu"
	"repro/internal/stats"
)

// Limits and defaults of the /infer endpoint.
const (
	// MaxInferItems bounds the batch size of one infer request.
	MaxInferItems = 64
	// MaxInferInputs bounds the events one item may infer over.
	MaxInferInputs = 16
	// MaxInferConstraints bounds the explicit constraints of one item
	// (the built-in library rides on top, already bounded by the event
	// vocabulary).
	MaxInferConstraints = 64
	// DefaultInferRuns is the replication of a measured infer input when
	// the request leaves it zero: inference needs an observed dispersion,
	// so the single-run default of /measure would be degenerate.
	DefaultInferRuns = 8
)

// InferTerm is one addend of a constraint: Coef times the event's
// count. It is the wire spelling of bayes.Term.
type InferTerm = bayes.Term

// InferConstraint is one linear invariant over named events. It is the
// wire spelling of bayes.Constraint: ops are "=", "<=", ">=" (">=" is
// canonicalized to "<=" by negation).
type InferConstraint = bayes.Constraint

// InferInput is one event's evidence: either a raw Gaussian estimate
// (Event, Mean, Variance — produced by any upstream error model), or a
// measurement the service performs (Measure — the estimate is then the
// calibrated accuracy annotation of the response). Exactly one of the
// two forms per input.
type InferInput struct {
	// Event names the estimated event. Required for raw inputs; for
	// measured inputs it defaults to the measurement's first event and
	// must match it when set.
	Event string `json:"event,omitempty"`
	// Mean and Variance carry a raw input's Gaussian. Variance zero
	// marks an exact observation, which the solver holds fixed.
	Mean     float64 `json:"mean,omitempty"`
	Variance float64 `json:"variance,omitempty"`
	// Measure, when set, asks the service to produce the estimate: the
	// request is normalized with Runs defaulted to DefaultInferRuns and
	// calibration forced on when counter 0 counts retired instructions
	// (the event the null calibration estimates overhead for) and off
	// otherwise, and the input becomes the response's accuracy
	// annotation — mean Corrected, variance StdErr².
	Measure *MeasureRequest `json:"measure,omitempty"`
}

// InferItem is one joint inference in a batch: a set of per-event
// inputs plus the invariants tying them together.
type InferItem struct {
	// Inputs is the evidence, one entry per distinct event.
	Inputs []InferInput `json:"inputs"`
	// Constraints are explicit invariants over the input events.
	Constraints []InferConstraint `json:"constraints,omitempty"`
	// Processor selects the built-in invariant library (PD, CD, K8) —
	// the library's width bound depends on the model. Defaults to the
	// first measured input's processor; when empty (all-raw item with no
	// processor named) no library is applied.
	Processor string `json:"processor,omitempty"`
	// NoLibrary disables the built-in invariant library even when a
	// processor is known, leaving only the explicit constraints.
	NoLibrary bool `json:"noLibrary,omitempty"`
	// Confidence is the two-sided level of every reported interval
	// (0 means accuracy.DefaultConfidence).
	Confidence float64 `json:"confidence,omitempty"`
}

// InferRequest is the batch body of POST /infer.
type InferRequest struct {
	Items []InferItem `json:"items"`
	// Trace asks for a span trace on the response. Stripped by
	// Normalized (the canonical batch is trace-free), so traced and
	// untraced items share coalescing keys.
	Trace bool `json:"trace,omitempty"`
}

// Normalized validates the input and makes every default explicit.
func (in InferInput) Normalized() (InferInput, error) {
	if in.Measure == nil {
		if in.Event == "" {
			return in, badf("api: raw infer input needs an event name")
		}
		if err := validInferEvent(in.Event); err != nil {
			return in, err
		}
		if math.IsNaN(in.Mean) || math.IsInf(in.Mean, 0) {
			return in, badf("api: non-finite mean %v for %s", in.Mean, in.Event)
		}
		if math.IsNaN(in.Variance) || math.IsInf(in.Variance, 0) || in.Variance < 0 {
			return in, badf("api: bad variance %v for %s (want finite, non-negative)", in.Variance, in.Event)
		}
		return in, nil
	}
	if in.Mean != 0 || in.Variance != 0 {
		return in, badf("api: infer input mixes a raw estimate with a measurement")
	}
	m := *in.Measure
	// A single run has no observable dispersion, so default the
	// replication up before the standard normalization.
	if m.Runs == 0 {
		m.Runs = DefaultInferRuns
	}
	if m.Runs < 2 {
		return in, badf("api: measured infer input needs at least 2 runs (got %d)", m.Runs)
	}
	norm, err := m.Normalized()
	if err != nil {
		return in, err
	}
	// Inference consumes the response's accuracy annotation, which is
	// overhead-corrected only when calibrated. The null-benchmark
	// calibration estimates the *instruction count* the harness adds,
	// so it applies exactly when counter 0 counts retired instructions
	// — forced on there, forced off elsewhere (subtracting an
	// instruction overhead from, say, a branch-miss count would push
	// small counts negative). Canonicalizing the flag keeps equivalent
	// inputs coalescing.
	norm.Calibrate = norm.Events[0] == DefaultEvent
	if in.Event != "" && in.Event != norm.Events[0] {
		return in, badf("api: infer input event %q does not match the measurement's first event %s",
			in.Event, norm.Events[0])
	}
	in.Event = norm.Events[0]
	in.Measure = &norm
	return in, nil
}

// validInferEvent rejects event names that could collide with the
// canonical key syntax. Raw inputs may name events outside the ISA
// vocabulary (upstream estimates of anything), so this is a syntactic
// allowlist, not a registry lookup — and it must be an allowlist:
// the item Key embeds event names between delimiter characters, so a
// name free to contain those delimiters could forge another item's
// key and be served that item's coalesced response.
func validInferEvent(name string) error {
	if len(name) > 64 {
		return badf("api: event name %q too long (max 64)", name)
	}
	for _, r := range name {
		switch {
		case r >= 'A' && r <= 'Z', r >= 'a' && r <= 'z', r >= '0' && r <= '9',
			r == '_', r == '.', r == '-':
		default:
			return badf("api: bad event name %q (want letters, digits, _ . -)", name)
		}
	}
	return nil
}

// Normalized validates the item and makes every default explicit: raw
// inputs checked, measured inputs normalized with calibration forced,
// the processor inherited from the first measurement, and every
// constraint rewritten to canonical form (terms merged and sorted,
// ">=" flipped to "<="). The canonical form's Key is the coalescing
// identity of the item.
func (it InferItem) Normalized() (InferItem, error) {
	if it.Confidence == 0 {
		it.Confidence = accuracy.DefaultConfidence
	}
	if it.Confidence < MinConfidence || it.Confidence > MaxConfidence {
		return it, badf("api: confidence %v out of range %v-%v", it.Confidence, MinConfidence, MaxConfidence)
	}
	if len(it.Inputs) == 0 {
		return it, badf("api: infer item has no inputs")
	}
	if len(it.Inputs) > MaxInferInputs {
		return it, badf("api: %d inputs exceed the limit %d", len(it.Inputs), MaxInferInputs)
	}
	inputs := make([]InferInput, len(it.Inputs))
	seen := make(map[string]bool, len(it.Inputs))
	for i, in := range it.Inputs {
		norm, err := in.Normalized()
		if err != nil {
			return it, fmt.Errorf("input %d: %w", i, err)
		}
		if seen[norm.Event] {
			return it, badf("api: duplicate infer input for event %s", norm.Event)
		}
		seen[norm.Event] = true
		inputs[i] = norm
	}
	it.Inputs = inputs

	if it.Processor == "" {
		for _, in := range it.Inputs {
			if in.Measure != nil {
				it.Processor = in.Measure.Processor
				break
			}
		}
	}
	if it.Processor != "" {
		if _, err := cpu.ModelByTag(it.Processor); err != nil {
			return it, badf("api: bad processor %q (want PD, CD, or K8)", it.Processor)
		}
	}
	if it.NoLibrary && it.Processor == "" {
		it.NoLibrary = false // no processor means no library: canonicalize the no-op away
	}

	if len(it.Constraints) > MaxInferConstraints {
		return it, badf("api: %d constraints exceed the limit %d", len(it.Constraints), MaxInferConstraints)
	}
	if len(it.Constraints) > 0 {
		canon := make([]InferConstraint, len(it.Constraints))
		for i, c := range it.Constraints {
			cc, err := c.Canonical()
			if err != nil {
				return it, badf("api: constraint %d: %v", i, err)
			}
			for _, term := range cc.Terms {
				if !seen[term.Event] {
					return it, badf("api: constraint %d references event %s with no input", i, term.Event)
				}
			}
			canon[i] = cc
		}
		it.Constraints = canon
	}
	return it, nil
}

// Key returns the canonical identity of a normalized item, used for
// coalescing identical in-flight inferences.
func (it InferItem) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "infer|%s|conf%v|nolib%v|in[", it.Processor, it.Confidence, it.NoLibrary)
	for i, in := range it.Inputs {
		if i > 0 {
			b.WriteString(";")
		}
		if in.Measure != nil {
			fmt.Fprintf(&b, "m{%s}", in.Measure.Key())
		} else {
			fmt.Fprintf(&b, "r{%s=%v±%v}", in.Event, in.Mean, in.Variance)
		}
	}
	b.WriteString("]|c[")
	for i, c := range it.Constraints {
		if i > 0 {
			b.WriteString(";")
		}
		// Name and linear form both matter: the name is echoed in the
		// response, the form is the math. The name is user-controlled
		// free text, so it is length-prefixed — an unframed name could
		// embed the key's own delimiters and forge another item's key.
		fmt.Fprintf(&b, "%d:%s:", len(c.Name), c.Name)
		for _, term := range c.Terms {
			fmt.Fprintf(&b, "%+g*%s", term.Coef, term.Event)
		}
		fmt.Fprintf(&b, "%s%g", c.Op, c.RHS)
	}
	b.WriteString("]")
	return b.String()
}

// Model assembles the item's full constraint model: the built-in
// library (unless disabled) restricted to the input events, plus the
// explicit constraints.
func (it InferItem) Model() (bayes.Model, error) {
	events := make([]string, len(it.Inputs))
	for i, in := range it.Inputs {
		events[i] = in.Event
	}
	var m bayes.Model
	if it.Processor != "" && !it.NoLibrary {
		model, err := cpu.ModelByTag(it.Processor)
		if err != nil {
			return m, badf("api: bad processor %q", it.Processor)
		}
		m = bayes.Library(model).Restrict(events)
	}
	m.Constraints = append(m.Constraints, it.Constraints...)
	return m, nil
}

// Normalized validates the batch and every item in it.
func (r InferRequest) Normalized() (InferRequest, error) {
	if len(r.Items) == 0 {
		return r, badf("api: infer request has no items")
	}
	if len(r.Items) > MaxInferItems {
		return r, badf("api: %d items exceed the batch limit %d", len(r.Items), MaxInferItems)
	}
	items := make([]InferItem, len(r.Items))
	for i, it := range r.Items {
		norm, err := it.Normalized()
		if err != nil {
			return r, fmt.Errorf("item %d: %w", i, err)
		}
		items[i] = norm
	}
	return InferRequest{Items: items}, nil
}

// EstimateInfoFromMoments assembles the wire estimate from first and
// second moments at a confidence level: the shared shape of every
// posterior estimate the inference layer emits (/infer results and
// /plan posterior fusion). When the mean moved off raw, the shift is
// recorded as a constraint-fusion term, like every other correction
// (Corrected = Raw - term value).
func EstimateInfoFromMoments(event string, raw, mean, variance, confidence float64, n int) EstimateInfo {
	z := stats.NormalQuantile(0.5 + confidence/2)
	se := math.Sqrt(variance)
	info := EstimateInfo{
		Event:      event,
		Raw:        raw,
		Corrected:  mean,
		Lo:         mean - z*se,
		Hi:         mean + z*se,
		Confidence: confidence,
		StdErr:     se,
		N:          n,
	}
	if raw != mean {
		info.Terms = []TermInfo{{Name: accuracy.TermConstraintFusion, Value: raw - mean}}
	}
	return info
}

// ResidualInfo is one constraint's consistency verdict on the wire:
// how far the inputs are from satisfying the invariant, in raw units
// and in standard errors of the constraint function — the
// event-validation report attached to every inference.
type ResidualInfo struct {
	// Constraint names the invariant (canonical form).
	Constraint string `json:"constraint"`
	// Value is lhs - rhs at the input means.
	Value float64 `json:"value"`
	// Sigma standardizes Value by the constraint's prior standard error.
	Sigma float64 `json:"sigma"`
	// Violated flags inputs breaking the invariant beyond
	// bayes.ViolationSigma standard errors.
	Violated bool `json:"violated"`
}

// InferResult is one item's joint posterior.
type InferResult struct {
	// Item echoes the normalized item served.
	Item InferItem `json:"item"`
	// Events lists the inferred events in input order; Prior and
	// Posterior align with it.
	Events []string `json:"events"`
	// Prior is the per-event input estimate (measured inputs carry the
	// response's accuracy annotation).
	Prior []EstimateInfo `json:"prior"`
	// Posterior is the constraint-conditioned estimate. Its interval is
	// never wider than Prior's — constraints add information, never
	// noise.
	Posterior []EstimateInfo `json:"posterior"`
	// Residuals reports every constraint's consistency at the inputs.
	Residuals []ResidualInfo `json:"residuals,omitempty"`
	// Active names the constraints that contributed conditioning (all
	// equalities plus the inequalities the projection landed on).
	Active []string `json:"active,omitempty"`
	// Consistent reports that no residual was flagged violated.
	Consistent bool `json:"consistent"`
	// Tightening is the mean per-event interval reduction,
	// 1 - posterior/prior half-width (events with degenerate prior
	// intervals excluded).
	Tightening float64 `json:"tightening"`
}

// InferResponse is the batch response of POST /infer, with Results in
// item order.
type InferResponse struct {
	Results []InferResult `json:"results"`
	// Trace is the opt-in span trace of the whole batch (request field
	// "trace": true); item spans carry an "item" annotation. Strip it
	// and the body is byte-identical to the untraced response.
	Trace *TraceInfo `json:"trace,omitempty"`
}
