package engine

import (
	"container/list"
	"sync"

	"repro/internal/isa"
)

// DefaultCacheCapacity is the compile-cache capacity used by the
// default engine. The service's whole shard matrix compiles a few dozen
// distinct programs (harnesses, kernel handlers, benchmark bodies), so
// this comfortably holds a steady state while still bounding memory.
const DefaultCacheCapacity = 256

// CacheStats is a point-in-time snapshot of compile-cache counters,
// reported next to the calibration-cache stats in /healthz.
type CacheStats struct {
	// Size and Capacity describe current occupancy.
	Size, Capacity int
	// Hits, Misses, and Evictions count lookups served from cache,
	// lookups that compiled, and entries displaced by capacity.
	Hits, Misses, Evictions int64
}

// cacheKey identifies a compiled program: content hash plus processor
// model tag. Lowering itself is model-independent today (costs are
// resolved at application time), but the key keeps the door open for
// model-specialized lowering without invalidating cached byte-identity.
type cacheKey struct {
	hash  uint64
	model string
}

// cacheEntry pairs a compiled program with the source it was compiled
// from, so hash collisions are detected by full code comparison instead
// of silently executing the wrong summary. ptrs lists the identity
// aliases registered in the cache's pointer index for this entry.
type cacheEntry struct {
	key      cacheKey
	src      *isa.Program
	compiled *program
	ptrs     []ptrKey
}

// ptrKey is the pointer-identity fast-path key: long-lived programs
// (the kernel tick handler, registered syscall handlers) keep a stable
// pointer across runs, so repeat lookups skip hashing entirely.
type ptrKey struct {
	p     *isa.Program
	model string
}

// maxPtrAliases bounds how many distinct pointers one entry may index.
// Programs rebuilt per request produce a fresh pointer each time with
// identical content; without a bound their aliases would accumulate
// forever. Churning programs past the bound simply pay the hash.
const maxPtrAliases = 4

// Cache is a bounded LRU cache of compiled programs, safe for
// concurrent use by all shards of a service.
type Cache struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	entries   map[cacheKey]*list.Element
	byPtr     map[ptrKey]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

// NewCache returns a cache bounded to capacity entries (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[cacheKey]*list.Element),
		byPtr:    make(map[ptrKey]*list.Element),
	}
}

// lookup returns the compiled form of p for the given model, compiling
// and inserting on miss. A hash collision (same key, different code)
// counts as a miss and replaces the colliding entry.
func (cc *Cache) lookup(p *isa.Program, model string) *program {
	pk := ptrKey{p: p, model: model}
	cc.mu.Lock()
	if el, ok := cc.byPtr[pk]; ok {
		cc.ll.MoveToFront(el)
		cc.hits++
		cp := el.Value.(*cacheEntry).compiled
		cc.mu.Unlock()
		return cp
	}
	cc.mu.Unlock()

	key := cacheKey{hash: hashProgram(p), model: model}
	cc.mu.Lock()
	if el, ok := cc.entries[key]; ok {
		ent := el.Value.(*cacheEntry)
		if sameCode(ent.src, p) {
			cc.addAlias(el, ent, pk)
			cc.ll.MoveToFront(el)
			cc.hits++
			cp := ent.compiled
			cc.mu.Unlock()
			return cp
		}
	}
	cc.misses++
	cc.mu.Unlock()

	// Compile outside the lock: lowering is pure, and a rare duplicate
	// compile is cheaper than serializing every shard behind it.
	cp := compile(p)

	cc.mu.Lock()
	defer cc.mu.Unlock()
	if el, ok := cc.entries[key]; ok {
		cc.dropAliases(el.Value.(*cacheEntry))
		ent := &cacheEntry{key: key, src: p, compiled: cp}
		el.Value = ent
		cc.addAlias(el, ent, pk)
		cc.ll.MoveToFront(el)
		return cp
	}
	ent := &cacheEntry{key: key, src: p, compiled: cp}
	el := cc.ll.PushFront(ent)
	cc.entries[key] = el
	cc.addAlias(el, ent, pk)
	for cc.ll.Len() > cc.capacity {
		oldest := cc.ll.Back()
		cc.ll.Remove(oldest)
		evicted := oldest.Value.(*cacheEntry)
		delete(cc.entries, evicted.key)
		cc.dropAliases(evicted)
		cc.evictions++
	}
	return cp
}

// addAlias indexes el under the pointer key, bounded per entry.
// Callers hold cc.mu.
func (cc *Cache) addAlias(el *list.Element, ent *cacheEntry, pk ptrKey) {
	if len(ent.ptrs) >= maxPtrAliases {
		return
	}
	ent.ptrs = append(ent.ptrs, pk)
	cc.byPtr[pk] = el
}

// dropAliases removes an entry's pointer-index aliases. Callers hold
// cc.mu.
func (cc *Cache) dropAliases(ent *cacheEntry) {
	for _, pk := range ent.ptrs {
		delete(cc.byPtr, pk)
	}
	ent.ptrs = nil
}

// Stats returns a snapshot of the cache counters.
func (cc *Cache) Stats() CacheStats {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return CacheStats{
		Size:      cc.ll.Len(),
		Capacity:  cc.capacity,
		Hits:      cc.hits,
		Misses:    cc.misses,
		Evictions: cc.evictions,
	}
}
