package engine

import (
	"sync/atomic"

	"repro/internal/cpu"
	"repro/internal/isa"
)

// Compiled is the block-dispatch engine: programs are lowered once into
// basic blocks with precomputed event-delta summaries, and execution
// bulk-applies a whole block per dispatch wherever that is provably
// indistinguishable from stepping — falling back to the core's
// canonical per-instruction dispatch everywhere else. Nested handler
// programs (syscall, tick, PMU overflow) run through the same machinery
// via cpu.Core.NestedRun, which is where most of the speedup comes
// from: the kernel tick handler alone is thousands of straight-line ALU
// instructions per delivery.
//
// A Compiled engine is safe for concurrent use by multiple cores; the
// per-run state it needs lives on the stack of RunProgram.
type Compiled struct {
	cache *Cache
	runs  atomic.Int64
}

// NewCompiled returns a compiled engine backed by the given cache (nil
// for a private cache with the default capacity).
func NewCompiled(cache *Cache) *Compiled {
	if cache == nil {
		cache = NewCache(DefaultCacheCapacity)
	}
	return &Compiled{cache: cache}
}

// Name implements cpu.Runner.
func (e *Compiled) Name() string { return "compiled" }

// Runs returns the number of programs this engine has executed.
func (e *Compiled) Runs() int64 { return e.runs.Load() }

// CacheStats returns the engine's compile-cache counters.
func (e *Compiled) CacheStats() CacheStats { return e.cache.Stats() }

// RunProgram implements cpu.Runner: it resets per-run core state and
// executes p to completion through block dispatch, routing nested
// handler programs through the engine as well.
func (e *Compiled) RunProgram(c *cpu.Core, p *isa.Program) error {
	e.runs.Add(1)
	// Per-run memo: within one run the same handful of programs (the
	// top-level program plus the kernel's handlers) recurs thousands of
	// times, and a pointer lookup beats re-hashing a 2000-instruction
	// tick handler on every delivery.
	memo := make(map[*isa.Program]*program, 4)
	lookup := func(q *isa.Program) *program {
		cp, ok := memo[q]
		if !ok {
			cp = e.cache.lookup(q, c.Model.Tag)
			memo[q] = cp
		}
		return cp
	}
	prev := c.NestedRun
	c.NestedRun = func(q *isa.Program) error {
		return e.runFrame(c, q, lookup(q))
	}
	defer func() { c.NestedRun = prev }()

	c.BeginRun()
	return e.runFrame(c, p, lookup(p))
}

// runFrame executes one program frame: block dispatch where a block is
// compiled and bulk application is exact, the core's Step everywhere
// else (which also handles loops, PMU-visible instructions, and frame
// terminators).
func (e *Compiled) runFrame(c *cpu.Core, p *isa.Program, cp *program) error {
	err := c.PushFrame(p)
	defer c.PopFrame()
	if err != nil {
		return err
	}

	pc := 0
	for {
		if b := cp.blockAt(pc); b != nil {
			if cyc, ok := canBulk(c, b); ok {
				applyBlock(c, b, cyc)
				if err := c.CheckInterrupts(); err != nil {
					return err
				}
				pc = b.next
				continue
			}
		}
		next, done, err := c.Step(p, pc)
		if done || err != nil {
			return err
		}
		pc = next
	}
}

// canBulk decides whether a block may be applied in bulk right now, and
// returns its cycle cost when it may. Bulk application is allowed only
// when it is provably byte-identical to stepping:
//
//   - no sampling consumer is installed (overflow interrupts must fire
//     at exact crossings, which only stepping observes);
//   - the timer cannot fire strictly inside the block — per-instruction
//     costs and cold-fetch penalties are positive and exact, so if the
//     block's total cost (including the first-touch penalties of its
//     still-cold lines and pages) stays short of Timer.Next no
//     intermediate instruction can reach it.
//
// Cold fetch footprint does NOT force a fallback: first-touch i-cache
// and i-TLB penalties are integer cycle constants and integer event
// counts, so charging them en bloc (cpu.Core.FetchMark) is bit-identical
// to charging them at each instruction's fetch. The returned cost is
// the class cycles only; FetchMark adds the penalty cycles itself.
func canBulk(c *cpu.Core, b *block) (float64, bool) {
	if c.OnOverflow != nil || c.OverflowHandler != nil {
		return 0, false
	}
	cyc := b.cycles(c)
	if c.TimerActive() {
		total := cyc
		if coldLines, coldPages := c.FetchColdCount(b.lines, b.pages); coldLines|coldPages != 0 {
			total += float64(coldLines)*c.Model.ICacheMissPenalty +
				float64(coldPages)*c.Model.ITLBMissPenalty
		}
		if c.Cycles+total >= c.Timer.Next {
			return 0, false
		}
	}
	return cyc, true
}

// applyBlock commits a block's precomputed deltas: cold-fetch misses,
// mispredict events, retired instructions, cycles, and the attribution
// address a stepwise pass would have left.
func applyBlock(c *cpu.Core, b *block, cyc float64) {
	c.FetchMark(b.lines, b.pages)
	if b.misp > 0 {
		c.PMU.AddEvent(c.Mode, cpu.EventBrMispRetired, float64(b.misp))
	}
	c.RetireBulk(b.n, cyc)
	c.SetExecAddr(b.lastAddr)
}
