package engine_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/engine"
	"repro/internal/isa"
	"repro/internal/stack"
)

// benchSystem builds one measurement stack for benchmarking.
func benchSystem(b *testing.B, model, code string) *stack.System {
	b.Helper()
	m, err := cpu.ModelByTag(model)
	if err != nil {
		b.Fatal(err)
	}
	s, err := stack.New(m, code, stack.DefaultOptions)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// benchRun executes a prebuilt program through the given engine on a
// prebuilt system, once per iteration. This isolates engine execution —
// program construction and measurement-infrastructure setup are
// identical for both engines and excluded.
func benchRun(b *testing.B, s *stack.System, r cpu.Runner, p *isa.Program) {
	b.Helper()
	c := s.Kernel.Core
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset()
		c.SeedRun(7)
		if err := r.RunProgram(c, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineCompiledVsInterp pairs the two engines on the plain
// loop and array benchmark programs. The compiled engine's acceptance
// bar is a >=5x ns/op improvement; CI records the pair in its bench
// artifact.
func BenchmarkEngineCompiledVsInterp(b *testing.B) {
	workloads := []struct {
		name string
		prog *isa.Program
	}{
		{"loop1M", core.LoopBenchmark(1_000_000).RawProgram()},
		{"array1M", core.ArrayBenchmark(1_000_000).RawProgram()},
	}
	for _, w := range workloads {
		s := benchSystem(b, "PD", "pc")
		b.Run(w.name+"/interp", func(b *testing.B) {
			benchRun(b, s, engine.NewInterpreter(), w.prog)
		})
		b.Run(w.name+"/compiled", func(b *testing.B) {
			benchRun(b, s, engine.NewCompiled(nil), w.prog)
		})
	}
}

// BenchmarkEngineMeasurePath pairs the engines on the full per-request
// measurement path (harness construction, counter configuration,
// analysis) — the end-to-end view, where per-request infrastructure
// work common to both engines dilutes the engine-only ratio.
func BenchmarkEngineMeasurePath(b *testing.B) {
	req := func() core.Request {
		return core.Request{Bench: core.LoopBenchmark(1_000_000), Pattern: core.StartRead,
			Mode: core.ModeUserKernel, Seed: 7}
	}
	for _, eng := range []cpu.Runner{engine.NewInterpreter(), engine.NewCompiled(nil)} {
		b.Run(eng.Name(), func(b *testing.B) {
			m, err := cpu.ModelByTag("PD")
			if err != nil {
				b.Fatal(err)
			}
			opts := stack.DefaultOptions
			opts.Engine = eng
			s, err := stack.New(m, "pc", opts)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Reset()
				if _, err := s.Measure(req()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
