package engine

import (
	"repro/internal/cpu"
	"repro/internal/isa"
)

// block is one compiled basic block: a maximal run of bulk-advanceable
// instructions (ALU, NOP, loads, stores, branches) with its event
// deltas precomputed. Applying a block is one AddEvent for the
// mispredicts, one RetireBulk for the instructions and cycles, and one
// attribution-address update — regardless of block length.
//
// Cycle cost is not precomputed: it depends on the core's FreqScale at
// execution time, so the engine derives it per application from the
// class counts (constant within a block, since a bulk block by
// definition contains no tick that could change the frequency).
type block struct {
	// next is the pc execution continues at after the block: the taken
	// branch target if the block ends in a taken branch, otherwise the
	// pc of the first non-bulkable instruction.
	next int
	// n is the total instructions retired by the block.
	n int64
	// alu, mem, and br count retired instructions per cost class.
	alu, mem, br int64
	// misp counts statically mispredicted branches in the block.
	misp int64
	// lines and pages are the distinct i-cache lines and i-TLB pages
	// the block fetches from; bulk application charges any still-cold
	// ones their first-touch penalties via cpu.Core.FetchMark.
	lines, pages []uint64
	// lastAddr is the address of the block's final instruction — the
	// attribution address a stepwise pass would leave behind.
	lastAddr uint64
}

// program is one compiled program: per-pc block table (nil where
// execution must step).
type program struct {
	blocks []*block
}

// blockAt returns the block starting at pc, or nil.
func (cp *program) blockAt(pc int) *block {
	if pc < 0 || pc >= len(cp.blocks) {
		return nil
	}
	return cp.blocks[pc]
}

// bulkable reports whether an op may live inside a compiled block: its
// accounting is a fixed-cost retire with statically known control flow.
// Everything else — PMU-visible instructions, syscalls, VarWork's
// random draw, loops (which have their own fast-forward), and frame
// terminators — is stepped through the core's canonical dispatch.
func bulkable(op isa.Op) bool {
	switch op {
	case isa.OpALU, isa.OpNop, isa.OpLoad, isa.OpStore, isa.OpBranch:
		return true
	}
	return false
}

// compile lowers p into its basic blocks. Block leaders are the entry
// point, taken-branch targets, and the resume points after every
// stepped instruction; a block extends from its leader over bulkable
// instructions and ends at a taken branch (continuing at the target) or
// just before the first instruction that must be stepped.
func compile(p *isa.Program) *program {
	code := p.Code
	leaders := make(map[int]bool, 8)
	leaders[0] = true
	for pc, in := range code {
		switch in.Op {
		case isa.OpBranch:
			if in.B != 0 {
				leaders[int(in.A)] = true
			}
		case isa.OpLoop:
			leaders[pc+1+int(in.B)] = true
			// The body itself is executed by the loop fast-forward, not
			// by block dispatch, so body pcs need no blocks.
		case isa.OpHalt, isa.OpSysRet, isa.OpIRet:
			// Frame ends; nothing follows.
		default:
			if !bulkable(in.Op) {
				leaders[pc+1] = true
			}
		}
	}

	cp := &program{blocks: make([]*block, len(code))}
	for leader := range leaders {
		if leader < 0 || leader >= len(code) || !bulkable(code[leader].Op) {
			continue
		}
		cp.blocks[leader] = lowerBlock(p, leader)
	}
	return cp
}

// lowerBlock summarizes the block starting at leader.
func lowerBlock(p *isa.Program, leader int) *block {
	code := p.Code
	b := &block{}
	seenLine := map[uint64]bool{}
	seenPage := map[uint64]bool{}
	pc := leader
	for pc < len(code) {
		in := code[pc]
		if !bulkable(in.Op) {
			break
		}
		addr := p.Addr(pc)
		b.lastAddr = addr
		if line := addr >> 6; !seenLine[line] {
			seenLine[line] = true
			b.lines = append(b.lines, line)
		}
		if page := addr >> 12; !seenPage[page] {
			seenPage[page] = true
			b.pages = append(b.pages, page)
		}
		b.n++
		switch in.Op {
		case isa.OpALU, isa.OpNop:
			b.alu++
		case isa.OpLoad, isa.OpStore:
			b.mem++
		case isa.OpBranch:
			b.br++
			// Static not-taken prediction for forward, taken for
			// backward — the same rule cpu.Core.execBranch applies.
			backward := in.A <= int64(pc)
			taken := in.B != 0
			if taken != backward {
				b.misp++
			}
			if taken {
				b.next = int(in.A)
				return b
			}
		}
		pc++
	}
	b.next = pc
	return b
}

// cycles returns the block's cycle cost at the core's current clock
// frequency. Every term is a product of an integer count and a cost on
// the exact-addition grid (cpu.CycleGrain), so the sum is bit-identical
// to the serial per-instruction accumulation it replaces.
func (b *block) cycles(c *cpu.Core) float64 {
	cyc := float64(b.alu) * c.ClassCost(cpu.ClassALU)
	cyc += float64(b.mem) * c.ClassCost(cpu.ClassMem)
	cyc += float64(b.br) * c.ClassCost(cpu.ClassBranch)
	cyc += float64(b.misp) * c.Model.MispredictPenalty
	return cyc
}

// hashProgram returns a word-wise FNV-1a content hash of a program:
// base address plus every instruction's fields. The name is
// deliberately excluded — identical code at the same address compiles
// identically whatever it is called. Mixing whole words is weaker than
// byte-wise FNV but an order of magnitude cheaper, and collisions are
// harmless: cache hits verify full code equality (sameCode).
func hashProgram(p *isa.Program) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		h = (h ^ v) * prime
	}
	mix(p.Base)
	mix(uint64(len(p.Code)))
	for _, in := range p.Code {
		mix(uint64(in.Op))
		mix(uint64(in.A))
		mix(uint64(in.B))
		mix(uint64(in.Slot))
		mix(uint64(in.Size))
	}
	return h
}

// sameCode reports whether two programs have identical base and code —
// the collision guard behind cache hits.
func sameCode(a, b *isa.Program) bool {
	if a == b {
		return true
	}
	if a.Base != b.Base || len(a.Code) != len(b.Code) {
		return false
	}
	for i := range a.Code {
		if a.Code[i] != b.Code[i] {
			return false
		}
	}
	return true
}
