package engine_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/engine"
	"repro/internal/engine/enginetest"
	"repro/internal/kernel"
	"repro/internal/mpx"
	"repro/internal/sampling"
	"repro/internal/stack"
)

// twin builds two identical systems pinned to the interpreter and the
// compiled engine respectively.
func twin(t *testing.T, model string, code string, opts stack.Options) (interp, compiled *stack.System) {
	t.Helper()
	m, err := cpu.ModelByTag(model)
	if err != nil {
		t.Fatal(err)
	}
	oi := opts
	oi.Engine = engine.NewInterpreter()
	si, err := stack.New(m, code, oi)
	if err != nil {
		t.Fatal(err)
	}
	oc := opts
	oc.Engine = engine.NewCompiled(nil)
	sc, err := stack.New(m, code, oc)
	if err != nil {
		t.Fatal(err)
	}
	return si, sc
}

// measurePair runs one request on both systems and asserts identical
// measurements and identical final machine state.
func measurePair(t *testing.T, si, sc *stack.System, req core.Request) {
	t.Helper()
	si.Reset()
	sc.Reset()
	mi, errI := si.Measure(req)
	mc, errC := sc.Measure(req)
	if (errI == nil) != (errC == nil) || (errI != nil && errI.Error() != errC.Error()) {
		t.Fatalf("error mismatch: interpreter=%v compiled=%v", errI, errC)
	}
	if errI == nil && !reflect.DeepEqual(mi, mc) {
		t.Fatalf("measurement mismatch:\ninterpreter: %+v\ncompiled:    %+v", mi, mc)
	}
	d := enginetest.Diff(
		enginetest.Snapshot(si.Kernel.Core, errI),
		enginetest.Snapshot(sc.Kernel.Core, errC),
	)
	if d != "" {
		t.Fatalf("state mismatch: %s", d)
	}
}

// TestConformanceCountingMatrix runs the benchmark × pattern × model ×
// stack × mode counting matrix through both engines.
func TestConformanceCountingMatrix(t *testing.T) {
	models := []string{"PD", "CD", "K8"}
	stacks := []string{"pc", "pm", "PLpc", "PHpm"}
	benches := map[string]func() *core.Benchmark{
		"null":     core.NullBenchmark,
		"loop5k":   func() *core.Benchmark { return core.LoopBenchmark(5000) },
		"array512": func() *core.Benchmark { return core.ArrayBenchmark(512) },
	}
	patterns := []core.Pattern{core.StartRead, core.StartStop, core.ReadRead, core.ReadStop}
	modes := []core.MeasureMode{core.ModeUser, core.ModeUserKernel, core.ModeKernel}

	for _, model := range models {
		for _, code := range stacks {
			si, sc := twin(t, model, code, stack.DefaultOptions)
			for bname, bench := range benches {
				for _, pat := range patterns {
					if !pat.SupportedBy(si.Infra) {
						continue
					}
					for _, mode := range modes {
						name := fmt.Sprintf("%s/%s/%s/%s/%s", model, code, bname, pat.Code(), mode)
						t.Run(name, func(t *testing.T) {
							measurePair(t, si, sc, core.Request{
								Bench: bench(), Pattern: pat, Mode: mode, Seed: 7,
							})
						})
					}
				}
			}
		}
	}
}

// TestConformanceLongRun crosses many timer ticks, exercising tick
// skew, handler acceleration, and bulk-versus-boundary interleaving.
func TestConformanceLongRun(t *testing.T) {
	for _, model := range []string{"PD", "CD", "K8"} {
		t.Run(model, func(t *testing.T) {
			si, sc := twin(t, model, "pc", stack.DefaultOptions)
			for seed := uint64(1); seed <= 3; seed++ {
				measurePair(t, si, sc, core.Request{
					Bench: core.LoopBenchmark(2_000_000), Pattern: core.StartRead,
					Mode: core.ModeUserKernel, Seed: seed,
				})
			}
		})
	}
}

// TestConformanceOndemandGovernor varies the clock frequency mid-run:
// FreqScale-dependent costs must stay exact on both engines.
func TestConformanceOndemandGovernor(t *testing.T) {
	opts := stack.DefaultOptions
	opts.Governor = kernel.Ondemand
	for _, model := range []string{"PD", "K8"} {
		t.Run(model, func(t *testing.T) {
			si, sc := twin(t, model, "pm", opts)
			measurePair(t, si, sc, core.Request{
				Bench: core.ArrayBenchmark(4096), Pattern: core.StartStop,
				Mode: core.ModeUser, Seed: 11,
			})
		})
	}
}

// TestConformanceSampling profiles through both engines: with a
// sampling consumer installed the compiled engine must step so overflow
// interrupts fire at exact crossings, making profiles identical.
func TestConformanceSampling(t *testing.T) {
	for _, model := range []string{"PD", "CD", "K8"} {
		t.Run(model, func(t *testing.T) {
			si, sc := twin(t, model, "pc", stack.DefaultOptions)
			run := func(s *stack.System, r cpu.Runner) (*sampling.Profile, error) {
				s.Reset()
				p, err := sampling.New(s.Kernel, cpu.EventInstrRetired, 10_000)
				if err != nil {
					t.Fatal(err)
				}
				p.Runner = r
				return p.Run(core.LoopBenchmark(200_000).RawProgram(), 7)
			}
			pi, errI := run(si, engine.NewInterpreter())
			pc, errC := run(sc, engine.NewCompiled(nil))
			if (errI == nil) != (errC == nil) {
				t.Fatalf("error mismatch: %v vs %v", errI, errC)
			}
			if !reflect.DeepEqual(pi, pc) {
				t.Fatalf("profile mismatch:\ninterpreter: %+v\ncompiled:    %+v", pi, pc)
			}
			d := enginetest.Diff(
				enginetest.Snapshot(si.Kernel.Core, errI),
				enginetest.Snapshot(sc.Kernel.Core, errC),
			)
			if d != "" {
				t.Fatalf("state mismatch: %s", d)
			}
		})
	}
}

// TestConformanceMultiplexing rotates counter groups on timer ticks
// through both engines and compares the interpolated estimates.
func TestConformanceMultiplexing(t *testing.T) {
	for _, model := range []string{"CD", "K8"} {
		t.Run(model, func(t *testing.T) {
			si, sc := twin(t, model, "pm", stack.DefaultOptions)
			events := []cpu.Event{cpu.EventInstrRetired, cpu.EventCoreCycles}
			run := func(s *stack.System, r cpu.Runner) ([]mpx.Estimate, error) {
				s.Reset()
				m, err := mpx.New(s.Kernel, 1, events)
				if err != nil {
					t.Fatal(err)
				}
				defer m.Close()
				m.Runner = r
				return m.Run(core.LoopBenchmark(3_000_000).RawProgram(), 13)
			}
			ei, errI := run(si, engine.NewInterpreter())
			ec, errC := run(sc, engine.NewCompiled(nil))
			if (errI == nil) != (errC == nil) {
				t.Fatalf("error mismatch: %v vs %v", errI, errC)
			}
			if !reflect.DeepEqual(ei, ec) {
				t.Fatalf("estimate mismatch:\ninterpreter: %+v\ncompiled:    %+v", ei, ec)
			}
			d := enginetest.Diff(
				enginetest.Snapshot(si.Kernel.Core, errI),
				enginetest.Snapshot(sc.Kernel.Core, errC),
			)
			if d != "" {
				t.Fatalf("state mismatch: %s", d)
			}
		})
	}
}
