package engine

import (
	"fmt"
	"testing"

	"repro/internal/cpu"
	"repro/internal/isa"
)

// TestCompileLowersStraightLine checks that a straight ALU run lowers
// into one block covering everything up to the terminator.
func TestCompileLowersStraightLine(t *testing.T) {
	b := isa.NewBuilder("straight", 0x1000)
	b.ALUBlock(10)
	b.Emit(isa.Halt())
	p := b.Build()

	cp := compile(p)
	blk := cp.blockAt(0)
	if blk == nil {
		t.Fatal("no block at entry")
	}
	if blk.n != 10 || blk.alu != 10 || blk.mem != 0 || blk.br != 0 {
		t.Fatalf("block summary = %+v, want 10 ALU", blk)
	}
	if blk.next != 10 {
		t.Fatalf("block next = %d, want 10 (the halt)", blk.next)
	}
}

// TestCompileStopsAtPMUVisible checks that PMU-visible instructions are
// excluded from blocks and resume points become leaders.
func TestCompileStopsAtPMUVisible(t *testing.T) {
	b := isa.NewBuilder("pmu", 0x1000)
	b.ALUBlock(4)
	b.Emit(isa.RDPMC(0, isa.NoSlot))
	b.ALUBlock(3)
	b.Emit(isa.Halt())
	p := b.Build()

	cp := compile(p)
	if blk := cp.blockAt(0); blk == nil || blk.n != 4 || blk.next != 4 {
		t.Fatalf("entry block = %+v, want 4 instrs ending at rdpmc", blkStr(cp, 0))
	}
	if cp.blockAt(4) != nil {
		t.Fatal("rdpmc must not start a block")
	}
	if blk := cp.blockAt(5); blk == nil || blk.n != 3 || blk.next != 8 {
		t.Fatalf("resume block = %+v, want 3 instrs", blkStr(cp, 5))
	}
}

func blkStr(cp *program, pc int) string {
	b := cp.blockAt(pc)
	if b == nil {
		return "<nil>"
	}
	return fmt.Sprintf("%+v", *b)
}

// TestCompileBranches checks taken-branch termination, target leaders,
// and static misprediction counting.
func TestCompileBranches(t *testing.T) {
	// 0: alu, 1: branch forward taken -> 4 (mispredict), 2: alu, 3: alu,
	// 4: alu, 5: halt. pc 2 is dead code.
	p := isa.NewBuilder("br", 0x1000).Emit(
		isa.ALU(),
		isa.Branch(4, true),
		isa.ALU(),
		isa.ALU(),
		isa.ALU(),
		isa.Halt(),
	).Build()

	cp := compile(p)
	entry := cp.blockAt(0)
	if entry == nil || entry.n != 2 || entry.br != 1 || entry.misp != 1 {
		t.Fatalf("entry block = %s, want alu+mispredicted branch", blkStr(cp, 0))
	}
	if entry.next != 4 {
		t.Fatalf("entry next = %d, want branch target 4", entry.next)
	}
	target := cp.blockAt(4)
	if target == nil || target.n != 1 || target.next != 5 {
		t.Fatalf("target block = %s, want 1 alu ending at halt", blkStr(cp, 4))
	}
}

// TestCacheLRUAndStats exercises hit/miss/eviction accounting.
func TestCacheLRUAndStats(t *testing.T) {
	mk := func(n int) *isa.Program {
		b := isa.NewBuilder(fmt.Sprintf("p%d", n), uint64(0x1000*n))
		b.ALUBlock(n)
		b.Emit(isa.Halt())
		return b.Build()
	}
	cc := NewCache(2)
	p1, p2, p3 := mk(1), mk(2), mk(3)

	cc.lookup(p1, "PD")
	cc.lookup(p1, "PD")
	cc.lookup(p2, "PD")
	cc.lookup(p3, "PD") // evicts p1 (least recently used)
	cc.lookup(p2, "PD")

	st := cc.Stats()
	if st.Size != 2 || st.Capacity != 2 {
		t.Fatalf("size/capacity = %d/%d, want 2/2", st.Size, st.Capacity)
	}
	if st.Hits != 2 || st.Misses != 3 || st.Evictions != 1 {
		t.Fatalf("hits/misses/evictions = %d/%d/%d, want 2/3/1", st.Hits, st.Misses, st.Evictions)
	}
	// Same code under a different model tag is a distinct entry.
	cc.lookup(p2, "K8")
	if got := cc.Stats().Misses; got != 4 {
		t.Fatalf("misses after model change = %d, want 4", got)
	}
}

// TestEngineNamesAndRunCounts checks the Runner surface the service
// reports in /healthz.
func TestEngineNamesAndRunCounts(t *testing.T) {
	interp, compiled := NewInterpreter(), NewCompiled(nil)
	if interp.Name() != "interpreter" || compiled.Name() != "compiled" {
		t.Fatalf("names = %q/%q", interp.Name(), compiled.Name())
	}

	m, err := cpu.ModelByTag("K8")
	if err != nil {
		t.Fatal(err)
	}
	b := isa.NewBuilder("prog", 0x1000)
	b.ALUBlock(8)
	b.Emit(isa.Halt())
	p := b.Build()

	for i := 0; i < 3; i++ {
		if err := interp.RunProgram(cpu.NewCore(m), p); err != nil {
			t.Fatal(err)
		}
		if err := compiled.RunProgram(cpu.NewCore(m), p); err != nil {
			t.Fatal(err)
		}
	}
	if interp.Runs() != 3 || compiled.Runs() != 3 {
		t.Fatalf("runs = %d/%d, want 3/3", interp.Runs(), compiled.Runs())
	}
	st := compiled.CacheStats()
	if st.Misses != 1 || st.Hits != 2 {
		t.Fatalf("cache hits/misses = %d/%d, want 2/1", st.Hits, st.Misses)
	}
}

// TestCompiledActuallyBulks guards against silent fallback: on a core
// with no timer and no sampling consumer, canBulk must accept a
// straight-line block even when its fetch footprint is cold (the
// penalties are folded into the bulk application), and applying it must
// leave exactly the state a stepwise interpreter run leaves.
func TestCompiledActuallyBulks(t *testing.T) {
	m, err := cpu.ModelByTag("CD")
	if err != nil {
		t.Fatal(err)
	}
	b := isa.NewBuilder("bulk", 0x1000)
	b.ALUBlock(100)
	b.Emit(isa.Halt())
	p := b.Build()

	cp := compile(p)
	entry := cp.blockAt(0)
	if entry == nil || entry.n != 100 {
		t.Fatalf("entry block = %s, want 100 instrs", blkStr(cp, 0))
	}

	c := cpu.NewCore(m)
	c.SeedRun(1)
	c.BeginRun()
	cyc, ok := canBulk(c, entry)
	if !ok {
		t.Fatal("canBulk rejected a cold straight-line block with no timer — the engine would silently step everything")
	}
	applyBlock(c, entry, cyc)
	if err := c.CheckInterrupts(); err != nil {
		t.Fatal(err)
	}
	// The footprint must now be warm: a second canBulk sees no cold cost.
	if cl, cp2 := c.FetchColdCount(entry.lines, entry.pages); cl != 0 || cp2 != 0 {
		t.Fatalf("footprint still cold after applyBlock: %d lines, %d pages", cl, cp2)
	}
	bulk := c.Cycles

	// A full compiled run and a pure interpreter run of the same program
	// must both land on the same cycle count as block application plus
	// the halt.
	cc := cpu.NewCore(m)
	cc.SeedRun(1)
	if err := NewCompiled(nil).RunProgram(cc, p); err != nil {
		t.Fatal(err)
	}
	ci := cpu.NewCore(m)
	ci.SeedRun(1)
	if err := NewInterpreter().RunProgram(ci, p); err != nil {
		t.Fatal(err)
	}
	if ci.Cycles != cc.Cycles {
		t.Fatalf("cycles diverge: interpreter=%v compiled=%v", ci.Cycles, cc.Cycles)
	}
	haltCost := c.ClassCost(cpu.ClassALU)
	if want := bulk + haltCost; cc.Cycles != want {
		t.Fatalf("compiled run = %v cycles, want block apply + halt = %v", cc.Cycles, want)
	}
}
