// Package engine provides the execution engines that drive a cpu.Core
// through an isa.Program: an interpreter engine that steps every
// instruction through the core's canonical dispatch, and a compiled
// engine that pre-lowers programs into basic blocks with per-block
// event-delta summaries so steady-state execution does one table add
// per block instead of per-instruction PMU accounting.
//
// Both engines are required to produce byte-identical architectural
// state — clock, TSC, counter values, captures, tallies, interrupt
// counts — for every program. That is not best-effort: the accuracy
// analyses layered above (calibration, duet pairing, posterior fusion)
// assume measurements are a pure function of the request, so an engine
// that drifted by even one counter event would silently invalidate
// them. The conformance suite in this package asserts the identity over
// the full benchmark × processor × counting/sampling/multiplexing
// matrix, and exactness of the underlying float arithmetic is
// guaranteed by the cycle-cost grid (see cpu.CycleGrain).
//
// The compiled engine falls back to stepwise execution inside blocks
// containing PMU-visible instructions (RDPMC/RDTSC/RDMSR/WRMSR,
// syscalls, VarWork), when a timer tick could fire mid-block, when the
// block's fetch footprint is still cold, or when a sampling consumer
// needs overflow interrupts delivered at exact crossings. Plain loop
// bodies keep using the core's existing O(1) loop fast-forward.
package engine

import (
	"sync/atomic"

	"repro/internal/cpu"
	"repro/internal/isa"
)

// Interpreter is the reference engine: the core's own per-instruction
// interpreter loop, unchanged. It exists so callers can pin a request
// to the canonical path and cross-check the compiled engine against it.
type Interpreter struct {
	runs atomic.Int64
}

// NewInterpreter returns an interpreter engine.
func NewInterpreter() *Interpreter { return &Interpreter{} }

// Name implements cpu.Runner.
func (e *Interpreter) Name() string { return "interpreter" }

// Runs returns the number of programs this engine has executed.
func (e *Interpreter) Runs() int64 { return e.runs.Load() }

// RunProgram implements cpu.Runner by delegating to the core's
// interpreter, with nested handlers interpreted too.
func (e *Interpreter) RunProgram(c *cpu.Core, p *isa.Program) error {
	e.runs.Add(1)
	c.NestedRun = nil
	return c.Run(p)
}

// defaultEngine is the process-wide compiled engine used when no engine
// is injected; its compile cache is shared across all systems.
var defaultEngine = NewCompiled(NewCache(DefaultCacheCapacity))

// Default returns the process-wide default engine (compiled).
func Default() cpu.Runner { return defaultEngine }
