// Package enginetest provides the cross-engine conformance harness:
// helpers that run the same workload through two execution engines on
// twin systems and assert the resulting architectural state is
// byte-identical. It follows the pattern of wazero's enginetest — the
// suite is written once against the engine contract and every engine
// implementation must pass it unchanged.
package enginetest

import (
	"fmt"
	"reflect"

	"repro/internal/cpu"
)

// State is the complete observable machine state after a run: the
// exact (float64) clock and counter accumulators, every capture, and
// the per-run tallies. Two engines conform on a workload when their
// States — including any execution error — are deeply equal.
type State struct {
	// Err is the run error's message ("" for success).
	Err string
	// Cycles is the global cycle clock, compared bit-exactly.
	Cycles float64
	// TSC is the time stamp counter.
	TSC int64
	// Prog and Fixed hold the raw (unrounded) accumulator of every
	// programmable and fixed counter.
	Prog  []float64
	Fixed []float64
	// Captures is the run's capture log.
	Captures []cpu.Capture
	// Tallies.
	RetiredUser, RetiredKernel int64
	TimerDeliveries            int
	OverflowDeliveries         int
	OverflowsLost              int64
}

// Snapshot captures the core's state together with a run error.
func Snapshot(c *cpu.Core, err error) State {
	s := State{
		Cycles:             c.Cycles,
		TSC:                c.PMU.TSC(),
		Captures:           append([]cpu.Capture(nil), c.Captures...),
		RetiredUser:        c.RetiredUser,
		RetiredKernel:      c.RetiredKernel,
		TimerDeliveries:    c.TimerDeliveries,
		OverflowDeliveries: c.OverflowDeliveries,
		OverflowsLost:      c.OverflowsLost,
	}
	if err != nil {
		s.Err = err.Error()
	}
	for i := range c.PMU.Prog {
		s.Prog = append(s.Prog, c.PMU.Prog[i].Raw())
	}
	for i := range c.PMU.Fixed {
		s.Fixed = append(s.Fixed, c.PMU.Fixed[i].Raw())
	}
	return s
}

// Diff returns "" when the states are identical, or a description of
// the first difference.
func Diff(interp, compiled State) string {
	if interp.Err != compiled.Err {
		return fmt.Sprintf("error: interpreter=%q compiled=%q", interp.Err, compiled.Err)
	}
	if interp.Cycles != compiled.Cycles {
		return fmt.Sprintf("cycles: interpreter=%v compiled=%v (delta %g)",
			interp.Cycles, compiled.Cycles, compiled.Cycles-interp.Cycles)
	}
	if interp.TSC != compiled.TSC {
		return fmt.Sprintf("tsc: interpreter=%d compiled=%d", interp.TSC, compiled.TSC)
	}
	if !reflect.DeepEqual(interp.Prog, compiled.Prog) {
		return fmt.Sprintf("programmable counters: interpreter=%v compiled=%v", interp.Prog, compiled.Prog)
	}
	if !reflect.DeepEqual(interp.Fixed, compiled.Fixed) {
		return fmt.Sprintf("fixed counters: interpreter=%v compiled=%v", interp.Fixed, compiled.Fixed)
	}
	if !reflect.DeepEqual(interp, compiled) {
		return fmt.Sprintf("state: interpreter=%+v compiled=%+v", interp, compiled)
	}
	return ""
}
