package engine_test

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/engine"
	"repro/internal/engine/enginetest"
	"repro/internal/isa"
	"repro/internal/kernel"
)

// fuzzSyscall is the syscall number the fuzz harness registers a
// handler for on both systems.
const fuzzSyscall = 7

// buildFuzzProgram decodes a byte string into a structurally valid
// program: straight-line work, forward taken branches (backward taken
// branches could loop forever; backward prediction is still exercised
// through not-taken branches with backward targets), counted loops with
// straight bodies, the occasional invalid nested loop (both engines
// must fail identically), syscalls, VarWork, and PMU-visible reads.
func buildFuzzProgram(data []byte) *isa.Program {
	i := 0
	next := func() byte {
		if i >= len(data) {
			return 0
		}
		v := data[i]
		i++
		return v
	}

	var code []isa.Instr
	for op := 0; op < 48 && i < len(data); op++ {
		switch next() % 12 {
		case 0, 1:
			for n := 1 + int(next()%6); n > 0; n-- {
				code = append(code, isa.ALU())
			}
		case 2:
			code = append(code, isa.Load())
		case 3:
			code = append(code, isa.Store())
		case 4:
			// Forward taken branch over k filler instructions (dead code,
			// but still compiled — targets become block leaders).
			k := 1 + int(next()%4)
			code = append(code, isa.Branch(len(code)+1+k, true))
			for ; k > 0; k-- {
				code = append(code, isa.ALU())
			}
		case 5:
			// Not-taken branch with a backward target: statically
			// predicted taken, so it mispredicts — without looping.
			target := int(next()) % (len(code) + 1)
			code = append(code, isa.Branch(target, false))
		case 6:
			iters := int64(next()) * int64(next()) % 301
			body := 1 + int(next()%3)
			code = append(code, isa.Loop(iters, body))
			for n := body; n > 0; n-- {
				if next()%2 == 0 {
					code = append(code, isa.ALU())
				} else {
					code = append(code, isa.Load())
				}
			}
		case 7:
			code = append(code, isa.Syscall(fuzzSyscall))
		case 8:
			code = append(code, isa.VarWork(int(next()%32), int64(next())))
		case 9:
			code = append(code, isa.RDPMC(int(next()%2), int(next()%4)))
		case 10:
			code = append(code, isa.RDTSC(int(next()%4)))
		case 11:
			if next() == 255 {
				// Invalid at runtime: a loop whose body is another loop.
				// Structurally valid, so it reaches both engines, which
				// must report the identical error at the identical state.
				code = append(code, isa.Loop(3, 2), isa.Loop(2, 1), isa.ALU())
			} else {
				code = append(code, isa.Nop())
			}
		}
	}
	code = append(code, isa.Halt())
	return &isa.Program{Name: "fuzz", Base: 0x4000, Code: code}
}

// fuzzRun executes the program on a fresh system through the given
// engine and returns the final state snapshot.
func fuzzRun(t *testing.T, model *cpu.Model, p *isa.Program, seed uint64, r cpu.Runner) enginetest.State {
	t.Helper()
	k := kernel.New(model)
	handler := isa.NewBuilder("fuzz-sys", 0x8000).
		ALUBlock(20).
		Emit(isa.RDMSR(0), isa.WRMSR(isa.MSREnable, 0b11), isa.SysRet()).
		Build()
	if err := k.RegisterSyscall(fuzzSyscall, "fuzz", handler); err != nil {
		t.Fatal(err)
	}
	for slot, ev := range []cpu.Event{cpu.EventInstrRetired, cpu.EventCoreCycles} {
		if err := k.Core.PMU.Configure(slot, cpu.CounterConfig{Event: ev, User: true, OS: true}); err != nil {
			t.Fatal(err)
		}
	}
	k.Core.PMU.Enable(0b11)
	k.Core.SeedRun(seed)
	return enginetest.Snapshot(k.Core, r.RunProgram(k.Core, p))
}

// FuzzEngineConformance feeds randomized programs through both engines
// and requires bit-identical final machine state, including errors.
func FuzzEngineConformance(f *testing.F) {
	f.Add([]byte{0}, uint64(1))
	f.Add([]byte{4, 2, 9, 0, 255, 7, 6, 200, 180, 2, 10, 3, 8, 31, 5, 17}, uint64(7))
	f.Add([]byte{11, 255, 0, 0}, uint64(3))
	f.Add([]byte{6, 255, 255, 3, 7, 7, 7, 9, 1, 9, 3, 10, 2, 5, 0, 4, 4, 8, 200, 9}, uint64(99))

	models := []string{"PD", "CD", "K8"}
	f.Fuzz(func(t *testing.T, data []byte, seed uint64) {
		var pick byte
		if len(data) > 0 {
			pick = data[len(data)-1]
		}
		m, err := cpu.ModelByTag(models[int(pick)%len(models)])
		if err != nil {
			t.Fatal(err)
		}
		p := buildFuzzProgram(data)
		if err := p.Validate(true); err != nil {
			t.Skip("generator produced invalid program:", err)
		}
		si := fuzzRun(t, m, p, seed, engine.NewInterpreter())
		sc := fuzzRun(t, m, p, seed, engine.NewCompiled(nil))
		if d := enginetest.Diff(si, sc); d != "" {
			t.Fatalf("engines diverge on %d-instruction program: %s", p.Len(), d)
		}
	})
}
