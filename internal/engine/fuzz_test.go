package engine_test

import (
	"testing"

	"repro/internal/campaign/gen"
	"repro/internal/cpu"
	"repro/internal/engine"
	"repro/internal/engine/enginetest"
	"repro/internal/isa"
	"repro/internal/kernel"
)

// The fuzz program generator lives in campaign/gen (gen.FromBytes), so
// generated program shapes are defined exactly once; this test keeps
// only the engine-conformance harness.

// fuzzRun executes the program on a fresh system through the given
// engine and returns the final state snapshot.
func fuzzRun(t *testing.T, model *cpu.Model, p *isa.Program, seed uint64, r cpu.Runner) enginetest.State {
	t.Helper()
	k := kernel.New(model)
	handler := isa.NewBuilder("fuzz-sys", 0x8000).
		ALUBlock(20).
		Emit(isa.RDMSR(0), isa.WRMSR(isa.MSREnable, 0b11), isa.SysRet()).
		Build()
	if err := k.RegisterSyscall(gen.FuzzSyscall, "fuzz", handler); err != nil {
		t.Fatal(err)
	}
	for slot, ev := range []cpu.Event{cpu.EventInstrRetired, cpu.EventCoreCycles} {
		if err := k.Core.PMU.Configure(slot, cpu.CounterConfig{Event: ev, User: true, OS: true}); err != nil {
			t.Fatal(err)
		}
	}
	k.Core.PMU.Enable(0b11)
	k.Core.SeedRun(seed)
	return enginetest.Snapshot(k.Core, r.RunProgram(k.Core, p))
}

// FuzzEngineConformance feeds randomized programs through both engines
// and requires bit-identical final machine state, including errors.
func FuzzEngineConformance(f *testing.F) {
	f.Add([]byte{0}, uint64(1))
	f.Add([]byte{4, 2, 9, 0, 255, 7, 6, 200, 180, 2, 10, 3, 8, 31, 5, 17}, uint64(7))
	f.Add([]byte{11, 255, 0, 0}, uint64(3))
	f.Add([]byte{6, 255, 255, 3, 7, 7, 7, 9, 1, 9, 3, 10, 2, 5, 0, 4, 4, 8, 200, 9}, uint64(99))

	models := []string{"PD", "CD", "K8"}
	f.Fuzz(func(t *testing.T, data []byte, seed uint64) {
		var pick byte
		if len(data) > 0 {
			pick = data[len(data)-1]
		}
		m, err := cpu.ModelByTag(models[int(pick)%len(models)])
		if err != nil {
			t.Fatal(err)
		}
		p := gen.FromBytes(data)
		if err := p.Validate(true); err != nil {
			t.Skip("generator produced invalid program:", err)
		}
		si := fuzzRun(t, m, p, seed, engine.NewInterpreter())
		sc := fuzzRun(t, m, p, seed, engine.NewCompiled(nil))
		if d := enginetest.Diff(si, sc); d != "" {
			t.Fatalf("engines diverge on %d-instruction program: %s", p.Len(), d)
		}
	})
}
