package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"

	"repro/internal/api"
	"repro/internal/bayes"
	"repro/internal/telemetry"
)

// Infer serves one batch of joint-inference items: per-event Gaussian
// evidence (measured here or supplied raw) conditioned on the linear
// event invariants of internal/bayes. Items are independent and run
// concurrently; like Analyze, the response for a normalized batch is
// deterministic, identical in-flight items coalesce, and the
// lowest-index failing item fails the batch.
func (s *Service) Infer(ctx context.Context, req api.InferRequest) (*api.InferResponse, error) {
	wantTrace := req.Trace
	tr := telemetry.FromContext(ctx)
	if wantTrace && tr == nil {
		tr = telemetry.New()
		ctx = telemetry.NewContext(ctx, tr)
	}
	sp := tr.Start(telemetry.SpanCanonicalize)
	norm, err := req.Normalized()
	sp.End()
	if err != nil {
		return nil, err
	}
	s.infers.Add(uint64(len(norm.Items)))

	resp := &api.InferResponse{Results: make([]api.InferResult, len(norm.Items))}
	var wg sync.WaitGroup
	errs := make([]error, len(norm.Items))
	for i, item := range norm.Items {
		wg.Add(1)
		go func(i int, item api.InferItem) {
			defer wg.Done()
			res, err := s.inferItem(ctx, i, item)
			if err != nil {
				errs[i] = err
				return
			}
			resp.Results[i] = *res
		}(i, item)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("item %d: %w", i, err)
		}
	}
	if wantTrace {
		// Assembled fresh per call (item results copied in by value), so
		// the trace block can be attached directly.
		resp.Trace = api.TraceInfoFrom(tr)
	}
	return resp, nil
}

// inferItem runs one normalized item with in-flight coalescing. As in
// analyzeItem, coalescing is per item: a followed item records its
// coalesce-wait span with the item index.
func (s *Service) inferItem(ctx context.Context, i int, item api.InferItem) (*api.InferResult, error) {
	tr := telemetry.FromContext(ctx)
	wait := tr.Clock()
	res, joined, err := s.iflight.Do(ctx, item.Key(), func() (*api.InferResult, error) {
		return s.executeInfer(ctx, item)
	})
	if joined {
		s.coalesced.Add(1)
		tr.AddSince(telemetry.SpanCoalesceWait, wait,
			telemetry.Annotation{Key: "item", Value: strconv.Itoa(i)})
	} else {
		s.leaders.Add(1)
	}
	return res, err
}

// executeInfer gathers the item's evidence and conditions it on the
// constraint model. Measured inputs go through the standard Measure
// path concurrently — each lands on its own shard checkout, results
// are keyed by input index so the response stays deterministic, and
// identical measurements coalesce with ordinary /measure traffic
// (normalization already decided the calibration flag, so the
// evidence is the response's accuracy annotation).
func (s *Service) executeInfer(ctx context.Context, item api.InferItem) (*api.InferResult, error) {
	n := len(item.Inputs)
	events := make([]string, n)
	means := make([]float64, n)
	vars := make([]float64, n)
	ns := make([]int, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, in := range item.Inputs {
		events[i] = in.Event
		if in.Measure == nil {
			means[i] = in.Mean
			vars[i] = in.Variance
			ns[i] = 1
			continue
		}
		wg.Add(1)
		go func(i int, in api.InferInput) {
			defer wg.Done()
			resp, err := s.Measure(ctx, *in.Measure)
			if err != nil {
				errs[i] = err
				return
			}
			if resp.Accuracy == nil {
				errs[i] = fmt.Errorf("service: measurement of %s produced no accuracy annotation", in.Event)
				return
			}
			means[i] = resp.Accuracy.Corrected
			vars[i] = resp.Accuracy.StdErr * resp.Accuracy.StdErr
			ns[i] = resp.Accuracy.N
		}(i, in)
	}
	wg.Wait()
	// Lowest-index failure, so an identical item fails identically
	// regardless of goroutine scheduling.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	model, err := item.Model()
	if err != nil {
		return nil, err
	}
	sp := telemetry.StartSpan(ctx, telemetry.SpanInferSolve).
		Annotate("events", strconv.Itoa(len(events))).
		Annotate("constraints", strconv.Itoa(len(model.Constraints)))
	sol, err := bayes.Solve(events, means, vars, model)
	sp.End()
	if err != nil {
		// Solver rejections are the request's fault: dependent equality
		// constraints or malformed terms survive normalization only when
		// the *combination* is bad, which a retry cannot fix.
		if errors.Is(err, bayes.ErrDependent) || errors.Is(err, bayes.ErrBadConstraint) ||
			errors.Is(err, bayes.ErrBadInput) || errors.Is(err, bayes.ErrUnknownEvent) {
			return nil, fmt.Errorf("%w: %v", api.ErrBadRequest, err)
		}
		return nil, err
	}

	res := &api.InferResult{
		Item:       item,
		Events:     events,
		Consistent: true,
		Active:     sol.Active,
	}
	var tight float64
	tightN := 0
	for i := range events {
		prior := api.EstimateInfoFromMoments(events[i], means[i], means[i], vars[i], item.Confidence, ns[i])
		post := api.EstimateInfoFromMoments(events[i], means[i], sol.Mean[i], sol.Variance[i], item.Confidence, ns[i])
		res.Prior = append(res.Prior, prior)
		res.Posterior = append(res.Posterior, post)
		if vars[i] > 0 {
			tight += 1 - math.Sqrt(sol.Variance[i]/vars[i])
			tightN++
		}
	}
	if tightN > 0 {
		res.Tightening = tight / float64(tightN)
	}
	for _, r := range sol.Residuals {
		res.Residuals = append(res.Residuals, api.ResidualInfo{
			Constraint: r.Constraint,
			Value:      r.Value,
			Sigma:      r.Sigma,
			Violated:   r.Violated,
		})
		if r.Violated {
			res.Consistent = false
		}
	}
	return res, nil
}
