package service

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
)

// respBytes marshals a response for byte-level comparison.
func respBytes(t *testing.T, resp *api.MeasureResponse) string {
	t.Helper()
	b, err := json.Marshal(resp)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

// measure runs one request and fails the test on error.
func measure(t *testing.T, s *Service, req api.MeasureRequest) *api.MeasureResponse {
	t.Helper()
	resp, err := s.Measure(context.Background(), req)
	if err != nil {
		t.Fatalf("Measure(%+v): %v", req, err)
	}
	return resp
}

func TestMeasureBasic(t *testing.T) {
	s := New(Config{WorkersPerShard: 1})
	resp := measure(t, s, api.MeasureRequest{
		Processor: "K8", Stack: "pc", Bench: "loop:1000", Pattern: "rr", Runs: 3,
	})
	if resp.Expected != 3001 {
		t.Errorf("expected count = %d, want 3001 (1+3*1000)", resp.Expected)
	}
	if len(resp.Errors) != 3 || len(resp.Deltas) != 3 {
		t.Errorf("got %d errors, %d delta rows, want 3 each", len(resp.Errors), len(resp.Deltas))
	}
	if resp.Summary.Min > resp.Summary.Max {
		t.Errorf("summary min %d > max %d", resp.Summary.Min, resp.Summary.Max)
	}
	if resp.Request.Mode != "user" || resp.Request.Seed != api.DefaultSeed {
		t.Errorf("normalization not echoed: %+v", resp.Request)
	}
}

func TestMeasureRejectsBadRequests(t *testing.T) {
	s := New(Config{})
	bad := []api.MeasureRequest{
		{Processor: "Z80", Stack: "pc", Bench: "null"},
		{Processor: "K8", Stack: "bogus", Bench: "null"},
		{Processor: "K8", Stack: "pc", Bench: "loop:x"},
		{Processor: "K8", Stack: "pc", Bench: "null", Pattern: "zz"},
		{Processor: "K8", Stack: "pc", Bench: "null", Mode: "hyper"},
		{Processor: "K8", Stack: "pc", Bench: "null", Opt: 9},
		{Processor: "K8", Stack: "pc", Bench: "null", Runs: -1},
		{Processor: "K8", Stack: "PHpc", Bench: "null", Pattern: "rr"}, // unsupported pattern
	}
	for _, req := range bad {
		if _, err := s.Measure(context.Background(), req); err == nil {
			t.Errorf("Measure(%+v) succeeded, want error", req)
		}
	}
}

// TestConcurrentSameShardDeterministic is the issue's core acceptance
// property: concurrent requests on the same (processor, stack) shard
// return byte-identical results, no matter which pooled worker serves
// them or how execution interleaves with other traffic on the shard.
func TestConcurrentSameShardDeterministic(t *testing.T) {
	s := New(Config{WorkersPerShard: 3})
	ctx := context.Background()

	// Reference responses computed on a quiet service.
	ref := New(Config{WorkersPerShard: 1})
	reqs := []api.MeasureRequest{
		{Processor: "K8", Stack: "pc", Bench: "loop:500", Pattern: "rr", Runs: 4, Seed: 7},
		{Processor: "K8", Stack: "pc", Bench: "loop:2000", Pattern: "ar", Runs: 4, Seed: 9},
		{Processor: "K8", Stack: "pc", Bench: "null", Pattern: "ao", Runs: 4, Calibrate: true},
		{Processor: "K8", Stack: "pc", Bench: "array:300", Pattern: "ro", Runs: 4, Events: []string{"CPU_CLK_UNHALTED"}},
	}
	want := make([]string, len(reqs))
	for i, req := range reqs {
		want[i] = respBytes(t, measure(t, ref, req))
	}

	const rounds = 8
	var wg sync.WaitGroup
	got := make([][]string, len(reqs))
	for i := range reqs {
		got[i] = make([]string, rounds)
		for r := 0; r < rounds; r++ {
			wg.Add(1)
			go func(i, r int) {
				defer wg.Done()
				resp, err := s.Measure(ctx, reqs[i])
				if err != nil {
					t.Errorf("concurrent Measure: %v", err)
					return
				}
				b, err := json.Marshal(resp)
				if err != nil {
					t.Errorf("marshal: %v", err)
					return
				}
				got[i][r] = string(b)
			}(i, r)
		}
	}
	wg.Wait()

	for i := range reqs {
		for r := 0; r < rounds; r++ {
			if got[i][r] != want[i] {
				t.Errorf("request %d round %d: response diverged from quiet-service reference\ngot  %s\nwant %s",
					i, r, got[i][r], want[i])
			}
		}
	}
}

// TestMixedShardsConcurrent drives 2 processors x 2 stacks in flight
// simultaneously and checks each configuration stays deterministic.
func TestMixedShardsConcurrent(t *testing.T) {
	s := New(Config{WorkersPerShard: 2})
	ctx := context.Background()
	reqs := []api.MeasureRequest{
		{Processor: "K8", Stack: "pc", Bench: "loop:400", Pattern: "rr", Runs: 3},
		{Processor: "K8", Stack: "pm", Bench: "loop:400", Pattern: "rr", Runs: 3},
		{Processor: "CD", Stack: "pc", Bench: "loop:400", Pattern: "rr", Runs: 3},
		{Processor: "CD", Stack: "PHpm", Bench: "loop:400", Pattern: "ar", Runs: 3},
	}

	type result struct {
		idx  int
		body string
	}
	const perReq = 6
	results := make(chan result, len(reqs)*perReq)
	var wg sync.WaitGroup
	for i := range reqs {
		for r := 0; r < perReq; r++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, err := s.Measure(ctx, reqs[i])
				if err != nil {
					t.Errorf("Measure: %v", err)
					return
				}
				b, _ := json.Marshal(resp)
				results <- result{i, string(b)}
			}(i)
		}
	}
	wg.Wait()
	close(results)

	first := make(map[int]string)
	for res := range results {
		if prev, ok := first[res.idx]; !ok {
			first[res.idx] = res.body
		} else if prev != res.body {
			t.Errorf("request %d: divergent concurrent responses", res.idx)
		}
	}
	if len(first) != len(reqs) {
		t.Fatalf("got results for %d configurations, want %d", len(first), len(reqs))
	}

	h := s.Health()
	if len(h.Shards) != 4 {
		t.Errorf("got %d shards, want 4", len(h.Shards))
	}
}

// TestCalibrationCacheWarm checks the second calibrated request hits
// the cache rather than re-running calibration.
func TestCalibrationCacheWarm(t *testing.T) {
	s := New(Config{WorkersPerShard: 2, CalibrationRuns: 9})
	req := api.MeasureRequest{
		Processor: "CD", Stack: "pc", Bench: "loop:100", Pattern: "rr", Runs: 2, Calibrate: true,
	}
	r1 := measure(t, s, req)
	if s.calMisses.Load() != 1 || s.calHits.Load() != 0 {
		t.Fatalf("after cold request: misses=%d hits=%d, want 1/0", s.calMisses.Load(), s.calHits.Load())
	}
	if r1.Calibration == nil || r1.Calibration.Samples != 9 {
		t.Fatalf("cold calibration not reported: %+v", r1.Calibration)
	}

	req.Seed = 99 // different measurement, same calibration configuration
	r2 := measure(t, s, req)
	if s.calMisses.Load() != 1 || s.calHits.Load() != 1 {
		t.Errorf("after warm request: misses=%d hits=%d, want 1/1", s.calMisses.Load(), s.calHits.Load())
	}
	if r1.Calibration.Offset != r2.Calibration.Offset {
		t.Errorf("calibration offset changed between requests: %v vs %v",
			r1.Calibration.Offset, r2.Calibration.Offset)
	}
	if len(r2.CalibratedErrors) != 2 {
		t.Errorf("calibrated errors missing: %+v", r2.CalibratedErrors)
	}

	// A different pattern needs its own calibration entry.
	req.Pattern = "ar"
	measure(t, s, req)
	if s.calMisses.Load() != 2 {
		t.Errorf("distinct configuration did not calibrate: misses=%d", s.calMisses.Load())
	}
}

// TestCalibrationConcurrentSingleCompute checks that many concurrent
// cold calibrated requests compute the calibration exactly once.
func TestCalibrationConcurrentSingleCompute(t *testing.T) {
	s := New(Config{WorkersPerShard: 2, CalibrationRuns: 7})
	req := api.MeasureRequest{
		Processor: "K8", Stack: "pm", Bench: "null", Pattern: "rr", Runs: 1, Calibrate: true,
	}
	var wg sync.WaitGroup
	offsets := make([]float64, 12)
	for i := range offsets {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct seeds defeat request coalescing, so each goroutine
			// truly executes and needs the calibration.
			r := req
			r.Seed = uint64(i + 1)
			resp, err := s.Measure(context.Background(), r)
			if err != nil {
				t.Errorf("Measure: %v", err)
				return
			}
			offsets[i] = resp.Calibration.Offset
		}(i)
	}
	wg.Wait()
	if s.calMisses.Load() != 1 {
		t.Errorf("calibration computed %d times, want 1", s.calMisses.Load())
	}
	for i, off := range offsets {
		if off != offsets[0] {
			t.Errorf("offset[%d] = %v diverges from %v", i, off, offsets[0])
		}
	}
}

// TestCoalescing checks identical concurrent requests share one
// execution.
func TestCoalescing(t *testing.T) {
	s := New(Config{WorkersPerShard: 1})
	req := api.MeasureRequest{
		Processor: "PD", Stack: "pc", Bench: "loop:5000", Pattern: "rr", Runs: 8,
	}
	const n = 16
	bodies := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := s.Measure(context.Background(), req)
			if err != nil {
				t.Errorf("Measure: %v", err)
				return
			}
			b, _ := json.Marshal(resp)
			bodies[i] = string(b)
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if bodies[i] != bodies[0] {
			t.Errorf("coalesced body %d diverges", i)
		}
	}
	if s.coalesced.Load() == 0 {
		t.Log("no requests coalesced (all executions missed each other); determinism still verified")
	}
	if s.requests.Load() != n {
		t.Errorf("requests counter = %d, want %d", s.requests.Load(), n)
	}
}

// TestPooledWorkerMatchesFreshSystem checks history-independence
// directly: a worker that has served arbitrary traffic measures
// byte-identically to a brand new service.
func TestPooledWorkerMatchesFreshSystem(t *testing.T) {
	dirty := New(Config{WorkersPerShard: 1})
	// Dirty the single worker with varied traffic, including cycle
	// counting (which accumulates fractional state) and calibration.
	for _, warm := range []api.MeasureRequest{
		{Processor: "CD", Stack: "PLpc", Bench: "loop:777", Pattern: "rr", Runs: 3, Events: []string{"CPU_CLK_UNHALTED"}},
		{Processor: "CD", Stack: "PLpc", Bench: "array:200", Pattern: "ao", Runs: 2, Calibrate: true},
		{Processor: "CD", Stack: "PLpc", Bench: "null", Pattern: "ar", Runs: 5, Mode: "user+kernel"},
	} {
		measure(t, dirty, warm)
	}

	probe := api.MeasureRequest{
		Processor: "CD", Stack: "PLpc", Bench: "loop:1234", Pattern: "rr", Runs: 5,
		Events: []string{"CPU_CLK_UNHALTED"}, Seed: 42,
	}
	fresh := New(Config{WorkersPerShard: 1})
	got := respBytes(t, measure(t, dirty, probe))
	want := respBytes(t, measure(t, fresh, probe))
	if got != want {
		t.Errorf("dirty worker diverges from fresh system\ngot  %s\nwant %s", got, want)
	}
}

// TestCoalescedJoinerSurvivesLeaderCancel pins the coalescing retry:
// when the leader's client cancels mid-execution, joined callers with
// live contexts must retry (becoming leader) rather than inherit the
// stranger's cancellation.
func TestCoalescedJoinerSurvivesLeaderCancel(t *testing.T) {
	s := New(Config{WorkersPerShard: 1})
	req := api.MeasureRequest{
		Processor: "K8", Stack: "pc", Bench: "loop:20000", Pattern: "rr", Runs: 300,
	}

	leaderCtx, cancel := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, err := s.Measure(leaderCtx, req)
		leaderDone <- err
	}()
	// Wait for the leader's call to be in flight.
	for i := 0; i < 2000; i++ {
		if s.flight.Len() > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	joinDone := make(chan error, 1)
	go func() {
		_, err := s.Measure(context.Background(), req)
		joinDone <- err
	}()
	time.Sleep(5 * time.Millisecond) // let the joiner coalesce
	cancel()

	if err := <-joinDone; err != nil {
		t.Errorf("joiner with live context failed after leader cancel: %v", err)
	}
	// The leader either got canceled or finished first; both are fine,
	// anything else is a bug.
	if err := <-leaderDone; err != nil && !errors.Is(err, context.Canceled) {
		t.Errorf("leader error = %v, want nil or context.Canceled", err)
	}
}

func TestExperimentRunsBounded(t *testing.T) {
	s := New(Config{})
	_, err := s.Experiment(context.Background(), api.ExperimentRequest{ID: "table2", Runs: api.MaxExperimentRuns + 1})
	if !errors.Is(err, api.ErrBadRequest) {
		t.Errorf("oversized experiment runs: err = %v, want ErrBadRequest", err)
	}
}

func TestExperiment(t *testing.T) {
	s := New(Config{})
	resp, err := s.Experiment(context.Background(), api.ExperimentRequest{ID: "table2"})
	if err != nil {
		t.Fatalf("Experiment: %v", err)
	}
	if resp.Title == "" || resp.Text == "" {
		t.Errorf("empty experiment response: %+v", resp)
	}
	if _, err := s.Experiment(context.Background(), api.ExperimentRequest{ID: "nope"}); err == nil {
		t.Error("unknown experiment succeeded, want error")
	}
}

func TestHealth(t *testing.T) {
	s := New(Config{WorkersPerShard: 2})
	measure(t, s, api.MeasureRequest{Processor: "K8", Stack: "pc", Bench: "null"})
	h := s.Health()
	if h.Status != "ok" {
		t.Errorf("status = %q, want ok", h.Status)
	}
	if len(h.Shards) != 1 || h.Shards[0].Workers != 2 || h.Shards[0].Idle != 2 {
		t.Errorf("shard health = %+v", h.Shards)
	}
	if h.Stats.Requests != 1 {
		t.Errorf("requests = %d, want 1", h.Stats.Requests)
	}
}
