package service

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"repro/internal/accuracy"
	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mpx"
	"repro/internal/sampling"
	stackpkg "repro/internal/stack"
	"repro/internal/telemetry"
)

// Analyze serves one batch of analysis items. Items are independent:
// they run concurrently (each on a worker from its own shard), errors
// are reported per batch (the lowest-index failing item fails the
// batch, since a partial analysis would be indistinguishable from a
// complete one), and results come back in item order. Like Measure, the response for a
// normalized batch is deterministic, and identical in-flight items are
// coalesced.
func (s *Service) Analyze(ctx context.Context, req api.AnalyzeRequest) (*api.AnalyzeResponse, error) {
	wantTrace := req.Trace
	tr := telemetry.FromContext(ctx)
	if wantTrace && tr == nil {
		tr = telemetry.New()
		ctx = telemetry.NewContext(ctx, tr)
	}
	sp := tr.Start(telemetry.SpanCanonicalize)
	norm, err := req.Normalized()
	sp.End()
	if err != nil {
		return nil, err
	}
	s.analyzes.Add(uint64(len(norm.Items)))

	resp := &api.AnalyzeResponse{Results: make([]api.AnalyzeResult, len(norm.Items))}
	var wg sync.WaitGroup
	errs := make([]error, len(norm.Items))
	for i, item := range norm.Items {
		wg.Add(1)
		go func(i int, item api.AnalyzeItem) {
			defer wg.Done()
			res, err := s.analyzeItem(ctx, i, item)
			if err != nil {
				errs[i] = err
				return
			}
			resp.Results[i] = *res
		}(i, item)
	}
	wg.Wait()
	// Report the lowest-index failure so an identical batch fails
	// identically regardless of goroutine scheduling.
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("item %d: %w", i, err)
		}
	}
	if wantTrace {
		// The response is assembled fresh per call (only item results are
		// flight-shared, and those are copied in by value), so the
		// timing-dependent trace block can be attached directly.
		resp.Trace = api.TraceInfoFrom(tr)
	}
	return resp, nil
}

// analyzeItem runs one normalized item with in-flight coalescing.
// Batch coalescing is per item: a followed item records its own
// coalesce-wait span annotated with the item index, while the batch as
// a whole is never marked coalesced (other items may have executed).
func (s *Service) analyzeItem(ctx context.Context, i int, item api.AnalyzeItem) (*api.AnalyzeResult, error) {
	tr := telemetry.FromContext(ctx)
	wait := tr.Clock()
	res, joined, err := s.aflight.Do(ctx, item.Key(), func() (*api.AnalyzeResult, error) {
		return s.executeAnalyze(ctx, item)
	})
	if joined {
		s.coalesced.Add(1)
		tr.AddSince(telemetry.SpanCoalesceWait, wait,
			telemetry.Annotation{Key: "item", Value: strconv.Itoa(i)})
	} else {
		s.leaders.Add(1)
	}
	return res, err
}

// executeAnalyze runs every requested error model of one item on a
// worker from the item's shard. Each phase starts from a Reset system,
// so the result is a pure function of the normalized item.
func (s *Service) executeAnalyze(ctx context.Context, item api.AnalyzeItem) (*api.AnalyzeResult, error) {
	tr := telemetry.FromContext(ctx)
	sh, err := s.shard(item.Measure)
	if err != nil {
		return nil, err
	}
	sp := tr.Start(telemetry.SpanPoolAcquire).Annotate("shard", sh.key)
	sys, err := sh.checkout(ctx)
	sp.End()
	if err != nil {
		return nil, err
	}
	defer sh.checkin(sys)

	// Overhead subtraction always consults the calibration cache: the
	// calibrated fixed error is the first correction term of the
	// counting model (the paper's Section 8 guideline).
	cal, err := s.calibration(ctx, sh, item.Measure, sys)
	if err != nil {
		return nil, err
	}
	res := &api.AnalyzeResult{
		Item: item,
		Calibration: &api.CalibrationInfo{
			Offset:   cal.Offset,
			Strategy: cal.Strategy,
			Samples:  cal.Samples,
		},
	}

	bench, err := api.ParseBench(item.Measure.Bench)
	if err != nil {
		return nil, err
	}
	res.Expected = bench.ExpectedInstr

	if item.MpxCounters > 0 {
		sp = tr.Start(telemetry.SpanEngineRun).Annotate("phase", "multiplexed")
		err = s.analyzeMultiplexed(ctx, item, sys, bench, res)
	} else {
		sp = tr.Start(telemetry.SpanEngineRun).Annotate("phase", "counting")
		err = s.analyzeCounting(ctx, item, sys, cal, res)
	}
	sp.End()
	if err != nil {
		return nil, err
	}
	if item.SamplingPeriod > 0 {
		sp = tr.Start(telemetry.SpanEngineRun).Annotate("phase", "sampling")
		err = s.analyzeSampling(ctx, item, sys, bench, res)
		sp.End()
		if err != nil {
			return nil, err
		}
	}
	if item.Duet != nil {
		sp = tr.Start(telemetry.SpanEngineRun).Annotate("phase", "duet")
		err = s.analyzeDuet(ctx, item, sys, res)
		sp.End()
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// analyzeCounting measures the item's configuration through its full
// infrastructure stack and builds the per-event counting estimates: the
// run-mean count, overhead-corrected on the first (calibrated) counter,
// with dispersion intervals.
func (s *Service) analyzeCounting(ctx context.Context, item api.AnalyzeItem, sys *stackpkg.System, cal core.Calibration, res *api.AnalyzeResult) error {
	norm := item.Measure
	creq, err := norm.Build()
	if err != nil {
		return err
	}
	creq.Runner = s.runnerFor(norm.Engine)
	sys.Reset()
	counts := make([][]float64, len(norm.Events))
	for i := 0; i < norm.Runs; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		creq.Seed = norm.Seed + uint64(i)
		m, err := sys.Measure(creq)
		if err != nil {
			return err
		}
		res.Expected = m.Expected
		for ev := range norm.Events {
			counts[ev] = append(counts[ev], float64(m.Deltas[ev]))
		}
	}
	for ev, evCounts := range counts {
		// The null-benchmark calibration estimates the fixed error of
		// the first counter's instruction count; other events carry no
		// overhead term, only their dispersion interval.
		overhead := 0.0
		if ev == 0 {
			overhead = cal.Offset
		}
		est, err := accuracy.FromRuns(evCounts, overhead, item.Confidence)
		if err != nil {
			return err
		}
		res.Counting = append(res.Counting, api.EstimateInfoFrom(norm.Events[ev], est))
	}
	return nil
}

// analyzeMultiplexed estimates the item's events by time-sharing
// MpxCounters hardware counters, then applies the extrapolation error
// model: Poisson noise on the observed share plus run-to-run phase
// dispersion.
func (s *Service) analyzeMultiplexed(ctx context.Context, item api.AnalyzeItem, sys *stackpkg.System, bench *core.Benchmark, res *api.AnalyzeResult) error {
	norm := item.Measure
	events := make([]cpu.Event, len(norm.Events))
	for i, name := range norm.Events {
		ev, err := cpu.EventByName(name)
		if err != nil {
			return err
		}
		events[i] = ev
	}
	sys.Reset()
	m, err := mpx.New(sys.Kernel, item.MpxCounters, events)
	if err != nil {
		return err
	}
	// The rotation callback must not outlive this analysis: the worker
	// goes back into the pool when we return.
	defer m.Close()
	m.Runner = s.runnerFor(norm.Engine)

	prog := bench.RawProgram()
	perEvent := make([][]mpx.Estimate, len(events))
	for i := 0; i < norm.Runs; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		ests, err := m.Run(prog, norm.Seed+uint64(i))
		if err != nil {
			return err
		}
		for ev, est := range ests {
			perEvent[ev] = append(perEvent[ev], est)
		}
	}
	for ev, runs := range perEvent {
		est, err := accuracy.Multiplex(runs, item.Confidence)
		if err != nil {
			return err
		}
		res.Multiplexed = append(res.Multiplexed, api.EstimateInfoFrom(norm.Events[ev], est))
	}
	return nil
}

// analyzeSampling estimates the first event with the sampling usage
// model at the item's overflow period and applies the quantization
// error model: the deterministic one-period bracket with the midpoint
// correction.
func (s *Service) analyzeSampling(ctx context.Context, item api.AnalyzeItem, sys *stackpkg.System, bench *core.Benchmark, res *api.AnalyzeResult) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	norm := item.Measure
	ev, err := cpu.EventByName(norm.Events[0])
	if err != nil {
		return err
	}
	sys.Reset()
	p, err := sampling.New(sys.Kernel, ev, item.SamplingPeriod)
	if err != nil {
		return err
	}
	p.Runner = s.runnerFor(norm.Engine)
	prof, err := p.Run(bench.RawProgram(), norm.Seed)
	if err != nil {
		return err
	}
	est, err := accuracy.Sampling(len(prof.Samples), item.SamplingPeriod, item.Confidence)
	if err != nil {
		return err
	}
	info := api.EstimateInfoFrom(norm.Events[0], est)
	res.Sampling = &info
	return nil
}

// analyzeDuet interleaves the item's configuration A with its paired
// configuration B on this one worker — A_1 B_1 A_2 B_2 ... — and
// reports the paired analysis of their counter-0 errors. Interleaving
// on one system is what makes the pairs share their interference;
// errors (not raw counts) are paired so configurations with different
// benchmarks still compare their infrastructures.
func (s *Service) analyzeDuet(ctx context.Context, item api.AnalyzeItem, sys *stackpkg.System, res *api.AnalyzeResult) error {
	// Pairing compares counter-0 errors, so only the first event is
	// measured here. This also keeps duet valid on multiplexed items,
	// whose widened event list exceeds the dedicated-counter limit.
	measureA := item.Measure
	measureA.Events = measureA.Events[:1]
	reqA, err := measureA.Build()
	if err != nil {
		return err
	}
	reqB, err := item.Duet.Build()
	if err != nil {
		return err
	}
	reqA.Runner = s.runnerFor(item.Measure.Engine)
	reqB.Runner = s.runnerFor(item.Duet.Engine)
	sys.Reset()
	n := item.Measure.Runs
	errsA := make([]float64, 0, n)
	errsB := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		reqA.Seed = item.Measure.Seed + uint64(i)
		reqB.Seed = item.Duet.Seed + uint64(i)
		mA, err := sys.Measure(reqA)
		if err != nil {
			return err
		}
		mB, err := sys.Measure(reqB)
		if err != nil {
			return err
		}
		errsA = append(errsA, float64(mA.Error(0, reqA.Mode)))
		errsB = append(errsB, float64(mB.Error(0, reqB.Mode)))
	}
	duet, err := accuracy.Duet(errsA, errsB, item.Confidence)
	if err != nil {
		return err
	}
	res.Duet = &api.DuetInfo{
		Request:        *item.Duet,
		Deltas:         duet.Deltas,
		Mean:           duet.Mean,
		Lo:             duet.CI.Lo,
		Hi:             duet.CI.Hi,
		VarPaired:      duet.VarPaired,
		VarIndependent: duet.VarIndependent,
		Cancellation:   duet.Cancellation,
	}
	return nil
}
