package service

import (
	"context"
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/accuracy"
	"repro/internal/api"
)

func TestAnalyzeCountingDeterministicAndCorrected(t *testing.T) {
	svc := New(Config{WorkersPerShard: 2, CalibrationRuns: 9})
	req := api.AnalyzeRequest{Items: []api.AnalyzeItem{{
		Measure: api.MeasureRequest{
			Processor: "K8", Stack: "pc", Bench: "loop:100000", Pattern: "rr", Runs: 8,
		},
	}}}
	r1, err := svc.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := svc.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(r1)
	b2, _ := json.Marshal(r2)
	if string(b1) != string(b2) {
		t.Fatalf("repeated identical /analyze bodies differ:\n%s\n%s", b1, b2)
	}

	res := r1.Results[0]
	if res.Expected != 300001 {
		t.Errorf("Expected = %d, want 300001", res.Expected)
	}
	if len(res.Counting) != 1 {
		t.Fatalf("Counting estimates = %d, want 1", len(res.Counting))
	}
	est := res.Counting[0]
	if est.Event != "INSTR_RETIRED" {
		t.Errorf("event = %s", est.Event)
	}
	// The raw count includes the infrastructure overhead; the corrected
	// estimate must subtract the calibrated offset and land far closer
	// to the analytic truth.
	if res.Calibration == nil || res.Calibration.Offset <= 0 {
		t.Fatalf("calibration not applied: %+v", res.Calibration)
	}
	rawErr := est.Raw - float64(res.Expected)
	corrErr := est.Corrected - float64(res.Expected)
	if abs(corrErr) >= abs(rawErr) {
		t.Errorf("correction did not improve: raw error %v, corrected error %v", rawErr, corrErr)
	}
	if abs(corrErr) > 10 {
		t.Errorf("corrected error %v instructions, want within a few", corrErr)
	}
	if est.Lo > est.Corrected || est.Hi < est.Corrected {
		t.Errorf("CI [%v, %v] excludes its own point %v", est.Lo, est.Hi, est.Corrected)
	}
	if len(est.Terms) != 1 || est.Terms[0].Name != accuracy.TermOverhead {
		t.Errorf("Terms = %+v, want one overhead term", est.Terms)
	}
}

func TestAnalyzeMultiplexedWithinCI(t *testing.T) {
	svc := New(Config{WorkersPerShard: 1, CalibrationRuns: 5})
	req := api.AnalyzeRequest{Items: []api.AnalyzeItem{{
		Measure: api.MeasureRequest{
			Processor: "K8", Stack: "pc", Bench: "loop:2000000", Pattern: "ar",
			Events: []string{"INSTR_RETIRED", "CPU_CLK_UNHALTED", "BR_MISP_RETIRED",
				"ICACHE_MISS", "DCACHE_MISS", "ITLB_MISS"},
			Runs: 3,
		},
		MpxCounters: 2, // 6 events over 2 counters: 3 rotation groups
	}}}
	resp, err := svc.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	res := resp.Results[0]
	if len(res.Counting) != 0 {
		t.Errorf("multiplexed item also produced counting estimates")
	}
	if len(res.Multiplexed) != 6 {
		t.Fatalf("Multiplexed estimates = %d, want 6", len(res.Multiplexed))
	}
	instr := res.Multiplexed[0]
	if instr.Event != "INSTR_RETIRED" {
		t.Fatalf("first estimate is %s", instr.Event)
	}
	// The acceptance contract: a multiplexed request returns a
	// corrected estimate whose stated interval contains the analytic
	// ground truth (the workload is stationary, so interpolation is
	// nearly exact and the Poisson interval covers the residual).
	truth := float64(res.Expected)
	if instr.Lo > truth || truth > instr.Hi {
		t.Errorf("truth %v outside multiplexed CI [%v, %v] (corrected %v)",
			truth, instr.Lo, instr.Hi, instr.Corrected)
	}
	// Extrapolation must be recorded: with 3 groups each event was
	// observed roughly a third of the time.
	found := false
	for _, term := range instr.Terms {
		if term.Name == accuracy.TermMpxExtrapolation && term.Value != 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("no extrapolation term on %+v", instr.Terms)
	}

	// Determinism across repeated identical calls.
	resp2, err := svc.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(resp)
	b2, _ := json.Marshal(resp2)
	if string(b1) != string(b2) {
		t.Errorf("repeated multiplexed analyze bodies differ")
	}
}

func TestAnalyzeSamplingBracketsTruth(t *testing.T) {
	svc := New(Config{WorkersPerShard: 1, CalibrationRuns: 5})
	req := api.AnalyzeRequest{Items: []api.AnalyzeItem{{
		Measure: api.MeasureRequest{
			Processor: "K8", Stack: "pc", Bench: "loop:1000000", Pattern: "ar",
		},
		SamplingPeriod: 50_000,
	}}}
	resp, err := svc.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	res := resp.Results[0]
	if res.Sampling == nil {
		t.Fatal("no sampling estimate")
	}
	truth := float64(res.Expected)
	if res.Sampling.Lo > truth || truth > res.Sampling.Hi {
		t.Errorf("truth %v outside sampling bracket [%v, %v]", truth, res.Sampling.Lo, res.Sampling.Hi)
	}
	if res.Sampling.Hi-res.Sampling.Lo != 50_000 {
		t.Errorf("bracket width = %v, want one period", res.Sampling.Hi-res.Sampling.Lo)
	}
}

func TestAnalyzeDuetPairsAndCancels(t *testing.T) {
	svc := New(Config{WorkersPerShard: 1, CalibrationRuns: 5})
	duet := api.MeasureRequest{Processor: "K8", Stack: "pc", Bench: "null", Pattern: "rr"}
	req := api.AnalyzeRequest{Items: []api.AnalyzeItem{{
		Measure: api.MeasureRequest{
			Processor: "K8", Stack: "pc", Bench: "loop:50000", Pattern: "rr", Runs: 12,
		},
		Duet: &duet,
	}}}
	resp, err := svc.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	res := resp.Results[0]
	if res.Duet == nil {
		t.Fatal("no duet analysis")
	}
	if len(res.Duet.Deltas) != 12 {
		t.Fatalf("duet deltas = %d, want 12 (one per pair)", len(res.Duet.Deltas))
	}
	// Both configurations read the counters the same way with the same
	// per-pair seeds, so the jitter they observe is shared and the
	// paired delta must not be noisier than independent differencing.
	if res.Duet.VarPaired > res.Duet.VarIndependent {
		t.Errorf("VarPaired %v > VarIndependent %v: pairing added noise",
			res.Duet.VarPaired, res.Duet.VarIndependent)
	}
	if res.Duet.Lo > res.Duet.Mean || res.Duet.Mean > res.Duet.Hi {
		t.Errorf("duet CI [%v, %v] excludes mean %v", res.Duet.Lo, res.Duet.Hi, res.Duet.Mean)
	}

	// Determinism of the full duet body.
	resp2, err := svc.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(resp)
	b2, _ := json.Marshal(resp2)
	if string(b1) != string(b2) {
		t.Errorf("repeated duet analyze bodies differ")
	}
}

// TestAnalyzeDuetCombinesWithMultiplex guards the combination the API
// accepts: a multiplexed item (events beyond the dedicated-counter
// limit) with a duet pair. The duet phase must measure only the first
// event, not the widened list.
func TestAnalyzeDuetCombinesWithMultiplex(t *testing.T) {
	svc := New(Config{WorkersPerShard: 1, CalibrationRuns: 5})
	duet := api.MeasureRequest{Processor: "CD", Stack: "pc", Bench: "null"}
	resp, err := svc.Analyze(context.Background(), api.AnalyzeRequest{Items: []api.AnalyzeItem{{
		Measure: api.MeasureRequest{
			Processor: "CD", Stack: "pc", Bench: "loop:200000",
			// CD has 2 programmable counters; 3 events need multiplexing.
			Events: []string{"INSTR_RETIRED", "CPU_CLK_UNHALTED", "BR_MISP_RETIRED"},
			Runs:   3,
		},
		MpxCounters: 1,
		Duet:        &duet,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	res := resp.Results[0]
	if len(res.Multiplexed) != 3 {
		t.Errorf("Multiplexed = %d estimates, want 3", len(res.Multiplexed))
	}
	if res.Duet == nil || len(res.Duet.Deltas) != 3 {
		t.Errorf("duet missing or mis-paired: %+v", res.Duet)
	}
}

func TestAnalyzeBatchErrorDeterministic(t *testing.T) {
	svc := New(Config{WorkersPerShard: 1, CalibrationRuns: 5})
	// Items 1 and 3 both fail at execution time (rr is inexpressible on
	// the PAPI high-level stack); the reported error must name the
	// lowest failing index on every attempt.
	batch := api.AnalyzeRequest{Items: []api.AnalyzeItem{
		{Measure: api.MeasureRequest{Processor: "K8", Stack: "pc", Bench: "null"}},
		{Measure: api.MeasureRequest{Processor: "K8", Stack: "PHpc", Bench: "null", Pattern: "rr"}},
		{Measure: api.MeasureRequest{Processor: "K8", Stack: "pc", Bench: "loop:1000"}},
		{Measure: api.MeasureRequest{Processor: "CD", Stack: "PHpm", Bench: "null", Pattern: "ro"}},
	}}
	for attempt := 0; attempt < 5; attempt++ {
		_, err := svc.Analyze(context.Background(), batch)
		if err == nil {
			t.Fatal("failing batch accepted")
		}
		if got := err.Error(); len(got) < 7 || got[:7] != "item 1:" {
			t.Fatalf("attempt %d: error = %q, want it to name item 1", attempt, err)
		}
	}
}

func TestAnalyzeBatchOrderAndConcurrency(t *testing.T) {
	svc := New(Config{WorkersPerShard: 2, CalibrationRuns: 5})
	batch := api.AnalyzeRequest{Items: []api.AnalyzeItem{
		{Measure: api.MeasureRequest{Processor: "K8", Stack: "pc", Bench: "loop:1000", Runs: 2}},
		{Measure: api.MeasureRequest{Processor: "CD", Stack: "pm", Bench: "loop:2000", Runs: 2}},
		{Measure: api.MeasureRequest{Processor: "K8", Stack: "pc", Bench: "null", Runs: 2}},
	}}
	want, err := svc.Analyze(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if want.Results[0].Expected != 3001 || want.Results[1].Expected != 6001 || want.Results[2].Expected != 0 {
		t.Fatalf("results out of order: %d %d %d",
			want.Results[0].Expected, want.Results[1].Expected, want.Results[2].Expected)
	}
	wantBody, _ := json.Marshal(want)

	// Concurrent identical batches must all observe the same bytes.
	var wg sync.WaitGroup
	bodies := make([]string, 8)
	for i := range bodies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := svc.Analyze(context.Background(), batch)
			if err != nil {
				t.Error(err)
				return
			}
			b, _ := json.Marshal(got)
			bodies[i] = string(b)
		}(i)
	}
	wg.Wait()
	for i, b := range bodies {
		if b != string(wantBody) {
			t.Errorf("concurrent batch %d diverged", i)
		}
	}
}

func TestAnalyzeRejectsBadItems(t *testing.T) {
	svc := New(Config{WorkersPerShard: 1})
	cases := []api.AnalyzeRequest{
		{}, // empty batch
		{Items: []api.AnalyzeItem{{Measure: api.MeasureRequest{Processor: "Z80", Stack: "pc"}}}},
		{Items: []api.AnalyzeItem{{
			Measure:    api.MeasureRequest{Processor: "K8", Stack: "pc"},
			Confidence: 0.2,
		}}},
		{Items: []api.AnalyzeItem{{
			Measure:     api.MeasureRequest{Processor: "K8", Stack: "pc"},
			MpxCounters: 99,
		}}},
		{Items: []api.AnalyzeItem{{
			Measure:        api.MeasureRequest{Processor: "K8", Stack: "pc"},
			SamplingPeriod: 1,
		}}},
		{Items: []api.AnalyzeItem{{
			Measure: api.MeasureRequest{Processor: "K8", Stack: "pc"},
			// duet on a different shard
			Duet: &api.MeasureRequest{Processor: "CD", Stack: "pc"},
		}}},
	}
	for i, req := range cases {
		if _, err := svc.Analyze(context.Background(), req); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// TestAnalyzeLeavesWorkerClean runs a multiplexed analysis and then a
// plain measurement on a size-1 pool: if the multiplexer's tick
// listener leaked into the pooled worker, the follow-up measurement
// would diverge from a fresh system's.
func TestAnalyzeLeavesWorkerClean(t *testing.T) {
	svc := New(Config{WorkersPerShard: 1, CalibrationRuns: 5})
	mreq := api.MeasureRequest{Processor: "K8", Stack: "pc", Bench: "loop:10000", Pattern: "rr", Runs: 3}
	before, err := svc.Measure(context.Background(), mreq)
	if err != nil {
		t.Fatal(err)
	}
	_, err = svc.Analyze(context.Background(), api.AnalyzeRequest{Items: []api.AnalyzeItem{{
		Measure: api.MeasureRequest{
			Processor: "K8", Stack: "pc", Bench: "loop:500000", Pattern: "ar",
			Events: []string{"INSTR_RETIRED", "CPU_CLK_UNHALTED", "BR_MISP_RETIRED"},
			Runs:   2,
		},
		MpxCounters: 1,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	after, err := svc.Measure(context.Background(), mreq)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(before)
	b2, _ := json.Marshal(after)
	if string(b1) != string(b2) {
		t.Errorf("measurement after multiplexed analysis diverged:\n%s\n%s", b1, b2)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
