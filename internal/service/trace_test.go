package service

import (
	"context"
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/api"
	"repro/internal/telemetry"
)

// stripTrace marshals a response and deletes the trace block, so
// traced and untraced responses can be compared byte-for-byte on
// everything the determinism contract covers.
func stripTrace(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	delete(m, "trace")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("remarshal: %v", err)
	}
	return string(out)
}

// spanNames collects the set of span names present in a trace block.
func spanNames(ti *api.TraceInfo) map[string]bool {
	got := make(map[string]bool)
	if ti == nil {
		return got
	}
	for _, sp := range ti.Spans {
		got[sp.Name] = true
	}
	return got
}

// TestMeasureTraceOptIn pins the tentpole contract on /measure: a
// traced request carries a span trace, an untraced one carries none,
// and the two responses are byte-identical once the trace block is
// stripped — tracing is presentation, never semantics.
func TestMeasureTraceOptIn(t *testing.T) {
	s := New(Config{WorkersPerShard: 1})
	req := api.MeasureRequest{
		Processor: "K8", Stack: "pc", Bench: "loop:1000", Pattern: "rr",
		Runs: 3, Calibrate: true,
	}

	plain := measure(t, s, req)
	if plain.Trace != nil {
		t.Fatalf("untraced request got a trace block: %+v", plain.Trace)
	}

	traced := req
	traced.Trace = true
	withTrace := measure(t, s, traced)
	if withTrace.Trace == nil {
		t.Fatal("traced request got no trace block")
	}
	if withTrace.Trace.Coalesced {
		t.Error("uncontended traced request reported coalesced=true")
	}

	names := spanNames(withTrace.Trace)
	for _, want := range []string{
		telemetry.SpanCanonicalize,
		telemetry.SpanPoolAcquire,
		telemetry.SpanCalibrate,
		telemetry.SpanEngineRun,
		telemetry.SpanCorrect,
	} {
		if !names[want] {
			t.Errorf("traced /measure missing span %q (got %v)", want, names)
		}
	}
	if names[telemetry.SpanCoalesceWait] {
		t.Error("uncontended request recorded a coalesce-wait span")
	}
	catalogue := make(map[string]bool)
	for _, n := range telemetry.SpanNames() {
		catalogue[n] = true
	}
	for n := range names {
		if !catalogue[n] {
			t.Errorf("span %q not in the telemetry catalogue", n)
		}
	}

	// Echoed request must be in canonical form: trace flag stripped.
	if withTrace.Request.Trace {
		t.Error("response echoes a request with the trace flag still set")
	}
	if got, want := stripTrace(t, withTrace), stripTrace(t, plain); got != want {
		t.Errorf("traced response differs beyond the trace block:\n traced: %s\nuntraced: %s", got, want)
	}
}

// TestMeasureTraceCoalescedFollower checks follower truthfulness: when
// traced and untraced callers coalesce onto one flight, each follower's
// trace says coalesced=true and records its own coalesce-wait rather
// than replaying the leader's execution spans — while the response
// bodies stay byte-identical after stripping the trace.
func TestMeasureTraceCoalescedFollower(t *testing.T) {
	s := New(Config{WorkersPerShard: 1})
	req := api.MeasureRequest{
		Processor: "PD", Stack: "pc", Bench: "loop:5000", Pattern: "rr", Runs: 8,
	}
	traced := req
	traced.Trace = true

	const n = 16
	resps := make([]*api.MeasureResponse, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := req
			if i%2 == 0 {
				r = traced
			}
			resp, err := s.Measure(context.Background(), r)
			if err != nil {
				t.Errorf("Measure: %v", err)
				return
			}
			resps[i] = resp
		}(i)
	}
	wg.Wait()

	want := stripTrace(t, resps[0])
	followers := 0
	for i, resp := range resps {
		if resp == nil {
			t.Fatal("missing response")
		}
		if got := stripTrace(t, resp); got != want {
			t.Errorf("response %d diverges after stripping trace", i)
		}
		if i%2 == 1 {
			if resp.Trace != nil {
				t.Errorf("untraced caller %d received a trace block", i)
			}
			continue
		}
		if resp.Trace == nil {
			t.Errorf("traced caller %d received no trace block", i)
			continue
		}
		if !resp.Trace.Coalesced {
			continue // this caller led its flight
		}
		followers++
		names := spanNames(resp.Trace)
		if !names[telemetry.SpanCoalesceWait] {
			t.Errorf("coalesced follower %d has no coalesce-wait span", i)
		}
		// A follower never executed: the leader's execution spans must
		// not appear replayed in its trace.
		for _, leaderOnly := range []string{
			telemetry.SpanPoolAcquire, telemetry.SpanEngineRun, telemetry.SpanCorrect,
		} {
			if names[leaderOnly] {
				t.Errorf("coalesced follower %d replays leader span %q", i, leaderOnly)
			}
		}
	}
	if followers == 0 {
		t.Log("no traced caller coalesced (executions missed each other); strip-identity still verified")
	}
	if s.leaders.Load() == 0 {
		t.Error("leader counter never incremented")
	}
	if s.leaders.Load()+s.coalesced.Load() != n {
		t.Errorf("leaders(%d)+followers(%d) != %d requests",
			s.leaders.Load(), s.coalesced.Load(), n)
	}
}

// TestAnalyzeAndInferTraceOptIn covers the batch endpoints: traces are
// opt-in, annotated per item when coalescing, and stripping them
// restores byte-identity with the untraced response.
func TestAnalyzeAndInferTraceOptIn(t *testing.T) {
	s := New(Config{WorkersPerShard: 1})
	ctx := context.Background()

	areq := api.AnalyzeRequest{Items: []api.AnalyzeItem{{
		Measure:     api.MeasureRequest{Processor: "K8", Stack: "pc", Bench: "loop:1000", Runs: 4},
		MpxCounters: 2,
	}}}
	plain, err := s.Analyze(ctx, areq)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if plain.Trace != nil {
		t.Fatal("untraced analyze got a trace block")
	}
	atraced := areq
	atraced.Trace = true
	withTrace, err := s.Analyze(ctx, atraced)
	if err != nil {
		t.Fatalf("Analyze traced: %v", err)
	}
	if withTrace.Trace == nil || len(withTrace.Trace.Spans) == 0 {
		t.Fatal("traced analyze got no spans")
	}
	if withTrace.Trace.Coalesced {
		t.Error("batch response marked coalesced; only per-item waits may be")
	}
	if got, want := stripTrace(t, withTrace), stripTrace(t, plain); got != want {
		t.Errorf("traced analyze differs beyond trace:\n traced: %s\nuntraced: %s", got, want)
	}

	ireq := api.InferRequest{Items: []api.InferItem{{
		Processor: "K8",
		Inputs: []api.InferInput{
			{Event: "INSTR_RETIRED", Mean: 1000, Variance: 100},
			{Event: "CPU_CLK_UNHALTED", Mean: 2000, Variance: 400},
		},
	}}}
	iplain, err := s.Infer(ctx, ireq)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	if iplain.Trace != nil {
		t.Fatal("untraced infer got a trace block")
	}
	itraced := ireq
	itraced.Trace = true
	iwith, err := s.Infer(ctx, itraced)
	if err != nil {
		t.Fatalf("Infer traced: %v", err)
	}
	if iwith.Trace == nil {
		t.Fatal("traced infer got no trace block")
	}
	if !spanNames(iwith.Trace)[telemetry.SpanInferSolve] {
		t.Errorf("traced infer missing %s span", telemetry.SpanInferSolve)
	}
	if got, want := stripTrace(t, iwith), stripTrace(t, iplain); got != want {
		t.Errorf("traced infer differs beyond trace:\n traced: %s\nuntraced: %s", got, want)
	}
}
