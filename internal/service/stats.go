package service

import "sort"

// Stats is the single source of truth behind both operator views of
// the service: /healthz renders it as JSON (api.HealthResponse) and
// /metrics renders it as Prometheus exposition. One snapshot function
// means the two views can never disagree about what they report —
// they can only format it differently.
type Stats struct {
	// Requests, Analyzes, and Infers count accepted calls (batch items,
	// not batches, for the latter two).
	Requests uint64
	Analyzes uint64
	Infers   uint64
	// Coalesced counts calls served by joining an in-flight identical
	// request (followers); CoalesceLeaders counts the executions they
	// joined.
	Coalesced       uint64
	CoalesceLeaders uint64
	// CalibrationHits and CalibrationMisses count calibration-cache
	// lookups served warm versus computed.
	CalibrationHits   uint64
	CalibrationMisses uint64
	// PinnedWorkers is how many workers long-lived holders (monitoring
	// sessions, plan executions) currently hold.
	PinnedWorkers uint64
	// Calibrations is the calibration-cache size summed over shards.
	Calibrations int
	// Shards describes every built pool, sorted by key.
	Shards []ShardStats
	// Engines reports per-engine run counts and the shared compile
	// cache.
	Engines EngineStats
}

// ShardStats describes one system pool.
type ShardStats struct {
	Key          string
	Workers      int
	Idle         int
	InUse        int
	Calibrations int
}

// EngineStats reports execution-engine counters and the compile cache.
type EngineStats struct {
	InterpreterRuns int64
	CompiledRuns    int64
	CacheSize       int
	CacheCapacity   int
	CacheHits       int64
	CacheMisses     int64
	CacheEvictions  int64
}

// Stats snapshots every service counter and pool gauge. Counters are
// read individually without a global pause, so a snapshot taken under
// load is each value's own instant — consistent enough for both
// operator views, which is all it promises.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	keys := make([]string, 0, len(s.shards))
	for k := range s.shards {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	shards := make([]*shard, 0, len(keys))
	for _, k := range keys {
		shards = append(shards, s.shards[k])
	}
	s.mu.Unlock()

	st := Stats{
		Requests:          s.requests.Load(),
		Analyzes:          s.analyzes.Load(),
		Infers:            s.infers.Load(),
		Coalesced:         s.coalesced.Load(),
		CoalesceLeaders:   s.leaders.Load(),
		CalibrationHits:   s.calHits.Load(),
		CalibrationMisses: s.calMisses.Load(),
		PinnedWorkers:     s.pins.Load(),
		Shards:            make([]ShardStats, 0, len(shards)),
	}
	for _, sh := range shards {
		idle := len(sh.workers)
		cals := sh.calCount()
		st.Calibrations += cals
		st.Shards = append(st.Shards, ShardStats{
			Key:          sh.key,
			Workers:      sh.size,
			Idle:         idle,
			InUse:        sh.size - idle,
			Calibrations: cals,
		})
	}
	cs := s.compiled.CacheStats()
	st.Engines = EngineStats{
		InterpreterRuns: s.interp.Runs(),
		CompiledRuns:    s.compiled.Runs(),
		CacheSize:       cs.Size,
		CacheCapacity:   cs.Capacity,
		CacheHits:       cs.Hits,
		CacheMisses:     cs.Misses,
		CacheEvictions:  cs.Evictions,
	}
	return st
}
