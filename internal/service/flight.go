package service

import (
	"context"
	"errors"
	"sync"
)

// Flight coalesces concurrent identical computations by key: while one
// caller (the leader) computes, callers with the same key join its
// result instead of computing again. Sound only for computations whose
// result is a pure function of the key — which is exactly the
// determinism contract of this service's request paths, so Measure,
// Analyze, and the planner all coalesce through this one protocol.
type Flight[T any] struct {
	mu    sync.Mutex
	calls map[string]*flightCall[T]
}

// flightCall is one in-flight computation followers can join.
type flightCall[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// NewFlight returns an empty flight group.
func NewFlight[T any]() *Flight[T] {
	return &Flight[T]{calls: make(map[string]*flightCall[T])}
}

// Do executes compute under key, joining an identical in-flight
// computation when one exists. joined reports whether this caller ever
// waited on another's execution (the coalescing-stat signal). A
// leader's cancellation error is not inherited: it is the *leader's*
// cancellation, not the follower's, so a still-live follower retries —
// becoming leader itself if the slot is free — rather than failing.
func (f *Flight[T]) Do(ctx context.Context, key string, compute func() (T, error)) (val T, joined bool, err error) {
	for {
		f.mu.Lock()
		if c, ok := f.calls[key]; ok {
			f.mu.Unlock()
			joined = true
			select {
			case <-c.done:
				if isContextErr(c.err) && ctx.Err() == nil {
					continue
				}
				return c.val, true, c.err
			case <-ctx.Done():
				return val, true, ctx.Err()
			}
		}
		c := &flightCall[T]{done: make(chan struct{})}
		f.calls[key] = c
		f.mu.Unlock()

		c.val, c.err = compute()
		f.mu.Lock()
		delete(f.calls, key)
		f.mu.Unlock()
		close(c.done)
		return c.val, joined, c.err
	}
}

// Len reports how many computations are currently in flight.
func (f *Flight[T]) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.calls)
}

// isContextErr reports whether err is a cancellation or deadline error.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
