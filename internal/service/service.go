// Package service is the concurrent measurement backend behind
// cmd/pcserved. It schedules api.MeasureRequests onto a sharded pool of
// pre-built measurement systems — one shard per (processor, stack, TSC)
// configuration, several interchangeable worker systems per shard — and
// layers three mechanisms on top:
//
//   - Determinism. Workers are Reset to the just-booted state before
//     every request, so a response is a pure function of the normalized
//     request: concurrent requests on the same shard return
//     byte-identical bodies no matter which worker serves them or how
//     the pool interleaves.
//   - Calibration caching. The fixed-error estimate of a (shard,
//     pattern, mode, opt) configuration is computed once and reused;
//     warm requests skip the paper's 31-run null-benchmark calibration
//     entirely.
//   - Request coalescing. Identical normalized requests that arrive
//     while one is executing join its result instead of re-measuring —
//     sound precisely because responses are deterministic.
package service

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/accuracy"
	"repro/internal/api"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/kernel"
	stackpkg "repro/internal/stack"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Config sizes the service.
type Config struct {
	// WorkersPerShard is how many interchangeable systems each
	// (processor, stack, TSC) shard pools. Zero means 2.
	WorkersPerShard int
	// CalibrationRuns is the sample count of a calibration estimate.
	// Zero means 31, a typical odd count for a stable median.
	CalibrationRuns int
	// MaxConcurrentExperiments bounds simultaneous paper-experiment
	// runs, which are far heavier than measurements. Zero means 2.
	MaxConcurrentExperiments int
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.WorkersPerShard <= 0 {
		c.WorkersPerShard = 2
	}
	if c.CalibrationRuns <= 0 {
		c.CalibrationRuns = 31
	}
	if c.MaxConcurrentExperiments <= 0 {
		c.MaxConcurrentExperiments = 2
	}
	return c
}

// Service schedules measurement requests onto pooled systems. It is
// safe for concurrent use.
type Service struct {
	cfg Config

	mu      sync.Mutex
	shards  map[string]*shard
	flight  *Flight[*api.MeasureResponse]
	aflight *Flight[*api.AnalyzeResult]
	iflight *Flight[*api.InferResult]

	expSem chan struct{}

	// interp and compiled are the two execution engines requests may
	// pin. The compiled engine (the default) is shared by every shard so
	// its compile cache — like the calibration cache — is warmed once
	// per program, not once per worker.
	interp   *engine.Interpreter
	compiled *engine.Compiled

	requests  atomic.Uint64
	analyzes  atomic.Uint64
	infers    atomic.Uint64
	coalesced atomic.Uint64
	leaders   atomic.Uint64
	calHits   atomic.Uint64
	calMisses atomic.Uint64
	pins      atomic.Uint64
}

// New returns a service with empty pools; shards are built on first
// use.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	return &Service{
		cfg:      cfg,
		shards:   make(map[string]*shard),
		flight:   NewFlight[*api.MeasureResponse](),
		aflight:  NewFlight[*api.AnalyzeResult](),
		iflight:  NewFlight[*api.InferResult](),
		expSem:   make(chan struct{}, cfg.MaxConcurrentExperiments),
		interp:   engine.NewInterpreter(),
		compiled: engine.NewCompiled(engine.NewCache(engine.DefaultCacheCapacity)),
	}
}

// runnerFor maps a normalized request's engine selector to the
// service's engine instance ("" is the canonicalized compiled default).
func (s *Service) runnerFor(name string) cpu.Runner {
	if name == api.EngineInterpreter {
		return s.interp
	}
	return s.compiled
}

// Measure serves one measurement request. The response for a given
// normalized request is deterministic: callers (and the coalescing
// layer) may treat it as an immutable value.
func (s *Service) Measure(ctx context.Context, req api.MeasureRequest) (*api.MeasureResponse, error) {
	// The trace wish is captured before normalization strips it: the
	// canonical request — and therefore the coalescing key — is always
	// trace-free, so traced and untraced duplicates share one flight.
	wantTrace := req.Trace
	tr := telemetry.FromContext(ctx)
	if wantTrace && tr == nil {
		// In-process callers (tests, tools) get a trace without the HTTP
		// middleware having installed one.
		tr = telemetry.New()
		ctx = telemetry.NewContext(ctx, tr)
	}
	sp := tr.Start(telemetry.SpanCanonicalize)
	norm, err := req.Normalized()
	sp.End()
	if err != nil {
		return nil, err
	}
	s.requests.Add(1)

	wait := tr.Clock()
	resp, joined, err := s.flight.Do(ctx, norm.Key(), func() (*api.MeasureResponse, error) {
		return s.execute(ctx, norm)
	})
	if joined {
		s.coalesced.Add(1)
		// A follower's trace stays truthful: it waited on a leader, it
		// did not execute, so it records the wait and the coalesced mark
		// rather than a replay of the leader's execution spans.
		tr.SetCoalesced()
		tr.AddSince(telemetry.SpanCoalesceWait, wait)
	} else {
		s.leaders.Add(1)
	}
	if err != nil || !wantTrace {
		return resp, err
	}
	// The trace block is wall-time and per-caller, so it must never be
	// written onto the flight-shared response other callers hold: attach
	// it to a shallow copy.
	out := *resp
	out.Trace = api.TraceInfoFrom(tr)
	return &out, nil
}

// execute runs a normalized request on a worker from its shard. Spans
// land on the flight leader's trace: ctx here is always the leader's.
func (s *Service) execute(ctx context.Context, norm api.MeasureRequest) (*api.MeasureResponse, error) {
	tr := telemetry.FromContext(ctx)
	sh, err := s.shard(norm)
	if err != nil {
		return nil, err
	}
	sp := tr.Start(telemetry.SpanPoolAcquire).Annotate("shard", sh.key)
	sys, err := sh.checkout(ctx)
	sp.End()
	if err != nil {
		return nil, err
	}
	defer sh.checkin(sys)

	var cal *core.Calibration
	if norm.Calibrate {
		got, err := s.calibration(ctx, sh, norm, sys)
		if err != nil {
			return nil, err
		}
		cal = &got
	}

	creq, err := norm.Build()
	if err != nil {
		return nil, err
	}
	creq.Runner = s.runnerFor(norm.Engine)

	engineName := norm.Engine
	if engineName == "" {
		engineName = api.EngineCompiled
	}
	sp = tr.Start(telemetry.SpanEngineRun).Annotate("engine", engineName)

	// A reset system measures byte-identically to a fresh one, which is
	// what makes pooled workers interchangeable.
	sys.Reset()
	resp := &api.MeasureResponse{
		Request: norm,
		Deltas:  make([][]int64, 0, norm.Runs),
		Errors:  make([]int64, 0, norm.Runs),
	}
	for i := 0; i < norm.Runs; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		creq.Seed = norm.Seed + uint64(i)
		m, err := sys.Measure(creq)
		if err != nil {
			return nil, err
		}
		resp.Expected = m.Expected
		resp.Deltas = append(resp.Deltas, append([]int64(nil), m.Deltas...))
		resp.Errors = append(resp.Errors, m.Error(0, creq.Mode))
	}
	sp.End()

	sp = tr.Start(telemetry.SpanCorrect)
	resp.Summary = summarize(resp.Errors)
	if cal != nil {
		resp.Calibration = &api.CalibrationInfo{
			Offset:   cal.Offset,
			Strategy: cal.Strategy,
			Samples:  cal.Samples,
		}
		resp.CalibratedErrors = make([]float64, len(resp.Errors))
		for i, e := range resp.Errors {
			resp.CalibratedErrors[i] = cal.Apply(e)
		}
	}
	resp.Accuracy = annotate(resp, cal)
	sp.End()
	return resp, nil
}

// annotate builds the accuracy annotation every measurement response
// carries: the corrected estimate of the first counter's count, with a
// dispersion confidence interval, overhead-corrected when the request
// was calibrated. The annotation is pure arithmetic on values already
// in the response, so it cannot perturb determinism.
func annotate(resp *api.MeasureResponse, cal *core.Calibration) *api.EstimateInfo {
	counts := make([]float64, len(resp.Deltas))
	for i, row := range resp.Deltas {
		counts[i] = float64(row[0])
	}
	overhead := 0.0
	if cal != nil {
		overhead = cal.Offset
	}
	est, err := accuracy.FromRuns(counts, overhead, accuracy.DefaultConfidence)
	if err != nil {
		return nil
	}
	info := api.EstimateInfoFrom(resp.Request.Events[0], est)
	return &info
}

// ErrUnknownExperiment reports an experiment ID outside the registry.
var ErrUnknownExperiment = errors.New("service: unknown experiment")

// Experiment runs one paper experiment. Experiments build their own
// systems and are independent of the measurement pools; a semaphore
// keeps a burst of them from starving measurements of CPU.
func (s *Service) Experiment(ctx context.Context, req api.ExperimentRequest) (*api.ExperimentResponse, error) {
	title := experiments.Title(req.ID)
	if title == "" {
		return nil, fmt.Errorf("%w %q (have %s)", ErrUnknownExperiment, req.ID, strings.Join(experiments.IDs(), ", "))
	}
	if req.Runs < 0 || req.Runs > api.MaxExperimentRuns {
		return nil, fmt.Errorf("%w: experiment runs %d out of range 0-%d", api.ErrBadRequest, req.Runs, api.MaxExperimentRuns)
	}
	select {
	case s.expSem <- struct{}{}:
		defer func() { <-s.expSem }()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	cfg := experiments.QuickConfig
	if req.Runs > 0 {
		cfg.Runs = req.Runs
	}
	if req.Seed != 0 {
		cfg.Seed = req.Seed
	}
	res, err := experiments.Run(req.ID, cfg)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	if err := res.Render(&b); err != nil {
		return nil, err
	}
	return &api.ExperimentResponse{ID: req.ID, Title: title, Text: b.String()}, nil
}

// Health reports pool and counter state: the JSON rendering of the
// Stats snapshot (the same snapshot /metrics renders as exposition, so
// the two views cannot disagree).
func (s *Service) Health() api.HealthResponse {
	return HealthFrom(s.Stats())
}

// HealthFrom renders a Stats snapshot as the /healthz wire shape.
func HealthFrom(st Stats) api.HealthResponse {
	h := api.HealthResponse{
		Status:       "ok",
		Shards:       make([]api.ShardHealth, 0, len(st.Shards)),
		Calibrations: st.Calibrations,
		Stats: api.ServiceStats{
			Requests:          st.Requests,
			Analyzes:          st.Analyzes,
			Infers:            st.Infers,
			Coalesced:         st.Coalesced,
			CoalesceLeaders:   st.CoalesceLeaders,
			CalibrationHits:   st.CalibrationHits,
			CalibrationMisses: st.CalibrationMisses,
			PinnedWorkers:     st.PinnedWorkers,
		},
	}
	if total := st.CalibrationHits + st.CalibrationMisses; total > 0 {
		h.CalibrationHitRate = float64(st.CalibrationHits) / float64(total)
	}
	h.Engines = api.EngineHealth{
		InterpreterRuns:       st.Engines.InterpreterRuns,
		CompiledRuns:          st.Engines.CompiledRuns,
		CompileCacheSize:      st.Engines.CacheSize,
		CompileCacheCapacity:  st.Engines.CacheCapacity,
		CompileCacheHits:      st.Engines.CacheHits,
		CompileCacheMisses:    st.Engines.CacheMisses,
		CompileCacheEvictions: st.Engines.CacheEvictions,
	}
	if total := st.Engines.CacheHits + st.Engines.CacheMisses; total > 0 {
		h.Engines.CompileCacheHitRate = float64(st.Engines.CacheHits) / float64(total)
	}
	for _, sh := range st.Shards {
		h.Shards = append(h.Shards, api.ShardHealth{
			Key:          sh.Key,
			Workers:      sh.Workers,
			Idle:         sh.Idle,
			InUse:        sh.InUse,
			Calibrations: sh.Calibrations,
		})
	}
	return h
}

// shard returns (building if needed) the pool for a request's
// configuration. The service mutex only guards the map insertion;
// booting the worker systems happens outside it, so a first-touch
// shard build never stalls traffic to other shards.
func (s *Service) shard(norm api.MeasureRequest) (*shard, error) {
	key := norm.ShardKey()
	s.mu.Lock()
	sh, ok := s.shards[key]
	if !ok {
		sh = &shard{
			key:     key,
			proc:    norm.Processor,
			stack:   norm.Stack,
			withTSC: !norm.NoTSC,
			engine:  s.compiled,
			size:    s.cfg.WorkersPerShard,
			workers: make(chan *stackpkg.System, s.cfg.WorkersPerShard),
			cal:     make(map[string]*calEntry),
		}
		s.shards[key] = sh
	}
	s.mu.Unlock()

	sh.init.Do(sh.build)
	if sh.initErr != nil {
		return nil, sh.initErr
	}
	return sh, nil
}

// shard is one pool of interchangeable systems for a (processor, stack,
// TSC) configuration, with its calibration cache.
type shard struct {
	key     string
	proc    string
	stack   string
	withTSC bool
	engine  cpu.Runner
	size    int
	workers chan *stackpkg.System

	init    sync.Once
	initErr error

	calMu sync.Mutex
	cal   map[string]*calEntry
}

// calEntry is one cached calibration, computed at most once.
type calEntry struct {
	once sync.Once
	cal  core.Calibration
	err  error
}

// build boots the shard's worker systems. Run under init.Do: requests
// for the shard wait here, requests for other shards are unaffected.
func (sh *shard) build() {
	model, err := cpu.ModelByTag(sh.proc)
	if err != nil {
		sh.initErr = err
		return
	}
	opts := stackpkg.Options{WithTSC: sh.withTSC, Governor: kernel.Performance, Engine: sh.engine}
	for i := 0; i < sh.size; i++ {
		sys, err := stackpkg.New(model, sh.stack, opts)
		if err != nil {
			sh.initErr = err
			return
		}
		sh.workers <- sys
	}
}

// checkout takes a worker, waiting for one to come free.
func (sh *shard) checkout(ctx context.Context) (*stackpkg.System, error) {
	select {
	case sys := <-sh.workers:
		return sys, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// checkin returns a worker to the pool.
func (sh *shard) checkin(sys *stackpkg.System) {
	sh.workers <- sys
}

// calCount returns how many calibrations the shard has cached.
func (sh *shard) calCount() int {
	sh.calMu.Lock()
	defer sh.calMu.Unlock()
	return len(sh.cal)
}

// calibration returns the cached fixed-error estimate for the request's
// configuration, computing it on the caller's worker if this is the
// first request to need it. Computing on the caller's own worker (not a
// second checkout) keeps a size-1 pool deadlock-free; determinism makes
// the result independent of which worker ran it.
func (s *Service) calibration(ctx context.Context, sh *shard, norm api.MeasureRequest, sys *stackpkg.System) (core.Calibration, error) {
	sp := telemetry.StartSpan(ctx, telemetry.SpanCalibrate)
	key := norm.CalibrationKey()
	sh.calMu.Lock()
	e, ok := sh.cal[key]
	if !ok {
		e = &calEntry{}
		sh.cal[key] = e
	}
	sh.calMu.Unlock()

	hit := true
	e.once.Do(func() {
		hit = false
		s.calMisses.Add(1)
		pattern, err := core.PatternByCode(norm.Pattern)
		if err != nil {
			e.err = err
			return
		}
		mode, err := api.ParseMode(norm.Mode)
		if err != nil {
			e.err = err
			return
		}
		sys.Reset()
		e.cal, e.err = core.CalibrateNull(
			sys.Kernel, sys.Infra, pattern, mode,
			compiler.OptLevel(norm.Opt), s.cfg.CalibrationRuns, calSeed(key))
	})
	if hit {
		s.calHits.Add(1)
		sp.Annotate("cache", "hit").End()
	} else {
		sp.Annotate("cache", "miss").End()
	}
	if e.err != nil {
		// Leave the failed entry poisoned rather than retrying: the
		// computation is deterministic, so a retry would fail the same
		// way.
		return core.Calibration{}, e.err
	}
	return e.cal, nil
}

// calSeed derives the deterministic calibration seed from the cache
// key, so every worker (and every service instance) computes the same
// estimate.
func calSeed(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64() | 1 // never zero
}

// summarize condenses per-run errors deterministically.
func summarize(errs []int64) api.Summary {
	if len(errs) == 0 {
		return api.Summary{}
	}
	sum := api.Summary{Min: errs[0], Max: errs[0]}
	var total float64
	for _, e := range errs {
		total += float64(e)
		if e < sum.Min {
			sum.Min = e
		}
		if e > sum.Max {
			sum.Max = e
		}
	}
	sum.Mean = total / float64(len(errs))
	sum.Median = stats.MedianInt64(errs)
	return sum
}
