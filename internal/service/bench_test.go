package service

import (
	"context"
	"testing"

	"repro/internal/api"
	"repro/internal/telemetry"
)

// calReq is the calibrated request both benchmarks serve; only the
// cache temperature differs.
var calReq = api.MeasureRequest{
	Processor: "K8", Stack: "pc", Bench: "loop:1000", Pattern: "rr",
	Runs: 2, Calibrate: true,
}

// BenchmarkCalibrationCold measures the cold path: every iteration
// faces an empty calibration cache and pays for the full null-benchmark
// calibration before measuring.
func BenchmarkCalibrationCold(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		s := New(Config{WorkersPerShard: 1})
		if _, err := s.Measure(ctx, calReq); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCalibrationWarm measures the warm path: the calibration was
// cached by a setup request, so each iteration only measures.
func BenchmarkCalibrationWarm(b *testing.B) {
	ctx := context.Background()
	s := New(Config{WorkersPerShard: 1})
	if _, err := s.Measure(ctx, calReq); err != nil {
		b.Fatal(err)
	}
	req := calReq
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Vary the seed so iterations execute rather than coalesce into
		// a response cache; the calibration configuration is unchanged.
		req.Seed = uint64(i + 2)
		if _, err := s.Measure(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeasureUncalibrated is the baseline measurement cost without
// any calibration, for comparison against the two paths above.
func BenchmarkMeasureUncalibrated(b *testing.B) {
	ctx := context.Background()
	s := New(Config{WorkersPerShard: 1})
	req := calReq
	req.Calibrate = false
	for i := 0; i < b.N; i++ {
		req.Seed = uint64(i + 1)
		if _, err := s.Measure(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTelemetryOverhead compares /measure with telemetry disabled
// (no trace in the context — the production default for untraced
// callers before the server middleware, and the path the acceptance
// criterion bounds at <2% overhead) against the middleware path (an
// observed trace feeding stage histograms) and the full opt-in path
// (spans retained for the response).
func BenchmarkTelemetryOverhead(b *testing.B) {
	req := calReq
	req.Calibrate = false

	run := func(b *testing.B, ctx func() context.Context) {
		s := New(Config{WorkersPerShard: 1})
		r := req
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Vary the seed so iterations execute rather than coalesce.
			r.Seed = uint64(i + 1)
			if _, err := s.Measure(ctx(), r); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("disabled", func(b *testing.B) {
		bg := context.Background()
		run(b, func() context.Context { return bg })
	})
	b.Run("observed", func(b *testing.B) {
		sink := func(telemetry.SpanData) {}
		run(b, func() context.Context {
			return telemetry.NewContext(context.Background(), telemetry.NewObserved(sink))
		})
	})
	b.Run("traced", func(b *testing.B) {
		run(b, func() context.Context {
			return telemetry.NewContext(context.Background(), telemetry.New())
		})
	})
}
