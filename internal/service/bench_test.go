package service

import (
	"context"
	"testing"

	"repro/internal/api"
)

// calReq is the calibrated request both benchmarks serve; only the
// cache temperature differs.
var calReq = api.MeasureRequest{
	Processor: "K8", Stack: "pc", Bench: "loop:1000", Pattern: "rr",
	Runs: 2, Calibrate: true,
}

// BenchmarkCalibrationCold measures the cold path: every iteration
// faces an empty calibration cache and pays for the full null-benchmark
// calibration before measuring.
func BenchmarkCalibrationCold(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		s := New(Config{WorkersPerShard: 1})
		if _, err := s.Measure(ctx, calReq); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCalibrationWarm measures the warm path: the calibration was
// cached by a setup request, so each iteration only measures.
func BenchmarkCalibrationWarm(b *testing.B) {
	ctx := context.Background()
	s := New(Config{WorkersPerShard: 1})
	if _, err := s.Measure(ctx, calReq); err != nil {
		b.Fatal(err)
	}
	req := calReq
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Vary the seed so iterations execute rather than coalesce into
		// a response cache; the calibration configuration is unchanged.
		req.Seed = uint64(i + 2)
		if _, err := s.Measure(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeasureUncalibrated is the baseline measurement cost without
// any calibration, for comparison against the two paths above.
func BenchmarkMeasureUncalibrated(b *testing.B) {
	ctx := context.Background()
	s := New(Config{WorkersPerShard: 1})
	req := calReq
	req.Calibrate = false
	for i := 0; i < b.N; i++ {
		req.Seed = uint64(i + 1)
		if _, err := s.Measure(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}
