package service

import (
	"context"
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/api"
	"repro/internal/bayes"
)

func TestInferRawSumConstraint(t *testing.T) {
	svc := New(Config{WorkersPerShard: 1})
	req := api.InferRequest{Items: []api.InferItem{{
		Inputs: []api.InferInput{
			{Event: "TOTAL", Mean: 1480, Variance: 900},
			{Event: "A", Mean: 1010, Variance: 400},
			{Event: "B", Mean: 505, Variance: 625},
		},
		Constraints: []api.InferConstraint{{
			Name: "decompose",
			Terms: []bayes.Term{
				{Event: "TOTAL", Coef: 1}, {Event: "A", Coef: -1}, {Event: "B", Coef: -1},
			},
			Op: bayes.OpEq, RHS: 0,
		}},
	}}}
	resp, err := svc.Infer(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	res := resp.Results[0]
	if len(res.Posterior) != 3 || len(res.Prior) != 3 {
		t.Fatalf("got %d posterior / %d prior estimates, want 3/3", len(res.Posterior), len(res.Prior))
	}
	for i, post := range res.Posterior {
		prior := res.Prior[i]
		if post.Hi-post.Lo > prior.Hi-prior.Lo {
			t.Errorf("%s: posterior interval wider than prior: [%v,%v] vs [%v,%v]",
				post.Event, post.Lo, post.Hi, prior.Lo, prior.Hi)
		}
		if post.StdErr >= prior.StdErr {
			t.Errorf("%s: equality constraint must strictly tighten (%v >= %v)",
				post.Event, post.StdErr, prior.StdErr)
		}
	}
	if got := res.Posterior[0].Corrected - res.Posterior[1].Corrected - res.Posterior[2].Corrected; abs(got) > 1e-6 {
		t.Errorf("posterior violates decompose by %v", got)
	}
	if res.Tightening <= 0 {
		t.Errorf("tightening = %v, want positive", res.Tightening)
	}
	if !res.Consistent {
		t.Errorf("consistent inputs flagged inconsistent: %+v", res.Residuals)
	}
	// The correction is recorded as a named term, like every other
	// correction layer.
	foundTerm := false
	for _, term := range res.Posterior[0].Terms {
		if term.Name == "constraint-fusion" {
			foundTerm = true
		}
	}
	if !foundTerm {
		t.Errorf("posterior carries no constraint-fusion term: %+v", res.Posterior[0].Terms)
	}
}

func TestInferMeasuredInputsWithLibrary(t *testing.T) {
	svc := New(Config{WorkersPerShard: 1, CalibrationRuns: 9})
	measure := func(event string) api.InferInput {
		return api.InferInput{Measure: &api.MeasureRequest{
			Processor: "K8", Stack: "pc", Bench: "loop:100000", Pattern: "rr",
			Runs: 6, Events: []string{event},
		}}
	}
	req := api.InferRequest{Items: []api.InferItem{{
		Inputs: []api.InferInput{
			measure("INSTR_RETIRED"),
			measure("CPU_CLK_UNHALTED"),
			measure("BR_MISP_RETIRED"),
		},
	}}}
	resp, err := svc.Infer(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	res := resp.Results[0]
	if res.Item.Processor != "K8" {
		t.Errorf("processor not inherited: %q", res.Item.Processor)
	}
	for i, post := range res.Posterior {
		prior := res.Prior[i]
		if post.Hi-post.Lo > (prior.Hi-prior.Lo)*(1+1e-9) {
			t.Errorf("%s: posterior wider than prior", post.Event)
		}
		if prior.N < 2 {
			t.Errorf("%s: measured prior has N=%d, want the run count", prior.Event, prior.N)
		}
	}
	// Real measurements of a consistent system must not trip the
	// invariant residuals.
	if !res.Consistent {
		t.Errorf("measured inputs flagged inconsistent: %+v", res.Residuals)
	}
	if len(res.Residuals) == 0 {
		t.Error("library produced no residual report")
	}

	// Byte-identical repeat: the determinism contract /infer shares with
	// every other endpoint.
	again, err := svc.Infer(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(resp)
	b2, _ := json.Marshal(again)
	if string(b1) != string(b2) {
		t.Fatalf("repeated identical /infer bodies differ:\n%s\n%s", b1, b2)
	}
}

func TestInferFlagsInconsistentInputs(t *testing.T) {
	svc := New(Config{WorkersPerShard: 1})
	// ITLB misses wildly above i-cache misses: impossible on the
	// simulated ISA, so the library residual must flag it.
	req := api.InferRequest{Items: []api.InferItem{{
		Processor: "K8",
		Inputs: []api.InferInput{
			{Event: "ITLB_MISS", Mean: 5000, Variance: 100},
			{Event: "ICACHE_MISS", Mean: 50, Variance: 100},
		},
	}}}
	resp, err := svc.Infer(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	res := resp.Results[0]
	if res.Consistent {
		t.Fatalf("gross invariant violation not flagged: %+v", res.Residuals)
	}
	violated := false
	for _, r := range res.Residuals {
		if r.Constraint == "itlb-le-icache" && r.Violated {
			violated = true
		}
	}
	if !violated {
		t.Errorf("itlb-le-icache not among violated residuals: %+v", res.Residuals)
	}
	// The projection still reconciles the posterior with the invariant.
	if res.Posterior[0].Corrected > res.Posterior[1].Corrected+1e-6 {
		t.Errorf("posterior still violates: %v > %v", res.Posterior[0].Corrected, res.Posterior[1].Corrected)
	}
}

func TestInferRejectsBadCombination(t *testing.T) {
	svc := New(Config{WorkersPerShard: 1})
	// Two copies of the same equality are linearly dependent: a request
	// fault, reported as such.
	c := api.InferConstraint{
		Terms: []bayes.Term{{Event: "X", Coef: 1}, {Event: "Y", Coef: -1}},
		Op:    bayes.OpEq, RHS: 0,
	}
	c2 := c
	c2.Terms = []bayes.Term{{Event: "X", Coef: 2}, {Event: "Y", Coef: -2}}
	req := api.InferRequest{Items: []api.InferItem{{
		Inputs: []api.InferInput{
			{Event: "X", Mean: 1, Variance: 1},
			{Event: "Y", Mean: 2, Variance: 1},
		},
		Constraints: []api.InferConstraint{c, c2},
	}}}
	if _, err := svc.Infer(context.Background(), req); err == nil {
		t.Fatal("dependent equalities accepted")
	}
}

func TestInferCoalescesConcurrentIdenticalItems(t *testing.T) {
	svc := New(Config{WorkersPerShard: 1, CalibrationRuns: 5})
	req := api.InferRequest{Items: []api.InferItem{{
		Inputs: []api.InferInput{{Measure: &api.MeasureRequest{
			Processor: "K8", Stack: "pc", Bench: "loop:50000", Runs: 4,
		}}},
	}}}
	const callers = 8
	var wg sync.WaitGroup
	bodies := make([]string, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := svc.Infer(context.Background(), req)
			if err != nil {
				errs[i] = err
				return
			}
			b, _ := json.Marshal(resp)
			bodies[i] = string(b)
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if bodies[i] != bodies[0] {
			t.Fatalf("caller %d diverged:\n%s\n%s", i, bodies[i], bodies[0])
		}
	}
	if svc.infers.Load() != callers {
		t.Errorf("infer count = %d, want %d", svc.infers.Load(), callers)
	}
}

func TestHealthReportsOccupancyAndCaches(t *testing.T) {
	svc := New(Config{WorkersPerShard: 2, CalibrationRuns: 5})
	// Warm one shard and its calibration cache.
	req := api.MeasureRequest{Processor: "K8", Stack: "pc", Bench: "loop:1000", Calibrate: true, Runs: 2}
	if _, err := svc.Measure(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Measure(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	h := svc.Health()
	if len(h.Shards) != 1 {
		t.Fatalf("shards = %d, want 1", len(h.Shards))
	}
	sh := h.Shards[0]
	if sh.InUse != 0 || sh.Idle != sh.Workers {
		t.Errorf("idle pool reports occupancy: %+v", sh)
	}
	if h.Calibrations != sh.Calibrations || h.Calibrations != 1 {
		t.Errorf("calibration totals: top %d, shard %d, want 1", h.Calibrations, sh.Calibrations)
	}
	// Second identical request hit the cache: rate strictly between 0
	// and 1.
	if h.CalibrationHitRate <= 0 || h.CalibrationHitRate >= 1 {
		t.Errorf("hit rate = %v, want in (0, 1)", h.CalibrationHitRate)
	}

	// A pinned worker shows up as occupancy.
	w, err := svc.Pin(context.Background(), mustNorm(t, req))
	if err != nil {
		t.Fatal(err)
	}
	h = svc.Health()
	if h.Shards[0].InUse != 1 {
		t.Errorf("pinned worker not in occupancy: %+v", h.Shards[0])
	}
	w.Release()
	h = svc.Health()
	if h.Shards[0].InUse != 0 {
		t.Errorf("released worker still in occupancy: %+v", h.Shards[0])
	}
}

func mustNorm(t *testing.T, req api.MeasureRequest) api.MeasureRequest {
	t.Helper()
	norm, err := req.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	return norm
}
