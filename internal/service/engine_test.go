package service

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/api"
)

// TestMeasureEnginePinning runs one configuration through both engines
// and requires identical measurement bodies (the echoed request differs
// only in its engine selector).
func TestMeasureEnginePinning(t *testing.T) {
	s := New(Config{WorkersPerShard: 1, CalibrationRuns: 5})
	base := api.MeasureRequest{
		Processor: "K8", Stack: "pc", Bench: "loop:20000",
		Runs: 3, Calibrate: true,
	}

	run := func(engine string) *api.MeasureResponse {
		req := base
		req.Engine = engine
		resp, err := s.Measure(context.Background(), req)
		if err != nil {
			t.Fatalf("engine %q: %v", engine, err)
		}
		return resp
	}
	ri := run(api.EngineInterpreter)
	rc := run(api.EngineCompiled)

	ri.Request.Engine = ""
	rc.Request.Engine = ""
	bi, _ := json.Marshal(ri)
	bc, _ := json.Marshal(rc)
	if string(bi) != string(bc) {
		t.Fatalf("engines measured differently:\ninterpreter: %s\ncompiled:    %s", bi, bc)
	}
}

// TestHealthEngineStats checks that /healthz surfaces per-engine run
// counts and the shared compile cache.
func TestHealthEngineStats(t *testing.T) {
	s := New(Config{WorkersPerShard: 1, CalibrationRuns: 5})
	req := api.MeasureRequest{Processor: "K8", Stack: "pc", Bench: "loop:1000", Runs: 2}

	if _, err := s.Measure(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	req.Engine = api.EngineInterpreter
	if _, err := s.Measure(context.Background(), req); err != nil {
		t.Fatal(err)
	}

	eh := s.Health().Engines
	if eh.CompiledRuns == 0 {
		t.Error("no compiled runs recorded for a default-engine measurement")
	}
	if eh.InterpreterRuns == 0 {
		t.Error("no interpreter runs recorded for a pinned measurement")
	}
	if eh.CompileCacheSize == 0 || eh.CompileCacheMisses == 0 {
		t.Errorf("compile cache unused: %+v", eh)
	}
	if eh.CompileCacheCapacity <= 0 {
		t.Errorf("cache capacity %d not reported", eh.CompileCacheCapacity)
	}
	if eh.CompileCacheHits > 0 && eh.CompileCacheHitRate <= 0 {
		t.Errorf("hit rate not derived: %+v", eh)
	}
}
