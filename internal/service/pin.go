package service

import (
	"context"
	"sync"

	"repro/internal/api"
	"repro/internal/core"
	stackpkg "repro/internal/stack"
	"repro/internal/telemetry"
)

// PinnedWorker is a worker checked out of its shard for a long-lived
// exclusive use — a continuous monitoring session — rather than one
// request. The holder owns the system until Release; the service's
// determinism contract still applies because the holder Resets the
// system before measuring, exactly as the request path does.
type PinnedWorker struct {
	svc  *Service
	sh   *shard
	sys  *stackpkg.System
	once sync.Once
}

// Pin checks a worker out of the shard serving norm's configuration
// (building the shard on first touch), waiting for one to come free or
// ctx to end. Callers must Release the worker; a session that pins
// every worker of a shard starves /measure traffic for that
// configuration, so callers should bound how many pins they hold (the
// monitor registry's MaxSessions does this).
func (s *Service) Pin(ctx context.Context, norm api.MeasureRequest) (*PinnedWorker, error) {
	sh, err := s.shard(norm)
	if err != nil {
		return nil, err
	}
	sp := telemetry.StartSpan(ctx, telemetry.SpanPoolAcquire).Annotate("shard", sh.key).Annotate("pin", "true")
	sys, err := sh.checkout(ctx)
	sp.End()
	if err != nil {
		return nil, err
	}
	s.pins.Add(1)
	return &PinnedWorker{svc: s, sh: sh, sys: sys}, nil
}

// System returns the pinned measurement system.
func (w *PinnedWorker) System() *stackpkg.System { return w.sys }

// Calibration returns the cached fixed-error estimate for norm's
// configuration, computing it on the pinned worker if this is the
// first need. The result is identical to what the request path would
// compute: the calibration seed derives from the cache key, not the
// worker.
func (w *PinnedWorker) Calibration(norm api.MeasureRequest) (core.Calibration, error) {
	// A pinned worker outlives any one request, so its calibrations are
	// not attributed to a request trace.
	return w.svc.calibration(context.Background(), w.sh, norm, w.sys)
}

// Release returns the worker to its pool. Idempotent: a second call is
// a no-op, so lifecycle paths (normal completion, eviction, drain) may
// all release defensively.
func (w *PinnedWorker) Release() {
	w.once.Do(func() {
		w.svc.pins.Add(^uint64(0))
		w.sh.checkin(w.sys)
	})
}
