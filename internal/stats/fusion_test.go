package stats

import (
	"errors"
	"math"
	"testing"
)

func TestInverseVarianceMean(t *testing.T) {
	cases := []struct {
		name         string
		values, vars []float64
		wantMean     float64
		wantVar      float64
		wantErr      error
	}{
		{
			name:   "equal variances average evenly",
			values: []float64{10, 20}, vars: []float64{4, 4},
			wantMean: 15, wantVar: 2,
		},
		{
			name:   "precise estimate dominates",
			values: []float64{10, 20}, vars: []float64{1, 9},
			wantMean: 11, wantVar: 0.9,
		},
		{
			name:   "single sample passes through",
			values: []float64{42}, vars: []float64{7},
			wantMean: 42, wantVar: 7,
		},
		{
			name:   "single exact sample",
			values: []float64{42}, vars: []float64{0},
			wantMean: 42, wantVar: 0,
		},
		{
			name:   "zero variance dominates noisy estimates",
			values: []float64{5, 100, 200}, vars: []float64{0, 1, 1},
			wantMean: 5, wantVar: 0,
		},
		{
			name:   "multiple exact observations average",
			values: []float64{4, 6, 1000}, vars: []float64{0, 0, 1},
			wantMean: 5, wantVar: 0,
		},
		{
			name: "empty sample", values: nil, vars: nil, wantErr: ErrEmpty,
		},
		{
			name:   "length mismatch",
			values: []float64{1, 2}, vars: []float64{1},
			wantErr: ErrLengthMismatch,
		},
		{
			name:   "negative variance",
			values: []float64{1}, vars: []float64{-1},
			wantErr: ErrBadVariance,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			mean, v, err := InverseVarianceMean(c.values, c.vars)
			if c.wantErr != nil {
				if !errors.Is(err, c.wantErr) {
					t.Fatalf("err = %v, want %v", err, c.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(mean-c.wantMean) > 1e-12 || math.Abs(v-c.wantVar) > 1e-12 {
				t.Errorf("got (%v, %v), want (%v, %v)", mean, v, c.wantMean, c.wantVar)
			}
		})
	}
}

// TestInverseVarianceMeanNeverWidens is the property fusion relies on:
// the combined variance is at most the smallest input variance.
func TestInverseVarianceMeanNeverWidens(t *testing.T) {
	vars := []float64{3, 7, 0.5, 12}
	values := []float64{1, 2, 3, 4}
	_, v, err := InverseVarianceMean(values, vars)
	if err != nil {
		t.Fatal(err)
	}
	if v > 0.5 {
		t.Errorf("fused variance %v exceeds smallest input 0.5", v)
	}
}

func TestPooledVariance(t *testing.T) {
	cases := []struct {
		name    string
		vars    []float64
		sizes   []int
		want    float64
		wantErr error
	}{
		{
			name: "equal batches average",
			vars: []float64{4, 8}, sizes: []int{5, 5}, want: 6,
		},
		{
			name: "df weighting favors larger batch",
			vars: []float64{4, 10}, sizes: []int{11, 3}, want: 5,
		},
		{
			name: "single batch passes through",
			vars: []float64{3.5}, sizes: []int{9}, want: 3.5,
		},
		{
			name: "single-observation batches carry no dispersion",
			vars: []float64{0, 0}, sizes: []int{1, 1}, want: 0,
		},
		{
			name: "single-observation batch contributes nothing",
			vars: []float64{99, 6}, sizes: []int{1, 4}, want: 6,
		},
		{
			name: "zero-variance batch pulls the pool down",
			vars: []float64{0, 6}, sizes: []int{4, 4}, want: 3,
		},
		{name: "empty", vars: nil, sizes: nil, wantErr: ErrEmpty},
		{name: "mismatch", vars: []float64{1}, sizes: []int{2, 3}, wantErr: ErrLengthMismatch},
		{name: "negative variance", vars: []float64{-2}, sizes: []int{3}, wantErr: ErrBadVariance},
		{name: "zero size", vars: []float64{1}, sizes: []int{0}, wantErr: ErrBadSampleSize},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := PooledVariance(c.vars, c.sizes)
			if c.wantErr != nil {
				if !errors.Is(err, c.wantErr) {
					t.Fatalf("err = %v, want %v", err, c.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-c.want) > 1e-12 {
				t.Errorf("pooled = %v, want %v", got, c.want)
			}
		})
	}
}

func TestCovariance(t *testing.T) {
	// Perfectly linear pairs: cov(x, 2x) = 2·var(x).
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	got, err := Covariance(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * Variance(xs); math.Abs(got-want) > 1e-12 {
		t.Errorf("cov = %v, want %v", got, want)
	}

	// Consistency: cov(x, x) = var(x).
	self, err := Covariance(xs, xs)
	if err != nil {
		t.Fatal(err)
	}
	if want := Variance(xs); math.Abs(self-want) > 1e-12 {
		t.Errorf("cov(x,x) = %v, want var %v", self, want)
	}

	// Unobservable cases return zero, mirroring Variance.
	if got, err := Covariance([]float64{1}, []float64{2}); err != nil || got != 0 {
		t.Errorf("single pair: (%v, %v)", got, err)
	}
	if got, err := Covariance(nil, nil); err != nil || got != 0 {
		t.Errorf("empty: (%v, %v)", got, err)
	}
	if _, err := Covariance([]float64{1, 2}, []float64{1}); !errors.Is(err, ErrLengthMismatch) {
		t.Errorf("mismatch err = %v", err)
	}
}
