// Package stats provides the statistical machinery the paper's analysis
// rests on: quantiles and box-plot summaries (every figure), kernel
// density estimates (the Figure 1 violins), least-squares regression
// (the Section 5 error-vs-duration slopes), and n-way analysis of
// variance with F-distribution p-values (the Section 4.3 factor study).
//
// Everything is implemented from scratch on the standard library, fully
// deterministic, and validated against known closed-form values in the
// package tests.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by statistics that need at least one observation.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean. It returns 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (n-1 denominator).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest value; 0 for an empty sample.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value; 0 for an empty sample.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the p-quantile (0 <= p <= 1) using linear
// interpolation between order statistics (R's default type-7 estimator,
// matching the boxplots produced by the paper's R scripts).
func Quantile(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, p)
}

// quantileSorted is Quantile on pre-sorted data.
func quantileSorted(s []float64, p float64) float64 {
	n := len(s)
	if n == 1 {
		return s[0]
	}
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[n-1]
	}
	h := p * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	frac := h - float64(lo)
	if hi >= n {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// MedianInt64 is Median over integer observations, the common case for
// instruction-count errors.
func MedianInt64(xs []int64) float64 {
	f := make([]float64, len(xs))
	for i, x := range xs {
		f[i] = float64(x)
	}
	return Median(f)
}

// Summary is a five-number summary plus mean and count.
type Summary struct {
	N                     int
	Min, Q1, Med, Q3, Max float64
	Mean                  float64
}

// Summarize computes a Summary.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Summary{
		N:    len(s),
		Min:  s[0],
		Q1:   quantileSorted(s, 0.25),
		Med:  quantileSorted(s, 0.5),
		Q3:   quantileSorted(s, 0.75),
		Max:  s[len(s)-1],
		Mean: Mean(s),
	}, nil
}

// IQR returns the interquartile range.
func (s Summary) IQR() float64 { return s.Q3 - s.Q1 }

// Box is a Tukey box plot: the quartile box, whiskers at the last
// observation within 1.5 IQR of the box, and outliers beyond.
type Box struct {
	Summary
	LoWhisker, HiWhisker float64
	Outliers             []float64
}

// BoxStats computes the Tukey box-plot statistics.
func BoxStats(xs []float64) (Box, error) {
	sum, err := Summarize(xs)
	if err != nil {
		return Box{}, err
	}
	loFence := sum.Q1 - 1.5*sum.IQR()
	hiFence := sum.Q3 + 1.5*sum.IQR()
	b := Box{Summary: sum, LoWhisker: math.Inf(1), HiWhisker: math.Inf(-1)}
	for _, x := range xs {
		if x < loFence || x > hiFence {
			b.Outliers = append(b.Outliers, x)
			continue
		}
		if x < b.LoWhisker {
			b.LoWhisker = x
		}
		if x > b.HiWhisker {
			b.HiWhisker = x
		}
	}
	// All points outliers (degenerate): collapse whiskers to the box.
	if math.IsInf(b.LoWhisker, 1) {
		b.LoWhisker, b.HiWhisker = sum.Q1, sum.Q3
	}
	sort.Float64s(b.Outliers)
	return b, nil
}

// Float64s converts integer observations for use with this package.
func Float64s(xs []int64) []float64 {
	f := make([]float64, len(xs))
	for i, x := range xs {
		f[i] = float64(x)
	}
	return f
}
