package stats

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", what, got, want, tol)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, Mean(xs), 5, 1e-12, "mean")
	approx(t, Variance(xs), 32.0/7, 1e-12, "variance")
	approx(t, StdDev(xs), math.Sqrt(32.0/7), 1e-12, "stddev")
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate cases wrong")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Error("min/max wrong")
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty min/max should be 0")
	}
}

// TestQuantileR7 checks against R's quantile(type=7) reference values.
func TestQuantileR7(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	approx(t, Quantile(xs, 0.25), 3.25, 1e-12, "q1")
	approx(t, Quantile(xs, 0.5), 5.5, 1e-12, "median")
	approx(t, Quantile(xs, 0.75), 7.75, 1e-12, "q3")
	approx(t, Quantile(xs, 0), 1, 1e-12, "p0")
	approx(t, Quantile(xs, 1), 10, 1e-12, "p1")
	approx(t, Quantile([]float64{42}, 0.3), 42, 1e-12, "single")
}

func TestQuantileMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		xs := make([]float64, 50)
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.05 {
			q := Quantile(xs, p)
			if q < prev-1e-12 {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMedianInt64(t *testing.T) {
	approx(t, MedianInt64([]int64{1, 2, 3, 4}), 2.5, 1e-12, "median int")
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Med != 3 {
		t.Errorf("summary: %+v", s)
	}
	approx(t, s.IQR(), 2, 1e-12, "iqr")
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Error("empty summarize should fail")
	}
}

func TestBoxStats(t *testing.T) {
	// 100 is an outlier beyond Q3 + 1.5 IQR.
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 100}
	b, err := BoxStats(xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Outliers) != 1 || b.Outliers[0] != 100 {
		t.Errorf("outliers = %v", b.Outliers)
	}
	if b.HiWhisker != 8 || b.LoWhisker != 1 {
		t.Errorf("whiskers = [%v, %v]", b.LoWhisker, b.HiWhisker)
	}
}

func TestBoxStatsAllEqual(t *testing.T) {
	b, err := BoxStats([]float64{5, 5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if b.LoWhisker != 5 || b.HiWhisker != 5 || len(b.Outliers) != 0 {
		t.Errorf("constant sample box: %+v", b)
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{3, 5, 7, 9, 11} // y = 1 + 2x
	r, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r.Slope, 2, 1e-12, "slope")
	approx(t, r.Intercept, 1, 1e-12, "intercept")
	approx(t, r.R2, 1, 1e-12, "r2")
	approx(t, r.At(10), 21, 1e-12, "At")
}

// TestLinearFitRecoversNoisySlope: a property test that OLS recovers a
// synthetic slope from noisy data — the Section 5 use case.
func TestLinearFitRecoversNoisySlope(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		slope := 0.002
		var xs, ys []float64
		for i := 0; i < 400; i++ {
			x := float64(r.Intn(1_000_000))
			y := 500 + slope*x + r.NormFloat64()*50
			xs = append(xs, x)
			ys = append(ys, y)
		}
		fit, err := LinearFit(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(fit.Slope-slope) < 0.0004
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1}); !errors.Is(err, ErrDegenerate) {
		t.Error("single point accepted")
	}
	if _, err := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); !errors.Is(err, ErrDegenerate) {
		t.Error("zero x-variance accepted")
	}
	if _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

// TestRegIncBeta checks the incomplete beta against known values.
func TestRegIncBeta(t *testing.T) {
	// I_x(1,1) = x
	approx(t, RegIncBeta(1, 1, 0.3), 0.3, 1e-10, "I(1,1)")
	// I_x(2,2) = x^2 (3-2x)
	approx(t, RegIncBeta(2, 2, 0.4), 0.4*0.4*(3-0.8), 1e-10, "I(2,2)")
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a)
	approx(t, RegIncBeta(3, 5, 0.2), 1-RegIncBeta(5, 3, 0.8), 1e-10, "symmetry")
	if RegIncBeta(2, 3, 0) != 0 || RegIncBeta(2, 3, 1) != 1 {
		t.Error("boundary values wrong")
	}
}

// TestFCDF checks F-distribution quantiles against R reference values:
// qf(0.95, 3, 10) = 3.708265, qf(0.95, 1, 5) = 6.607891.
func TestFCDF(t *testing.T) {
	approx(t, FCDF(3.708265, 3, 10), 0.95, 1e-5, "F(3,10) 95%")
	approx(t, FCDF(6.607891, 1, 5), 0.95, 1e-5, "F(1,5) 95%")
	if FCDF(-1, 2, 2) != 0 {
		t.Error("negative F should have CDF 0")
	}
	if FCDF(1e9, 2, 10) < 0.999999 {
		t.Error("huge F should have CDF ~1")
	}
}

func TestANOVAOneWayKnown(t *testing.T) {
	// Classic one-way example: three groups with clearly separated
	// means and small within-group spread.
	obs := []Observation{
		{Levels: []string{"a"}, Y: 1}, {Levels: []string{"a"}, Y: 2}, {Levels: []string{"a"}, Y: 1.5},
		{Levels: []string{"b"}, Y: 10}, {Levels: []string{"b"}, Y: 11}, {Levels: []string{"b"}, Y: 10.5},
		{Levels: []string{"c"}, Y: 20}, {Levels: []string{"c"}, Y: 21}, {Levels: []string{"c"}, Y: 20.5},
	}
	tab, err := ANOVA([]string{"group"}, obs)
	if err != nil {
		t.Fatal(err)
	}
	f := tab.Factors[0]
	if !f.Significant || f.P > 1e-6 {
		t.Errorf("clearly separated groups not significant: %+v", f)
	}
	if f.DF != 2 || tab.Residual.DF != 6 {
		t.Errorf("df = (%d, %d), want (2, 6)", f.DF, tab.Residual.DF)
	}
}

func TestANOVATwoWay(t *testing.T) {
	// Factor A drives the response; factor B is noise. The design is a
	// balanced full factorial — main-effects ANOVA with sequential sums
	// of squares confounds factors under imbalance, and the paper's
	// sweep (like this test) is fully crossed.
	r := xrand.New(3)
	var obs []Observation
	for rep := 0; rep < 33; rep++ {
		for _, a := range []string{"lo", "hi"} {
			for _, b := range []string{"x", "y", "z"} {
				y := r.NormFloat64()
				if a == "hi" {
					y += 50
				}
				obs = append(obs, Observation{Levels: []string{a, b}, Y: y})
			}
		}
	}
	tab, err := ANOVA([]string{"A", "B"}, obs)
	if err != nil {
		t.Fatal(err)
	}
	if !tab.Factors[0].Significant {
		t.Errorf("driving factor not significant: %+v", tab.Factors[0])
	}
	if tab.Factors[1].Significant {
		t.Errorf("noise factor significant: %+v", tab.Factors[1])
	}
	if tab.String() == "" {
		t.Error("empty table rendering")
	}
}

// TestANOVAInvariantToLevelRelabeling: renaming factor levels must not
// change the sums of squares.
func TestANOVAInvariantToLevelRelabeling(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		var obs1, obs2 []Observation
		for i := 0; i < 60; i++ {
			lvl := []string{"p", "q", "r"}[r.Intn(3)]
			y := r.Float64() * 10
			if lvl == "p" {
				y += 5
			}
			obs1 = append(obs1, Observation{Levels: []string{lvl}, Y: y})
			obs2 = append(obs2, Observation{Levels: []string{"zz-" + lvl}, Y: y})
		}
		t1, err1 := ANOVA([]string{"f"}, obs1)
		t2, err2 := ANOVA([]string{"f"}, obs2)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(t1.Factors[0].SumSq-t2.Factors[0].SumSq) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestANOVAErrors(t *testing.T) {
	if _, err := ANOVA(nil, []Observation{{Levels: nil, Y: 1}}); !errors.Is(err, ErrBadDesign) {
		t.Error("no factors accepted")
	}
	obs := []Observation{
		{Levels: []string{"a"}, Y: 1},
		{Levels: []string{"a", "b"}, Y: 2},
		{Levels: []string{"a"}, Y: 3},
	}
	if _, err := ANOVA([]string{"f"}, obs); !errors.Is(err, ErrBadDesign) {
		t.Error("ragged levels accepted")
	}
}

func TestANOVAZeroResidual(t *testing.T) {
	// Response fully determined by the factor: residual MS is 0 and the
	// factor must be reported as maximally significant.
	obs := []Observation{
		{Levels: []string{"a"}, Y: 1}, {Levels: []string{"a"}, Y: 1},
		{Levels: []string{"b"}, Y: 2}, {Levels: []string{"b"}, Y: 2},
		{Levels: []string{"c"}, Y: 3}, {Levels: []string{"c"}, Y: 3},
	}
	tab, err := ANOVA([]string{"f"}, obs)
	if err != nil {
		t.Fatal(err)
	}
	if !tab.Factors[0].Significant || tab.Factors[0].P != 0 {
		t.Errorf("deterministic factor: %+v", tab.Factors[0])
	}
}

func TestKDEBasics(t *testing.T) {
	r := xrand.New(7)
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	k := NewKDE(xs)
	if k.Bandwidth() <= 0 {
		t.Fatal("bandwidth must be positive")
	}
	// Density at the mode ~ N(0,1) density at 0 = 0.3989.
	approx(t, k.At(0), 0.3989, 0.05, "density at mode")
	if k.At(0) <= k.At(3) {
		t.Error("density should peak at the mode")
	}
	locs, dens := k.Grid(64)
	if len(locs) != 64 || len(dens) != 64 {
		t.Fatal("grid size wrong")
	}
	// Riemann integral of the density ~ 1.
	integral := 0.0
	for i := 1; i < len(locs); i++ {
		integral += dens[i] * (locs[i] - locs[i-1])
	}
	approx(t, integral, 1, 0.05, "density integral")
}

func TestKDEDegenerate(t *testing.T) {
	k := NewKDE([]float64{5, 5, 5})
	if k.Bandwidth() != 1 {
		t.Errorf("constant sample bandwidth = %v, want fallback 1", k.Bandwidth())
	}
	if k.At(5) <= 0 {
		t.Error("density must be positive at the data")
	}
	if l, d := k.Grid(1); l != nil || d != nil {
		t.Error("grid with n<2 should be nil")
	}
	if NewKDE(nil).At(0) != 0 {
		t.Error("empty KDE should be zero")
	}
}

func TestFloat64s(t *testing.T) {
	f := Float64s([]int64{1, -2, 3})
	if len(f) != 3 || f[1] != -2 {
		t.Error("conversion wrong")
	}
}

func TestBoxOutliersSorted(t *testing.T) {
	xs := []float64{5, 5, 5, 5, 5, 5, 100, -100}
	b, err := BoxStats(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.Float64sAreSorted(b.Outliers) {
		t.Error("outliers must be sorted")
	}
}
