package stats

import "math"

// NormalQuantile returns the p-quantile of the standard normal
// distribution (the inverse of the normal CDF), using Acklam's rational
// approximation with one Halley refinement step — absolute error below
// 1e-9 over (0, 1). It returns ±Inf at the endpoints and NaN outside
// [0, 1].
//
// The confidence intervals of internal/accuracy are built on this:
// a two-sided interval at confidence c uses z = NormalQuantile(0.5+c/2).
func NormalQuantile(p float64) float64 {
	switch {
	case math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return math.Inf(-1)
	case p == 1:
		return math.Inf(1)
	}

	// Coefficients of Acklam's approximation.
	a := [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	c := [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}

	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow: // lower tail
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow: // central region
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default: // upper tail
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}

	// One Halley step against the exact CDF sharpens the tail behavior.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	return x - u/(1+x*u/2)
}

// NormalCDF returns the standard normal cumulative distribution
// function at x.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}
