package stats

import (
	"errors"
	"math"
)

// Regression is an ordinary-least-squares fit y = Intercept + Slope*x.
// The paper uses exactly this to quantify how the measurement error
// grows with benchmark duration (Figures 7-9: "we determined the
// regression line through all points (l, i∆), and computed its slope").
type Regression struct {
	Slope, Intercept float64
	// R2 is the coefficient of determination.
	R2 float64
	// SlopeStdErr is the standard error of the slope estimate.
	SlopeStdErr float64
	// N is the number of points fitted.
	N int
}

// ErrDegenerate is returned when a fit is impossible (fewer than two
// points, or zero variance in x).
var ErrDegenerate = errors.New("stats: degenerate regression")

// LinearFit fits y = a + b*x by least squares.
func LinearFit(x, y []float64) (Regression, error) {
	if len(x) != len(y) {
		return Regression{}, errors.New("stats: x/y length mismatch")
	}
	n := float64(len(x))
	if len(x) < 2 {
		return Regression{}, ErrDegenerate
	}
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Regression{}, ErrDegenerate
	}
	slope := sxy / sxx
	intercept := my - slope*mx

	// Residual sum of squares and derived statistics.
	rss := syy - slope*sxy
	if rss < 0 {
		rss = 0
	}
	r2 := 0.0
	if syy > 0 {
		r2 = 1 - rss/syy
	}
	se := 0.0
	if len(x) > 2 {
		se = math.Sqrt(rss / (n - 2) / sxx)
	}
	return Regression{Slope: slope, Intercept: intercept, R2: r2, SlopeStdErr: se, N: len(x)}, nil
}

// At evaluates the fitted line.
func (r Regression) At(x float64) float64 { return r.Intercept + r.Slope*x }
