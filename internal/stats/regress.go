package stats

import (
	"errors"
	"math"
)

// Regression is an ordinary-least-squares fit y = Intercept + Slope*x.
// The paper uses exactly this to quantify how the measurement error
// grows with benchmark duration (Figures 7-9: "we determined the
// regression line through all points (l, i∆), and computed its slope").
type Regression struct {
	Slope, Intercept float64
	// R2 is the coefficient of determination.
	R2 float64
	// SlopeStdErr is the standard error of the slope estimate.
	SlopeStdErr float64
	// N is the number of points fitted.
	N int
}

// ErrDegenerate is returned when a fit is impossible (fewer than two
// points, or zero variance in x).
var ErrDegenerate = errors.New("stats: degenerate regression")

// LinearFit fits y = a + b*x by least squares, through the package's
// linear-algebra kernel: the design matrix [1 x] solved by weighted
// normal equations (WeightedLeastSquares), the same solver the
// constraint-graph inference of internal/bayes conditions through.
func LinearFit(x, y []float64) (Regression, error) {
	if len(x) != len(y) {
		return Regression{}, errors.New("stats: x/y length mismatch")
	}
	n := len(x)
	if n < 2 {
		return Regression{}, ErrDegenerate
	}
	// Center x before building the design: the normal equations of a
	// centered design are exactly the textbook sxx/sxy formulas, so the
	// kernel reproduces the direct computation to the last bit, and a
	// zero-variance x shows up as a non-SPD normal matrix.
	mx := Mean(x)
	design := NewMatrix(n, 2)
	for i := range x {
		design.Set(i, 0, 1)
		design.Set(i, 1, x[i]-mx)
	}
	beta, inv, err := WeightedLeastSquares(design, y, nil)
	if err != nil {
		if errors.Is(err, ErrNotSPD) {
			return Regression{}, ErrDegenerate
		}
		return Regression{}, err
	}
	slope := beta[1]
	intercept := beta[0] - slope*mx

	// Residual sum of squares and derived statistics.
	my := Mean(y)
	var rss, syy float64
	for i := range x {
		r := y[i] - (beta[0] + slope*(x[i]-mx))
		rss += r * r
		dy := y[i] - my
		syy += dy * dy
	}
	r2 := 0.0
	if syy > 0 {
		r2 = 1 - rss/syy
		if r2 < 0 {
			r2 = 0
		}
	}
	se := 0.0
	if n > 2 {
		se = math.Sqrt(rss / float64(n-2) * inv.At(1, 1))
	}
	return Regression{Slope: slope, Intercept: intercept, R2: r2, SlopeStdErr: se, N: n}, nil
}

// At evaluates the fitted line.
func (r Regression) At(x float64) float64 { return r.Intercept + r.Slope*x }
