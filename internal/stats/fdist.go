package stats

import "math"

// FCDF returns P(F <= x) for the F distribution with (d1, d2) degrees of
// freedom, via the regularized incomplete beta function:
//
//	P(F <= x) = I_{d1 x / (d1 x + d2)}(d1/2, d2/2)
//
// The paper's ANOVA reports Pr(>F); callers use 1 - FCDF.
func FCDF(x, d1, d2 float64) float64 {
	if x <= 0 || d1 <= 0 || d2 <= 0 {
		return 0
	}
	return RegIncBeta(d1/2, d2/2, d1*x/(d1*x+d2))
}

// RegIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes betacf) with
// the symmetry transformation for fast convergence.
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	// ln of the prefactor x^a (1-x)^b / (a B(a,b)).
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - la - lb + a*math.Log(x) + b*math.Log1p(-x))
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

// betacf evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
