package stats

import (
	"errors"
	"fmt"
	"math"
)

// This file is the package's small dense linear-algebra kernel: a
// row-major matrix, a Cholesky factorization, and the weighted
// least-squares (normal equations) solver built on them. One kernel
// serves every consumer — the regression fit (regress.go), and the
// constraint-graph inference of internal/bayes, whose Gaussian
// conditioning is a sequence of SPD solves.

// ErrNotSPD reports a matrix that is not symmetric positive definite
// to working precision — a Cholesky pivot fell below the tolerance.
// For constraint systems this means redundant (linearly dependent)
// constraints; for normal equations, a rank-deficient design.
var ErrNotSPD = errors.New("stats: matrix not positive definite")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, Data[r*Cols+c]
}

// NewMatrix returns a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("stats: negative matrix dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// MulVec returns m·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("stats: MulVec dimension mismatch (%d cols, %d vector)", m.Cols, len(x)))
	}
	out := make([]float64, m.Rows)
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		s := 0.0
		for c, v := range row {
			s += v * x[c]
		}
		out[r] = s
	}
	return out
}

// Cholesky is the lower-triangular factor L of an SPD matrix A = L·Lᵀ.
type Cholesky struct {
	n int
	l []float64 // lower triangle, row-major over the full n x n layout
}

// NewCholesky factors the symmetric positive definite matrix a (only
// its lower triangle is read). It fails with ErrNotSPD when a pivot
// falls below a relative tolerance — the sign of a singular (or
// indefinite) system.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("stats: cholesky of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	// Relative pivot tolerance, scaled by the largest diagonal entry so
	// well-conditioned systems of any magnitude factor identically.
	maxDiag := 0.0
	for i := 0; i < n; i++ {
		if d := math.Abs(a.At(i, i)); d > maxDiag {
			maxDiag = d
		}
	}
	tol := 1e-12 * math.Max(maxDiag, 1e-300)

	l := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l[i*n+k] * l[j*n+k]
			}
			if i == j {
				if s <= tol {
					return nil, fmt.Errorf("%w (pivot %d: %v)", ErrNotSPD, i, s)
				}
				l[i*n+i] = math.Sqrt(s)
			} else {
				l[i*n+j] = s / l[j*n+j]
			}
		}
	}
	return &Cholesky{n: n, l: l}, nil
}

// Solve returns x with A·x = b, via the two triangular solves
// L·y = b, Lᵀ·x = y.
func (c *Cholesky) Solve(b []float64) []float64 {
	if len(b) != c.n {
		panic(fmt.Sprintf("stats: cholesky solve dimension mismatch (%d vs %d)", len(b), c.n))
	}
	n, l := c.n, c.l
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l[i*n+k] * y[k]
		}
		y[i] = s / l[i*n+i]
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l[k*n+i] * x[k]
		}
		x[i] = s / l[i*n+i]
	}
	return x
}

// SolveSPD solves A·x = b for symmetric positive definite A.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	ch, err := NewCholesky(a)
	if err != nil {
		return nil, err
	}
	return ch.Solve(b), nil
}

// WeightedLeastSquares solves min Σ wᵢ (yᵢ - Xᵢ·β)² by the normal
// equations (XᵀWX)β = XᵀWy, factored with Cholesky. A nil weight
// slice means ordinary least squares. It returns the coefficients and
// the unscaled inverse normal matrix (XᵀWX)⁻¹, whose diagonal times
// the residual variance gives the coefficient standard errors.
// Rank-deficient designs (constant x, fewer rows than columns) fail
// with ErrNotSPD wrapped in ErrDegenerate by callers that promise it.
func WeightedLeastSquares(x *Matrix, y, w []float64) (beta []float64, inv *Matrix, err error) {
	n, p := x.Rows, x.Cols
	if len(y) != n {
		return nil, nil, fmt.Errorf("stats: design has %d rows but %d responses", n, len(y))
	}
	if w != nil && len(w) != n {
		return nil, nil, fmt.Errorf("stats: design has %d rows but %d weights", n, len(w))
	}
	xtx := NewMatrix(p, p)
	xty := make([]float64, p)
	for r := 0; r < n; r++ {
		wr := 1.0
		if w != nil {
			wr = w[r]
		}
		row := x.Data[r*p : (r+1)*p]
		for i := 0; i < p; i++ {
			xty[i] += wr * row[i] * y[r]
			for j := 0; j <= i; j++ {
				xtx.Data[i*p+j] += wr * row[i] * row[j]
			}
		}
	}
	// Mirror the lower triangle; Cholesky reads only the lower half but
	// the returned inverse should be the full symmetric matrix.
	for i := 0; i < p; i++ {
		for j := i + 1; j < p; j++ {
			xtx.Set(i, j, xtx.At(j, i))
		}
	}
	ch, err := NewCholesky(xtx)
	if err != nil {
		return nil, nil, err
	}
	beta = ch.Solve(xty)
	inv = NewMatrix(p, p)
	e := make([]float64, p)
	for j := 0; j < p; j++ {
		e[j] = 1
		col := ch.Solve(e)
		e[j] = 0
		for i := 0; i < p; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return beta, inv, nil
}
