package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Observation is one measured response with its factor levels — one row
// of the design matrix for the Section 4.3 factor study (processor,
// infrastructure, pattern, optimization level, register count ->
// instruction-count error).
type Observation struct {
	// Levels holds one label per factor, in the factor order passed to
	// ANOVA.
	Levels []string
	// Y is the response.
	Y float64
}

// FactorResult is one row of an ANOVA table.
type FactorResult struct {
	// Name is the factor's name.
	Name string
	// DF is the factor's degrees of freedom (levels - 1).
	DF int
	// SumSq and MeanSq are the between-level sums of squares.
	SumSq, MeanSq float64
	// F is the F statistic against the residual mean square.
	F float64
	// P is Pr(>F).
	P float64
	// Significant reports P below the conventional 0.05 threshold.
	Significant bool
}

// AnovaTable is the result of an n-way main-effects analysis of
// variance.
type AnovaTable struct {
	Factors  []FactorResult
	Residual struct {
		DF     int
		SumSq  float64
		MeanSq float64
	}
	TotalSS float64
	N       int
}

// ErrBadDesign reports an ANOVA design with too few observations or
// inconsistent factor labels.
var ErrBadDesign = errors.New("stats: bad anova design")

// ANOVA performs an n-way main-effects analysis of variance: the
// between-level sum of squares of each factor is tested against the
// residual variance. This is the analysis the paper runs to establish
// that processor, infrastructure, pattern, and register count all
// significantly affect the measurement error (Pr(>F) < 2e-16) while the
// compiler optimization level does not (Section 4.3).
//
// factorNames names the columns of each observation's Levels slice.
func ANOVA(factorNames []string, obs []Observation) (*AnovaTable, error) {
	k := len(factorNames)
	if k == 0 || len(obs) < 3 {
		return nil, fmt.Errorf("%w: %d factors, %d observations", ErrBadDesign, k, len(obs))
	}
	for i, o := range obs {
		if len(o.Levels) != k {
			return nil, fmt.Errorf("%w: observation %d has %d levels, want %d", ErrBadDesign, i, len(o.Levels), k)
		}
	}

	grand := 0.0
	for _, o := range obs {
		grand += o.Y
	}
	grand /= float64(len(obs))

	totalSS := 0.0
	for _, o := range obs {
		d := o.Y - grand
		totalSS += d * d
	}

	table := &AnovaTable{N: len(obs), TotalSS: totalSS}
	dfUsed := 0
	ssUsed := 0.0
	for f := 0; f < k; f++ {
		type cell struct {
			sum float64
			n   int
		}
		levels := map[string]*cell{}
		for _, o := range obs {
			c := levels[o.Levels[f]]
			if c == nil {
				c = &cell{}
				levels[o.Levels[f]] = c
			}
			c.sum += o.Y
			c.n++
		}
		ss := 0.0
		for _, c := range levels {
			m := c.sum / float64(c.n)
			d := m - grand
			ss += float64(c.n) * d * d
		}
		df := len(levels) - 1
		fr := FactorResult{Name: factorNames[f], DF: df, SumSq: ss}
		if df > 0 {
			fr.MeanSq = ss / float64(df)
		}
		table.Factors = append(table.Factors, fr)
		dfUsed += df
		ssUsed += ss
	}

	resDF := len(obs) - 1 - dfUsed
	resSS := totalSS - ssUsed
	if resSS < 0 {
		resSS = 0
	}
	table.Residual.DF = resDF
	table.Residual.SumSq = resSS
	if resDF > 0 {
		table.Residual.MeanSq = resSS / float64(resDF)
	}

	for i := range table.Factors {
		fr := &table.Factors[i]
		if fr.DF == 0 || resDF <= 0 || table.Residual.MeanSq == 0 {
			// No variation to test against: a zero residual with a
			// nonzero factor effect is "infinitely significant".
			if fr.SumSq > 0 && table.Residual.MeanSq == 0 {
				fr.F = inf()
				fr.P = 0
				fr.Significant = true
			} else {
				fr.P = 1
			}
			continue
		}
		fr.F = fr.MeanSq / table.Residual.MeanSq
		fr.P = 1 - FCDF(fr.F, float64(fr.DF), float64(resDF))
		fr.Significant = fr.P < 0.05
	}
	return table, nil
}

func inf() float64 { return math.Inf(1) }

// String renders the table in R's anova layout.
func (t *AnovaTable) String() string {
	out := fmt.Sprintf("%-14s %6s %14s %14s %12s %12s\n", "Factor", "Df", "Sum Sq", "Mean Sq", "F value", "Pr(>F)")
	rows := append([]FactorResult(nil), t.Factors...)
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].F > rows[j].F })
	for _, f := range rows {
		sig := " "
		if f.Significant {
			sig = "***"
		}
		out += fmt.Sprintf("%-14s %6d %14.1f %14.1f %12.2f %12.3g %s\n", f.Name, f.DF, f.SumSq, f.MeanSq, f.F, f.P, sig)
	}
	out += fmt.Sprintf("%-14s %6d %14.1f %14.1f\n", "Residuals", t.Residual.DF, t.Residual.SumSq, t.Residual.MeanSq)
	return out
}
