package stats

import "math"

// KDE is a Gaussian kernel density estimate, the smoothing behind the
// paper's Figure 1 violin plots (violin plots are box plots overlaid
// with a density trace; Hintze & Nelson 1998).
type KDE struct {
	xs        []float64
	bandwidth float64
}

// NewKDE builds a density estimate with Silverman's rule-of-thumb
// bandwidth. A zero-variance sample gets a nominal bandwidth of 1 so the
// density stays well-defined.
func NewKDE(xs []float64) *KDE {
	sd := StdDev(xs)
	n := float64(len(xs))
	bw := 1.0
	if sd > 0 && n > 1 {
		// Silverman: 0.9 * min(sd, IQR/1.34) * n^(-1/5)
		sum, err := Summarize(xs)
		spread := sd
		if err == nil {
			if iqr := sum.IQR() / 1.34; iqr > 0 && iqr < spread {
				spread = iqr
			}
		}
		bw = 0.9 * spread * math.Pow(n, -0.2)
	}
	return &KDE{xs: append([]float64(nil), xs...), bandwidth: bw}
}

// Bandwidth returns the kernel bandwidth in data units.
func (k *KDE) Bandwidth() float64 { return k.bandwidth }

// At evaluates the density estimate at x.
func (k *KDE) At(x float64) float64 {
	if len(k.xs) == 0 {
		return 0
	}
	const invSqrt2Pi = 0.3989422804014327
	s := 0.0
	for _, xi := range k.xs {
		u := (x - xi) / k.bandwidth
		s += math.Exp(-0.5*u*u) * invSqrt2Pi
	}
	return s / (float64(len(k.xs)) * k.bandwidth)
}

// Grid evaluates the density at n evenly spaced points covering the
// sample range extended by one bandwidth on each side, returning the
// grid locations and densities — the shape a violin plot draws.
func (k *KDE) Grid(n int) (locs, density []float64) {
	if n < 2 || len(k.xs) == 0 {
		return nil, nil
	}
	lo := Min(k.xs) - k.bandwidth
	hi := Max(k.xs) + k.bandwidth
	locs = make([]float64, n)
	density = make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := 0; i < n; i++ {
		locs[i] = lo + float64(i)*step
		density[i] = k.At(locs[i])
	}
	return locs, density
}
