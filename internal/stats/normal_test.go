package stats

import (
	"math"
	"testing"
)

func TestNormalQuantileKnownValues(t *testing.T) {
	// Reference values from standard normal tables (to 1e-6).
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.995, 2.575829},
		{0.841344746, 1}, // Phi(1)
		{0.9, 1.281552},
		{0.99, 2.326348},
		{0.999, 3.090232},
		{0.001, -3.090232},
		{1e-6, -4.753424},
	}
	for _, c := range cases {
		got := NormalQuantile(c.p)
		if math.Abs(got-c.want) > 1e-5 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for p := 0.0005; p < 1; p += 0.0101 {
		x := NormalQuantile(p)
		back := NormalCDF(x)
		if math.Abs(back-p) > 1e-9 {
			t.Fatalf("NormalCDF(NormalQuantile(%v)) = %v, off by %v", p, back, back-p)
		}
	}
}

func TestNormalQuantileEdges(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Errorf("endpoints: got %v, %v", NormalQuantile(0), NormalQuantile(1))
	}
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		if !math.IsNaN(NormalQuantile(p)) {
			t.Errorf("NormalQuantile(%v) = %v, want NaN", p, NormalQuantile(p))
		}
	}
}
