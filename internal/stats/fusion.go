package stats

import (
	"errors"
	"fmt"
)

// Errors reported by the fusion helpers.
var (
	// ErrLengthMismatch reports paired slices of different lengths.
	ErrLengthMismatch = errors.New("stats: paired samples must have equal length")
	// ErrBadVariance reports a negative variance.
	ErrBadVariance = errors.New("stats: variance must be non-negative")
	// ErrBadSampleSize reports a sample size below one.
	ErrBadSampleSize = errors.New("stats: sample size must be at least one")
)

// InverseVarianceMean combines independent estimates of one quantity by
// inverse-variance weighting: the minimum-variance unbiased linear
// combination, with variance 1/Σ(1/vᵢ) — never larger than the
// smallest input variance, which is what makes fusion a pure win.
//
// A zero variance marks an exact observation. Exact observations
// dominate: the result is then the mean of the exact values with
// variance zero (the noisy estimates add nothing). A single estimate
// passes through unchanged.
func InverseVarianceMean(values, variances []float64) (mean, variance float64, err error) {
	if len(values) == 0 {
		return 0, 0, ErrEmpty
	}
	if len(values) != len(variances) {
		return 0, 0, fmt.Errorf("%w (%d values, %d variances)", ErrLengthMismatch, len(values), len(variances))
	}
	exact := 0
	var exactSum float64
	for i, v := range variances {
		if v < 0 {
			return 0, 0, fmt.Errorf("%w (got %v)", ErrBadVariance, v)
		}
		if v == 0 {
			exact++
			exactSum += values[i]
		}
	}
	if exact > 0 {
		return exactSum / float64(exact), 0, nil
	}
	var wSum, wxSum float64
	for i, v := range variances {
		w := 1 / v
		wSum += w
		wxSum += w * values[i]
	}
	return wxSum / wSum, 1 / wSum, nil
}

// PooledVariance pools per-batch sample variances into one estimate of
// the common per-observation variance, weighting each batch by its
// degrees of freedom (nᵢ-1). Batches of a single observation carry no
// dispersion information and contribute nothing; if every batch is a
// single observation the pooled variance is zero, mirroring how
// Variance treats a single sample.
func PooledVariance(variances []float64, sizes []int) (float64, error) {
	if len(variances) == 0 {
		return 0, ErrEmpty
	}
	if len(variances) != len(sizes) {
		return 0, fmt.Errorf("%w (%d variances, %d sizes)", ErrLengthMismatch, len(variances), len(sizes))
	}
	var num float64
	df := 0
	for i, v := range variances {
		if v < 0 {
			return 0, fmt.Errorf("%w (got %v)", ErrBadVariance, v)
		}
		if sizes[i] < 1 {
			return 0, fmt.Errorf("%w (got %d)", ErrBadSampleSize, sizes[i])
		}
		num += float64(sizes[i]-1) * v
		df += sizes[i] - 1
	}
	if df == 0 {
		return 0, nil
	}
	return num / float64(df), nil
}

// Covariance returns the unbiased sample covariance (n-1 denominator)
// of paired observations. Fewer than two pairs leave covariance
// unobservable and return 0, mirroring Variance.
func Covariance(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("%w (%d vs %d)", ErrLengthMismatch, len(xs), len(ys))
	}
	n := len(xs)
	if n < 2 {
		return 0, nil
	}
	mx, my := Mean(xs), Mean(ys)
	s := 0.0
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(n-1), nil
}
