package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestCholeskySolve(t *testing.T) {
	// A = L Lᵀ with known L, so the factor is checkable exactly.
	a := NewMatrix(3, 3)
	vals := [][]float64{
		{4, 2, 2},
		{2, 5, 3},
		{2, 3, 6},
	}
	for i, row := range vals {
		for j, v := range row {
			a.Set(i, j, v)
		}
	}
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatalf("NewCholesky: %v", err)
	}
	want := []float64{1, 2, 3}
	b := a.MulVec(want)
	got := ch.Solve(b)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-10 {
			t.Errorf("x[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestCholeskyRejectsSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 1) // rank 1
	if _, err := NewCholesky(a); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("singular matrix: got %v, want ErrNotSPD", err)
	}
	b := NewMatrix(2, 2)
	b.Set(0, 0, 1)
	b.Set(1, 1, -1) // indefinite
	if _, err := NewCholesky(b); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("indefinite matrix: got %v, want ErrNotSPD", err)
	}
}

func TestSolveSPDRandom(t *testing.T) {
	// Random SPD systems A = MᵀM + I round-trip through SolveSPD.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(6)
		m := NewMatrix(n, n)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += m.At(k, i) * m.At(k, j)
				}
				if i == j {
					s++
				}
				a.Set(i, j, s)
			}
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		got, err := SolveSPD(a, a.MulVec(want))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestWeightedLeastSquaresMatchesClosedForm(t *testing.T) {
	// One-column design with weights: β = Σwxy / Σwx².
	x := NewMatrix(4, 1)
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2.1, 3.9, 6.2, 7.8}
	ws := []float64{1, 2, 1, 0.5}
	for i, v := range xs {
		x.Set(i, 0, v)
	}
	beta, inv, err := WeightedLeastSquares(x, ys, ws)
	if err != nil {
		t.Fatalf("WeightedLeastSquares: %v", err)
	}
	var swxy, swxx float64
	for i := range xs {
		swxy += ws[i] * xs[i] * ys[i]
		swxx += ws[i] * xs[i] * xs[i]
	}
	if math.Abs(beta[0]-swxy/swxx) > 1e-12 {
		t.Errorf("beta = %v, want %v", beta[0], swxy/swxx)
	}
	if math.Abs(inv.At(0, 0)-1/swxx) > 1e-12 {
		t.Errorf("(XᵀWX)⁻¹ = %v, want %v", inv.At(0, 0), 1/swxx)
	}
}

func TestWeightedLeastSquaresRankDeficient(t *testing.T) {
	// Two identical columns cannot be separated.
	x := NewMatrix(3, 2)
	for i := 0; i < 3; i++ {
		x.Set(i, 0, float64(i+1))
		x.Set(i, 1, float64(i+1))
	}
	if _, _, err := WeightedLeastSquares(x, []float64{1, 2, 3}, nil); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("rank-deficient design: got %v, want ErrNotSPD", err)
	}
}

// TestLinearFitViaKernel cross-checks the kernel-backed LinearFit
// against the direct textbook computation on random data.
func TestLinearFitViaKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
			ys[i] = 3 + 0.7*xs[i] + rng.NormFloat64()
		}
		fit, err := LinearFit(xs, ys)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Direct formulas.
		mx, my := Mean(xs), Mean(ys)
		var sxx, sxy float64
		for i := range xs {
			sxx += (xs[i] - mx) * (xs[i] - mx)
			sxy += (xs[i] - mx) * (ys[i] - my)
		}
		wantSlope := sxy / sxx
		if math.Abs(fit.Slope-wantSlope) > 1e-9*math.Max(1, math.Abs(wantSlope)) {
			t.Errorf("trial %d: slope %v, want %v", trial, fit.Slope, wantSlope)
		}
		wantIntercept := my - wantSlope*mx
		if math.Abs(fit.Intercept-wantIntercept) > 1e-9*math.Max(1, math.Abs(wantIntercept)) {
			t.Errorf("trial %d: intercept %v, want %v", trial, fit.Intercept, wantIntercept)
		}
	}
}
