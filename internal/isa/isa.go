// Package isa models the instruction set executed by the simulated
// processors in this study.
//
// The model is deliberately not a full IA32 semantic model: the paper's
// measurements depend on *which* instructions retire, in *which privilege
// mode*, and *where* the special counter-access instructions (RDPMC, RDTSC,
// WRMSR) sit inside the library call sequences — not on data values. An
// instruction therefore carries an operation kind plus the small amount of
// operand information the simulator needs (counter index, syscall number,
// loop trip count, byte size for placement modeling).
//
// Programs are flat instruction slices with byte addresses assigned from a
// load base, so code placement — which the paper shows perturbs cycle
// counts via the front end — is a first-class property.
package isa

import "fmt"

// Op identifies the operation kind of a single instruction.
type Op uint8

// Operation kinds. OpALU through OpNop retire as ordinary instructions.
// The remaining kinds have side effects in the CPU model.
const (
	// OpALU is a generic integer/register instruction (add, cmp, mov...).
	OpALU Op = iota
	// OpLoad is a memory read.
	OpLoad
	// OpStore is a memory write.
	OpStore
	// OpBranch is a conditional branch. A carries the branch target index
	// (instruction index within the same program), B!=0 means the branch
	// is taken (the model is control-flow-deterministic).
	OpBranch
	// OpNop retires but performs no work.
	OpNop

	// OpRDPMC reads performance counter A into a capture slot. If Slot is
	// non-negative the simulator records the (virtualized) counter value.
	OpRDPMC
	// OpRDTSC reads the time stamp counter. If Slot is non-negative the
	// simulator records the current cycle count.
	OpRDTSC
	// OpRDMSR reads model-specific register A. Kernel mode only.
	OpRDMSR
	// OpWRMSR writes a model-specific register: A is an MSRAction and B an
	// action operand (typically a counter bitmask). Kernel mode only.
	OpWRMSR

	// OpSyscall enters the kernel and runs the handler registered for
	// syscall number A. Retires as one instruction in user mode; handler
	// instructions retire in kernel mode.
	OpSyscall
	// OpSysRet returns from a syscall handler to user mode.
	OpSysRet
	// OpIRet returns from an interrupt handler.
	OpIRet

	// OpVarWork retires a variable number of ALU instructions, sampled at
	// execution time: between 0 and A extra instructions with geometric
	// decay (B is a per-site stream discriminator). It models data- and
	// cache-dependent path-length variation inside library and kernel code
	// and is the source of run-to-run jitter in the study.
	OpVarWork

	// OpLoop executes the next B instructions A times (the loop body).
	// Bodies restricted to plain retiring ops may be fast-forwarded
	// analytically by the simulator; see cpu.Core.
	OpLoop

	// OpHalt stops program execution.
	OpHalt
)

var opNames = [...]string{
	OpALU:     "alu",
	OpLoad:    "load",
	OpStore:   "store",
	OpBranch:  "branch",
	OpNop:     "nop",
	OpRDPMC:   "rdpmc",
	OpRDTSC:   "rdtsc",
	OpRDMSR:   "rdmsr",
	OpWRMSR:   "wrmsr",
	OpSyscall: "syscall",
	OpSysRet:  "sysret",
	OpIRet:    "iret",
	OpVarWork: "varwork",
	OpLoop:    "loop",
	OpHalt:    "halt",
}

// String returns the mnemonic for the operation.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// MSRAction selects the effect of an OpWRMSR instruction. Real hardware
// exposes raw PERFEVTSEL/PMC registers; the simulator models the four
// operations the measurement infrastructures actually perform.
type MSRAction int64

const (
	// MSREnable enables counting on the counters selected by the operand
	// bitmask.
	MSREnable MSRAction = iota
	// MSRDisable disables counting on the selected counters.
	MSRDisable
	// MSRReset zeroes the selected counters (hardware value and, through
	// the extension hook, any per-thread accumulators).
	MSRReset
)

// String returns the action name.
func (a MSRAction) String() string {
	switch a {
	case MSREnable:
		return "enable"
	case MSRDisable:
		return "disable"
	case MSRReset:
		return "reset"
	}
	return fmt.Sprintf("msraction(%d)", int64(a))
}

// NoSlot marks an RDPMC/RDTSC instruction whose result is discarded.
const NoSlot = -1

// Instr is a single instruction. The zero value is a 4-byte OpALU
// instruction with no capture slot; construct instructions through the
// helpers below so Slot defaults correctly.
type Instr struct {
	Op   Op
	A    int64 // operand: counter index, syscall number, branch target, trip count...
	B    int64 // second operand: action operand, loop body length, taken flag...
	Slot int16 // capture slot for RDPMC/RDTSC results; NoSlot when unused
	Size uint8 // encoded size in bytes, for address assignment
}

// DefaultSize is the encoded instruction size assumed when none is given.
// IA32 instructions vary from 1 to 15 bytes; the placement model only
// needs relative layout, so a uniform default keeps programs simple while
// benchmark-critical code (the loop body) sets explicit sizes.
const DefaultSize = 4

// ALU returns a generic retiring instruction.
func ALU() Instr { return Instr{Op: OpALU, Slot: NoSlot, Size: DefaultSize} }

// Load returns a memory-read instruction.
func Load() Instr { return Instr{Op: OpLoad, Slot: NoSlot, Size: DefaultSize} }

// Store returns a memory-write instruction.
func Store() Instr { return Instr{Op: OpStore, Slot: NoSlot, Size: DefaultSize} }

// Nop returns an instruction that retires without work.
func Nop() Instr { return Instr{Op: OpNop, Slot: NoSlot, Size: DefaultSize} }

// Branch returns a conditional branch to instruction index target.
// taken selects the modeled direction.
func Branch(target int, taken bool) Instr {
	b := int64(0)
	if taken {
		b = 1
	}
	return Instr{Op: OpBranch, A: int64(target), B: b, Slot: NoSlot, Size: 2}
}

// RDPMC returns a counter-read instruction for programmable counter
// index ctr, capturing into slot (NoSlot to discard).
func RDPMC(ctr int, slot int) Instr {
	return Instr{Op: OpRDPMC, A: int64(ctr), Slot: int16(slot), Size: 3}
}

// RDTSC returns a time-stamp-counter read capturing into slot.
func RDTSC(slot int) Instr {
	return Instr{Op: OpRDTSC, Slot: int16(slot), Size: 2}
}

// RDMSR returns a model-specific-register read (kernel mode only).
func RDMSR(msr int64) Instr {
	return Instr{Op: OpRDMSR, A: msr, Slot: NoSlot, Size: 2}
}

// WRMSR returns a counter-control write (kernel mode only): action applied
// to the counters in mask (bit i = programmable counter i).
func WRMSR(action MSRAction, mask uint64) Instr {
	return Instr{Op: OpWRMSR, A: int64(action), B: int64(mask), Slot: NoSlot, Size: 2}
}

// Syscall returns a kernel entry instruction for syscall number nr.
func Syscall(nr int) Instr {
	return Instr{Op: OpSyscall, A: int64(nr), Slot: NoSlot, Size: 2}
}

// SysRet returns the syscall-exit instruction.
func SysRet() Instr { return Instr{Op: OpSysRet, Slot: NoSlot, Size: 2} }

// IRet returns the interrupt-return instruction.
func IRet() Instr { return Instr{Op: OpIRet, Slot: NoSlot, Size: 2} }

// VarWork returns an instruction retiring a variable amount of extra work:
// 0..max extra instructions with geometric decay. stream discriminates
// independent jitter sites fed from the same run seed.
func VarWork(max int, stream int64) Instr {
	return Instr{Op: OpVarWork, A: int64(max), B: stream, Slot: NoSlot, Size: DefaultSize}
}

// Loop returns a loop-block header: the next body instructions execute
// iters times.
func Loop(iters int64, body int) Instr {
	return Instr{Op: OpLoop, A: iters, B: int64(body), Slot: NoSlot, Size: 0}
}

// Halt returns the program-terminating instruction.
func Halt() Instr { return Instr{Op: OpHalt, Slot: NoSlot, Size: 1} }

// Retires reports how many instructions this op contributes to the retired
// instruction count when executed once (OpVarWork's variable extra work and
// OpLoop's body are accounted separately by the simulator).
func (i Instr) Retires() int {
	switch i.Op {
	case OpLoop:
		return 0 // loop header is bookkeeping, not an instruction
	case OpVarWork:
		return 1 // baseline; extra work sampled at execution
	default:
		return 1
	}
}

// String renders the instruction for debugging.
func (i Instr) String() string {
	switch i.Op {
	case OpBranch:
		return fmt.Sprintf("branch -> %d (taken=%v)", i.A, i.B != 0)
	case OpRDPMC:
		return fmt.Sprintf("rdpmc c%d slot=%d", i.A, i.Slot)
	case OpRDTSC:
		return fmt.Sprintf("rdtsc slot=%d", i.Slot)
	case OpWRMSR:
		return fmt.Sprintf("wrmsr %s mask=%#x", MSRAction(i.A), uint64(i.B))
	case OpSyscall:
		return fmt.Sprintf("syscall %d", i.A)
	case OpVarWork:
		return fmt.Sprintf("varwork max=%d stream=%d", i.A, i.B)
	case OpLoop:
		return fmt.Sprintf("loop iters=%d body=%d", i.A, i.B)
	default:
		return i.Op.String()
	}
}
