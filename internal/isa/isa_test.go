package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		OpALU:     "alu",
		OpRDPMC:   "rdpmc",
		OpWRMSR:   "wrmsr",
		OpSyscall: "syscall",
		OpLoop:    "loop",
		OpHalt:    "halt",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
	if got := Op(250).String(); !strings.Contains(got, "250") {
		t.Errorf("unknown op should render numerically, got %q", got)
	}
}

func TestMSRActionString(t *testing.T) {
	for a, want := range map[MSRAction]string{
		MSREnable:  "enable",
		MSRDisable: "disable",
		MSRReset:   "reset",
	} {
		if got := a.String(); got != want {
			t.Errorf("MSRAction(%d) = %q, want %q", a, got, want)
		}
	}
	if got := MSRAction(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown action should render numerically, got %q", got)
	}
}

func TestConstructorsDefaults(t *testing.T) {
	if in := ALU(); in.Op != OpALU || in.Slot != NoSlot || in.Size != DefaultSize {
		t.Errorf("ALU() = %+v", in)
	}
	if in := RDPMC(3, 7); in.A != 3 || in.Slot != 7 {
		t.Errorf("RDPMC(3,7) = %+v", in)
	}
	if in := Branch(12, true); in.A != 12 || in.B != 1 {
		t.Errorf("Branch = %+v", in)
	}
	if in := Branch(12, false); in.B != 0 {
		t.Errorf("Branch not-taken = %+v", in)
	}
	if in := WRMSR(MSRReset, 0b101); MSRAction(in.A) != MSRReset || uint64(in.B) != 0b101 {
		t.Errorf("WRMSR = %+v", in)
	}
	if in := Syscall(42); in.A != 42 {
		t.Errorf("Syscall = %+v", in)
	}
	if in := Loop(1000, 3); in.A != 1000 || in.B != 3 {
		t.Errorf("Loop = %+v", in)
	}
}

func TestInstrString(t *testing.T) {
	for _, tc := range []struct {
		in   Instr
		want string
	}{
		{RDPMC(2, 0), "rdpmc c2 slot=0"},
		{WRMSR(MSREnable, 1), "wrmsr enable mask=0x1"},
		{Syscall(7), "syscall 7"},
		{Loop(5, 2), "loop iters=5 body=2"},
		{Branch(3, true), "branch -> 3 (taken=true)"},
		{RDTSC(1), "rdtsc slot=1"},
		{VarWork(4, 9), "varwork max=4 stream=9"},
		{Halt(), "halt"},
	} {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestProgramAddresses(t *testing.T) {
	b := NewBuilder("t", 0x1000)
	b.Emit(ALU(), Branch(0, true), Halt())
	p := b.Build()
	if got := p.Addr(0); got != 0x1000 {
		t.Errorf("Addr(0) = %#x", got)
	}
	if got := p.Addr(1); got != 0x1000+DefaultSize {
		t.Errorf("Addr(1) = %#x", got)
	}
	// branch is 2 bytes, halt 1 byte
	if got := p.ByteSize(); got != DefaultSize+2+1 {
		t.Errorf("ByteSize = %d", got)
	}
	p.SetBase(0x2000)
	if got := p.Addr(0); got != 0x2000 {
		t.Errorf("after SetBase, Addr(0) = %#x", got)
	}
}

func TestValidate(t *testing.T) {
	ok := NewBuilder("ok", 0).Emit(ALU(), Halt()).Build()
	if err := ok.Validate(true); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}

	if err := (&Program{Name: "empty"}).Validate(true); err == nil {
		t.Error("empty program accepted")
	}

	noHalt := NewBuilder("nohalt", 0).Emit(ALU()).Build()
	if err := noHalt.Validate(true); err == nil {
		t.Error("program without halt accepted")
	}

	badBranch := NewBuilder("bb", 0).Emit(Branch(99, true), Halt()).Build()
	if err := badBranch.Validate(true); err == nil {
		t.Error("out-of-range branch accepted")
	}

	badLoop := NewBuilder("bl", 0).Emit(Loop(3, 5), ALU(), Halt()).Build()
	if err := badLoop.Validate(true); err == nil {
		t.Error("loop body past end accepted")
	}

	negLoop := NewBuilder("nl", 0).Emit(Loop(-1, 1), ALU(), Halt()).Build()
	if err := negLoop.Validate(true); err == nil {
		t.Error("negative loop count accepted")
	}

	kernelOnly := NewBuilder("k", 0).Emit(WRMSR(MSREnable, 1), SysRet()).Build()
	if err := kernelOnly.Validate(true); err == nil {
		t.Error("WRMSR accepted in user program")
	}
	if err := kernelOnly.Validate(false); err != nil {
		t.Errorf("WRMSR rejected in kernel program: %v", err)
	}

	negVar := NewBuilder("nv", 0).Emit(Instr{Op: OpVarWork, A: -2, Slot: NoSlot, Size: 4}, Halt()).Build()
	if err := negVar.Validate(true); err == nil {
		t.Error("negative varwork accepted")
	}
}

// TestStaticRetiredLoopModel verifies the paper's analytical loop model:
// a program of [1 init instruction; loop of 3-instruction body; halt]
// retires exactly 1 + 3*MAX instructions (halt excluded from the
// benchmark region by construction in the harness; here we count it and
// subtract).
func TestStaticRetiredLoopModel(t *testing.T) {
	f := func(iters uint16) bool {
		l := int64(iters)
		b := NewBuilder("loop", 0)
		b.Emit(ALU()) // movl $0, %eax
		b.Loop(l, func(body *Builder) {
			body.Emit(ALU())           // addl
			body.Emit(ALU())           // cmpl
			body.Emit(Branch(0, true)) // jne
		})
		b.Emit(Halt())
		p := b.Build()
		return p.StaticRetired() == 1+3*l+1 // +1 for halt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStaticRetiredNested(t *testing.T) {
	b := NewBuilder("nested", 0)
	b.Loop(4, func(outer *Builder) {
		outer.Emit(ALU())
		outer.Loop(5, func(inner *Builder) {
			inner.Emit(ALU(), ALU())
		})
	})
	b.Emit(Halt())
	p := b.Build()
	// per outer iteration: 1 + 5*2 = 11; total 44 + halt
	if got := p.StaticRetired(); got != 4*11+1 {
		t.Errorf("StaticRetired = %d, want %d", got, 4*11+1)
	}
}

func TestBuilderPos(t *testing.T) {
	b := NewBuilder("pos", 0)
	if b.Pos() != 0 {
		t.Error("fresh builder Pos != 0")
	}
	b.ALUBlock(7)
	if b.Pos() != 7 {
		t.Errorf("Pos after 7 ALU = %d", b.Pos())
	}
}

func TestRetires(t *testing.T) {
	if Loop(5, 1).Retires() != 0 {
		t.Error("loop header should not retire")
	}
	if ALU().Retires() != 1 || VarWork(3, 0).Retires() != 1 {
		t.Error("baseline retirement should be 1")
	}
}
