package isa

import (
	"errors"
	"fmt"
)

// Program is a flat instruction sequence loaded at a base byte address.
// Instruction i occupies bytes [Addr(i), Addr(i)+Size). The load base is
// significant: the paper demonstrates (Figures 11-12) that code placement
// alone changes measured cycle counts, so placement is part of the model.
type Program struct {
	// Name identifies the program in diagnostics ("loop-bench", "sys_read"...).
	Name string
	// Base is the load address of the first instruction.
	Base uint64
	// Code is the instruction sequence.
	Code []Instr

	addrs []uint64 // lazily computed instruction addresses
}

// ErrNoHalt is reported by Validate for programs that can run off the end.
var ErrNoHalt = errors.New("isa: program does not end in halt, sysret, or iret")

// Len returns the number of instructions.
func (p *Program) Len() int { return len(p.Code) }

// Addr returns the byte address of instruction i.
func (p *Program) Addr(i int) uint64 {
	if p.addrs == nil {
		p.computeAddrs()
	}
	return p.addrs[i]
}

// ByteSize returns the total encoded size of the program in bytes.
func (p *Program) ByteSize() uint64 {
	if p.addrs == nil {
		p.computeAddrs()
	}
	if len(p.Code) == 0 {
		return 0
	}
	last := len(p.Code) - 1
	return p.addrs[last] + uint64(p.Code[last].Size) - p.Base
}

func (p *Program) computeAddrs() {
	p.addrs = make([]uint64, len(p.Code))
	a := p.Base
	for i, in := range p.Code {
		p.addrs[i] = a
		a += uint64(in.Size)
	}
}

// SetBase relocates the program to a new load address.
func (p *Program) SetBase(base uint64) {
	p.Base = base
	p.addrs = nil
}

// Validate checks structural well-formedness: branch targets in range,
// loop bodies in range and non-overlapping with program end, terminating
// instruction present, and kernel-only instructions flagged when
// wantUser is true (user-mode programs must not contain WRMSR/RDMSR).
func (p *Program) Validate(wantUser bool) error {
	n := len(p.Code)
	if n == 0 {
		return errors.New("isa: empty program")
	}
	switch p.Code[n-1].Op {
	case OpHalt, OpSysRet, OpIRet:
	default:
		return fmt.Errorf("%w (program %q ends in %s)", ErrNoHalt, p.Name, p.Code[n-1].Op)
	}
	for i, in := range p.Code {
		switch in.Op {
		case OpBranch:
			if in.A < 0 || in.A >= int64(n) {
				return fmt.Errorf("isa: %q instr %d: branch target %d out of range [0,%d)", p.Name, i, in.A, n)
			}
		case OpLoop:
			if in.A < 0 {
				return fmt.Errorf("isa: %q instr %d: negative loop count %d", p.Name, i, in.A)
			}
			if in.B <= 0 || i+1+int(in.B) > n {
				return fmt.Errorf("isa: %q instr %d: loop body length %d out of range", p.Name, i, in.B)
			}
		case OpWRMSR, OpRDMSR:
			if wantUser {
				return fmt.Errorf("isa: %q instr %d: %s requires kernel mode", p.Name, i, in.Op)
			}
		case OpVarWork:
			if in.A < 0 {
				return fmt.Errorf("isa: %q instr %d: negative varwork max %d", p.Name, i, in.A)
			}
		}
	}
	return nil
}

// StaticRetired returns the exact retired-instruction count of one
// execution of the program assuming all OpVarWork sites contribute their
// baseline (zero extra) and loops run their full trip counts. This is the
// analytical ground-truth model used for the micro-benchmarks, where the
// paper's loop model ie = 1 + 3*MAX must hold.
func (p *Program) StaticRetired() int64 {
	return staticRetired(p.Code)
}

func staticRetired(code []Instr) int64 {
	var total int64
	for i := 0; i < len(code); i++ {
		in := code[i]
		if in.Op == OpLoop {
			body := code[i+1 : i+1+int(in.B)]
			total += in.A * staticRetired(body)
			i += int(in.B)
			continue
		}
		total += int64(in.Retires())
	}
	return total
}

// Builder incrementally assembles a Program. Its methods return the
// builder for chaining; Emit appends raw instructions.
type Builder struct {
	p Program
}

// NewBuilder returns a builder for a program with the given name and base.
func NewBuilder(name string, base uint64) *Builder {
	return &Builder{p: Program{Name: name, Base: base}}
}

// Emit appends instructions.
func (b *Builder) Emit(ins ...Instr) *Builder {
	b.p.Code = append(b.p.Code, ins...)
	return b
}

// ALUBlock appends n generic retiring instructions. It is the workhorse
// for modeling library and kernel path lengths.
func (b *Builder) ALUBlock(n int) *Builder {
	for i := 0; i < n; i++ {
		b.p.Code = append(b.p.Code, ALU())
	}
	return b
}

// Loop appends a loop running body() iters times. body receives a nested
// builder; its emitted instructions become the loop body.
func (b *Builder) Loop(iters int64, body func(*Builder)) *Builder {
	nested := &Builder{}
	body(nested)
	b.p.Code = append(b.p.Code, Loop(iters, len(nested.p.Code)))
	b.p.Code = append(b.p.Code, nested.p.Code...)
	return b
}

// Pos returns the index the next emitted instruction will have.
func (b *Builder) Pos() int { return len(b.p.Code) }

// Build finalizes and returns the program.
func (b *Builder) Build() *Program {
	p := b.p
	return &p
}
