package evlog

import (
	"encoding/json"
	"testing"
	"time"
)

type seqEvent struct {
	Seq int    `json:"seq"`
	End bool   `json:"end,omitempty"`
	Tag string `json:"tag,omitempty"`
}

// follow consumes the log from cursor i to its end event, using the
// replay-then-follow loop exactly as the HTTP stream handlers do, and
// returns every line.
func follow(t *testing.T, l *Log, i int) [][]byte {
	t.Helper()
	var out [][]byte
	deadline := time.After(5 * time.Second)
	for {
		lines, next, wait, done := l.Events(i)
		out = append(out, lines...)
		i = next
		if len(lines) > 0 {
			continue // drain before deciding on done: lines may include the end
		}
		if done {
			return out
		}
		select {
		case <-wait:
		case <-deadline:
			t.Fatalf("follower stalled at cursor %d with %d lines", i, len(out))
		}
	}
}

// TestFollowAfterReplayOrdering: a reader that attaches while a
// producer is mid-stream replays the retained prefix, then follows live
// appends — and the spliced sequence has no gap, no duplicate, and no
// reordering at the replay/follow boundary.
func TestFollowAfterReplayOrdering(t *testing.T) {
	const total = 500
	l := New(total+10, time.Now) // retain everything: this test is about ordering

	// Seed a prefix so the follower genuinely replays before following.
	for i := 0; i < 100; i++ {
		if !l.Append(seqEvent{Seq: i}) {
			t.Fatalf("append %d rejected", i)
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 100; i < total; i++ {
			l.Append(seqEvent{Seq: i})
		}
		l.End(seqEvent{Seq: total, End: true})
	}()

	lines := follow(t, l, 0)
	<-done
	if len(lines) != total+1 {
		t.Fatalf("followed %d lines, want %d", len(lines), total+1)
	}
	for i, line := range lines {
		var ev seqEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if ev.Seq != i {
			t.Fatalf("line %d carries seq %d: gap, duplicate, or reorder", i, ev.Seq)
		}
	}
	var last seqEvent
	if err := json.Unmarshal(lines[len(lines)-1], &last); err != nil || !last.End {
		t.Fatalf("final line is not the end event: %s", lines[len(lines)-1])
	}
}

// TestCloseWhileFollowing: End from another goroutine wakes a follower
// blocked on the wait channel, and the next read reports done — the
// stream terminates instead of hanging.
func TestCloseWhileFollowing(t *testing.T) {
	l := New(16, time.Now)
	l.Append(seqEvent{Seq: 0})

	lines, next, _, done := l.Events(0)
	if len(lines) != 1 || done {
		t.Fatalf("replay = %d lines, done=%v; want 1, false", len(lines), done)
	}
	_, _, wait, done := l.Events(next)
	if done || wait == nil {
		t.Fatalf("caught-up read: done=%v wait=%v; want a live wait channel", done, wait)
	}

	go func() {
		time.Sleep(10 * time.Millisecond)
		l.End(seqEvent{Seq: 1, End: true})
	}()
	select {
	case <-wait:
	case <-time.After(5 * time.Second):
		t.Fatal("End did not wake the blocked follower")
	}
	lines, next, _, done = l.Events(next)
	if len(lines) != 1 || !done {
		t.Fatalf("post-End read = %d lines, done=%v; want the end line and done", len(lines), done)
	}
	// Fully consumed and complete: no further lines, still done.
	lines, _, _, done = l.Events(next)
	if len(lines) != 0 || !done {
		t.Fatalf("drained read = %d lines, done=%v; want 0, true", len(lines), done)
	}
}

// TestBoundedReplay: a reader attaching after the retention bound
// trimmed the head replays only the retained tail, with the cursor
// jumped forward — old lines are gone, order and completeness of the
// tail are preserved.
func TestBoundedReplay(t *testing.T) {
	const cap = 20
	l := New(cap, time.Now)
	const total = 100
	for i := 0; i < total; i++ {
		l.Append(seqEvent{Seq: i})
	}
	lines, next, _, _ := l.Events(0)
	if len(lines) > cap+cap/4 {
		t.Fatalf("replayed %d lines, retention bound is ~%d", len(lines), cap)
	}
	if next != total {
		t.Fatalf("next = %d, want %d (cursor jumps past dropped lines)", next, total)
	}
	var first seqEvent
	if err := json.Unmarshal(lines[0], &first); err != nil {
		t.Fatal(err)
	}
	if want := total - len(lines); first.Seq != want {
		t.Fatalf("tail starts at seq %d, want %d", first.Seq, want)
	}
	for i, line := range lines {
		var ev seqEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Seq != first.Seq+i {
			t.Fatalf("tail line %d carries seq %d, want %d", i, ev.Seq, first.Seq+i)
		}
	}
	// A cursor inside the dropped range clamps to the tail, not to 0.
	clamped, _, _, _ := l.Events(1)
	if len(clamped) != len(lines) {
		t.Fatalf("clamped replay = %d lines, want %d", len(clamped), len(lines))
	}
}

// TestAtomicMultiAppend: a multi-event append is all-or-nothing for
// readers, and appends after End are dropped wholesale.
func TestAtomicMultiAppend(t *testing.T) {
	l := New(16, time.Now)
	if !l.Append(seqEvent{Seq: 0}, seqEvent{Seq: 1}, seqEvent{Seq: 2}) {
		t.Fatal("append rejected on a live log")
	}
	lines, next, _, _ := l.Events(0)
	if len(lines) != 3 {
		t.Fatalf("replay = %d lines, want all 3 of the batch", len(lines))
	}
	if !l.End(seqEvent{Seq: 3, End: true}) {
		t.Fatal("first End rejected")
	}
	if l.End(seqEvent{Seq: 4, End: true}) {
		t.Fatal("second End accepted; the gate must be idempotent")
	}
	if l.Append(seqEvent{Seq: 5}) {
		t.Fatal("append after End accepted")
	}
	lines, _, _, done := l.Events(next)
	if len(lines) != 1 || !done {
		t.Fatalf("post-End state: %d lines, done=%v; want only the end event", len(lines), done)
	}
}
