// Package evlog provides the bounded, append-only event log behind the
// service's NDJSON streams: monitoring sessions and campaign runs both
// publish through it.
//
// The log holds marshaled JSON lines in emission order and supports the
// replay-then-follow contract: a reader attaching at any time first
// replays the retained lines from its cursor, then blocks on a
// notification channel for appends, until the end event is written.
// Marshaling happens at append time with encoding/json over types whose
// field order is fixed (no maps), so two logs fed identical events are
// byte-identical on the wire — the determinism the stream tests assert.
package evlog

import (
	"encoding/json"
	"sync"
	"time"
)

// Log is a bounded event log. The zero value is not usable; construct
// with New. All methods are safe for concurrent use.
type Log struct {
	now func() time.Time

	mu sync.Mutex
	// lines holds marshaled NDJSON event lines in emission order. It is
	// a bounded ring: start is the absolute index of lines[0], and lines
	// older than roughly the capacity are dropped so a long-lived
	// producer cannot hold megabytes of history. Readers that attach
	// while the full log is retained replay the complete series; later
	// attaches replay the tail.
	lines       [][]byte
	start       int
	cap         int
	notify      chan struct{} // closed and renewed on every append
	ended       bool          // end event written; the log is complete
	subscribers int
	lastAccess  time.Time
}

// New returns a log retaining about capacity lines. now supplies the
// clock for idle accounting (time.Now in production, fake in tests).
func New(capacity int, now func() time.Time) *Log {
	return &Log{
		now:        now,
		cap:        capacity,
		notify:     make(chan struct{}),
		lastAccess: now(),
	}
}

// Append marshals the events onto the log atomically — a reader sees
// either none or all of them — and wakes waiting readers. It reports
// whether the events were accepted: appends after End are dropped
// wholesale, so a completed log always ends with its end event.
func (l *Log) Append(events ...any) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.ended {
		return false
	}
	l.appendLocked(events)
	return true
}

// End writes the final event and marks the log complete. Idempotent:
// the first caller wins and later calls report false — the gate
// producers use to decide a close race.
func (l *Log) End(event any) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.ended {
		return false
	}
	l.ended = true
	l.appendLocked([]any{event})
	return true
}

// appendLocked marshals events onto the ring and wakes waiters.
func (l *Log) appendLocked(events []any) {
	for _, ev := range events {
		line, err := json.Marshal(ev)
		if err != nil {
			// Unreachable: every event type marshals. Keep the log
			// consistent rather than panicking a producer.
			continue
		}
		l.lines = append(l.lines, line)
	}
	// Trim in chunks (a quarter over the cap) so the copy that releases
	// dropped lines' backing array amortizes to O(1) per append.
	if len(l.lines) > l.cap+l.cap/4 {
		drop := len(l.lines) - l.cap
		l.lines = append([][]byte(nil), l.lines[drop:]...)
		l.start += drop
	}
	close(l.notify)
	l.notify = make(chan struct{})
}

// Ended reports whether the end event has been written.
func (l *Log) Ended() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ended
}

// Events returns the retained log lines from absolute index i on, and
// the next index to resume from (i plus the delivered lines; ahead of
// that when lines older than the retention bound were dropped). When no
// new lines exist, it returns a channel that is closed on the next
// append and whether the log is already complete (the end event is
// written, so a reader that has consumed everything can stop). Reading
// counts as client activity for idle accounting.
func (l *Log) Events(i int) (lines [][]byte, next int, wait <-chan struct{}, done bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lastAccess = l.now()
	if i < l.start {
		i = l.start
	}
	if idx := i - l.start; idx < len(l.lines) {
		lines = l.lines[idx:]
		return lines, i + len(lines), nil, l.ended
	}
	return nil, i, l.notify, l.ended
}

// Subscribe registers an attached stream; subscribed logs are never
// idle.
func (l *Log) Subscribe() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.subscribers++
	l.lastAccess = l.now()
}

// Unsubscribe detaches a stream.
func (l *Log) Unsubscribe() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.subscribers--
	l.lastAccess = l.now()
}

// Touch records client activity (snapshot reads).
func (l *Log) Touch() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lastAccess = l.now()
}

// LastAccess returns the last client-activity time.
func (l *Log) LastAccess() time.Time {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastAccess
}

// IdleSince returns how long the log has been without client activity;
// zero while any stream is attached.
func (l *Log) IdleSince(now time.Time) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.subscribers > 0 {
		return 0
	}
	return now.Sub(l.lastAccess)
}
