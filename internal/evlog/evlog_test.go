package evlog

import (
	"bytes"
	"testing"
	"time"
)

func fakeNow() func() time.Time {
	t := time.Unix(0, 0)
	return func() time.Time { return t }
}

type ev struct {
	N int `json:"n"`
}

func TestReplayThenFollow(t *testing.T) {
	l := New(100, fakeNow())
	l.Append(ev{1}, ev{2})
	lines, next, wait, done := l.Events(0)
	if len(lines) != 2 || next != 2 || done {
		t.Fatalf("replay: %d lines, next %d, done %v", len(lines), next, done)
	}
	if string(lines[0]) != `{"n":1}` {
		t.Fatalf("line 0 = %s", lines[0])
	}
	// Caught up: get a wait channel.
	lines, next, wait, done = l.Events(next)
	if len(lines) != 0 || wait == nil || done {
		t.Fatalf("follow: %d lines, wait %v, done %v", len(lines), wait, done)
	}
	go l.Append(ev{3})
	<-wait
	lines, next, _, _ = l.Events(next)
	if len(lines) != 1 || next != 3 {
		t.Fatalf("after append: %d lines, next %d", len(lines), next)
	}
}

func TestEndGateAndDrops(t *testing.T) {
	l := New(100, fakeNow())
	if !l.Append(ev{1}) {
		t.Fatal("append before end refused")
	}
	if !l.End(ev{99}) {
		t.Fatal("first End refused")
	}
	if l.End(ev{100}) {
		t.Fatal("second End accepted")
	}
	if l.Append(ev{2}) {
		t.Fatal("append after End accepted")
	}
	lines, _, _, done := l.Events(0)
	if !done || len(lines) != 2 {
		t.Fatalf("ended log: %d lines, done %v", len(lines), done)
	}
	if string(lines[len(lines)-1]) != `{"n":99}` {
		t.Fatalf("log does not end with the end event: %s", lines[len(lines)-1])
	}
	if !l.Ended() {
		t.Fatal("Ended() false after End")
	}
}

func TestRetentionTrim(t *testing.T) {
	l := New(10, fakeNow())
	for i := 0; i < 40; i++ {
		l.Append(ev{i})
	}
	lines, next, _, _ := l.Events(0)
	if len(lines) > 13 { // cap + cap/4 slack
		t.Fatalf("retained %d lines, cap 10", len(lines))
	}
	if next != 40 {
		t.Fatalf("next = %d, want 40", next)
	}
	// The retained tail is contiguous and ends at the newest line.
	if want := []byte(`{"n":39}`); !bytes.Equal(lines[len(lines)-1], want) {
		t.Fatalf("tail = %s", lines[len(lines)-1])
	}
}

func TestIdleAccounting(t *testing.T) {
	base := time.Unix(1000, 0)
	l := New(10, func() time.Time { return base })
	if d := l.IdleSince(base.Add(time.Minute)); d != time.Minute {
		t.Fatalf("idle = %v", d)
	}
	l.Subscribe()
	if d := l.IdleSince(base.Add(time.Hour)); d != 0 {
		t.Fatalf("subscribed log idle = %v", d)
	}
	l.Unsubscribe()
	if d := l.IdleSince(base.Add(time.Hour)); d != time.Hour {
		t.Fatalf("unsubscribed log idle = %v", d)
	}
}
