package server

import (
	"errors"
	"net/http"
	"time"

	"repro/internal/api"
	"repro/internal/monitor"
)

// registerSessionRoutes wires the continuous-monitoring endpoints:
//
//	POST   /sessions             api.SessionRequest -> api.SessionCreated
//	GET    /sessions/{id}        -> api.SessionSnapshot
//	GET    /sessions/{id}/stream -> NDJSON api.StreamEvent lines
//	DELETE /sessions/{id}        -> 204
func registerSessionRoutes(mux router, reg *monitor.Registry) {
	mux.HandleFunc("POST /sessions", handleJSON(sessionStatusFor, http.StatusCreated,
		func(r *http.Request, req api.SessionRequest) (api.SessionCreated, error) {
			sess, err := reg.Open(r.Context(), req)
			if err != nil {
				return api.SessionCreated{}, err
			}
			return api.SessionCreated{ID: sess.ID, Config: sess.Config()}, nil
		}))

	mux.HandleFunc("GET /sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		sess, err := reg.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, sessionStatusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, sess.Snapshot())
	})

	mux.HandleFunc("GET /sessions/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		sess, err := reg.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, sessionStatusFor(err), err)
			return
		}
		streamEvents(w, r, sess)
	})

	mux.HandleFunc("DELETE /sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := reg.Delete(r.PathValue("id")); err != nil {
			writeError(w, sessionStatusFor(err), err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
}

// eventSource is the replay-then-follow log surface monitoring
// sessions and validation campaigns share (both delegate to
// internal/evlog); streamEvents serves any of them.
type eventSource interface {
	Events(i int) (lines [][]byte, next int, wait <-chan struct{}, done bool)
	Subscribe()
	Unsubscribe()
}

// streamEvents writes an event log as NDJSON, replaying everything
// already produced and then following live until the producer ends
// (done, deleted, evicted, or drained) or the client disconnects. Each
// event is one line, flushed as it happens. The replay-then-follow
// design is what makes the stream independent of attach timing: a
// client that connects late still receives the complete, byte-identical
// series.
func streamEvents(w http.ResponseWriter, r *http.Request, src eventSource) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	// The server's ReadTimeout governs reading the *request* and does
	// not cancel a running handler, but clear this connection's read
	// deadline anyway so a stream outliving it can never be severed by
	// a toolchain that polices the deadline from its background read.
	// The next request on the connection gets a fresh deadline.
	http.NewResponseController(w).SetReadDeadline(time.Time{})
	w.WriteHeader(http.StatusOK)
	flusher, canFlush := w.(http.Flusher)

	src.Subscribe()
	defer src.Unsubscribe()

	i := 0
	for {
		lines, next, wait, done := src.Events(i)
		i = next
		if len(lines) > 0 {
			for _, line := range lines {
				w.Write(line)
				w.Write([]byte("\n"))
			}
			if canFlush {
				flusher.Flush()
			}
			continue
		}
		if done {
			return
		}
		select {
		case <-wait:
		case <-r.Context().Done():
			return
		}
	}
}

// sessionStatusFor maps registry errors to HTTP statuses: bad requests
// are the client's fault, unknown IDs are 404, and capacity or
// shutdown conditions are 503 (retryable elsewhere or later).
func sessionStatusFor(err error) int {
	switch {
	case errors.Is(err, api.ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, monitor.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, monitor.ErrTooManySessions),
		errors.Is(err, monitor.ErrClosed):
		return http.StatusServiceUnavailable
	}
	return statusFor(err)
}
