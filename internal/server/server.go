// Package server assembles the pcserved HTTP front end: the route
// table over internal/service, the monitoring-session and
// counter-validation-campaign registries, the experiment planner, and
// the telemetry middleware feeding /metrics. It exists as a library so
// a single measurement node can be embedded anywhere a handler fits —
// cmd/pcserved wraps it in a process, the cluster tests and
// examples/cluster spin whole in-process fleets of them behind
// cmd/pcfront's proxy, and cmd/pcserved's own tests drive the exact
// production routing through httptest.
//
// Endpoints, determinism contract, and error shape are documented on
// cmd/pcserved; this package is that server minus flags, signals, and
// the listener.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/plan"
	"repro/internal/service"
	"repro/internal/telemetry"
)

// Config sizes one measurement node. The zero value is production
// defaults throughout.
type Config struct {
	// Workers is the number of systems pooled per (processor, stack)
	// shard. Zero means 4.
	Workers int
	// CalibrationRuns is the repetition count behind each calibration
	// estimate. Zero means 31.
	CalibrationRuns int
	// MaxExperiments bounds concurrent /experiment sweeps. Zero means 2.
	MaxExperiments int
	// Monitor sizes the session registry (zero-value fields take the
	// monitor package defaults).
	Monitor monitor.Config
	// Campaign sizes the campaign registry (zero-value fields take the
	// campaign package defaults).
	Campaign campaign.Config
	// Pprof mounts net/http/pprof under /debug/pprof/. Off by default:
	// profiling endpoints expose internals and cost CPU while sampling,
	// so production opts in explicitly.
	Pprof bool
}

// Server is one assembled measurement node: service, registries,
// planner, and the instrumented route table.
type Server struct {
	svc     *service.Service
	reg     *monitor.Registry
	creg    *campaign.Registry
	planner *plan.Planner
	handler http.Handler
}

// New assembles a node from the config.
func New(cfg Config) *Server {
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	if cfg.CalibrationRuns == 0 {
		cfg.CalibrationRuns = 31
	}
	if cfg.MaxExperiments == 0 {
		cfg.MaxExperiments = 2
	}
	svc := service.New(service.Config{
		WorkersPerShard:          cfg.Workers,
		CalibrationRuns:          cfg.CalibrationRuns,
		MaxConcurrentExperiments: cfg.MaxExperiments,
	})
	reg := monitor.NewRegistry(svc, cfg.Monitor)
	planner := plan.New(svc)
	creg := campaign.NewRegistry(campaign.Services{
		Measure: svc.Measure,
		Infer:   svc.Infer,
		Plan:    planner.Do,
	}, cfg.Campaign)
	s := &Server{svc: svc, reg: reg, creg: creg, planner: planner}
	s.handler = newHandler(svc, reg, creg, planner, handlerConfig{pprof: cfg.Pprof})
	return s
}

// Handler returns the node's full route table.
func (s *Server) Handler() http.Handler { return s.handler }

// Service exposes the underlying measurement service (stats hooks for
// health aggregation and tests).
func (s *Server) Service() *service.Service { return s.svc }

// Close drains the node: campaigns first, then sessions, so every open
// NDJSON stream ends with a drained event before the caller shuts the
// listener down. Safe to call once.
func (s *Server) Close() {
	// Drain order matters: closing the registries first ends every
	// session and campaign with a drained end event, so open NDJSON
	// streams terminate cleanly and an http.Server.Shutdown waiting on
	// in-flight requests can finish instead of hanging on live streams.
	s.creg.Close()
	s.reg.Close()
}

// handlerConfig carries front-end options that are not services.
type handlerConfig struct {
	pprof bool
}

// router is the route-registration surface shared by the raw mux and
// the instrumenting wrapper, so route files register the same way
// whether or not they are measured.
type router interface {
	HandleFunc(pattern string, handler func(http.ResponseWriter, *http.Request))
}

// instrumentedRouter registers every handler wrapped in the
// per-endpoint telemetry middleware, labeled by route pattern.
type instrumentedRouter struct {
	mux *http.ServeMux
	ts  *telemetrySet
}

func (ir instrumentedRouter) HandleFunc(pattern string, h func(http.ResponseWriter, *http.Request)) {
	ir.mux.HandleFunc(pattern, ir.ts.instrument(endpointLabel(pattern), h))
}

// endpointLabel derives the metric label from a route pattern: the
// path template with the method dropped ("POST /measure" becomes
// "/measure"). Wildcards stay as templates ("/sessions/{id}"), so
// label cardinality is bounded by the route table, never by URLs.
func endpointLabel(pattern string) string {
	if _, path, ok := strings.Cut(pattern, " "); ok {
		return path
	}
	return pattern
}

// newHandler wires the service, session and campaign registries, and
// planner into an HTTP mux. Every route is registered through the
// telemetry middleware; /metrics serves the accumulated exposition
// plus the same Stats snapshot /healthz renders as JSON.
func newHandler(svc *service.Service, reg *monitor.Registry, creg *campaign.Registry, planner *plan.Planner, cfg handlerConfig) http.Handler {
	mux := http.NewServeMux()
	ts := newTelemetrySet()
	ir := instrumentedRouter{mux: mux, ts: ts}
	registerSessionRoutes(ir, reg)
	registerCampaignRoutes(ir, creg)
	ir.HandleFunc("POST /measure", handleJSON(statusFor, http.StatusOK,
		func(r *http.Request, req api.MeasureRequest) (*api.MeasureResponse, error) {
			return svc.Measure(r.Context(), req)
		}))
	ir.HandleFunc("POST /analyze", handleJSON(statusFor, http.StatusOK,
		func(r *http.Request, req api.AnalyzeRequest) (*api.AnalyzeResponse, error) {
			return svc.Analyze(r.Context(), req)
		}))
	ir.HandleFunc("POST /plan", handleJSON(statusFor, http.StatusOK,
		func(r *http.Request, req api.PlanRequest) (*api.PlanResponse, error) {
			return planner.Do(r.Context(), req)
		}))
	ir.HandleFunc("POST /infer", handleJSON(statusFor, http.StatusOK,
		func(r *http.Request, req api.InferRequest) (*api.InferResponse, error) {
			return svc.Infer(r.Context(), req)
		}))
	ir.HandleFunc("POST /experiment", handleJSON(statusFor, http.StatusOK,
		func(r *http.Request, req api.ExperimentRequest) (*api.ExperimentResponse, error) {
			return svc.Experiment(r.Context(), req)
		}))
	ir.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// The service owns pool and cache state; the session and campaign
		// registries are the front end's, so their live counts are
		// overlaid here — from the same one-lock snapshots /metrics uses.
		h := svc.Health()
		h.ActiveSessions, _ = reg.Stats()
		h.ActiveCampaigns, _ = creg.Stats()
		writeJSON(w, http.StatusOK, h)
	})
	ir.HandleFunc("GET /metrics", ts.serveMetrics(svc, reg, creg, planner))
	if cfg.pprof {
		// Explicit registrations rather than the package's init-time
		// DefaultServeMux side effects: the flag, not the import, decides
		// exposure. Index serves the named-profile subpaths (heap,
		// goroutine, ...) under the trailing slash.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// handleJSON is the one shape every JSON endpoint shares: decode the
// body (a malformed body is always the client's fault), run the
// handler, map its error to a status with the given policy, and write
// either the api.Error body or the response at the success code. One
// helper means every endpoint emits the same error shape.
func handleJSON[Req, Resp any](status func(error) int, code int, do func(*http.Request, Req) (Resp, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tr := telemetry.FromContext(r.Context())
		pstart := tr.Clock()
		var req Req
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		tr.AddSince(telemetry.SpanParse, pstart)
		resp, err := do(r, req)
		if err != nil {
			writeError(w, status(err), err)
			return
		}
		// The encode span cannot appear in the response it times — the
		// body is sealed before the span ends — so it feeds the stage
		// histogram only (docs/OBSERVABILITY.md).
		estart := tr.Clock()
		writeJSON(w, code, resp)
		tr.AddSince(telemetry.SpanEncode, estart)
	}
}

// statusFor maps service errors to HTTP statuses: invalid requests are
// the client's fault, everything else the server's.
func statusFor(err error) int {
	var unsupported *core.ErrUnsupportedPattern
	switch {
	case errors.Is(err, api.ErrBadRequest),
		errors.As(err, &unsupported),
		errors.Is(err, service.ErrUnknownExperiment):
		return http.StatusBadRequest
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// writeJSON writes v as the JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError writes the service's JSON error body.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, api.Error{Error: err.Error()})
}

// Timeouts returns the read/idle deadlines a production listener
// should apply around this handler. WriteTimeout must stay 0: the
// /sessions and /campaigns streams hold their responses open for the
// producer's whole lifetime, and a server-wide write deadline would
// sever every live stream.
func Timeouts() (readHeader, read, idle time.Duration) {
	return 5 * time.Second, 30 * time.Second, 2 * time.Minute
}
