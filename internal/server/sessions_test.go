package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"repro/internal/api"
)

func sessionBody() api.SessionRequest {
	return api.SessionRequest{
		Measure:    api.MeasureRequest{Processor: "K8", Stack: "pc", Bench: "loop:1000", Pattern: "rr"},
		Steps:      24,
		WindowSize: 8,
	}
}

// openSession creates a session and returns its ID.
func openSession(t *testing.T, base string, req api.SessionRequest) string {
	t.Helper()
	status, body := post(t, base+"/sessions", req)
	if status != http.StatusCreated {
		t.Fatalf("POST /sessions: status %d, body %s", status, body)
	}
	var created api.SessionCreated
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatalf("unmarshal created: %v", err)
	}
	if created.ID == "" || created.Config.Steps != req.Steps {
		t.Fatalf("unexpected creation response: %s", body)
	}
	return created.ID
}

// readStream consumes a session's NDJSON stream to its end event and
// returns every line.
func readStream(t *testing.T, base, id string) [][]byte {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/sessions/%s/stream", base, id))
	if err != nil {
		t.Fatalf("GET stream: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type = %q", ct)
	}
	var lines [][]byte
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		lines = append(lines, append([]byte(nil), sc.Bytes()...))
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scanning stream: %v", err)
	}
	if len(lines) == 0 {
		t.Fatal("empty stream")
	}
	return lines
}

// TestSessionLifecycleOverHTTP drives create -> snapshot -> stream ->
// delete through the production routing.
func TestSessionLifecycleOverHTTP(t *testing.T) {
	srv := newTestServer(t)
	id := openSession(t, srv.URL, sessionBody())

	lines := readStream(t, srv.URL, id)
	var last api.StreamEvent
	if err := json.Unmarshal(lines[len(lines)-1], &last); err != nil {
		t.Fatal(err)
	}
	if last.Type != api.StreamEnd || last.Reason != api.SessionDone {
		t.Errorf("final event = %s, want end/done", lines[len(lines)-1])
	}

	resp, err := http.Get(srv.URL + "/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap api.SessionSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode snapshot: %v", err)
	}
	if snap.ID != id || snap.State != api.SessionDone || snap.Total != 24 {
		t.Errorf("snapshot = id %s state %s total %d, want %s/done/24", snap.ID, snap.State, snap.Total, id)
	}
	if len(snap.Windows) != 3 {
		t.Errorf("snapshot has %d windows, want 3", len(snap.Windows))
	}
	if snap.Calibration == nil {
		t.Error("snapshot missing calibration info")
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/sessions/"+id, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Errorf("DELETE status = %d, want 204", dresp.StatusCode)
	}
	gresp, err := http.Get(srv.URL + "/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusNotFound {
		t.Errorf("GET after delete = %d, want 404", gresp.StatusCode)
	}
}

// TestIdenticalSessionsStreamIdenticalNDJSON is the acceptance
// criterion at the HTTP layer: two sessions created from the same
// body stream byte-identical sample series.
func TestIdenticalSessionsStreamIdenticalNDJSON(t *testing.T) {
	srv := newTestServer(t)
	idA := openSession(t, srv.URL, sessionBody())
	idB := openSession(t, srv.URL, sessionBody())
	linesA := readStream(t, srv.URL, idA)
	linesB := readStream(t, srv.URL, idB)
	if len(linesA) != len(linesB) {
		t.Fatalf("stream lengths differ: %d vs %d", len(linesA), len(linesB))
	}
	for i := range linesA {
		if !bytes.Equal(linesA[i], linesB[i]) {
			t.Fatalf("line %d diverges:\n  a: %s\n  b: %s", i, linesA[i], linesB[i])
		}
	}
}

// TestSessionStreamCarriesDrift checks an injected step change
// surfaces as a drift event on the wire.
func TestSessionStreamCarriesDrift(t *testing.T) {
	srv := newTestServer(t)
	body := sessionBody()
	body.Steps = 32
	body.Inject = &api.InjectSpec{AfterStep: 16, Offset: 500_000}
	id := openSession(t, srv.URL, body)
	var drifts int
	for _, line := range readStream(t, srv.URL, id) {
		var ev api.StreamEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Type == api.StreamDrift {
			drifts++
		}
	}
	if drifts == 0 {
		t.Error("no drift event on the stream despite injected step change")
	}
}

func TestSessionEndpointErrors(t *testing.T) {
	srv := newTestServer(t)
	bad := sessionBody()
	bad.WindowSize = 1
	status, _ := post(t, srv.URL+"/sessions", bad)
	if status != http.StatusBadRequest {
		t.Errorf("bad session request: status %d, want 400", status)
	}
	resp, err := http.Get(srv.URL + "/sessions/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session: status %d, want 404", resp.StatusCode)
	}
	sresp, err := http.Get(srv.URL + "/sessions/nope/stream")
	if err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown stream: status %d, want 404", sresp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/sessions/nope", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown delete: status %d, want 404", dresp.StatusCode)
	}
}
