package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/campaign"
	"repro/internal/monitor"
)

// newPprofTestServer builds the handler with profiling endpoints
// mounted, as `pcserved -pprof` would.
func newPprofTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	node := New(Config{
		Workers:  1,
		Monitor:  monitor.Config{SweepInterval: -1},
		Campaign: campaign.Config{SweepInterval: -1},
		Pprof:    true,
	})
	t.Cleanup(node.Close)
	srv := httptest.NewServer(node.Handler())
	t.Cleanup(srv.Close)
	return srv
}

// stripTraceKey removes the top-level "trace" key from a JSON body and
// re-marshals the rest for byte-level comparison.
func stripTraceKey(t *testing.T, body []byte) string {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("unmarshal %s: %v", body, err)
	}
	delete(m, "trace")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("remarshal: %v", err)
	}
	return string(out)
}

// TestTraceOptInEndToEnd exercises the full wire contract on every
// traced endpoint: "trace": true yields a span block, omitting it
// yields none, and stripping the block restores byte-identity with the
// untraced response.
func TestTraceOptInEndToEnd(t *testing.T) {
	srv := newTestServer(t)

	cases := []struct {
		path             string
		untraced, traced any
	}{
		{"/measure",
			api.MeasureRequest{Processor: "K8", Stack: "pc", Bench: "loop:1000", Pattern: "rr", Runs: 3},
			api.MeasureRequest{Processor: "K8", Stack: "pc", Bench: "loop:1000", Pattern: "rr", Runs: 3, Trace: true}},
		{"/analyze",
			api.AnalyzeRequest{Items: []api.AnalyzeItem{{
				Measure: api.MeasureRequest{Processor: "CD", Stack: "pc", Bench: "loop:500", Runs: 4}, MpxCounters: 2}}},
			api.AnalyzeRequest{Items: []api.AnalyzeItem{{
				Measure: api.MeasureRequest{Processor: "CD", Stack: "pc", Bench: "loop:500", Runs: 4}, MpxCounters: 2}},
				Trace: true}},
		{"/plan",
			api.PlanRequest{Measure: api.MeasureRequest{Processor: "K8", Stack: "pc", Bench: "loop:400"},
				TargetRelWidth: 0.2, Counters: 2},
			api.PlanRequest{Measure: api.MeasureRequest{Processor: "K8", Stack: "pc", Bench: "loop:400"},
				TargetRelWidth: 0.2, Counters: 2, Trace: true}},
		{"/infer",
			api.InferRequest{Items: []api.InferItem{{Processor: "K8", Inputs: []api.InferInput{
				{Event: "INSTR_RETIRED", Mean: 1000, Variance: 100},
				{Event: "CPU_CLK_UNHALTED", Mean: 2000, Variance: 400}}}}},
			api.InferRequest{Items: []api.InferItem{{Processor: "K8", Inputs: []api.InferInput{
				{Event: "INSTR_RETIRED", Mean: 1000, Variance: 100},
				{Event: "CPU_CLK_UNHALTED", Mean: 2000, Variance: 400}}}},
				Trace: true}},
	}
	for _, tc := range cases {
		t.Run(strings.TrimPrefix(tc.path, "/"), func(t *testing.T) {
			status, plain := post(t, srv.URL+tc.path, tc.untraced)
			if status != http.StatusOK {
				t.Fatalf("untraced status = %d, body = %s", status, plain)
			}
			var pm map[string]json.RawMessage
			if err := json.Unmarshal(plain, &pm); err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			if _, ok := pm["trace"]; ok {
				t.Fatal("untraced response carries a trace block")
			}

			status, traced := post(t, srv.URL+tc.path, tc.traced)
			if status != http.StatusOK {
				t.Fatalf("traced status = %d, body = %s", status, traced)
			}
			var tm struct {
				Trace *api.TraceInfo `json:"trace"`
			}
			if err := json.Unmarshal(traced, &tm); err != nil {
				t.Fatalf("unmarshal traced: %v", err)
			}
			if tm.Trace == nil || len(tm.Trace.Spans) == 0 {
				t.Fatalf("traced response has no spans: %s", traced)
			}
			for _, sp := range tm.Trace.Spans {
				if sp.DurationNs < 0 {
					t.Errorf("span %q has negative duration %d", sp.Name, sp.DurationNs)
				}
			}
			if got, want := stripTraceKey(t, traced), stripTraceKey(t, plain); got != want {
				t.Errorf("responses differ beyond the trace block:\n traced: %s\nuntraced: %s", got, want)
			}
		})
	}
}

// TestMetricsEndpoint scrapes /metrics after some traffic and checks
// the exposition: parseable line format, HELP and TYPE for every
// sampled family, no duplicate family definitions, and the key
// families present with plausible values.
func TestMetricsEndpoint(t *testing.T) {
	srv := newTestServer(t)

	// Generate traffic: two measures (one repeated for a calibration
	// hit), one of them erroring.
	ok := api.MeasureRequest{Processor: "K8", Stack: "pc", Bench: "loop:1000", Pattern: "rr", Runs: 3, Calibrate: true}
	post(t, srv.URL+"/measure", ok)
	post(t, srv.URL+"/measure", ok)
	post(t, srv.URL+"/measure", api.MeasureRequest{Processor: "Z80"})

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}

	help := make(map[string]bool)
	typed := make(map[string]string)
	samples := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			name := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)[0]
			help[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			if prev, dup := typed[fields[0]]; dup {
				t.Errorf("family %s declared twice (%s, %s)", fields[0], prev, fields[1])
			}
			typed[fields[0]] = fields[1]
		case strings.HasPrefix(line, "#"):
			t.Errorf("unrecognized comment line: %q", line)
		default:
			fields := strings.Fields(line)
			if len(fields) != 2 {
				t.Fatalf("malformed sample line: %q", line)
			}
			// strconv, not JSON: exposition values include NaN and +Inf
			// (the runtime histograms have no tracked sum).
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("unparseable value in %q: %v", line, err)
			}
			samples[fields[0]] = v
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}

	// Every sample's base family must carry HELP and TYPE.
	base := func(name string) string {
		name = name[:strings.IndexAny(name+"{", "{")]
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suffix)
			if trimmed != name && typed[trimmed] == "histogram" {
				return trimmed
			}
		}
		return name
	}
	for name := range samples {
		fam := base(name)
		if !help[fam] || typed[fam] == "" {
			t.Errorf("sample %s: family %s missing HELP or TYPE", name, fam)
		}
	}

	for name, want := range map[string]float64{
		`pcserved_http_requests_total{endpoint="/measure"}`: 3,
		`pcserved_http_errors_total{endpoint="/measure"}`:   1,
		"pcserved_measure_requests_total":                   2,
		"pcserved_calibration_cache_hits_total":             1,
		"pcserved_calibration_cache_misses_total":           1,
	} {
		if got := samples[name]; got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	// Stage histograms accumulate even though no request asked for a
	// trace: the observer path is always on.
	if got := samples[`pcserved_stage_duration_seconds_count{stage="engine-run"}`]; got < 2 {
		t.Errorf("engine-run stage count = %v, want >= 2", got)
	}
	if got := samples[`pcserved_http_request_duration_seconds_count{endpoint="/measure"}`]; got != 3 {
		t.Errorf("latency histogram count = %v, want 3", got)
	}
}

// TestHealthzAndMetricsAgree checks the one-source-of-truth satellite:
// the JSON health view and the exposition view render the same
// snapshot counters.
func TestHealthzAndMetricsAgree(t *testing.T) {
	srv := newTestServer(t)
	post(t, srv.URL+"/measure", api.MeasureRequest{
		Processor: "PD", Stack: "pc", Bench: "loop:700", Runs: 3, Calibrate: true})

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	var h api.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	resp.Body.Close()

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	expo, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatalf("read metrics: %v", err)
	}
	find := func(name string) float64 {
		for _, line := range strings.Split(string(expo), "\n") {
			if strings.HasPrefix(line, name+" ") {
				var v float64
				if err := json.Unmarshal([]byte(strings.Fields(line)[1]), &v); err != nil {
					t.Fatalf("parse %q: %v", line, err)
				}
				return v
			}
		}
		t.Fatalf("metric %s not found", name)
		return 0
	}
	if got := find("pcserved_measure_requests_total"); got != float64(h.Stats.Requests) {
		t.Errorf("measure_requests_total = %v, healthz requests = %d", got, h.Stats.Requests)
	}
	if got := find("pcserved_calibration_cache_misses_total"); got != float64(h.Stats.CalibrationMisses) {
		t.Errorf("calibration misses disagree: metrics %v, healthz %d", got, h.Stats.CalibrationMisses)
	}
	if got := find("pcserved_calibration_cache_entries"); got != float64(h.Calibrations) {
		t.Errorf("calibration entries disagree: metrics %v, healthz %d", got, h.Calibrations)
	}
}

// TestPprofGating checks the profiling satellite: /debug/pprof/ serves
// the index only when the flag is on, and 404s by default.
func TestPprofGating(t *testing.T) {
	off := newTestServer(t)
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatalf("GET pprof (off): %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof disabled: status = %d, want 404", resp.StatusCode)
	}

	on := newPprofTestServer(t)
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatalf("GET pprof (on): %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof enabled: status = %d, want 200", resp.StatusCode)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index does not list profiles: %s", body)
	}
}

// postTraced posts body with the X-Pc-Trace hop header set, returning
// the status, response body, and the echoed X-Pc-Trace-Spans header.
func postTraced(t *testing.T, url string, req any) (int, []byte, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	hr.Header.Set(api.HeaderTrace, "front-test")
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out, resp.Header.Get(api.HeaderTraceSpans)
}

// TestTraceHeaderEcho exercises the cross-process propagation contract:
// a request carrying X-Pc-Trace gets its span trace echoed in the
// X-Pc-Trace-Spans response header, with the same span set as the
// in-body block, while the body itself stays untouched.
func TestTraceHeaderEcho(t *testing.T) {
	srv := newTestServer(t)
	req := api.MeasureRequest{Processor: "K8", Stack: "pc", Bench: "loop:1000", Pattern: "rr", Runs: 3}

	// Hop header + body opt-in: header and body blocks carry the same
	// span set.
	traced := req
	traced.Trace = true
	status, body, hdr := postTraced(t, srv.URL+"/measure", traced)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body = %s", status, body)
	}
	if hdr == "" {
		t.Fatal("no X-Pc-Trace-Spans header on traced hop")
	}
	var fromHeader api.TraceInfo
	if err := json.Unmarshal([]byte(hdr), &fromHeader); err != nil {
		t.Fatalf("header does not parse as a trace block: %v\n%s", err, hdr)
	}
	var tm struct {
		Trace *api.TraceInfo `json:"trace"`
	}
	if err := json.Unmarshal(body, &tm); err != nil || tm.Trace == nil {
		t.Fatalf("no in-body trace block: %v %s", err, body)
	}
	if got, want := fromHeader.Shape(), tm.Trace.Shape(); got != want {
		t.Errorf("header and body span sets differ:\nheader %s\n  body %s", got, want)
	}

	// Hop header alone: body stays byte-identical to a plain response
	// (no trace block), spans ride the header only.
	status, hopBody, hdr := postTraced(t, srv.URL+"/measure", req)
	if status != http.StatusOK || hdr == "" {
		t.Fatalf("hop-only: status = %d, header = %q", status, hdr)
	}
	var pm map[string]json.RawMessage
	if err := json.Unmarshal(hopBody, &pm); err != nil {
		t.Fatal(err)
	}
	if _, ok := pm["trace"]; ok {
		t.Error("hop header alone injected a trace block into the body")
	}

	// No hop header: no echo.
	resp, err := http.Post(srv.URL+"/measure", "application/json",
		strings.NewReader(`{"processor":"K8","stack":"pc","bench":"loop:1000","pattern":"rr","runs":3}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if h := resp.Header.Get(api.HeaderTraceSpans); h != "" {
		t.Errorf("untraced hop echoed spans: %q", h)
	}
}

// TestTraceHeaderEchoOnError is the error-path half of the contract:
// the echo must ride error responses too, because their bodies carry no
// trace block.
func TestTraceHeaderEchoOnError(t *testing.T) {
	srv := newTestServer(t)
	status, body, hdr := postTraced(t, srv.URL+"/measure", api.MeasureRequest{Processor: "Z80"})
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d, body = %s", status, body)
	}
	if hdr == "" {
		t.Fatal("error response dropped the X-Pc-Trace-Spans header")
	}
	var info api.TraceInfo
	if err := json.Unmarshal([]byte(hdr), &info); err != nil {
		t.Fatalf("header does not parse: %v\n%s", err, hdr)
	}
	// The request parsed before validation failed, so the parse span
	// must be present.
	found := false
	for _, sp := range info.Spans {
		if sp.Name == "parse" {
			found = true
		}
	}
	if !found {
		t.Errorf("error trace lacks the parse span: %+v", info.Spans)
	}
	// The error body itself is untouched: the standard error shape.
	var e api.Error
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Errorf("error body not the standard shape: %s", body)
	}
}

// TestRuntimeMetricsExposed checks the runtime self-metrics satellite:
// /metrics carries the shared runtime families under the pcserved
// prefix.
func TestRuntimeMetricsExposed(t *testing.T) {
	srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	expo, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	out := string(expo)
	for _, want := range []string{
		"# TYPE pcserved_go_goroutines gauge",
		"# TYPE pcserved_go_heap_objects_bytes gauge",
		"# TYPE pcserved_go_gc_pause_seconds histogram",
		"# TYPE pcserved_go_sched_latency_seconds histogram",
		"pcserved_build_info{go_version=",
		"# TYPE pcserved_uptime_seconds gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
