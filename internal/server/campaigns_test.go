package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/api"
)

// campaignRequest is a small sweep exercising every check over one
// processor, quick enough for an endpoint test.
func campaignRequest() api.CampaignRequest {
	return api.CampaignRequest{
		Seed:       5,
		Programs:   3,
		Processors: []string{"K8"},
		Runs:       3,
		Scale:      1,
		InferEvery: 2,
		PlanEvery:  3,
	}
}

// readCampaignStream consumes a campaign's NDJSON stream to its end event and
// returns the raw body and the decoded events.
func readCampaignStream(t *testing.T, url string) (string, []api.CampaignEvent) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	var events []api.CampaignEvent
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		var ev api.CampaignEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", line, err)
		}
		events = append(events, ev)
	}
	return string(body), events
}

func TestCampaignEndpoints(t *testing.T) {
	srv := newTestServer(t)

	status, body := post(t, srv.URL+"/campaigns", campaignRequest())
	if status != http.StatusCreated {
		t.Fatalf("open campaign: status %d body %s", status, body)
	}
	var created api.CampaignCreated
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if created.ID == "" || created.Config.Programs != 3 || created.Config.Confidence != 0.95 {
		t.Fatalf("created = %+v", created)
	}

	// The stream runs to completion: program events, a summary, a done
	// end event — and zero findings against stock models.
	raw, events := readCampaignStream(t, srv.URL+"/campaigns/"+created.ID+"/stream")
	programs := 0
	for _, ev := range events {
		switch ev.Type {
		case api.CampaignEventFinding:
			t.Errorf("finding against stock models: %+v", *ev.Finding)
		case api.CampaignEventProgram:
			programs++
		}
	}
	if programs != 3 {
		t.Errorf("stream has %d program events, want 3", programs)
	}
	if last := events[len(events)-1]; last.Type != api.CampaignEventEnd || last.Reason != "done" {
		t.Errorf("stream ends with %+v", last)
	}

	// Replay determinism over HTTP: a late attach receives the complete
	// byte-identical stream.
	raw2, _ := readCampaignStream(t, srv.URL+"/campaigns/"+created.ID+"/stream")
	if raw != raw2 {
		t.Error("stream replay differs from the live stream")
	}

	// The snapshot agrees with the stream.
	resp, err := http.Get(srv.URL + "/campaigns/" + created.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap api.CampaignSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.State != "done" || snap.Programs != 3 || snap.FindingsTotal != 0 {
		t.Errorf("snapshot = %+v", snap)
	}

	// Delete forgets the ID.
	del, err := http.NewRequest(http.MethodDelete, srv.URL+"/campaigns/"+created.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(del)
	if err != nil || dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %v, status %v", err, dresp.Status)
	}
	if resp, err := http.Get(srv.URL + "/campaigns/" + created.ID); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted campaign still addressable: %v %v", err, resp.Status)
	}
}

func TestCampaignEndpointRejects(t *testing.T) {
	srv := newTestServer(t)
	if status, body := post(t, srv.URL+"/campaigns", api.CampaignRequest{Runs: 1}); status != http.StatusBadRequest {
		t.Errorf("invalid campaign: status %d body %s", status, body)
	}
	if resp, err := http.Get(srv.URL + "/campaigns/c99"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown campaign: %v %v", err, resp.Status)
	}
}

// TestHealthzCampaignOverlay: a completed campaign leaves the active
// count at zero; the field is present in the health shape.
func TestHealthzCampaignOverlay(t *testing.T) {
	srv := newTestServer(t)
	status, body := post(t, srv.URL+"/campaigns", campaignRequest())
	if status != http.StatusCreated {
		t.Fatalf("open campaign: status %d body %s", status, body)
	}
	var created api.CampaignCreated
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	readCampaignStream(t, srv.URL+"/campaigns/"+created.ID+"/stream") // wait for completion
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h api.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.ActiveCampaigns != 0 {
		t.Errorf("active campaigns = %d, want 0", h.ActiveCampaigns)
	}
}
