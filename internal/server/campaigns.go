package server

import (
	"errors"
	"net/http"

	"repro/internal/api"
	"repro/internal/campaign"
)

// registerCampaignRoutes wires the adversarial counter-validation
// endpoints:
//
//	POST   /campaigns             api.CampaignRequest -> api.CampaignCreated
//	GET    /campaigns/{id}        -> api.CampaignSnapshot
//	GET    /campaigns/{id}/stream -> NDJSON api.CampaignEvent lines
//	DELETE /campaigns/{id}        -> 204
func registerCampaignRoutes(mux router, creg *campaign.Registry) {
	mux.HandleFunc("POST /campaigns", handleJSON(campaignStatusFor, http.StatusCreated,
		func(r *http.Request, req api.CampaignRequest) (api.CampaignCreated, error) {
			camp, err := creg.Open(req)
			if err != nil {
				return api.CampaignCreated{}, err
			}
			return api.CampaignCreated{ID: camp.ID, Config: camp.Config()}, nil
		}))

	mux.HandleFunc("GET /campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		camp, err := creg.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, campaignStatusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, camp.Snapshot())
	})

	mux.HandleFunc("GET /campaigns/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		camp, err := creg.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, campaignStatusFor(err), err)
			return
		}
		streamEvents(w, r, camp)
	})

	mux.HandleFunc("DELETE /campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := creg.Delete(r.PathValue("id")); err != nil {
			writeError(w, campaignStatusFor(err), err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
}

// campaignStatusFor maps campaign-registry errors to HTTP statuses,
// mirroring the session policy: bad requests are the client's fault,
// unknown IDs are 404, capacity and shutdown are 503.
func campaignStatusFor(err error) int {
	switch {
	case errors.Is(err, api.ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, campaign.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, campaign.ErrTooManyCampaigns),
		errors.Is(err, campaign.ErrClosed):
		return http.StatusServiceUnavailable
	}
	return statusFor(err)
}
