package server

import (
	"encoding/json"
	"io"
	"net/http"
	"time"

	"repro/internal/api"
	"repro/internal/campaign"
	"repro/internal/monitor"
	"repro/internal/plan"
	"repro/internal/service"
	"repro/internal/telemetry"
)

// latencyBuckets is the shared log-spaced bucket layout of every
// duration histogram: 3 buckets per decade from 10µs to 10s
// (docs/OBSERVABILITY.md).
func latencyBuckets() []float64 { return telemetry.LogBuckets(1e-5, 10, 3) }

// telemetrySet is the server's metric surface: per-endpoint request
// counters and latency histograms, and per-stage duration histograms
// fed by the same spans callers can opt into seeing — one
// instrumentation source, two consumers.
type telemetrySet struct {
	reg      *telemetry.Registry
	runtime  *telemetry.Runtime
	requests *telemetry.CounterVec
	errors   *telemetry.CounterVec
	latency  *telemetry.HistogramVec
	// stage pre-binds one histogram per catalogued span name, so the
	// per-span observer path is a map lookup plus atomic adds.
	stage map[string]*telemetry.Histogram
}

func newTelemetrySet() *telemetrySet {
	reg := telemetry.NewRegistry()
	buckets := latencyBuckets()
	ts := &telemetrySet{
		reg:     reg,
		runtime: telemetry.NewRuntime("pcserved"),
		requests: reg.NewCounterVec("pcserved_http_requests_total",
			"HTTP requests served, by route pattern.", "endpoint"),
		errors: reg.NewCounterVec("pcserved_http_errors_total",
			"HTTP responses with status >= 400, by route pattern.", "endpoint"),
		latency: reg.NewHistogramVec("pcserved_http_request_duration_seconds",
			"HTTP request latency, by route pattern.", buckets, "endpoint"),
		stage: make(map[string]*telemetry.Histogram),
	}
	stageVec := reg.NewHistogramVec("pcserved_stage_duration_seconds",
		"Per-stage span durations across all requests (docs/OBSERVABILITY.md span catalogue).",
		buckets, "stage")
	for _, name := range telemetry.SpanNames() {
		ts.stage[name] = stageVec.With(name)
	}
	return ts
}

// observeSpan feeds a finished span's duration into its stage
// histogram. Installed as the observer of every request's trace, so
// stage metrics accumulate whether or not the caller asked to see the
// trace. Span names outside the catalogue are dropped rather than
// minting unbounded label values.
func (ts *telemetrySet) observeSpan(sd telemetry.SpanData) {
	if h, ok := ts.stage[sd.Name]; ok {
		h.Observe(sd.Duration)
	}
}

// instrument wraps a handler with the per-endpoint middleware: it
// installs an observed trace in the request context (so every span any
// layer opens lands in the stage histograms) and records the request
// count, error count, and latency under the route's pattern — a
// bounded label, never the raw URL.
func (ts *telemetrySet) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	requests := ts.requests.With(endpoint)
	errCount := ts.errors.With(endpoint)
	latency := ts.latency.With(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		tr := telemetry.NewObserved(ts.observeSpan)
		r = r.WithContext(telemetry.NewContext(r.Context(), tr))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		if r.Header.Get(api.HeaderTrace) != "" {
			// A cluster front marked this hop as traced: echo the span
			// trace in the response header so the front can stitch it —
			// success and error responses alike.
			sw.echoTrace = tr
		}
		h(sw, r)
		requests.Inc()
		if sw.status >= 400 {
			errCount.Inc()
		}
		latency.Observe(time.Since(start))
	}
}

// statusWriter records the response status for the error counter and
// seals the cross-process trace echo. It preserves the streaming
// surface of the underlying writer: Flush keeps /sessions and
// /campaigns NDJSON streams flushing per event, and Unwrap lets
// http.ResponseController reach the deadline controls streamEvents
// uses.
type statusWriter struct {
	http.ResponseWriter
	status      int
	echoTrace   *telemetry.Trace
	wroteHeader bool
}

// WriteHeader emits the response head. When the hop is traced
// (echoTrace set), the trace recorded so far is serialized into the
// X-Pc-Trace-Spans header first — at this point every span except
// encode has been recorded, which is exactly the span set of the
// in-body trace block (the encode span by design cannot appear in the
// body it times), so the two channels agree. The echo rides error
// responses too: their bodies carry no trace block, so the header is
// the only channel a stitching front has.
func (w *statusWriter) WriteHeader(status int) {
	if w.wroteHeader {
		w.ResponseWriter.WriteHeader(status)
		return
	}
	w.wroteHeader = true
	w.status = status
	if w.echoTrace != nil {
		if b, err := json.Marshal(api.TraceInfoFrom(w.echoTrace)); err == nil {
			w.Header().Set(api.HeaderTraceSpans, string(b))
		}
	}
	w.ResponseWriter.WriteHeader(status)
}

// Write backstops handlers that never call WriteHeader explicitly: the
// implicit 200 must still seal the trace header before the first body
// byte reaches the wire.
func (w *statusWriter) Write(p []byte) (int, error) {
	if !w.wroteHeader {
		w.WriteHeader(http.StatusOK)
	}
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// serveMetrics renders the full Prometheus text exposition: the
// registry families (HTTP and stage metrics observed in-line), then
// the snapshot-derived families — the same service.Stats and registry
// snapshots /healthz renders as JSON, so the two views cannot
// disagree.
func (ts *telemetrySet) serveMetrics(svc *service.Service, reg *monitor.Registry, creg *campaign.Registry, planner *plan.Planner) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		ts.reg.WritePrometheus(w)
		writeSnapshotMetrics(w, svc.Stats(), reg, creg, planner)
		ts.runtime.Write(telemetry.NewExpo(w))
	}
}

// writeSnapshotMetrics renders one service.Stats snapshot (plus the
// planner and registry gauges) as exposition families, through the
// same telemetry.Expo formatter the registry uses.
func writeSnapshotMetrics(w io.Writer, st service.Stats, reg *monitor.Registry, creg *campaign.Registry, planner *plan.Planner) {
	e := telemetry.NewExpo(w)
	label := func(k, v string) telemetry.Annotation { return telemetry.Annotation{Key: k, Value: v} }

	e.Family("pcserved_measure_requests_total", "Measure calls accepted.", "counter")
	e.Sample(float64(st.Requests))
	e.Family("pcserved_analyze_items_total", "Analyze items accepted (batch items, not batches).", "counter")
	e.Sample(float64(st.Analyzes))
	e.Family("pcserved_infer_items_total", "Infer items accepted (batch items, not batches).", "counter")
	e.Sample(float64(st.Infers))

	plans, planFollowers := planner.Stats()
	e.Family("pcserved_plans_total", "Plan requests accepted.", "counter")
	e.Sample(float64(plans))

	// Coalescing across every flight (measure, analyze items, infer
	// items, plans): followers joined an identical in-flight execution,
	// leaders executed.
	e.Family("pcserved_coalesce_total", "In-flight request coalescing outcomes across all endpoints.", "counter")
	e.Sample(float64(st.CoalesceLeaders+planner.Leaders()), label("role", "leader"))
	e.Sample(float64(st.Coalesced+planFollowers), label("role", "follower"))

	e.Family("pcserved_calibration_cache_hits_total", "Calibration-cache lookups served warm.", "counter")
	e.Sample(float64(st.CalibrationHits))
	e.Family("pcserved_calibration_cache_misses_total", "Calibration-cache lookups that computed a calibration.", "counter")
	e.Sample(float64(st.CalibrationMisses))
	e.Family("pcserved_calibration_cache_entries", "Cached calibrations, summed over shards.", "gauge")
	e.Sample(float64(st.Calibrations))

	e.Family("pcserved_engine_runs_total", "Programs executed, by engine.", "counter")
	e.Sample(float64(st.Engines.InterpreterRuns), label("engine", "interpreter"))
	e.Sample(float64(st.Engines.CompiledRuns), label("engine", "compiled"))

	e.Family("pcserved_compile_cache_hits_total", "Compile-cache lookups served warm.", "counter")
	e.Sample(float64(st.Engines.CacheHits))
	e.Family("pcserved_compile_cache_misses_total", "Compile-cache lookups that compiled.", "counter")
	e.Sample(float64(st.Engines.CacheMisses))
	e.Family("pcserved_compile_cache_evictions_total", "Compile-cache entries displaced by capacity.", "counter")
	e.Sample(float64(st.Engines.CacheEvictions))
	e.Family("pcserved_compile_cache_entries", "Compiled programs currently cached.", "gauge")
	e.Sample(float64(st.Engines.CacheSize))
	e.Family("pcserved_compile_cache_capacity", "Compile-cache capacity.", "gauge")
	e.Sample(float64(st.Engines.CacheCapacity))

	e.Family("pcserved_pool_workers", "Pooled worker systems, by shard and state.", "gauge")
	for _, sh := range st.Shards {
		e.Sample(float64(sh.Idle), label("shard", sh.Key), label("state", "idle"))
		e.Sample(float64(sh.InUse), label("shard", sh.Key), label("state", "inuse"))
	}
	e.Family("pcserved_pinned_workers", "Workers held by long-lived holders (sessions, plans).", "gauge")
	e.Sample(float64(st.PinnedWorkers))

	sActive, sRetained := reg.Stats()
	e.Family("pcserved_sessions_active", "Monitoring sessions currently producing.", "gauge")
	e.Sample(float64(sActive))
	e.Family("pcserved_sessions_retained", "Monitoring sessions registered, ended ones included.", "gauge")
	e.Sample(float64(sRetained))

	cActive, cRetained := creg.Stats()
	e.Family("pcserved_campaigns_active", "Validation campaigns currently sweeping.", "gauge")
	e.Sample(float64(cActive))
	e.Family("pcserved_campaigns_retained", "Validation campaigns registered, finished ones included.", "gauge")
	e.Sample(float64(cRetained))
}
