package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/api"
	"repro/internal/campaign"
	"repro/internal/monitor"
)

// newTestServer serves the production handler over HTTP.
func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	node := New(Config{
		Workers:         2,
		CalibrationRuns: 5,
		Monitor:         monitor.Config{SweepInterval: -1},
		Campaign:        campaign.Config{SweepInterval: -1},
	})
	t.Cleanup(node.Close)
	srv := httptest.NewServer(node.Handler())
	t.Cleanup(srv.Close)
	return srv
}

// post sends a JSON body and returns status and response bytes.
func post(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, data
}

func TestMeasureEndpoint(t *testing.T) {
	srv := newTestServer(t)
	status, body := post(t, srv.URL+"/measure", api.MeasureRequest{
		Processor: "K8", Stack: "pc", Bench: "loop:1000", Pattern: "rr", Runs: 3,
	})
	if status != http.StatusOK {
		t.Fatalf("status = %d, body = %s", status, body)
	}
	var resp api.MeasureResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if resp.Expected != 3001 || len(resp.Errors) != 3 {
		t.Errorf("unexpected response: %s", body)
	}
}

// TestConcurrentMixedRequests is the issue's acceptance scenario: at
// least 2 processor models x 2 stacks in flight simultaneously, every
// configuration's responses byte-identical.
func TestConcurrentMixedRequests(t *testing.T) {
	srv := newTestServer(t)
	reqs := []api.MeasureRequest{
		{Processor: "K8", Stack: "pc", Bench: "loop:800", Pattern: "rr", Runs: 3},
		{Processor: "K8", Stack: "pm", Bench: "loop:800", Pattern: "rr", Runs: 3},
		{Processor: "CD", Stack: "pc", Bench: "loop:800", Pattern: "ao", Runs: 3, Calibrate: true},
		{Processor: "CD", Stack: "PHpm", Bench: "null", Pattern: "ar", Runs: 3},
		{Processor: "PD", Stack: "PLpc", Bench: "array:200", Pattern: "ro", Runs: 3},
	}
	const perReq = 5
	bodies := make([][]string, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		bodies[i] = make([]string, perReq)
		for r := 0; r < perReq; r++ {
			wg.Add(1)
			go func(i, r int) {
				defer wg.Done()
				status, body := post(t, srv.URL+"/measure", reqs[i])
				if status != http.StatusOK {
					t.Errorf("request %d: status %d: %s", i, status, body)
					return
				}
				bodies[i][r] = string(body)
			}(i, r)
		}
	}
	wg.Wait()
	for i := range reqs {
		for r := 1; r < perReq; r++ {
			if bodies[i][r] != bodies[i][0] {
				t.Errorf("request %d: response %d differs from response 0\n%s\nvs\n%s",
					i, r, bodies[i][r], bodies[i][0])
			}
		}
	}
}

func TestAnalyzeEndpoint(t *testing.T) {
	srv := newTestServer(t)
	duet := api.MeasureRequest{Processor: "K8", Stack: "pc", Bench: "null", Pattern: "rr"}
	req := api.AnalyzeRequest{Items: []api.AnalyzeItem{
		{Measure: api.MeasureRequest{Processor: "K8", Stack: "pc", Bench: "loop:10000", Pattern: "rr", Runs: 4}},
		{
			Measure: api.MeasureRequest{Processor: "K8", Stack: "pc", Bench: "loop:20000", Pattern: "rr", Runs: 4},
			Duet:    &duet,
		},
	}}
	status, body := post(t, srv.URL+"/analyze", req)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body = %s", status, body)
	}
	var resp api.AnalyzeResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(resp.Results))
	}
	if len(resp.Results[0].Counting) != 1 || resp.Results[0].Calibration == nil {
		t.Errorf("first result missing counting estimate or calibration: %s", body)
	}
	if resp.Results[1].Duet == nil {
		t.Errorf("second result missing duet analysis: %s", body)
	}

	// Byte-identical across repeated identical calls — the service
	// contract pcload's cross-check relies on.
	status2, body2 := post(t, srv.URL+"/analyze", req)
	if status2 != http.StatusOK || string(body) != string(body2) {
		t.Errorf("repeated /analyze diverged (status %d)", status2)
	}

	// Malformed batches are the client's fault.
	status, _ = post(t, srv.URL+"/analyze", api.AnalyzeRequest{})
	if status != http.StatusBadRequest {
		t.Errorf("empty batch: status = %d, want 400", status)
	}
}

// TestPlanEndpoint drives the acceptance property over the production
// routing: an event set larger than the scheduled counter count plans,
// executes, and fuses; every fused interval is at most its naive
// per-group multiplexed interval; and two identical requests return
// byte-identical plans and estimates.
func TestPlanEndpoint(t *testing.T) {
	srv := newTestServer(t)
	req := api.PlanRequest{
		Measure: api.MeasureRequest{
			Processor: "K8", Stack: "pc", Bench: "array:2000000", Pattern: "rr",
			Events: []string{"INSTR_RETIRED", "CPU_CLK_UNHALTED", "DCACHE_MISS", "BR_MISP_RETIRED"},
		},
		TargetRelWidth: 0.1,
		Counters:       2,
		PilotRuns:      2,
		MaxRuns:        10,
	}
	status, body := post(t, srv.URL+"/plan", req)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body = %s", status, body)
	}
	var resp api.PlanResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if resp.Plan.Mode != "multiplexed" || len(resp.Plan.Groups) != 3 {
		t.Errorf("plan = %+v, want 3 multiplexed groups", resp.Plan)
	}
	if len(resp.Estimates) != 4 {
		t.Fatalf("estimates = %d, want 4", len(resp.Estimates))
	}
	for _, est := range resp.Estimates {
		naiveHalf := (est.Naive.Hi - est.Naive.Lo) / 2
		fusedHalf := (est.Fused.Hi - est.Fused.Lo) / 2
		if fusedHalf > naiveHalf*(1+1e-9) {
			t.Errorf("%s: fused half-width %v exceeds naive %v", est.Event, fusedHalf, naiveHalf)
		}
	}

	status2, body2 := post(t, srv.URL+"/plan", req)
	if status2 != http.StatusOK || string(body) != string(body2) {
		t.Errorf("repeated /plan diverged (status %d)", status2)
	}
}

func TestPlanRejectsInvalid(t *testing.T) {
	srv := newTestServer(t)
	cases := []any{
		api.PlanRequest{Measure: api.MeasureRequest{Processor: "K8", Stack: "pc", Bench: "null"}}, // no target
		api.PlanRequest{Measure: api.MeasureRequest{Processor: "Z80", Stack: "pc", Bench: "null"}, TargetRelWidth: 0.1},
		"not json",
	}
	for _, c := range cases {
		status, body := post(t, srv.URL+"/plan", c)
		if status != http.StatusBadRequest {
			t.Errorf("payload %v: status = %d (%s), want 400", c, status, body)
		}
		var e api.Error
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("payload %v: error body not the shared JSON shape: %s", c, body)
		}
	}
}

// TestErrorShapeUniform: every JSON endpoint must emit the same error
// body shape through the shared handler.
func TestErrorShapeUniform(t *testing.T) {
	srv := newTestServer(t)
	for _, path := range []string{"/measure", "/analyze", "/plan", "/experiment", "/sessions"} {
		status, body := post(t, srv.URL+path, "garbage")
		if status != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", path, status)
		}
		var e api.Error
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body = %s, want api.Error shape", path, body)
		}
	}
}

func TestMeasureCarriesAccuracyAnnotation(t *testing.T) {
	srv := newTestServer(t)
	status, body := post(t, srv.URL+"/measure", api.MeasureRequest{
		Processor: "K8", Stack: "pc", Bench: "loop:1000", Pattern: "rr", Runs: 3, Calibrate: true,
	})
	if status != http.StatusOK {
		t.Fatalf("status = %d, body = %s", status, body)
	}
	var resp api.MeasureResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if resp.Accuracy == nil {
		t.Fatalf("response carries no accuracy annotation: %s", body)
	}
	if resp.Accuracy.Event != "INSTR_RETIRED" || resp.Accuracy.N != 3 {
		t.Errorf("annotation = %+v", resp.Accuracy)
	}
	// Calibrated request: the annotation must be overhead-corrected.
	if len(resp.Accuracy.Terms) != 1 || resp.Accuracy.Terms[0].Name != "overhead" {
		t.Errorf("annotation terms = %+v, want overhead", resp.Accuracy.Terms)
	}
}

func TestMeasureRejectsInvalid(t *testing.T) {
	srv := newTestServer(t)
	cases := []any{
		api.MeasureRequest{Processor: "Z80", Stack: "pc", Bench: "null"},
		api.MeasureRequest{Processor: "K8", Stack: "PHpc", Bench: "null", Pattern: "rr"},
		"not json at all",
	}
	for _, c := range cases {
		status, body := post(t, srv.URL+"/measure", c)
		if status != http.StatusBadRequest {
			t.Errorf("payload %v: status = %d (%s), want 400", c, status, body)
		}
		var e api.Error
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("payload %v: error body not JSON: %s", c, body)
		}
	}
}

func TestExperimentEndpoint(t *testing.T) {
	srv := newTestServer(t)
	status, body := post(t, srv.URL+"/experiment", api.ExperimentRequest{ID: "table2"})
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, body)
	}
	var resp api.ExperimentResponse
	if err := json.Unmarshal(body, &resp); err != nil || !strings.Contains(resp.Title, "Table 2") {
		t.Errorf("unexpected experiment response: %s", body)
	}

	status, _ = post(t, srv.URL+"/experiment", api.ExperimentRequest{ID: "nope"})
	if status != http.StatusBadRequest {
		t.Errorf("unknown experiment: status = %d, want 400", status)
	}
}

func TestHealthzEndpoint(t *testing.T) {
	srv := newTestServer(t)
	req := api.MeasureRequest{Processor: "K8", Stack: "pc", Bench: "null", Calibrate: true}
	post(t, srv.URL+"/measure", req)
	post(t, srv.URL+"/measure", req) // warm repeat: cache hit, coalesce-or-replay

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer resp.Body.Close()
	var h api.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if h.Status != "ok" || len(h.Shards) != 1 || h.Stats.Requests != 2 {
		t.Errorf("unexpected health: %+v", h)
	}
	// The enriched shape: pool occupancy, calibration cache size and
	// hit-rate, session count — all present alongside the old fields.
	if h.Shards[0].InUse != 0 || h.Shards[0].Idle != h.Shards[0].Workers {
		t.Errorf("quiescent pool reports occupancy: %+v", h.Shards[0])
	}
	if h.Calibrations != 1 {
		t.Errorf("calibration cache size = %d, want 1", h.Calibrations)
	}
	if h.CalibrationHitRate <= 0 || h.CalibrationHitRate >= 1 {
		t.Errorf("calibration hit rate = %v, want in (0, 1)", h.CalibrationHitRate)
	}
	if h.ActiveSessions != 0 {
		t.Errorf("active sessions = %d, want 0", h.ActiveSessions)
	}

	// An open monitoring session shows up in the count and occupancy.
	// The interval paces the sampler to wall time so the session is
	// still alive when the next poll lands (a free-running sampler can
	// finish its steps before the HTTP round trip completes).
	status, body := post(t, srv.URL+"/sessions", api.SessionRequest{
		Measure:    api.MeasureRequest{Processor: "K8", Stack: "pc", Bench: "loop:1000"},
		IntervalMS: 50,
	})
	if status != http.StatusCreated {
		t.Fatalf("open session: status %d body %s", status, body)
	}
	var created api.SessionCreated
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatalf("unmarshal session: %v", err)
	}
	resp2, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&h); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if h.ActiveSessions != 1 {
		t.Errorf("active sessions = %d, want 1", h.ActiveSessions)
	}
	del, err := http.NewRequest(http.MethodDelete, srv.URL+"/sessions/"+created.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(del); err != nil || resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete session: %v, status %v", err, resp.Status)
	}
}

func TestInferEndpoint(t *testing.T) {
	srv := newTestServer(t)
	req := api.InferRequest{Items: []api.InferItem{{
		Inputs: []api.InferInput{
			{Measure: &api.MeasureRequest{
				Processor: "K8", Stack: "pc", Bench: "loop:100000", Pattern: "rr", Runs: 5,
			}},
			{Measure: &api.MeasureRequest{
				Processor: "K8", Stack: "pc", Bench: "loop:100000", Pattern: "rr", Runs: 5,
				Events: []string{"CPU_CLK_UNHALTED"},
			}},
		},
	}}}
	status, body := post(t, srv.URL+"/infer", req)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body = %s", status, body)
	}
	var resp api.InferResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	res := resp.Results[0]
	if len(res.Posterior) != 2 {
		t.Fatalf("posterior estimates = %d, want 2: %s", len(res.Posterior), body)
	}
	for i, post := range res.Posterior {
		prior := res.Prior[i]
		if post.Hi-post.Lo > (prior.Hi-prior.Lo)*(1+1e-9) {
			t.Errorf("%s: posterior wider than prior", post.Event)
		}
	}
	if len(res.Residuals) == 0 {
		t.Errorf("no residual report: %s", body)
	}

	// Byte-identical repeat over HTTP.
	_, body2 := post(t, srv.URL+"/infer", req)
	if string(body) != string(body2) {
		t.Fatalf("identical /infer requests got different bodies:\n%s\n%s", body, body2)
	}
}

func TestInferRejectsInvalid(t *testing.T) {
	srv := newTestServer(t)
	status, body := post(t, srv.URL+"/infer", api.InferRequest{})
	if status != http.StatusBadRequest {
		t.Errorf("empty batch: status = %d, body = %s", status, body)
	}
	var e api.Error
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Errorf("error shape: %s", body)
	}
	status, body = post(t, srv.URL+"/infer", api.InferRequest{Items: []api.InferItem{{
		Inputs: []api.InferInput{{Event: "X", Mean: 1, Variance: -1}},
	}}})
	if status != http.StatusBadRequest {
		t.Errorf("negative variance: status = %d, body = %s", status, body)
	}
}
