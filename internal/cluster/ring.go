package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over the currently routable nodes.
// Each node contributes vnodes points, so keys spread evenly and a
// membership change remaps only the departed node's share of the key
// space — calibration caches and in-flight coalescing on the surviving
// nodes keep their keys.
//
// A ring is immutable once built; the cluster swaps whole rings on
// membership changes, so lookups are lock-free reads.
type ring struct {
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	node *Node
}

// hashKey is the one hash both sides of the ring use: FNV-1a 64 over
// the canonical request key (or a node's virtual point label), pushed
// through a 64-bit avalanche finalizer. Raw FNV mixes trailing bytes
// weakly, so point labels like "node#0".."node#63" (and sequential
// request keys) land clustered on the ring; the finalizer spreads them
// uniformly.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// buildRing places vnodes points per node. Nodes are placed by name,
// so the ring layout depends only on membership, never on ordering or
// history — two pcfronts over the same fleet route identically.
func buildRing(nodes []*Node, vnodes int) *ring {
	points := make([]ringPoint, 0, len(nodes)*vnodes)
	for _, n := range nodes {
		for i := 0; i < vnodes; i++ {
			points = append(points, ringPoint{
				hash: hashKey(fmt.Sprintf("%s#%d", n.Name, i)),
				node: n,
			})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		// Tie-break by name so equal hashes (vanishingly rare) still
		// order deterministically across pcfront instances.
		return points[i].node.Name < points[j].node.Name
	})
	return &ring{points: points}
}

// pick returns up to max distinct nodes for key, clockwise from the
// key's hash: the primary owner first, then the natural failover and
// hedge targets in preference order.
func (r *ring) pick(key string, max int) []*Node {
	if r == nil || len(r.points) == 0 || max <= 0 {
		return nil
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	var out []*Node
	seen := make(map[*Node]bool, max)
	for i := 0; i < len(r.points) && len(out) < max; i++ {
		n := r.points[(start+i)%len(r.points)].node
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}
