package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/campaign"
	"repro/internal/monitor"
	"repro/internal/server"
)

// newBackend spins one real pcserved node (the production handler from
// internal/server) over httptest.
func newBackend(t *testing.T) *httptest.Server {
	t.Helper()
	node := server.New(server.Config{
		Workers:         2,
		CalibrationRuns: 5,
		Monitor:         monitor.Config{SweepInterval: -1},
		Campaign:        campaign.Config{SweepInterval: -1},
	})
	t.Cleanup(node.Close)
	srv := httptest.NewServer(node.Handler())
	t.Cleanup(srv.Close)
	return srv
}

// newFleet builds n real backends and a front over them. Probing and
// hedging are off unless mod turns them on, so routing is
// deterministic.
func newFleet(t *testing.T, n int, mod func(*Config)) (*Front, *httptest.Server, []*httptest.Server) {
	t.Helper()
	backends := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range backends {
		backends[i] = newBackend(t)
		urls[i] = backends[i].URL
	}
	cfg := Config{Backends: urls, ProbeInterval: -1, HedgeAfter: -1}
	if mod != nil {
		mod(&cfg)
	}
	f, err := NewFront(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	front := httptest.NewServer(f.Handler())
	t.Cleanup(front.Close)
	return f, front, backends
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func measureReq(runs int) api.MeasureRequest {
	return api.MeasureRequest{Processor: "K8", Stack: "pc", Bench: "loop:1000", Pattern: "rr", Runs: runs}
}

// TestFrontByteIdentity is the cluster's contract: for every keyed
// endpoint, the body through the proxy is byte-identical to a direct
// single-node answer — success and error responses alike.
func TestFrontByteIdentity(t *testing.T) {
	_, front, backends := newFleet(t, 3, nil)
	duet := api.MeasureRequest{Processor: "K8", Stack: "pc", Bench: "null", Pattern: "rr"}
	cases := []struct {
		path string
		body any
	}{
		{"/measure", measureReq(3)},
		{"/analyze", api.AnalyzeRequest{Items: []api.AnalyzeItem{
			{Measure: measureReq(4)},
			{Measure: api.MeasureRequest{Processor: "K8", Stack: "pc", Bench: "loop:2000", Pattern: "rr", Runs: 4}, Duet: &duet},
		}}},
		{"/plan", api.PlanRequest{Measure: api.MeasureRequest{Processor: "K8", Stack: "pc", Bench: "loop:400"},
			TargetRelWidth: 0.2, Counters: 2}},
		{"/infer", api.InferRequest{Items: []api.InferItem{{Processor: "K8", Inputs: []api.InferInput{
			{Event: "INSTR_RETIRED", Mean: 1000, Variance: 100},
			{Event: "CPU_CLK_UNHALTED", Mean: 2000, Variance: 400},
		}}}}},
		{"/measure", api.MeasureRequest{Processor: "NOPE"}}, // 400: error bodies too
	}
	for _, tc := range cases {
		t.Run(strings.TrimPrefix(tc.path, "/")+"-"+fmt.Sprint(tc.body)[:20], func(t *testing.T) {
			viaFront, fb := postJSON(t, front.URL+tc.path, tc.body)
			for _, direct := range backends {
				dresp, db := postJSON(t, direct.URL+tc.path, tc.body)
				if dresp.StatusCode != viaFront.StatusCode {
					t.Fatalf("status via front = %d, direct = %d", viaFront.StatusCode, dresp.StatusCode)
				}
				if !bytes.Equal(fb, db) {
					t.Fatalf("body diverges\nfront:  %s\ndirect: %s", fb, db)
				}
			}
			if viaFront.Header.Get(api.HeaderBackend) == "" {
				t.Error("missing backend header")
			}
			if viaFront.Header.Get(api.HeaderAttempts) != "1" {
				t.Errorf("attempts = %q, want 1", viaFront.Header.Get(api.HeaderAttempts))
			}
		})
	}
}

// TestFrontAffinity: identical requests land on the ring owner every
// time, so the owning node's coalescing and calibration cache see every
// twin.
func TestFrontAffinity(t *testing.T) {
	f, front, _ := newFleet(t, 3, nil)
	body, _ := json.Marshal(measureReq(3))
	key, err := api.RequestKeyForPath("/measure", body)
	if err != nil {
		t.Fatal(err)
	}
	want := f.Cluster().Owner(key).Name
	for i := 0; i < 5; i++ {
		resp, data := postJSON(t, front.URL+"/measure", measureReq(3))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
		if got := resp.Header.Get(api.HeaderBackend); got != want {
			t.Fatalf("request %d landed on %s, ring owner is %s", i, got, want)
		}
		if resp.Header.Get(api.HeaderRequestKey) == "" {
			t.Error("missing request-key header")
		}
	}
}

// TestFrontNodeKill: killing one backend mid-run loses zero requests —
// transport failovers are free and eject the dead node from the ring,
// and every answer stays byte-identical to the pre-kill answer.
func TestFrontNodeKill(t *testing.T) {
	f, front, backends := newFleet(t, 3, func(c *Config) { c.FailAfter = 1 })
	const n = 12
	before := make([][]byte, n)
	for i := 0; i < n; i++ {
		resp, data := postJSON(t, front.URL+"/measure", measureReq(i+1))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("pre-kill request %d: status %d: %s", i, resp.StatusCode, data)
		}
		before[i] = data
	}
	backends[1].Close()
	failovers := 0
	for i := 0; i < n; i++ {
		resp, data := postJSON(t, front.URL+"/measure", measureReq(i+1))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-kill request %d: status %d: %s", i, resp.StatusCode, data)
		}
		if !bytes.Equal(data, before[i]) {
			t.Fatalf("post-kill request %d diverges:\n%s\nvs\n%s", i, data, before[i])
		}
		if resp.Header.Get(api.HeaderAttempts) != "1" {
			failovers++
		}
	}
	if failovers == 0 {
		t.Log("no key was owned by the killed node; failover path not exercised")
	}
	name := f.Cluster().nodes[1].Name
	if got := f.Cluster().NodeInfo(name).State; got != api.NodeUnhealthy {
		t.Errorf("killed node state = %s, want unhealthy after forwarded failures", got)
	}
}

// TestFrontHedging: a silent primary gets a budgeted hedge to the next
// replica, and the hedge's answer is byte-identical (determinism makes
// any node a correct fallback).
func TestFrontHedging(t *testing.T) {
	fast := newBackend(t)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		time.Sleep(2 * time.Second) // far beyond the hedge trigger
		w.WriteHeader(http.StatusInternalServerError)
	}))
	t.Cleanup(slow.Close)
	f, err := NewFront(Config{
		Backends:      []string{slow.URL, fast.URL},
		ProbeInterval: -1,
		HedgeAfter:    10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	front := httptest.NewServer(f.Handler())
	t.Cleanup(front.Close)

	// Find a request the slow node owns, so the hedge path engages.
	slowName := f.Cluster().nodes[0].Name
	var req api.MeasureRequest
	found := false
	for runs := 1; runs <= 100 && !found; runs++ {
		req = measureReq(runs)
		body, _ := json.Marshal(req)
		key, err := api.RequestKeyForPath("/measure", body)
		if err != nil {
			t.Fatal(err)
		}
		found = f.Cluster().Owner(key).Name == slowName
	}
	if !found {
		t.Fatal("no probe request hashed to the slow node")
	}

	resp, data := postJSON(t, front.URL+"/measure", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if resp.Header.Get(api.HeaderHedged) != "true" {
		t.Fatalf("winning response not marked hedged (attempts=%s, backend=%s)",
			resp.Header.Get(api.HeaderAttempts), resp.Header.Get(api.HeaderBackend))
	}
	dresp, ddata := postJSON(t, fast.URL+"/measure", req)
	if dresp.StatusCode != http.StatusOK || !bytes.Equal(data, ddata) {
		t.Fatalf("hedged body diverges from direct:\n%s\nvs\n%s", data, ddata)
	}
	h := f.Cluster().Health()
	if h.Hedged == 0 || h.HedgeWins == 0 {
		t.Errorf("hedge counters not engaged: hedged=%d wins=%d", h.Hedged, h.HedgeWins)
	}
}

// TestFrontRetryOn5xx: a 5xx answer retries onto the next ring node
// while the budget lasts; with the budget exhausted the backend's own
// 5xx body passes through verbatim.
func TestFrontRetryOn5xx(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.WriteHeader(http.StatusInternalServerError)
		io.WriteString(w, `{"error":"induced backend failure"}`)
	}))
	t.Cleanup(bad.Close)
	good := newBackend(t)
	f, err := NewFront(Config{
		Backends:      []string{bad.URL, good.URL},
		ProbeInterval: -1,
		HedgeAfter:    -1,
		RetryBudget:   1,    // one retry, then dry
		RetryRate:     1e-9, // effectively no refill
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	front := httptest.NewServer(f.Handler())
	t.Cleanup(front.Close)

	badName := f.Cluster().nodes[0].Name
	var reqs []api.MeasureRequest
	for runs := 1; runs <= 200 && len(reqs) < 2; runs++ {
		r := measureReq(runs)
		body, _ := json.Marshal(r)
		key, err := api.RequestKeyForPath("/measure", body)
		if err != nil {
			t.Fatal(err)
		}
		if f.Cluster().Owner(key).Name == badName {
			reqs = append(reqs, r)
		}
	}
	if len(reqs) < 2 {
		t.Fatal("not enough keys hash to the failing node")
	}

	// First request: 500 from the owner, one budget token, retry wins.
	resp, data := postJSON(t, front.URL+"/measure", reqs[0])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("budgeted retry: status %d: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get(api.HeaderAttempts); got != "2" {
		t.Fatalf("attempts = %s, want 2", got)
	}
	dresp, ddata := postJSON(t, good.URL+"/measure", reqs[0])
	if dresp.StatusCode != http.StatusOK || !bytes.Equal(data, ddata) {
		t.Fatalf("retried body diverges from direct")
	}

	// Second request: budget dry, the fleet's own 5xx body surfaces.
	resp, data = postJSON(t, front.URL+"/measure", reqs[1])
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("dry budget: status %d, want 500", resp.StatusCode)
	}
	if string(data) != `{"error":"induced backend failure"}` {
		t.Fatalf("dry budget body = %s, want the backend's own", data)
	}
	if got := f.Cluster().Health().Retried; got != 1 {
		t.Errorf("retried counter = %d, want 1", got)
	}
}

// TestFrontSessionLifecycle drives create -> snapshot -> stream ->
// delete through the proxy: creation pins the owner, every follow-up
// lands there, and the NDJSON stream passes through to its end event.
func TestFrontSessionLifecycle(t *testing.T) {
	f, front, _ := newFleet(t, 3, nil)
	req := api.SessionRequest{
		Measure:    api.MeasureRequest{Processor: "K8", Stack: "pc", Bench: "loop:1000", Pattern: "rr"},
		Steps:      24,
		WindowSize: 8,
	}
	resp, body := postJSON(t, front.URL+"/sessions", req)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d: %s", resp.StatusCode, body)
	}
	owner := resp.Header.Get(api.HeaderBackend)
	if resp.Header.Get(api.HeaderHedged) == "true" {
		t.Fatal("stateful create was hedged")
	}
	var created api.SessionCreated
	if err := json.Unmarshal(body, &created); err != nil || created.ID == "" {
		t.Fatalf("bad creation body: %s (%v)", body, err)
	}
	if f.sessions.get(created.ID) == nil {
		t.Fatal("creation did not pin an owner")
	}

	snap, err := http.Get(front.URL + "/sessions/" + created.ID)
	if err != nil {
		t.Fatal(err)
	}
	snap.Body.Close()
	if snap.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d", snap.StatusCode)
	}
	if got := snap.Header.Get(api.HeaderBackend); got != owner {
		t.Fatalf("snapshot went to %s, owner is %s", got, owner)
	}

	stream, err := http.Get(front.URL + "/sessions/" + created.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type = %q", ct)
	}
	var lines [][]byte
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		lines = append(lines, append([]byte(nil), sc.Bytes()...))
	}
	if err := sc.Err(); err != nil || len(lines) == 0 {
		t.Fatalf("stream: %v (%d lines)", err, len(lines))
	}
	var last api.StreamEvent
	if err := json.Unmarshal(lines[len(lines)-1], &last); err != nil {
		t.Fatal(err)
	}
	if last.Type != api.StreamEnd {
		t.Fatalf("final stream event = %s, want end", lines[len(lines)-1])
	}

	del, err := http.NewRequest(http.MethodDelete, front.URL+"/sessions/"+created.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", dresp.StatusCode)
	}
	if f.sessions.get(created.ID) != nil {
		t.Error("delete did not unpin the owner")
	}
}

// TestFrontOwnerDiscovery: a front with no pin for an id (a restarted
// pcfront) finds the owning node by probing the fleet.
func TestFrontOwnerDiscovery(t *testing.T) {
	_, front, backends := newFleet(t, 3, nil)
	req := api.SessionRequest{
		Measure: api.MeasureRequest{Processor: "K8", Stack: "pc", Bench: "loop:1000", Pattern: "rr"},
		Steps:   8,
	}
	resp, body := postJSON(t, front.URL+"/sessions", req)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d: %s", resp.StatusCode, body)
	}
	var created api.SessionCreated
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}

	urls := make([]string, len(backends))
	for i, b := range backends {
		urls[i] = b.URL
	}
	f2, err := NewFront(Config{Backends: urls, ProbeInterval: -1, HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f2.Close)
	front2 := httptest.NewServer(f2.Handler())
	t.Cleanup(front2.Close)

	snap, err := http.Get(front2.URL + "/sessions/" + created.ID)
	if err != nil {
		t.Fatal(err)
	}
	snap.Body.Close()
	if snap.StatusCode != http.StatusOK {
		t.Fatalf("fresh front could not locate the session: status %d", snap.StatusCode)
	}
	if f2.sessions.get(created.ID) == nil {
		t.Error("locate did not cache the discovered owner")
	}
	if _, err := http.Get(front2.URL + "/sessions/nonesuch"); err != nil {
		t.Fatal(err)
	}
}

// TestFrontDrainAdmin: the drain endpoint removes a node from keyed
// routing, reports its state, and undrain restores it.
func TestFrontDrainAdmin(t *testing.T) {
	f, front, _ := newFleet(t, 3, nil)
	name := f.Cluster().nodes[0].Name
	resp, body := postJSON(t, front.URL+"/cluster/drain/"+name+"?wait=500ms", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: status %d: %s", resp.StatusCode, body)
	}
	var info api.ClusterNode
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.State != api.NodeDraining || info.Inflight != 0 {
		t.Fatalf("drain report = %+v, want draining with 0 in-flight", info)
	}
	for i := 0; i < 8; i++ {
		resp, data := postJSON(t, front.URL+"/measure", measureReq(i+1))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("during drain: status %d: %s", resp.StatusCode, data)
		}
		if got := resp.Header.Get(api.HeaderBackend); got == name {
			t.Fatalf("keyed request landed on draining node %s", got)
		}
	}
	if resp, _ := postJSON(t, front.URL+"/cluster/undrain/"+name, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("undrain: status %d", resp.StatusCode)
	}
	if got := f.Cluster().NodeInfo(name).State; got != api.NodeHealthy {
		t.Fatalf("after undrain: state %s", got)
	}
	if resp, _ := postJSON(t, front.URL+"/cluster/drain/nonesuch:1", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("drain of unknown node: status %d, want 404", resp.StatusCode)
	}
}

// TestFrontHealthzAndMetrics: the cluster health body and the pcfront
// exposition families.
func TestFrontHealthzAndMetrics(t *testing.T) {
	_, front, _ := newFleet(t, 2, nil)
	if resp, data := postJSON(t, front.URL+"/measure", measureReq(2)); resp.StatusCode != http.StatusOK {
		t.Fatalf("measure: %d %s", resp.StatusCode, data)
	}

	resp, err := http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var h api.ClusterHealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || len(h.Nodes) != 2 {
		t.Fatalf("healthz = %+v", h)
	}

	mresp, err := http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	text, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{
		"pcfront_http_requests_total",
		"pcfront_http_request_duration_seconds",
		"pcfront_backend_request_duration_seconds",
		"pcfront_backend_requests_total",
		"pcfront_backend_state",
		"pcfront_hedged_requests_total",
		"pcfront_stream_owners",
	} {
		if !bytes.Contains(text, []byte(family)) {
			t.Errorf("metrics missing family %s", family)
		}
	}
}

// TestOwnersBounded: the pin table evicts FIFO at capacity; a dropped
// pin is only a locate away.
func TestOwnersBounded(t *testing.T) {
	n := &Node{Name: "n:1"}
	o := newOwners(3)
	for i := 0; i < 5; i++ {
		o.put(fmt.Sprintf("id-%d", i), n)
	}
	if o.len() != 3 {
		t.Fatalf("len = %d, want 3", o.len())
	}
	if o.get("id-0") != nil || o.get("id-1") != nil {
		t.Fatal("oldest pins were not evicted")
	}
	if o.get("id-4") != n {
		t.Fatal("newest pin missing")
	}
	o.drop("id-4")
	if o.get("id-4") != nil {
		t.Fatal("drop did not remove the pin")
	}
}
