package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name     string
		backends []string
	}{
		{"empty", nil},
		{"bad URL", []string{"://nope"}},
		{"no scheme", []string{"localhost:7090"}},
		{"duplicate", []string{"http://h:1", "http://h:1/"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(Config{Backends: tc.backends, ProbeInterval: -1}); err == nil {
				t.Fatalf("New(%v) accepted a bad fleet", tc.backends)
			}
		})
	}
}

// flakyBackend is an httptest backend whose /healthz can be flipped
// between 200 and 500.
func flakyBackend(t *testing.T) (*httptest.Server, *atomic.Bool) {
	t.Helper()
	var sick atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if sick.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(srv.Close)
	return srv, &sick
}

// TestProbeStateMachine drives the fail/rise counters: a node leaves
// the ring after FailAfter consecutive probe failures and returns after
// RiseAfter consecutive successes.
func TestProbeStateMachine(t *testing.T) {
	good, _ := flakyBackend(t)
	flaky, sick := flakyBackend(t)
	c, err := New(Config{
		Backends:      []string{good.URL, flaky.URL},
		ProbeInterval: -1, // tests drive probes by hand
		FailAfter:     2,
		RiseAfter:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	flakyName := c.nodes[1].Name

	state := func(name string) string { return c.NodeInfo(name).State }
	if got := state(flakyName); got != "healthy" {
		t.Fatalf("initial state = %s, want healthy", got)
	}

	sick.Store(true)
	c.ProbeOnce()
	if got := state(flakyName); got != "healthy" {
		t.Fatalf("after 1 failure: state = %s; FailAfter=2 must tolerate one", got)
	}
	c.ProbeOnce()
	if got := state(flakyName); got != "unhealthy" {
		t.Fatalf("after 2 failures: state = %s, want unhealthy", got)
	}
	for i := 0; i < 50; i++ {
		if owner := c.Owner(fmt.Sprintf("key-%d", i)); owner.Name == flakyName {
			t.Fatalf("unhealthy node %s still owns keys", flakyName)
		}
	}

	sick.Store(false)
	c.ProbeOnce()
	if got := state(flakyName); got != "unhealthy" {
		t.Fatalf("after 1 recovery: state = %s; RiseAfter=2 must require two", got)
	}
	c.ProbeOnce()
	if got := state(flakyName); got != "healthy" {
		t.Fatalf("after 2 recoveries: state = %s, want healthy", got)
	}
}

// TestTransportFailureEjection: forwarded transport failures feed the
// same fail counter as probes, so a dead node leaves the ring without
// waiting out probe rounds.
func TestTransportFailureEjection(t *testing.T) {
	a, _ := flakyBackend(t)
	b, _ := flakyBackend(t)
	c, err := New(Config{Backends: []string{a.URL, b.URL}, ProbeInterval: -1, FailAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	n := c.nodes[0]
	c.noteTransportFailure(n)
	if got := c.NodeInfo(n.Name).State; got != "healthy" {
		t.Fatalf("after 1 transport failure: %s", got)
	}
	c.noteTransportFailure(n)
	if got := c.NodeInfo(n.Name).State; got != "unhealthy" {
		t.Fatalf("after 2 transport failures: %s, want unhealthy", got)
	}
	// A healthy probe round brings it back (RiseAfter defaults to 2).
	c.ProbeOnce()
	c.ProbeOnce()
	if got := c.NodeInfo(n.Name).State; got != "healthy" {
		t.Fatalf("after recovery probes: %s, want healthy", got)
	}
}

// TestDrainExcludesFromRing: a draining node receives no new keys but
// stays addressable; undrain restores it.
func TestDrainExcludesFromRing(t *testing.T) {
	a, _ := flakyBackend(t)
	b, _ := flakyBackend(t)
	c, err := New(Config{Backends: []string{a.URL, b.URL}, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	name := c.nodes[0].Name
	if _, err := c.Drain("nonesuch:1"); err == nil {
		t.Fatal("drain of unknown node succeeded")
	}
	n, err := c.Drain(name)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.NodeInfo(name).State; got != "draining" {
		t.Fatalf("state = %s, want draining", got)
	}
	for i := 0; i < 50; i++ {
		if owner := c.Owner(fmt.Sprintf("key-%d", i)); owner.Name == name {
			t.Fatalf("draining node %s still owns keys", name)
		}
	}
	// DrainWait returns immediately at zero in-flight.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if left := c.DrainWait(ctx, n); left != 0 {
		t.Fatalf("DrainWait = %d in-flight, want 0", left)
	}
	if _, err := c.Undrain(name); err != nil {
		t.Fatal(err)
	}
	owned := false
	for i := 0; i < 200 && !owned; i++ {
		owned = c.Owner(fmt.Sprintf("key-%d", i)).Name == name
	}
	if !owned {
		t.Fatalf("undrained node %s owns no keys", name)
	}
}

// TestHealthStatus: ok -> degraded -> unavailable as nodes fall out.
func TestHealthStatus(t *testing.T) {
	a, _ := flakyBackend(t)
	b, _ := flakyBackend(t)
	c, err := New(Config{Backends: []string{a.URL, b.URL}, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.Health().Status; got != "ok" {
		t.Fatalf("status = %s, want ok", got)
	}
	c.mu.Lock()
	c.nodes[0].healthy = false
	c.mu.Unlock()
	if got := c.Health().Status; got != "degraded" {
		t.Fatalf("status = %s, want degraded", got)
	}
	c.mu.Lock()
	c.nodes[1].healthy = false
	c.mu.Unlock()
	if got := c.Health().Status; got != "unavailable" {
		t.Fatalf("status = %s, want unavailable", got)
	}
}

// TestBudget: the token bucket caps retry amplification — spends fail
// below one token, credits accrue at the configured rate up to max.
func TestBudget(t *testing.T) {
	b := &budget{max: 2, rate: 0.5}
	if b.spend() {
		t.Fatal("spend from an empty bucket succeeded")
	}
	b.credit() // 0.5
	if b.spend() {
		t.Fatal("spend at 0.5 tokens succeeded")
	}
	b.credit() // 1.0
	if !b.spend() {
		t.Fatal("spend at 1.0 tokens failed")
	}
	for i := 0; i < 100; i++ {
		b.credit()
	}
	if !b.spend() || !b.spend() {
		t.Fatal("bucket did not hold its max of 2")
	}
	if b.spend() {
		t.Fatal("bucket exceeded its max")
	}
}

// TestCandidatesFallback: with every node out of the ring, candidates
// falls back to the full fleet — a probe can be wrong, and refusing to
// try guarantees failure.
func TestCandidatesFallback(t *testing.T) {
	a, _ := flakyBackend(t)
	b, _ := flakyBackend(t)
	c, err := New(Config{Backends: []string{a.URL, b.URL}, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.mu.Lock()
	c.nodes[0].healthy = false
	c.nodes[1].healthy = false
	c.rebuildLocked()
	c.mu.Unlock()
	if got := len(c.candidates("k")); got != 2 {
		t.Fatalf("candidates over an empty ring = %d nodes, want the full fleet", got)
	}
	if c.Owner("k") != nil {
		t.Fatal("Owner over an empty ring is non-nil")
	}
}
