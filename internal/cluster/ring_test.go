package cluster

import (
	"fmt"
	"testing"
)

func namedNodes(names ...string) []*Node {
	out := make([]*Node, len(names))
	for i, n := range names {
		out[i] = &Node{Name: n, Base: "http://" + n}
	}
	return out
}

// TestRingDeterminism: the ring layout depends only on membership,
// never on node ordering — two pcfronts over the same fleet route every
// key identically.
func TestRingDeterminism(t *testing.T) {
	a := buildRing(namedNodes("n0:1", "n1:1", "n2:1"), 64)
	b := buildRing(namedNodes("n2:1", "n0:1", "n1:1"), 64)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		pa, pb := a.pick(key, 3), b.pick(key, 3)
		if len(pa) != 3 || len(pb) != 3 {
			t.Fatalf("key %q: pick lengths %d, %d", key, len(pa), len(pb))
		}
		for j := range pa {
			if pa[j].Name != pb[j].Name {
				t.Fatalf("key %q: preference order diverges at %d: %s vs %s",
					key, j, pa[j].Name, pb[j].Name)
			}
		}
	}
}

// TestRingDistribution: virtual nodes spread keys roughly evenly; no
// node may own a degenerate share.
func TestRingDistribution(t *testing.T) {
	nodes := namedNodes("n0:1", "n1:1", "n2:1")
	r := buildRing(nodes, 64)
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.pick(fmt.Sprintf("key-%d", i), 1)[0].Name]++
	}
	for _, n := range nodes {
		share := float64(counts[n.Name]) / keys
		if share < 0.15 || share > 0.55 {
			t.Errorf("node %s owns %.0f%% of keys; want a reasonable share (counts %v)",
				n.Name, share*100, counts)
		}
	}
}

// TestRingPickDistinct: the preference order holds distinct nodes, and
// asking for more than exist returns them all.
func TestRingPickDistinct(t *testing.T) {
	r := buildRing(namedNodes("n0:1", "n1:1", "n2:1"), 8)
	got := r.pick("some-key", 10)
	if len(got) != 3 {
		t.Fatalf("pick(10) over 3 nodes = %d nodes", len(got))
	}
	seen := map[string]bool{}
	for _, n := range got {
		if seen[n.Name] {
			t.Fatalf("node %s appears twice in %v", n.Name, got)
		}
		seen[n.Name] = true
	}
}

// TestRingMinimalRemap: removing one node remaps only that node's keys;
// every key a surviving node owned stays put. This is the property that
// preserves calibration-cache affinity through a node failure.
func TestRingMinimalRemap(t *testing.T) {
	full := namedNodes("n0:1", "n1:1", "n2:1")
	before := buildRing(full, 64)
	after := buildRing(full[:2], 64) // n2 departs
	moved := 0
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		was, is := before.pick(key, 1)[0], after.pick(key, 1)[0]
		if was.Name == "n2:1" {
			moved++
			continue
		}
		if was.Name != is.Name {
			t.Fatalf("key %q moved %s -> %s though its owner survived", key, was.Name, is.Name)
		}
	}
	if moved == 0 {
		t.Fatal("no keys owned by the departed node; distribution is broken")
	}
}

// TestRingEmpty: a nil or empty ring picks nothing (the cluster then
// falls back to the full fleet).
func TestRingEmpty(t *testing.T) {
	var r *ring
	if got := r.pick("k", 1); got != nil {
		t.Fatalf("nil ring pick = %v", got)
	}
	if got := buildRing(nil, 64).pick("k", 1); got != nil {
		t.Fatalf("empty ring pick = %v", got)
	}
}
