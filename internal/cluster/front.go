package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/telemetry"
)

// maxBody bounds a proxied request body: pcfront buffers bodies to
// retry and hedge them, so a hostile client must not buffer gigabytes.
const maxBody = 16 << 20

// Front is the HTTP face of the cluster: the route table mirroring
// pcserved's, the stream-owner pinning for stateful resources, and the
// proxy's own telemetry.
type Front struct {
	c         *Cluster
	sessions  *owners
	campaigns *owners
	handler   http.Handler

	reg      *telemetry.Registry
	runtime  *telemetry.Runtime
	requests *telemetry.CounterVec
	errors   *telemetry.CounterVec
	latency  *telemetry.HistogramVec
	backend  *telemetry.HistogramVec
	// stage pre-binds one histogram per front span name
	// (telemetry.FrontSpanNames), fed by the observer of every request's
	// trace — the cluster-tier mirror of pcserved's stage histograms.
	stage map[string]*telemetry.Histogram
}

// NewFront builds the cluster and its HTTP front end. Close the Front
// (not the Cluster) when done.
func NewFront(cfg Config) (*Front, error) {
	c, err := New(cfg)
	if err != nil {
		return nil, err
	}
	f := &Front{
		c:         c,
		sessions:  newOwners(4096),
		campaigns: newOwners(4096),
		reg:       telemetry.NewRegistry(),
		runtime:   telemetry.NewRuntime("pcfront"),
		stage:     make(map[string]*telemetry.Histogram),
	}
	buckets := telemetry.LogBuckets(1e-5, 10, 3)
	f.requests = f.reg.NewCounterVec("pcfront_http_requests_total",
		"Requests served by the cluster front end, by route pattern.", "endpoint")
	f.errors = f.reg.NewCounterVec("pcfront_http_errors_total",
		"Front-end responses with status >= 400, by route pattern.", "endpoint")
	f.latency = f.reg.NewHistogramVec("pcfront_http_request_duration_seconds",
		"Front-end request latency (routing + backend + hop), by route pattern.", buckets, "endpoint")
	f.backend = f.reg.NewHistogramVec("pcfront_backend_request_duration_seconds",
		"Per-attempt backend latency as observed by the proxy, by backend.", buckets, "backend")
	stageVec := f.reg.NewHistogramVec("pcfront_stage_duration_seconds",
		"Per-stage cluster-tier span durations (docs/OBSERVABILITY.md front span catalogue).",
		buckets, "stage")
	for _, name := range telemetry.FrontSpanNames() {
		f.stage[name] = stageVec.With(name)
	}
	c.observeAttempt = func(backend string, d time.Duration) {
		f.backend.With(backend).Observe(d)
	}
	f.handler = f.routes()
	return f, nil
}

// observeSpan feeds a finished front span into its stage histogram.
// Names outside the front catalogue are dropped rather than minting
// unbounded label values.
func (f *Front) observeSpan(sd telemetry.SpanData) {
	if h, ok := f.stage[sd.Name]; ok {
		h.Observe(sd.Duration)
	}
}

// Cluster exposes the fleet view (drain control, health, tests).
func (f *Front) Cluster() *Cluster { return f.c }

// Handler returns the front end's route table.
func (f *Front) Handler() http.Handler { return f.handler }

// Close stops the prober.
func (f *Front) Close() { f.c.Close() }

// routes assembles the proxy mux. The keyed endpoints mirror
// pcserved's POST surface; the stateful /sessions and /campaigns
// resources add owner-pinned sub-routes; /healthz, /metrics, and the
// /cluster admin routes are the proxy's own.
func (f *Front) routes() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, f.instrument(endpointLabel(pattern), h))
	}
	for _, path := range []string{"/measure", "/analyze", "/plan", "/infer", "/experiment"} {
		handle("POST "+path, f.keyed(path, true, nil))
	}
	// Stateful creations route by configuration key for affinity but
	// never hedge: a hedged create could mint two sessions, and the
	// loser's cancel may land after the backend committed.
	handle("POST /sessions", f.keyed("/sessions", false, f.sessions))
	handle("POST /campaigns", f.keyed("/campaigns", false, f.campaigns))
	handle("GET /sessions/{id}", f.owned("sessions", f.sessions, false))
	handle("GET /sessions/{id}/stream", f.owned("sessions", f.sessions, true))
	handle("DELETE /sessions/{id}", f.owned("sessions", f.sessions, false))
	handle("GET /campaigns/{id}", f.owned("campaigns", f.campaigns, false))
	handle("GET /campaigns/{id}/stream", f.owned("campaigns", f.campaigns, true))
	handle("DELETE /campaigns/{id}", f.owned("campaigns", f.campaigns, false))
	handle("GET /healthz", f.healthz)
	handle("GET /cluster", f.healthz)
	handle("GET /cluster/healthz", f.clusterHealthz)
	handle("POST /cluster/drain/{node}", f.drain(true))
	handle("POST /cluster/undrain/{node}", f.drain(false))
	mux.HandleFunc("GET /metrics", f.serveMetrics)
	mux.HandleFunc("GET /cluster/metrics", f.clusterMetrics)
	return mux
}

// endpointLabel strips the method from a route pattern for metric
// labels, mirroring internal/server.
func endpointLabel(pattern string) string {
	if i := strings.IndexByte(pattern, ' '); i >= 0 {
		return pattern[i+1:]
	}
	return pattern
}

// instrument wraps a handler with the per-endpoint counters and the
// route latency histogram, and installs an observed trace in the
// request context so the cluster-tier spans Forward records land in
// the stage histograms on every request — traced or not.
func (f *Front) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	requests := f.requests.With(endpoint)
	errCount := f.errors.With(endpoint)
	latency := f.latency.With(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		tr := telemetry.NewObserved(f.observeSpan)
		r = r.WithContext(telemetry.NewContext(r.Context(), tr))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		requests.Inc()
		if sw.status >= 400 {
			errCount.Inc()
		}
		latency.Observe(time.Since(start))
	}
}

// keyed proxies one POST endpoint by canonical request key. When the
// body does not canonicalize (malformed or invalid), it is forwarded
// anyway under a raw-bytes key: the backend is the single source of
// error-body truth, so even a 400 is byte-identical to a direct
// answer.
func (f *Front) keyed(path string, hedge bool, record *owners) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("reading request: %w", err))
			return
		}
		if len(body) > maxBody {
			writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("request body exceeds %d bytes", maxBody))
			return
		}
		key, kerr := api.RequestKeyForPath(path, body)
		if kerr != nil {
			key = "raw|" + strconv.FormatUint(hashKey(string(body)), 16)
		}
		traced := api.WantsTrace(path, body)
		if traced {
			// Mark the hop traced: the backend echoes its span trace in
			// the X-Pc-Trace-Spans response header (error bodies included)
			// so the front can stitch it under its own spans.
			r.Header.Set(api.HeaderTrace, f.c.cfg.Name)
		}
		tr := telemetry.FromContext(r.Context())
		resp, info, err := f.c.Forward(r.Context(), path, r.Header, body, key, hedge)
		if err != nil {
			if traced {
				f.sealTrace(w, tr, nil)
			}
			writeError(w, http.StatusBadGateway, fmt.Errorf("cluster: forwarding %s: %w", path, err))
			return
		}
		if traced {
			stitched := f.sealTrace(w, tr, resp)
			if resp.status == http.StatusOK {
				resp = &backendResponse{status: resp.status, header: resp.header,
					body: withStitchedTrace(resp.body, stitched)}
			}
		}
		if record != nil && resp.status == http.StatusCreated {
			var created struct {
				ID string `json:"id"`
			}
			if json.Unmarshal(resp.body, &created) == nil && created.ID != "" {
				record.put(created.ID, f.c.byName[info.Backend])
			}
		}
		writeProxied(w, resp, info, key, kerr == nil)
	}
}

// sealTrace assembles the stitched trace tree — the front's own spans
// with the backend's echoed trace nested verbatim underneath — and
// sets it as the response's X-Pc-Trace-Spans header. The header rides
// every traced response, error paths included: an error body is the
// backend's verbatim answer and cannot be rewritten, so the header is
// the only channel that carries the hop's trace out.
func (f *Front) sealTrace(w http.ResponseWriter, tr *telemetry.Trace, resp *backendResponse) *api.TraceInfo {
	stitched := api.TraceInfoFrom(tr)
	if stitched == nil {
		stitched = &api.TraceInfo{}
	}
	stitched.Origin = f.c.cfg.Name
	if resp != nil {
		// Prefer the in-body trace block (it includes the encode span);
		// error bodies have none, so fall back to the header echo.
		if raw := traceBlock(resp.body); raw != nil {
			stitched.Backend = raw
		} else if h := resp.header.Get(api.HeaderTraceSpans); h != "" {
			stitched.Backend = json.RawMessage(h)
		}
	}
	if b, err := json.Marshal(stitched); err == nil {
		w.Header().Set(api.HeaderTraceSpans, string(b))
	}
	return stitched
}

// traceBlock extracts the raw bytes of a JSON object's top-level
// "trace" value, nil when absent or the body is not an object.
func traceBlock(body []byte) json.RawMessage {
	var m map[string]json.RawMessage
	if json.Unmarshal(body, &m) != nil {
		return nil
	}
	return m["trace"]
}

// withStitchedTrace replaces a 200 body's trace block with the
// stitched tree. Every other field survives as raw bytes; the backend
// subtree inside the new block is the backend's trace verbatim. Any
// failure returns the body unchanged — a proxy degrades to
// passthrough, never corrupts.
func withStitchedTrace(body []byte, stitched *api.TraceInfo) []byte {
	var m map[string]json.RawMessage
	if json.Unmarshal(body, &m) != nil {
		return body
	}
	if _, ok := m["trace"]; !ok {
		return body
	}
	raw, err := json.Marshal(stitched)
	if err != nil {
		return body
	}
	m["trace"] = raw
	out, err := json.Marshal(m)
	if err != nil {
		return body
	}
	// Backend bodies end in a newline (json.Encoder); keep the shape.
	return append(out, '\n')
}

// owned routes a stateful sub-resource to its owning node: the owner
// map when the id was created through this proxy, a fleet-wide lookup
// otherwise (a restarted pcfront must still find sessions its
// predecessor placed).
func (f *Front) owned(kind string, o *owners, stream bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		n := o.get(id)
		if n == nil {
			n = f.locate(r.Context(), kind, id, o)
		}
		if n == nil {
			writeError(w, http.StatusNotFound, fmt.Errorf("cluster: no node owns %s/%s", kind, id))
			return
		}
		if stream {
			f.proxyStream(w, r, n, "/"+kind+"/"+id+"/stream")
			return
		}
		f.proxyOwned(w, r, n, o, "/"+kind+"/"+id, id)
	}
}

// locate probes every node for an id the owner map does not know,
// caching a hit. Draining nodes are included — their pinned resources
// live until they end — and unhealthy ones too: a probe can be stale,
// and a 404 from a live owner would be worse than a wasted try.
func (f *Front) locate(ctx context.Context, kind, id string, o *owners) *Node {
	for _, n := range f.c.nodes {
		ctx, cancel := context.WithTimeout(ctx, f.c.cfg.ProbeTimeout)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.Base+"/"+kind+"/"+id, nil)
		if err != nil {
			cancel()
			continue
		}
		resp, err := f.c.cfg.Client.Do(req)
		cancel()
		if err != nil {
			continue
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			o.put(id, n)
			return n
		}
	}
	return nil
}

// proxyOwned forwards a snapshot or delete to the owning node. No
// retry, no hedge: the resource exists exactly there.
func (f *Front) proxyOwned(w http.ResponseWriter, r *http.Request, n *Node, o *owners, path, id string) {
	n.inflight.Add(1)
	defer n.inflight.Add(-1)
	n.requests.Add(1)
	req, err := http.NewRequestWithContext(r.Context(), r.Method, n.Base+path, nil)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	req.Header.Set(api.HeaderForwarded, f.c.cfg.Name)
	resp, err := f.c.cfg.Client.Do(req)
	if err != nil {
		n.errors.Add(1)
		f.c.noteTransportFailure(n)
		writeError(w, http.StatusBadGateway, fmt.Errorf("cluster: node %s: %w", n.Name, err))
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		n.errors.Add(1)
		writeError(w, http.StatusBadGateway, fmt.Errorf("cluster: node %s: %w", n.Name, err))
		return
	}
	if r.Method == http.MethodDelete && resp.StatusCode == http.StatusNoContent {
		o.drop(id)
	}
	writeProxied(w, &backendResponse{status: resp.StatusCode, header: resp.Header, body: body},
		RouteInfo{Backend: n.Name, Attempts: 1}, "", false)
}

// proxyStream forwards an NDJSON stream from the owning node,
// flushing each chunk as it arrives so follow-mode clients see events
// live. The stream client has no timeout — streams live as long as
// their producer — and the hop counts toward the node's in-flight
// total, so drain waits for pinned streams.
func (f *Front) proxyStream(w http.ResponseWriter, r *http.Request, n *Node, path string) {
	n.inflight.Add(1)
	defer n.inflight.Add(-1)
	n.requests.Add(1)
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, n.Base+path, nil)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	req.Header.Set(api.HeaderForwarded, f.c.cfg.Name)
	resp, err := f.c.streamClient.Do(req)
	if err != nil {
		n.errors.Add(1)
		f.c.noteTransportFailure(n)
		writeError(w, http.StatusBadGateway, fmt.Errorf("cluster: node %s: %w", n.Name, err))
		return
	}
	defer resp.Body.Close()
	// The stream-passthrough span covers the whole proxied stream, first
	// byte to producer close; recorded retroactively on return since a
	// stream has no post-body trailer to carry it sooner.
	tr := telemetry.FromContext(r.Context())
	sstart := tr.Clock()
	defer func() {
		tr.AddSince(telemetry.SpanStreamPassthrough, sstart,
			telemetry.Annotation{Key: "backend", Value: n.Name},
			telemetry.Annotation{Key: "status", Value: strconv.Itoa(resp.StatusCode)})
	}()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set(api.HeaderBackend, n.Name)
	w.WriteHeader(resp.StatusCode)
	flusher, canFlush := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	for {
		nr, rerr := resp.Body.Read(buf)
		if nr > 0 {
			if _, werr := w.Write(buf[:nr]); werr != nil {
				return
			}
			if canFlush {
				flusher.Flush()
			}
		}
		if rerr != nil {
			return
		}
	}
}

// healthz reports the cluster view: 200 while any node can serve, 503
// when none can.
func (f *Front) healthz(w http.ResponseWriter, r *http.Request) {
	h := f.c.Health()
	h.Sessions = f.sessions.len()
	h.Campaigns = f.campaigns.len()
	status := http.StatusOK
	if h.Status == "unavailable" {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// drain handles the admin drain/undrain endpoints. Draining marks the
// node out of the ring and, when the request carries ?wait=DURATION,
// blocks until its in-flight work (streams included) finishes or the
// wait expires; the response reports the node's state and remaining
// in-flight count either way.
func (f *Front) drain(on bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("node")
		var (
			n   *Node
			err error
		)
		if on {
			n, err = f.c.Drain(name)
		} else {
			n, err = f.c.Undrain(name)
		}
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		if on {
			if waitSpec := r.URL.Query().Get("wait"); waitSpec != "" {
				d, perr := time.ParseDuration(waitSpec)
				if perr != nil {
					writeError(w, http.StatusBadRequest, fmt.Errorf("cluster: bad wait %q: %v", waitSpec, perr))
					return
				}
				ctx, cancel := context.WithTimeout(r.Context(), d)
				f.c.DrainWait(ctx, n)
				cancel()
			}
		}
		writeJSON(w, http.StatusOK, f.c.NodeInfo(name))
	}
}

// serveMetrics renders the proxy's Prometheus exposition: the
// registry families (HTTP, stage, and backend-attempt latency) plus
// the snapshot-derived per-backend counters, fleet gauges, and the Go
// runtime families.
func (f *Front) serveMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	f.writeOwnMetrics(w)
}

// writeOwnMetrics writes the front's own families — the shared body of
// /metrics and the head of the federated /cluster/metrics document.
func (f *Front) writeOwnMetrics(w io.Writer) {
	f.reg.WritePrometheus(w)
	e := telemetry.NewExpo(w)
	label := func(k, v string) telemetry.Annotation { return telemetry.Annotation{Key: k, Value: v} }
	h := f.c.Health()

	e.Family("pcfront_backend_requests_total", "Attempts sent, by backend.", "counter")
	for _, n := range h.Nodes {
		e.Sample(float64(n.Requests), label("backend", n.Name))
	}
	e.Family("pcfront_backend_errors_total", "Attempts that failed (transport error or 5xx), by backend.", "counter")
	for _, n := range h.Nodes {
		e.Sample(float64(n.Errors), label("backend", n.Name))
	}
	e.Family("pcfront_backend_hedges_total", "Hedge attempts launched, by backend.", "counter")
	for _, n := range h.Nodes {
		e.Sample(float64(n.Hedges), label("backend", n.Name))
	}
	e.Family("pcfront_backend_retries_total", "Retry attempts sent, by backend.", "counter")
	for _, n := range h.Nodes {
		e.Sample(float64(n.Retries), label("backend", n.Name))
	}
	e.Family("pcfront_backend_inflight", "Proxied requests currently outstanding, by backend.", "gauge")
	for _, n := range h.Nodes {
		e.Sample(float64(n.Inflight), label("backend", n.Name))
	}
	e.Family("pcfront_backend_state", "Backend state (1 for the current state, by backend and state).", "gauge")
	for _, n := range h.Nodes {
		for _, s := range []string{api.NodeHealthy, api.NodeUnhealthy, api.NodeDraining} {
			v := 0.0
			if n.State == s {
				v = 1
			}
			e.Sample(v, label("backend", n.Name), label("state", s))
		}
	}
	e.Family("pcfront_hedged_requests_total", "Requests that launched a hedge.", "counter")
	e.Sample(float64(h.Hedged))
	e.Family("pcfront_hedge_wins_total", "Hedged requests the hedge won.", "counter")
	e.Sample(float64(h.HedgeWins))
	e.Family("pcfront_retried_requests_total", "Requests that retried at least once.", "counter")
	e.Sample(float64(h.Retried))
	e.Family("pcfront_stream_owners", "Pinned stream routes tracked, by kind.", "gauge")
	e.Sample(float64(f.sessions.len()), label("kind", "sessions"))
	e.Sample(float64(f.campaigns.len()), label("kind", "campaigns"))
	f.runtime.Write(e)
}

// clusterMetrics federates the fleet's expositions into one document:
// the front's own families first, then every routable backend's
// /metrics scraped, parsed, and merged — counters and histograms
// summed fleet-wide, gauges kept per node under a backend label — and
// a per-backend scrape-success gauge so a partial document is visible
// as such rather than silently short.
func (f *Front) clusterMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	f.writeOwnMetrics(w)

	m := telemetry.NewMerger()
	scraped := make([]float64, len(f.c.nodes))
	for i, n := range f.c.nodes {
		if f.c.NodeInfo(n.Name).State == api.NodeUnhealthy {
			continue
		}
		fams, err := f.scrapeMetrics(r.Context(), n)
		if err != nil {
			continue
		}
		m.Add(n.Name, fams)
		scraped[i] = 1
	}
	e := telemetry.NewExpo(w)
	e.Family("pcfront_cluster_scrape_ok", "Whether this document includes the backend's scraped families (0: unhealthy or scrape failed).", "gauge")
	for i, n := range f.c.nodes {
		e.Sample(scraped[i], telemetry.Annotation{Key: "backend", Value: n.Name})
	}
	m.Write(telemetry.NewExpo(w))
}

// scrapeMetrics fetches and parses one backend's /metrics under the
// probe timeout.
func (f *Front) scrapeMetrics(ctx context.Context, n *Node) ([]telemetry.ParsedFamily, error) {
	ctx, cancel := context.WithTimeout(ctx, f.c.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.Base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(api.HeaderForwarded, f.c.cfg.Name)
	resp, err := f.c.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("cluster: %s /metrics: status %d", n.Name, resp.StatusCode)
	}
	return telemetry.ParseExposition(resp.Body)
}

// clusterHealthz renders the whole fleet as one JSON document: the
// front's own summary (ring, drain, budget state) plus every node's
// own /healthz report, or the scrape error for nodes that did not
// answer. 503 mirrors /healthz: only when no node can serve.
func (f *Front) clusterHealthz(w http.ResponseWriter, r *http.Request) {
	front := f.c.Health()
	front.Sessions = f.sessions.len()
	front.Campaigns = f.campaigns.len()
	health := make(map[string]*api.HealthResponse, len(f.c.nodes))
	errs := make(map[string]string)
	for _, n := range f.c.nodes {
		h, err := f.scrapeHealth(r.Context(), n)
		if err != nil {
			errs[n.Name] = err.Error()
			continue
		}
		health[n.Name] = h
	}
	status := http.StatusOK
	if front.Status == "unavailable" {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, api.ClusterStatusFrom(front, health, errs))
}

// scrapeHealth fetches and decodes one backend's /healthz under the
// probe timeout. Non-200 still decodes: a degraded node's report is
// exactly what the fleet view wants to show.
func (f *Front) scrapeHealth(ctx context.Context, n *Node) (*api.HealthResponse, error) {
	ctx, cancel := context.WithTimeout(ctx, f.c.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.Base+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(api.HeaderForwarded, f.c.cfg.Name)
	resp, err := f.c.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var h api.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, fmt.Errorf("cluster: %s /healthz: %w", n.Name, err)
	}
	return &h, nil
}

// writeProxied copies a backend response to the client, attaching the
// routing metadata headers. The body is written verbatim: byte
// identity with a direct answer is the cluster's contract.
func writeProxied(w http.ResponseWriter, resp *backendResponse, info RouteInfo, key string, keyed bool) {
	if ct := resp.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.Header().Set(api.HeaderBackend, info.Backend)
	w.Header().Set(api.HeaderAttempts, strconv.Itoa(info.Attempts))
	if info.Hedged {
		w.Header().Set(api.HeaderHedged, "true")
	}
	if keyed {
		w.Header().Set(api.HeaderRequestKey, strconv.FormatUint(hashKey(key), 16))
	}
	w.WriteHeader(resp.status)
	w.Write(resp.body)
}

// writeJSON writes v as the JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError writes the shared JSON error body.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, api.Error{Error: err.Error()})
}

// statusWriter records the response status for the error counter,
// preserving the streaming surface (Flush, Unwrap) of the underlying
// writer.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// owners is the bounded id -> node pin table behind the stateful
// routes. Eviction is FIFO: old pins fall out once the table is full,
// and a dropped pin only costs the next request a locate sweep.
type owners struct {
	mu    sync.Mutex
	m     map[string]*Node
	order []string
	cap   int
}

func newOwners(cap int) *owners {
	return &owners{m: make(map[string]*Node), cap: cap}
}

func (o *owners) put(id string, n *Node) {
	if n == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if _, ok := o.m[id]; !ok {
		o.order = append(o.order, id)
		if len(o.order) > o.cap {
			delete(o.m, o.order[0])
			o.order = o.order[1:]
		}
	}
	o.m[id] = n
}

func (o *owners) get(id string) *Node {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.m[id]
}

func (o *owners) drop(id string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	delete(o.m, id)
	// The order slice keeps the id until it cycles out; a stale entry
	// only re-deletes a missing key.
}

func (o *owners) len() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.m)
}
