package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/campaign"
	"repro/internal/monitor"
	"repro/internal/server"
	"repro/internal/telemetry"
)

// newCapturingBackend is a real pcserved node whose responses are also
// recorded verbatim, so tests can compare what the backend emitted with
// what the front stitched — byte for byte.
func newCapturingBackend(t *testing.T, mu *sync.Mutex, bodies *[][]byte) *httptest.Server {
	t.Helper()
	node := server.New(server.Config{
		Workers:         2,
		CalibrationRuns: 5,
		Monitor:         monitor.Config{SweepInterval: -1},
		Campaign:        campaign.Config{SweepInterval: -1},
	})
	t.Cleanup(node.Close)
	h := node.Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, r)
		mu.Lock()
		*bodies = append(*bodies, append([]byte(nil), rec.Body.Bytes()...))
		mu.Unlock()
		for k, vs := range rec.Header() {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(rec.Code)
		w.Write(rec.Body.Bytes())
	}))
	t.Cleanup(srv.Close)
	return srv
}

func decodeTrace(t *testing.T, raw []byte) *api.TraceInfo {
	t.Helper()
	var info api.TraceInfo
	if err := json.Unmarshal(raw, &info); err != nil {
		t.Fatalf("decoding trace %s: %v", raw, err)
	}
	return &info
}

func spanCount(info *api.TraceInfo, name string) int {
	n := 0
	for _, s := range info.Spans {
		if s.Name == name {
			n++
		}
	}
	return n
}

// TestFrontTraceStitching is the tentpole's contract: a traced request
// through the proxy yields one coherent tree — the front's route and
// forward spans on top, the backend's trace nested underneath
// byte-identical to what the backend emitted, in both the body's trace
// block and the X-Pc-Trace-Spans response header.
func TestFrontTraceStitching(t *testing.T) {
	var mu sync.Mutex
	var captured [][]byte
	backend := newCapturingBackend(t, &mu, &captured)
	f, err := NewFront(Config{Backends: []string{backend.URL}, ProbeInterval: -1, HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	front := httptest.NewServer(f.Handler())
	t.Cleanup(front.Close)

	req := measureReq(3)
	req.Trace = true
	resp, body := postJSON(t, front.URL+"/measure", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}

	var m map[string]json.RawMessage
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	rawTrace, ok := m["trace"]
	if !ok {
		t.Fatalf("traced response has no trace block: %s", body)
	}
	stitched := decodeTrace(t, rawTrace)
	if stitched.Origin != "pcfront" {
		t.Fatalf("origin %q, want pcfront", stitched.Origin)
	}
	if spanCount(stitched, telemetry.SpanRoute) != 1 || spanCount(stitched, telemetry.SpanForward) != 1 {
		t.Fatalf("front spans missing: %+v", stitched.Spans)
	}
	if len(stitched.Backend) == 0 {
		t.Fatal("no backend subtree stitched")
	}

	// The header carries the same stitched tree as the body's block.
	if h := resp.Header.Get(api.HeaderTraceSpans); h != string(rawTrace) {
		t.Fatalf("header/body trace disagree:\nheader: %s\nbody:   %s", h, rawTrace)
	}

	// Byte identity: the stitched subtree is exactly the trace block of
	// the body the backend actually sent over the wire.
	mu.Lock()
	var backendTrace json.RawMessage
	for _, b := range captured {
		var bm map[string]json.RawMessage
		if json.Unmarshal(b, &bm) == nil && bm["trace"] != nil {
			backendTrace = bm["trace"]
		}
	}
	mu.Unlock()
	if backendTrace == nil {
		t.Fatal("backend emitted no traced response")
	}
	if !bytes.Equal(stitched.Backend, backendTrace) {
		t.Fatalf("backend subtree not byte-identical:\nstitched: %s\nbackend:  %s", stitched.Backend, backendTrace)
	}

	// Cross-request: the subtree's shape equals a direct traced answer's
	// trace shape (durations differ, the stage tree must not).
	dresp, dbody := postJSON(t, backend.URL+"/measure", req)
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("direct status %d", dresp.StatusCode)
	}
	var dm map[string]json.RawMessage
	if err := json.Unmarshal(dbody, &dm); err != nil {
		t.Fatal(err)
	}
	sub := decodeTrace(t, stitched.Backend)
	direct := decodeTrace(t, dm["trace"])
	if sub.Shape() != direct.Shape() {
		t.Fatalf("subtree shape %q, direct trace shape %q", sub.Shape(), direct.Shape())
	}

	// Untraced requests stay untouched: no header, no trace block.
	resp, body = postJSON(t, front.URL+"/measure", measureReq(3))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("untraced status %d", resp.StatusCode)
	}
	if resp.Header.Get(api.HeaderTraceSpans) != "" {
		t.Error("untraced response grew a trace header")
	}
	if bytes.Contains(body, []byte(`"trace"`)) {
		t.Errorf("untraced body grew a trace block: %s", body)
	}
}

// TestFrontTraceErrorBodyKeepsHeader is the regression for the error
// path: a traced request that the backend rejects keeps its error body
// byte-identical to a direct answer (never rewritten), and the stitched
// trace rides the X-Pc-Trace-Spans header instead.
func TestFrontTraceErrorBodyKeepsHeader(t *testing.T) {
	_, front, backends := newFleet(t, 1, nil)
	req := api.MeasureRequest{Processor: "NOPE", Trace: true}
	resp, body := postJSON(t, front.URL+"/measure", req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	dresp, dbody := postJSON(t, backends[0].URL+"/measure", req)
	if dresp.StatusCode != http.StatusBadRequest || !bytes.Equal(body, dbody) {
		t.Fatalf("error body diverges from direct:\nfront:  %s\ndirect: %s", body, dbody)
	}
	h := resp.Header.Get(api.HeaderTraceSpans)
	if h == "" {
		t.Fatal("traced error response lost the trace header")
	}
	stitched := decodeTrace(t, []byte(h))
	if stitched.Origin != "pcfront" {
		t.Fatalf("origin %q", stitched.Origin)
	}
	if spanCount(stitched, telemetry.SpanRoute) != 1 || spanCount(stitched, telemetry.SpanForward) != 1 {
		t.Fatalf("front spans missing on error path: %+v", stitched.Spans)
	}
	if len(stitched.Backend) == 0 {
		t.Fatal("error path lost the backend subtree (header echo)")
	}
	sub := decodeTrace(t, stitched.Backend)
	if spanCount(sub, telemetry.SpanParse) != 1 {
		t.Fatalf("backend subtree missing parse span: %+v", sub.Spans)
	}
}

// TestFrontHedgeLoserSpanIsolation is the regression for hedged races:
// the losing attempt — cancelled or still running when the winner
// returns — must contribute no forward span to the stitched tree. One
// route, one forward (the winner's), one hedge span; nothing else.
func TestFrontHedgeLoserSpanIsolation(t *testing.T) {
	fast := newBackend(t)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		time.Sleep(2 * time.Second)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	t.Cleanup(slow.Close)
	f, err := NewFront(Config{
		Backends:      []string{slow.URL, fast.URL},
		ProbeInterval: -1,
		HedgeAfter:    10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	front := httptest.NewServer(f.Handler())
	t.Cleanup(front.Close)

	// Find a traced request the slow node owns (the trace flag is part
	// of the body, so the key is computed from the traced form).
	slowName := f.Cluster().nodes[0].Name
	var req api.MeasureRequest
	found := false
	for runs := 1; runs <= 100 && !found; runs++ {
		req = measureReq(runs)
		req.Trace = true
		body, _ := json.Marshal(req)
		key, err := api.RequestKeyForPath("/measure", body)
		if err != nil {
			t.Fatal(err)
		}
		found = f.Cluster().Owner(key).Name == slowName
	}
	if !found {
		t.Fatal("no probe request hashed to the slow node")
	}

	resp, body := postJSON(t, front.URL+"/measure", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get(api.HeaderHedged) != "true" {
		t.Fatal("winning response not marked hedged")
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	stitched := decodeTrace(t, m["trace"])
	if got := spanCount(stitched, telemetry.SpanForward); got != 1 {
		t.Fatalf("forward spans = %d, want exactly the winner's: %+v", got, stitched.Spans)
	}
	for _, s := range stitched.Spans {
		if s.Name == telemetry.SpanForward && s.Annotations["backend"] == slowName {
			t.Fatalf("losing attempt leaked its span: %+v", s)
		}
		if s.Name == telemetry.SpanHedge && s.Annotations["winner"] != "hedge" {
			t.Fatalf("hedge span winner = %q", s.Annotations["winner"])
		}
	}
	if spanCount(stitched, telemetry.SpanHedge) != 1 {
		t.Fatalf("hedge span missing: %+v", stitched.Spans)
	}
}

// TestClusterMetricsFederation: /cluster/metrics is one well-formed
// exposition — the front's own families, then the fleet's merged: every
// counter summed across backends, every gauge kept per node under a
// backend label, and a scrape-success gauge naming what the document
// covers.
func TestClusterMetricsFederation(t *testing.T) {
	_, front, backends := newFleet(t, 3, nil)
	for i := 0; i < 3; i++ {
		if resp, data := postJSON(t, front.URL+"/measure", measureReq(i+1)); resp.StatusCode != http.StatusOK {
			t.Fatalf("measure %d: %d %s", i, resp.StatusCode, data)
		}
	}

	scrape := func() ([]telemetry.ParsedFamily, []byte) {
		t.Helper()
		resp, err := http.Get(front.URL + "/cluster/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		text, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		fams, err := telemetry.ParseExposition(bytes.NewReader(text))
		if err != nil {
			t.Fatalf("federated document does not parse: %v", err)
		}
		return fams, text
	}
	find := func(fams []telemetry.ParsedFamily, name string) *telemetry.ParsedFamily {
		for i := range fams {
			if fams[i].Name == name {
				return &fams[i]
			}
		}
		return nil
	}

	fams, text := scrape()
	// One declaration per family: re-emitting a name would fail
	// Prometheus ingestion.
	if got := bytes.Count(text, []byte("# TYPE pcserved_http_requests_total ")); got != 1 {
		t.Fatalf("pcserved_http_requests_total declared %d times", got)
	}

	// Counters sum fleet-wide: the 3 measures each cost exactly one
	// backend request, wherever they landed.
	reqs := find(fams, "pcserved_http_requests_total")
	if reqs == nil {
		t.Fatal("merged document missing pcserved_http_requests_total")
	}
	total := 0.0
	for _, s := range reqs.Samples {
		for _, l := range s.Labels {
			if l.Key == "endpoint" && l.Value == "/measure" {
				total += s.Value
			}
			if l.Key == "backend" {
				t.Fatalf("summed counter kept a backend label: %+v", s)
			}
		}
	}
	if total != 3 {
		t.Fatalf("fleet /measure requests = %v, want 3", total)
	}

	// Gauges stay per-node, one sample per backend.
	entries := find(fams, "pcserved_calibration_cache_entries")
	if entries == nil {
		t.Fatal("merged document missing pcserved_calibration_cache_entries")
	}
	nodes := make(map[string]bool)
	for _, s := range entries.Samples {
		for _, l := range s.Labels {
			if l.Key == "backend" {
				nodes[l.Value] = true
			}
		}
	}
	if len(nodes) != 3 {
		t.Fatalf("gauge backend labels = %v, want all 3 nodes", nodes)
	}

	ok := find(fams, "pcfront_cluster_scrape_ok")
	if ok == nil || len(ok.Samples) != 3 {
		t.Fatalf("scrape_ok family = %+v", ok)
	}
	for _, s := range ok.Samples {
		if s.Value != 1 {
			t.Fatalf("healthy fleet scrape_ok = %+v", s)
		}
	}
	for _, own := range []string{"pcfront_http_requests_total", "pcfront_stage_duration_seconds", "pcfront_go_goroutines"} {
		if find(fams, own) == nil {
			t.Errorf("federated document missing own family %s", own)
		}
	}

	// A dead backend degrades to scrape_ok 0; the document stays
	// well-formed and keeps the survivors' families.
	backends[0].Close()
	fams, _ = scrape()
	ok = find(fams, "pcfront_cluster_scrape_ok")
	zeros := 0
	for _, s := range ok.Samples {
		if s.Value == 0 {
			zeros++
		}
	}
	if zeros != 1 {
		t.Fatalf("after kill: scrape_ok zeros = %d, want 1 (%+v)", zeros, ok.Samples)
	}
	if find(fams, "pcserved_http_requests_total") == nil {
		t.Fatal("survivors' families missing after one backend died")
	}
}

// TestFrontClusterHealthz: the fleet status document joins the front's
// routing view with every node's own health report, and names the
// scrape failure for nodes that did not answer.
func TestFrontClusterHealthz(t *testing.T) {
	_, front, backends := newFleet(t, 3, nil)
	get := func() api.ClusterStatusResponse {
		t.Helper()
		resp, err := http.Get(front.URL + "/cluster/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var doc api.ClusterStatusResponse
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		return doc
	}

	doc := get()
	if doc.Front.Status != "ok" || len(doc.Backends) != 3 {
		t.Fatalf("fleet doc = %+v", doc.Front)
	}
	for _, b := range doc.Backends {
		if !b.Reachable || b.Health == nil || b.Health.Status != "ok" {
			t.Fatalf("backend row = %+v", b)
		}
		if b.Node.Name == "" || b.Node.State != api.NodeHealthy {
			t.Fatalf("node view = %+v", b.Node)
		}
	}

	backends[2].Close()
	doc = get()
	dead := 0
	for _, b := range doc.Backends {
		if !b.Reachable {
			dead++
			if b.Error == "" {
				t.Fatalf("unreachable row has no error: %+v", b)
			}
			if !strings.Contains(b.Error, "connect") && !strings.Contains(b.Error, "refused") && b.Error != "unreachable" {
				t.Logf("scrape error: %s", b.Error)
			}
		}
	}
	if dead != 1 {
		t.Fatalf("unreachable rows = %d, want 1", dead)
	}
}
