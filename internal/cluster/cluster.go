// Package cluster is the coordinator tier that scales pcserved out
// horizontally: a consistent-hash proxy (cmd/pcfront) that places each
// request on a fleet of measurement nodes by its canonical key
// (api.RequestKey — the exact identity the service coalesces on), so
// cluster-wide request coalescing and calibration-cache affinity fall
// out of routing for free.
//
// Because every node answers a given normalized request with a
// byte-identical body (the determinism contract of internal/service),
// placement is an efficiency decision, never a correctness one: any
// healthy node is a valid fallback. The cluster exploits that with
// per-request retries (transport failures fail over to the next ring
// node immediately; 5xx retries spend a token budget so a sick fleet
// cannot melt down under retry amplification) and tail-latency hedging
// (a slow primary gets a budgeted second attempt on the next replica;
// first response wins, the loser's context is cancelled).
//
// Membership is health-checked: a prober drives GET /healthz against
// every backend, and nodes leave the ring after FailAfter consecutive
// failures and rejoin after RiseAfter consecutive successes. Node
// drain generalizes the session-drain discipline of internal/monitor
// to the fleet: a draining node stops receiving new keys but keeps its
// in-flight work and its pinned streams until they end, so a deploy is
// drain -> wait -> SIGTERM (the node's own registries then end its
// streams with a "drained" event).
//
// Stateful resources (/sessions, /campaigns) are pinned: creation
// routes by the configuration's canonical key, and the returned id is
// remembered so snapshot, stream, and delete requests follow the
// owning node. See docs/CLUSTER.md.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
)

// Config describes a fleet and the proxy's policies. The zero value of
// every field but Backends is a production default.
type Config struct {
	// Backends lists the pcserved base URLs (e.g. http://10.0.0.1:7090).
	// Required, at least one.
	Backends []string
	// VNodes is the number of ring points per backend. More points
	// spread keys more evenly at a small ring-size cost. Zero means 64.
	VNodes int
	// ProbeInterval is the liveness-probe cadence against each
	// backend's /healthz. Zero means 1s; negative disables probing
	// (tests drive state by hand).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe. Zero means 2s.
	ProbeTimeout time.Duration
	// FailAfter is how many consecutive probe failures (or forwarded
	// transport failures) mark a node unhealthy. Zero means 2.
	FailAfter int
	// RiseAfter is how many consecutive probe successes return an
	// unhealthy node to the ring. Zero means 2.
	RiseAfter int
	// HedgeAfter is how long the primary attempt may run before a
	// hedge fires to the next replica. Zero means 50ms; negative
	// disables hedging.
	HedgeAfter time.Duration
	// RetryBudget is the token budget shared by 5xx retries and
	// hedges: each forwarded request credits RetryRate tokens (capped
	// at RetryBudget), each budgeted extra attempt spends one. Zero
	// means 64. Transport-error failovers are deliberately free —
	// a dead node must not be able to starve its own failover.
	RetryBudget float64
	// RetryRate is the per-request token credit. Zero means 0.2.
	RetryRate float64
	// Client is the backend HTTP client. Nil means a client with a 60s
	// timeout for keyed requests (streams use a timeout-free clone).
	Client *http.Client
	// Name identifies this pcfront in the api.HeaderForwarded request
	// header. Empty means "pcfront".
	Name string
}

func (c Config) withDefaults() (Config, error) {
	if len(c.Backends) == 0 {
		return c, errors.New("cluster: no backends configured")
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 2
	}
	if c.RiseAfter <= 0 {
		c.RiseAfter = 2
	}
	if c.HedgeAfter == 0 {
		c.HedgeAfter = 50 * time.Millisecond
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 64
	}
	if c.RetryRate <= 0 {
		c.RetryRate = 0.2
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 60 * time.Second}
	}
	if c.Name == "" {
		c.Name = "pcfront"
	}
	return c, nil
}

// Node is one backend as the cluster sees it: identity, probed state,
// and per-backend counters. All counter fields are atomics; state
// transitions go through the cluster's lock so ring rebuilds are
// consistent.
type Node struct {
	// Name is the backend's short identity (the URL's host:port).
	Name string
	// Base is the backend's base URL, scheme included, no trailing
	// slash.
	Base string

	// inflight counts proxied requests (streams included) currently
	// outstanding.
	inflight atomic.Int64
	// requests/errors/hedges/retries are the per-backend attempt
	// counters surfaced in health and metrics.
	requests atomic.Uint64
	errors   atomic.Uint64
	hedges   atomic.Uint64
	retries  atomic.Uint64

	// Probed state, guarded by the owning cluster's mu.
	healthy  bool
	draining bool
	fails    int // consecutive probe/transport failures
	rises    int // consecutive probe successes while unhealthy
}

// State returns the node's api state string. Draining wins over
// health: a draining node is out of the ring either way.
func (n *Node) stateLocked() string {
	switch {
	case n.draining:
		return api.NodeDraining
	case n.healthy:
		return api.NodeHealthy
	}
	return api.NodeUnhealthy
}

// Inflight returns the node's outstanding proxied-request count.
func (n *Node) Inflight() int64 { return n.inflight.Load() }

// Cluster owns the fleet view: nodes, the hash ring over the routable
// ones, the prober, and the retry/hedge budget.
type Cluster struct {
	cfg    Config
	nodes  []*Node // configuration order, immutable
	byName map[string]*Node

	mu   sync.Mutex
	ring atomic.Pointer[ring]

	budget budget

	// streamClient is cfg.Client without a timeout: NDJSON streams live
	// as long as their producer, and http.Client.Timeout covers the
	// whole body read.
	streamClient *http.Client

	// observeAttempt, when set (by the front end), receives every
	// finished backend attempt's latency for the per-backend histogram.
	observeAttempt func(backend string, d time.Duration)

	// hedged/hedgeWins/retried count requests (not attempts) that
	// engaged each policy.
	hedged    atomic.Uint64
	hedgeWins atomic.Uint64
	retried   atomic.Uint64

	proberStop chan struct{}
	proberDone chan struct{}
}

// New builds the fleet view and starts the liveness prober. Every
// backend starts healthy: the fleet is presumed up at boot so the
// first requests don't wait out a probe round; a dead node falls out
// on its first failed probe or forwarded attempt.
func New(cfg Config) (*Cluster, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:    cfg,
		byName: make(map[string]*Node, len(cfg.Backends)),
	}
	c.budget.max = cfg.RetryBudget
	c.budget.rate = cfg.RetryRate
	c.budget.tokens = cfg.RetryBudget
	sc := *cfg.Client
	sc.Timeout = 0
	c.streamClient = &sc
	for _, raw := range cfg.Backends {
		base := strings.TrimRight(raw, "/")
		u, err := url.Parse(base)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: bad backend URL %q", raw)
		}
		if _, dup := c.byName[u.Host]; dup {
			return nil, fmt.Errorf("cluster: duplicate backend %s", u.Host)
		}
		n := &Node{Name: u.Host, Base: base, healthy: true}
		c.nodes = append(c.nodes, n)
		c.byName[u.Host] = n
	}
	c.rebuildLocked()
	if cfg.ProbeInterval > 0 {
		c.proberStop = make(chan struct{})
		c.proberDone = make(chan struct{})
		go c.prober()
	}
	return c, nil
}

// Close stops the prober. In-flight forwards finish on their own.
func (c *Cluster) Close() {
	if c.proberStop != nil {
		close(c.proberStop)
		<-c.proberDone
	}
}

// Nodes returns the fleet in configuration order.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// rebuildLocked recomputes the ring over healthy, non-draining nodes.
// Callers hold c.mu.
func (c *Cluster) rebuildLocked() {
	var routable []*Node
	for _, n := range c.nodes {
		if n.healthy && !n.draining {
			routable = append(routable, n)
		}
	}
	c.ring.Store(buildRing(routable, c.cfg.VNodes))
}

// candidates returns the preference-ordered attempt targets for a key:
// the ring owner first, then its clockwise successors. When the ring
// is empty (every node unhealthy or draining), it falls back to the
// full fleet in configuration order — a probe can be wrong, and
// refusing to try at all guarantees failure.
func (c *Cluster) candidates(key string) []*Node {
	if nodes := c.ring.Load().pick(key, len(c.nodes)); len(nodes) > 0 {
		return nodes
	}
	return c.nodes
}

// Owner returns the ring owner for a canonical key (nil when the ring
// is empty). It is the placement the keyed endpoints use, exposed for
// tests and the drain report.
func (c *Cluster) Owner(key string) *Node {
	nodes := c.ring.Load().pick(key, 1)
	if len(nodes) == 0 {
		return nil
	}
	return nodes[0]
}

// Drain marks a node draining and removes it from the ring: new keys
// hash elsewhere, in-flight work and pinned streams continue. It
// returns the node's remaining in-flight count; callers poll (or
// DrainWait) until it reaches zero before stopping the backend.
func (c *Cluster) Drain(name string) (*Node, error) {
	n := c.byName[name]
	if n == nil {
		return nil, fmt.Errorf("cluster: %w: %s", ErrUnknownNode, name)
	}
	c.mu.Lock()
	n.draining = true
	c.rebuildLocked()
	c.mu.Unlock()
	return n, nil
}

// Undrain returns a drained node to the ring (subject to health).
func (c *Cluster) Undrain(name string) (*Node, error) {
	n := c.byName[name]
	if n == nil {
		return nil, fmt.Errorf("cluster: %w: %s", ErrUnknownNode, name)
	}
	c.mu.Lock()
	n.draining = false
	c.rebuildLocked()
	c.mu.Unlock()
	return n, nil
}

// DrainWait blocks until the node's in-flight count reaches zero or
// the context ends, returning the remaining count.
func (c *Cluster) DrainWait(ctx context.Context, n *Node) int64 {
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		if left := n.inflight.Load(); left == 0 {
			return 0
		}
		select {
		case <-ctx.Done():
			return n.inflight.Load()
		case <-tick.C:
		}
	}
}

// ErrUnknownNode reports a drain/undrain request naming no configured
// backend.
var ErrUnknownNode = errors.New("unknown node")

// prober drives liveness probes at the configured cadence. One round
// probes every node concurrently; state transitions rebuild the ring.
func (c *Cluster) prober() {
	defer close(c.proberDone)
	tick := time.NewTicker(c.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-c.proberStop:
			return
		case <-tick.C:
			c.ProbeOnce()
		}
	}
}

// ProbeOnce probes every node once, concurrently, and applies the
// fail/rise state machine. Exposed so tests (and a disabled-prober
// cluster) can drive membership deterministically.
func (c *Cluster) ProbeOnce() {
	var wg sync.WaitGroup
	results := make([]bool, len(c.nodes))
	for i, n := range c.nodes {
		wg.Add(1)
		go func(i int, n *Node) {
			defer wg.Done()
			results[i] = c.probe(n)
		}(i, n)
	}
	wg.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	changed := false
	for i, n := range c.nodes {
		if results[i] {
			n.fails = 0
			if !n.healthy {
				if n.rises++; n.rises >= c.cfg.RiseAfter {
					n.healthy, n.rises = true, 0
					changed = true
				}
			}
		} else {
			n.rises = 0
			if n.healthy {
				if n.fails++; n.fails >= c.cfg.FailAfter {
					n.healthy, n.fails = false, 0
					changed = true
				}
			}
		}
	}
	if changed {
		c.rebuildLocked()
	}
}

// probe performs one liveness check: GET /healthz answering 200 within
// the probe timeout.
func (c *Cluster) probe(n *Node) bool {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.Base+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// noteTransportFailure feeds a forwarded attempt's dial/transport
// failure into the same fail counter the prober uses: a refused
// connection is stronger evidence than a missed probe, so a dead node
// leaves the ring after FailAfter forwarded failures without waiting
// out probe rounds.
func (c *Cluster) noteTransportFailure(n *Node) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n.rises = 0
	if !n.healthy {
		return
	}
	if n.fails++; n.fails >= c.cfg.FailAfter {
		n.healthy, n.fails = false, 0
		c.rebuildLocked()
	}
}

// NodeInfo returns one backend's current api view (zero value for an
// unknown name).
func (c *Cluster) NodeInfo(name string) api.ClusterNode {
	n := c.byName[name]
	if n == nil {
		return api.ClusterNode{}
	}
	c.mu.Lock()
	state := n.stateLocked()
	c.mu.Unlock()
	return api.ClusterNode{
		Name:     n.Name,
		URL:      n.Base,
		State:    state,
		Inflight: n.inflight.Load(),
		Requests: n.requests.Load(),
		Errors:   n.errors.Load(),
		Hedges:   n.hedges.Load(),
		Retries:  n.retries.Load(),
	}
}

// Health assembles the cluster health view. Stream-owner counts are
// the front end's and are overlaid by the handler.
func (c *Cluster) Health() api.ClusterHealthResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := api.ClusterHealthResponse{
		Hedged:    c.hedged.Load(),
		HedgeWins: c.hedgeWins.Load(),
		Retried:   c.retried.Load(),
	}
	healthyN := 0
	for _, n := range c.nodes {
		state := n.stateLocked()
		if state == api.NodeHealthy {
			healthyN++
		}
		h.Nodes = append(h.Nodes, api.ClusterNode{
			Name:     n.Name,
			URL:      n.Base,
			State:    state,
			Inflight: n.inflight.Load(),
			Requests: n.requests.Load(),
			Errors:   n.errors.Load(),
			Hedges:   n.hedges.Load(),
			Retries:  n.retries.Load(),
		})
	}
	switch {
	case healthyN == len(c.nodes):
		h.Status = "ok"
	case healthyN > 0:
		h.Status = "degraded"
	default:
		h.Status = "unavailable"
	}
	return h
}

// budget is the token bucket shared by 5xx retries and hedges: each
// forwarded request credits rate tokens (capped at max), each budgeted
// extra attempt spends one. It bounds retry amplification — a fleet
// returning 5xx under overload sees at most rate extra attempts per
// request in steady state, not a doubling.
type budget struct {
	mu     sync.Mutex
	tokens float64
	max    float64
	rate   float64
}

func (b *budget) credit() {
	b.mu.Lock()
	if b.tokens += b.rate; b.tokens > b.max {
		b.tokens = b.max
	}
	b.mu.Unlock()
}

func (b *budget) spend() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
