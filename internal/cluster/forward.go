package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/api"
	"repro/internal/telemetry"
)

// RouteInfo reports how a forwarded request was served: which backend
// answered, how many attempts it took, and whether a hedge won. The
// front end surfaces it in the api.Header* response headers — never in
// the body, which must stay byte-identical to a direct answer.
type RouteInfo struct {
	Backend  string
	Attempts int
	Hedged   bool
}

// backendResponse is one backend's complete answer to a keyed (non-
// streaming) request.
type backendResponse struct {
	status int
	header http.Header
	body   []byte
}

// attemptOutcome is one finished attempt.
type attemptOutcome struct {
	node   *Node
	index  int // 1-based launch order
	hedged bool
	dur    time.Duration
	resp   *backendResponse // nil on transport error
	err    error
}

// errNoBackends reports a forward with nothing to try.
var errNoBackends = errors.New("cluster: no backends available")

// Forward sends a keyed request to the fleet and returns the winning
// response. The policy, in order of engagement:
//
//   - The primary attempt goes to the key's ring owner.
//   - Transport failures (dial refused, connection reset) fail over to
//     the next ring node immediately and for free — and feed the
//     owner's failure counter so a dead node leaves the ring fast.
//   - A 5xx answer retries on the next node if the retry budget has a
//     token; 4xx answers return immediately (they are deterministic
//     verdicts on the request, identical on every node).
//   - If the primary is still silent after HedgeAfter, a hedge fires to
//     the next replica (budget permitting, and only when hedge is
//     true — stateful creations must not run twice). First complete
//     non-5xx response wins; every other attempt's context is
//     cancelled.
//
// Responses are deterministic across nodes, so any winner is the
// correct answer.
//
// When ctx carries a trace, Forward records the cluster-tier spans
// (route, forward, retry, hedge). Every span is recorded from this
// function's single select loop, never from an attempt goroutine: an
// attempt that loses a hedge race and completes after the winner
// returned can only write to the buffered results channel, so by
// construction it cannot leak spans into the stitched tree.
func (c *Cluster) Forward(ctx context.Context, path string, header http.Header, body []byte, key string, hedge bool) (*backendResponse, RouteInfo, error) {
	tr := telemetry.FromContext(ctx)
	rstart := tr.Clock()
	cands := c.candidates(key)
	if len(cands) == 0 {
		return nil, RouteInfo{}, errNoBackends
	}
	tr.AddSince(telemetry.SpanRoute, rstart,
		telemetry.Annotation{Key: "key", Value: strconv.FormatUint(hashKey(key), 16)},
		telemetry.Annotation{Key: "backend", Value: cands[0].Name},
		telemetry.Annotation{Key: "candidates", Value: strconv.Itoa(len(cands))})
	c.budget.credit()

	ctx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()

	results := make(chan attemptOutcome, len(cands))
	attempts, outstanding, next := 0, 0, 0
	launch := func(hedged, retry bool) {
		n := cands[next]
		next++
		attempts++
		outstanding++
		n.requests.Add(1)
		if hedged {
			n.hedges.Add(1)
		}
		if retry {
			n.retries.Add(1)
		}
		go func(index int) {
			start := time.Now()
			out := c.attempt(ctx, n, path, header, body, hedged)
			out.index = index
			out.dur = time.Since(start)
			results <- out
		}(attempts)
	}
	launch(false, false)

	var hedgeCh <-chan time.Time
	if hedge && c.cfg.HedgeAfter > 0 && len(cands) > 1 {
		t := time.NewTimer(c.cfg.HedgeAfter)
		defer t.Stop()
		hedgeCh = t.C
	}

	hedgedReq, retriedReq := false, false
	var hedgeStart time.Time
	var lastErr error
	var last5xx *backendResponse
	lastBackend, lastAttempts := "", 0
	finish := func(out attemptOutcome) (*backendResponse, RouteInfo, error) {
		info := RouteInfo{Backend: out.node.Name, Attempts: attempts, Hedged: out.hedged}
		if hedgedReq {
			c.hedged.Add(1)
			winner := "primary"
			if out.hedged {
				winner = "hedge"
				c.hedgeWins.Add(1)
			}
			// The hedge span covers the whole race, launch to win; the
			// losers' contexts are cancelled by the deferred cancelAll
			// right after this returns.
			tr.AddSince(telemetry.SpanHedge, hedgeStart,
				telemetry.Annotation{Key: "winner", Value: winner},
				telemetry.Annotation{Key: "cancelled", Value: strconv.Itoa(outstanding)})
		}
		if retriedReq {
			c.retried.Add(1)
		}
		return out.resp, info, nil
	}
	recordForward := func(out attemptOutcome) {
		if tr == nil {
			return
		}
		annots := []telemetry.Annotation{
			{Key: "attempt", Value: strconv.Itoa(out.index)},
			{Key: "backend", Value: out.node.Name},
		}
		if out.err != nil {
			annots = append(annots, telemetry.Annotation{Key: "error", Value: "transport"})
		} else {
			annots = append(annots, telemetry.Annotation{Key: "status", Value: strconv.Itoa(out.resp.status)})
		}
		if out.hedged {
			annots = append(annots, telemetry.Annotation{Key: "hedged", Value: "true"})
		}
		tr.Add(telemetry.SpanForward, out.dur, annots...)
	}
	for {
		select {
		case out := <-results:
			outstanding--
			recordForward(out)
			switch {
			case out.err == nil && out.resp.status < http.StatusInternalServerError:
				return finish(out)
			case out.err != nil:
				lastErr = out.err
			default:
				last5xx = out.resp
				lastBackend, lastAttempts = out.node.Name, attempts
			}
			// Transport failures retry for free (see Forward doc); 5xx
			// retries spend a budget token.
			if next < len(cands) && (out.err != nil || c.budget.spend()) {
				retriedReq = true
				reason := "5xx"
				if out.err != nil {
					reason = "transport"
				}
				launch(false, true)
				tr.Add(telemetry.SpanRetry, 0,
					telemetry.Annotation{Key: "attempt", Value: strconv.Itoa(attempts)},
					telemetry.Annotation{Key: "backend", Value: cands[next-1].Name},
					telemetry.Annotation{Key: "reason", Value: reason})
			} else if outstanding == 0 {
				if last5xx != nil {
					// Surface the fleet's own error body rather than
					// synthesizing one: the client sees what a direct
					// request would have seen.
					return last5xx, RouteInfo{Backend: lastBackend, Attempts: lastAttempts}, nil
				}
				return nil, RouteInfo{Attempts: attempts}, fmt.Errorf("cluster: all %d attempts failed: %w", attempts, lastErr)
			}
		case <-hedgeCh:
			if next < len(cands) && c.budget.spend() {
				hedgedReq = true
				hedgeStart = tr.Clock()
				launch(true, false)
			}
			hedgeCh = nil
		case <-ctx.Done():
			return nil, RouteInfo{Attempts: attempts}, ctx.Err()
		}
	}
}

// attempt performs one backend try and reads the complete response.
// Cancellation (a lost hedge race, caller disconnect) is not a node
// failure: only genuine transport errors feed the failure counter.
func (c *Cluster) attempt(ctx context.Context, n *Node, path string, header http.Header, body []byte, hedged bool) attemptOutcome {
	n.inflight.Add(1)
	defer n.inflight.Add(-1)
	if c.observeAttempt != nil {
		start := time.Now()
		defer func() { c.observeAttempt(n.Name, time.Since(start)) }()
	}
	out := attemptOutcome{node: n, hedged: hedged}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.Base+path, bytes.NewReader(body))
	if err != nil {
		out.err = err
		return out
	}
	copyForwardHeaders(req.Header, header)
	req.Header.Set(api.HeaderForwarded, c.cfg.Name)
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			n.errors.Add(1)
			c.noteTransportFailure(n)
		}
		out.err = err
		return out
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		if ctx.Err() == nil {
			n.errors.Add(1)
			c.noteTransportFailure(n)
		}
		out.err = err
		return out
	}
	if resp.StatusCode >= http.StatusInternalServerError {
		n.errors.Add(1)
	}
	out.resp = &backendResponse{status: resp.StatusCode, header: resp.Header, body: data}
	return out
}

// copyForwardHeaders forwards the request headers that matter to the
// backend. The hop is internal and the body is the message; only the
// content type and trace propagation survive the hop.
func copyForwardHeaders(dst, src http.Header) {
	if src == nil {
		return
	}
	if ct := src.Get("Content-Type"); ct != "" {
		dst.Set("Content-Type", ct)
	}
	if tv := src.Get(api.HeaderTrace); tv != "" {
		dst.Set(api.HeaderTrace, tv)
	}
}
