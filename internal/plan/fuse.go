package plan

import (
	"math"

	"repro/internal/accuracy"
	"repro/internal/mpx"
	"repro/internal/stats"
)

// FuseEvent fuses one multiplexed event's per-run estimates with the
// anchor copy that shared its group's rotation windows, against a
// reference estimate of the anchor measured independently.
//
// The naive estimate (accuracy.Multiplex) folds two error sources: the
// run-to-run dispersion of the interpolated values and the Poisson
// extrapolation noise. The dispersion is dominated by *window noise* —
// which rotation windows the group happened to get — and the anchor
// copy in the same group saw exactly the same windows, so its error is
// strongly correlated with the event's. The fusion subtracts the
// correlated part: with per-run pairs (x_j, a_j), reference â with
// variance v, and n runs,
//
//	β = (cov(x,a)/n) / (var(a)/n + v)
//	fused point    = mean(x) - β (mean(a) - â)
//	fused variance = naive variance - (cov(x,a)/n)² / (var(a)/n + v)
//
// β is the variance-minimizing control-variate coefficient, so the
// subtracted term is non-negative and, by Cauchy-Schwarz, at most the
// dispersion component — the fused interval is *never* wider than the
// naive one, and collapses toward the extrapolation floor as the
// anchor correlation approaches one.
//
// With no anchor copies (single-counter schedules) or fewer than two
// runs the fusion degenerates to the naive estimate.
func FuseEvent(eventRuns, anchorRuns []mpx.Estimate, ref accuracy.Estimate, confidence float64) (naive, fused accuracy.Estimate, err error) {
	naive, err = accuracy.Multiplex(eventRuns, confidence)
	if err != nil {
		return accuracy.Estimate{}, accuracy.Estimate{}, err
	}
	n := len(eventRuns)
	if len(anchorRuns) != n || n < 2 {
		return naive, naive, nil
	}
	x := values(eventRuns)
	a := values(anchorRuns)
	cov, err := stats.Covariance(x, a)
	if err != nil {
		return accuracy.Estimate{}, accuracy.Estimate{}, err
	}
	nf := float64(n)
	den := stats.Variance(a)/nf + ref.StdErr*ref.StdErr
	if den <= 0 || cov == 0 {
		return naive, naive, nil
	}
	beta := (cov / nf) / den
	shift := beta * (stats.Mean(a) - ref.Corrected)
	cut := (cov / nf) * (cov / nf) / den

	v := naive.StdErr*naive.StdErr - cut
	if v < 0 {
		v = 0 // Cauchy-Schwarz bounds cut by the dispersion component; guard float error
	}
	se := math.Sqrt(v)
	z := stats.NormalQuantile(0.5 + confidence/2)
	point := naive.Corrected - shift
	fused = accuracy.Estimate{
		Raw:        naive.Raw,
		Corrected:  point,
		CI:         accuracy.Interval{Lo: point - z*se, Hi: point + z*se},
		Confidence: confidence,
		StdErr:     se,
		N:          n,
		Terms: append(append([]accuracy.Term(nil), naive.Terms...),
			accuracy.Term{Name: accuracy.TermAnchorFusion, Value: shift}),
	}
	return naive, fused, nil
}

// FuseAnchor fuses the anchor event itself: every group carries its
// own multiplexed estimate of the anchor, and the dedicated reference
// measurement is one more independent estimate of the same count — the
// linear event constraint in its simplest form. Inverse-variance
// weighting (accuracy.Combine) gives the minimum-variance combination,
// so the fused interval is never wider than the naive one (the
// anchor's estimate from its first group alone).
//
// With no anchor copies (single-counter schedules) the anchor's own
// rotation estimate fuses with the reference alone.
func FuseAnchor(groupRuns [][]mpx.Estimate, ref accuracy.Estimate, confidence float64) (naive, fused accuracy.Estimate, err error) {
	if len(groupRuns) == 0 {
		return accuracy.Estimate{}, accuracy.Estimate{}, accuracy.ErrNoObservations
	}
	components := make([]accuracy.Estimate, 0, len(groupRuns)+1)
	for _, runs := range groupRuns {
		est, err := accuracy.Multiplex(runs, confidence)
		if err != nil {
			return accuracy.Estimate{}, accuracy.Estimate{}, err
		}
		components = append(components, est)
	}
	naive = components[0]
	components = append(components, ref)
	fused, err = accuracy.Combine(components, confidence)
	if err != nil {
		return accuracy.Estimate{}, accuracy.Estimate{}, err
	}
	return naive, fused, nil
}

// values extracts the interpolated per-run values.
func values(runs []mpx.Estimate) []float64 {
	out := make([]float64, len(runs))
	for i, r := range runs {
		out[i] = r.Value
	}
	return out
}
