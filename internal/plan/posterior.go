package plan

import (
	"math"

	"repro/internal/api"
	"repro/internal/bayes"
	"repro/internal/cpu"
)

// applyPosterior is the opt-in cross-event fusion step: it runs the
// constraint solver of internal/bayes over the plan's fused per-event
// estimates, under the built-in invariant library of the request's
// processor, and rewrites each estimate's verdict to the posterior.
//
// The plan's own fusion (anchor copies, reference runs) moves
// information *within* an event; this step moves it *across* events —
// a tight INSTR_RETIRED estimate disciplines a loose DCACHE_MISS one
// through their shared invariants, so multiplexed schedules inherit
// cross-event information exactly as BayesPerf fuses multiplexed
// counters through linear event constraints. The solver's posterior
// *intervals* are never wider than the fused ones; the attainment
// verdict is re-judged on them, which usually flips misses to hits
// (narrower interval, same-magnitude mean). The flip can go the other
// way when conditioning moves the mean a long way toward zero — the
// relative width's denominator shrinks faster than its numerator —
// but that only happens when the fused estimates grossly violated an
// invariant, which the residual report surfaces, and the refine loop
// stays bounded by MaxRefine/MaxRuns either way.
//
// It mutates ests in place (setting Posterior, RelWidth, Attained per
// event) and returns the invariant residual report.
func applyPosterior(norm api.PlanRequest, ests []api.PlanEstimate) ([]api.ResidualInfo, error) {
	model, err := cpu.ModelByTag(norm.Measure.Processor)
	if err != nil {
		return nil, err
	}
	events := make([]string, len(ests))
	means := make([]float64, len(ests))
	vars := make([]float64, len(ests))
	for i, pe := range ests {
		events[i] = pe.Event
		means[i] = pe.Fused.Corrected
		vars[i] = pe.Fused.StdErr * pe.Fused.StdErr
	}
	sol, err := bayes.Solve(events, means, vars, bayes.Library(model).Restrict(events))
	if err != nil {
		return nil, err
	}

	for i := range ests {
		info := api.EstimateInfoFromMoments(events[i], means[i], sol.Mean[i], sol.Variance[i],
			norm.Confidence, ests[i].Fused.N)
		ests[i].Posterior = &info
		ests[i].RelWidth = relWidthInfo(info)
		ests[i].Attained = ests[i].RelWidth <= norm.TargetRelWidth
	}

	residuals := make([]api.ResidualInfo, 0, len(sol.Residuals))
	for _, r := range sol.Residuals {
		residuals = append(residuals, api.ResidualInfo{
			Constraint: r.Constraint,
			Value:      r.Value,
			Sigma:      r.Sigma,
			Violated:   r.Violated,
		})
	}
	return residuals, nil
}

// relWidthInfo is relWidth over the wire form, with the same magnitude
// floor.
func relWidthInfo(info api.EstimateInfo) float64 {
	half := (info.Hi - info.Lo) / 2
	return half / math.Max(math.Abs(info.Corrected), 1)
}
