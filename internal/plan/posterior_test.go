package plan

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/api"
	"repro/internal/service"
)

// TestPlanPosteriorFusionMultiplexed drives an opt-in posterior plan
// end to end: every event gains a posterior estimate whose interval is
// at most the fused one, the residual report is present and clean, and
// the response stays byte-deterministic.
func TestPlanPosteriorFusionMultiplexed(t *testing.T) {
	svc := service.New(service.Config{WorkersPerShard: 1})
	p := New(svc)
	req := api.PlanRequest{
		Measure: api.MeasureRequest{
			Processor: "K8", Stack: "pc", Bench: "array:1000000",
			Events: []string{"INSTR_RETIRED", "CPU_CLK_UNHALTED", "DCACHE_MISS"},
		},
		TargetRelWidth: 0.2,
		Counters:       2,
		PilotRuns:      3,
		MaxRuns:        12,
		Posterior:      true,
	}
	resp, err := p.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Residuals) == 0 {
		t.Error("posterior plan carries no residual report")
	}
	for _, r := range resp.Residuals {
		if r.Violated {
			t.Errorf("consistent measurement flagged: %+v", r)
		}
	}
	for _, est := range resp.Estimates {
		if est.Posterior == nil {
			t.Fatalf("%s: no posterior estimate", est.Event)
		}
		fusedHalf := (est.Fused.Hi - est.Fused.Lo) / 2
		postHalf := (est.Posterior.Hi - est.Posterior.Lo) / 2
		if postHalf > fusedHalf*(1+1e-9) {
			t.Errorf("%s: posterior interval wider than fused: %v > %v", est.Event, postHalf, fusedHalf)
		}
		if est.RelWidth != relWidthInfo(*est.Posterior) {
			t.Errorf("%s: RelWidth not judged on the posterior", est.Event)
		}
	}

	again, err := p.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(resp)
	b2, _ := json.Marshal(again)
	if string(b1) != string(b2) {
		t.Fatalf("identical posterior plans differ:\n%s\n%s", b1, b2)
	}

	// Opting out is a different plan with a different key and no
	// posterior fields.
	req.Posterior = false
	plain, err := p.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Residuals != nil {
		t.Error("opt-out plan carries residuals")
	}
	for _, est := range plain.Estimates {
		if est.Posterior != nil {
			t.Errorf("%s: opt-out plan carries a posterior estimate", est.Event)
		}
	}
}

// TestPlanPosteriorFusionDedicated covers the dedicated executor's
// posterior path: events fit the counters, estimates come from
// calibrated counting, and the invariant library still applies.
func TestPlanPosteriorFusionDedicated(t *testing.T) {
	svc := service.New(service.Config{WorkersPerShard: 1, CalibrationRuns: 9})
	p := New(svc)
	resp, err := p.Do(context.Background(), api.PlanRequest{
		Measure: api.MeasureRequest{
			Processor: "K8", Stack: "pc", Bench: "loop:200000",
			Events: []string{"INSTR_RETIRED", "CPU_CLK_UNHALTED"},
		},
		TargetRelWidth: 0.2,
		PilotRuns:      3,
		MaxRuns:        12,
		Posterior:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Plan.Mode != api.PlanModeDedicated {
		t.Fatalf("mode = %s, want dedicated", resp.Plan.Mode)
	}
	for _, est := range resp.Estimates {
		if est.Posterior == nil {
			t.Fatalf("%s: no posterior estimate", est.Event)
		}
		fusedHalf := (est.Fused.Hi - est.Fused.Lo) / 2
		postHalf := (est.Posterior.Hi - est.Posterior.Lo) / 2
		if postHalf > fusedHalf*(1+1e-9) {
			t.Errorf("%s: posterior wider than fused", est.Event)
		}
	}
	for _, r := range resp.Residuals {
		if r.Violated {
			t.Errorf("dedicated counting flagged inconsistent: %+v", r)
		}
	}
}
