// Package plan is the experiment planner and measurement-fusion
// subsystem of the measurement service: callers state an accuracy goal
// — estimate these events within this relative confidence-interval
// half-width — and the planner decides the cheapest deterministic
// schedule that meets it, executes the schedule on the service's
// pooled workers, and fuses the resulting partial observations into
// estimates that are never worse than the naive ones.
//
// The paper quantifies how wrong counter measurements are;
// internal/accuracy turns that into per-measurement error reports.
// This package closes the loop and *acts* on the error model, after
// two directions the related work opens:
//
//   - BayesPerf (Banerjee et al.) fuses multiplexed partial
//     observations through statistical models tied together by linear
//     event constraints. Here the constraint is the anchor: the plan
//     pins the first requested event into every multiplexing group, so
//     each group carries an independent estimate of one well-known
//     quantity, and a dedicated reference measurement of the anchor
//     ties them all down. Per-group anchor copies fuse by
//     inverse-variance weighting (accuracy.Combine); every other event
//     is corrected against its group's anchor copy with a
//     control-variate step (FuseEvent) whose variance reduction is
//     structural — by Cauchy-Schwarz the fused interval cannot be
//     wider than the naive one.
//   - Becker and Chakraborty's Linux-measurement report argues
//     replication counts should be derived from a target confidence
//     width, not guessed. The planner runs a small pilot, reads the
//     observed dispersion and extrapolation-model variance
//     (internal/accuracy's multiplexing error model), and solves for
//     the replication count that meets the target; if the executed
//     plan still misses, it re-plans with the now-better dispersion
//     estimate (pooled across rounds with stats.PooledVariance) up to
//     a refine budget.
//
// Everything is deterministic: the schedule is a pure function of the
// normalized request, workers are Reset before use, seeds derive from
// the request, and the fusion arithmetic is pure — so two identical
// /plan requests return byte-identical plans and estimates, and
// identical in-flight plans coalesce exactly as /measure requests do.
package plan

import (
	"context"
	"sync/atomic"

	"repro/internal/api"
	"repro/internal/service"
	"repro/internal/telemetry"
)

// Planner turns plan requests into executed, fused measurement plans
// on a service's worker pools. It is safe for concurrent use.
type Planner struct {
	svc    *service.Service
	flight *service.Flight[*api.PlanResponse]

	plans     atomic.Uint64
	coalesced atomic.Uint64
	leaders   atomic.Uint64
}

// New returns a planner executing on svc's worker pools.
func New(svc *service.Service) *Planner {
	return &Planner{svc: svc, flight: service.NewFlight[*api.PlanResponse]()}
}

// Stats reports how many plans were accepted and how many calls were
// served by joining an identical in-flight plan.
func (p *Planner) Stats() (plans, coalesced uint64) {
	return p.plans.Load(), p.coalesced.Load()
}

// Leaders reports how many plans executed as a flight leader.
func (p *Planner) Leaders() uint64 { return p.leaders.Load() }

// Do plans, executes, and fuses one request. The response for a given
// normalized request is deterministic, so identical in-flight requests
// join one execution (the same service.Flight protocol /measure and
// /analyze coalesce through).
func (p *Planner) Do(ctx context.Context, req api.PlanRequest) (*api.PlanResponse, error) {
	// As in service.Measure: the trace wish is captured before
	// normalization strips it, so traced and untraced plans share one
	// coalescing key, and a follower's trace is marked coalesced rather
	// than replaying the leader's execution spans.
	wantTrace := req.Trace
	tr := telemetry.FromContext(ctx)
	if wantTrace && tr == nil {
		tr = telemetry.New()
		ctx = telemetry.NewContext(ctx, tr)
	}
	sp := tr.Start(telemetry.SpanCanonicalize)
	norm, err := req.Normalized()
	sp.End()
	if err != nil {
		return nil, err
	}
	p.plans.Add(1)

	wait := tr.Clock()
	resp, joined, err := p.flight.Do(ctx, norm.Key(), func() (*api.PlanResponse, error) {
		return p.execute(ctx, norm)
	})
	if joined {
		p.coalesced.Add(1)
		tr.SetCoalesced()
		tr.AddSince(telemetry.SpanCoalesceWait, wait)
	} else {
		p.leaders.Add(1)
	}
	if err != nil || !wantTrace {
		return resp, err
	}
	// The trace block is per-caller wall time; never write it onto the
	// flight-shared response.
	out := *resp
	out.Trace = api.TraceInfoFrom(tr)
	return &out, nil
}

// execute routes a normalized request to its mode's executor.
func (p *Planner) execute(ctx context.Context, norm api.PlanRequest) (*api.PlanResponse, error) {
	sched, err := BuildSchedule(norm)
	if err != nil {
		return nil, err
	}
	if sched.Mode == api.PlanModeDedicated {
		return p.executeDedicated(ctx, norm, sched)
	}
	return p.executeMultiplexed(ctx, norm, sched)
}
