package plan

import (
	"context"
	"encoding/json"
	"math"
	"sync"
	"testing"

	"repro/internal/api"
	"repro/internal/service"
)

func normPlan(t *testing.T, req api.PlanRequest) api.PlanRequest {
	t.Helper()
	norm, err := req.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	return norm
}

func TestBuildScheduleDedicated(t *testing.T) {
	norm := normPlan(t, api.PlanRequest{
		Measure: api.MeasureRequest{
			Processor: "K8", Stack: "pc", Bench: "loop:1000",
			Events: []string{"INSTR_RETIRED", "CPU_CLK_UNHALTED"},
		},
		TargetRelWidth: 0.1,
	})
	s, err := BuildSchedule(norm)
	if err != nil {
		t.Fatal(err)
	}
	if s.Mode != api.PlanModeDedicated || len(s.Groups) != 1 || s.Groups[0].Multiplexed {
		t.Errorf("schedule = %+v, want one dedicated group", s)
	}
	if s.Anchor != "" || s.EvList != nil {
		t.Errorf("dedicated schedule carries multiplex state: %+v", s)
	}
}

func TestBuildScheduleMultiplexed(t *testing.T) {
	norm := normPlan(t, api.PlanRequest{
		Measure: api.MeasureRequest{
			Processor: "K8", Stack: "pc", Bench: "loop:1000",
			Events: []string{"INSTR_RETIRED", "CPU_CLK_UNHALTED", "BR_MISP_RETIRED",
				"ICACHE_MISS", "DCACHE_MISS"},
		},
		TargetRelWidth: 0.1,
		Counters:       2,
	})
	s, err := BuildSchedule(norm)
	if err != nil {
		t.Fatal(err)
	}
	if s.Mode != api.PlanModeMultiplexed || s.Anchor != "INSTR_RETIRED" {
		t.Fatalf("schedule = %+v", s)
	}
	// 4 rotating events on 1 non-anchor slot each -> 4 groups, every
	// group led by the anchor.
	if len(s.Groups) != 4 {
		t.Fatalf("groups = %d, want 4", len(s.Groups))
	}
	for g, group := range s.Groups {
		if !group.Multiplexed || len(group.Events) != 2 || group.Events[0] != "INSTR_RETIRED" {
			t.Errorf("group %d = %+v, want [anchor, event]", g, group)
		}
	}
	if len(s.EvList) != 8 {
		t.Errorf("slot count = %d, want 8", len(s.EvList))
	}
	slots := s.anchorSlots()
	if len(slots) != 4 {
		t.Fatalf("anchor slots = %v", slots)
	}
	for g, slot := range slots {
		if slot != g*2 {
			t.Errorf("anchor slot of group %d = %d, want %d", g, slot, g*2)
		}
	}
	// Every rotating event maps to a slot in the right group.
	for e := 1; e < 5; e++ {
		slot := s.slotOf(e)
		if slot < 0 || s.SlotGroup[slot] != e-1 {
			t.Errorf("event %d: slot %d group %d", e, slot, s.SlotGroup[slot])
		}
	}
}

func TestBuildScheduleSingleCounter(t *testing.T) {
	norm := normPlan(t, api.PlanRequest{
		Measure: api.MeasureRequest{
			Processor: "K8", Stack: "pc", Bench: "loop:1000",
			Events: []string{"INSTR_RETIRED", "CPU_CLK_UNHALTED", "BR_MISP_RETIRED"},
		},
		TargetRelWidth: 0.1,
		Counters:       1,
	})
	s, err := BuildSchedule(norm)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Groups) != 3 || s.anchorSlots() != nil {
		t.Errorf("single-counter schedule = %+v, want 3 unpinned groups", s)
	}
}

func TestRunsNeeded(t *testing.T) {
	cases := []struct {
		name   string
		z      float64
		target float64
		rows   []perRunStats
		lo, hi int
		want   int
	}{
		{
			name: "already attained stays at pilot",
			z:    2, target: 0.1,
			rows: []perRunStats{{mean: 1000, dispVar: 1}},
			lo:   4, hi: 100, want: 4,
		},
		{
			name: "solves the width equation",
			// n = z² (S+m) / (t·mean)² = 4·100/(0.01·1000)² = 4.
			z: 2, target: 0.01,
			rows: []perRunStats{{mean: 1000, dispVar: 100}},
			lo:   1, hi: 100, want: 4,
		},
		{
			name: "worst event wins",
			z:    2, target: 0.01,
			rows: []perRunStats{
				{mean: 1000, dispVar: 100},
				{mean: 1000, dispVar: 400, modelVar: 0},
			},
			lo: 1, hi: 100, want: 16,
		},
		{
			name: "model variance adds to dispersion",
			z:    2, target: 0.01,
			rows: []perRunStats{{mean: 1000, dispVar: 100, modelVar: 300}},
			lo:   1, hi: 100, want: 16,
		},
		{
			name: "clamped to budget",
			z:    2, target: 0.001,
			rows: []perRunStats{{mean: 1000, dispVar: 1e6}},
			lo:   1, hi: 64, want: 64,
		},
		{
			name: "zero mean uses the magnitude floor",
			// denom = t·max(|0|,1) = 0.5; n = 4·1/0.25 = 16.
			z: 2, target: 0.5,
			rows: []perRunStats{{mean: 0, dispVar: 1}},
			lo:   1, hi: 100, want: 16,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := runsNeeded(c.z, c.target, c.rows, c.lo, c.hi); got != c.want {
				t.Errorf("runsNeeded = %d, want %d", got, c.want)
			}
		})
	}
}

func newPlanner(t *testing.T) *Planner {
	t.Helper()
	return New(service.New(service.Config{WorkersPerShard: 1, CalibrationRuns: 5}))
}

func TestPlanDedicatedThroughService(t *testing.T) {
	p := newPlanner(t)
	resp, err := p.Do(context.Background(), api.PlanRequest{
		Measure: api.MeasureRequest{
			Processor: "K8", Stack: "pc", Bench: "loop:100000", Pattern: "rr",
			Events: []string{"INSTR_RETIRED", "CPU_CLK_UNHALTED"},
		},
		TargetRelWidth: 0.5,
		PilotRuns:      3,
		MaxRuns:        8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Plan.Mode != api.PlanModeDedicated {
		t.Fatalf("mode = %q", resp.Plan.Mode)
	}
	if resp.Calibration == nil {
		t.Error("dedicated plan missing the reused calibration")
	}
	if len(resp.Estimates) != 2 {
		t.Fatalf("estimates = %d", len(resp.Estimates))
	}
	if !resp.Attained {
		t.Errorf("loose target not attained: %+v", resp.Estimates)
	}
	for _, est := range resp.Estimates {
		jn, _ := json.Marshal(est.Naive)
		jf, _ := json.Marshal(est.Fused)
		if string(jn) != string(jf) {
			t.Errorf("%s: dedicated naive and fused differ: %s vs %s", est.Event, jn, jf)
		}
		if est.Narrowing != 0 {
			t.Errorf("%s: dedicated narrowing = %v", est.Event, est.Narrowing)
		}
	}
	// The anchor's corrected estimate must sit on the analytic truth
	// (300001) once the calibrated overhead is subtracted.
	anchor := resp.Estimates[0]
	if math.Abs(anchor.Fused.Corrected-300001) > 300001*0.01 {
		t.Errorf("anchor corrected = %v, want ~300001", anchor.Fused.Corrected)
	}
}

func TestPlanMultiplexedThroughService(t *testing.T) {
	p := newPlanner(t)
	resp, err := p.Do(context.Background(), api.PlanRequest{
		Measure: api.MeasureRequest{
			Processor: "K8", Stack: "pc", Bench: "array:2000000", Pattern: "rr",
			Events: []string{"INSTR_RETIRED", "CPU_CLK_UNHALTED", "DCACHE_MISS"},
		},
		TargetRelWidth: 0.1,
		Counters:       2,
		PilotRuns:      3,
		MaxRuns:        12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Plan.Mode != api.PlanModeMultiplexed || len(resp.Plan.Groups) != 2 {
		t.Fatalf("plan = %+v", resp.Plan)
	}
	if resp.Calibration != nil {
		t.Error("multiplexed plan reports a calibration it cannot apply")
	}
	if len(resp.Estimates) != 3 {
		t.Fatalf("estimates = %d", len(resp.Estimates))
	}
	for _, est := range resp.Estimates {
		naiveHalf := (est.Naive.Hi - est.Naive.Lo) / 2
		fusedHalf := (est.Fused.Hi - est.Fused.Lo) / 2
		if fusedHalf > naiveHalf*(1+1e-9) {
			t.Errorf("%s: fused half-width %v exceeds naive %v", est.Event, fusedHalf, naiveHalf)
		}
		if est.Narrowing < 0 {
			t.Errorf("%s: negative narrowing %v", est.Event, est.Narrowing)
		}
	}
	// The anchor fuses per-group copies with the dedicated reference;
	// its interval must actually tighten, and its estimate must sit on
	// the analytic instruction count (1 + 4·iters, plus halt and tick
	// handler — within a percent).
	anchor := resp.Estimates[0]
	if anchor.Narrowing <= 0 {
		t.Errorf("anchor narrowing = %v, want > 0", anchor.Narrowing)
	}
	want := float64(1 + 4*2000000)
	if math.Abs(anchor.Fused.Corrected-want) > want*0.01 {
		t.Errorf("anchor corrected = %v, want ~%v", anchor.Fused.Corrected, want)
	}
	if !resp.Attained {
		t.Errorf("plan missed an attainable target: %+v", resp.Estimates)
	}
	if resp.TotalRuns < resp.Plan.PilotRuns*2 {
		t.Errorf("total runs %d cannot cover pilot + reference", resp.TotalRuns)
	}
}

func TestPlanDeterminism(t *testing.T) {
	req := api.PlanRequest{
		Measure: api.MeasureRequest{
			Processor: "K8", Stack: "pc", Bench: "array:500000", Pattern: "rr",
			Events: []string{"INSTR_RETIRED", "CPU_CLK_UNHALTED", "DCACHE_MISS", "BR_MISP_RETIRED"},
		},
		TargetRelWidth: 0.2,
		Counters:       2,
		PilotRuns:      2,
		MaxRuns:        8,
	}
	p := newPlanner(t)
	a, err := p.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Errorf("identical plans diverged:\n%s\nvs\n%s", ja, jb)
	}
}

// TestRefineLoopGrowsOnUnderestimatedDispersion drives the shared
// refine loop with synthetic closures modeling the case the loop
// exists for: the pilot's dispersion estimate was too low, so the
// first execution misses the target and the re-plan — fed the larger
// observed dispersion — must grow the replication.
func TestRefineLoopGrowsOnUnderestimatedDispersion(t *testing.T) {
	const (
		z       = 2.0
		target  = 0.01
		mean    = 1000.0
		trueVar = 400.0 // per-run; pilot saw only 25
	)
	executed := 0
	history := []int{}
	loop := refineLoop{
		z: z, target: target,
		pilot: 4, maxRuns: 64, maxRefine: 3,
		planned: 4, // what a dispVar=25 pilot would have chosen
	}
	rounds, ests, attained, err := loop.run(
		func(n int) error {
			executed = n
			history = append(history, n)
			return nil
		},
		func() ([]api.PlanEstimate, bool, error) {
			// Width from the true dispersion at the executed replication.
			se := math.Sqrt(trueVar / float64(executed))
			rel := z * se / mean
			est := api.PlanEstimate{
				Event:    "SYNTH",
				RelWidth: rel,
				Attained: rel <= target,
			}
			return []api.PlanEstimate{est}, est.Attained, nil
		},
		func() ([]perRunStats, error) {
			return []perRunStats{{mean: mean, dispVar: trueVar}}, nil
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	// The true variance needs n = z²·400/(0.01·1000)² = 16 runs.
	if !attained {
		t.Errorf("refinement failed to attain: rounds=%d history=%v ests=%+v", rounds, history, ests)
	}
	if rounds < 2 {
		t.Errorf("rounds = %d, want refinement", rounds)
	}
	if executed != 16 {
		t.Errorf("final replication = %d (history %v), want the re-planned 16", executed, history)
	}
}

// TestRefineLoopStopsAtBudget: an unattainable target must stop at the
// run budget without burning refine rounds it cannot use.
func TestRefineLoopStopsAtBudget(t *testing.T) {
	executed := 0
	loop := refineLoop{
		z: 2, target: 0.001,
		pilot: 2, maxRuns: 8, maxRefine: 5,
		planned: 8, // already clamped to the budget
	}
	rounds, _, attained, err := loop.run(
		func(n int) error { executed = n; return nil },
		func() ([]api.PlanEstimate, bool, error) {
			return []api.PlanEstimate{{Event: "SYNTH", RelWidth: 1, Attained: false}}, false, nil
		},
		func() ([]perRunStats, error) {
			return []perRunStats{{mean: 1, dispVar: 1e9}}, nil
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if attained || rounds != 1 || executed != 8 {
		t.Errorf("attained=%v rounds=%d executed=%d, want budget-bound single round", attained, rounds, executed)
	}
}

// TestPlanBudgetCapsReplication: end to end, a target far below what
// the budget affords stops at MaxRuns and reports the miss honestly.
func TestPlanBudgetCapsReplication(t *testing.T) {
	p := newPlanner(t)
	resp, err := p.Do(context.Background(), api.PlanRequest{
		Measure: api.MeasureRequest{
			Processor: "K8", Stack: "pc", Bench: "loop:2000000", Pattern: "rr",
			Events: []string{"INSTR_RETIRED", "CPU_CLK_UNHALTED", "ICACHE_MISS"},
		},
		TargetRelWidth: 0.0005, // per-run CLK model noise alone exceeds this
		Counters:       2,
		PilotRuns:      2,
		MaxRuns:        4,
		MaxRefine:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Attained {
		t.Errorf("unattainable target reported attained: %+v", resp.Estimates)
	}
	mainRuns := resp.TotalRuns - resp.Plan.PilotRuns // minus reference runs
	if mainRuns != 4 {
		t.Errorf("main runs = %d, want the MaxRuns budget 4", mainRuns)
	}
	if resp.Plan.PlannedRuns != 4 {
		t.Errorf("planned = %d, want clamped to budget", resp.Plan.PlannedRuns)
	}
}

func TestPlanNoRefineWhenDisabled(t *testing.T) {
	p := newPlanner(t)
	resp, err := p.Do(context.Background(), api.PlanRequest{
		Measure: api.MeasureRequest{
			Processor: "K8", Stack: "pc", Bench: "loop:2000000", Pattern: "rr",
			Events: []string{"INSTR_RETIRED", "CPU_CLK_UNHALTED", "BR_MISP_RETIRED"},
		},
		TargetRelWidth: 0.02,
		Counters:       2,
		PilotRuns:      2,
		MaxRuns:        10,
		MaxRefine:      -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Rounds != 1 {
		t.Errorf("rounds = %d, want 1 with refinement disabled", resp.Rounds)
	}
}

func TestPlanCoalescing(t *testing.T) {
	p := newPlanner(t)
	req := api.PlanRequest{
		Measure: api.MeasureRequest{
			Processor: "K8", Stack: "pc", Bench: "array:500000", Pattern: "rr",
			Events: []string{"INSTR_RETIRED", "CPU_CLK_UNHALTED", "DCACHE_MISS"},
		},
		TargetRelWidth: 0.2,
		Counters:       2,
		PilotRuns:      2,
		MaxRuns:        6,
	}
	const callers = 4
	bodies := make([][]byte, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := p.Do(context.Background(), req)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			bodies[i], _ = json.Marshal(resp)
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if string(bodies[i]) != string(bodies[0]) {
			t.Errorf("caller %d diverged", i)
		}
	}
	plans, _ := p.Stats()
	if plans != callers {
		t.Errorf("plans = %d, want %d", plans, callers)
	}
}

func TestPlanRejectsBadRequest(t *testing.T) {
	p := newPlanner(t)
	_, err := p.Do(context.Background(), api.PlanRequest{
		Measure:        api.MeasureRequest{Processor: "Z80", Stack: "pc", Bench: "null"},
		TargetRelWidth: 0.1,
	})
	if err == nil {
		t.Fatal("bad processor accepted")
	}
}
