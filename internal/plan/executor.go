package plan

import (
	"context"
	"fmt"
	"math"

	"repro/internal/accuracy"
	"repro/internal/api"
	"repro/internal/cpu"
	"repro/internal/mpx"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// perRunStats is one event's observed per-run variability, the input
// of the replication choice: dispersion variance of the interpolated
// (or counted) values, mean extrapolation-model variance, and the
// estimate magnitude the relative target is taken against.
type perRunStats struct {
	mean     float64
	dispVar  float64
	modelVar float64
}

// runsNeeded solves the accuracy target for the replication count:
// both the dispersion and the extrapolation-model variance of a mean
// over n runs scale as 1/n, so the smallest n with
// z*sqrt((dispVar+modelVar)/n) <= target*|mean| is
//
//	n = ceil(z² (dispVar + modelVar) / (target · max(|mean|, 1))²)
//
// taken over the worst event and clamped to [lo, hi]. The magnitude
// floor of one keeps near-zero counts (whose relative target is
// otherwise ill-defined) from demanding unbounded replication.
func runsNeeded(z, target float64, rows []perRunStats, lo, hi int) int {
	n := lo
	for _, r := range rows {
		denom := target * math.Max(math.Abs(r.mean), 1)
		req := math.Ceil(z * z * (r.dispVar + r.modelVar) / (denom * denom))
		if req > float64(hi) {
			n = hi
			break
		}
		if int(req) > n {
			n = int(req)
		}
	}
	return min(n, hi)
}

// refineLoop is the plan-execute-fuse-replan cycle both executors
// share. runTo extends the executed replication to n runs, fuse builds
// the estimates and the attainment verdict from everything executed so
// far, and observed reads back the per-event dispersion the re-plan
// uses. The loop runs the planned replication, then — while the target
// is missed, the refine budget holds, and the run budget holds —
// re-plans with the observed dispersion, forcing at least a pilot's
// worth of progress per round so a refine round cannot stall.
type refineLoop struct {
	z, target          float64
	pilot, maxRuns     int
	maxRefine, planned int
}

func (l refineLoop) run(
	runTo func(n int) error,
	fuse func() ([]api.PlanEstimate, bool, error),
	observed func() ([]perRunStats, error),
) (rounds int, ests []api.PlanEstimate, attained bool, err error) {
	n := l.planned
	for {
		rounds++
		if err := runTo(n); err != nil {
			return 0, nil, false, err
		}
		ests, attained, err = fuse()
		if err != nil {
			return 0, nil, false, err
		}
		if attained || rounds > l.maxRefine || n >= l.maxRuns {
			return rounds, ests, attained, nil
		}
		rows, err := observed()
		if err != nil {
			return 0, nil, false, err
		}
		next := runsNeeded(l.z, l.target, rows, n, l.maxRuns)
		// A refine round must make progress even when the naive
		// projection says the current replication should have sufficed.
		next = max(next, min(n+l.pilot, l.maxRuns))
		if next <= n {
			return rounds, ests, attained, nil
		}
		n = next
	}
}

// relWidth is the attainment metric: interval half-width over estimate
// magnitude, with the same magnitude floor as runsNeeded.
func relWidth(est accuracy.Estimate) float64 {
	half := est.CI.Width() / 2
	return half / math.Max(math.Abs(est.Corrected), 1)
}

// planEstimate assembles the wire form of one event's outcome.
func planEstimate(event string, naive, fused accuracy.Estimate, target float64) api.PlanEstimate {
	pe := api.PlanEstimate{
		Event:    event,
		Naive:    api.EstimateInfoFrom(event, naive),
		Fused:    api.EstimateInfoFrom(event, fused),
		RelWidth: relWidth(fused),
	}
	if naiveHalf := naive.CI.Width() / 2; naiveHalf > 0 {
		pe.Narrowing = 1 - (fused.CI.Width()/2)/naiveHalf
	}
	pe.Attained = pe.RelWidth <= target
	return pe
}

// executeMultiplexed runs a multiplexed schedule: reference runs of
// the anchor (dedicated, full-time, same raw-program domain), then
// rotation runs of the full slot layout, replicated per the dispersion
// model and refined with the observed dispersion until the target is
// attained or the budget runs out. Everything runs on one pinned
// worker so the plan occupies exactly one pool slot.
func (p *Planner) executeMultiplexed(ctx context.Context, norm api.PlanRequest, sched Schedule) (*api.PlanResponse, error) {
	w, err := p.svc.Pin(ctx, norm.Measure)
	if err != nil {
		return nil, err
	}
	defer w.Release()
	sys := w.System()

	bench, err := api.ParseBench(norm.Measure.Bench)
	if err != nil {
		return nil, err
	}
	prog := bench.RawProgram()
	conf := norm.Confidence
	z := stats.NormalQuantile(0.5 + conf/2)
	anchorEv, err := cpu.EventByName(norm.Measure.Events[0])
	if err != nil {
		return nil, err
	}

	// Reference: the anchor counted on a dedicated register for the
	// whole run — active fraction one, no extrapolation — in the same
	// raw-program domain the rotation observes, so the fusion
	// constraint compares like with like. Reference seeds come from a
	// range disjoint from the rotation's (which uses Seed..Seed+MaxRuns):
	// the fusion weighs the reference as an *independent* estimate, and
	// sharing seeds with the rotation runs would correlate the two and
	// make the fused interval claim precision the data does not have.
	sys.Reset()
	refM, err := mpx.New(sys.Kernel, 1, []cpu.Event{anchorEv})
	if err != nil {
		return nil, err
	}
	tr := telemetry.FromContext(ctx)
	sp := tr.Start(telemetry.SpanEngineRun).Annotate("phase", "reference")
	refSeed := norm.Measure.Seed + uint64(api.MaxPlanRuns)
	refRuns := make([]mpx.Estimate, 0, norm.PilotRuns)
	for i := 0; i < norm.PilotRuns; i++ {
		if err := ctx.Err(); err != nil {
			refM.Close()
			return nil, err
		}
		ests, err := refM.Run(prog, refSeed+uint64(i))
		if err != nil {
			refM.Close()
			return nil, err
		}
		refRuns = append(refRuns, ests[0])
	}
	refM.Close()
	sp.End()
	ref, err := accuracy.Multiplex(refRuns, conf)
	if err != nil {
		return nil, err
	}

	// Rotation runs of the full slot layout.
	sys.Reset()
	m, err := mpx.New(sys.Kernel, sched.Counters, sched.EvList)
	if err != nil {
		return nil, err
	}
	defer m.Close()
	if m.Groups() != len(sched.Groups) {
		return nil, fmt.Errorf("plan: schedule built %d groups but multiplexer rotates %d", len(sched.Groups), m.Groups())
	}
	slotRuns := make([][]mpx.Estimate, len(sched.EvList))
	runTo := func(n int) error {
		if len(slotRuns[0]) >= n {
			return nil
		}
		sp := tr.Start(telemetry.SpanEngineRun).Annotate("phase", "rotation")
		defer sp.End()
		for i := len(slotRuns[0]); i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			ests, err := m.Run(prog, norm.Measure.Seed+uint64(i))
			if err != nil {
				return err
			}
			for s, est := range ests {
				slotRuns[s] = append(slotRuns[s], est)
			}
		}
		return nil
	}

	anchorSlots := sched.anchorSlots()
	var postResiduals []api.ResidualInfo
	fuseAll := func() ([]api.PlanEstimate, bool, error) {
		// One fuse span per round; posterior conditioning (when opted in)
		// is part of the fusion step it refines.
		sp := tr.Start(telemetry.SpanFuse)
		defer sp.End()
		ests := make([]api.PlanEstimate, 0, len(norm.Measure.Events))
		attained := true
		for e, name := range norm.Measure.Events {
			var naive, fused accuracy.Estimate
			var err error
			if e == 0 && len(anchorSlots) > 0 {
				groups := make([][]mpx.Estimate, len(anchorSlots))
				for g, slot := range anchorSlots {
					groups[g] = slotRuns[slot]
				}
				naive, fused, err = FuseAnchor(groups, ref, conf)
			} else {
				slot := sched.slotOf(e)
				var anchorRuns []mpx.Estimate
				if len(anchorSlots) > 0 {
					anchorRuns = slotRuns[anchorSlots[sched.SlotGroup[slot]]]
				}
				if e == 0 {
					// Single-counter schedule: the anchor rotates like any
					// event and fuses with the reference alone.
					naive, fused, err = FuseAnchor([][]mpx.Estimate{slotRuns[slot]}, ref, conf)
				} else {
					naive, fused, err = FuseEvent(slotRuns[slot], anchorRuns, ref, conf)
				}
			}
			if err != nil {
				return nil, false, err
			}
			pe := planEstimate(name, naive, fused, norm.TargetRelWidth)
			attained = attained && pe.Attained
			ests = append(ests, pe)
		}
		if norm.Posterior {
			residuals, err := applyPosterior(norm, ests)
			if err != nil {
				return nil, false, err
			}
			postResiduals = residuals
			attained = true
			for _, pe := range ests {
				attained = attained && pe.Attained
			}
		}
		return ests, attained, nil
	}

	// observed reads the per-event replication inputs off the runs so
	// far; dispersion is pooled across refine rounds (each round is one
	// batch) rather than recomputed, the incremental update the refine
	// loop feeds back.
	type roundWindow struct{ start, end int }
	var rounds []roundWindow
	observed := func() ([]perRunStats, error) {
		rows := make([]perRunStats, 0, len(norm.Measure.Events))
		for e := range norm.Measure.Events {
			slot := sched.slotOf(e)
			if slot < 0 { // anchor with pinned copies: use its first copy
				slot = anchorSlots[0]
			}
			runs := slotRuns[slot]
			vals := values(runs)
			var batchVars []float64
			var batchSizes []int
			for _, rw := range rounds {
				batchVars = append(batchVars, stats.Variance(vals[rw.start:rw.end]))
				batchSizes = append(batchSizes, rw.end-rw.start)
			}
			disp, err := stats.PooledVariance(batchVars, batchSizes)
			if err != nil {
				return nil, err
			}
			var model float64
			for _, r := range runs {
				if r.ActiveFraction > 0 {
					model += float64(r.Observed) / (r.ActiveFraction * r.ActiveFraction)
				}
			}
			rows = append(rows, perRunStats{
				mean:     stats.Mean(vals),
				dispVar:  disp,
				modelVar: model / float64(len(runs)),
			})
		}
		return rows, nil
	}

	// Pilot, plan, execute, refine.
	if err := runTo(norm.PilotRuns); err != nil {
		return nil, err
	}
	rounds = append(rounds, roundWindow{0, norm.PilotRuns})
	rows, err := observed()
	if err != nil {
		return nil, err
	}
	planned := runsNeeded(z, norm.TargetRelWidth, rows, norm.PilotRuns, norm.MaxRuns)

	loop := refineLoop{
		z: z, target: norm.TargetRelWidth,
		pilot: norm.PilotRuns, maxRuns: norm.MaxRuns,
		maxRefine: norm.MaxRefine, planned: planned,
	}
	roundCount, estimates, attained, err := loop.run(
		func(n int) error {
			if err := runTo(n); err != nil {
				return err
			}
			if last := &rounds[len(rounds)-1]; n > last.end {
				rounds = append(rounds, roundWindow{last.end, n})
			}
			return nil
		},
		fuseAll,
		observed,
	)
	if err != nil {
		return nil, err
	}

	return &api.PlanResponse{
		Plan: api.PlanInfo{
			Request:     norm,
			Mode:        sched.Mode,
			Anchor:      sched.Anchor,
			Groups:      sched.Groups,
			PilotRuns:   norm.PilotRuns,
			PlannedRuns: planned,
		},
		Estimates: estimates,
		Attained:  attained,
		Rounds:    roundCount,
		TotalRuns: len(refRuns) + len(slotRuns[0]),
		Residuals: postResiduals,
	}, nil
}

// executeDedicated runs a dedicated counting schedule through the
// service's request path: every event on its own counter, calibrated,
// overhead-corrected on the anchor — the cheapest plan when the event
// set fits the hardware. The calibration comes from the service's
// cache, so warm plans skip the null-benchmark runs entirely. With a
// single configuration there is nothing to fuse: naive and fused
// estimates coincide.
//
// A refine round re-measures through svc.Measure with the grown
// replication rather than extending incrementally: the request path is
// what provides coalescing and the calibrated-overhead semantics, and
// the re-measured prefix (identical seeds, deterministic results) is
// cheap next to a multiplexed schedule. TotalRuns reports the
// executions actually spent, re-measured prefixes included.
func (p *Planner) executeDedicated(ctx context.Context, norm api.PlanRequest, sched Schedule) (*api.PlanResponse, error) {
	conf := norm.Confidence
	z := stats.NormalQuantile(0.5 + conf/2)

	measure := func(runs int) (*api.MeasureResponse, error) {
		req := norm.Measure
		req.Calibrate = true
		req.Runs = runs
		return p.svc.Measure(ctx, req)
	}
	estimate := func(resp *api.MeasureResponse) ([]accuracy.Estimate, error) {
		out := make([]accuracy.Estimate, len(norm.Measure.Events))
		for e := range norm.Measure.Events {
			counts := make([]float64, len(resp.Deltas))
			for i, row := range resp.Deltas {
				counts[i] = float64(row[e])
			}
			overhead := 0.0
			if e == 0 && resp.Calibration != nil {
				overhead = resp.Calibration.Offset
			}
			est, err := accuracy.FromRuns(counts, overhead, conf)
			if err != nil {
				return nil, err
			}
			out[e] = est
		}
		return out, nil
	}

	// rowsFrom derives the replication inputs from corrected estimates:
	// FromRuns' standard error is sd/sqrt(n), so the per-run dispersion
	// variance is se²·n. Dedicated counting has no extrapolation model
	// term.
	rowsFrom := func(ests []accuracy.Estimate) []perRunStats {
		rows := make([]perRunStats, len(ests))
		for i, est := range ests {
			rows[i] = perRunStats{mean: est.Corrected, dispVar: est.StdErr * est.StdErr * float64(est.N)}
		}
		return rows
	}

	pilot, err := measure(norm.PilotRuns)
	if err != nil {
		return nil, err
	}
	total := norm.PilotRuns
	pilotEsts, err := estimate(pilot)
	if err != nil {
		return nil, err
	}
	planned := runsNeeded(z, norm.TargetRelWidth, rowsFrom(pilotEsts), norm.PilotRuns, norm.MaxRuns)

	resp, ests := pilot, pilotEsts
	var postResiduals []api.ResidualInfo
	loop := refineLoop{
		z: z, target: norm.TargetRelWidth,
		pilot: norm.PilotRuns, maxRuns: norm.MaxRuns,
		maxRefine: norm.MaxRefine, planned: planned,
	}
	roundCount, estimates, attained, err := loop.run(
		func(n int) error {
			// The pilot already measured n == PilotRuns; re-measuring the
			// identical request would only repeat work.
			if n == len(resp.Deltas) {
				return nil
			}
			r, err := measure(n)
			if err != nil {
				return err
			}
			resp = r
			total += n
			ests, err = estimate(r)
			return err
		},
		func() ([]api.PlanEstimate, bool, error) {
			sp := telemetry.StartSpan(ctx, telemetry.SpanFuse)
			defer sp.End()
			out := make([]api.PlanEstimate, 0, len(ests))
			attained := true
			for e, est := range ests {
				pe := planEstimate(norm.Measure.Events[e], est, est, norm.TargetRelWidth)
				attained = attained && pe.Attained
				out = append(out, pe)
			}
			if norm.Posterior {
				residuals, err := applyPosterior(norm, out)
				if err != nil {
					return nil, false, err
				}
				postResiduals = residuals
				attained = true
				for _, pe := range out {
					attained = attained && pe.Attained
				}
			}
			return out, attained, nil
		},
		func() ([]perRunStats, error) { return rowsFrom(ests), nil },
	)
	if err != nil {
		return nil, err
	}

	out := &api.PlanResponse{
		Plan: api.PlanInfo{
			Request:     norm,
			Mode:        sched.Mode,
			Groups:      sched.Groups,
			PilotRuns:   norm.PilotRuns,
			PlannedRuns: planned,
		},
		Estimates: estimates,
		Attained:  attained,
		Rounds:    roundCount,
		TotalRuns: total,
		Residuals: postResiduals,
	}
	if resp != nil && resp.Calibration != nil {
		cal := *resp.Calibration
		out.Calibration = &cal
	}
	return out, nil
}
