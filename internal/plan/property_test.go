package plan

import (
	"math"
	"testing"

	"repro/internal/accuracy"
	"repro/internal/mpx"
	"repro/internal/xrand"
)

// Synthetic multiplexed-run generator. Each run's interpolated value
// carries a *shared* window-noise component w (the same rotation
// windows produced both the event's and the anchor copy's estimate)
// plus independent extrapolation noise sized to match the Poisson
// model accuracy.Multiplex assumes: variance obs/f² = truth/f for an
// observation over active fraction f.
func synthRun(rng *xrand.Rand, truth, f, w float64) mpx.Estimate {
	v := truth*(1+w) + math.Sqrt(truth/f)*rng.NormFloat64()
	return mpx.Estimate{
		Observed:       int64(v*f + 0.5),
		ActiveFraction: f,
		Value:          v,
	}
}

func synthRef(rng *xrand.Rand, truth float64, n int, conf float64, t *testing.T) accuracy.Estimate {
	t.Helper()
	runs := make([]mpx.Estimate, n)
	for i := range runs {
		runs[i] = synthRun(rng, truth, 1, 0)
	}
	ref, err := accuracy.Multiplex(runs, conf)
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// TestFuseEventProperty is the acceptance property on synthetic ground
// truth: across many trials of a multiplexed measurement with shared
// window noise, the fused interval half-width never exceeds the naive
// per-group multiplexed half-width, the true count lies inside the
// fused interval at roughly the nominal rate, and the narrowing is
// substantial when window noise dominates.
func TestFuseEventProperty(t *testing.T) {
	const (
		trials = 300
		n      = 12
		nref   = 6
		conf   = 0.95
		truthA = 300000.0 // anchor
		truthX = 40000.0  // rotating event
		f      = 0.5
		windSD = 0.03 // relative shared window noise
	)
	rng := xrand.New(0x91a2)
	covered := 0
	var narrowingSum float64
	for trial := 0; trial < trials; trial++ {
		eventRuns := make([]mpx.Estimate, n)
		anchorRuns := make([]mpx.Estimate, n)
		for j := 0; j < n; j++ {
			w := windSD * rng.NormFloat64()
			eventRuns[j] = synthRun(rng, truthX, f, w)
			anchorRuns[j] = synthRun(rng, truthA, f, w)
		}
		ref := synthRef(rng, truthA, nref, conf, t)
		naive, fused, err := FuseEvent(eventRuns, anchorRuns, ref, conf)
		if err != nil {
			t.Fatal(err)
		}
		naiveHalf := naive.CI.Width() / 2
		fusedHalf := fused.CI.Width() / 2
		if fusedHalf > naiveHalf*(1+1e-9) {
			t.Fatalf("trial %d: fused half-width %v exceeds naive %v", trial, fusedHalf, naiveHalf)
		}
		if naiveHalf > 0 {
			narrowingSum += 1 - fusedHalf/naiveHalf
		}
		if fused.CI.Contains(truthX) {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.88 || rate > 0.995 {
		t.Errorf("fused coverage = %.3f over %d trials, want ~%.2f", rate, trials, conf)
	}
	if mean := narrowingSum / trials; mean < 0.4 {
		t.Errorf("mean narrowing = %.3f, want substantial (window noise dominates)", mean)
	}
}

// TestFuseAnchorProperty: the anchor's per-group copies plus the
// dedicated reference fuse into an interval that never exceeds the
// naive one and still covers the truth at the nominal rate.
func TestFuseAnchorProperty(t *testing.T) {
	const (
		trials = 300
		groups = 3
		n      = 10
		nref   = 6
		conf   = 0.95
		truthA = 300000.0
		windSD = 0.03
	)
	rng := xrand.New(0x517e)
	covered := 0
	narrowedEvery := true
	for trial := 0; trial < trials; trial++ {
		groupRuns := make([][]mpx.Estimate, groups)
		for g := range groupRuns {
			groupRuns[g] = make([]mpx.Estimate, n)
			for j := 0; j < n; j++ {
				w := windSD * rng.NormFloat64() // window noise independent per group
				groupRuns[g][j] = synthRun(rng, truthA, 1.0/groups, w)
			}
		}
		ref := synthRef(rng, truthA, nref, conf, t)
		naive, fused, err := FuseAnchor(groupRuns, ref, conf)
		if err != nil {
			t.Fatal(err)
		}
		if fused.CI.Width() > naive.CI.Width()*(1+1e-9) {
			t.Fatalf("trial %d: fused width %v exceeds naive %v", trial, fused.CI.Width(), naive.CI.Width())
		}
		if fused.CI.Width() >= naive.CI.Width() {
			narrowedEvery = false
		}
		if fused.CI.Contains(truthA) {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.85 || rate > 0.998 {
		t.Errorf("anchor coverage = %.3f, want ~%.2f", rate, conf)
	}
	if !narrowedEvery {
		t.Error("some trial failed to strictly narrow the anchor interval")
	}
}

// TestFuseEventDegenerates: with no anchor copies, a single run, or
// zero covariance the fusion must hand back exactly the naive
// estimate — never invent precision.
func TestFuseEventDegenerates(t *testing.T) {
	rng := xrand.New(0xdead)
	runs := make([]mpx.Estimate, 6)
	for j := range runs {
		runs[j] = synthRun(rng, 50000, 0.5, 0.02*rng.NormFloat64())
	}
	ref := synthRef(rng, 300000, 4, 0.95, t)

	naive, fused, err := FuseEvent(runs, nil, ref, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if fused.CI != naive.CI || fused.Corrected != naive.Corrected {
		t.Errorf("no-anchor fusion changed the estimate: %+v vs %+v", fused, naive)
	}

	naive, fused, err = FuseEvent(runs[:1], runs[:1], ref, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if fused.CI != naive.CI {
		t.Errorf("single-run fusion changed the interval")
	}

	// Identical anchor values in every run: zero variance, zero
	// covariance, nothing to explain.
	flat := make([]mpx.Estimate, len(runs))
	for j := range flat {
		flat[j] = mpx.Estimate{Observed: 150000, ActiveFraction: 0.5, Value: 300000}
	}
	naive, fused, err = FuseEvent(runs, flat, ref, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if fused.CI != naive.CI {
		t.Errorf("flat-anchor fusion changed the interval")
	}
}
