package plan

import (
	"fmt"

	"repro/internal/api"
	"repro/internal/cpu"
)

// Schedule is the deterministic counter assignment of one plan: how
// the requested events map onto hardware counter slots, and how the
// multiplexer's flattened slot list maps back to events and groups.
type Schedule struct {
	// Mode is api.PlanModeDedicated or api.PlanModeMultiplexed.
	Mode string
	// Anchor names the fusion anchor (the first requested event);
	// empty in dedicated mode, where no fusion is needed.
	Anchor string
	// Groups is the wire form of the schedule.
	Groups []api.PlanGroup
	// EvList is the multiplexer slot layout: groups flattened in order,
	// each led by its anchor copy when Counters >= 2. Nil in dedicated
	// mode.
	EvList []cpu.Event
	// SlotEvent maps a slot index to the request's event index, or -1
	// for an anchor copy.
	SlotEvent []int
	// SlotGroup maps a slot index to its rotation group.
	SlotGroup []int
	// Counters is how many hardware counters the schedule occupies at
	// once.
	Counters int
}

// BuildSchedule derives the counter schedule from a normalized
// request. It is a pure function: identical requests produce identical
// schedules.
//
// When the events fit the counters the schedule is one dedicated
// group. Otherwise the anchor (first event) is pinned into slot 0 of
// every rotation group and the remaining events fill the other
// Counters-1 slots in request order — so every group carries its own
// estimate of the anchor over exactly the windows its events were
// observed in, which is what the control-variate fusion step consumes.
// With a single counter no pinning is possible and each event rotates
// alone; fusion then degenerates to the naive estimates (plus the
// anchor's reference fusion), never worse.
func BuildSchedule(norm api.PlanRequest) (Schedule, error) {
	names := norm.Measure.Events
	events := make([]cpu.Event, len(names))
	for i, name := range names {
		ev, err := cpu.EventByName(name)
		if err != nil {
			return Schedule{}, fmt.Errorf("plan: %w", err)
		}
		events[i] = ev
	}

	if norm.Mode() == api.PlanModeDedicated {
		return Schedule{
			Mode:     api.PlanModeDedicated,
			Groups:   []api.PlanGroup{{Events: append([]string(nil), names...)}},
			Counters: len(events),
		}, nil
	}

	s := Schedule{
		Mode:     api.PlanModeMultiplexed,
		Anchor:   names[0],
		Counters: norm.Counters,
	}
	addSlot := func(ev cpu.Event, eventIdx, group int) {
		s.EvList = append(s.EvList, ev)
		s.SlotEvent = append(s.SlotEvent, eventIdx)
		s.SlotGroup = append(s.SlotGroup, group)
	}
	if norm.Counters == 1 {
		for i, ev := range events {
			addSlot(ev, i, i)
			s.Groups = append(s.Groups, api.PlanGroup{Events: []string{names[i]}, Multiplexed: true})
		}
		return s, nil
	}

	per := norm.Counters - 1 // rotating slots per group beside the anchor
	rotating := events[1:]
	for start := 0; start < len(rotating); start += per {
		end := min(start+per, len(rotating))
		g := len(s.Groups)
		group := api.PlanGroup{Events: []string{names[0]}, Multiplexed: true}
		addSlot(events[0], -1, g)
		for i := start; i < end; i++ {
			addSlot(rotating[i], i+1, g)
			group.Events = append(group.Events, names[i+1])
		}
		s.Groups = append(s.Groups, group)
	}
	return s, nil
}

// slotOf returns the slot carrying the request's event index.
func (s Schedule) slotOf(eventIdx int) int {
	for slot, e := range s.SlotEvent {
		if e == eventIdx {
			return slot
		}
	}
	return -1
}

// anchorSlots returns, per group, the slot of that group's anchor
// copy, or nil when the schedule pins no anchor (single counter).
func (s Schedule) anchorSlots() []int {
	var out []int
	for slot, e := range s.SlotEvent {
		if e == -1 {
			out = append(out, slot)
		}
	}
	if len(out) != len(s.Groups) {
		return nil
	}
	return out
}
