package perfmon

// Cost model: dynamic instruction counts of the libpfm call paths and
// the perfmon2 kernel extension, calibrated against the paper's
// measurements (DESIGN.md Section 6).
//
// perfmon2 performs every operation through a system call; unlike
// perfctr there is no user-mode read path. Its user-space wrappers are
// thin (the paper's user-mode error for direct perfmon use is a mere
// 36-37 instructions), but the kernel paths are long, and the read
// handler's per-PMD loop makes the error grow by ~112 instructions per
// additional counter on the K8 (Figure 5, top left).
//
// Kernel path lengths are written for the Core 2 Duo and scaled by the
// model's KernelCost factor.

// pfm_read_pmds path. There is no per-PMD user-mode cost: libpfm sends
// a preassembled request buffer, so the paper's Figure 5 finds the
// user-mode error flat across register counts.
const (
	readUserPre    = 17
	readUserPost   = 18
	readKernelPre  = 340 // entry, context lookup, copyin of the request
	readKernelPost = 330 // copyout and exit path after the last capture
	readPerPMD     = 140 // per-PMD load/virtualize/store in the read loop
)

// pfm_start path. The enable lands mid-handler; the post-enable exit
// path is long (context state propagation), which is why start-read is
// not perfmon's best pattern in user+kernel mode.
const (
	startUserPre      = 20
	startUserPost     = 20
	startKernelPre    = 300
	startKernelPerCtr = 10
	startKernelPost   = 265
)

// pfm_stop path.
const (
	stopUserPre    = 20
	stopUserPost   = 20
	stopKernelPre  = 330 // entry to the disable
	stopKernelPost = 190
)

// pfm_write_pmds (reset) path; it runs before the enable, so its length
// never lands inside a measurement window.
const (
	resetUserPre    = 15
	resetUserPost   = 15
	resetKernelPre  = 260
	resetKernelPost = 260
)

// Jitter bounds, as in package perfctr.
const (
	kernelJitterMax = 14
	userJitterMax   = 2
)

// Per-tick accounting work perfmon2 adds to the timer interrupt, per
// processor (Figure 7, pm column: PD ~0.0026, CD ~0.0016, K8 ~0.0010
// extra user+kernel instructions per loop iteration).
var tickWork = map[string]int{
	"PD": 400,
	"CD": 590,
	"K8": 160,
}

// skewBias is perfmon2's per-tick attribution rounding contribution.
const skewBias = 1.0
