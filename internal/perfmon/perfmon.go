// Package perfmon models the perfmon2 kernel extension (Stephane
// Eranian's Linux patch, 2.6.22-070725 in the study) and its user-space
// library libpfm 3.2.
//
// All perfmon2 operations — starting, stopping, resetting, and reading
// counters — are system calls on a per-thread context. Reads walk the
// requested PMD registers in the kernel, so each additional counter
// lengthens the in-window path (Figure 5). The user-space wrappers are
// very thin, which makes direct perfmon use the most accurate stack for
// user-mode-only measurements (Table 3: median error 37 instructions).
package perfmon

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/vcounter"
)

// Syscall numbers of the modeled perfmon2 interface.
const (
	sysReset = 200 // pfm_write_pmds(0...)
	sysStart = 201 // pfm_start
	sysStop  = 202 // pfm_stop
	sysReadA = 203 // pfm_read_pmds, captures into phase-c0 slots
	sysReadB = 204 // pfm_read_pmds, captures into phase-c1 slots
)

// extName identifies the extension to the kernel's syscall registry.
const extName = "perfmon"

// Perfmon is a measurement context on the perfmon2 stack. It implements
// core.Infrastructure as the paper's "pm" configuration.
type Perfmon struct {
	k     *kernel.Kernel
	vset  *vcounter.Set
	specs []core.CounterSpec
	mask  uint64
}

// New installs the perfmon2 extension into the kernel and returns the
// libpfm context.
func New(k *kernel.Kernel) (*Perfmon, error) {
	p := &Perfmon{k: k}
	k.InstallTickWork(tickWork[k.Model().Tag], skewBias)
	k.AddSwitchHook(p)
	if err := p.installHandlers(0); err != nil {
		return nil, err
	}
	return p, nil
}

// Save implements kernel.SwitchHook.
func (p *Perfmon) Save(tid int) {
	if p.vset != nil {
		p.vset.Save(tid)
	}
}

// Restore implements kernel.SwitchHook.
func (p *Perfmon) Restore(tid int) {
	if p.vset != nil {
		p.vset.Restore(tid)
	}
}

// Name returns the stack code "pm".
func (p *Perfmon) Name() string { return "pm" }

// Backend returns "pm".
func (p *Perfmon) Backend() string { return "pm" }

// NumCounters returns the configured counter count.
func (p *Perfmon) NumCounters() int { return len(p.specs) }

// kscale scales a Core 2 Duo kernel path length to this processor.
func (p *Perfmon) kscale(n int) int {
	v := int(float64(n)*p.k.Model().KernelCost + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}

// Setup programs the requested counters through the libpfm event tables
// and regenerates the kernel handlers. It validates the events against
// the processor's native event set, as pfm_find_event does.
func (p *Perfmon) Setup(specs []core.CounterSpec) error {
	m := p.k.Model()
	if len(specs) > m.NumProgrammable {
		return &core.ErrTooManyCounters{Requested: len(specs), Available: m.NumProgrammable, Model: m.Name}
	}
	for _, s := range specs {
		if !cpu.SupportsEvent(m.Arch, s.Event) {
			return fmt.Errorf("perfmon: event %s has no encoding on %s", s.Event, m.Arch)
		}
	}
	pmu := p.k.Core.PMU
	for i, s := range specs {
		if err := pmu.Configure(i, cpu.CounterConfig{Event: s.Event, User: s.User, OS: s.OS}); err != nil {
			return fmt.Errorf("perfmon: %v", err)
		}
	}
	p.specs = append(p.specs[:0], specs...)
	p.mask = (uint64(1) << uint(len(specs))) - 1
	pmu.Disable(p.mask)
	pmu.Reset(p.mask)

	p.vset = vcounter.New(pmu, len(specs), p.k.CurrentThread())
	p.k.Core.VirtualRead = p.vset.Read
	p.k.Core.OnMSR = func(action isa.MSRAction, mask uint64) {
		if action == isa.MSRReset {
			p.vset.ResetAccum(mask)
		}
	}
	return p.installHandlers(len(specs))
}

// installHandlers (re)builds the perfmon syscall handlers for n counters.
func (p *Perfmon) installHandlers(n int) error {
	type handler struct {
		nr   int
		prog *isa.Program
	}
	handlers := []handler{
		{sysReset, p.buildReset(n)},
		{sysStart, p.buildStart(n)},
		{sysStop, p.buildStop()},
		{sysReadA, p.buildRead(n, core.PhaseC0)},
		{sysReadB, p.buildRead(n, core.PhaseC1)},
	}
	for _, h := range handlers {
		if err := p.k.UpdateSyscall(h.nr, extName, h.prog); err != nil {
			return err
		}
	}
	return nil
}

// buildReset models pfm_write_pmds zeroing the counters. It runs while
// counting is disabled, so its length is outside every window.
func (p *Perfmon) buildReset(n int) *isa.Program {
	b := isa.NewBuilder("pfm_sys_reset", 0xffff_b000_0000)
	b.ALUBlock(p.kscale(resetKernelPre))
	b.Emit(isa.WRMSR(isa.MSRReset, p.maskFor(n)))
	b.ALUBlock(p.kscale(resetKernelPost))
	b.Emit(isa.VarWork(kernelJitterMax, 30))
	b.Emit(isa.SysRet())
	return b.Build()
}

// buildStart models pfm_start: programming checks, the enable, then a
// long context-propagation exit path (inside the ar/ao window).
func (p *Perfmon) buildStart(n int) *isa.Program {
	b := isa.NewBuilder("pfm_sys_start", 0xffff_b100_0000)
	b.ALUBlock(p.kscale(startKernelPre + startKernelPerCtr*n))
	b.Emit(isa.VarWork(kernelJitterMax, 31))
	b.Emit(isa.WRMSR(isa.MSREnable, p.maskFor(n)))
	b.ALUBlock(p.kscale(startKernelPost))
	b.Emit(isa.VarWork(kernelJitterMax, 32))
	b.Emit(isa.SysRet())
	return b.Build()
}

// buildStop models pfm_stop.
func (p *Perfmon) buildStop() *isa.Program {
	b := isa.NewBuilder("pfm_sys_stop", 0xffff_b200_0000)
	b.ALUBlock(p.kscale(stopKernelPre))
	b.Emit(isa.VarWork(kernelJitterMax, 33))
	b.Emit(isa.WRMSR(isa.MSRDisable, p.mask))
	b.ALUBlock(p.kscale(stopKernelPost))
	b.Emit(isa.SysRet())
	return b.Build()
}

// buildRead models pfm_read_pmds: entry, then the per-PMD
// load-virtualize-copyout loop with each counter captured in turn, then
// the exit path. With k counters, k-1 PMD slots of work land inside the
// first counter's window — the Figure 5 register scaling.
func (p *Perfmon) buildRead(n int, phase core.Phase) *isa.Program {
	b := isa.NewBuilder(fmt.Sprintf("pfm_sys_read_%d", phase), 0xffff_b300_0000)
	b.ALUBlock(p.kscale(readKernelPre))
	b.Emit(isa.VarWork(kernelJitterMax, 34))
	for i := 0; i < n; i++ {
		if i > 0 {
			b.ALUBlock(p.kscale(readPerPMD))
		}
		b.Emit(isa.RDPMC(i, phase.SlotFor(i, n)))
	}
	b.ALUBlock(p.kscale(readKernelPost))
	b.Emit(isa.VarWork(kernelJitterMax, 35))
	b.Emit(isa.SysRet())
	return b.Build()
}

// maskFor returns the enable mask for n counters.
func (p *Perfmon) maskFor(n int) uint64 {
	if n <= 0 {
		return 0
	}
	return (uint64(1) << uint(n)) - 1
}

// EmitPrepare emits "reset, start": two syscalls on perfmon2.
func (p *Perfmon) EmitPrepare(b *isa.Builder) {
	b.ALUBlock(resetUserPre)
	b.Emit(isa.Syscall(sysReset))
	b.ALUBlock(resetUserPost)
	p.EmitStart(b)
}

// EmitStart emits pfm_start.
func (p *Perfmon) EmitStart(b *isa.Builder) {
	b.ALUBlock(startUserPre)
	b.Emit(isa.Syscall(sysStart))
	b.ALUBlock(startUserPost)
	b.Emit(isa.VarWork(userJitterMax, 40))
}

// EmitStop emits pfm_stop.
func (p *Perfmon) EmitStop(b *isa.Builder) {
	b.ALUBlock(stopUserPre)
	b.Emit(isa.Syscall(sysStop))
	b.ALUBlock(stopUserPost)
	b.Emit(isa.VarWork(userJitterMax, 41))
}

// EmitRead emits pfm_read_pmds. The user-mode wrapper cost is
// independent of the PMD count — libpfm passes a preassembled request
// buffer — which is why the paper's Figure 5 finds perfmon's user-mode
// error flat across register counts.
func (p *Perfmon) EmitRead(b *isa.Builder, phase core.Phase) {
	b.ALUBlock(readUserPre)
	if phase == core.PhaseC0 {
		b.Emit(isa.Syscall(sysReadA))
	} else {
		b.Emit(isa.Syscall(sysReadB))
	}
	b.ALUBlock(readUserPost)
	b.Emit(isa.VarWork(userJitterMax, 42))
}

// SupportsReadWithoutReset reports true: pfm_read_pmds does not reset.
func (p *Perfmon) SupportsReadWithoutReset() bool { return true }

// Teardown disables and clears the configured counters.
func (p *Perfmon) Teardown() {
	if p.mask != 0 {
		p.k.Core.PMU.Disable(p.mask)
		p.k.Core.PMU.Reset(p.mask)
	}
	p.k.Core.VirtualRead = nil
	p.k.Core.OnMSR = nil
	p.specs = nil
	p.mask = 0
}

// VSet exposes the virtual counter set for multi-thread tests.
func (p *Perfmon) VSet() *vcounter.Set { return p.vset }
