package perfmon

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/kernel"
)

func newCtx(t *testing.T, m *cpu.Model) (*kernel.Kernel, *Perfmon) {
	t.Helper()
	k := kernel.New(m)
	p, err := New(k)
	if err != nil {
		t.Fatal(err)
	}
	return k, p
}

func TestIdentity(t *testing.T) {
	_, p := newCtx(t, cpu.Athlon64X2)
	if p.Name() != "pm" || p.Backend() != "pm" {
		t.Error("identity wrong")
	}
	if !p.SupportsReadWithoutReset() {
		t.Error("pfm_read_pmds must not reset")
	}
}

func TestEveryOperationIsASyscall(t *testing.T) {
	_, p := newCtx(t, cpu.Athlon64X2)
	if err := p.Setup([]core.CounterSpec{{Event: cpu.EventInstrRetired, User: true}}); err != nil {
		t.Fatal(err)
	}
	emitters := map[string]func(*isa.Builder){
		"prepare": p.EmitPrepare,
		"start":   p.EmitStart,
		"stop":    p.EmitStop,
		"read": func(b *isa.Builder) {
			p.EmitRead(b, core.PhaseC0)
		},
	}
	for name, emit := range emitters {
		b := isa.NewBuilder(name, 0x1000)
		emit(b)
		prog := b.Emit(isa.Halt()).Build()
		found := 0
		for _, in := range prog.Code {
			if in.Op == isa.OpSyscall {
				found++
			}
		}
		if found == 0 {
			t.Errorf("%s: perfmon2 operations must be syscalls", name)
		}
		if name == "prepare" && found != 2 {
			t.Errorf("prepare should be reset+start = 2 syscalls, got %d", found)
		}
	}
}

func TestSetupValidatesEvents(t *testing.T) {
	_, p := newCtx(t, cpu.Core2Duo)
	if err := p.Setup([]core.CounterSpec{{Event: cpu.Event(99), User: true}}); err == nil {
		t.Error("unsupported event accepted")
	}
	specs := make([]core.CounterSpec, 5)
	for i := range specs {
		specs[i] = core.CounterSpec{Event: cpu.EventInstrRetired, User: true}
	}
	var tm *core.ErrTooManyCounters
	if err := p.Setup(specs); !errors.As(err, &tm) {
		t.Errorf("err = %v, want ErrTooManyCounters", err)
	}
}

func TestReadPerPMDCost(t *testing.T) {
	// The kernel read handler must contain (n-1) per-PMD blocks between
	// captures: measure the instruction distance between captures.
	k, p := newCtx(t, cpu.Core2Duo)
	run := func(n int) int64 {
		specs := make([]core.CounterSpec, n)
		for i := range specs {
			specs[i] = core.CounterSpec{Event: cpu.EventInstrRetired, User: true, OS: true}
		}
		if err := p.Setup(specs); err != nil {
			t.Fatal(err)
		}
		b := isa.NewBuilder("m", 0x1000)
		p.EmitPrepare(b)
		p.EmitRead(b, core.PhaseC1)
		b.Emit(isa.Halt())
		k.Core.SeedRun(1)
		if err := k.Core.Run(b.Build()); err != nil {
			t.Fatal(err)
		}
		var first int64 = -1
		for _, c := range k.Core.Captures {
			if c.Slot == n { // counter 0, phase C1
				first = c.Value
			}
		}
		return first
	}
	c1 := run(1)
	c2 := run(2)
	if c1 <= 0 {
		t.Fatalf("no capture: %d", c1)
	}
	// Counter 0's count is identical regardless of how many later PMDs
	// the handler reads after it (they land after the capture).
	if diff := c2 - c1; diff < -20 || diff > 20 {
		t.Errorf("counter 0 capture moved by %d with an extra PMD; the extra cost must land after the capture", diff)
	}
}

func TestStopFreezes(t *testing.T) {
	k, p := newCtx(t, cpu.Athlon64X2)
	if err := p.Setup([]core.CounterSpec{{Event: cpu.EventInstrRetired, User: true, OS: true}}); err != nil {
		t.Fatal(err)
	}
	b := isa.NewBuilder("m", 0x1000)
	p.EmitPrepare(b)
	b.ALUBlock(40)
	p.EmitStop(b)
	b.ALUBlock(1000)
	p.EmitRead(b, core.PhaseC1)
	b.Emit(isa.Halt())
	k.Core.SeedRun(2)
	if err := k.Core.Run(b.Build()); err != nil {
		t.Fatal(err)
	}
	var v int64 = -1
	for _, c := range k.Core.Captures {
		if c.Slot == 1 {
			v = c.Value
		}
	}
	// Window: post-enable (~265*0.8 + jitter) + 40 + user wrappers +
	// pre-disable (~330*0.8): roughly 600; the 1000 ALUs are excluded.
	if v > 900 || v < 300 {
		t.Errorf("frozen count = %d, want ~600 (1000 post-stop ALUs excluded)", v)
	}
}

func TestTeardown(t *testing.T) {
	k, p := newCtx(t, cpu.Athlon64X2)
	if err := p.Setup([]core.CounterSpec{{Event: cpu.EventInstrRetired, User: true}}); err != nil {
		t.Fatal(err)
	}
	p.Teardown()
	if k.Core.VirtualRead != nil || k.Core.OnMSR != nil || p.NumCounters() != 0 {
		t.Error("teardown incomplete")
	}
}

func TestTickWorkTables(t *testing.T) {
	for _, tag := range []string{"PD", "CD", "K8"} {
		if tickWork[tag] <= 0 {
			t.Errorf("no tick work for %s", tag)
		}
	}
}
