package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/textplot"
)

// Table1Result reproduces Table 1: the processors used in the study.
type Table1Result struct {
	Rows []Table1Row `json:"rows"`
}

// Table1Row is one processor inventory line.
type Table1Row struct {
	Tag          string  `json:"tag"`
	Processor    string  `json:"processor"`
	GHz          float64 `json:"ghz"`
	MicroArch    string  `json:"uarch"`
	Fixed        int     `json:"fixed"`
	Programmable int     `json:"programmable"`
}

// ID implements Result.
func (r *Table1Result) ID() string { return "table1" }

// Render implements Result.
func (r *Table1Result) Render(w io.Writer) error {
	rows := make([][]string, len(r.Rows))
	for i, t := range r.Rows {
		rows[i] = []string{
			t.Tag, t.Processor, fmt.Sprintf("%.1f", t.GHz), t.MicroArch,
			fmt.Sprintf("%d", t.Fixed), fmt.Sprintf("%d", t.Programmable),
		}
	}
	_, err := fmt.Fprint(w, textplot.Table(
		[]string{"", "Processor", "GHz", "uArch", "fixed", "prg."}, rows))
	return err
}

func runTable1(Config) (Result, error) {
	res := &Table1Result{}
	for _, m := range cpu.AllModels {
		fixed, prg := m.Counters()
		res.Rows = append(res.Rows, Table1Row{
			Tag: m.Tag, Processor: m.Name, GHz: m.GHz,
			MicroArch: m.Arch.String(), Fixed: fixed, Programmable: prg,
		})
	}
	return res, nil
}

// Table2Result reproduces Table 2: the counter access patterns, each
// checked to be executable on a direct stack.
type Table2Result struct {
	Rows []Table2Row `json:"rows"`
}

// Table2Row is one pattern definition.
type Table2Row struct {
	Code       string `json:"code"`
	Name       string `json:"name"`
	Definition string `json:"definition"`
	// HighLevelOK reports whether the PAPI high-level API supports the
	// pattern (the Table 2 footnote).
	HighLevelOK bool `json:"high_level_ok"`
}

// ID implements Result.
func (r *Table2Result) ID() string { return "table2" }

// Render implements Result.
func (r *Table2Result) Render(w io.Writer) error {
	rows := make([][]string, len(r.Rows))
	for i, t := range r.Rows {
		hl := "yes"
		if !t.HighLevelOK {
			hl = "no (read resets)"
		}
		rows[i] = []string{t.Code, t.Name, t.Definition, hl}
	}
	_, err := fmt.Fprint(w, textplot.Table(
		[]string{"Pattern", "Name", "Definition", "PAPI high-level"}, rows))
	return err
}

func runTable2(Config) (Result, error) {
	defs := map[core.Pattern]string{
		core.StartRead: "c0=0, reset, start ... c1=read",
		core.StartStop: "c0=0, reset, start ... stop, c1=read",
		core.ReadRead:  "start, c0=read ... c1=read",
		core.ReadStop:  "start, c0=read ... stop, c1=read",
	}
	res := &Table2Result{}
	for _, p := range core.AllPatterns {
		res.Rows = append(res.Rows, Table2Row{
			Code:        p.Code(),
			Name:        p.String(),
			Definition:  defs[p],
			HighLevelOK: !p.ReadsAtC0(),
		})
	}
	return res, nil
}
