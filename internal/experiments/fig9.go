package experiments

import (
	"fmt"
	"io"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/stack"
	"repro/internal/stats"
	"repro/internal/textplot"
)

// fig9LoopSizes mirrors the x-axis of the paper's Figure 9.
var fig9LoopSizes = []int64{1, 25_000, 50_000, 75_000, 100_000, 250_000, 500_000, 750_000, 1_000_000}

// Fig9Result reproduces Figure 9: kernel-mode instruction counts by
// loop size for perfctr on the Core 2 Duo. The benchmark performs no
// kernel work, so everything counted is measurement error; interrupts
// are rare, so each box is dominated by runs with zero or one tick and
// the mean sits above the box.
type Fig9Result struct {
	// Samples[i] holds the kernel instruction errors for LoopSizes[i].
	LoopSizes []int64   `json:"loop_sizes"`
	Samples   [][]int64 `json:"samples"`
	Averages  []float64 `json:"averages"`
	// Slope is the regression slope through all points (paper: 0.00204
	// kernel instructions per loop iteration).
	Slope float64 `json:"slope"`
}

// ID implements Result.
func (r *Fig9Result) ID() string { return "fig9" }

// Render implements Result.
func (r *Fig9Result) Render(w io.Writer) error {
	var rows []textplot.BoxRow
	for i, l := range r.LoopSizes {
		rows = append(rows, textplot.BoxRow{
			Label: fmt.Sprintf("%8d", l),
			Data:  stats.Float64s(r.Samples[i]),
		})
	}
	fmt.Fprint(w, textplot.Boxes("CD, OS mode, instructions by loop size (pc)", rows))
	fmt.Fprintln(w)
	for i, l := range r.LoopSizes {
		fmt.Fprintf(w, "  l=%8d  avg=%8.1f\n", l, r.Averages[i])
	}
	fmt.Fprintf(w, "\nregression slope = %.5f kernel instructions/iteration (paper: 0.00204)\n", r.Slope)
	return nil
}

func runFig9(cfg Config) (Result, error) {
	sys, err := newSystem(cpu.Core2Duo, "pc", stack.DefaultOptions)
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{LoopSizes: fig9LoopSizes}
	var xs, ys []float64
	// Interrupts are infrequent; the paper uses several thousand runs
	// per size. Scale the configured run count up for this experiment.
	runs := cfg.Runs * 12
	for _, l := range fig9LoopSizes {
		var all []int64
		for _, opt := range compiler.AllOptLevels {
			errs, err := sys.MeasureN(core.Request{
				Bench:   core.LoopBenchmark(l),
				Pattern: core.StartRead,
				Mode:    core.ModeKernel,
				Opt:     opt,
			}, runs, cellSeed(cfg, 9, uint64(l), uint64(opt)))
			if err != nil {
				return nil, err
			}
			all = append(all, errs...)
		}
		res.Samples = append(res.Samples, all)
		res.Averages = append(res.Averages, stats.Mean(stats.Float64s(all)))
		for _, e := range all {
			xs = append(xs, float64(l))
			ys = append(ys, float64(e))
		}
	}
	fit, err := stats.LinearFit(xs, ys)
	if err != nil {
		return nil, err
	}
	res.Slope = fit.Slope
	return res, nil
}
