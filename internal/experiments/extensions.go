package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/kernel"
	"repro/internal/mpx"
	"repro/internal/sampling"
	"repro/internal/stack"
	"repro/internal/textplot"
)

// The experiments in this file go beyond the paper's evaluation into
// the adjacent accuracy questions its Sections 7 and 9 explicitly
// raise: sampling-mode accuracy (Moore), counter multiplexing
// (Mytkowicz et al.), in-context calibration (Najafzadeh and Chaiken),
// and the placement sensitivity of micro-architectural event counts
// (the paper's own "interesting topic for future research").

// --- sampling ---

// SamplingRow is one period's accuracy outcome.
type SamplingRow struct {
	Period        int64   `json:"period"`
	Samples       int     `json:"samples"`
	TrueCount     int64   `json:"true_count"`
	Estimate      int64   `json:"estimate"`
	RelativeError float64 `json:"relative_error"`
	// PerturbInstr is the kernel instructions the PMU interrupt
	// handlers added to a concurrently running count.
	PerturbInstr int64 `json:"perturb_instr"`
}

// SamplingResult contrasts the counting and sampling usage models: the
// estimate converges as the period shrinks, but the perturbation — the
// overflow handlers' own instructions — grows in exact proportion.
type SamplingResult struct {
	Processor string        `json:"processor"`
	LoopIters int64         `json:"loop_iters"`
	Rows      []SamplingRow `json:"rows"`
}

// ID implements Result.
func (r *SamplingResult) ID() string { return "sampling" }

// Render implements Result.
func (r *SamplingResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Sampling vs counting on %s, loop of %d iterations\n\n", r.Processor, r.LoopIters)
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Period),
			fmt.Sprintf("%d", row.Samples),
			fmt.Sprintf("%d", row.Estimate),
			fmt.Sprintf("%+.2f%%", row.RelativeError*100),
			fmt.Sprintf("%d", row.PerturbInstr),
		})
	}
	if _, err := fmt.Fprint(w, textplot.Table(
		[]string{"period", "samples", "estimate", "est. error", "perturbation (instr)"}, rows)); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nShorter periods improve the estimate but the interrupt handlers")
	fmt.Fprintln(w, "perturb the workload in proportion — the accuracy trade-off between")
	fmt.Fprintln(w, "the counting and sampling usage models (Moore, paper Section 9).")
	return nil
}

func runSampling(cfg Config) (Result, error) {
	const iters = 2_000_000
	res := &SamplingResult{Processor: "K8", LoopIters: iters}
	for _, period := range []int64{1_000_000, 100_000, 10_000, 1_000} {
		k := kernel.New(cpu.Athlon64X2)
		// A second counter observes total user+kernel instructions to
		// quantify the handlers' perturbation.
		if err := k.Core.PMU.Configure(1, cpu.CounterConfig{Event: cpu.EventInstrRetired, User: true, OS: true}); err != nil {
			return nil, err
		}
		k.Core.PMU.Enable(0b10)

		p, err := sampling.New(k, cpu.EventInstrRetired, period)
		if err != nil {
			return nil, err
		}
		b := isa.NewBuilder("sampled-loop", 0x4000)
		b.Emit(isa.ALU())
		b.Loop(iters, func(body *isa.Builder) {
			body.Emit(isa.ALU(), isa.ALU(), isa.Branch(0, true))
		})
		b.Emit(isa.Halt())
		prof, err := p.Run(b.Build(), cellSeed(cfg, 100, uint64(period)))
		if err != nil {
			return nil, err
		}
		observed, err := k.Core.PMU.Value(1)
		if err != nil {
			return nil, err
		}
		trueInstr := int64(1 + 3*iters + 1)
		// Remove tick-handler instructions: measure them via deliveries.
		res.Rows = append(res.Rows, SamplingRow{
			Period:        period,
			Samples:       len(prof.Samples),
			TrueCount:     prof.TrueCount,
			Estimate:      prof.Estimate(),
			RelativeError: prof.RelativeError(),
			PerturbInstr:  observed - trueInstr,
		})
	}
	return res, nil
}

// --- multiplex ---

// MultiplexRow is one workload's estimation outcome.
type MultiplexRow struct {
	Workload      string  `json:"workload"`
	TrueInstr     float64 `json:"true_instr"`
	Estimate      float64 `json:"estimate"`
	RelativeError float64 `json:"relative_error"`
	ActiveFrac    float64 `json:"active_fraction"`
}

// MultiplexResult quantifies time-interpolation accuracy: multiplexing
// is nearly exact on stationary workloads and biased on phased ones.
type MultiplexResult struct {
	Rows []MultiplexRow `json:"rows"`
}

// ID implements Result.
func (r *MultiplexResult) ID() string { return "multiplex" }

// Render implements Result.
func (r *MultiplexResult) Render(w io.Writer) error {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Workload,
			fmt.Sprintf("%.0f", row.TrueInstr),
			fmt.Sprintf("%.0f", row.Estimate),
			fmt.Sprintf("%+.2f%%", row.RelativeError*100),
			fmt.Sprintf("%.2f", row.ActiveFrac),
		})
	}
	if _, err := fmt.Fprint(w, textplot.Table(
		[]string{"workload", "true instr", "mpx estimate", "error", "active frac"}, rows)); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nTime interpolation is exact only for stationary event rates;")
	fmt.Fprintln(w, "phased workloads bias it (Mytkowicz et al., paper Section 9).")
	return nil
}

func runMultiplex(cfg Config) (Result, error) {
	type workload struct {
		name string
		prog *isa.Program
		want float64
	}
	mk := func(name string, build func(b *isa.Builder), want float64) workload {
		b := isa.NewBuilder(name, 0x4000)
		build(b)
		b.Emit(isa.Halt())
		return workload{name: name, prog: b.Build(), want: want}
	}
	loops := func(l1, l2 int64) func(*isa.Builder) {
		return func(b *isa.Builder) {
			b.Emit(isa.ALU())
			b.Loop(l1, func(body *isa.Builder) {
				body.Emit(isa.ALU(), isa.ALU(), isa.Branch(0, true))
			})
			if l2 > 0 {
				b.Loop(l2, func(body *isa.Builder) {
					body.Emit(isa.Load(), isa.ALU(), isa.ALU(), isa.Branch(0, true))
				})
			}
		}
	}
	workloads := []workload{
		mk("stationary", loops(8_000_000, 0), float64(1+3*8_000_000)),
		mk("two-phase", loops(3_000_000, 3_000_000), float64(1+3*3_000_000+4*3_000_000)),
		mk("short-phases", loops(1_200_000, 1_200_000), float64(1+3*1_200_000+4*1_200_000)),
	}

	res := &MultiplexResult{}
	for wi, wl := range workloads {
		k := kernel.New(cpu.Core2Duo)
		m, err := mpx.New(k, 1, []cpu.Event{cpu.EventInstrRetired, cpu.EventCoreCycles})
		if err != nil {
			return nil, err
		}
		est, err := m.Run(wl.prog, cellSeed(cfg, 101, uint64(wi)))
		if err != nil {
			return nil, err
		}
		instr := est[0]
		res.Rows = append(res.Rows, MultiplexRow{
			Workload:      wl.name,
			TrueInstr:     wl.want,
			Estimate:      instr.Value,
			RelativeError: (instr.Value - wl.want) / wl.want,
			ActiveFrac:    instr.ActiveFraction,
		})
	}
	return res, nil
}

// --- events (placement sensitivity of micro-architectural counts) ---

// EventPlacementResult addresses the paper's Section 7 future-work
// question: how much do *event* counts (not just cycles) move with code
// placement? Retired instructions are placement-invariant; front-end
// event counts are not.
type EventPlacementResult struct {
	// Spread[event] = (max-min)/min of the per-iteration event rate
	// across pattern/optimization placements.
	Spread map[string]float64 `json:"spread"`
	// InstrSpread is the same statistic for retired instructions
	// (expected ~0).
	InstrSpread float64 `json:"instr_spread"`
}

// ID implements Result.
func (r *EventPlacementResult) ID() string { return "events" }

// Render implements Result.
func (r *EventPlacementResult) Render(w io.Writer) error {
	fmt.Fprintln(w, "Placement sensitivity of event counts (K8, pm, loop of 1M iterations)")
	fmt.Fprintf(w, "\n%-24s relative spread across placements\n", "event")
	fmt.Fprintf(w, "%-24s %.4f\n", "INSTR_RETIRED", r.InstrSpread)
	for _, ev := range []string{"CPU_CLK_UNHALTED", "BR_MISP_RETIRED", "ICACHE_MISS"} {
		fmt.Fprintf(w, "%-24s %.4f\n", ev, r.Spread[ev])
	}
	fmt.Fprintln(w, "\nInstruction counts are placement-invariant; cycle and front-end")
	fmt.Fprintln(w, "event counts shift with the executable's layout (paper, Section 7).")
	return nil
}

func runEvents(cfg Config) (Result, error) {
	sys, err := newSystem(cpu.Athlon64X2, "pm", stack.DefaultOptions)
	if err != nil {
		return nil, err
	}
	const iters = 1_000_000
	events := map[string]cpu.Event{
		"INSTR_RETIRED":    cpu.EventInstrRetired,
		"CPU_CLK_UNHALTED": cpu.EventCoreCycles,
		"BR_MISP_RETIRED":  cpu.EventBrMispRetired,
		"ICACHE_MISS":      cpu.EventICacheMiss,
	}
	res := &EventPlacementResult{Spread: map[string]float64{}}
	for name, ev := range events {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, pat := range core.AllPatterns {
			for _, opt := range compiler.AllOptLevels {
				m, err := sys.Measure(core.Request{
					Bench:   core.LoopBenchmark(iters),
					Pattern: pat,
					Mode:    core.ModeUser,
					Events:  []cpu.Event{ev},
					Opt:     opt,
					Seed:    cellSeed(cfg, 102, uint64(pat), uint64(opt)),
				})
				if err != nil {
					return nil, err
				}
				v := float64(m.Deltas[0])
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
		}
		spread := 0.0
		if lo > 0 {
			spread = (hi - lo) / lo
		}
		if name == "INSTR_RETIRED" {
			res.InstrSpread = spread
		} else {
			res.Spread[name] = spread
		}
	}
	return res, nil
}

// --- calibration strategies ---

// CalibrationRow is one stack's calibration outcome.
type CalibrationRow struct {
	Stack string `json:"stack"`
	// NullOffset and ProbeOffset are the two strategies' estimates.
	NullOffset  float64 `json:"null_offset"`
	ProbeOffset float64 `json:"probe_offset"`
	// NullResidual and ProbeResidual are the median absolute errors of
	// calibrated loop measurements.
	NullResidual  float64 `json:"null_residual"`
	ProbeResidual float64 `json:"probe_residual"`
}

// CalibrationResult compares the paper's null-benchmark calibration
// with Najafzadeh and Chaiken's in-context null probe across stacks.
type CalibrationResult struct {
	Rows []CalibrationRow `json:"rows"`
}

// ID implements Result.
func (r *CalibrationResult) ID() string { return "calibration" }

// Render implements Result.
func (r *CalibrationResult) Render(w io.Writer) error {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Stack,
			fmt.Sprintf("%.1f", row.NullOffset),
			fmt.Sprintf("%.1f", row.ProbeOffset),
			fmt.Sprintf("%.1f", row.NullResidual),
			fmt.Sprintf("%.1f", row.ProbeResidual),
		})
	}
	if _, err := fmt.Fprint(w, textplot.Table(
		[]string{"stack", "null offset", "probe offset", "null resid.", "probe resid."}, rows)); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nBoth strategies reduce the fixed error to a handful of instructions;")
	fmt.Fprintln(w, "the probe measures the read cost in realistic front-end context")
	fmt.Fprintln(w, "(Najafzadeh and Chaiken, paper Section 9).")
	return nil
}

func runCalibration(cfg Config) (Result, error) {
	res := &CalibrationResult{}
	for _, code := range []string{"pm", "pc", "PLpm", "PLpc"} {
		sys, err := newSystem(cpu.Athlon64X2, code, stack.DefaultOptions)
		if err != nil {
			return nil, err
		}
		null, err := core.CalibrateNull(sys.Kernel, sys.Infra, core.ReadRead, core.ModeUser, compiler.O2, cfg.Runs*3, cellSeed(cfg, 103, hash(code)))
		if err != nil {
			return nil, err
		}
		probe, err := core.CalibrateNullProbe(sys.Kernel, sys.Infra, core.ModeUser, compiler.O2, 250, cfg.Runs*3, cellSeed(cfg, 104, hash(code)))
		if err != nil {
			return nil, err
		}
		resid := func(cal core.Calibration) float64 {
			var absErrs []float64
			for r := 0; r < cfg.Runs*3; r++ {
				m, err := sys.Measure(core.Request{
					Bench: core.LoopBenchmark(10_000), Pattern: core.ReadRead,
					Mode: core.ModeUser, Opt: compiler.O2,
					Seed: cellSeed(cfg, 105, hash(code), uint64(r)),
				})
				if err != nil {
					return math.NaN()
				}
				absErrs = append(absErrs, math.Abs(cal.Apply(m.Deltas[0])-float64(m.Expected)))
			}
			// Median of absolute residuals.
			var sum float64
			for _, e := range absErrs {
				sum += e
			}
			return sum / float64(len(absErrs))
		}
		res.Rows = append(res.Rows, CalibrationRow{
			Stack:         code,
			NullOffset:    null.Offset,
			ProbeOffset:   probe.Offset,
			NullResidual:  resid(null),
			ProbeResidual: resid(probe),
		})
	}
	return res, nil
}
