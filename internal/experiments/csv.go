package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSVExporter is implemented by results whose raw observations are
// useful outside this repository (external plotting of the paper's
// figures). WriteCSV emits one observation per row with a header.
type CSVExporter interface {
	WriteCSV(w io.Writer) error
}

// Compile-time checks: the figure results with raw samples export CSV.
var (
	_ CSVExporter = (*Fig1Result)(nil)
	_ CSVExporter = (*Fig4Result)(nil)
	_ CSVExporter = (*Fig6Result)(nil)
	_ CSVExporter = (*Fig9Result)(nil)
	_ CSVExporter = (*Fig10Result)(nil)
	_ CSVExporter = (*Fig7Result)(nil)
	_ CSVExporter = (*Fig8Result)(nil)
)

// writeAll writes rows through a csv.Writer and reports the first error.
func writeAll(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func itoa(v int64) string { return strconv.FormatInt(v, 10) }

// WriteCSV emits mode,error rows.
func (r *Fig1Result) WriteCSV(w io.Writer) error {
	rows := make([][]string, 0, len(r.User)+len(r.UserKernel))
	for _, e := range r.User {
		rows = append(rows, []string{"user", itoa(e)})
	}
	for _, e := range r.UserKernel {
		rows = append(rows, []string{"user+kernel", itoa(e)})
	}
	return writeAll(w, []string{"mode", "error_instructions"}, rows)
}

// WriteCSV emits mode,pattern,tsc,error rows.
func (r *Fig4Result) WriteCSV(w io.Writer) error {
	var rows [][]string
	for mode, cells := range r.Cells {
		for pattern, cell := range cells {
			for tscIdx, samples := range cell {
				tsc := "off"
				if tscIdx == 1 {
					tsc = "on"
				}
				for _, e := range samples {
					rows = append(rows, []string{mode, pattern, tsc, itoa(e)})
				}
			}
		}
	}
	return writeAll(w, []string{"mode", "pattern", "tsc", "error_instructions"}, rows)
}

// WriteCSV emits mode,stack,error rows.
func (r *Fig6Result) WriteCSV(w io.Writer) error {
	var rows [][]string
	for mode, stacks := range r.Samples {
		for code, samples := range stacks {
			for _, e := range samples {
				rows = append(rows, []string{mode, code, itoa(e)})
			}
		}
	}
	return writeAll(w, []string{"mode", "stack", "error_instructions"}, rows)
}

// WriteCSV emits loop_size,error rows.
func (r *Fig9Result) WriteCSV(w io.Writer) error {
	var rows [][]string
	for i, l := range r.LoopSizes {
		for _, e := range r.Samples[i] {
			rows = append(rows, []string{itoa(l), itoa(e)})
		}
	}
	return writeAll(w, []string{"loop_size", "kernel_instructions"}, rows)
}

// WriteCSV emits processor,infra,pattern,opt,loop_size,cycles rows.
func (r *Fig10Result) WriteCSV(w io.Writer) error {
	var rows [][]string
	for proc, infras := range r.Points {
		for infra, pts := range infras {
			for _, p := range pts {
				rows = append(rows, []string{
					proc, infra, p.Pattern, p.Opt,
					itoa(p.LoopSize), fmt.Sprintf("%.0f", p.Cycles),
				})
			}
		}
	}
	return writeAll(w, []string{"processor", "infra", "pattern", "opt", "loop_size", "cycles"}, rows)
}

// slopesCSV is shared by the Figure 7 and 8 results.
func slopesCSV(w io.Writer, slopes []SlopeCell, mode string) error {
	var rows [][]string
	for _, s := range slopes {
		rows = append(rows, []string{
			mode, s.Infra, s.Processor,
			strconv.FormatFloat(s.Slope, 'g', 8, 64),
			strconv.FormatFloat(s.R2, 'g', 6, 64),
		})
	}
	return writeAll(w, []string{"mode", "infra", "processor", "slope", "r2"}, rows)
}

// WriteCSV emits mode,infra,processor,slope,r2 rows.
func (r *Fig7Result) WriteCSV(w io.Writer) error { return slopesCSV(w, r.Slopes, r.Mode) }

// WriteCSV emits mode,infra,processor,slope,r2 rows.
func (r *Fig8Result) WriteCSV(w io.Writer) error { return slopesCSV(w, r.Slopes, r.Mode) }
