package experiments

import (
	"fmt"
	"io"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/stack"
	"repro/internal/stats"
	"repro/internal/textplot"
)

// Fig1Result reproduces Figure 1: the overall distribution of the
// null-benchmark measurement error across every infrastructure,
// processor, pattern, optimization level, register count, and (for
// perfctr) TSC setting — one violin for user mode, one for user+kernel.
type Fig1Result struct {
	User       []int64 `json:"user"`
	UserKernel []int64 `json:"user_kernel"`
	// Measurements is the total number of individual measurements
	// summarized (the paper reports "over 170000" at full scale).
	Measurements int `json:"measurements"`
}

// ID implements Result.
func (r *Fig1Result) ID() string { return "fig1" }

// Render implements Result.
func (r *Fig1Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Measurement error in instructions (%d measurements per mode)\n\n", len(r.User))
	fmt.Fprint(w, textplot.Violin("User mode", stats.Float64s(r.User), 24))
	fmt.Fprintln(w)
	fmt.Fprint(w, textplot.Violin("User + OS mode", stats.Float64s(r.UserKernel), 24))

	uSum, err := stats.Summarize(stats.Float64s(r.User))
	if err != nil {
		return err
	}
	kSum, err := stats.Summarize(stats.Float64s(r.UserKernel))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nuser:        IQR = %.0f instructions (paper: ~1500), max = %.0f\n", uSum.IQR(), uSum.Max)
	fmt.Fprintf(w, "user+kernel: IQR = %.0f instructions, max = %.0f (paper: configurations above 10000 exist)\n", kSum.IQR(), kSum.Max)
	return nil
}

// fig1Cell enumerates one configuration of the full factorial.
type fig1Cell struct {
	model *cpu.Model
	code  string
	tsc   bool
	pat   core.Pattern
	opt   compiler.OptLevel
	regs  int
}

// fig1RegCounts returns the counter-selection sweep for Figure 1. The
// paper measured "all possible combinations of enabled counters", which
// on the 18-counter Pentium D makes many-counter selections the common
// case; the sweep samples selection sizes across the full range.
func fig1RegCounts(m *cpu.Model) []int {
	if m.NumProgrammable >= 18 {
		return []int{1, 2, 4, 6, 9, 12, 15, 18}
	}
	return regCounts(m)
}

// fig1Cells enumerates the full factorial of Figure 1.
func fig1Cells() []fig1Cell {
	var cells []fig1Cell
	for _, m := range cpu.AllModels {
		for _, code := range stack.Codes {
			tscOptions := []bool{true}
			if code[len(code)-2:] == "pc" {
				tscOptions = []bool{true, false}
			}
			for _, tsc := range tscOptions {
				for _, pat := range patternsFor(code) {
					for _, opt := range compiler.AllOptLevels {
						for _, regs := range fig1RegCounts(m) {
							cells = append(cells, fig1Cell{m, code, tsc, pat, opt, regs})
						}
					}
				}
			}
		}
	}
	return cells
}

func runFig1(cfg Config) (Result, error) {
	res := &Fig1Result{}
	for ci, cell := range fig1Cells() {
		sys, err := newSystem(cell.model, cell.code, stack.Options{WithTSC: cell.tsc})
		if err != nil {
			return nil, err
		}
		for _, mode := range []core.MeasureMode{core.ModeUser, core.ModeUserKernel} {
			errs, err := sys.MeasureN(core.Request{
				Bench:   core.NullBenchmark(),
				Pattern: cell.pat,
				Mode:    mode,
				Events:  instrEvents(cell.regs),
				Opt:     cell.opt,
			}, cfg.Runs, cellSeed(cfg, uint64(ci), uint64(mode)))
			if err != nil {
				return nil, fmt.Errorf("fig1 cell %d (%s %s %s): %w", ci, cell.model.Tag, cell.code, cell.pat.Code(), err)
			}
			if mode == core.ModeUser {
				res.User = append(res.User, errs...)
			} else {
				res.UserKernel = append(res.UserKernel, errs...)
			}
			res.Measurements += len(errs)
		}
	}
	return res, nil
}
