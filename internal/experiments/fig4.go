package experiments

import (
	"fmt"
	"io"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/stack"
	"repro/internal/stats"
	"repro/internal/textplot"
)

// Fig4Result reproduces Figure 4: perfctr on the Core 2 Duo with the
// TSC disabled versus enabled, per pattern and mode. The boxes pool
// optimization levels and register selections, as in the paper (960
// runs per box at full scale).
type Fig4Result struct {
	// Cells[mode][pattern][tsc] holds the error samples; tsc index 0 is
	// off, 1 is on.
	Cells map[string]map[string][2][]int64 `json:"cells"`
	// MedianRROn/Off echo the paper's headline numbers (109.5 / 1698).
	MedianRROn  float64 `json:"median_rr_on"`
	MedianRROff float64 `json:"median_rr_off"`
}

// ID implements Result.
func (r *Fig4Result) ID() string { return "fig4" }

// Render implements Result.
func (r *Fig4Result) Render(w io.Writer) error {
	for _, mode := range []string{"user+kernel", "user"} {
		fmt.Fprintf(w, "CD, Perfctr, %s\n", mode)
		cells := r.Cells[mode]
		var rows []textplot.BoxRow
		for _, pat := range core.AllPatterns {
			c := cells[pat.String()]
			rows = append(rows,
				textplot.BoxRow{Label: pat.String() + " tsc-off", Data: stats.Float64s(c[0])},
				textplot.BoxRow{Label: pat.String() + " tsc-on ", Data: stats.Float64s(c[1])},
			)
		}
		fmt.Fprint(w, textplot.Boxes("", rows))
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "read-read user+kernel median: TSC off = %.1f (paper 1698), TSC on = %.1f (paper 109.5)\n",
		r.MedianRROff, r.MedianRROn)
	return nil
}

func runFig4(cfg Config) (Result, error) {
	res := &Fig4Result{Cells: map[string]map[string][2][]int64{}}
	for _, mode := range []core.MeasureMode{core.ModeUserKernel, core.ModeUser} {
		res.Cells[mode.String()] = map[string][2][]int64{}
		for _, pat := range core.AllPatterns {
			var cell [2][]int64
			for tscIdx, tsc := range []bool{false, true} {
				sys, err := newSystem(cpu.Core2Duo, "pc", stack.Options{WithTSC: tsc})
				if err != nil {
					return nil, err
				}
				for _, opt := range compiler.AllOptLevels {
					for _, regs := range regCounts(cpu.Core2Duo) {
						errs, err := sys.MeasureN(core.Request{
							Bench:   core.NullBenchmark(),
							Pattern: pat,
							Mode:    mode,
							Events:  instrEvents(regs),
							Opt:     opt,
						}, cfg.Runs, cellSeed(cfg, 4, uint64(mode), uint64(pat), uint64(opt), uint64(regs), uint64(tscIdx)))
						if err != nil {
							return nil, err
						}
						cell[tscIdx] = append(cell[tscIdx], errs...)
					}
				}
			}
			res.Cells[mode.String()][pat.String()] = cell
		}
	}
	rr := res.Cells[core.ModeUserKernel.String()][core.ReadRead.String()]
	res.MedianRROff = medianOf(rr[0])
	res.MedianRROn = medianOf(rr[1])
	return res, nil
}
