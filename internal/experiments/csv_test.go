package experiments

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"testing"
)

// parseCSV reads all rows and fails on malformed output.
func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	rows, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatalf("csv parse: %v", err)
	}
	if len(rows) < 2 {
		t.Fatalf("csv has no data rows: %d", len(rows))
	}
	return rows
}

func TestFig9CSV(t *testing.T) {
	r, err := Run("fig9", Config{Runs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.(*Fig9Result).WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if rows[0][0] != "loop_size" {
		t.Errorf("header = %v", rows[0])
	}
	for _, row := range rows[1:] {
		if _, err := strconv.ParseInt(row[0], 10, 64); err != nil {
			t.Fatalf("bad loop size %q", row[0])
		}
		if _, err := strconv.ParseInt(row[1], 10, 64); err != nil {
			t.Fatalf("bad error %q", row[1])
		}
	}
}

func TestFig4CSV(t *testing.T) {
	r, err := Run("fig4", Config{Runs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.(*Fig4Result).WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	tscSeen := map[string]bool{}
	for _, row := range rows[1:] {
		tscSeen[row[2]] = true
	}
	if !tscSeen["on"] || !tscSeen["off"] {
		t.Errorf("tsc column incomplete: %v", tscSeen)
	}
}

func TestFig1CSV(t *testing.T) {
	r, err := Run("fig1", Config{Runs: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*Fig1Result)
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows)-1 != len(res.User)+len(res.UserKernel) {
		t.Errorf("csv rows = %d, want %d", len(rows)-1, len(res.User)+len(res.UserKernel))
	}
}

func TestSlopeCSV(t *testing.T) {
	r, err := Run("fig7", Config{Runs: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.(*Fig7Result).WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows)-1 != 18 {
		t.Errorf("slope rows = %d, want 18", len(rows)-1)
	}
	for _, row := range rows[1:] {
		if _, err := strconv.ParseFloat(row[3], 64); err != nil {
			t.Fatalf("bad slope %q", row[3])
		}
	}
}

func TestFig6AndFig10CSV(t *testing.T) {
	for _, id := range []string{"fig6", "fig10"} {
		r, err := Run(id, Config{Runs: 2, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := r.(CSVExporter).WriteCSV(&buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		parseCSV(t, &buf)
	}
}
