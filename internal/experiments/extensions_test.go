package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestSamplingShape(t *testing.T) {
	r, err := Run("sampling", quick())
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*SamplingResult)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Periods are listed longest first: estimates tighten and
	// perturbation grows as the period shrinks.
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if math.Abs(last.RelativeError) > math.Abs(first.RelativeError)+0.02 {
		t.Errorf("short-period estimate (%v) should not be worse than long-period (%v)",
			last.RelativeError, first.RelativeError)
	}
	if last.PerturbInstr <= first.PerturbInstr {
		t.Errorf("perturbation must grow with sampling rate: %d -> %d",
			first.PerturbInstr, last.PerturbInstr)
	}
	if last.Samples < 1000 {
		t.Errorf("period-1000 run produced only %d samples", last.Samples)
	}
	out := render(t, res)
	if !strings.Contains(out, "perturb") {
		t.Error("rendering lacks perturbation column")
	}
}

func TestMultiplexShape(t *testing.T) {
	r, err := Run("multiplex", quick())
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*MultiplexResult)
	byName := map[string]MultiplexRow{}
	for _, row := range res.Rows {
		byName[row.Workload] = row
	}
	st := byName["stationary"]
	if math.Abs(st.RelativeError) > 0.05 {
		t.Errorf("stationary multiplex error = %v, want within 5%%", st.RelativeError)
	}
	ph := byName["two-phase"]
	if math.Abs(ph.RelativeError) <= math.Abs(st.RelativeError) {
		t.Errorf("phased error (%v) should exceed stationary (%v)",
			ph.RelativeError, st.RelativeError)
	}
	render(t, res)
}

func TestEventsShape(t *testing.T) {
	r, err := Run("events", quick())
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*EventPlacementResult)
	if res.InstrSpread > 0.001 {
		t.Errorf("instruction counts must be placement-invariant, spread = %v", res.InstrSpread)
	}
	if res.Spread["CPU_CLK_UNHALTED"] < 0.2 {
		t.Errorf("cycle spread = %v, want the Figure 11 placement effect (2 vs 3 cyc/iter = 0.5)",
			res.Spread["CPU_CLK_UNHALTED"])
	}
	render(t, res)
}

func TestCalibrationShape(t *testing.T) {
	r, err := Run("calibration", quick())
	if err != nil {
		t.Fatal(err)
	}
	res := r.(*CalibrationResult)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.NullResidual > 6 {
			t.Errorf("%s: null-calibrated residual = %v, want small", row.Stack, row.NullResidual)
		}
		if row.ProbeResidual > 8 {
			t.Errorf("%s: probe-calibrated residual = %v, want small", row.Stack, row.ProbeResidual)
		}
		if math.Abs(row.NullOffset-row.ProbeOffset) > 6 {
			t.Errorf("%s: strategies diverge: %v vs %v", row.Stack, row.NullOffset, row.ProbeOffset)
		}
	}
	render(t, res)
}
